/**
 * @file
 * Unit and property tests for the shared-cache simulator.
 */

#include <gtest/gtest.h>

#include "cachesim/cache.hh"
#include "support/rng.hh"
#include "trace/trace.hh"

using namespace rodinia;
using namespace rodinia::cachesim;

namespace {

CacheConfig
smallConfig(uint64_t bytes = 4096, int assoc = 4, int line = 64)
{
    CacheConfig cfg;
    cfg.sizeBytes = bytes;
    cfg.assoc = assoc;
    cfg.lineBytes = line;
    return cfg;
}

} // namespace

TEST(CacheSim, ColdMissThenHit)
{
    SharedCache c(smallConfig());
    c.access(0, 0x1000, 4, false);
    c.access(0, 0x1004, 4, false);
    const auto &st = c.finish();
    EXPECT_EQ(st.accesses, 2u);
    EXPECT_EQ(st.misses, 1u);
    EXPECT_DOUBLE_EQ(st.missRate(), 0.5);
}

TEST(CacheSim, LineCrossingAccessTouchesTwoLines)
{
    SharedCache c(smallConfig());
    c.access(0, 0x1000 + 60, 8, false); // crosses a 64 B boundary
    const auto &st = c.finish();
    EXPECT_EQ(st.accesses, 2u);
    EXPECT_EQ(st.misses, 2u);
}

TEST(CacheSim, LruEviction)
{
    // One set: 4 ways of 64 B = 256 B cache with 64 B lines, but we
    // need sets=1: size = assoc * line.
    SharedCache c(smallConfig(256, 4, 64));
    // Fill the (single) set with 4 distinct lines.
    for (uint64_t i = 0; i < 4; ++i)
        c.access(0, i * 64 * 1, 4, false); // all map to set 0? no:
    // Lines 0..3 map to different sets only if sets > 1; with one
    // set they all collide. Access a 5th line: evicts line 0 (LRU).
    c.access(0, 4 * 64, 4, false);
    c.access(0, 0, 4, false); // line 0 must now miss again
    const auto &st = c.finish();
    EXPECT_EQ(st.misses, 6u);
    EXPECT_EQ(st.evictions, 2u);
}

TEST(CacheSim, LruKeepsRecentlyUsed)
{
    SharedCache c(smallConfig(256, 4, 64));
    for (uint64_t i = 0; i < 4; ++i)
        c.access(0, i * 64, 4, false);
    c.access(0, 0, 4, false);      // touch line 0 (now MRU)
    c.access(0, 4 * 64, 4, false); // evicts line 1, not line 0
    c.access(0, 0, 4, false);      // still a hit
    const auto &st = c.finish();
    EXPECT_EQ(st.misses, 5u);
}

TEST(CacheSim, SharingClassification)
{
    SharedCache c(smallConfig());
    // Line A touched by two threads; line B by one thread.
    c.access(0, 0x0, 4, false);
    c.access(1, 0x8, 4, true);
    c.access(0, 0x1000, 4, false);
    const auto &st = c.finish();
    EXPECT_EQ(st.residencies, 2u);
    EXPECT_EQ(st.sharedResidencies, 1u);
    // The second access to line A happened when it became shared.
    EXPECT_EQ(st.accessesToShared, 1u);
    EXPECT_EQ(st.writesToShared, 1u);
    EXPECT_DOUBLE_EQ(st.sharedLineFraction(), 0.5);
}

TEST(CacheSim, PrivateDataNeverShared)
{
    SharedCache c(smallConfig(64 * 1024));
    for (int t = 0; t < 4; ++t)
        for (uint64_t i = 0; i < 32; ++i)
            c.access(t, uint64_t(t) * 0x10000 + i * 64, 4, true);
    const auto &st = c.finish();
    EXPECT_EQ(st.sharedResidencies, 0u);
    EXPECT_EQ(st.accessesToShared, 0u);
}

TEST(CacheSim, PaperCacheSizes)
{
    auto sizes = paperCacheSizes();
    ASSERT_EQ(sizes.size(), 8u);
    EXPECT_EQ(sizes.front(), 128u * 1024);
    EXPECT_EQ(sizes.back(), 16u * 1024 * 1024);
    for (size_t i = 1; i < sizes.size(); ++i)
        EXPECT_EQ(sizes[i], sizes[i - 1] * 2);
}

/** Property: miss rate is non-increasing in cache size (LRU). */
TEST(CacheSim, MissRateMonotoneInCacheSize)
{
    trace::TraceSession session(4);
    Rng rng(77);
    std::vector<uint8_t> heap(1 << 20);
    session.run([&](trace::ThreadCtx &ctx) {
        Rng local(100 + ctx.tid());
        for (int i = 0; i < 20000; ++i) {
            // Zipf-ish reuse: mostly hot region, occasional cold.
            uint64_t addr = local.chance(0.8)
                                ? local.below(1 << 14)
                                : local.below(1 << 20);
            ctx.load(&heap[addr], 4);
        }
    });

    auto sweep = sweepCacheSizes(session, paperCacheSizes());
    for (size_t i = 1; i < sweep.size(); ++i)
        EXPECT_LE(sweep[i].missRate(), sweep[i - 1].missRate() + 1e-9)
            << "size index " << i;
}

/** Property: every access lands in exactly one statistics bucket. */
TEST(CacheSim, AccessAccounting)
{
    trace::TraceSession session(2);
    std::vector<uint8_t> heap(1 << 16);
    session.run([&](trace::ThreadCtx &ctx) {
        Rng local(5 + ctx.tid());
        for (int i = 0; i < 5000; ++i)
            ctx.load(&heap[local.below(1 << 16)], 4);
    });
    auto sweep = sweepCacheSizes(session, {128 * 1024});
    const auto &st = sweep[0];
    // 10000 program accesses; those straddling a 64 B boundary split
    // into two line accesses.
    EXPECT_GE(st.accesses, 10000u);
    EXPECT_LE(st.accesses, 11000u);
    EXPECT_EQ(st.misses + (st.accesses - st.misses), st.accesses);
    EXPECT_LE(st.sharedResidencies, st.residencies);
    EXPECT_LE(st.accessesToShared, st.accesses);
}

/** Sharing rises with cache size when threads share a hot region. */
TEST(CacheSim, SharedHotRegionDetected)
{
    trace::TraceSession session(4);
    std::vector<uint8_t> heap(1 << 18);
    session.run([&](trace::ThreadCtx &ctx) {
        Rng local(9 + ctx.tid());
        for (int i = 0; i < 10000; ++i) {
            // All threads hammer the same 16 kB region.
            ctx.load(&heap[local.below(1 << 14)], 4);
        }
    });
    auto sweep = sweepCacheSizes(session, {1024 * 1024});
    EXPECT_GT(sweep[0].sharedLineFraction(), 0.5);
    EXPECT_GT(sweep[0].sharedAccessFraction(), 0.5);
}
