/**
 * @file
 * Unit and property tests for the shared-cache simulator.
 */

#include <gtest/gtest.h>

#include "cachesim/cache.hh"
#include "cachesim/sweep.hh"
#include "support/rng.hh"
#include "trace/trace.hh"

using namespace rodinia;
using namespace rodinia::cachesim;

namespace {

CacheConfig
smallConfig(uint64_t bytes = 4096, int assoc = 4, int line = 64)
{
    CacheConfig cfg;
    cfg.sizeBytes = bytes;
    cfg.assoc = assoc;
    cfg.lineBytes = line;
    return cfg;
}

} // namespace

TEST(CacheSim, ColdMissThenHit)
{
    SharedCache c(smallConfig());
    c.access(0, 0x1000, 4, false);
    c.access(0, 0x1004, 4, false);
    const auto &st = c.finish();
    EXPECT_EQ(st.accesses, 2u);
    EXPECT_EQ(st.misses, 1u);
    EXPECT_DOUBLE_EQ(st.missRate(), 0.5);
}

TEST(CacheSim, LineCrossingAccessTouchesTwoLines)
{
    SharedCache c(smallConfig());
    c.access(0, 0x1000 + 60, 8, false); // crosses a 64 B boundary
    const auto &st = c.finish();
    EXPECT_EQ(st.accesses, 2u);
    EXPECT_EQ(st.misses, 2u);
}

TEST(CacheSim, LruEviction)
{
    // One set: 4 ways of 64 B = 256 B cache with 64 B lines, but we
    // need sets=1: size = assoc * line.
    SharedCache c(smallConfig(256, 4, 64));
    // Fill the (single) set with 4 distinct lines.
    for (uint64_t i = 0; i < 4; ++i)
        c.access(0, i * 64 * 1, 4, false); // all map to set 0? no:
    // Lines 0..3 map to different sets only if sets > 1; with one
    // set they all collide. Access a 5th line: evicts line 0 (LRU).
    c.access(0, 4 * 64, 4, false);
    c.access(0, 0, 4, false); // line 0 must now miss again
    const auto &st = c.finish();
    EXPECT_EQ(st.misses, 6u);
    EXPECT_EQ(st.evictions, 2u);
}

TEST(CacheSim, LruKeepsRecentlyUsed)
{
    SharedCache c(smallConfig(256, 4, 64));
    for (uint64_t i = 0; i < 4; ++i)
        c.access(0, i * 64, 4, false);
    c.access(0, 0, 4, false);      // touch line 0 (now MRU)
    c.access(0, 4 * 64, 4, false); // evicts line 1, not line 0
    c.access(0, 0, 4, false);      // still a hit
    const auto &st = c.finish();
    EXPECT_EQ(st.misses, 5u);
}

TEST(CacheSim, SharingClassification)
{
    SharedCache c(smallConfig());
    // Line A touched by two threads; line B by one thread.
    c.access(0, 0x0, 4, false);
    c.access(1, 0x8, 4, true);
    c.access(0, 0x1000, 4, false);
    const auto &st = c.finish();
    EXPECT_EQ(st.residencies, 2u);
    EXPECT_EQ(st.sharedResidencies, 1u);
    // The second access to line A happened when it became shared.
    EXPECT_EQ(st.accessesToShared, 1u);
    EXPECT_EQ(st.writesToShared, 1u);
    EXPECT_DOUBLE_EQ(st.sharedLineFraction(), 0.5);
}

TEST(CacheSim, PrivateDataNeverShared)
{
    SharedCache c(smallConfig(64 * 1024));
    for (int t = 0; t < 4; ++t)
        for (uint64_t i = 0; i < 32; ++i)
            c.access(t, uint64_t(t) * 0x10000 + i * 64, 4, true);
    const auto &st = c.finish();
    EXPECT_EQ(st.sharedResidencies, 0u);
    EXPECT_EQ(st.accessesToShared, 0u);
}

TEST(CacheSim, PaperCacheSizes)
{
    auto sizes = paperCacheSizes();
    ASSERT_EQ(sizes.size(), 8u);
    EXPECT_EQ(sizes.front(), 128u * 1024);
    EXPECT_EQ(sizes.back(), 16u * 1024 * 1024);
    for (size_t i = 1; i < sizes.size(); ++i)
        EXPECT_EQ(sizes[i], sizes[i - 1] * 2);
}

/** Property: miss rate is non-increasing in cache size (LRU). */
TEST(CacheSim, MissRateMonotoneInCacheSize)
{
    trace::TraceSession session(4);
    Rng rng(77);
    std::vector<uint8_t> heap(1 << 20);
    session.run([&](trace::ThreadCtx &ctx) {
        Rng local(100 + ctx.tid());
        for (int i = 0; i < 20000; ++i) {
            // Zipf-ish reuse: mostly hot region, occasional cold.
            uint64_t addr = local.chance(0.8)
                                ? local.below(1 << 14)
                                : local.below(1 << 20);
            ctx.load(&heap[addr], 4);
        }
    });

    auto sweep = sweepCacheSizes(session, paperCacheSizes());
    for (size_t i = 1; i < sweep.size(); ++i)
        EXPECT_LE(sweep[i].missRate(), sweep[i - 1].missRate() + 1e-9)
            << "size index " << i;
}

/** Property: every access lands in exactly one statistics bucket. */
TEST(CacheSim, AccessAccounting)
{
    trace::TraceSession session(2);
    std::vector<uint8_t> heap(1 << 16);
    session.run([&](trace::ThreadCtx &ctx) {
        Rng local(5 + ctx.tid());
        for (int i = 0; i < 5000; ++i)
            ctx.load(&heap[local.below(1 << 16)], 4);
    });
    auto sweep = sweepCacheSizes(session, {128 * 1024});
    const auto &st = sweep[0];
    // 10000 program accesses; those straddling a 64 B boundary split
    // into two line accesses.
    EXPECT_GE(st.accesses, 10000u);
    EXPECT_LE(st.accesses, 11000u);
    EXPECT_EQ(st.misses + (st.accesses - st.misses), st.accesses);
    EXPECT_LE(st.sharedResidencies, st.residencies);
    EXPECT_LE(st.accessesToShared, st.accesses);
}

namespace {

/** Record a mixed multi-threaded trace with line-straddling sizes. */
void
recordMixedTrace(trace::TraceSession &session, std::vector<uint8_t> &heap,
                 int accessesPerThread)
{
    session.run([&](trace::ThreadCtx &ctx) {
        Rng local(321 + ctx.tid());
        for (int i = 0; i < accessesPerThread; ++i) {
            // Zipf-ish reuse plus cold tail, with sizes up to 64 B so
            // some accesses straddle a line boundary.
            uint64_t addr = local.chance(0.7)
                                ? local.below(1 << 13)
                                : local.below(heap.size() - 64);
            uint32_t size = uint32_t(1 + local.below(64));
            if (local.chance(0.3))
                ctx.store(&heap[addr], size);
            else
                ctx.load(&heap[addr], size);
        }
    });
    session.normalizeAddresses();
}

/** Replay the session through an independent per-size SharedCache. */
CacheStats
oracleStats(const trace::TraceSession &session, uint64_t bytes, int assoc,
            int line)
{
    SharedCache oracle(smallConfig(bytes, assoc, line));
    session.forEachInterleaved([&](int tid, const trace::MemEvent &e) {
        oracle.access(tid, e.addr, e.size, e.isWrite != 0);
    });
    return oracle.finish();
}

} // namespace

/**
 * The equivalence contract: every CacheStats field the single-pass
 * sweep produces — including the hit-depth histogram and the sharing
 * counters — equals an independent SharedCache replay of the same
 * interleaved trace, at every swept size.
 */
TEST(CacheSweep, MatchesSharedCacheOracleExactly)
{
    trace::TraceSession session(8);
    std::vector<uint8_t> heap(1 << 18);
    recordMixedTrace(session, heap, 6000);

    SweepConfig cfg;
    cfg.sizesBytes = {8 * 1024, 32 * 1024, 128 * 1024, 1024 * 1024};
    auto result = runSweep(session, cfg);
    ASSERT_EQ(result.stats.size(), cfg.sizesBytes.size());
    ASSERT_EQ(result.sizesBytes, cfg.sizesBytes);

    for (size_t i = 0; i < cfg.sizesBytes.size(); ++i) {
        CacheStats want = oracleStats(session, cfg.sizesBytes[i],
                                      cfg.assoc, cfg.lineBytes);
        EXPECT_TRUE(result.stats[i] == want)
            << "size " << cfg.sizesBytes[i];
        EXPECT_EQ(result.stats[i].accesses, result.lineAccesses);
    }
}

/** Equivalence holds off the default geometry too. */
TEST(CacheSweep, OracleEquivalenceAcrossGeometries)
{
    trace::TraceSession session(4);
    std::vector<uint8_t> heap(1 << 16);
    recordMixedTrace(session, heap, 3000);

    struct Geometry
    {
        int assoc;
        int line;
    };
    for (Geometry g : {Geometry{1, 64}, Geometry{2, 32},
                       Geometry{8, 128}}) {
        SweepConfig cfg;
        cfg.assoc = g.assoc;
        cfg.lineBytes = g.line;
        cfg.sizesBytes = {uint64_t(g.assoc) * uint64_t(g.line) * 16,
                          uint64_t(g.assoc) * uint64_t(g.line) * 256};
        auto result = runSweep(session, cfg);
        for (size_t i = 0; i < cfg.sizesBytes.size(); ++i) {
            CacheStats want = oracleStats(session, cfg.sizesBytes[i],
                                          g.assoc, g.line);
            EXPECT_TRUE(result.stats[i] == want)
                << "assoc " << g.assoc << " line " << g.line
                << " size " << cfg.sizesBytes[i];
        }
    }
}

/** hitDepth is a complete, consistent decomposition of the hits. */
TEST(CacheSweep, HitDepthAccountingInvariants)
{
    trace::TraceSession session(4);
    std::vector<uint8_t> heap(1 << 17);
    recordMixedTrace(session, heap, 4000);

    SweepConfig cfg;
    cfg.sizesBytes = paperCacheSizes();
    auto result = runSweep(session, cfg);
    for (const CacheStats &st : result.stats) {
        uint64_t depthHits = 0;
        for (uint64_t d : st.hitDepth)
            depthHits += d;
        EXPECT_EQ(depthHits, st.accesses - st.misses);
        // Depth-projected misses: exact at the simulated assoc, and
        // non-increasing as the projected associativity grows.
        EXPECT_EQ(st.missesAtAssoc(cfg.assoc), st.misses);
        for (int a = 1; a < cfg.assoc; ++a)
            EXPECT_GE(st.missesAtAssoc(a), st.missesAtAssoc(a + 1));
        EXPECT_LE(st.missesAtAssoc(1), st.accesses);
    }
}

/** Replay telemetry: line accesses and throughput derivation. */
TEST(CacheSweep, ReplayTelemetry)
{
    trace::TraceSession session(2);
    std::vector<uint8_t> heap(1 << 14);
    recordMixedTrace(session, heap, 500);

    SweepConfig cfg;
    cfg.sizesBytes = {64 * 1024};
    auto result = runSweep(session, cfg);
    EXPECT_GT(result.lineAccesses, 0u);
    EXPECT_GE(result.replaySeconds, 0.0);

    SweepResult r;
    r.lineAccesses = 100;
    r.replaySeconds = 4.0;
    EXPECT_DOUBLE_EQ(r.accessesPerSecond(), 25.0);
    r.replaySeconds = 0.0;
    EXPECT_DOUBLE_EQ(r.accessesPerSecond(), 0.0);
}

/** Bad geometry dies loudly instead of truncating the set count. */
TEST(CacheConfigDeath, RejectsInvalidGeometry)
{
    EXPECT_DEATH(smallConfig(4096, 0, 64).numSets(),
                 "must be positive");
    EXPECT_DEATH(smallConfig(4096, 4, 48).numSets(),
                 "power of two");
    EXPECT_DEATH(smallConfig(4000, 4, 64).numSets(),
                 "not a positive multiple");
    EXPECT_DEATH(smallConfig(3 * 4096, 4, 64).numSets(),
                 "set count must be a power of two");
    EXPECT_DEATH(SharedCache(smallConfig(0, 4, 64)),
                 "not a positive multiple");
}

/** Sharing rises with cache size when threads share a hot region. */
TEST(CacheSim, SharedHotRegionDetected)
{
    trace::TraceSession session(4);
    std::vector<uint8_t> heap(1 << 18);
    session.run([&](trace::ThreadCtx &ctx) {
        Rng local(9 + ctx.tid());
        for (int i = 0; i < 10000; ++i) {
            // All threads hammer the same 16 kB region.
            ctx.load(&heap[local.below(1 << 14)], 4);
        }
    });
    auto sweep = sweepCacheSizes(session, {1024 * 1024});
    EXPECT_GT(sweep[0].sharedLineFraction(), 0.5);
    EXPECT_GT(sweep[0].sharedAccessFraction(), 0.5);
}
