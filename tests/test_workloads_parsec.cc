/**
 * @file
 * Tests for the Parsec-analog workloads: determinism, non-trivial
 * instrumentation, and per-application functional properties.
 */

#include <gtest/gtest.h>

#include <cmath>

#include "core/characterize.hh"
#include "core/workload.hh"
#include "support/rng.hh"
#include "workloads/parsec/parsec.hh"
#include "workloads/parsec/pipeline.hh"

#include <thread>

using namespace rodinia;
using namespace rodinia::core;
using namespace rodinia::workloads;

namespace {

uint64_t
cpuDigest(Workload &w, Scale scale, int threads = 4)
{
    trace::TraceSession session(threads, false);
    w.runCpu(session, scale);
    return w.checksum();
}

} // namespace

TEST(Pipeline, QueuePassesItemsInOrderSingleConsumer)
{
    BoundedQueue<int> q(4);
    std::vector<int> got;
    std::thread consumer([&] {
        while (auto v = q.pop())
            got.push_back(*v);
    });
    for (int i = 0; i < 100; ++i)
        q.push(i);
    q.close();
    consumer.join();
    ASSERT_EQ(got.size(), 100u);
    for (int i = 0; i < 100; ++i)
        EXPECT_EQ(got[i], i);
}

TEST(Pipeline, CloseUnblocksAllConsumers)
{
    BoundedQueue<int> q(4);
    std::vector<std::thread> consumers;
    std::atomic<int> finished{0};
    for (int i = 0; i < 4; ++i)
        consumers.emplace_back([&] {
            while (q.pop()) {
            }
            finished.fetch_add(1);
        });
    q.push(1);
    q.push(2);
    q.close();
    for (auto &t : consumers)
        t.join();
    EXPECT_EQ(finished.load(), 4);
}

TEST(BlackscholesTest, PutCallParityAndDeterminism)
{
    Blackscholes a, b;
    uint64_t d1 = cpuDigest(a, Scale::Tiny);
    uint64_t d2 = cpuDigest(b, Scale::Tiny);
    EXPECT_EQ(d1, d2);
    EXPECT_NE(d1, 0u);
}

TEST(DedupTest, DeterministicAcrossThreadCounts)
{
    // Unique/duplicate chunk counts are content-defined, so they
    // must not depend on pipeline thread assignment.
    Dedup a, b;
    uint64_t d4 = cpuDigest(a, Scale::Tiny, 4);
    uint64_t d8 = cpuDigest(b, Scale::Tiny, 8);
    EXPECT_EQ(d4, d8);
}

TEST(DedupTest, FindsDuplicatesInRedundantInput)
{
    // The synthetic input repeats a phrase, so the digest must
    // differ from a hypothetical all-unique run; we simply check
    // the run completes with a nonzero digest at two scales.
    Dedup w;
    EXPECT_NE(cpuDigest(w, Scale::Tiny), 0u);
    Dedup w2;
    EXPECT_NE(cpuDigest(w2, Scale::Small), 0u);
}

TEST(FerretTest, DeterministicAndFindsNeighbors)
{
    Ferret a, b;
    EXPECT_EQ(cpuDigest(a, Scale::Tiny, 5), cpuDigest(b, Scale::Tiny, 5));
}

TEST(SwaptionsTest, DeterministicAtFixedThreads)
{
    // The barrier-laddered reduction fixes the floating-point
    // accumulation order for a given thread count.
    Swaptions a, b;
    EXPECT_EQ(cpuDigest(a, Scale::Tiny, 4), cpuDigest(b, Scale::Tiny, 4));
}

TEST(RaytraceTest, Deterministic)
{
    Raytrace a, b;
    EXPECT_EQ(cpuDigest(a, Scale::Tiny), cpuDigest(b, Scale::Tiny));
}

TEST(VipsTest, Deterministic)
{
    Vips a, b;
    EXPECT_EQ(cpuDigest(a, Scale::Tiny), cpuDigest(b, Scale::Tiny));
}

TEST(X264Test, MotionVectorsTrackGlobalMotion)
{
    // The generated video has small global motion; the estimator is
    // deterministic and must produce the same vectors twice.
    X264 a, b;
    EXPECT_EQ(cpuDigest(a, Scale::Tiny), cpuDigest(b, Scale::Tiny));
}

TEST(FreqmineTest, DeterministicAtFixedThreads)
{
    Freqmine a, b;
    EXPECT_EQ(cpuDigest(a, Scale::Tiny, 4), cpuDigest(b, Scale::Tiny, 4));
}

/** Smoke + instrumentation sanity across the whole Parsec suite. */
class ParsecSmoke : public ::testing::TestWithParam<std::string>
{
};

TEST_P(ParsecSmoke, RunsAndInstruments)
{
    registerAllWorkloads();
    auto w = Registry::instance().create(GetParam());
    trace::TraceSession session(4, true);
    w->runCpu(session, Scale::Tiny);
    auto mix = session.totalMix();
    EXPECT_GT(mix.total(), 1000u) << "suspiciously little work";
    EXPECT_GT(mix.memRefs(), 0u);
    EXPECT_GT(session.totalEvents(), 0u);
    EXPECT_GT(session.dataFootprintPages(), 0u);
    EXPECT_GT(session.instructionSites(), 3u);
}

INSTANTIATE_TEST_SUITE_P(
    AllParsec, ParsecSmoke,
    ::testing::Values("blackscholes", "bodytrack", "canneal", "dedup",
                      "facesim", "ferret", "fluidanimate", "freqmine",
                      "raytrace", "swaptions", "vips", "x264"),
    [](const auto &info) { return info.param; });

/** Suite-level distinctness: no two workloads share a checksum. */
TEST(ParsecSuite, ChecksumsAreDistinct)
{
    registerAllWorkloads();
    std::vector<uint64_t> sums;
    for (const auto &name : Registry::instance().names(Suite::Parsec)) {
        auto w = Registry::instance().create(name);
        trace::TraceSession session(4, false);
        w->runCpu(session, Scale::Tiny);
        sums.push_back(w->checksum());
    }
    std::sort(sums.begin(), sums.end());
    EXPECT_EQ(std::adjacent_find(sums.begin(), sums.end()), sums.end());
}
