/**
 * @file
 * Fault-tolerance tests: deterministic fault injection, store
 * durability under injected IO failures, retry/backoff attempt
 * accounting, watchdog cancellation, parallelFor error aggregation,
 * and child-process integration tests for --keep-going MISSING
 * rendering and SIGKILL crash-resume.
 *
 * Every test configures the injector explicitly, so the suite
 * passes identically with and without a RODINIA_FAULTS environment
 * (the faults-smoke ctest lane pins RODINIA_FAULTS=seed=... to
 * prove the env path is exercised end to end in the children).
 */

#include <gtest/gtest.h>

#include <signal.h>
#include <sys/wait.h>
#include <unistd.h>

#include <atomic>
#include <chrono>
#include <cstdlib>
#include <filesystem>
#include <fstream>
#include <map>
#include <stdexcept>
#include <string>
#include <thread>
#include <vector>

#include "driver/context.hh"
#include "driver/executor.hh"
#include "driver/failure.hh"
#include "driver/job.hh"
#include "driver/result_store.hh"
#include "gpusim/timing.hh"
#include "support/cancel.hh"
#include "support/faultinject.hh"

using namespace rodinia;
using driver::ErrorClass;
using driver::Executor;
using driver::JobGraph;
using driver::JobStatus;
using driver::ResultStore;
using support::FaultInjector;
using support::FaultOp;

namespace {

/** Fresh scratch directory under the system temp dir. */
class ScratchDir
{
  public:
    explicit ScratchDir(const std::string &tag)
        : path(std::filesystem::temp_directory_path() /
               ("rodinia_fault_test_" + tag))
    {
        std::filesystem::remove_all(path);
    }
    ~ScratchDir() { std::filesystem::remove_all(path); }
    const std::filesystem::path &dir() const { return path; }

  private:
    std::filesystem::path path;
};

/** RAII injector configuration; restores "no faults" on exit so
 *  tests stay independent when run in one process. */
class FaultConfig
{
  public:
    explicit FaultConfig(const std::string &spec)
    {
        FaultInjector::instance().configure(spec);
    }
    ~FaultConfig() { FaultInjector::instance().configure(""); }
};

bool
dirHasTmpDroppings(const std::filesystem::path &dir)
{
    std::error_code ec;
    for (const auto &entry :
         std::filesystem::directory_iterator(dir, ec))
        if (entry.path().filename().string().find(".tmp.") !=
            std::string::npos)
            return true;
    return false;
}

// ---------------------------------------------------------------
// Child-process harness for the experiments CLI
// ---------------------------------------------------------------

struct Child
{
    pid_t pid = -1;
    int outFd = -1;
};

/**
 * Spawn the experiments binary with an explicit fault spec ("" =
 * none) and cache directory. The child's stdout comes back through
 * outFd; stderr is inherited (visible on test failure).
 */
Child
spawnExperiments(const std::vector<std::string> &args,
                 const std::string &faults,
                 const std::string &cacheDir)
{
    int fds[2];
    if (pipe(fds) != 0)
        return {};
    pid_t pid = fork();
    if (pid == 0) {
        dup2(fds[1], STDOUT_FILENO);
        close(fds[0]);
        close(fds[1]);
        // The child's fault/cache environment is always explicit:
        // never inherit the test runner's (the faults-smoke lane
        // exports RODINIA_FAULTS for the whole suite).
        unsetenv("RODINIA_FAULTS");
        unsetenv("RODINIA_CACHE_DIR");
        if (!faults.empty())
            setenv("RODINIA_FAULTS", faults.c_str(), 1);
        std::vector<std::string> all = {RODINIA_EXPERIMENTS_BIN,
                                        "--cache-dir", cacheDir};
        all.insert(all.end(), args.begin(), args.end());
        std::vector<char *> argv;
        for (auto &a : all)
            argv.push_back(const_cast<char *>(a.c_str()));
        argv.push_back(nullptr);
        execv(argv[0], argv.data());
        _exit(127);
    }
    close(fds[1]);
    return {pid, fds[0]};
}

std::string
readAll(int fd)
{
    std::string out;
    char buf[4096];
    for (;;) {
        ssize_t n = read(fd, buf, sizeof(buf));
        if (n > 0) {
            out.append(buf, size_t(n));
            continue;
        }
        if (n < 0 && errno == EINTR)
            continue;
        break;
    }
    close(fd);
    return out;
}

/** @return the child's exit code, or 128+signal if killed. */
int
reapChild(pid_t pid)
{
    int st = 0;
    if (waitpid(pid, &st, 0) != pid)
        return -1;
    if (WIFEXITED(st))
        return WEXITSTATUS(st);
    if (WIFSIGNALED(st))
        return 128 + WTERMSIG(st);
    return -1;
}

struct RunResult
{
    int exit = -1;
    std::string out;
};

RunResult
runExperiments(const std::vector<std::string> &args,
               const std::string &faults, const std::string &cacheDir)
{
    Child c = spawnExperiments(args, faults, cacheDir);
    RunResult r;
    if (c.pid < 0)
        return r;
    r.out = readAll(c.outFd); // drain before reaping: no pipe stall
    r.exit = reapChild(c.pid);
    return r;
}

/** Sorted (filename, payload) list of published store entries. */
std::vector<std::pair<std::string, std::string>>
storeContents(const std::filesystem::path &dir)
{
    std::vector<std::pair<std::string, std::string>> out;
    std::error_code ec;
    for (const auto &entry :
         std::filesystem::directory_iterator(dir, ec)) {
        std::string name = entry.path().filename().string();
        if (name.find(".tmp.") != std::string::npos)
            continue;
        std::ifstream in(entry.path(), std::ios::binary);
        std::ostringstream buf;
        buf << in.rdbuf();
        out.emplace_back(name, buf.str());
    }
    std::sort(out.begin(), out.end());
    return out;
}

} // namespace

// ---------------------------------------------------------------
// FaultSpec — RODINIA_FAULTS grammar
// ---------------------------------------------------------------

TEST(FaultSpec, MalformedSpecsDie)
{
    auto &inj = FaultInjector::instance();
    EXPECT_DEATH(inj.configure("write=2"), "RODINIA_FAULTS");
    EXPECT_DEATH(inj.configure("write=abc"), "RODINIA_FAULTS");
    EXPECT_DEATH(inj.configure("bogus=1"), "RODINIA_FAULTS");
    EXPECT_DEATH(inj.configure("fail="), "RODINIA_FAULTS");
    EXPECT_DEATH(inj.configure("stall=x"), "RODINIA_FAULTS");
    EXPECT_DEATH(inj.configure("stall=x@0"), "RODINIA_FAULTS");
    EXPECT_DEATH(inj.configure("seed"), "RODINIA_FAULTS");
}

TEST(FaultSpec, EmptySpecDisablesEverything)
{
    auto &inj = FaultInjector::instance();
    inj.configure("write=1,fsync=1,rename=1,unlink=1");
    EXPECT_TRUE(inj.enabled());
    EXPECT_TRUE(inj.failFile(FaultOp::Write, "k"));
    inj.configure("");
    EXPECT_FALSE(inj.enabled());
    EXPECT_FALSE(inj.failFile(FaultOp::Write, "k"));
    EXPECT_EQ(inj.injectedFileFailures(FaultOp::Write), 0u);
}

// ---------------------------------------------------------------
// FaultInject — decision determinism and stalls
// ---------------------------------------------------------------

TEST(FaultInject, DecisionsAreDeterministicPerSeedAndSite)
{
    auto &inj = FaultInjector::instance();
    auto sample = [&](const std::string &spec) {
        inj.configure(spec);
        std::vector<bool> out;
        for (int i = 0; i < 64; ++i)
            out.push_back(inj.failFile(FaultOp::Fsync, "entry_a"));
        return out;
    };
    auto a1 = sample("seed=7,fsync=0.5");
    auto a2 = sample("seed=7,fsync=0.5");
    EXPECT_EQ(a1, a2);
    // Some decision in 64 draws fires and some passes.
    EXPECT_NE(std::count(a1.begin(), a1.end(), true), 0);
    EXPECT_NE(std::count(a1.begin(), a1.end(), false), 0);
    auto b = sample("seed=8,fsync=0.5");
    EXPECT_NE(a1, b) << "seed must steer the decision sequence";
    // A different site key draws an independent sequence.
    inj.configure("seed=7,fsync=0.5");
    std::vector<bool> other;
    for (int i = 0; i < 64; ++i)
        other.push_back(inj.failFile(FaultOp::Fsync, "entry_b"));
    EXPECT_NE(a1, other);
    inj.configure("");
}

TEST(FaultInject, StallsServeSlicedAndCountOnce)
{
    FaultConfig cfg("stall=site:x@40");
    auto &inj = FaultInjector::instance();
    auto t0 = std::chrono::steady_clock::now();
    inj.maybeStall("pre/site:x/post");
    double ms = std::chrono::duration<double, std::milli>(
                    std::chrono::steady_clock::now() - t0)
                    .count();
    EXPECT_GE(ms, 35.0);
    EXPECT_EQ(inj.stallsServed(), 1u);
    inj.maybeStall("unrelated");
    EXPECT_EQ(inj.stallsServed(), 1u);
}

TEST(FaultInject, StallHonorsCancellation)
{
    FaultConfig cfg("stall=slow@10000");
    support::CancelToken token;
    std::thread canceller([&] {
        std::this_thread::sleep_for(std::chrono::milliseconds(50));
        token.cancel("test cancel");
    });
    support::CancelScope scope(&token);
    auto t0 = std::chrono::steady_clock::now();
    EXPECT_THROW(FaultInjector::instance().maybeStall("slow-site"),
                 support::CancelledError);
    double ms = std::chrono::duration<double, std::milli>(
                    std::chrono::steady_clock::now() - t0)
                    .count();
    EXPECT_LT(ms, 5000.0) << "stall must unwind at the cancellation "
                             "checkpoint, not sleep out the full "
                             "duration";
    canceller.join();
}

// ---------------------------------------------------------------
// ResultStore under injected IO failures
// ---------------------------------------------------------------

TEST(FaultInject, StoreSurvivesInjectedPublishFailures)
{
    ResultStore::Key key;
    key.kind = "cpuchar";
    key.workload = "kmeans";
    for (const char *spec :
         {"write=1", "fsync=1", "rename=1"}) {
        ScratchDir scratch(std::string("pub_") + spec[0]);
        FaultConfig cfg(spec);
        ResultStore store(scratch.dir());
        EXPECT_FALSE(store.store(key, "payload\n")) << spec;
        EXPECT_EQ(store.publishFailures(), 1u) << spec;
        // The failed publish left no entry and no torn bytes.
        EXPECT_FALSE(store.load(key).has_value()) << spec;
        EXPECT_FALSE(dirHasTmpDroppings(scratch.dir())) << spec;
        // With the fault cleared the same store recovers.
        FaultInjector::instance().configure("");
        EXPECT_TRUE(store.store(key, "payload\n")) << spec;
        auto loaded = store.load(key);
        ASSERT_TRUE(loaded.has_value()) << spec;
        EXPECT_EQ(*loaded, "payload\n") << spec;
    }
}

TEST(ResultStoreFaults, CollectsOrphanedTmpFilesOnOpen)
{
    ScratchDir scratch("tmpgc");
    ResultStore::Key key;
    key.kind = "cpuchar";
    key.workload = "bfs";
    {
        ResultStore writer(scratch.dir());
        ASSERT_TRUE(writer.store(key, "good\n"));
        EXPECT_EQ(writer.tmpCollected(), 0u);
    }
    // Fake the droppings of two publishes that crashed between
    // write and rename.
    std::ofstream(scratch.dir() / "cpuchar_bfs_feed.txt.tmp.123")
        << "half";
    std::ofstream(scratch.dir() / "gpustats_cfd_beef.txt.tmp.9")
        << "torn";
    ResultStore store(scratch.dir());
    EXPECT_EQ(store.tmpCollected(), 2u);
    EXPECT_FALSE(dirHasTmpDroppings(scratch.dir()));
    auto loaded = store.load(key);
    ASSERT_TRUE(loaded.has_value()) << "GC must not touch published "
                                       "entries";
    EXPECT_EQ(*loaded, "good\n");
}

TEST(ResultStoreFaults, DiscardIsIdempotentUnderInjectedUnlinkFailure)
{
    ScratchDir scratch("discard");
    ResultStore store(scratch.dir());
    ResultStore::Key key;
    key.kind = "cpuchar";
    key.workload = "lud";
    ASSERT_TRUE(store.store(key, "corrupt\n"));
    ASSERT_TRUE(store.load(key).has_value());
    EXPECT_EQ(store.hits(), 1u);
    EXPECT_EQ(store.misses(), 0u);

    FaultInjector::instance().configure("unlink=1");
    store.discard(key);
    // The unlink failed: the entry survives and the hit/miss
    // ledger is untouched.
    EXPECT_TRUE(std::filesystem::exists(store.pathFor(key)));
    EXPECT_EQ(store.hits(), 1u);
    EXPECT_EQ(store.misses(), 0u);

    FaultInjector::instance().configure("");
    store.discard(key);
    EXPECT_FALSE(std::filesystem::exists(store.pathFor(key)));
    EXPECT_EQ(store.hits(), 0u);
    EXPECT_EQ(store.misses(), 1u);

    // Repeating the discard is a no-op, not a double reclassify.
    store.discard(key);
    EXPECT_EQ(store.hits(), 0u);
    EXPECT_EQ(store.misses(), 1u);
}

// ---------------------------------------------------------------
// Retry — transient/permanent taxonomy and attempt accounting
// ---------------------------------------------------------------

TEST(Retry, TransientErrorRetriesUntilSuccess)
{
    Executor ex(2);
    ex.setRetryPolicy({3, 1, 2});
    JobGraph g;
    std::atomic<int> calls{0};
    size_t id = g.add("flaky", [&] {
        if (calls.fetch_add(1) < 2)
            throw driver::TransientError("publish race");
    });
    EXPECT_TRUE(ex.run(g));
    EXPECT_EQ(g.job(id).status, JobStatus::Done);
    EXPECT_EQ(g.job(id).attempts, 3);
    EXPECT_EQ(g.job(id).errorClass, ErrorClass::None);
    EXPECT_EQ(calls.load(), 3);
}

TEST(Retry, TransientExhaustionFailsWithClassAndAttempts)
{
    Executor ex(2);
    ex.setRetryPolicy({3, 1, 2});
    JobGraph g;
    std::atomic<int> calls{0};
    size_t id = g.add("doomed", [&] {
        ++calls;
        throw driver::TransientError("store io down");
    });
    EXPECT_FALSE(ex.run(g));
    EXPECT_EQ(g.job(id).status, JobStatus::Failed);
    EXPECT_EQ(g.job(id).attempts, 3);
    EXPECT_EQ(g.job(id).errorClass, ErrorClass::StoreIo);
    EXPECT_EQ(g.job(id).error, "store io down");
    EXPECT_EQ(calls.load(), 3);
}

TEST(Retry, PermanentErrorFailsOnFirstAttempt)
{
    Executor ex(2);
    ex.setRetryPolicy({5, 1, 2});
    JobGraph g;
    std::atomic<int> calls{0};
    size_t id = g.add("broken", [&] {
        ++calls;
        throw std::runtime_error("logic bug");
    });
    EXPECT_FALSE(ex.run(g));
    EXPECT_EQ(g.job(id).status, JobStatus::Failed);
    EXPECT_EQ(g.job(id).attempts, 1);
    EXPECT_EQ(g.job(id).errorClass, ErrorClass::Workload);
    EXPECT_EQ(calls.load(), 1);
}

TEST(Retry, InjectedTransientFaultRetriesThenSucceeds)
{
    FaultConfig cfg("fail=flaky@transient@2");
    Executor ex(2);
    ex.setRetryPolicy({3, 1, 2});
    JobGraph g;
    std::atomic<int> ran{0};
    size_t id = g.add("flaky", [&] { ++ran; });
    size_t other = g.add("steady", [] {});
    EXPECT_TRUE(ex.run(g));
    EXPECT_EQ(g.job(id).status, JobStatus::Done);
    EXPECT_EQ(g.job(id).attempts, 3);
    EXPECT_EQ(g.job(other).attempts, 1);
    EXPECT_EQ(ran.load(), 1) << "the body must run only on the "
                                "attempt that survives injection";
    EXPECT_EQ(FaultInjector::instance().injectedJobFailures(), 2u);
}

TEST(Retry, InjectedPermanentFaultFailsAndSkipsDependents)
{
    FaultConfig cfg("fail=figure:x@permanent");
    Executor ex(2);
    JobGraph g;
    size_t boom = g.add("figure:x", [] {});
    size_t child = g.add("child", [] {}, {boom});
    EXPECT_FALSE(ex.run(g));
    EXPECT_EQ(g.job(boom).status, JobStatus::Failed);
    EXPECT_EQ(g.job(boom).errorClass, ErrorClass::Injected);
    EXPECT_EQ(g.job(boom).attempts, 1);
    EXPECT_EQ(g.job(boom).error,
              "injected fault in job 'figure:x' (attempt 1)");
    EXPECT_EQ(g.job(child).status, JobStatus::Skipped);
    EXPECT_EQ(g.job(child).errorClass, ErrorClass::Skipped);
    EXPECT_EQ(g.job(child).error,
              "skipped: dependency 'figure:x' failed");
}

TEST(Retry, PerJobMaxAttemptsOverridesPolicy)
{
    Executor ex(1);
    ex.setRetryPolicy({5, 1, 2});
    JobGraph g;
    std::atomic<int> calls{0};
    size_t id = g.add("capped", [&] {
        ++calls;
        throw driver::TransientError("io");
    });
    g.job(id).maxAttempts = 2;
    EXPECT_FALSE(ex.run(g));
    EXPECT_EQ(g.job(id).attempts, 2);
    EXPECT_EQ(calls.load(), 2);
}

// ---------------------------------------------------------------
// Watchdog — soft deadlines and cooperative cancellation
// ---------------------------------------------------------------

TEST(Watchdog, CancelsJobExceedingSoftDeadline)
{
    Executor ex(2);
    JobGraph g;
    size_t slow = g.add("slow", [] {
        auto give_up = std::chrono::steady_clock::now() +
                       std::chrono::seconds(10);
        while (std::chrono::steady_clock::now() < give_up) {
            support::checkpointCancellation();
            std::this_thread::sleep_for(
                std::chrono::milliseconds(5));
        }
    });
    size_t fast = g.add("fast", [] {});
    g.job(slow).softDeadlineMs = 60.0;
    auto t0 = std::chrono::steady_clock::now();
    EXPECT_FALSE(ex.run(g));
    double ms = std::chrono::duration<double, std::milli>(
                    std::chrono::steady_clock::now() - t0)
                    .count();
    EXPECT_EQ(g.job(slow).status, JobStatus::Failed);
    EXPECT_EQ(g.job(slow).errorClass, ErrorClass::Deadline);
    EXPECT_EQ(g.job(slow).attempts, 1) << "deadline failures must "
                                          "not retry";
    EXPECT_EQ(g.job(slow).error,
              "watchdog: job 'slow' exceeded soft deadline of 60 ms");
    EXPECT_EQ(g.job(fast).status, JobStatus::Done);
    EXPECT_LT(ms, 8000.0) << "cancellation must cut the 10 s loop "
                             "short";
}

TEST(Watchdog, CancelsDeliberatelyStalledSim)
{
    FaultConfig cfg("stall=sim:@10000");
    Executor ex(2);
    driver::Context ctx(nullptr, &ex);
    JobGraph g;
    size_t sim = g.add("gpu-sim", [&] {
        ctx.gpuStats("kmeans", core::Scale::Tiny, 0,
                     gpusim::SimConfig::shaders(4));
    });
    g.job(sim).softDeadlineMs = 150.0;
    auto t0 = std::chrono::steady_clock::now();
    EXPECT_FALSE(ex.run(g));
    double ms = std::chrono::duration<double, std::milli>(
                    std::chrono::steady_clock::now() - t0)
                    .count();
    EXPECT_EQ(g.job(sim).status, JobStatus::Failed);
    EXPECT_EQ(g.job(sim).errorClass, ErrorClass::Deadline);
    EXPECT_LT(ms, 8000.0) << "the 10 s stall must be cancelled at "
                             "a checkpoint, not served";
}

TEST(Watchdog, DeadlineCancellationReachesNestedParallelFor)
{
    Executor ex(2);
    JobGraph g;
    size_t id = g.add("nested", [&] {
        ex.parallelFor(4, [](size_t) {
            auto give_up = std::chrono::steady_clock::now() +
                           std::chrono::seconds(10);
            while (std::chrono::steady_clock::now() < give_up) {
                support::checkpointCancellation();
                std::this_thread::sleep_for(
                    std::chrono::milliseconds(5));
            }
        });
    });
    g.job(id).softDeadlineMs = 60.0;
    auto t0 = std::chrono::steady_clock::now();
    EXPECT_FALSE(ex.run(g));
    double ms = std::chrono::duration<double, std::milli>(
                    std::chrono::steady_clock::now() - t0)
                    .count();
    EXPECT_EQ(g.job(id).errorClass, ErrorClass::Deadline)
        << g.job(id).error;
    EXPECT_LT(ms, 8000.0);
}

// ---------------------------------------------------------------
// Aggregate — parallelFor exception collection
// ---------------------------------------------------------------

TEST(Aggregate, ParallelForCollectsEveryConcurrentError)
{
    Executor ex(4);
    // All four iterations run concurrently (one per drainer) and
    // throw only after everyone has arrived, so no iteration can be
    // abandoned before it fails — the aggregate must list all four.
    std::atomic<int> arrived{0};
    try {
        ex.parallelFor(4, [&](size_t i) {
            arrived.fetch_add(1);
            auto give_up = std::chrono::steady_clock::now() +
                           std::chrono::seconds(30);
            while (arrived.load() < 4 &&
                   std::chrono::steady_clock::now() < give_up)
                std::this_thread::sleep_for(
                    std::chrono::milliseconds(1));
            throw std::runtime_error("iter " + std::to_string(i));
        });
        FAIL() << "parallelFor must throw";
    } catch (const driver::AggregateError &e) {
        EXPECT_EQ(e.errorCount(), 4u);
        EXPECT_FALSE(e.allTransient());
        std::string what = e.what();
        EXPECT_NE(what.find("4 of 4 parallel iterations failed"),
                  std::string::npos)
            << what;
        for (int i = 0; i < 4; ++i)
            EXPECT_NE(what.find("iter " + std::to_string(i)),
                      std::string::npos)
                << what;
    }
}

TEST(Aggregate, SingleErrorKeepsItsOriginalType)
{
    Executor ex(4);
    EXPECT_THROW(ex.parallelFor(64,
                                [&](size_t i) {
                                    if (i == 3)
                                        throw std::out_of_range("x");
                                }),
                 std::out_of_range);
}

TEST(Aggregate, AllTransientComponentsMakeTheAggregateTransient)
{
    Executor ex(4);
    ex.setRetryPolicy({2, 1, 2});
    JobGraph g;
    std::atomic<int> rounds{0};
    // Every iteration fails transiently on the first job attempt;
    // the aggregate is classified transient, so the *job* retries
    // and succeeds on attempt 2.
    size_t id = g.add("sweep", [&] {
        int round = rounds.fetch_add(1);
        std::atomic<int> arrived{0};
        ex.parallelFor(4, [&](size_t) {
            arrived.fetch_add(1);
            auto give_up = std::chrono::steady_clock::now() +
                           std::chrono::seconds(30);
            while (arrived.load() < 4 &&
                   std::chrono::steady_clock::now() < give_up)
                std::this_thread::sleep_for(
                    std::chrono::milliseconds(1));
            if (round == 0)
                throw driver::TransientError("flap");
        });
    });
    EXPECT_TRUE(ex.run(g));
    EXPECT_EQ(g.job(id).status, JobStatus::Done);
    EXPECT_EQ(g.job(id).attempts, 2);
}

TEST(Aggregate, CancellationDominatesAggregation)
{
    Executor ex(4);
    support::CancelToken token;
    token.cancel("stop everything");
    support::CancelScope scope(&token);
    try {
        ex.parallelFor(8, [](size_t) {
            support::checkpointCancellation();
        });
        FAIL() << "parallelFor must throw";
    } catch (const support::CancelledError &e) {
        // Helpers inherited the caller's token, every iteration
        // threw CancelledError, and the deterministic token reason
        // — not an iteration-count-dependent aggregate — surfaced.
        EXPECT_STREQ(e.what(), "stop everything");
    }
}

// ---------------------------------------------------------------
// AllocFault — injected allocation failure
// ---------------------------------------------------------------

TEST(AllocFault, InjectedAllocationFailureFailsJobAsOom)
{
    FaultConfig cfg("alloc=1");
    Executor ex(1);
    ex.setRetryPolicy({2, 1, 2});
    JobGraph g;
    size_t id = g.add("hungry", [] {
        std::vector<int> v(4096, 1);
        if (v[0] != 1)
            throw std::runtime_error("unreachable");
    });
    EXPECT_FALSE(ex.run(g));
    EXPECT_EQ(g.job(id).status, JobStatus::Failed);
    EXPECT_EQ(g.job(id).errorClass, ErrorClass::Oom);
    EXPECT_EQ(g.job(id).attempts, 2) << "bad_alloc is transient and "
                                        "must be retried";
    EXPECT_GE(FaultInjector::instance().injectedFileFailures(
                  FaultOp::Alloc),
              2u);
}

// ---------------------------------------------------------------
// KeepGoing — MISSING rendering (child-process integration)
// ---------------------------------------------------------------

TEST(KeepGoing, InjectedFigureFailureRendersMissingDeterministically)
{
    ScratchDir scratch("keepgoing");
    std::string dir = scratch.dir().string();
    std::vector<std::string> args = {"--figure",
                                     "table1,ablation_coalesce",
                                     "--quiet", "--no-summary"};
    // Warm the store so the faulted reruns are cheap and the clean
    // reference exists.
    RunResult clean = runExperiments(args, "", dir);
    ASSERT_EQ(clean.exit, 0) << clean.out;
    ASSERT_EQ(clean.out.find("MISSING("), std::string::npos);

    std::vector<std::string> keep = args;
    keep.push_back("--keep-going");
    const std::string faults = "fail=figure:table1@permanent";
    RunResult faulted = runExperiments(keep, faults, dir);
    EXPECT_NE(faulted.exit, 0) << "a failed figure must exit "
                                  "non-zero";
    EXPECT_NE(faulted.out.find("MISSING(injected)"),
              std::string::npos)
        << faulted.out;
    EXPECT_NE(faulted.out.find(
                  "injected fault in job 'figure:table1'"),
              std::string::npos)
        << faulted.out;

    // MISSING rendering is deterministic: a second faulted run is
    // byte-identical.
    RunResult again = runExperiments(keep, faults, dir);
    EXPECT_EQ(faulted.out, again.out);
    EXPECT_EQ(faulted.exit, again.exit);

    // The surviving figure is byte-identical to the clean run.
    size_t cleanAt = clean.out.find("===== ablation/coalesce");
    size_t faultAt = faulted.out.find("===== ablation/coalesce");
    ASSERT_NE(cleanAt, std::string::npos);
    ASSERT_NE(faultAt, std::string::npos);
    EXPECT_EQ(clean.out.substr(cleanAt), faulted.out.substr(faultAt));
}

TEST(KeepGoing, WithoutFlagSuppressesFigureOutputOnFailure)
{
    ScratchDir scratch("nokeep");
    std::string dir = scratch.dir().string();
    std::vector<std::string> args = {"--figure", "table1", "--quiet",
                                     "--no-summary"};
    RunResult faulted = runExperiments(
        args, "fail=figure:table1@permanent", dir);
    EXPECT_NE(faulted.exit, 0);
    EXPECT_EQ(faulted.out.find("====="), std::string::npos)
        << "all-or-nothing mode must not print figure sections: "
        << faulted.out;
}

// ---------------------------------------------------------------
// CrashResume — SIGKILL mid-run, rerun, byte-identical output
// ---------------------------------------------------------------

TEST(CrashResume, SigkilledRunResumesByteIdenticalFromStore)
{
    ScratchDir reference("resume_ref");
    ScratchDir resumed("resume_kill");
    std::vector<std::string> args = {"--figure", "ablation_coalesce",
                                     "--jobs", "1", "--quiet",
                                     "--no-summary"};

    // Uninterrupted reference run in its own store.
    RunResult ref = runExperiments(args, "",
                                   reference.dir().string());
    ASSERT_EQ(ref.exit, 0) << ref.out;

    // Interrupted run: stall the first cfd sim so the kmeans sims
    // publish, then SIGKILL mid-campaign (possibly mid-publish —
    // the store's tmp+rename protocol makes that safe).
    Child child = spawnExperiments(args, "stall=sim:cfd@60000",
                                   resumed.dir().string());
    ASSERT_GT(child.pid, 0);
    bool sawPublish = false;
    auto give_up = std::chrono::steady_clock::now() +
                   std::chrono::seconds(120);
    while (std::chrono::steady_clock::now() < give_up) {
        std::error_code ec;
        for (const auto &entry : std::filesystem::directory_iterator(
                 resumed.dir(), ec)) {
            std::string name = entry.path().filename().string();
            if (name.rfind("gpustats_", 0) == 0 &&
                name.find(".tmp.") == std::string::npos)
                sawPublish = true;
        }
        if (sawPublish)
            break;
        std::this_thread::sleep_for(std::chrono::milliseconds(20));
    }
    kill(child.pid, SIGKILL);
    readAll(child.outFd);
    int killedExit = reapChild(child.pid);
    ASSERT_TRUE(sawPublish) << "no sim result was published before "
                               "the timeout";
    EXPECT_EQ(killedExit, 128 + SIGKILL);

    // Resume from the surviving store: byte-identical figures.
    RunResult resume = runExperiments(args, "",
                                      resumed.dir().string());
    ASSERT_EQ(resume.exit, 0) << resume.out;
    EXPECT_EQ(resume.out, ref.out);

    // The resumed store converges to the reference store's exact
    // payload set, with no tmp droppings left behind.
    EXPECT_FALSE(dirHasTmpDroppings(resumed.dir()));
    EXPECT_EQ(storeContents(resumed.dir()),
              storeContents(reference.dir()));

    // A warm rerun re-simulates nothing: every sim is store-served.
    std::vector<std::string> statsArgs = args;
    statsArgs.push_back("--stats");
    RunResult warm = runExperiments(statsArgs, "",
                                    resumed.dir().string());
    ASSERT_EQ(warm.exit, 0);
    EXPECT_NE(warm.out.find("0 sims run / 9 store-served"),
              std::string::npos)
        << warm.out;
}
