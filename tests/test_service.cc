/**
 * @file
 * Tests for the experiment service (src/service/): protocol parsing
 * and fuzz robustness (including the batch/hello grammar),
 * admission-control accounting, end-to-end request handling over a
 * real Unix socket and the loopback TCP listener, cancellation and
 * deadlines, batch sweep streaming, the warm/cold isolation
 * property, and the experimentd + expload child-process smoke path
 * against the golden corpus (plus the weighted/batch replay modes).
 *
 * The WFQ fairness properties, single-flight edge cases, and the
 * seeded multi-client stress flood live in test_service_stress.cc
 * (the service-stress CI lane).
 */

#include <gtest/gtest.h>

#include <sys/socket.h>
#include <sys/types.h>
#include <sys/un.h>
#include <sys/wait.h>
#include <unistd.h>

#include <algorithm>
#include <chrono>
#include <csignal>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "gpusim/timing.hh"
#include "service/admission.hh"
#include "service/client.hh"
#include "service/protocol.hh"
#include "service/server.hh"
#include "support/metrics.hh"

using namespace rodinia;
using service::AdmissionController;
using service::AdmissionPolicy;
using service::ExperimentService;
using service::Json;
using service::Lane;
using service::Outcome;
using service::Request;
using service::ServiceClient;
using service::ServiceConfig;
using service::Verdict;

namespace {

/** Fresh scratch directory under the system temp dir. */
class ScratchDir
{
  public:
    explicit ScratchDir(const std::string &tag)
        : path(std::filesystem::temp_directory_path() /
               ("rodinia_service_test_" + tag))
    {
        std::filesystem::remove_all(path);
        std::filesystem::create_directories(path);
    }
    ~ScratchDir() { std::filesystem::remove_all(path); }
    const std::filesystem::path &dir() const { return path; }

    std::string
    socket() const
    {
        return (path / "d.sock").string();
    }
    std::string
    cache() const
    {
        return (path / "cache").string();
    }

  private:
    std::filesystem::path path;
};

/** Service on a scratch socket with test-friendly small limits. */
ServiceConfig
testConfig(const ScratchDir &scratch)
{
    ServiceConfig cfg;
    cfg.socketPath = scratch.socket();
    cfg.cacheDir = scratch.cache();
    cfg.executorThreads = 2;
    return cfg;
}

uint64_t
simsRun()
{
    return support::metrics::Registry::global().snapshot().value(
        "gpusim.sims_run");
}

} // namespace

// ---------------------------------------------------------------
// Protocol: request parsing.
// ---------------------------------------------------------------

TEST(Protocol, ParsesFigureRequest)
{
    Request req;
    std::string err;
    ASSERT_TRUE(service::parseRequest(
        R"({"op":"figure","id":"r1","figure":"fig1","deadline_ms":250})",
        req, err))
        << err;
    EXPECT_EQ(req.op, service::Op::Figure);
    EXPECT_EQ(req.id, "r1");
    EXPECT_EQ(req.figure, "fig1");
    EXPECT_DOUBLE_EQ(req.deadlineMs, 250.0);
}

TEST(Protocol, ParsesSimRequestAndClampsConfig)
{
    Request req;
    std::string err;
    ASSERT_TRUE(service::parseRequest(
        R"({"op":"sim","id":"r2","workload":"bfs","scale":"tiny",)"
        R"("config":{"numSms":1000000000,"coreClockGhz":0.5}})",
        req, err))
        << err;
    EXPECT_EQ(req.op, service::Op::Sim);
    EXPECT_EQ(req.workload, "bfs");
    EXPECT_EQ(req.scale, core::Scale::Tiny);
    // A request for 10^9 SMs is clamped to the cap, not honoured and
    // not fatal.
    EXPECT_EQ(req.config.numSms, 4096);
    EXPECT_DOUBLE_EQ(req.config.coreClockGhz, 0.5);
    // Unspecified fields keep Table II defaults.
    gpusim::SimConfig defaults;
    EXPECT_EQ(req.config.warpSize, defaults.warpSize);
}

TEST(Protocol, RejectsUnknownTopLevelKey)
{
    Request req;
    std::string err;
    EXPECT_FALSE(service::parseRequest(
        R"({"op":"figure","id":"r3","figure":"fig1","bogus":1})", req,
        err));
    EXPECT_NE(err.find("bogus"), std::string::npos) << err;
    // The id is still recovered so the rejection can be routed.
    EXPECT_EQ(req.id, "r3");
}

TEST(Protocol, RejectsKeysMisplacedAcrossOps)
{
    // The whitelist is per-op: a key that is legal for *some* op
    // must still be rejected on an op it does not belong to, never
    // silently dropped.
    struct Case
    {
        const char *line;
        const char *key;
    } cases[] = {
        {R"({"op":"figure","id":"m1","figure":"fig1","scale":"full"})",
         "scale"},
        {R"({"op":"sim","id":"m2","workload":"bfs","target":"x"})",
         "target"},
        {R"({"op":"sim","id":"m3","workload":"bfs","figure":"fig1"})",
         "figure"},
        {R"({"op":"stats","id":"m4","deadline_ms":100})",
         "deadline_ms"},
        {R"({"op":"cancel","id":"m5","target":"t","config":{}})",
         "config"},
        {R"({"op":"ping","figure":"fig1"})", "figure"},
    };
    for (const Case &c : cases) {
        Request req;
        std::string err;
        EXPECT_FALSE(service::parseRequest(c.line, req, err))
            << "accepted: " << c.line;
        EXPECT_NE(err.find(c.key), std::string::npos) << err;
    }
}

TEST(Protocol, RejectsUnknownConfigField)
{
    Request req;
    std::string err;
    EXPECT_FALSE(service::parseRequest(
        R"({"op":"sim","id":"r4","workload":"bfs",)"
        R"("config":{"numSMs":16}})",
        req, err));
    EXPECT_NE(err.find("numSMs"), std::string::npos) << err;
}

TEST(Protocol, RejectsConfigTheModelRefuses)
{
    // Clamps alone cannot save this one: l2Enabled with a zero-byte
    // L2 passes every per-field range but fails SimConfig::check().
    Request req;
    std::string err;
    EXPECT_FALSE(service::parseRequest(
        R"({"op":"sim","id":"r5","workload":"bfs",)"
        R"("config":{"l2Enabled":true,"l2Bytes":0}})",
        req, err));
    EXPECT_NE(err.find("l2"), std::string::npos) << err;
}

TEST(Protocol, RejectsMalformedJson)
{
    const char *cases[] = {
        "",                                  // empty
        "{",                                 // truncated
        R"({"op":"ping"} trailing)",         // trailing bytes
        R"({"op":"ping","op":"ping"})",      // duplicate key
        R"([1,2,3])",                        // not an object
        R"({"op":"figure","id":"x","figure":12}})", // extra brace
        R"({"op":"figure","id":"x","figure":"\ud800"})", // lone
                                                         // surrogate
        "{\"op\":\"figure\",\"id\":\"x\",\"figure\":\"fig\x01\"}",
        R"({"op":nope})",                    // bad literal
    };
    for (const char *line : cases) {
        Request req;
        std::string err;
        EXPECT_FALSE(service::parseRequest(line, req, err))
            << "accepted: " << line;
        EXPECT_FALSE(err.empty()) << line;
    }
}

TEST(Protocol, RejectsWrongFieldTypes)
{
    Request req;
    std::string err;
    EXPECT_FALSE(service::parseRequest(
        R"({"op":"figure","id":"r6","figure":7})", req, err));
    EXPECT_EQ(req.id, "r6");
    EXPECT_FALSE(service::parseRequest(
        R"({"op":"sim","id":"r7","workload":"bfs","deadline_ms":"x"})",
        req, err));
    EXPECT_FALSE(service::parseRequest(
        R"({"op":"sim","id":"r8","workload":"bfs","scale":"huge"})",
        req, err));
}

TEST(Protocol, ChunkRoundTripSurvivesEscaping)
{
    // Payload bytes that exercise every escape path: quotes,
    // backslash, newline, tab, control chars, and multi-byte UTF-8.
    std::string payload = "a\"b\\c\nd\te\x01f\xc3\xa9|";
    std::string line = service::renderChunk("r9", 3, payload);
    ASSERT_EQ(line.back(), '\n');
    Json root;
    std::string err;
    ASSERT_TRUE(Json::parse(line.substr(0, line.size() - 1), root,
                            err))
        << err;
    EXPECT_EQ(root.get("id")->string(), "r9");
    EXPECT_EQ(root.get("type")->string(), "chunk");
    EXPECT_DOUBLE_EQ(root.get("seq")->number(), 3.0);
    EXPECT_EQ(root.get("data")->string(), payload);
}

TEST(Protocol, DepthCapStopsHostileNesting)
{
    std::string deep;
    for (int i = 0; i < 64; ++i)
        deep += "{\"k\":";
    deep += "1";
    for (int i = 0; i < 64; ++i)
        deep += "}";
    Json root;
    std::string err;
    EXPECT_FALSE(Json::parse(deep, root, err));
    EXPECT_NE(err.find("deep"), std::string::npos) << err;
}

TEST(Protocol, ParsesBatchRequestWithDuplicatePoints)
{
    Request req;
    std::string err;
    ASSERT_TRUE(service::parseRequest(
        R"({"op":"batch","id":"b1","workload":"bfs","scale":"tiny",)"
        R"("sweep":[{"gmemLatencyCycles":410},{},)"
        R"({"gmemLatencyCycles":410}]})",
        req, err))
        << err;
    EXPECT_EQ(req.op, service::Op::Batch);
    EXPECT_EQ(req.workload, "bfs");
    EXPECT_EQ(req.scale, core::Scale::Tiny);
    ASSERT_EQ(req.sweep.size(), 3u);
    // Duplicate points are legal at the grammar level; dedup is the
    // memo's and the single-flight registry's job, not the parser's.
    EXPECT_EQ(req.sweep[0].fingerprint(), req.sweep[2].fingerprint());
    EXPECT_NE(req.sweep[0].fingerprint(), req.sweep[1].fingerprint());
}

TEST(Protocol, ParsesHelloRequestAndBounds)
{
    Request req;
    std::string err;
    ASSERT_TRUE(service::parseRequest(
        R"({"op":"hello","id":"h1","weight":8})", req, err))
        << err;
    EXPECT_EQ(req.op, service::Op::Hello);
    EXPECT_EQ(req.weight, 8u);
    // The wire-level ceiling is a parse error, not a clamp — the
    // server's own policy clamp (maxWeight) happens after admission.
    ASSERT_TRUE(service::parseRequest(
        R"({"op":"hello","id":"h2","weight":4096})", req, err))
        << err;
    EXPECT_EQ(req.weight, service::kMaxHelloWeight);
    EXPECT_FALSE(service::parseRequest(
        R"({"op":"hello","id":"h3","weight":4097})", req, err));
}

TEST(Protocol, BatchAndHelloGrammarRejections)
{
    struct Case
    {
        const char *line;
        const char *needle;
    } cases[] = {
        // batch without a sweep / with a non-array sweep / empty
        {R"({"op":"batch","id":"g1","workload":"bfs"})", "sweep"},
        {R"({"op":"batch","id":"g2","workload":"bfs","sweep":{}})",
         "sweep"},
        {R"({"op":"batch","id":"g3","workload":"bfs","sweep":[]})",
         "at least one"},
        // a broken point is named by its index
        {R"({"op":"batch","id":"g4","workload":"bfs",)"
         R"("sweep":[{},{"numSMs":4}]})",
         "sweep point 1"},
        // keys misplaced across the new ops, never silently dropped
        {R"({"op":"batch","id":"g5","workload":"bfs","sweep":[{}],)"
         R"("config":{}})",
         "config"},
        {R"({"op":"sim","id":"g6","workload":"bfs","sweep":[{}]})",
         "sweep"},
        {R"({"op":"sim","id":"g7","workload":"bfs","weight":3})",
         "weight"},
        {R"({"op":"hello","id":"g8","weight":1,"workload":"bfs"})",
         "workload"},
        // hello weight must be a number in [1, kMaxHelloWeight]
        {R"({"op":"hello","id":"g9","weight":0})", "weight"},
        {R"({"op":"hello","id":"g10","weight":"big"})", "weight"},
        {R"({"op":"hello","id":"g11"})", "weight"},
    };
    for (const Case &c : cases) {
        Request req;
        std::string err;
        EXPECT_FALSE(service::parseRequest(c.line, req, err))
            << "accepted: " << c.line;
        EXPECT_NE(err.find(c.needle), std::string::npos)
            << c.line << " -> " << err;
    }
}

TEST(Protocol, OversizedSweepIsRejected)
{
    std::string line =
        R"({"op":"batch","id":"big","workload":"bfs","sweep":[)";
    for (size_t i = 0; i <= service::kMaxBatchPoints; ++i) {
        if (i)
            line += ",";
        line += "{}";
    }
    line += "]}";
    Request req;
    std::string err;
    EXPECT_FALSE(service::parseRequest(line, req, err));
    EXPECT_NE(err.find("max is"), std::string::npos) << err;
    // The id survives so the rejection can still be routed.
    EXPECT_EQ(req.id, "big");
}

TEST(Protocol, PointAndCoalescedDoneRenderRoundTrip)
{
    Json root;
    std::string err;
    std::string p = service::renderPointServed("b", 2, 77, true);
    ASSERT_EQ(p.back(), '\n');
    ASSERT_TRUE(Json::parse(p.substr(0, p.size() - 1), root, err))
        << err;
    EXPECT_EQ(root.get("id")->string(), "b");
    EXPECT_EQ(root.get("type")->string(), "point");
    EXPECT_EQ(root.get("status")->string(), "served");
    EXPECT_DOUBLE_EQ(root.get("index")->number(), 2.0);
    EXPECT_DOUBLE_EQ(root.get("bytes")->number(), 77.0);
    EXPECT_DOUBLE_EQ(root.get("coalesced")->number(), 1.0);

    std::string e =
        service::renderPointError("b", 3, "sim", "boom \"x\"");
    ASSERT_TRUE(Json::parse(e.substr(0, e.size() - 1), root, err))
        << err;
    EXPECT_EQ(root.get("type")->string(), "point");
    EXPECT_EQ(root.get("status")->string(), "error");
    EXPECT_DOUBLE_EQ(root.get("index")->number(), 3.0);
    EXPECT_EQ(root.get("class")->string(), "sim");
    EXPECT_EQ(root.get("message")->string(), "boom \"x\"");

    std::string d = service::renderDone("b", "cold", 4, 1000, 5, true);
    ASSERT_TRUE(Json::parse(d.substr(0, d.size() - 1), root, err))
        << err;
    EXPECT_EQ(root.get("type")->string(), "done");
    EXPECT_DOUBLE_EQ(root.get("coalesced")->number(), 1.0);
}

// ---------------------------------------------------------------
// SimConfig::check() — the non-fatal boundary validator.
// ---------------------------------------------------------------

TEST(SimConfigCheck, DefaultConfigIsSound)
{
    gpusim::SimConfig cfg;
    EXPECT_EQ(cfg.check(), "");
}

TEST(SimConfigCheck, ReportsViolationWithoutAborting)
{
    gpusim::SimConfig cfg;
    cfg.numSms = 0;
    std::string err = cfg.check();
    EXPECT_NE(err.find("numSms"), std::string::npos) << err;
}

// ---------------------------------------------------------------
// Admission control.
// ---------------------------------------------------------------

TEST(Admission, PerClientQuotaIsEnforced)
{
    AdmissionPolicy policy;
    policy.perClientInFlight = 2;
    AdmissionController ac(policy);
    EXPECT_EQ(ac.admit("a", Lane::Cold), Verdict::Admit);
    EXPECT_EQ(ac.admit("a", Lane::Warm), Verdict::Admit);
    EXPECT_EQ(ac.admit("a", Lane::Cold), Verdict::RejectQuota);
    // Another client is unaffected — that is the fairness point.
    EXPECT_EQ(ac.admit("b", Lane::Cold), Verdict::Admit);
    // finish() releases quota.
    ac.started(Lane::Warm);
    ac.finish("a", Lane::Warm, true);
    EXPECT_EQ(ac.admit("a", Lane::Cold), Verdict::Admit);
}

TEST(Admission, QueueCapRejectsOverload)
{
    AdmissionPolicy policy;
    policy.maxColdQueue = 2;
    policy.perClientInFlight = 100;
    AdmissionController ac(policy);
    EXPECT_EQ(ac.admit("a", Lane::Cold), Verdict::Admit);
    EXPECT_EQ(ac.admit("b", Lane::Cold), Verdict::Admit);
    EXPECT_EQ(ac.admit("c", Lane::Cold), Verdict::RejectOverload);
    // The warm lane has its own cap — a full cold queue does not
    // reject warm work.
    EXPECT_EQ(ac.admit("c", Lane::Warm), Verdict::Admit);
    // Dequeue (start) frees the queue slot even though the request
    // is still in flight.
    ac.started(Lane::Cold);
    EXPECT_EQ(ac.admit("c", Lane::Cold), Verdict::Admit);
}

TEST(Admission, SnapshotCountsEveryVerdict)
{
    AdmissionPolicy policy;
    policy.perClientInFlight = 1;
    policy.maxColdQueue = 1;
    AdmissionController ac(policy);
    ASSERT_EQ(ac.admit("a", Lane::Cold), Verdict::Admit);
    ASSERT_EQ(ac.admit("a", Lane::Cold), Verdict::RejectQuota);
    ASSERT_EQ(ac.admit("b", Lane::Cold), Verdict::RejectOverload);
    ac.started(Lane::Cold);
    ac.finish("a", Lane::Cold, false);

    auto snap = ac.snapshot();
    EXPECT_EQ(snap["a"].admitted, 1u);
    EXPECT_EQ(snap["a"].rejectedQuota, 1u);
    EXPECT_EQ(snap["a"].failed, 1u);
    EXPECT_EQ(snap["a"].inFlight, 0u);
    EXPECT_EQ(snap["b"].rejectedOverload, 1u);
    EXPECT_EQ(ac.queueDepth(Lane::Cold), 0u);
}

// ---------------------------------------------------------------
// End-to-end over a real socket.
// ---------------------------------------------------------------

TEST(Service, PingPong)
{
    ScratchDir scratch("ping");
    ExperimentService svc(testConfig(scratch));
    ASSERT_TRUE(svc.start());

    ServiceClient c;
    ASSERT_TRUE(c.connect(scratch.socket()));
    ASSERT_TRUE(c.sendPing());
    service::Event ev = c.readEvent();
    EXPECT_EQ(ev.type, service::Event::Type::Pong);
    svc.stop();
}

TEST(Service, ColdSimServesParseablePayload)
{
    ScratchDir scratch("coldsim");
    ExperimentService svc(testConfig(scratch));
    ASSERT_TRUE(svc.start());

    ServiceClient c;
    ASSERT_TRUE(c.connect(scratch.socket()));
    ASSERT_TRUE(c.sendSim("s1", "backprop", "tiny", "{}"));
    Outcome out = c.await("s1");
    ASSERT_TRUE(out.ok()) << out.detail;
    EXPECT_EQ(out.lane, "cold");
    gpusim::KernelStats stats;
    EXPECT_TRUE(gpusim::parseKernelStats(out.payload, stats))
        << out.payload.substr(0, 200);
    svc.stop();
}

TEST(Service, SecondIdenticalSimIsWarmAndRunsZeroSims)
{
    ScratchDir scratch("warmsim");
    ExperimentService svc(testConfig(scratch));
    ASSERT_TRUE(svc.start());

    ServiceClient c;
    ASSERT_TRUE(c.connect(scratch.socket()));
    ASSERT_TRUE(c.sendSim("cold", "backprop", "tiny", "{}"));
    Outcome first = c.await("cold");
    ASSERT_TRUE(first.ok()) << first.detail;

    // The service shares this process's metrics registry, so the
    // acceptance criterion is directly checkable: a warm hit must
    // not run a single simulation.
    uint64_t simsBefore = simsRun();
    ASSERT_TRUE(c.sendSim("warm", "backprop", "tiny", "{}"));
    Outcome second = c.await("warm");
    ASSERT_TRUE(second.ok()) << second.detail;
    EXPECT_EQ(second.lane, "warm");
    EXPECT_EQ(simsRun(), simsBefore);
    EXPECT_EQ(second.payload, first.payload);
    svc.stop();
}

TEST(Service, StatsReportsClientsAndQueues)
{
    ScratchDir scratch("stats");
    ExperimentService svc(testConfig(scratch));
    ASSERT_TRUE(svc.start());

    ServiceClient c;
    ASSERT_TRUE(c.connect(scratch.socket()));
    ASSERT_TRUE(c.sendSim("s1", "backprop", "tiny", "{}"));
    ASSERT_TRUE(c.await("s1").ok());
    ASSERT_TRUE(c.sendStats("st"));
    Outcome out = c.await("st");
    ASSERT_TRUE(out.ok());

    Json root;
    std::string err;
    ASSERT_TRUE(Json::parse(out.payload, root, err))
        << err << "\n"
        << out.payload.substr(0, 400);
    ASSERT_NE(root.get("clients"), nullptr);
    const Json *c1 = root.get("clients")->get("c1");
    ASSERT_NE(c1, nullptr);
    EXPECT_DOUBLE_EQ(c1->get("served")->number(), 1.0);
    ASSERT_NE(root.get("queue"), nullptr);
    // The full metrics registry rides along as a sub-object.
    ASSERT_NE(root.get("metrics"), nullptr);
    EXPECT_NE(root.get("metrics")->get("stable"), nullptr);
    svc.stop();
}

TEST(Service, BadRequestsDoNotPoisonTheConnection)
{
    ScratchDir scratch("fuzz");
    ExperimentService svc(testConfig(scratch));
    ASSERT_TRUE(svc.start());

    ServiceClient c;
    ASSERT_TRUE(c.connect(scratch.socket()));

    // Unparseable JSON: rejected with no recoverable id.
    ASSERT_TRUE(c.sendRaw("this is not json\n"));
    service::Event ev = c.readEvent();
    EXPECT_EQ(ev.type, service::Event::Type::Rejected);
    EXPECT_EQ(ev.reason, "bad-request");

    // Structurally valid JSON, semantically broken: id recovered.
    ASSERT_TRUE(
        c.sendRaw(R"({"op":"sim","id":"bad1","workload":42})"
                  "\n"));
    ev = c.readEvent();
    EXPECT_EQ(ev.type, service::Event::Type::Rejected);
    EXPECT_EQ(ev.id, "bad1");

    // Unknown figure and unknown workload are per-request
    // rejections, not parse errors.
    ASSERT_TRUE(c.sendFigure("bad2", "fig99"));
    ev = c.readEvent();
    EXPECT_EQ(ev.type, service::Event::Type::Rejected);
    EXPECT_EQ(ev.reason, "bad-request");
    ASSERT_TRUE(c.sendSim("bad3", "nosuchworkload", "tiny", "{}"));
    ev = c.readEvent();
    EXPECT_EQ(ev.type, service::Event::Type::Rejected);

    // Oversized line: rejected and the excess discarded.
    std::string big(service::kMaxRequestBytes + 100, 'x');
    big += "\n";
    ASSERT_TRUE(c.sendRaw(big));
    ev = c.readEvent();
    EXPECT_EQ(ev.type, service::Event::Type::Rejected);
    EXPECT_NE(ev.detail.find("exceeds"), std::string::npos)
        << ev.detail;

    // After all that abuse the stream still serves real work.
    ASSERT_TRUE(c.sendSim("good", "backprop", "tiny", "{}"));
    EXPECT_TRUE(c.await("good").ok());
    svc.stop();
}

TEST(Client, MalformedResponseLinesAreSkippedNotFatal)
{
    // A hand-rolled "daemon" that answers with one unparseable line
    // and one future-protocol line before the real terminal
    // response: the client must skip both and still complete the
    // request, reserving ConnectionLost for the actual hangup.
    ScratchDir scratch("malresp");
    int lfd = ::socket(AF_UNIX, SOCK_STREAM, 0);
    ASSERT_GE(lfd, 0);
    sockaddr_un addr{};
    addr.sun_family = AF_UNIX;
    std::string path = scratch.socket();
    ASSERT_LT(path.size(), sizeof(addr.sun_path));
    std::memcpy(addr.sun_path, path.c_str(), path.size() + 1);
    ASSERT_EQ(::bind(lfd, reinterpret_cast<sockaddr *>(&addr),
                     sizeof(addr)),
              0);
    ASSERT_EQ(::listen(lfd, 1), 0);
    std::thread fakeDaemon([&] {
        int cfd = ::accept(lfd, nullptr, nullptr);
        EXPECT_GE(cfd, 0);
        std::string lines =
            "certainly not json\n"
            "{\"id\":\"q\",\"type\":\"from-the-future\"}\n"
            "{\"id\":\"q\",\"type\":\"done\",\"lane\":\"warm\","
            "\"chunks\":0,\"bytes\":0,\"wall_us\":1}\n";
        ssize_t wn = ::write(cfd, lines.data(), lines.size());
        EXPECT_EQ(size_t(wn), lines.size());
        ::close(cfd);
    });

    ServiceClient c;
    ASSERT_TRUE(c.connect(scratch.socket()));
    service::Event ev = c.readEvent();
    EXPECT_EQ(ev.type, service::Event::Type::Malformed);
    Outcome out = c.await("q"); // skips the unknown-type line
    EXPECT_TRUE(out.ok());
    EXPECT_EQ(out.lane, "warm");
    // Only the real hangup reports as a lost connection.
    EXPECT_EQ(c.readEvent().type,
              service::Event::Type::ConnectionLost);
    fakeDaemon.join();
    ::close(lfd);
}

TEST(Service, DisconnectedClientsDoNotLeakFds)
{
    if (!std::filesystem::exists("/proc/self/fd"))
        GTEST_SKIP() << "needs /proc to count open fds";
    ScratchDir scratch("fdleak");
    ExperimentService svc(testConfig(scratch));
    ASSERT_TRUE(svc.start());

    auto cycle = [&] {
        ServiceClient c;
        ASSERT_TRUE(c.connect(scratch.socket()));
        ASSERT_TRUE(c.sendPing());
        EXPECT_EQ(c.readEvent().type, service::Event::Type::Pong);
    };
    auto openFds = [] {
        size_t n = 0;
        for ([[maybe_unused]] const auto &e :
             std::filesystem::directory_iterator("/proc/self/fd"))
            ++n;
        return n;
    };

    cycle(); // prime: the newest disconnect is always reaped lazily
    size_t baseline = openFds();
    for (int i = 0; i < 32; ++i)
        cycle();
    // Each accept reaps earlier disconnected conns and ~Conn closes
    // their fds; only the most recent disconnect (plus one
    // slow-reader race) may still be open. Before the destructor
    // existed this grew by one fd per cycle.
    EXPECT_LE(openFds(), baseline + 3);
    svc.stop();
}

TEST(Service, TruncatedLineAtDisconnectIsDropped)
{
    ScratchDir scratch("trunc");
    ExperimentService svc(testConfig(scratch));
    ASSERT_TRUE(svc.start());

    {
        // A request with no terminating newline, then hangup:
        // never parsed, never executed, daemon unharmed.
        ServiceClient half;
        ASSERT_TRUE(half.connect(scratch.socket()));
        ASSERT_TRUE(half.sendRaw(
            R"({"op":"sim","id":"x","workload":"backprop")"));
        half.close();
    }
    // The daemon still accepts and serves new connections.
    ServiceClient c;
    ASSERT_TRUE(c.connect(scratch.socket()));
    ASSERT_TRUE(c.sendPing());
    EXPECT_EQ(c.readEvent().type, service::Event::Type::Pong);
    svc.stop();
}

TEST(Service, MidStreamDisconnectCancelsInFlightWork)
{
    ScratchDir scratch("hangup");
    ServiceConfig cfg = testConfig(scratch);
    cfg.coldWorkers = 1;
    ExperimentService svc(cfg);
    ASSERT_TRUE(svc.start());

    {
        ServiceClient doomed;
        ASSERT_TRUE(doomed.connect(scratch.socket()));
        // Full-scale sims are slow enough that the hangup lands
        // while they are queued or executing.
        ASSERT_TRUE(doomed.sendSim("d1", "bfs", "full", "{}"));
        ASSERT_TRUE(doomed.sendSim("d2", "bfs", "full",
                                   R"({"gmemLatencyCycles":500})"));
        service::Event ev = doomed.readEvent();
        EXPECT_EQ(ev.type, service::Event::Type::Accepted);
        doomed.close();
    }
    // The accounting must converge back to zero in flight (the
    // reaper cancels the dropped client's work), and the daemon
    // keeps serving others.
    ServiceClient c;
    ASSERT_TRUE(c.connect(scratch.socket()));
    ASSERT_TRUE(c.sendSim("ok", "backprop", "tiny", "{}"));
    EXPECT_TRUE(c.await("ok").ok());
    for (int i = 0; i < 200; ++i) {
        uint64_t inFlight = 0;
        for (const auto &[name, cs] : svc.admission().snapshot())
            inFlight += cs.inFlight;
        if (inFlight == 0)
            break;
        std::this_thread::sleep_for(std::chrono::milliseconds(50));
    }
    uint64_t inFlight = 0;
    for (const auto &[name, cs] : svc.admission().snapshot())
        inFlight += cs.inFlight;
    EXPECT_EQ(inFlight, 0u);
    svc.stop();
}

TEST(Service, CancelAbortsQueuedRequest)
{
    ScratchDir scratch("cancel");
    ServiceConfig cfg = testConfig(scratch);
    cfg.coldWorkers = 1;
    ExperimentService svc(cfg);
    ASSERT_TRUE(svc.start());

    ServiceClient c;
    ASSERT_TRUE(c.connect(scratch.socket()));
    // One slow sim occupies the only cold worker; the second waits
    // in queue, where the cancel (processed inline on the reader
    // thread) reaches it long before a worker does.
    ASSERT_TRUE(c.sendSim("busy", "bfs", "full", "{}"));
    ASSERT_TRUE(c.sendSim("victim", "srad", "full", "{}"));
    ASSERT_TRUE(c.sendCancel("kill", "victim"));

    Outcome ack = c.await("kill");
    ASSERT_TRUE(ack.ok()) << ack.detail;
    Outcome victim = c.await("victim");
    EXPECT_EQ(victim.status, Outcome::Status::Error);
    EXPECT_EQ(victim.errorClass, "cancelled");
    // Cancelling an unknown id is a bad request, not a crash.
    ASSERT_TRUE(c.sendCancel("kill2", "nosuchrequest"));
    Outcome miss = c.await("kill2");
    EXPECT_EQ(miss.status, Outcome::Status::Rejected);
    // The busy request is unaffected.
    EXPECT_TRUE(c.await("busy").ok());
    svc.stop();
}

TEST(Service, DeadlineCancelsSlowRequest)
{
    ScratchDir scratch("deadline");
    ExperimentService svc(testConfig(scratch));
    ASSERT_TRUE(svc.start());

    ServiceClient c;
    ASSERT_TRUE(c.connect(scratch.socket()));
    // A full-scale cold sim takes hundreds of milliseconds; a 1 ms
    // deadline expires at the watchdog's first tick while the sim
    // is queued or at an early cancellation checkpoint.
    ASSERT_TRUE(c.sendSim("late", "bfs", "full", "{}", 1.0));
    Outcome out = c.await("late");
    ASSERT_EQ(out.status, Outcome::Status::Error) << out.lane;
    EXPECT_EQ(out.errorClass, "deadline");
    EXPECT_NE(out.detail.find("deadline"), std::string::npos)
        << out.detail;
    svc.stop();
}

TEST(Service, QuotaRejectsFloodWithinOneClient)
{
    ScratchDir scratch("quota");
    ServiceConfig cfg = testConfig(scratch);
    cfg.coldWorkers = 1;
    cfg.admission.perClientInFlight = 1;
    ExperimentService svc(cfg);
    ASSERT_TRUE(svc.start());

    ServiceClient c;
    ASSERT_TRUE(c.connect(scratch.socket()));
    ASSERT_TRUE(c.sendSim("s1", "bfs", "full", "{}"));
    ASSERT_TRUE(c.sendSim("s2", "bfs", "full",
                          R"({"gmemLatencyCycles":510})"));
    Outcome second = c.await("s2");
    EXPECT_EQ(second.status, Outcome::Status::Rejected);
    EXPECT_EQ(second.reason, "quota");
    EXPECT_TRUE(c.await("s1").ok());
    svc.stop();
}

TEST(Service, ColdQueueCapSheds)
{
    ScratchDir scratch("overload");
    ServiceConfig cfg = testConfig(scratch);
    cfg.coldWorkers = 1;
    cfg.admission.maxColdQueue = 1;
    ExperimentService svc(cfg);
    ASSERT_TRUE(svc.start());

    ServiceClient c;
    ASSERT_TRUE(c.connect(scratch.socket()));
    // 6 distinct slow sims against 1 worker and a queue of 1: some
    // are admitted, and at least one must shed as overload.
    for (int i = 0; i < 6; ++i)
        ASSERT_TRUE(c.sendSim(
            "f" + std::to_string(i), "bfs", "full",
            "{\"gmemLatencyCycles\":" + std::to_string(520 + i) +
                "}"));
    int served = 0, overload = 0;
    for (int i = 0; i < 6; ++i) {
        Outcome out = c.await("f" + std::to_string(i));
        if (out.ok())
            ++served;
        else if (out.reason == "overload")
            ++overload;
    }
    EXPECT_GE(served, 1);
    EXPECT_GE(overload, 1);
    svc.stop();
}

// ---------------------------------------------------------------
// The isolation property: a cold flood from one client must not
// move another client's warm-hit latency.
// ---------------------------------------------------------------

TEST(Service, WarmHitsAreIsolatedFromColdFlood)
{
    ScratchDir scratch("isolation");
    ServiceConfig cfg = testConfig(scratch);
    cfg.coldWorkers = 1; // one worker the flood can saturate
    cfg.warmWorkers = 1;
    cfg.admission.maxColdQueue = 64;
    ExperimentService svc(cfg);
    ASSERT_TRUE(svc.start());

    // Prime: client B's result becomes warm.
    ServiceClient b;
    ASSERT_TRUE(b.connect(scratch.socket()));
    ASSERT_TRUE(b.sendSim("prime", "backprop", "tiny", "{}"));
    ASSERT_TRUE(b.await("prime").ok());

    // Client A floods the cold lane with distinct full-scale sims,
    // pipelined so the cold worker and queue stay saturated for the
    // whole measurement window.
    ServiceClient a;
    ASSERT_TRUE(a.connect(scratch.socket()));
    const int kFlood = 12;
    for (int i = 0; i < kFlood; ++i)
        ASSERT_TRUE(a.sendSim(
            "flood" + std::to_string(i), "bfs", "full",
            "{\"gmemLatencyCycles\":" + std::to_string(600 + i) +
                "}"));

    // Meanwhile client B replays its warm hit and records latency.
    std::vector<uint64_t> latUs;
    for (int i = 0; i < 40; ++i) {
        auto t0 = std::chrono::steady_clock::now();
        std::string id = "warm" + std::to_string(i);
        ASSERT_TRUE(b.sendSim(id, "backprop", "tiny", "{}"));
        Outcome out = b.await(id);
        auto us = uint64_t(
            std::chrono::duration_cast<std::chrono::microseconds>(
                std::chrono::steady_clock::now() - t0)
                .count());
        ASSERT_TRUE(out.ok()) << out.detail;
        EXPECT_EQ(out.lane, "warm") << id;
        latUs.push_back(us);
    }
    std::sort(latUs.begin(), latUs.end());
    uint64_t p99 = latUs[(latUs.size() * 99) / 100];

    // Pinned bound: a warm hit is a memo lookup plus one socket
    // round trip — microseconds of work. 100 ms of headroom absorbs
    // scheduler noise while still being orders of magnitude below
    // the multi-second backlog the cold queue carries right now.
    EXPECT_LT(p99, 100000u) << "warm p99 " << p99
                            << "us under cold flood";

    // The flood itself must see real backpressure semantics: every
    // response is either served or an explicit overload rejection.
    int aServed = 0;
    for (int i = 0; i < kFlood; ++i) {
        Outcome out = a.await("flood" + std::to_string(i));
        if (out.ok())
            ++aServed;
        else
            EXPECT_EQ(out.reason, "overload");
    }
    EXPECT_GE(aServed, 1);
    svc.stop();
}

// ---------------------------------------------------------------
// The batch op: one admission unit, per-point streaming.
// ---------------------------------------------------------------

TEST(Service, BatchStreamsPerPointResultsAndDedupes)
{
    ScratchDir scratch("batch");
    ExperimentService svc(testConfig(scratch));
    ASSERT_TRUE(svc.start());

    ServiceClient c;
    ASSERT_TRUE(c.connect(scratch.socket()));
    uint64_t before = simsRun();
    std::vector<std::string> sweep = {
        R"({"gmemLatencyCycles":401})", "{}",
        R"({"gmemLatencyCycles":401})"}; // duplicate of point 0
    ASSERT_TRUE(c.sendBatch("b1", "backprop", "tiny", sweep));
    Outcome out = c.await("b1");
    ASSERT_TRUE(out.ok()) << out.detail;
    ASSERT_EQ(out.points.size(), 3u);
    for (const auto &pt : out.points)
        EXPECT_TRUE(pt.ok) << pt.detail;
    gpusim::KernelStats stats;
    EXPECT_TRUE(gpusim::parseKernelStats(out.points[0].payload, stats))
        << out.points[0].payload.substr(0, 200);
    // The duplicate point is served byte-identically without paying
    // for a second simulation: 3 points, 2 distinct fingerprints,
    // exactly 2 sims.
    EXPECT_EQ(out.points[0].payload, out.points[2].payload);
    EXPECT_NE(out.points[0].payload, out.points[1].payload);
    EXPECT_EQ(simsRun(), before + 2);

    // Replaying the whole sweep is a warm hit end to end.
    ASSERT_TRUE(c.sendBatch("b2", "backprop", "tiny", sweep));
    Outcome again = c.await("b2");
    ASSERT_TRUE(again.ok()) << again.detail;
    EXPECT_EQ(again.lane, "warm");
    EXPECT_EQ(simsRun(), before + 2);
    ASSERT_EQ(again.points.size(), 3u);
    EXPECT_EQ(again.points[0].payload, out.points[0].payload);
    svc.stop();
}

TEST(Service, BatchDeadlineAbortsRemainder)
{
    ScratchDir scratch("batchdl");
    ServiceConfig cfg = testConfig(scratch);
    cfg.coldWorkers = 1;
    ExperimentService svc(cfg);
    ASSERT_TRUE(svc.start());

    ServiceClient c;
    ASSERT_TRUE(c.connect(scratch.socket()));
    // Four full-scale points against a 1 ms deadline: the watchdog
    // fires while the batch is queued or inside an early point, and
    // the remainder must be abandoned with one terminal error (not
    // ground through point by point).
    std::vector<std::string> sweep;
    for (int i = 0; i < 4; ++i)
        sweep.push_back("{\"gmemLatencyCycles\":" +
                        std::to_string(700 + i) + "}");
    ASSERT_TRUE(c.sendBatch("late", "bfs", "full", sweep, 1.0));
    Outcome out = c.await("late");
    ASSERT_EQ(out.status, Outcome::Status::Error) << out.lane;
    EXPECT_EQ(out.errorClass, "deadline");
    EXPECT_LT(out.points.size(), 4u);
    // The connection is still usable after the abort.
    ASSERT_TRUE(c.sendSim("ok", "backprop", "tiny", "{}"));
    EXPECT_TRUE(c.await("ok").ok());
    svc.stop();
}

TEST(Service, BatchMidStreamDisconnectSettlesAccounting)
{
    ScratchDir scratch("batchhang");
    ServiceConfig cfg = testConfig(scratch);
    cfg.coldWorkers = 1;
    ExperimentService svc(cfg);
    ASSERT_TRUE(svc.start());

    {
        ServiceClient doomed;
        ASSERT_TRUE(doomed.connect(scratch.socket()));
        std::vector<std::string> sweep;
        for (int i = 0; i < 3; ++i)
            sweep.push_back("{\"gmemLatencyCycles\":" +
                            std::to_string(800 + i) + "}");
        ASSERT_TRUE(doomed.sendBatch("d1", "bfs", "full", sweep));
        EXPECT_EQ(doomed.readEvent().type,
                  service::Event::Type::Accepted);
        doomed.close();
    }
    // A batch is ONE admission unit: the hangup must release exactly
    // one in-flight unit and the daemon keeps serving.
    ServiceClient c;
    ASSERT_TRUE(c.connect(scratch.socket()));
    ASSERT_TRUE(c.sendSim("ok", "backprop", "tiny", "{}"));
    EXPECT_TRUE(c.await("ok").ok());
    for (int i = 0; i < 200; ++i) {
        uint64_t inFlight = 0;
        for (const auto &[name, cs] : svc.admission().snapshot())
            inFlight += cs.inFlight;
        if (inFlight == 0)
            break;
        std::this_thread::sleep_for(std::chrono::milliseconds(50));
    }
    uint64_t inFlight = 0;
    for (const auto &[name, cs] : svc.admission().snapshot())
        inFlight += cs.inFlight;
    EXPECT_EQ(inFlight, 0u);
    svc.stop();
}

// ---------------------------------------------------------------
// The loopback TCP listener: same protocol, same admission path.
// ---------------------------------------------------------------

TEST(Service, TcpListenerSharesProtocolAndAdmission)
{
    ScratchDir scratch("tcp");
    ServiceConfig cfg = testConfig(scratch);
    cfg.tcpPort = 0; // kernel-chosen ephemeral port
    ExperimentService svc(cfg);
    ASSERT_TRUE(svc.start());
    ASSERT_GT(svc.tcpPort(), 0);

    ServiceClient t;
    ASSERT_TRUE(t.connectTcp(svc.tcpPort()));
    ASSERT_TRUE(t.sendPing());
    EXPECT_EQ(t.readEvent().type, service::Event::Type::Pong);
    ASSERT_TRUE(t.sendSim("s1", "backprop", "tiny", "{}"));
    Outcome out = t.await("s1");
    ASSERT_TRUE(out.ok()) << out.detail;
    EXPECT_EQ(out.lane, "cold");

    // The fuzz contract holds over TCP too: garbage and oversized
    // lines are per-request rejections, never a dropped connection.
    ASSERT_TRUE(t.sendRaw("definitely not json\n"));
    service::Event ev = t.readEvent();
    EXPECT_EQ(ev.type, service::Event::Type::Rejected);
    std::string big(service::kMaxRequestBytes + 10, 'y');
    big += "\n";
    ASSERT_TRUE(t.sendRaw(big));
    ev = t.readEvent();
    EXPECT_EQ(ev.type, service::Event::Type::Rejected);

    // Both transports front the same Context: a sim primed over TCP
    // is a warm hit over the Unix socket, byte for byte.
    ServiceClient u;
    ASSERT_TRUE(u.connect(scratch.socket()));
    ASSERT_TRUE(u.sendSim("warm", "backprop", "tiny", "{}"));
    Outcome w = u.await("warm");
    ASSERT_TRUE(w.ok()) << w.detail;
    EXPECT_EQ(w.lane, "warm");
    EXPECT_EQ(w.payload, out.payload);
    svc.stop();
}

TEST(Service, HelloSetsWeightAndAcks)
{
    ScratchDir scratch("hello");
    ExperimentService svc(testConfig(scratch));
    ASSERT_TRUE(svc.start());

    ServiceClient c;
    ASSERT_TRUE(c.connect(scratch.socket()));
    ASSERT_TRUE(c.sendHello("h1", 8));
    Outcome out = c.await("h1");
    ASSERT_TRUE(out.ok()) << out.detail;
    EXPECT_EQ(out.lane, "hello");
    // Over-asking is clamped server-side (policy maxWeight), not an
    // error; re-declaring is fine; work still flows afterwards.
    ASSERT_TRUE(c.sendHello("h2", service::kMaxHelloWeight));
    EXPECT_TRUE(c.await("h2").ok());
    ASSERT_TRUE(c.sendSim("s", "backprop", "tiny", "{}"));
    EXPECT_TRUE(c.await("s").ok());
    svc.stop();
}

// ---------------------------------------------------------------
// Child-process smoke: experimentd + expload against the golden
// corpus (the CI service-smoke lane runs exactly this).
// ---------------------------------------------------------------

TEST(ServiceSmoke, ExploadReplaysGoldenTraffic)
{
    ScratchDir scratch("smoke");
    std::string sock = scratch.socket();
    // c_str() pointers handed to execv must outlive this statement —
    // a temporary from scratch.cache() would dangle by exec time.
    std::string cacheDir = scratch.cache();

    pid_t daemon = fork();
    ASSERT_GE(daemon, 0);
    if (daemon == 0) {
        const char *argv[] = {RODINIA_EXPERIMENTD_BIN, "--socket",
                              sock.c_str(),  "--cache-dir",
                              cacheDir.c_str(), nullptr};
        execv(argv[0], const_cast<char **>(argv));
        _exit(127);
    }

    int fds[2];
    ASSERT_EQ(pipe(fds), 0);
    pid_t load = fork();
    ASSERT_GE(load, 0);
    if (load == 0) {
        dup2(fds[1], STDOUT_FILENO);
        close(fds[0]);
        close(fds[1]);
        const char *argv[] = {RODINIA_EXPLOAD_BIN,
                              "--socket", sock.c_str(),
                              "--clients", "2",
                              "--requests", "4",
                              "--warm-ratio", "0.5",
                              "--seed", "42",
                              "--figure", "fig1",
                              "--workload", "backprop",
                              "--scale", "tiny",
                              "--golden", RODINIA_GOLDEN_DIR,
                              nullptr};
        execv(argv[0], const_cast<char **>(argv));
        _exit(127);
    }
    close(fds[1]);
    std::string out;
    char buf[4096];
    for (;;) {
        ssize_t n = read(fds[0], buf, sizeof(buf));
        if (n > 0) {
            out.append(buf, size_t(n));
            continue;
        }
        if (n < 0 && errno == EINTR)
            continue;
        break;
    }
    close(fds[0]);
    int st = 0;
    ASSERT_EQ(waitpid(load, &st, 0), load);
    ASSERT_TRUE(WIFEXITED(st)) << out;
    EXPECT_EQ(WEXITSTATUS(st), 0) << out;
    // Every figure payload matched tests/golden/fig1.txt byte for
    // byte, nothing errored, and the run was all-served.
    EXPECT_NE(out.find("golden_mismatch=0"), std::string::npos)
        << out;
    EXPECT_NE(out.find("EXPLOAD ok=1"), std::string::npos) << out;

    kill(daemon, SIGTERM);
    ASSERT_EQ(waitpid(daemon, &st, 0), daemon);
    ASSERT_TRUE(WIFEXITED(st));
    EXPECT_EQ(WEXITSTATUS(st), 0);
}

TEST(ServiceSmoke, ExploadWeightedBatchReplayReportsCoalescing)
{
    // The weighted/batch replay modes: two clients with 3:1 weights
    // sweep the SAME batch points concurrently, so the run exercises
    // hello, batch streaming, and single-flight coalescing end to
    // end, and the extended EXPLOAD summary must carry the coalesce
    // rate and per-client served shares.
    ScratchDir scratch("smokewfq");
    std::string sock = scratch.socket();
    std::string cacheDir = scratch.cache();

    pid_t daemon = fork();
    ASSERT_GE(daemon, 0);
    if (daemon == 0) {
        const char *argv[] = {RODINIA_EXPERIMENTD_BIN, "--socket",
                              sock.c_str(),  "--cache-dir",
                              cacheDir.c_str(), "--max-weight", "16",
                              nullptr};
        execv(argv[0], const_cast<char **>(argv));
        _exit(127);
    }

    int fds[2];
    ASSERT_EQ(pipe(fds), 0);
    pid_t load = fork();
    ASSERT_GE(load, 0);
    if (load == 0) {
        dup2(fds[1], STDOUT_FILENO);
        close(fds[0]);
        close(fds[1]);
        const char *argv[] = {RODINIA_EXPLOAD_BIN,
                              "--socket", sock.c_str(),
                              "--clients", "2",
                              "--requests", "3",
                              "--warm-ratio", "0",
                              "--seed", "7",
                              "--workload", "backprop",
                              "--scale", "tiny",
                              "--batch", "2",
                              "--weights", "3,1",
                              nullptr};
        execv(argv[0], const_cast<char **>(argv));
        _exit(127);
    }
    close(fds[1]);
    std::string out;
    char buf[4096];
    for (;;) {
        ssize_t n = read(fds[0], buf, sizeof(buf));
        if (n > 0) {
            out.append(buf, size_t(n));
            continue;
        }
        if (n < 0 && errno == EINTR)
            continue;
        break;
    }
    close(fds[0]);
    int st = 0;
    ASSERT_EQ(waitpid(load, &st, 0), load);
    ASSERT_TRUE(WIFEXITED(st)) << out;
    EXPECT_EQ(WEXITSTATUS(st), 0) << out;
    EXPECT_NE(out.find("EXPLOAD ok=1"), std::string::npos) << out;
    EXPECT_NE(out.find("coalesce_rate="), std::string::npos) << out;
    EXPECT_NE(out.find("shares="), std::string::npos) << out;

    kill(daemon, SIGTERM);
    ASSERT_EQ(waitpid(daemon, &st, 0), daemon);
    ASSERT_TRUE(WIFEXITED(st));
    EXPECT_EQ(WEXITSTATUS(st), 0);
}
