/**
 * @file
 * Regression tests for the streaming trace representations: the
 * CPU-side delta-encoded columnar EventStream (trace/stream.hh), the
 * GPU-side LaneStream (gpusim/types.hh), record-time line splitting
 * of oversized accesses, the packPc line-overflow fold, interleaved
 * replay order, and spill-to-sink round-trips. Each compact
 * representation must be event-for-event identical to the
 * materialized (oracle) representation for arbitrary inputs — that
 * equivalence is what lets the golden corpus pin paper figures while
 * traces stream through a bounded ring.
 */

#include <gtest/gtest.h>

#include <cstdlib>
#include <filesystem>
#include <map>
#include <source_location>
#include <vector>

#include "driver/context.hh"
#include "driver/result_store.hh"
#include "gpusim/types.hh"
#include "support/rng.hh"
#include "support/tracemode.hh"
#include "trace/stream.hh"
#include "trace/trace.hh"

using namespace rodinia;
using namespace rodinia::trace;

namespace {

/** In-memory spill sink; counts round-trips for the tests. */
class MapSink : public ChunkSink
{
  public:
    void
    put(uint64_t key, const std::string &blob) override
    {
        chunks[key] = blob;
        ++puts;
    }

    bool
    get(uint64_t key, std::string &blob) override
    {
        auto it = chunks.find(key);
        if (it == chunks.end())
            return false;
        blob = it->second;
        ++gets;
        return true;
    }

    std::map<uint64_t, std::string> chunks;
    int puts = 0;
    int gets = 0;
};

/** RAII: install a spill sink, restore the previous one on exit. */
class SpillGuard
{
  public:
    SpillGuard(ChunkSink *sink, uint32_t resident)
        : prevResident(traceSpillResidentChunks()),
          prev(setTraceSpill(sink, resident))
    {
    }
    ~SpillGuard() { setTraceSpill(prev, prevResident); }

  private:
    uint32_t prevResident;
    ChunkSink *prev;
};

std::vector<MemEvent>
randomEvents(uint64_t n, uint64_t seed)
{
    Rng rng(seed);
    std::vector<MemEvent> out;
    out.reserve(size_t(n));
    uint64_t addr = 0x7f0000000000ull;
    for (uint64_t i = 0; i < n; ++i) {
        // Mix of strided walks and far jumps: exercises small
        // positive, negative, and multi-byte zigzag deltas.
        if (rng.chance(0.8))
            addr += 64 * (1 + rng.below(4));
        else
            addr = 0x7f0000000000ull + rng.below(1ull << 40);
        MemEvent e;
        e.addr = addr;
        e.size = uint16_t(1 + rng.below(64));
        e.isWrite = rng.chance(0.3) ? 1 : 0;
        out.push_back(e);
    }
    return out;
}

} // namespace

// ---------------------------------------------------------------
// EventStream: compact encoding vs materialized oracle
// ---------------------------------------------------------------

TEST(EventStream, CompactDecodesIdenticalToMaterialized)
{
    // 3.5 chunks worth of events: covers sealed chunks, the open
    // tail, and the partial flag byte at a non-multiple-of-8 count.
    auto events = randomEvents(3 * EventStream::kChunkEvents + 1837,
                               0xE5E1);
    EventStream compact(false);
    EventStream oracle(true);
    for (const auto &e : events) {
        compact.append(e.addr, e.size, e.isWrite);
        oracle.append(e.addr, e.size, e.isWrite);
    }
    ASSERT_EQ(compact.size(), events.size());
    ASSERT_EQ(oracle.size(), events.size());
    // The compact form must be dramatically smaller — that is the
    // point of streaming; a regression to per-event structs would
    // pass equivalence but fail this.
    EXPECT_LT(compact.encodedBytes(),
              events.size() * sizeof(MemEvent) / 3);

    auto dc = compact.decodeAll();
    auto dm = oracle.decodeAll();
    ASSERT_EQ(dc.size(), events.size());
    for (size_t i = 0; i < events.size(); ++i) {
        ASSERT_EQ(dc[i].addr, events[i].addr) << "event " << i;
        ASSERT_EQ(dc[i].size, events[i].size) << "event " << i;
        ASSERT_EQ(dc[i].isWrite, events[i].isWrite) << "event " << i;
        ASSERT_EQ(dm[i].addr, events[i].addr) << "event " << i;
        ASSERT_EQ(dm[i].size, events[i].size) << "event " << i;
        ASSERT_EQ(dm[i].isWrite, events[i].isWrite) << "event " << i;
    }
}

TEST(EventStream, IndependentCursorsDoNotInterfere)
{
    auto events = randomEvents(EventStream::kChunkEvents + 100, 7);
    EventStream s(false);
    for (const auto &e : events)
        s.append(e.addr, e.size, e.isWrite);
    EventStream::Cursor a(s), b(s);
    MemEvent ea, eb;
    // Advance a half way, then run b to completion, then finish a.
    for (size_t i = 0; i < events.size() / 2; ++i)
        ASSERT_TRUE(a.next(ea));
    size_t nb = 0;
    while (b.next(eb)) {
        EXPECT_EQ(eb.addr, events[nb].addr);
        ++nb;
    }
    EXPECT_EQ(nb, events.size());
    size_t na = events.size() / 2;
    while (a.next(ea)) {
        EXPECT_EQ(ea.addr, events[na].addr);
        ++na;
    }
    EXPECT_EQ(na, events.size());
}

TEST(EventStream, TransformRewritesAndStaysDecodable)
{
    auto events = randomEvents(2 * EventStream::kChunkEvents + 5, 11);
    EventStream s(false);
    for (const auto &e : events)
        s.append(e.addr, e.size, e.isWrite);
    s.transform([](MemEvent &e) { e.addr ^= 0xfff; });
    auto out = s.decodeAll();
    ASSERT_EQ(out.size(), events.size());
    for (size_t i = 0; i < events.size(); ++i)
        ASSERT_EQ(out[i].addr, events[i].addr ^ 0xfff) << i;
}

// ---------------------------------------------------------------
// EventStream: spill-to-sink round-trip
// ---------------------------------------------------------------

TEST(EventStream, SpillsOldestChunksAndRefetchesOnDecode)
{
    MapSink sink;
    SpillGuard guard(&sink, 1); // keep at most 1 sealed chunk resident

    auto events = randomEvents(5 * EventStream::kChunkEvents, 0x5B1);
    EventStream s(false);
    for (const auto &e : events)
        s.append(e.addr, e.size, e.isWrite);
    // 5 sealed chunks, 1 resident: at least 3 must have spilled.
    EXPECT_GE(s.spilledChunks(), 3u);
    EXPECT_EQ(size_t(sink.puts), sink.chunks.size());

    // Two full decodes: spilled chunks are refetched each time, and
    // both passes see the identical event sequence.
    for (int pass = 0; pass < 2; ++pass) {
        auto out = s.decodeAll();
        ASSERT_EQ(out.size(), events.size()) << "pass " << pass;
        for (size_t i = 0; i < events.size(); ++i) {
            ASSERT_EQ(out[i].addr, events[i].addr);
            ASSERT_EQ(out[i].size, events[i].size);
            ASSERT_EQ(out[i].isWrite, events[i].isWrite);
        }
    }
    EXPECT_GE(sink.gets, 2 * 3);
}

TEST(EventStream, SpilledChunkKeysAreContentHashes)
{
    MapSink sink;
    SpillGuard guard(&sink, 0);
    // Two streams with identical content spill chunks with identical
    // keys — the sink (and thus the ResultStore) dedupes them.
    // Spilling runs when the next chunk starts, so with 3 sealed
    // chunks + an open tail all three sealed chunks spill per stream.
    auto events = randomEvents(3 * EventStream::kChunkEvents + 10, 42);
    EventStream a(false), b(false);
    for (const auto &e : events) {
        a.append(e.addr, e.size, e.isWrite);
        b.append(e.addr, e.size, e.isWrite);
    }
    EXPECT_EQ(a.spilledChunks(), 3u);
    EXPECT_EQ(b.spilledChunks(), 3u);
    // Identical chunks landed on the same keys: the map holds half.
    EXPECT_EQ(sink.chunks.size(), size_t(a.spilledChunks()));
    for (const auto &[key, blob] : sink.chunks)
        EXPECT_EQ(key, chunkContentHash(blob));
}

TEST(ResultStoreChunkSink, SpilledChunksRoundTripThroughStore)
{
    // End-to-end: RODINIA_TRACE_SPILL_CHUNKS arms a Context-owned
    // sink that spills trace chunks into the ResultStore; recording
    // past the resident budget must spill, and decoding must read
    // the bytes back from disk.
    auto dir = std::filesystem::temp_directory_path() /
               "rodinia_tracechunk_test";
    std::filesystem::remove_all(dir);
    setenv("RODINIA_TRACE_SPILL_CHUNKS", "1", 1);
    {
        driver::ResultStore store(dir, true);
        driver::Context ctx(&store, nullptr);

        auto events =
            randomEvents(4 * EventStream::kChunkEvents, 0xD15C);
        EventStream s(false);
        for (const auto &e : events)
            s.append(e.addr, e.size, e.isWrite);
        EXPECT_GE(s.spilledChunks(), 2u);

        auto out = s.decodeAll();
        ASSERT_EQ(out.size(), events.size());
        for (size_t i = 0; i < events.size(); ++i)
            ASSERT_EQ(out[i].addr, events[i].addr) << i;
    }
    unsetenv("RODINIA_TRACE_SPILL_CHUNKS");
    std::filesystem::remove_all(dir);
}

// ---------------------------------------------------------------
// Record-time line splitting (the uint16_t truncation fix)
// ---------------------------------------------------------------

TEST(ThreadCtx, OversizedAccessSplitsWithoutTruncation)
{
    // A 200000-byte access does not fit the old uint16_t event size;
    // it used to truncate silently (200000 & 0xffff = 3392 — a 98%
    // footprint loss). Record-time splitting now tiles it into
    // line-sized pieces whose sizes sum exactly.
    const size_t big = 200000;
    std::vector<uint8_t> buf(big);
    TraceSession s(1);
    s.run([&](ThreadCtx &ctx) { ctx.store(buf.data(), big); });
    uint64_t total = 0;
    uint64_t events = 0;
    uint64_t prevEnd = 0;
    s.contexts()[0]->stream().forEach([&](const MemEvent &e) {
        EXPECT_LE(e.size, 64u);
        EXPECT_EQ(e.addr >> 6, (e.addr + e.size - 1) >> 6)
            << "piece straddles a line";
        if (events) {
            EXPECT_EQ(e.addr, prevEnd) << "pieces must tile";
        }
        prevEnd = e.addr + e.size;
        total += e.size;
        ++events;
        EXPECT_EQ(e.isWrite, 1u);
    });
    EXPECT_EQ(total, big);
    EXPECT_GE(events, big / 64);
    // The footprint the figures consume sees every page of the
    // original access.
    EXPECT_GE(s.dataFootprintPages(), (big / 4096) - 1);
}

// ---------------------------------------------------------------
// packPc: line-overflow folding (the clamp-aliasing fix)
// ---------------------------------------------------------------

// #line gives these call sites source lines past the 10-bit packPc
// field, exactly like instrumentation sites deep in a large file.
// Keep the three statements textually identical so the column
// component cancels out of the comparison.
// clang-format off
#line 1500
static const uint16_t kPcLine1500 = gpusim::packPc(std::source_location::current());
#line 2500
static const uint16_t kPcLine2500 = gpusim::packPc(std::source_location::current());
#line 100
static const uint16_t kPcLine100 = gpusim::packPc(std::source_location::current());
#line 272
// clang-format on

TEST(PackPc, LinesPastFieldWidthFoldInsteadOfColliding)
{
    // The old clamp mapped every line > 1023 to 1023, so these two
    // sites shared one PC and the replayer merged their order keys.
    EXPECT_NE(kPcLine1500, kPcLine2500);
    // Folding is a no-op for in-range lines: bits 6..15 hold the
    // line verbatim, so existing recordings hash identically.
    EXPECT_EQ(uint32_t(kPcLine100) >> 6, 100u);
    EXPECT_EQ(uint32_t(kPcLine1500) >> 6,
              (1500u ^ (1500u >> 10)) & 1023u);
}

// ---------------------------------------------------------------
// LaneStream: compact encoding vs materialized oracle
// ---------------------------------------------------------------

TEST(LaneStream, CompactDecodesIdenticalToMaterialized)
{
    Rng rng(0x6A9E);
    std::vector<gpusim::GEvent> events;
    uint64_t addr = 0x10000000;
    for (int i = 0; i < 20000; ++i) {
        gpusim::GEvent e;
        // Keys move in the high bits (PC at 48-63) like real
        // recordings, plus occasional full-width jumps.
        e.key.hi = (uint64_t(1 + rng.below(1023)) << 48) |
                   (rng.chance(0.1) ? rng.below(1ull << 48) : 0);
        e.key.lo = rng.chance(0.2) ? rng.below(~0ull) : 0;
        e.op = gpusim::GOp(rng.below(6));
        if (e.op == gpusim::GOp::Load ||
            e.op == gpusim::GOp::Store) {
            e.space = gpusim::Space(1 + rng.below(6));
            addr += rng.chance(0.5) ? 4 : (0ull - 64);
            e.addr = addr;
            e.size = uint32_t(1 + rng.below(16));
        }
        if (rng.chance(0.1))
            e.count = uint32_t(1 + rng.below(1000));
        events.push_back(e);
    }

    gpusim::LaneStream compact(false), oracle(true);
    for (const auto &e : events) {
        compact.append(e);
        oracle.append(e);
    }
    EXPECT_LT(compact.encodedBytes(), oracle.encodedBytes() / 3);

    auto dc = compact.decodeAll();
    auto dm = oracle.decodeAll();
    ASSERT_EQ(dc.size(), events.size());
    ASSERT_EQ(dm.size(), events.size());
    for (size_t i = 0; i < events.size(); ++i) {
        ASSERT_TRUE(dc[i].key == events[i].key) << "event " << i;
        ASSERT_EQ(dc[i].addr, events[i].addr) << "event " << i;
        ASSERT_EQ(dc[i].size, events[i].size) << "event " << i;
        ASSERT_EQ(dc[i].count, events[i].count) << "event " << i;
        ASSERT_EQ(int(dc[i].op), int(events[i].op)) << "event " << i;
        ASSERT_EQ(int(dc[i].space), int(events[i].space))
            << "event " << i;
        ASSERT_TRUE(dm[i].key == events[i].key) << "event " << i;
        ASSERT_EQ(dm[i].addr, events[i].addr) << "event " << i;
    }
}

TEST(LaneStream, ZeroAddrSizeEventRoundTrips)
{
    // addr == 0 && size == 0 drops the address column (hasAddr bit);
    // a Load with a real zero address but nonzero size must still
    // carry it.
    gpusim::LaneStream s(false);
    gpusim::GEvent a;
    a.op = gpusim::GOp::Load;
    a.space = gpusim::Space::Global;
    a.addr = 0;
    a.size = 4;
    s.append(a);
    gpusim::GEvent b; // pure ALU: no address
    s.append(b);
    auto out = s.decodeAll();
    ASSERT_EQ(out.size(), 2u);
    EXPECT_EQ(out[0].addr, 0u);
    EXPECT_EQ(out[0].size, 4u);
    EXPECT_EQ(out[1].addr, 0u);
    EXPECT_EQ(out[1].size, 0u);
}

// ---------------------------------------------------------------
// Interleaved replay order (the live-cursor compaction rewrite)
// ---------------------------------------------------------------

TEST(TraceSession, InterleaveMatchesRoundRobinReference)
{
    // Ragged thread lengths with one thread crossing a chunk
    // boundary: the compacted live-set walk must still produce the
    // exact round-robin-with-dropout order of the reference.
    const int nt = 5;
    std::vector<size_t> lens = {3, 0, EventStream::kChunkEvents + 7,
                                1, 250};
    TraceSession s(nt);
    std::vector<uint8_t> buf(1 << 16);
    s.run([&](ThreadCtx &ctx) {
        for (size_t i = 0; i < lens[size_t(ctx.tid())]; ++i)
            ctx.load(&buf[(size_t(ctx.tid()) * 8191 + i * 7) %
                          (buf.size() - 8)],
                     4);
    });

    // Reference: per-thread copies walked round-robin.
    std::vector<std::vector<MemEvent>> per;
    for (int t = 0; t < nt; ++t)
        per.push_back(s.contexts()[size_t(t)]->eventsCopy());
    std::vector<std::pair<int, uint64_t>> expected;
    std::vector<size_t> idx(nt, 0);
    bool any = true;
    while (any) {
        any = false;
        for (int t = 0; t < nt; ++t) {
            if (idx[size_t(t)] < per[size_t(t)].size()) {
                expected.emplace_back(
                    t, per[size_t(t)][idx[size_t(t)]++].addr);
                any = true;
            }
        }
    }

    std::vector<std::pair<int, uint64_t>> got;
    s.forEachInterleaved([&](int tid, const MemEvent &e) {
        got.emplace_back(tid, e.addr);
    });
    ASSERT_EQ(got.size(), expected.size());
    for (size_t i = 0; i < got.size(); ++i) {
        ASSERT_EQ(got[i].first, expected[i].first) << "slot " << i;
        ASSERT_EQ(got[i].second, expected[i].second) << "slot " << i;
    }
}

// ---------------------------------------------------------------
// Oracle mode plumbing
// ---------------------------------------------------------------

TEST(TraceOracle, ModeSwitchesDefaultRepresentation)
{
    bool prev = support::setTraceOracleModeForTest(true);
    EXPECT_TRUE(EventStream().materialized());
    EXPECT_TRUE(gpusim::LaneStream().materialized());
    support::setTraceOracleModeForTest(false);
    EXPECT_FALSE(EventStream().materialized());
    EXPECT_FALSE(gpusim::LaneStream().materialized());
    support::setTraceOracleModeForTest(prev);
}
