/**
 * @file
 * Unit and property tests for the SIMT GPU simulator: recorder,
 * warp replay (divergence/reconvergence), and the timing model.
 */

#include <gtest/gtest.h>

#include <functional>
#include <set>
#include <string>
#include <vector>

#include "gpusim/recorder.hh"
#include "gpusim/replay.hh"
#include "gpusim/simplecache.hh"
#include "gpusim/timing.hh"

using namespace rodinia;
using namespace rodinia::gpusim;

namespace {

LaunchConfig
launchOf(int grid, int block)
{
    LaunchConfig l;
    l.gridDim = grid;
    l.blockDim = block;
    return l;
}

} // namespace

TEST(SimpleCache, HitAfterMiss)
{
    SimpleCache c(1024, 4, 64);
    EXPECT_FALSE(c.access(0x100));
    EXPECT_TRUE(c.access(0x104));
    EXPECT_EQ(c.hits(), 1u);
    EXPECT_EQ(c.misses(), 1u);
}

TEST(SimpleCache, EvictsLeastRecentlyUsed)
{
    SimpleCache c(256, 4, 64); // one set of 4 ways
    for (uint64_t i = 0; i < 4; ++i)
        c.access(i * 64);
    c.access(0);      // refresh line 0
    c.access(4 * 64); // evict line 1
    EXPECT_TRUE(c.access(0));
    EXPECT_FALSE(c.access(64));
}

TEST(Recorder, RecordsPerLaneEvents)
{
    std::vector<float> data(64, 1.0f);
    auto rec = recordKernel(launchOf(1, 32), [&](KernelCtx &ctx) {
        ctx.ldg(&data[ctx.tid()]);
        ctx.fp(2);
        ctx.stg(&data[ctx.tid()], 0.0f);
    });
    ASSERT_EQ(rec.blocks.size(), 1u);
    ASSERT_EQ(rec.blocks[0].lanes.size(), 32u);
    for (const auto &lane : rec.blocks[0].lanes)
        EXPECT_EQ(lane.size(), 3u);
    EXPECT_EQ(rec.threadInstructions(), 32u * 4); // fp(2) counts as 2
}

TEST(Recorder, SharedMemoryCommunicatesAcrossBarrier)
{
    // Classic reverse-through-shared: thread t writes slot t, reads
    // slot (n-1-t) after the barrier. Fails unless barriers really
    // order the phases.
    const int n = 64;
    std::vector<int> out(n, -1);
    recordKernel(launchOf(1, n), [&](KernelCtx &ctx) {
        auto sh = ctx.shared<int>(n);
        sh.put(ctx, ctx.tid(), ctx.tid() * 10);
        ctx.sync();
        out[ctx.tid()] = sh.get(ctx, n - 1 - ctx.tid());
    });
    for (int t = 0; t < n; ++t)
        EXPECT_EQ(out[t], (n - 1 - t) * 10);
}

TEST(Recorder, MultiPhaseProducerConsumer)
{
    // Iterated neighbor passing: value must travel one slot per
    // barrier phase.
    const int n = 16;
    std::vector<int> out(n, 0);
    recordKernel(launchOf(1, n), [&](KernelCtx &ctx) {
        auto sh = ctx.shared<int>(n);
        sh.put(ctx, ctx.tid(), ctx.tid());
        ctx.sync();
        for (int step = 0; step < 3; ++step) {
            gpusim::LoopIter li(ctx, step);
            int v = sh.get(ctx, (ctx.tid() + 1) % n);
            ctx.sync();
            sh.put(ctx, ctx.tid(), v);
            ctx.sync();
        }
        out[ctx.tid()] = sh.get(ctx, ctx.tid());
    });
    for (int t = 0; t < n; ++t)
        EXPECT_EQ(out[t], (t + 3) % n);
}

TEST(Recorder, SharedBytesTracked)
{
    auto rec = recordKernel(launchOf(2, 8), [&](KernelCtx &ctx) {
        auto a = ctx.shared<float>(128);
        auto b = ctx.shared<double>(16);
        a.put(ctx, 0, 1.0f);
        (void)b;
    });
    EXPECT_GE(rec.blocks[0].sharedBytes, 128 * 4 + 16 * 8);
}

TEST(Recorder, AluEventsMerge)
{
    auto rec = recordKernel(launchOf(1, 1), [&](KernelCtx &ctx) {
        for (int i = 0; i < 100; ++i)
            ctx.fp(1); // same site, same key: must merge
    });
    ASSERT_EQ(rec.blocks[0].lanes[0].size(), 1u);
    EXPECT_EQ(rec.blocks[0].lanes[0].decodeAll()[0].count, 100u);
}

TEST(Replay, UniformKernelFullyOccupied)
{
    std::vector<float> data(32, 0.0f);
    auto rec = recordKernel(launchOf(1, 32), [&](KernelCtx &ctx) {
        ctx.ldg(&data[ctx.tid()]);
        ctx.fp(3);
        ctx.stg(&data[ctx.tid()], 1.0f);
    });
    auto stats = analyzeTrace(rec);
    auto frac = stats.occupancyFractions();
    EXPECT_DOUBLE_EQ(frac[3], 1.0); // all warp insts 25-32 active
    EXPECT_DOUBLE_EQ(stats.avgWarpOccupancy(), 32.0);
}

TEST(Replay, BranchDivergenceSplitsWarp)
{
    auto rec = recordKernel(launchOf(1, 32), [&](KernelCtx &ctx) {
        if (ctx.branch(ctx.tid() < 8))
            ctx.fp(10);
        else
            ctx.alu(10);
        ctx.fp(1); // reconverged
    });
    ASSERT_EQ(rec.blocks.size(), 1u);
    WarpReplayer rep(rec.blocks[0], 0, 32);
    WarpInst inst;
    // 1: branch, full warp.
    ASSERT_TRUE(rep.next(inst));
    EXPECT_EQ(inst.op, GOp::Branch);
    EXPECT_EQ(inst.activeLanes(), 32);
    // 2: then-path, 8 lanes.
    ASSERT_TRUE(rep.next(inst));
    EXPECT_EQ(inst.activeLanes(), 8);
    EXPECT_EQ(inst.op, GOp::FpAlu);
    // 3: else-path, 24 lanes.
    ASSERT_TRUE(rep.next(inst));
    EXPECT_EQ(inst.activeLanes(), 24);
    EXPECT_EQ(inst.op, GOp::IntAlu);
    // 4: reconverged, 32 lanes.
    ASSERT_TRUE(rep.next(inst));
    EXPECT_EQ(inst.activeLanes(), 32);
    EXPECT_FALSE(rep.next(inst));
}

TEST(Replay, LoopTripCountDivergence)
{
    // Lane t iterates t+1 times; with LoopIter the replayer must not
    // merge different iterations, so occupancy decays.
    auto rec = recordKernel(launchOf(1, 32), [&](KernelCtx &ctx) {
        for (int i = 0; i <= ctx.tid(); ++i) {
            LoopIter li(ctx, i);
            ctx.fp(1);
        }
    });
    WarpReplayer rep(rec.blocks[0], 0, 32);
    WarpInst inst;
    int step = 0;
    while (rep.next(inst)) {
        // Iteration i has 32 - i active lanes.
        EXPECT_EQ(inst.activeLanes(), 32 - step);
        ++step;
    }
    EXPECT_EQ(step, 32);
}

TEST(Replay, PartialLastWarp)
{
    auto rec = recordKernel(launchOf(1, 40), [&](KernelCtx &ctx) {
        ctx.fp(1);
    });
    auto stats = analyzeTrace(rec);
    // Warp 0 fully occupied; warp 1 has 8 lanes.
    EXPECT_EQ(stats.occupancyBuckets[3], 1u);
    EXPECT_EQ(stats.occupancyBuckets[0], 1u);
}

TEST(Replay, MemOpsBrokenDownBySpace)
{
    std::vector<float> g(32), t(32);
    float c = 1.0f;
    auto rec = recordKernel(launchOf(1, 32), [&](KernelCtx &ctx) {
        auto sh = ctx.shared<float>(32);
        ctx.ldg(&g[ctx.tid()]);
        ctx.ldt(&t[ctx.tid()]);
        ctx.ldc(&c);
        ctx.ldp(&c);
        sh.put(ctx, ctx.tid(), 0.0f);
    });
    auto stats = analyzeTrace(rec);
    EXPECT_EQ(stats.memOps[size_t(Space::Global)], 32u);
    EXPECT_EQ(stats.memOps[size_t(Space::Tex)], 32u);
    EXPECT_EQ(stats.memOps[size_t(Space::Const)], 32u);
    EXPECT_EQ(stats.memOps[size_t(Space::Param)], 32u);
    EXPECT_EQ(stats.memOps[size_t(Space::Shared)], 32u);
}

namespace {

/** A compute-heavy kernel: every thread does `n` FP instructions. */
KernelRecording
computeKernel(int grid, int block, int n)
{
    return recordKernel(launchOf(grid, block), [&](KernelCtx &ctx) {
        for (int i = 0; i < n; ++i)
            ctx.fp(1);
    });
}

/** A streaming kernel reading one float per thread per rep. */
KernelRecording
streamKernel(std::vector<float> &data, int grid, int block, int reps)
{
    return recordKernel(launchOf(grid, block), [&](KernelCtx &ctx) {
        for (int r = 0; r < reps; ++r) {
            LoopIter li(ctx, r);
            int i = (r * grid * block + ctx.globalId()) %
                    int(data.size());
            ctx.ldg(&data[i]);
            ctx.fp(1);
        }
    });
}

} // namespace

TEST(Timing, IpcBoundedByMachineWidth)
{
    auto rec = computeKernel(64, 256, 64);
    SimConfig cfg = SimConfig::gpgpusimDefault();
    TimingSim sim(cfg);
    auto st = sim.simulate(rec);
    EXPECT_GT(st.ipc(), 0.0);
    EXPECT_LE(st.ipc(), double(cfg.numSms) * cfg.warpSize + 1e-9);
    EXPECT_EQ(st.threadInstructions, rec.threadInstructions());
}

TEST(Timing, ComputeKernelScalesWithShaders)
{
    auto rec = computeKernel(112, 256, 128);
    auto st28 = TimingSim(SimConfig::shaders(28)).simulate(rec);
    auto st8 = TimingSim(SimConfig::shaders(8)).simulate(rec);
    // Abundant parallelism: 28 shaders should be ~3.5x faster.
    double speedup = double(st8.cycles) / double(st28.cycles);
    EXPECT_GT(speedup, 2.5);
    EXPECT_LT(speedup, 4.0);
}

TEST(Timing, BandwidthBoundKernelGainsFromChannels)
{
    std::vector<float> data(1 << 20);
    auto rec = streamKernel(data, 64, 256, 16);
    SimConfig c4 = SimConfig::gpgpusimDefault();
    c4.numChannels = 4;
    SimConfig c8 = SimConfig::gpgpusimDefault();
    c8.numChannels = 8;
    auto s4 = TimingSim(c4).simulate(rec);
    auto s8 = TimingSim(c8).simulate(rec);
    EXPECT_LT(s8.cycles, s4.cycles);
    // High utilization on the starved configuration.
    EXPECT_GT(s4.bwUtilization(), 0.5);
}

TEST(Timing, ComputeKernelInsensitiveToChannels)
{
    auto rec = computeKernel(64, 256, 128);
    SimConfig c4 = SimConfig::gpgpusimDefault();
    c4.numChannels = 4;
    SimConfig c8 = SimConfig::gpgpusimDefault();
    c8.numChannels = 8;
    auto s4 = TimingSim(c4).simulate(rec);
    auto s8 = TimingSim(c8).simulate(rec);
    EXPECT_NEAR(double(s8.cycles) / double(s4.cycles), 1.0, 0.05);
}

TEST(Timing, CoalescedBeatsScattered)
{
    std::vector<float> data(1 << 20);
    // Coalesced: lane l reads consecutive addresses.
    auto coalesced =
        recordKernel(launchOf(64, 256), [&](KernelCtx &ctx) {
            for (int r = 0; r < 8; ++r) {
                LoopIter li(ctx, r);
                ctx.ldg(&data[(r * 16384 + ctx.globalId()) %
                              int(data.size())]);
            }
        });
    // Scattered: lane l reads stride-64 addresses (one transaction
    // per lane).
    auto scattered =
        recordKernel(launchOf(64, 256), [&](KernelCtx &ctx) {
            for (int r = 0; r < 8; ++r) {
                LoopIter li(ctx, r);
                ctx.ldg(&data[(size_t(ctx.globalId()) * 64 + r * 7) %
                              data.size()]);
            }
        });
    TimingSim sim(SimConfig::gpgpusimDefault());
    auto sc = sim.simulate(coalesced);
    auto ss = sim.simulate(scattered);
    EXPECT_LT(sc.dramTransactions, ss.dramTransactions);
    EXPECT_LT(sc.cycles, ss.cycles);
}

TEST(Timing, BankConflictsSerializeSharedAccess)
{
    auto conflictKernel = recordKernel(
        launchOf(28, 256), [&](KernelCtx &ctx) {
            auto sh = ctx.shared<float>(256 * 16);
            for (int r = 0; r < 32; ++r) {
                LoopIter li(ctx, r);
                // Stride-16 words: every lane hits the same bank.
                sh.put(ctx, size_t(ctx.tid()) * 16, float(r));
            }
        });
    SimConfig on = SimConfig::gpgpusimDefault();
    on.bankConflictsEnabled = true;
    SimConfig off = on;
    off.bankConflictsEnabled = false;
    auto son = TimingSim(on).simulate(conflictKernel);
    auto soff = TimingSim(off).simulate(conflictKernel);
    EXPECT_GT(son.bankConflictExtraCycles, 0u);
    EXPECT_GT(son.cycles, soff.cycles);
}

TEST(Timing, FermiL1HelpsRereadKernels)
{
    // Each thread re-reads a small per-block working set many times:
    // cacheable in L1, thrashing DRAM without it.
    std::vector<float> data(1 << 18);
    auto rec = recordKernel(launchOf(30, 128), [&](KernelCtx &ctx) {
        for (int r = 0; r < 16; ++r) {
            LoopIter li(ctx, r);
            int base = ctx.blockIdx() * 1024;
            ctx.ldg(&data[(base + (ctx.tid() * 7 + r * 13) % 1024) %
                          int(data.size())]);
        }
    });
    auto l1bias = TimingSim(SimConfig::gtx480(true)).simulate(rec);
    auto nocache = TimingSim(SimConfig::gtx280()).simulate(rec);
    EXPECT_GT(l1bias.l1Hits, 0u);
    EXPECT_LT(l1bias.dramTransactions, nocache.dramTransactions);
}

TEST(Timing, BarrierKernelCompletes)
{
    // Many barriers with uneven work: must terminate (no deadlock)
    // and produce correct data.
    const int n = 128;
    std::vector<int> out(n, 0);
    auto rec = recordKernel(launchOf(4, n), [&](KernelCtx &ctx) {
        auto sh = ctx.shared<int>(n);
        sh.put(ctx, ctx.tid(), ctx.tid());
        ctx.sync();
        for (int step = 1; step < n; step *= 2) {
            LoopIter li(ctx, uint32_t(step));
            int v = 0;
            if (ctx.branch(ctx.tid() + step < n))
                v = sh.get(ctx, ctx.tid() + step);
            ctx.sync();
            if (ctx.branch(ctx.tid() + step < n)) {
                int mine = sh.get(ctx, ctx.tid());
                sh.put(ctx, ctx.tid(), mine + v);
            }
            ctx.sync();
        }
        if (ctx.branch(ctx.tid() == 0))
            out[ctx.blockIdx()] = sh.get(ctx, 0);
    });
    // Block-level sum of 0..n-1.
    for (int b = 0; b < 4; ++b)
        EXPECT_EQ(out[b], n * (n - 1) / 2);

    auto st = TimingSim(SimConfig::gpgpusimDefault()).simulate(rec);
    EXPECT_GT(st.cycles, 0u);
    // Committed instructions include the implicit address
    // arithmetic around memory operations.
    EXPECT_GE(st.threadInstructions, rec.threadInstructions());
}

TEST(Timing, DeterministicAcrossRuns)
{
    std::vector<float> data(1 << 16);
    auto rec = streamKernel(data, 16, 128, 8);
    TimingSim sim(SimConfig::gpgpusimDefault());
    auto a = sim.simulate(rec);
    auto b = sim.simulate(rec);
    EXPECT_EQ(a.cycles, b.cycles);
    EXPECT_EQ(a.dramTransactions, b.dramTransactions);
}

TEST(Timing, LaunchSequenceAddsOverhead)
{
    auto r1 = computeKernel(8, 64, 16);
    LaunchSequence seq;
    seq.add(computeKernel(8, 64, 16));
    seq.add(computeKernel(8, 64, 16));
    TimingSim sim(SimConfig::gpgpusimDefault());
    auto single = sim.simulate(r1);
    auto both = sim.simulate(seq);
    EXPECT_GT(both.cycles, 2 * single.cycles);
    EXPECT_EQ(both.threadInstructions, 2 * single.threadInstructions);
}

TEST(Timing, SimdWidthMattersForCompute)
{
    auto rec = computeKernel(56, 256, 64);
    SimConfig wide = SimConfig::gpgpusimDefault();
    wide.simdWidth = 32;
    SimConfig narrow = SimConfig::gpgpusimDefault();
    narrow.simdWidth = 16;
    auto sw = TimingSim(wide).simulate(rec);
    auto sn = TimingSim(narrow).simulate(rec);
    // Half the SIMD width => roughly double the cycles.
    double ratio = double(sn.cycles) / double(sw.cycles);
    EXPECT_GT(ratio, 1.6);
    EXPECT_LT(ratio, 2.4);
}

TEST(Timing, CtaLimitsReduceLatencyHiding)
{
    // A latency-bound kernel: few dependent scattered loads per
    // thread, light bandwidth demand. With 28 kB of shared memory
    // per block only one CTA fits per SM (2 warps), so load latency
    // cannot be hidden and execution must slow down clearly compared
    // to the 256-float variant (8 CTAs, 16 warps).
    std::vector<float> data(1 << 22);
    auto makeRec = [&](size_t sharedFloats) {
        return recordKernel(launchOf(32, 64), [&](KernelCtx &ctx) {
            auto sh = ctx.shared<float>(sharedFloats);
            sh.put(ctx, ctx.tid() % sharedFloats, 1.0f);
            for (int r = 0; r < 16; ++r) {
                LoopIter li(ctx, r);
                size_t idx = (size_t(ctx.globalId()) * 4099 +
                              size_t(r) * 65537) %
                             data.size();
                ctx.ldg(&data[idx]);
                ctx.fp(4);
            }
        });
    };
    auto small = makeRec(256);
    auto big = makeRec(7000); // ~28 kB: one CTA per SM
    SimConfig cfg = SimConfig::shaders(4);
    auto ssmall = TimingSim(cfg).simulate(small);
    auto sbig = TimingSim(cfg).simulate(big);
    EXPECT_GT(double(sbig.cycles), 1.2 * double(ssmall.cycles));
}

// ---------------------------------------------------------------
// SimConfig validation and fingerprinting
// ---------------------------------------------------------------

TEST(SimConfigDeath, RejectsDegenerateGeometry)
{
    SimConfig zero_sms;
    zero_sms.numSms = 0;
    EXPECT_DEATH(zero_sms.validate(), "numSms");

    SimConfig zero_channels;
    zero_channels.numChannels = 0;
    EXPECT_DEATH(zero_channels.validate(), "numChannels");

    SimConfig zero_warp;
    zero_warp.warpSize = 0;
    EXPECT_DEATH(zero_warp.validate(), "warpSize");

    SimConfig ragged_issue;
    ragged_issue.simdWidth = 24; // 32 % 24 != 0
    EXPECT_DEATH(ragged_issue.validate(), "multiple of simdWidth");

    SimConfig odd_coalesce;
    odd_coalesce.coalesceBytes = 48;
    EXPECT_DEATH(odd_coalesce.validate(), "coalesceBytes");

    SimConfig odd_l1_line = SimConfig::gtx480(true);
    odd_l1_line.l1LineBytes = 96;
    EXPECT_DEATH(odd_l1_line.validate(), "l1LineBytes");

    SimConfig odd_l2_line = SimConfig::gtx480(false);
    odd_l2_line.l2LineBytes = 200;
    EXPECT_DEATH(odd_l2_line.validate(), "l2LineBytes");

    SimConfig bad_split = SimConfig::gtx480(true);
    bad_split.sharedMemPerSm = 32 * 1024; // 48 + 32 != 64 kB
    EXPECT_DEATH(bad_split.validate(), "Fermi split");

    SimConfig zero_clock;
    zero_clock.memClockGhz = 0.0;
    EXPECT_DEATH(zero_clock.validate(), "clocks");
}

TEST(SimConfig, EveryPresetValidates)
{
    SimConfig::gpgpusimDefault().validate();
    SimConfig::shaders(8).validate();
    SimConfig::gtx280().validate();
    SimConfig::gtx480(true).validate();
    SimConfig::gtx480(false).validate();
}

TEST(SimConfig, FingerprintCoversEveryField)
{
    // Equal configs fingerprint equally...
    EXPECT_EQ(SimConfig().fingerprint(),
              SimConfig::gpgpusimDefault().fingerprint());

    // ...and flipping any single architectural parameter changes the
    // fingerprint (the store key must never alias two different
    // machines). One mutation per SimConfig field.
    const std::vector<std::function<void(SimConfig &)>> mutations = {
        [](SimConfig &c) { c.numSms = 29; },
        [](SimConfig &c) { c.warpSize = 16; },
        [](SimConfig &c) { c.simdWidth = 8; },
        [](SimConfig &c) { c.maxThreadsPerSm = 768; },
        [](SimConfig &c) { c.maxCtasPerSm = 4; },
        [](SimConfig &c) { c.regFileSize = 32768; },
        [](SimConfig &c) { c.regsPerThread = 20; },
        [](SimConfig &c) { c.sharedMemPerSm = 48 * 1024; },
        [](SimConfig &c) { c.bankConflictsEnabled = false; },
        [](SimConfig &c) { c.sharedBanks = 32; },
        [](SimConfig &c) { c.coreClockGhz = 1.5; },
        [](SimConfig &c) { c.memClockGhz = 2.4; },
        [](SimConfig &c) { c.addressAluPerMem = 2; },
        [](SimConfig &c) { c.numChannels = 6; },
        [](SimConfig &c) { c.dramBusBytes = 8; },
        [](SimConfig &c) { c.coalesceBytes = 128; },
        [](SimConfig &c) { c.gmemLatencyCycles = 400; },
        [](SimConfig &c) { c.launchOverheadCycles = 700; },
        [](SimConfig &c) { c.texCacheBytes = 32 * 1024; },
        [](SimConfig &c) { c.constCacheBytes = 16 * 1024; },
        [](SimConfig &c) { c.texHitLatency = 20; },
        [](SimConfig &c) { c.constHitLatency = 6; },
        [](SimConfig &c) { c.l1Enabled = true; },
        [](SimConfig &c) { c.l1Bytes = 48 * 1024; },
        [](SimConfig &c) { c.l1LineBytes = 64; },
        [](SimConfig &c) { c.l1HitLatency = 30; },
        [](SimConfig &c) { c.l2Enabled = true; },
        [](SimConfig &c) { c.l2Bytes = 512 * 1024; },
        [](SimConfig &c) { c.l2LineBytes = 64; },
        [](SimConfig &c) { c.l2HitLatency = 120; },
    };
    std::set<std::string> prints;
    prints.insert(SimConfig().fingerprint());
    for (size_t i = 0; i < mutations.size(); ++i) {
        SimConfig c;
        mutations[i](c);
        EXPECT_TRUE(prints.insert(c.fingerprint()).second)
            << "mutation " << i << " did not change the fingerprint";
    }
}

// ---------------------------------------------------------------
// KernelStats serialization and merging
// ---------------------------------------------------------------

TEST(KernelStats, SerializeParseRoundTrip)
{
    KernelStats s;
    s.cycles = 0x123456789abcdefull; // > 2^32: payload must be 64-bit
    s.threadInstructions = 987654321098ull;
    s.warpInstructions = 30864197534ull;
    s.occupancyBuckets = {1, 2, 3, 4};
    s.memOps = {5, 6, 7, 8, 9, 10, 11};
    s.dramTransactions = 12;
    s.dramBytes = 13;
    s.channelBusyCycles = 14;
    s.bankConflictExtraCycles = 15;
    s.l1Hits = 16;
    s.l1Misses = 17;
    s.l2Hits = 18;
    s.l2Misses = 19;
    s.texHits = 20;
    s.texMisses = 21;
    s.constHits = 22;
    s.constMisses = 23;
    s.numChannels = 6;
    s.coreClockGhz = 1.4; // not exactly representable: needs
                          // max_digits10 to round-trip

    KernelStats out;
    ASSERT_TRUE(parseKernelStats(serializeKernelStats(s), out));
    EXPECT_TRUE(s == out);
    EXPECT_EQ(serializeKernelStats(out), serializeKernelStats(s));
}

TEST(KernelStats, ParseRejectsMalformedPayloads)
{
    KernelStats out;
    EXPECT_FALSE(parseKernelStats("", out));
    EXPECT_FALSE(parseKernelStats("cpuchar 1\n", out));
    EXPECT_FALSE(parseKernelStats("gpustats 2\n", out)); // bad version
    EXPECT_FALSE(parseKernelStats("gpustats 1\n1 2\n", out)); // truncated
}

TEST(KernelStats, SimulatedStatsRoundTripThroughPayload)
{
    auto rec = computeKernel(8, 64, 32);
    KernelStats s = TimingSim(SimConfig::shaders(4)).simulate(rec);
    KernelStats out;
    ASSERT_TRUE(parseKernelStats(serializeKernelStats(s), out));
    EXPECT_TRUE(s == out);
}

TEST(KernelStats, MergeIsAssociative)
{
    // Launch-sequence aggregation folds left; result assembly in the
    // parallel driver may fold in slot order. Both must agree, so
    // add() has to be associative — including the "last launch wins"
    // config fields (numChannels, coreClockGhz).
    std::vector<float> data(1 << 12);
    KernelStats a = TimingSim(SimConfig::shaders(4))
                        .simulate(computeKernel(8, 64, 32));
    KernelStats b = TimingSim(SimConfig::gtx280())
                        .simulate(streamKernel(data, 4, 64, 4));
    KernelStats c = TimingSim(SimConfig::gtx480(true))
                        .simulate(computeKernel(2, 32, 8));

    KernelStats ab = a;
    ab.add(b);
    KernelStats ab_c = ab;
    ab_c.add(c);

    KernelStats bc = b;
    bc.add(c);
    KernelStats a_bc = a;
    a_bc.add(bc);

    EXPECT_TRUE(ab_c == a_bc);
    EXPECT_EQ(serializeKernelStats(ab_c), serializeKernelStats(a_bc));
}
