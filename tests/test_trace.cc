/**
 * @file
 * Unit tests for the CPU instrumentation substrate.
 */

#include <gtest/gtest.h>

#include <tuple>

#include "support/alloc_align.hh"
#include "support/rng.hh"
#include "trace/trace.hh"

using namespace rodinia;
using namespace rodinia::trace;

TEST(Trace, CountsInstructionMix)
{
    TraceSession s(1);
    s.run([](ThreadCtx &ctx) {
        int x = 0;
        ctx.alu(5);
        ctx.fp(3);
        ctx.branch(2);
        ctx.load(&x, 4);
        ctx.store(&x, 4);
    });
    auto mix = s.totalMix();
    EXPECT_EQ(mix.intOps, 5u);
    EXPECT_EQ(mix.fpOps, 3u);
    EXPECT_EQ(mix.branches, 2u);
    EXPECT_EQ(mix.loads, 1u);
    EXPECT_EQ(mix.stores, 1u);
    EXPECT_EQ(mix.total(), 12u);
    EXPECT_EQ(mix.memRefs(), 2u);
}

TEST(Trace, RecordsEventsPerThread)
{
    TraceSession s(4);
    s.run([](ThreadCtx &ctx) {
        int buf[8] = {};
        for (int i = 0; i <= ctx.tid(); ++i)
            ctx.load(&buf[i], 4);
    });
    for (int t = 0; t < 4; ++t)
        EXPECT_EQ(s.contexts()[t]->eventCount(), uint64_t(t + 1));
    EXPECT_EQ(s.totalEvents(), 1u + 2 + 3 + 4);
}

TEST(Trace, RecordingCanBeDisabled)
{
    TraceSession s(2, false);
    s.run([](ThreadCtx &ctx) {
        int x = 0;
        ctx.load(&x, 4);
        ctx.store(&x, 4);
    });
    EXPECT_EQ(s.totalEvents(), 0u);
    // Instruction mix still counts.
    EXPECT_EQ(s.totalMix().memRefs(), 4u);
}

TEST(Trace, LdStMoveRealData)
{
    TraceSession s(1);
    int value = 0;
    s.run([&](ThreadCtx &ctx) {
        ctx.st(&value, 42);
        int v = ctx.ld(&value);
        ctx.st(&value, v + 1);
    });
    EXPECT_EQ(value, 43);
}

TEST(Trace, BarrierSynchronizesPhases)
{
    const int nt = 8;
    TraceSession s(nt, false);
    std::vector<int> phase1(nt, 0);
    std::vector<int> sums(nt, 0);
    s.run([&](ThreadCtx &ctx) {
        phase1[ctx.tid()] = ctx.tid() + 1;
        ctx.barrier();
        int sum = 0;
        for (int i = 0; i < nt; ++i)
            sum += phase1[i];
        sums[ctx.tid()] = sum;
    });
    for (int t = 0; t < nt; ++t)
        EXPECT_EQ(sums[t], nt * (nt + 1) / 2);
}

TEST(Trace, DataFootprintPages)
{
    TraceSession s(1);
    // Touch 3 distinct 4 kB pages via a heap buffer.
    std::vector<uint8_t> buf(3 * 4096 + 64);
    s.run([&](ThreadCtx &ctx) {
        ctx.load(&buf[0], 4);
        ctx.load(&buf[4096], 4);
        ctx.load(&buf[2 * 4096], 4);
        ctx.load(&buf[4096 + 8], 4); // same page again
    });
    // At least 3 pages (buffer may straddle page boundaries).
    EXPECT_GE(s.dataFootprintPages(), 3u);
    EXPECT_LE(s.dataFootprintPages(), 4u);
}

TEST(Trace, PageStraddlingAccessCountsBothPages)
{
    TraceSession s(1);
    std::vector<uint8_t> buf(2 * 4096);
    // Find an offset 4 bytes before a page boundary.
    uintptr_t base = uintptr_t(buf.data());
    uintptr_t boundary = (base + 4096) & ~uintptr_t(4095);
    uint8_t *p = reinterpret_cast<uint8_t *>(boundary - 4);
    s.run([&](ThreadCtx &ctx) { ctx.load(p, 8); });
    EXPECT_EQ(s.dataFootprintPages(), 2u);
}

TEST(Trace, InstructionSitesAreDistinctPerCallSite)
{
    TraceSession s(1);
    s.run([](ThreadCtx &ctx) {
        for (int i = 0; i < 10; ++i)
            ctx.alu(1); // one site despite 10 calls
        ctx.alu(1);     // second site
        ctx.fp(1);      // third site
    });
    EXPECT_EQ(s.instructionSites(), 3u);
    EXPECT_GE(s.instructionFootprintBlocks(), 1u);
}

TEST(Trace, InterleavingIsRoundRobinAndComplete)
{
    TraceSession s(3);
    std::vector<int> data(16, 0);
    s.run([&](ThreadCtx &ctx) {
        for (int i = 0; i < 2 + ctx.tid(); ++i)
            ctx.load(&data[ctx.tid() * 4 + i], 4);
    });
    std::vector<int> order;
    s.forEachInterleaved(
        [&](int tid, const MemEvent &) { order.push_back(tid); });
    // Total = 2 + 3 + 4 events; round-robin starts 0,1,2,0,1,2,...
    ASSERT_EQ(order.size(), 9u);
    EXPECT_EQ(order[0], 0);
    EXPECT_EQ(order[1], 1);
    EXPECT_EQ(order[2], 2);
    EXPECT_EQ(order[3], 0);
    // Thread 2 has the most events, so the tail is all 2s.
    EXPECT_EQ(order[8], 2);
}

TEST(Trace, NormalizeSplitsLineStraddlingEvents)
{
    TraceSession s(1);
    std::vector<uint8_t> buf(256);
    // Start 4 bytes before a 64 B line boundary so the 12-byte load
    // straddles it.
    uintptr_t base = uintptr_t(buf.data());
    uintptr_t boundary = (base + 64) & ~uintptr_t(63);
    uint8_t *p = reinterpret_cast<uint8_t *>(boundary - 4);
    s.run([&](ThreadCtx &ctx) { ctx.load(p, 12); });
    s.normalizeAddresses();
    const auto ev = s.contexts()[0]->eventsCopy();
    ASSERT_EQ(ev.size(), 2u);
    EXPECT_EQ(ev[0].size + ev[1].size, 12u);
    // Each piece now covers exactly one line.
    for (const auto &e : ev)
        EXPECT_EQ(e.addr >> 6,
                  (e.addr + (e.size ? e.size - 1 : 0)) >> 6);
}

TEST(Trace, NormalizeAssignsFirstTouchSequentialPages)
{
    TraceSession s(1);
    std::vector<uint8_t> buf(3 * 4096);
    s.run([&](ThreadCtx &ctx) {
        ctx.load(&buf[2 * 4096], 4); // touched first
        ctx.load(&buf[0], 4);
        ctx.load(&buf[4096], 4);
        ctx.load(&buf[2 * 4096 + 8], 4); // same line as the first
    });
    s.normalizeAddresses();
    const auto ev = s.contexts()[0]->eventsCopy();
    ASSERT_EQ(ev.size(), 4u);
    // Pages are renumbered in first-touch order...
    EXPECT_EQ(ev[1].addr >> 12, (ev[0].addr >> 12) + 1);
    EXPECT_EQ(ev[2].addr >> 12, (ev[1].addr >> 12) + 1);
    // ...and same-line accesses land on the same canonical line.
    EXPECT_EQ(ev[3].addr >> 6, ev[0].addr >> 6);
    // The figure-level footprint is unchanged by renumbering.
    EXPECT_EQ(s.dataFootprintPages(), 3u);
}

/**
 * Identical logical access patterns against different allocations
 * produce byte-identical canonical traces: the guarantee the
 * cross-process figure determinism rests on. (Equal line/page
 * *phase* of the two buffers is guaranteed by the scoped allocation
 * alignment in support/alloc_align.hh, held here exactly as
 * core::characterizeCpu holds it around a workload run.)
 */
TEST(Trace, NormalizeCanonicalizesAcrossAllocations)
{
    support::DeterministicAllocScope alignScope;
    using Canon = std::vector<std::tuple<int, uint64_t, uint16_t,
                                         uint8_t>>;
    auto canonEvents = [](std::vector<uint8_t> &buf) {
        TraceSession s(2);
        s.run([&](ThreadCtx &ctx) {
            Rng local(7 + ctx.tid());
            for (int i = 0; i < 3000; ++i) {
                uint64_t a = local.below(buf.size() - 16);
                uint32_t sz = uint32_t(1 + local.below(12));
                if (local.chance(0.25))
                    ctx.store(&buf[a], sz);
                else
                    ctx.load(&buf[a], sz);
            }
        });
        s.normalizeAddresses();
        Canon out;
        s.forEachInterleaved([&](int tid, const MemEvent &e) {
            out.emplace_back(tid, e.addr, e.size, e.isWrite);
        });
        return out;
    };
    std::vector<uint8_t> a(1 << 14), b(1 << 14);
    EXPECT_TRUE(canonEvents(a) == canonEvents(b));
}

TEST(Trace, WideAccessSplitsIntoLinesPreservingFootprint)
{
    TraceSession s(1);
    std::vector<float> buf(64);
    s.run([&](ThreadCtx &ctx) { ctx.load(buf.data(), 256); });
    const auto ev = s.contexts()[0]->eventsCopy();
    // Record-time 64 B line splitting: the 256-byte load becomes 4
    // or 5 pieces (depending on alignment) that tile the original
    // range exactly, each confined to one line.
    ASSERT_GE(ev.size(), 4u);
    ASSERT_LE(ev.size(), 5u);
    uint64_t total = 0;
    uint64_t next = ev[0].addr;
    for (const auto &e : ev) {
        EXPECT_EQ(e.addr, next);
        EXPECT_LE(e.size, 64u);
        EXPECT_EQ(e.addr >> 6, (e.addr + e.size - 1) >> 6);
        EXPECT_EQ(e.isWrite, 0u);
        total += e.size;
        next = e.addr + e.size;
    }
    EXPECT_EQ(total, 256u);
    EXPECT_EQ(ev[0].addr, uint64_t(uintptr_t(buf.data())));
}
