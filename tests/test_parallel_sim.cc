/**
 * @file
 * Determinism tests for the epoch-synchronized parallel timing
 * engine: serial-vs-parallel bit-identity on synthetic kernels and
 * on every registered GPU workload, epoch-length invariance, the
 * oversubscribed-CTA guard (metric + RODINIA_STRICT panic), and the
 * deadlock-diagnostic formatter.
 *
 * The EpochEngine suite is cheap (synthetic kernels) and runs in the
 * tsan-smoke lane; the SerialParallelWorkloads matrix replays the
 * whole registry and stays in the default lane.
 */

#include <gtest/gtest.h>

#include <cstdlib>
#include <functional>
#include <memory>
#include <random>
#include <string>
#include <vector>

#include "core/characterize.hh"
#include "core/workload.hh"
#include "gpusim/kernel.hh"
#include "gpusim/recorder.hh"
#include "gpusim/replay.hh"
#include "gpusim/simconfig.hh"
#include "gpusim/timing.hh"
#include "support/metrics.hh"
#include "support/threadbudget.hh"

using namespace rodinia;
using namespace rodinia::gpusim;

namespace {

LaunchConfig
launchOf(int grid, int block)
{
    LaunchConfig l;
    l.gridDim = grid;
    l.blockDim = block;
    return l;
}

/**
 * RAII: pin the thread budget high enough that tryAcquire really
 * grants helpers regardless of the build machine's core count, and
 * restore the old capacity on exit.
 */
struct BudgetRaise
{
    int old;
    explicit BudgetRaise(int n)
        : old(support::ThreadBudget::instance().capacity())
    {
        support::ThreadBudget::instance().setCapacity(n);
    }
    ~BudgetRaise() { support::ThreadBudget::instance().setCapacity(old); }
};

/** RAII epoch-length override; always restores the automatic value. */
struct EpochCap
{
    explicit EpochCap(uint64_t cycles) { setSimEpochForTest(cycles); }
    ~EpochCap() { setSimEpochForTest(0); }
};

/**
 * A seeded synthetic kernel that exercises every shared-state path
 * the epoch engine defers: strided and random global loads/stores
 * (coalescing, L1/L2, channels), texture and constant reads,
 * shared-memory traffic with bank conflicts, divergent branches,
 * and barriers.
 */
KernelRecording
syntheticKernel(unsigned seed, int grid, int block)
{
    static std::vector<float> data(1 << 16, 1.0f);
    return recordKernel(launchOf(grid, block), [&](KernelCtx &ctx) {
        std::minstd_rand rng(seed * 7919u + unsigned(ctx.globalId()));
        auto sh = ctx.shared<int>(size_t(ctx.blockDim()));
        int acc = 0;
        for (int i = 0; i < 4; ++i) {
            size_t idx =
                (size_t(ctx.globalId()) * 4 + size_t(i) * 96 +
                 rng() % 64) %
                data.size();
            ctx.ldg(&data[idx]);
            ctx.alu(2);
            if (ctx.tid() % (2 + i) == 0) {
                ctx.branch(true);
                ctx.ldt(&data[(idx * 3) % data.size()]);
            } else {
                ctx.branch(false);
                ctx.ldc(&data[idx % 256]);
            }
            sh.put(ctx, ctx.tid(), int(idx));
            ctx.sync();
            acc += sh.get(ctx, (ctx.tid() + i + 1) % ctx.blockDim());
            ctx.fp(3);
        }
        ctx.stg(&data[size_t(ctx.globalId()) % data.size()],
                float(acc));
    });
}

std::vector<SimConfig>
testConfigs()
{
    // No-L2 default, Fermi (L1 + unified L2), and a small shader
    // count that forces many CTAs per SM and short idle jumps.
    return {SimConfig::gpgpusimDefault(), SimConfig::gtx480(false),
            SimConfig::shaders(4)};
}

KernelStats
simulateWith(const SimConfig &base, int threads,
             const KernelRecording &rec)
{
    SimConfig cfg = base;
    cfg.simThreads = threads;
    return TimingSim(cfg).simulate(rec);
}

uint64_t
metricValue(const char *name)
{
    return support::metrics::Registry::global().snapshot().value(name);
}

} // namespace

TEST(EpochEngine, BitIdenticalToSerialOnSyntheticKernels)
{
    BudgetRaise budget(8);
    for (unsigned seed : {1u, 2u, 3u}) {
        KernelRecording rec = syntheticKernel(seed, 24, 96);
        for (const SimConfig &cfg : testConfigs()) {
            KernelStats serial = simulateWith(cfg, 1, rec);
            for (int threads : {2, 4, 8}) {
                KernelStats par = simulateWith(cfg, threads, rec);
                EXPECT_EQ(serial, par)
                    << "seed " << seed << " threads " << threads;
                EXPECT_EQ(serializeKernelStats(serial),
                          serializeKernelStats(par));
            }
        }
    }
}

TEST(EpochEngine, EpochLengthNeverChangesResults)
{
    // Any epoch shorter than the automatic bound is sound; sweeping
    // lengths (including the degenerate E=1 lockstep) must leave the
    // stats bit-identical. This is the core soundness property: the
    // barrier placement only affects scheduling, never arbitration
    // order.
    BudgetRaise budget(8);
    KernelRecording rec = syntheticKernel(7, 16, 64);
    for (const SimConfig &cfg : testConfigs()) {
        ASSERT_GE(epochCyclesFor(cfg), 1u);
        KernelStats serial = simulateWith(cfg, 1, rec);
        for (uint64_t epoch : {uint64_t(1), uint64_t(7), uint64_t(63),
                               uint64_t(100000)}) {
            EpochCap cap(epoch);
            KernelStats par = simulateWith(cfg, 4, rec);
            EXPECT_EQ(serial, par) << "epoch cap " << epoch;
        }
    }
}

TEST(EpochEngine, MoreThreadsThanSmsOrBlocksStillExact)
{
    BudgetRaise budget(32);
    // 2 blocks on a 4-SM config with 16 requested threads: the
    // engine must clamp its lane/worker structure, not wedge or
    // diverge.
    KernelRecording rec = syntheticKernel(11, 2, 32);
    SimConfig cfg = SimConfig::shaders(4);
    KernelStats serial = simulateWith(cfg, 1, rec);
    EXPECT_EQ(serial, simulateWith(cfg, 16, rec));
    // Single-block recordings fall back to the serial engine.
    KernelRecording one = syntheticKernel(12, 1, 32);
    EXPECT_EQ(simulateWith(cfg, 1, one), simulateWith(cfg, 8, one));
}

TEST(EpochEngine, LaunchSequenceAccumulatesIdentically)
{
    BudgetRaise budget(8);
    LaunchSequence seq;
    seq.launches.push_back(syntheticKernel(21, 8, 64));
    seq.launches.push_back(syntheticKernel(22, 12, 32));
    for (const SimConfig &base : testConfigs()) {
        SimConfig serial_cfg = base;
        serial_cfg.simThreads = 1;
        SimConfig par_cfg = base;
        par_cfg.simThreads = 4;
        EXPECT_EQ(TimingSim(serial_cfg).simulate(seq),
                  TimingSim(par_cfg).simulate(seq));
    }
}

TEST(EpochEngine, EmitsEpochTelemetry)
{
    BudgetRaise budget(8);
    uint64_t runs_before = metricValue("gpusim.epoch.runs");
    uint64_t epochs_before = metricValue("gpusim.epoch.count");
    KernelRecording rec = syntheticKernel(31, 8, 64);
    simulateWith(SimConfig::gpgpusimDefault(), 4, rec);
    EXPECT_EQ(metricValue("gpusim.epoch.runs"), runs_before + 1);
    EXPECT_GT(metricValue("gpusim.epoch.count"), epochs_before);
    EXPECT_GE(metricValue("gpusim.epoch.threads"), 1u);
}

TEST(EpochEngine, OversubscribedCtaCountsMetric)
{
    // A CTA demanding 64 kB of shared memory can never fit the
    // 32 kB SM, but the placement hatch admits it so the sim makes
    // progress. The guard must count each such admission.
    uint64_t before = metricValue("gpusim.oversubscribed_cta");
    std::vector<float> data(64, 0.0f);
    KernelRecording rec =
        recordKernel(launchOf(3, 32), [&](KernelCtx &ctx) {
            auto sh = ctx.shared<double>(8192); // 64 kB > 32 kB SM
            sh.put(ctx, ctx.tid(), 1.0);
            ctx.sync();
            ctx.stg(&data[ctx.tid()],
                    float(sh.get(ctx, ctx.tid())));
        });
    KernelStats serial =
        simulateWith(SimConfig::gpgpusimDefault(), 1, rec);
    EXPECT_EQ(metricValue("gpusim.oversubscribed_cta"), before + 3);
    EXPECT_GT(serial.cycles, 0u);
    // The parallel engine reports the same admissions and the same
    // stats.
    BudgetRaise budget(8);
    EXPECT_EQ(simulateWith(SimConfig::gpgpusimDefault(), 4, rec),
              serial);
    EXPECT_EQ(metricValue("gpusim.oversubscribed_cta"), before + 6);
}

TEST(EpochEngine, DeadlockDiagnosticsNameEverySm)
{
    std::vector<SmSnapshot> sms(2);
    sms[0].readyWarps = 3;
    sms[0].waitingWarps = 1;
    sms[0].residentCtas = 2;
    sms[0].freeCycle = 120;
    sms[0].nextBound = 130;
    sms[1].nextBound = ~uint64_t(0); // idle sentinel
    std::string msg = formatDeadlockDiagnostics(1000, 5, 12, 7, sms);
    EXPECT_NE(msg.find("cycle 1000"), std::string::npos);
    EXPECT_NE(msg.find("7 of 12 blocks"), std::string::npos);
    EXPECT_NE(msg.find("next block to place: 5"), std::string::npos);
    EXPECT_NE(msg.find("sm0:"), std::string::npos);
    EXPECT_NE(msg.find("ready=3"), std::string::npos);
    EXPECT_NE(msg.find("sm1:"), std::string::npos);
    EXPECT_NE(msg.find("idle"), std::string::npos);
}

TEST(EpochEngine, EpochLengthTracksSharedPathLatency)
{
    SimConfig no_l2 = SimConfig::gpgpusimDefault();
    EXPECT_EQ(epochCyclesFor(no_l2),
              uint64_t(no_l2.channelServiceCycles() +
                       no_l2.gmemLatencyCycles));
    SimConfig fermi = SimConfig::gtx480(false);
    EXPECT_EQ(epochCyclesFor(fermi),
              std::min(uint64_t(fermi.l2HitLatency),
                       uint64_t(fermi.channelServiceCycles() +
                                fermi.gmemLatencyCycles)));
}

TEST(OversubscribedCtaDeath, StrictModePanics)
{
    ::testing::FLAGS_gtest_death_test_style = "threadsafe";
    std::vector<float> data(32, 0.0f);
    KernelRecording rec =
        recordKernel(launchOf(2, 32), [&](KernelCtx &ctx) {
            auto sh = ctx.shared<double>(8192);
            sh.put(ctx, ctx.tid(), 1.0);
            ctx.stg(&data[ctx.tid()], 0.0f);
        });
    EXPECT_DEATH(
        {
            setenv("RODINIA_STRICT", "1", 1);
            simulateWith(SimConfig::gpgpusimDefault(), 1, rec);
        },
        "oversubscribed");
}

TEST(SerialParallelWorkloads, AllGpuWorkloadsBitIdentical)
{
    // The acceptance matrix: every registered GPU workload and
    // version at Small scale, serial vs 2/4/8 sim threads, on the
    // paper's default config. Stats must match field for field and
    // byte for byte in the store payload.
    core::registerAllWorkloads();
    BudgetRaise budget(8);
    SimConfig cfg = SimConfig::gpgpusimDefault();
    int checked = 0;
    for (const auto &info : core::Registry::instance().all()) {
        auto wl = core::Registry::instance().create(info.name);
        for (int v = 1; v <= wl->gpuVersions(); ++v) {
            LaunchSequence seq = wl->runGpu(core::Scale::Small, v);
            SimConfig serial_cfg = cfg;
            serial_cfg.simThreads = 1;
            KernelStats serial = TimingSim(serial_cfg).simulate(seq);
            for (int threads : {2, 4, 8}) {
                SimConfig par_cfg = cfg;
                par_cfg.simThreads = threads;
                KernelStats par = TimingSim(par_cfg).simulate(seq);
                EXPECT_EQ(serial, par)
                    << info.name << " v" << v << " threads "
                    << threads;
                EXPECT_EQ(serializeKernelStats(serial),
                          serializeKernelStats(par))
                    << info.name << " v" << v;
            }
            ++checked;
        }
    }
    EXPECT_GE(checked, 10) << "registry lost its GPU workloads";
}

TEST(SerialParallelWorkloads, FermiConfigBitIdentical)
{
    // The L1+L2 path has the most shared state; sweep a few
    // workloads under the GTX 480 preset too.
    core::registerAllWorkloads();
    BudgetRaise budget(8);
    SimConfig cfg = SimConfig::gtx480(false);
    for (const char *name : {"kmeans", "srad", "hotspot"}) {
        if (!core::Registry::instance().has(name))
            continue;
        auto wl = core::Registry::instance().create(name);
        if (wl->gpuVersions() < 1)
            continue;
        LaunchSequence seq = wl->runGpu(core::Scale::Small, 1);
        SimConfig serial_cfg = cfg;
        serial_cfg.simThreads = 1;
        KernelStats serial = TimingSim(serial_cfg).simulate(seq);
        SimConfig par_cfg = cfg;
        par_cfg.simThreads = 4;
        EXPECT_EQ(serial, TimingSim(par_cfg).simulate(seq)) << name;
    }
}
