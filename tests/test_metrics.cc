/**
 * @file
 * Property and concurrency tests for the metrics registry.
 *
 * The registry's correctness rests on two algebraic claims: the
 * per-metric merge operations (counter add, gauge max, histogram
 * bucket-merge) are associative and commutative, and merging
 * histograms equals observing the concatenation of their sample
 * streams. These tests pin both directly on HistogramData and then
 * indirectly on the whole registry by comparing a sharded parallel
 * write storm against a single-threaded reference run.
 */

#include <random>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "driver/executor.hh"
#include "driver/failure.hh"
#include "driver/job.hh"
#include "support/metrics.hh"

namespace sm = rodinia::support::metrics;
using rodinia::driver::Executor;
using rodinia::driver::JobGraph;
using rodinia::driver::JobStatus;
using sm::HistogramData;
using sm::Registry;
using sm::Snapshot;
using sm::Stability;

namespace {

std::vector<uint64_t>
randomSamples(uint64_t seed, size_t n)
{
    std::mt19937_64 rng(seed);
    std::vector<uint64_t> out;
    out.reserve(n);
    for (size_t i = 0; i < n; ++i) {
        // Spread samples across bucket magnitudes: a uniform draw
        // over [0, 2^64) would land almost everything in the top
        // buckets.
        int shift = int(rng() % 64);
        out.push_back(rng() >> shift);
    }
    return out;
}

HistogramData
observeAll(const std::vector<uint64_t> &samples)
{
    HistogramData h;
    for (uint64_t s : samples)
        h.observe(s);
    return h;
}

} // namespace

TEST(MetricsHistogram, BucketBoundsRoundTrip)
{
    for (size_t i = 0; i < HistogramData::kBuckets; ++i) {
        uint64_t lo = HistogramData::bucketLowerBound(i);
        EXPECT_EQ(HistogramData::bucketOf(lo), i) << "bucket " << i;
        if (i + 1 < HistogramData::kBuckets) {
            uint64_t hi = HistogramData::bucketLowerBound(i + 1) - 1;
            EXPECT_EQ(HistogramData::bucketOf(hi), i)
                << "bucket " << i << " upper edge";
        }
    }
}

TEST(MetricsHistogram, MergeEqualsConcatenatedStream)
{
    for (uint64_t seed = 1; seed <= 8; ++seed) {
        auto a = randomSamples(seed, 257);
        auto b = randomSamples(seed + 100, 131);

        HistogramData merged = observeAll(a);
        merged.merge(observeAll(b));

        auto both = a;
        both.insert(both.end(), b.begin(), b.end());
        EXPECT_EQ(merged, observeAll(both)) << "seed " << seed;
    }
}

TEST(MetricsHistogram, MergeCommutes)
{
    auto a = observeAll(randomSamples(3, 199));
    auto b = observeAll(randomSamples(4, 211));
    HistogramData ab = a;
    ab.merge(b);
    HistogramData ba = b;
    ba.merge(a);
    EXPECT_EQ(ab, ba);
}

TEST(MetricsHistogram, MergeAssociates)
{
    auto a = observeAll(randomSamples(5, 97));
    auto b = observeAll(randomSamples(6, 89));
    auto c = observeAll(randomSamples(7, 83));

    HistogramData left = a; // (a + b) + c
    left.merge(b);
    left.merge(c);

    HistogramData bc = b; // a + (b + c)
    bc.merge(c);
    HistogramData right = a;
    right.merge(bc);

    EXPECT_EQ(left, right);
}

TEST(MetricsHistogram, EmptyMergeIsIdentity)
{
    auto a = observeAll(randomSamples(8, 57));
    HistogramData merged = a;
    merged.merge(HistogramData{});
    EXPECT_EQ(merged, a);

    HistogramData other;
    other.merge(a);
    EXPECT_EQ(other, a);
}

TEST(MetricsRegistry, CountersAddGaugesMax)
{
    Registry r;
    r.countAdd("t.counter", "", 3, Stability::Stable);
    r.countAdd("t.counter", "", 4, Stability::Stable);
    r.countAdd("t.counter", "lbl", 5, Stability::Stable);
    r.gaugeMax("t.gauge", "", 10, Stability::Volatile);
    r.gaugeMax("t.gauge", "", 7, Stability::Volatile);

    Snapshot s = r.snapshot();
    EXPECT_EQ(s.value("t.counter"), 7u);
    EXPECT_EQ(s.value("t.counter", "lbl"), 5u);
    EXPECT_EQ(s.value("t.gauge"), 10u);
    EXPECT_EQ(s.value("t.absent"), 0u);
    EXPECT_EQ(s.find("t.absent"), nullptr);
}

TEST(MetricsRegistry, DrainIntoMovesEverythingOnce)
{
    Registry src, dst;
    dst.countAdd("t.c", "", 1, Stability::Stable);
    src.countAdd("t.c", "", 2, Stability::Stable);
    src.gaugeMax("t.g", "x", 9, Stability::Volatile);
    src.observe("t.h", "", 12, Stability::Volatile);

    src.drainInto(dst);
    Snapshot after = dst.snapshot();
    EXPECT_EQ(after.value("t.c"), 3u);
    EXPECT_EQ(after.value("t.g", "x"), 9u);
    ASSERT_NE(after.find("t.h"), nullptr);
    EXPECT_EQ(after.find("t.h")->histograms.at("").count, 1u);

    // The source was cleared: a second drain adds nothing.
    src.drainInto(dst);
    EXPECT_EQ(dst.snapshot().value("t.c"), 3u);
}

TEST(MetricsRegistry, JsonSeparatesStableFromVolatile)
{
    Registry r;
    r.countAdd("alpha.jobs", "", 2, Stability::Stable);
    r.countAdd("alpha.waits", "", 1, Stability::Volatile);
    r.observe("beta.lat", "k", 5, Stability::Volatile);

    std::string json = r.snapshot().renderJson();
    size_t stableAt = json.find("\"stable\"");
    size_t volatileAt = json.find("\"volatile\"");
    ASSERT_NE(stableAt, std::string::npos);
    ASSERT_NE(volatileAt, std::string::npos);
    EXPECT_LT(stableAt, volatileAt);

    // Stable section holds only the stable counter; the volatile
    // metrics appear after the "volatile" key.
    std::string stablePart = json.substr(0, volatileAt);
    EXPECT_NE(stablePart.find("\"jobs\": 2"), std::string::npos)
        << stablePart;
    EXPECT_EQ(stablePart.find("waits"), std::string::npos);
    EXPECT_EQ(stablePart.find("lat"), std::string::npos);
    EXPECT_NE(json.find("\"count\": 1", volatileAt),
              std::string::npos);
}

TEST(MetricsRegistry, JsonIsDeterministicAcrossInsertionOrder)
{
    Registry a, b;
    a.countAdd("m.x", "p", 1, Stability::Stable);
    a.countAdd("m.x", "q", 2, Stability::Stable);
    a.countAdd("m.y", "", 3, Stability::Volatile);

    b.countAdd("m.y", "", 3, Stability::Volatile);
    b.countAdd("m.x", "q", 2, Stability::Stable);
    b.countAdd("m.x", "p", 1, Stability::Stable);

    EXPECT_EQ(a.snapshot().renderJson(), b.snapshot().renderJson());
}

TEST(MetricsConcurrency, ShardedStormMatchesSerialReference)
{
    // Hammer one registry from a parallelFor storm, then replay the
    // exact same observations single-threaded into a reference
    // registry. Shard merge must make the two snapshots identical —
    // including the volatile histograms, since the sample multiset
    // is the same regardless of which thread observed what.
    constexpr size_t kIters = 2000;
    Registry storm;
    Executor pool(4);
    {
        sm::SinkScope scope(&storm);
        pool.parallelFor(kIters, [](size_t i) {
            std::mt19937_64 rng(i);
            uint64_t v = rng() >> (rng() % 64);
            sm::count("storm.count", i % 3 + 1);
            sm::countLabeled("storm.labeled",
                             i % 2 ? "odd" : "even", 1);
            sm::gauge("storm.gauge", v % 1000);
            sm::observe("storm.lat", v);
        });
    }

    Registry serial;
    {
        sm::SinkScope scope(&serial);
        for (size_t i = 0; i < kIters; ++i) {
            std::mt19937_64 rng(i);
            uint64_t v = rng() >> (rng() % 64);
            sm::count("storm.count", i % 3 + 1);
            sm::countLabeled("storm.labeled",
                             i % 2 ? "odd" : "even", 1);
            sm::gauge("storm.gauge", v % 1000);
            sm::observe("storm.lat", v);
        }
    }

    EXPECT_EQ(storm.snapshot().renderJson(),
              serial.snapshot().renderJson());
    EXPECT_EQ(storm.snapshot().value("storm.labeled", "even") +
                  storm.snapshot().value("storm.labeled", "odd"),
              kIters);
}

TEST(MetricsConcurrency, ParallelForPropagatesSinkOverride)
{
    // Helper threads run pool-resident workers whose thread-local
    // sink default is the global registry; parallelFor must carry
    // the caller's override to them or the storm above would leak
    // into global(). Verify by checking a unique global metric stays
    // absent.
    const std::string unique = "test.sink_leak_probe";
    Registry local;
    Executor pool(4);
    {
        sm::SinkScope scope(&local);
        pool.parallelFor(512, [&](size_t) { sm::count(unique); });
    }
    EXPECT_EQ(local.snapshot().value(unique), 512u);
    EXPECT_EQ(Registry::global().snapshot().value(unique), 0u);
}

TEST(MetricsTxn, CommittedOnJobSuccessDroppedOnFailure)
{
    // The executor buffers each job's metrics in a per-job
    // transaction and publishes it only when the job reaches Done,
    // so a failed job never surfaces partially-merged counters
    // (satellite fix for `--stats` under --keep-going).
    const std::string okName = "test.txn_ok";
    const std::string failName = "test.txn_fail";
    uint64_t okBefore = Registry::global().snapshot().value(okName);

    JobGraph g;
    g.add("txn-ok", [&] { sm::count(okName, 5); });
    g.add("txn-fail", [&] {
        sm::count(failName, 7);
        throw std::runtime_error("boom");
    });
    Executor pool(2);
    pool.run(g);
    ASSERT_EQ(g.job(0).status, JobStatus::Done);
    ASSERT_EQ(g.job(1).status, JobStatus::Failed);

    Snapshot after = Registry::global().snapshot();
    EXPECT_EQ(after.value(okName), okBefore + 5);
    EXPECT_EQ(after.value(failName), 0u);
}

TEST(MetricsTxn, RetriedJobCommitsEveryAttemptsWrites)
{
    // A transaction spans the whole job, not one attempt: work a
    // transient failure performed before throwing (e.g. sims it
    // memoized) is still part of the job's committed story once a
    // later attempt succeeds.
    const std::string name = "test.txn_retry";
    uint64_t before = Registry::global().snapshot().value(name);

    int calls = 0;
    JobGraph g;
    size_t id = g.add("txn-retry", [&] {
        ++calls;
        sm::count(name, 1);
        if (calls == 1)
            throw rodinia::driver::TransientError("transient");
    });
    Executor pool(1);
    rodinia::driver::RetryPolicy policy;
    policy.maxAttempts = 3;
    policy.backoffBaseMs = 1;
    pool.setRetryPolicy(policy);
    pool.run(g);
    ASSERT_EQ(g.job(id).status, JobStatus::Done);
    ASSERT_EQ(calls, 2);

    // Both attempts' writes are in the committed transaction.
    EXPECT_EQ(Registry::global().snapshot().value(name), before + 2);
}
