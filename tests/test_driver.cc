/**
 * @file
 * Driver subsystem tests: job-graph execution order, dependency
 * failure propagation, executor determinism across thread counts,
 * and ResultStore hit/miss/version-invalidation behavior.
 */

#include <gtest/gtest.h>

#include <array>
#include <atomic>
#include <filesystem>
#include <fstream>
#include <mutex>
#include <set>
#include <stdexcept>
#include <vector>

#include "driver/context.hh"
#include "driver/executor.hh"
#include "driver/figures.hh"
#include "driver/job.hh"
#include "driver/result_store.hh"

using namespace rodinia;
using driver::Executor;
using driver::JobGraph;
using driver::JobStatus;
using driver::ResultStore;

namespace {

/** Fresh scratch directory under the build tree. */
class ScratchDir
{
  public:
    explicit ScratchDir(const std::string &tag)
        : path(std::filesystem::temp_directory_path() /
               ("rodinia_driver_test_" + tag))
    {
        std::filesystem::remove_all(path);
    }
    ~ScratchDir() { std::filesystem::remove_all(path); }
    const std::filesystem::path &dir() const { return path; }

  private:
    std::filesystem::path path;
};

} // namespace

// ---------------------------------------------------------------
// JobGraph
// ---------------------------------------------------------------

TEST(JobGraph, ExecutesDependenciesFirst)
{
    // Diamond with a tail: a -> {b, c} -> d -> e.
    JobGraph g;
    std::mutex mu;
    std::vector<std::string> order;
    auto record = [&](const char *tag) {
        std::lock_guard<std::mutex> lock(mu);
        order.push_back(tag);
    };
    size_t a = g.add("a", [&] { record("a"); });
    size_t b = g.add("b", [&] { record("b"); }, {a});
    size_t c = g.add("c", [&] { record("c"); }, {a});
    size_t d = g.add("d", [&] { record("d"); }, {b, c});
    g.add("e", [&] { record("e"); }, {d});

    for (int threads : {1, 4}) {
        order.clear();
        JobGraph run = g; // statuses are per-run
        Executor ex(threads);
        ASSERT_TRUE(ex.run(run));
        EXPECT_TRUE(run.allDone());
        ASSERT_EQ(order.size(), 5u);
        auto pos = [&](const std::string &tag) {
            for (size_t i = 0; i < order.size(); ++i)
                if (order[i] == tag)
                    return i;
            return size_t(-1);
        };
        EXPECT_LT(pos("a"), pos("b"));
        EXPECT_LT(pos("a"), pos("c"));
        EXPECT_LT(pos("b"), pos("d"));
        EXPECT_LT(pos("c"), pos("d"));
        EXPECT_LT(pos("d"), pos("e"));
    }
}

TEST(JobGraph, RejectsForwardDependencies)
{
    JobGraph g;
    size_t a = g.add("a", [] {});
    EXPECT_DEATH(g.add("b", [] {}, {a + 1}), "depends on job");
}

TEST(JobGraph, FailurePropagatesToTransitiveDependents)
{
    JobGraph g;
    std::atomic<int> ran{0};
    size_t a = g.add("a", [&] { ++ran; });
    size_t boom = g.add(
        "boom", [&] { throw std::runtime_error("kaput"); }, {a});
    size_t child = g.add("child", [&] { ++ran; }, {boom});
    size_t grandchild = g.add("grandchild", [&] { ++ran; }, {child});
    size_t bystander = g.add("bystander", [&] { ++ran; }, {a});

    Executor ex(2);
    EXPECT_FALSE(ex.run(g));
    EXPECT_EQ(g.job(a).status, JobStatus::Done);
    EXPECT_EQ(g.job(boom).status, JobStatus::Failed);
    EXPECT_EQ(g.job(boom).error, "kaput");
    EXPECT_EQ(g.job(child).status, JobStatus::Skipped);
    EXPECT_EQ(g.job(grandchild).status, JobStatus::Skipped);
    EXPECT_EQ(g.job(bystander).status, JobStatus::Done);
    EXPECT_EQ(ran.load(), 2); // a and bystander only
}

// ---------------------------------------------------------------
// Executor
// ---------------------------------------------------------------

TEST(Executor, ParallelForCoversEveryIndexExactlyOnce)
{
    Executor ex(4);
    std::vector<std::atomic<int>> hits(1000);
    ex.parallelFor(hits.size(),
                   [&](size_t i) { hits[i].fetch_add(1); });
    for (size_t i = 0; i < hits.size(); ++i)
        EXPECT_EQ(hits[i].load(), 1) << "index " << i;
}

TEST(Executor, ParallelForRethrowsFirstError)
{
    Executor ex(4);
    EXPECT_THROW(ex.parallelFor(64,
                                [&](size_t i) {
                                    if (i == 7)
                                        throw std::runtime_error("x");
                                }),
                 std::runtime_error);
}

TEST(Executor, NestedParallelForDoesNotDeadlock)
{
    Executor ex(2);
    JobGraph g;
    std::atomic<int> total{0};
    for (int j = 0; j < 4; ++j) {
        g.add("outer" + std::to_string(j), [&] {
            ex.parallelFor(8, [&](size_t) { total.fetch_add(1); });
        });
    }
    ASSERT_TRUE(ex.run(g));
    EXPECT_EQ(total.load(), 32);
}

TEST(Executor, DeterministicAcrossThreadCounts)
{
    // Slot-ordered assembly: the result must not depend on the
    // worker count or the interleaving.
    auto compute = [](int threads) {
        Executor ex(threads);
        JobGraph g;
        std::vector<double> slots(64, 0.0);
        for (size_t j = 0; j < slots.size(); ++j) {
            g.add("slot" + std::to_string(j), [&slots, j, &ex] {
                double acc = double(j) + 1.0;
                ex.parallelFor(16, [&](size_t i) {
                    // independent per-iteration contribution
                    slots[j] += 0.0; // no cross-iteration state
                    (void)i;
                });
                for (int i = 0; i < 1000; ++i)
                    acc = acc * 1.0000001 + double(j % 7);
                slots[j] = acc;
            });
        }
        bool ok = ex.run(g);
        EXPECT_TRUE(ok);
        return slots;
    };
    auto serial = compute(1);
    auto wide = compute(8);
    EXPECT_EQ(serial, wide);
}

TEST(Executor, DependentsRunExactlyOnceUnderContention)
{
    // An instantly-finishing root fanning out to many dependents,
    // with independent tail work racing the wakeup: every job must
    // run exactly once regardless of which worker claims it.
    constexpr int kFan = 24;
    for (int iter = 0; iter < 10; ++iter) {
        JobGraph g;
        std::array<std::atomic<int>, 2 * kFan> counts{};
        size_t root = g.add("root", [] {});
        for (int i = 0; i < kFan; ++i)
            g.add("dep" + std::to_string(i),
                  [&counts, i] { ++counts[size_t(i)]; }, {root});
        for (int i = 0; i < kFan; ++i)
            g.add("free" + std::to_string(i),
                  [&counts, i] { ++counts[size_t(kFan + i)]; });
        Executor ex(4);
        ASSERT_TRUE(ex.run(g));
        EXPECT_TRUE(g.allDone());
        for (int i = 0; i < 2 * kFan; ++i)
            EXPECT_EQ(counts[size_t(i)].load(), 1) << "job " << i;
    }
}

TEST(Executor, WallClockAccountingIsRecorded)
{
    Executor ex(2);
    JobGraph g;
    g.add("sleepless", [] {
        volatile double x = 0;
        for (int i = 0; i < 100000; ++i)
            x = x + double(i);
    });
    ASSERT_TRUE(ex.run(g));
    EXPECT_EQ(g.job(0).status, JobStatus::Done);
    EXPECT_GE(g.job(0).wallMs, 0.0);
    EXPECT_GE(g.totalWorkMs(), g.job(0).wallMs);
}

// ---------------------------------------------------------------
// ResultStore
// ---------------------------------------------------------------

TEST(ResultStore, MissThenHit)
{
    ScratchDir scratch("store");
    ResultStore store(scratch.dir());
    auto key = driver::cpuCharKey("kmeans", core::Scale::Full, 8);

    EXPECT_FALSE(store.load(key).has_value());
    EXPECT_EQ(store.misses(), 1u);

    store.store(key, "payload-bytes");
    auto back = store.load(key);
    ASSERT_TRUE(back.has_value());
    EXPECT_EQ(*back, "payload-bytes");
    EXPECT_EQ(store.hits(), 1u);
}

TEST(ResultStore, KeyFieldsChangeThePath)
{
    ScratchDir scratch("keys");
    ResultStore store(scratch.dir());
    auto base = driver::cpuCharKey("kmeans", core::Scale::Full, 8);

    auto otherScale = driver::cpuCharKey("kmeans", core::Scale::Small, 8);
    auto otherThreads = driver::cpuCharKey("kmeans", core::Scale::Full, 4);
    auto otherName = driver::cpuCharKey("bfs", core::Scale::Full, 8);
    EXPECT_NE(store.pathFor(base), store.pathFor(otherScale));
    EXPECT_NE(store.pathFor(base), store.pathFor(otherThreads));
    EXPECT_NE(store.pathFor(base), store.pathFor(otherName));

    auto config = base;
    config.config = "simd=16";
    EXPECT_NE(store.pathFor(base), store.pathFor(config));

    store.store(base, "one");
    EXPECT_FALSE(store.load(otherScale).has_value());
    EXPECT_FALSE(store.load(otherThreads).has_value());
}

TEST(ResultStore, VersionBumpInvalidates)
{
    ScratchDir scratch("version");
    auto key = driver::cpuCharKey("kmeans", core::Scale::Full, 8);

    ResultStore v5(scratch.dir(), true, 5);
    v5.store(key, "v5-payload");
    ASSERT_TRUE(v5.load(key).has_value());

    ResultStore v6(scratch.dir(), true, 6);
    EXPECT_FALSE(v6.load(key).has_value());
}

TEST(ResultStore, DisabledStoreNeverHits)
{
    ScratchDir scratch("disabled");
    ResultStore store(scratch.dir(), false);
    auto key = driver::cpuCharKey("kmeans", core::Scale::Full, 8);
    store.store(key, "ignored");
    EXPECT_FALSE(store.load(key).has_value());
    EXPECT_FALSE(std::filesystem::exists(store.pathFor(key)));
}

TEST(ResultStore, PublishesAtomicallyWithoutTempDroppings)
{
    ScratchDir scratch("atomic");
    ResultStore store(scratch.dir());
    auto key = driver::cpuCharKey("srad", core::Scale::Full, 8);
    store.store(key, "payload");
    // Exactly the final file, no *.tmp left behind.
    size_t files = 0;
    for (const auto &ent :
         std::filesystem::directory_iterator(scratch.dir())) {
        ++files;
        EXPECT_EQ(ent.path(), store.pathFor(key));
    }
    EXPECT_EQ(files, 1u);
}

TEST(ResultStore, ConcurrentWritersStayConsistent)
{
    ScratchDir scratch("concurrent");
    ResultStore store(scratch.dir());
    auto key = driver::cpuCharKey("lud", core::Scale::Full, 8);
    Executor ex(4);
    ex.parallelFor(32, [&](size_t) {
        store.store(key, "deterministic-payload");
    });
    auto back = store.load(key);
    ASSERT_TRUE(back.has_value());
    EXPECT_EQ(*back, "deterministic-payload");
}

TEST(ResultStore, FailedPublishIsCountedNotTorn)
{
    ScratchDir scratch("pubfail");
    // Occupy the store's directory path with a regular file so the
    // publish path cannot create the cache directory.
    {
        std::ofstream block(scratch.dir());
        block << "in the way";
    }
    ResultStore store(scratch.dir());
    auto key = driver::cpuCharKey("bfs", core::Scale::Full, 8);
    EXPECT_FALSE(store.store(key, "payload"));
    EXPECT_EQ(store.publishFailures(), 1u);
    // The failed publish left no entry behind — absent, not torn.
    EXPECT_FALSE(store.load(key).has_value());
}

TEST(ResultStore, DiscardDropsEntryAndReclassifiesHit)
{
    ScratchDir scratch("discard");
    ResultStore store(scratch.dir());
    auto key = driver::cpuCharKey("hotspot", core::Scale::Full, 8);
    ASSERT_TRUE(store.store(key, "corrupt-but-loadable"));
    ASSERT_TRUE(store.load(key).has_value());
    EXPECT_EQ(store.hits(), 1u);
    EXPECT_EQ(store.misses(), 0u);

    // The caller found the payload unusable: the entry disappears
    // and the hit that surfaced it is reclassified as a miss.
    store.discard(key);
    EXPECT_FALSE(std::filesystem::exists(store.pathFor(key)));
    EXPECT_EQ(store.hits(), 0u);
    EXPECT_EQ(store.misses(), 1u);

    // Self-healing: the recompute's store works and future loads hit.
    EXPECT_FALSE(store.load(key).has_value());
    ASSERT_TRUE(store.store(key, "fresh"));
    auto back = store.load(key);
    ASSERT_TRUE(back.has_value());
    EXPECT_EQ(*back, "fresh");
}

TEST(ResultStore, CpuCharRoundTripPreservesHitDepth)
{
    core::CpuCharacterization c;
    c.name = "srad";
    c.suite = core::Suite::Rodinia;
    c.threads = 4;
    c.cacheSizes = {128 * 1024};
    c.sweep.resize(1);
    auto &s = c.sweep[0];
    s.accesses = 1000;
    s.misses = 120;
    s.hitDepth = {500, 200, 100, 80, 0, 0, 0, 0};

    core::CpuCharacterization back;
    ASSERT_TRUE(driver::parseCpuChar(driver::serializeCpuChar(c), back));
    ASSERT_EQ(back.sweep.size(), 1u);
    EXPECT_EQ(back.sweep[0].hitDepth, s.hitDepth);
    // Depth-projected miss counts survive the round trip.
    EXPECT_EQ(back.sweep[0].missesAtAssoc(1), 500u);
    EXPECT_EQ(back.sweep[0].missesAtAssoc(4), s.misses);
}

TEST(ResultStore, CpuCharRoundTrip)
{
    core::CpuCharacterization c;
    c.name = "kmeans";
    c.suite = core::Suite::Rodinia;
    c.threads = 8;
    c.mix.intOps = 10;
    c.mix.fpOps = 20;
    c.mix.branches = 5;
    c.mix.loads = 7;
    c.mix.stores = 3;
    c.memEvents = 1234;
    c.instructionSites = 44;
    c.instructionBlocks = 11;
    c.dataPages = 99;
    c.checksum = 0xdeadbeef;
    c.cacheSizes = {1024, 2048};
    c.sweep.resize(2);
    c.sweep[0].accesses = 100;
    c.sweep[0].misses = 10;
    c.sweep[1].accesses = 100;
    c.sweep[1].misses = 5;

    core::CpuCharacterization back;
    ASSERT_TRUE(driver::parseCpuChar(driver::serializeCpuChar(c), back));
    EXPECT_EQ(back.name, c.name);
    EXPECT_EQ(back.threads, c.threads);
    EXPECT_EQ(back.checksum, c.checksum);
    ASSERT_EQ(back.cacheSizes.size(), 2u);
    EXPECT_EQ(back.cacheSizes[1], 2048u);
    EXPECT_EQ(back.sweep[1].misses, 5u);

    core::CpuCharacterization bad;
    EXPECT_FALSE(driver::parseCpuChar("garbage", bad));
    EXPECT_FALSE(driver::parseCpuChar("", bad));
    // Truncated payload (as a crash mid-write would have produced
    // without atomic publication) must be rejected, not half-read.
    auto full = driver::serializeCpuChar(c);
    EXPECT_FALSE(
        driver::parseCpuChar(full.substr(0, full.size() / 2), bad));
}

// ---------------------------------------------------------------
// Context
// ---------------------------------------------------------------

TEST(Context, MemoizesAndCachesCharacterizations)
{
    ScratchDir scratch("ctx");
    ResultStore store(scratch.dir());
    std::string firstBytes;
    {
        driver::Context ctx(&store);
        const auto &first =
            ctx.cpu("kmeans", core::Scale::Tiny, 2);
        const auto &second =
            ctx.cpu("kmeans", core::Scale::Tiny, 2);
        EXPECT_EQ(&first, &second); // memoized, not recomputed
        EXPECT_EQ(first.name, "kmeans");
        EXPECT_EQ(first.threads, 2);
        firstBytes = driver::serializeCpuChar(first);
    }
    EXPECT_EQ(store.hits(), 0u);

    // A fresh context on the same store deserializes instead of
    // recomputing, and reproduces the computed characterization
    // byte for byte. (This round trip through the store is what
    // makes every consumer in a run see identical numbers.)
    driver::Context ctx2(&store);
    const auto &reloaded = ctx2.cpu("kmeans", core::Scale::Tiny, 2);
    EXPECT_EQ(store.hits(), 1u);
    EXPECT_EQ(driver::serializeCpuChar(reloaded), firstBytes);
}

TEST(Context, FigureRegistryIsComplete)
{
    // 17 figures: tables I+III, figs 1-12, PB, two ablations.
    EXPECT_EQ(driver::allFigures().size(), 17u);
    EXPECT_NE(driver::findFigure("fig4"), nullptr);
    EXPECT_NE(driver::findFigure("pb"), nullptr);
    EXPECT_EQ(driver::findFigure("nope"), nullptr);
    for (const auto &def : driver::allFigures()) {
        EXPECT_FALSE(def.id.empty());
        EXPECT_FALSE(def.title.empty());
        EXPECT_NE(def.build, nullptr);
    }
}

TEST(Context, FigureOrderIsThreadSafeUnderConcurrentFirstUse)
{
    Executor ex(4);
    std::atomic<size_t> sum{0};
    ex.parallelFor(64, [&](size_t) {
        sum.fetch_add(driver::figureOrder().size());
    });
    EXPECT_EQ(sum.load(), 64u * 12u);
}

TEST(Context, ParallelFigureMatchesSerialFigure)
{
    // The smallest GPU figure: ablation_coalesce records three
    // Small-scale kernels. Serial context vs pooled context must
    // render identical bytes.
    const auto *def = driver::findFigure("ablation_coalesce");
    ASSERT_NE(def, nullptr);

    driver::Context serial;
    std::string serialText = def->build(serial);

    Executor ex(4);
    driver::Context pooled(nullptr, &ex);
    std::string pooledText = def->build(pooled);

    EXPECT_FALSE(serialText.empty());
    EXPECT_EQ(serialText, pooledText);
}

// ---------------------------------------------------------------
// Context::gpuStats (memoized, store-backed timing simulation)
// ---------------------------------------------------------------

TEST(GpuStats, MemoizesWithinAProcessAndCachesAcrossProcesses)
{
    ScratchDir scratch("gpustats");
    gpusim::SimConfig cfg = gpusim::SimConfig::shaders(4);

    gpusim::KernelStats first;
    {
        ResultStore store(scratch.dir());
        driver::Context ctx(&store);
        const auto &a =
            ctx.gpuStats("kmeans", core::Scale::Tiny, 0, cfg);
        const auto &b =
            ctx.gpuStats("kmeans", core::Scale::Tiny, 0, cfg);
        EXPECT_EQ(&a, &b); // memoized, not re-simulated
        EXPECT_GT(a.cycles, 0u);
        EXPECT_EQ(ctx.gpuStatsStoreHits(), 0u);
        EXPECT_EQ(ctx.gpuSimTelemetrySnapshot().size(), 1u);
        first = a;
    }

    // A fresh context on the same store must serve the stats from
    // disk — zero simulations — and reproduce them byte for byte.
    ResultStore store(scratch.dir());
    driver::Context ctx2(&store);
    const auto &reloaded =
        ctx2.gpuStats("kmeans", core::Scale::Tiny, 0, cfg);
    EXPECT_EQ(ctx2.gpuStatsStoreHits(), 1u);
    EXPECT_TRUE(ctx2.gpuSimTelemetrySnapshot().empty());
    EXPECT_TRUE(reloaded == first);
    EXPECT_EQ(gpusim::serializeKernelStats(reloaded),
              gpusim::serializeKernelStats(first));
}

TEST(GpuStats, DistinctConfigsSimulateSeparately)
{
    driver::Context ctx; // no store: pure memoization
    const auto &sa = ctx.gpuStats("kmeans", core::Scale::Tiny, 0,
                                  gpusim::SimConfig::shaders(4));
    const auto &sb = ctx.gpuStats("kmeans", core::Scale::Tiny, 0,
                                  gpusim::SimConfig::shaders(8));
    EXPECT_NE(&sa, &sb); // different fingerprint, different entry
    EXPECT_GT(sa.cycles, 0u);
    EXPECT_GT(sb.cycles, 0u);
    EXPECT_LE(sb.cycles, sa.cycles); // more shaders never slower
    EXPECT_EQ(ctx.gpuSimTelemetrySnapshot().size(), 2u);
}

TEST(Context, GpuFigureIsByteIdenticalColdVersusWarm)
{
    ScratchDir scratch("figwarm");
    const auto *def = driver::findFigure("ablation_coalesce");
    ASSERT_NE(def, nullptr);

    std::string cold;
    {
        ResultStore store(scratch.dir());
        driver::Context ctx(&store);
        cold = def->build(ctx);
        EXPECT_EQ(ctx.gpuStatsStoreHits(), 0u);
        EXPECT_FALSE(ctx.gpuSimTelemetrySnapshot().empty());
    }

    // Warm rerun in a new process-equivalent (fresh Context), with a
    // worker pool for good measure: every simulation must come from
    // the store and the rendered figure must not change by a byte.
    ResultStore store(scratch.dir());
    Executor ex(4);
    driver::Context ctx(&store, &ex);
    std::string warm = def->build(ctx);
    EXPECT_EQ(warm, cold);
    EXPECT_GT(ctx.gpuStatsStoreHits(), 0u);
    EXPECT_TRUE(ctx.gpuSimTelemetrySnapshot().empty());
}

// ---------------------------------------------------------------
// ParallelGpuSim: concurrent timing simulations over one recording
// ---------------------------------------------------------------

namespace {

/**
 * Hand-built recording (no fiber-based recorder involved, so the
 * test is meaningful under TSan): every lane issues alternating
 * FP-ALU and strided global-load events with strictly increasing
 * order keys.
 */
gpusim::KernelRecording
syntheticRecording(int blocks, int block_dim, int events_per_lane)
{
    gpusim::KernelRecording rec;
    rec.launch.gridDim = blocks;
    rec.launch.blockDim = block_dim;
    rec.blocks.resize(size_t(blocks));
    for (int b = 0; b < blocks; ++b) {
        auto &block = rec.blocks[size_t(b)];
        block.blockDim = block_dim;
        block.lanes.resize(size_t(block_dim));
        for (int l = 0; l < block_dim; ++l) {
            auto &lane = block.lanes[size_t(l)];
            for (int e = 0; e < events_per_lane; ++e) {
                gpusim::GEvent ev;
                ev.key.hi = uint64_t(e + 1) << 48; // event "PC"
                if (e % 2 == 0) {
                    ev.op = gpusim::GOp::FpAlu;
                } else {
                    ev.op = gpusim::GOp::Load;
                    ev.space = gpusim::Space::Global;
                    ev.size = 4;
                    ev.addr = uint64_t(b * block_dim + l) * 4 +
                              uint64_t(e) * 8192;
                }
                lane.append(ev);
            }
        }
    }
    return rec;
}

} // namespace

TEST(ParallelGpuSim, ConcurrentSimulationsMatchSerial)
{
    auto rec = syntheticRecording(8, 64, 16);
    std::vector<gpusim::SimConfig> cfgs;
    for (int sms : {2, 4, 8, 16})
        cfgs.push_back(gpusim::SimConfig::shaders(sms));
    cfgs.push_back(gpusim::SimConfig::gtx280());
    cfgs.push_back(gpusim::SimConfig::gtx480(true));

    std::vector<gpusim::KernelStats> serial;
    for (const auto &c : cfgs)
        serial.push_back(gpusim::TimingSim(c).simulate(rec));

    // The same simulations fanned across a pool, all reading the one
    // shared recording, each writing its own slot — the exact shape
    // Context::gpuStats runs under figure jobs.
    Executor ex(4);
    std::vector<gpusim::KernelStats> pooled(cfgs.size());
    ex.parallelFor(cfgs.size(), [&](size_t i) {
        pooled[i] = gpusim::TimingSim(cfgs[i]).simulate(rec);
    });

    for (size_t i = 0; i < cfgs.size(); ++i)
        EXPECT_TRUE(pooled[i] == serial[i]) << "config " << i;
}
