/**
 * @file
 * Golden-figure regression corpus: every figure/table the repo
 * reproduces is pinned byte-for-byte against a checked-in reference
 * under tests/golden/. Any change to a workload, the cache or GPU
 * timing simulators, or a figure builder that alters reproduced
 * output must come with a deliberate regeneration of the corpus
 * (run the DISABLED_RegenerateCorpus test below), turning silent
 * output drift into an explicit, reviewable diff.
 *
 * The figures are built through driver::buildFigure on a Context
 * with no result store, so the corpus pins pure computation —
 * store contents can never mask a regression here.
 */

#include <gtest/gtest.h>

#include <filesystem>
#include <fstream>
#include <set>
#include <sstream>
#include <string>

#include "driver/context.hh"
#include "driver/executor.hh"
#include "driver/figures.hh"
#include "gpusim/simconfig.hh"
#include "support/threadbudget.hh"
#include "support/tracemode.hh"

using namespace rodinia;

namespace {

std::filesystem::path
goldenDir()
{
    return std::filesystem::path(RODINIA_GOLDEN_DIR);
}

std::string
slurp(const std::filesystem::path &p)
{
    std::ifstream in(p, std::ios::binary);
    std::ostringstream buf;
    buf << in.rdbuf();
    return buf.str();
}

} // namespace

TEST(Golden, CorpusIsCompleteAndHasNoStrays)
{
    std::set<std::string> expected;
    for (const auto &def : driver::allFigures())
        expected.insert(def.id + ".txt");
    ASSERT_FALSE(expected.empty());

    std::set<std::string> present;
    std::error_code ec;
    for (const auto &entry : std::filesystem::directory_iterator(
             goldenDir(), ec))
        present.insert(entry.path().filename().string());
    ASSERT_FALSE(ec) << "missing corpus directory " << goldenDir();

    EXPECT_EQ(present, expected)
        << "tests/golden/ must hold exactly one <figure-id>.txt per "
           "figure (regenerate with --gtest_also_run_disabled_tests "
           "--gtest_filter=Golden.DISABLED_RegenerateCorpus)";
}

TEST(Golden, FiguresMatchCorpusByteForByte)
{
    driver::Executor pool(0);
    driver::Context ctx(nullptr, &pool);
    for (const auto &def : driver::allFigures()) {
        SCOPED_TRACE(def.id);
        std::filesystem::path ref = goldenDir() / (def.id + ".txt");
        ASSERT_TRUE(std::filesystem::exists(ref)) << ref;
        std::string got = driver::buildFigure(def, ctx);
        EXPECT_EQ(got, slurp(ref))
            << "figure '" << def.id << "' drifted from its golden "
            << "reference; if the change is intended, regenerate the "
            << "corpus and review the diff";
    }
}

/**
 * The streaming-vs-materialized byte-equivalence oracle. The normal
 * corpus test above runs with the default compact streaming traces;
 * this one rebuilds every figure with the materialized (oracle)
 * representation — the pre-streaming per-event structs — and pins it
 * against the same corpus. Together the two tests prove the two
 * representations agree byte-for-byte on all figures at full scale:
 * any encode/decode bug in EventStream or LaneStream that survives
 * the unit tests breaks one of them.
 */
TEST(Golden, OracleModeMatchesCorpusByteForByte)
{
    bool prev = support::setTraceOracleModeForTest(true);
    {
        driver::Executor pool(0);
        driver::Context ctx(nullptr, &pool);
        for (const auto &def : driver::allFigures()) {
            SCOPED_TRACE(def.id);
            std::filesystem::path ref = goldenDir() / (def.id + ".txt");
            ASSERT_TRUE(std::filesystem::exists(ref)) << ref;
            std::string got = driver::buildFigure(def, ctx);
            EXPECT_EQ(got, slurp(ref))
                << "figure '" << def.id << "' differs between the "
                << "materialized oracle traces and the golden corpus "
                << "(which the streaming representation reproduces)";
        }
    }
    support::setTraceOracleModeForTest(prev);
}

/**
 * The parallel-timing-engine determinism oracle at figure scale:
 * rebuild every figure with a multi-threaded GPU timing sim (an odd
 * thread count, to dodge any accidentally-even partitioning
 * symmetry) and pin it against the same corpus the serial engine
 * reproduces. Epoch parallelism must never shift a single byte of
 * reproduced output.
 */
TEST(Golden, ParallelSimThreadsMatchCorpusByteForByte)
{
    int prev_threads = gpusim::SimConfig::defaultSimThreads();
    int prev_cap = support::ThreadBudget::instance().capacity();
    gpusim::SimConfig::setDefaultSimThreads(3);
    support::ThreadBudget::instance().setCapacity(8);
    {
        driver::Executor pool(0);
        driver::Context ctx(nullptr, &pool);
        for (const auto &def : driver::allFigures()) {
            SCOPED_TRACE(def.id);
            std::filesystem::path ref = goldenDir() / (def.id + ".txt");
            ASSERT_TRUE(std::filesystem::exists(ref)) << ref;
            std::string got = driver::buildFigure(def, ctx);
            EXPECT_EQ(got, slurp(ref))
                << "figure '" << def.id << "' differs between the "
                << "parallel (sim-threads=3) and serial timing "
                << "engines";
        }
    }
    support::ThreadBudget::instance().setCapacity(prev_cap);
    gpusim::SimConfig::setDefaultSimThreads(prev_threads);
}

/**
 * Corpus writer, excluded from normal runs. Regenerate after an
 * intended output change:
 *
 *   ./tests/test_golden --gtest_also_run_disabled_tests \
 *       --gtest_filter=Golden.DISABLED_RegenerateCorpus
 */
TEST(Golden, DISABLED_RegenerateCorpus)
{
    std::filesystem::create_directories(goldenDir());
    driver::Executor pool(0);
    driver::Context ctx(nullptr, &pool);
    for (const auto &def : driver::allFigures()) {
        std::ofstream out(goldenDir() / (def.id + ".txt"),
                          std::ios::binary);
        out << driver::buildFigure(def, ctx);
        ASSERT_TRUE(out.good()) << def.id;
    }
}
