/**
 * @file
 * Functional-correctness tests for the Rodinia workloads.
 *
 * The strongest checks cross-validate the independently written CPU
 * and GPU implementations of each benchmark on identical inputs: a
 * matching output digest means the SIMT recorder's fiber execution,
 * shared-memory semantics, and barrier ordering all computed the
 * same answer as the multithreaded CPU code. Reference
 * implementations validate the algorithms themselves.
 */

#include <gtest/gtest.h>

#include <cmath>

#include "core/characterize.hh"
#include "support/rng.hh"
#include "core/workload.hh"
#include "workloads/rodinia/bfs.hh"
#include "workloads/rodinia/hotspot.hh"
#include "workloads/rodinia/kmeans.hh"
#include "workloads/rodinia/lud.hh"
#include "workloads/rodinia/mummer.hh"
#include "workloads/rodinia/nw.hh"
#include "workloads/rodinia/srad.hh"
#include "workloads/rodinia/streamcluster.hh"

using namespace rodinia;
using namespace rodinia::core;
using namespace rodinia::workloads;

namespace {

/** Digest of the CPU implementation at the given scale. */
uint64_t
cpuDigest(Workload &w, Scale scale, int threads = 4)
{
    trace::TraceSession session(threads, false);
    w.runCpu(session, scale);
    return w.checksum();
}

/** Digest of the GPU implementation at the given scale. */
uint64_t
gpuDigest(Workload &w, Scale scale, int version = 1)
{
    w.runGpu(scale, version);
    return w.checksum();
}

} // namespace

TEST(RegistrySuite, AllWorkloadsRegistered)
{
    registerAllWorkloads();
    auto &reg = Registry::instance();
    EXPECT_EQ(reg.names(Suite::Rodinia).size(), 12u);
    EXPECT_EQ(reg.names(Suite::Parsec).size(), 13u);
    EXPECT_TRUE(reg.has("kmeans"));
    EXPECT_TRUE(reg.has("streamcluster"));
    EXPECT_FALSE(reg.has("doesnotexist"));
}

TEST(RegistrySuite, MetadataMatchesTableOne)
{
    registerAllWorkloads();
    auto &reg = Registry::instance();
    auto km = reg.create("kmeans");
    EXPECT_EQ(km->info().dwarf, "Dense Linear Algebra");
    EXPECT_EQ(km->info().domain, "Data Mining");
    auto bfs = reg.create("bfs");
    EXPECT_EQ(bfs->info().dwarf, "Graph Traversal");
    auto hw = reg.create("heartwall");
    EXPECT_EQ(hw->info().domain, "Medical Imaging");
}

TEST(KmeansTest, CpuAndGpuAgree)
{
    Kmeans a, b;
    EXPECT_EQ(cpuDigest(a, Scale::Tiny),
              gpuDigest(b, Scale::Tiny));
}

TEST(KmeansTest, ConvergesToDistinctClusters)
{
    Kmeans k;
    trace::TraceSession session(4, false);
    k.runCpu(session, Scale::Tiny);
    auto p = Kmeans::params(Scale::Tiny);
    // Every cluster id in range; more than one cluster used.
    std::vector<int> used(p.k, 0);
    for (int m : k.memberships()) {
        ASSERT_GE(m, 0);
        ASSERT_LT(m, p.k);
        used[m] = 1;
    }
    int distinct = 0;
    for (int u : used)
        distinct += u;
    EXPECT_GT(distinct, 1);
}

TEST(NwTest, CpuMatchesBothGpuVersions)
{
    NeedlemanWunsch a, b, c;
    uint64_t cpu = cpuDigest(a, Scale::Tiny);
    EXPECT_EQ(cpu, gpuDigest(b, Scale::Tiny, 1));
    EXPECT_EQ(cpu, gpuDigest(c, Scale::Tiny, 2));
}

TEST(NwTest, ScoreBoundedByPerfectMatch)
{
    NeedlemanWunsch w;
    cpuDigest(w, Scale::Tiny);
    auto p = NeedlemanWunsch::params(Scale::Tiny);
    EXPECT_LE(w.finalScore(), 5 * p.n);
    EXPECT_GE(w.finalScore(), -2 * p.penalty * p.n);
}

TEST(HotspotTest, CpuMatchesReference)
{
    HotSpot w;
    uint64_t cpu = cpuDigest(w, Scale::Tiny);
    auto ref = HotSpot::reference(HotSpot::params(Scale::Tiny));
    EXPECT_EQ(cpu, core::hashRange(ref.begin(), ref.end()));
}

TEST(HotspotTest, GpuMatchesReference)
{
    HotSpot w;
    uint64_t gpu = gpuDigest(w, Scale::Tiny);
    auto ref = HotSpot::reference(HotSpot::params(Scale::Tiny));
    EXPECT_EQ(gpu, core::hashRange(ref.begin(), ref.end()));
}

TEST(SradTest, CpuMatchesReference)
{
    Srad w;
    uint64_t cpu = cpuDigest(w, Scale::Tiny);
    auto ref = Srad::reference(Srad::params(Scale::Tiny));
    EXPECT_EQ(cpu, core::hashRange(ref.begin(), ref.end()));
}

TEST(SradTest, BothGpuVersionsMatchReference)
{
    auto ref = Srad::reference(Srad::params(Scale::Tiny));
    uint64_t expect = core::hashRange(ref.begin(), ref.end());
    Srad v1, v2;
    EXPECT_EQ(gpuDigest(v1, Scale::Tiny, 1), expect);
    EXPECT_EQ(gpuDigest(v2, Scale::Tiny, 2), expect);
}

TEST(BfsTest, CpuMatchesSequentialReference)
{
    Bfs w;
    uint64_t cpu = cpuDigest(w, Scale::Tiny);
    auto p = Bfs::params(Scale::Tiny);
    auto g = BfsGraph::random(p.nodes, p.avgDegree, 0xBF5);
    auto ref = Bfs::reference(g, 0);
    EXPECT_EQ(cpu, core::hashRange(ref.begin(), ref.end()));
}

TEST(BfsTest, GpuMatchesSequentialReference)
{
    Bfs w;
    uint64_t gpu = gpuDigest(w, Scale::Tiny);
    auto p = Bfs::params(Scale::Tiny);
    auto g = BfsGraph::random(p.nodes, p.avgDegree, 0xBF5);
    auto ref = Bfs::reference(g, 0);
    EXPECT_EQ(gpu, core::hashRange(ref.begin(), ref.end()));
}

TEST(StreamclusterTest, CpuAndGpuAgree)
{
    StreamCluster a, b;
    EXPECT_EQ(cpuDigest(a, Scale::Tiny), gpuDigest(b, Scale::Tiny));
}

TEST(LudTest, FactorizationReconstructsMatrix)
{
    // Validate A = L * U for both the CPU and the blocked GPU paths.
    for (int version : {0, 1, 2}) {
        Lud w;
        auto p = Lud::params(Scale::Tiny);
        if (version == 0) {
            trace::TraceSession session(4, false);
            w.runCpu(session, Scale::Tiny);
        } else {
            w.runGpu(Scale::Tiny, version);
        }
        const auto &lu = w.result();
        auto a = Lud::makeMatrix(p.n);
        const int n = p.n;
        double maxErr = 0.0;
        for (int i = 0; i < n; ++i) {
            for (int j = 0; j < n; ++j) {
                double acc = 0.0;
                for (int k = 0; k <= std::min(i, j); ++k) {
                    double l = k == i ? 1.0 : lu[size_t(i) * n + k];
                    double u = lu[size_t(k) * n + j];
                    acc += l * u;
                }
                maxErr = std::max(
                    maxErr, std::fabs(acc - a[size_t(i) * n + j]));
            }
        }
        EXPECT_LT(maxErr, 1e-2) << "version " << version;
    }
}

TEST(LudTest, CpuMatchesUnblockedGpu)
{
    Lud a, b;
    EXPECT_EQ(cpuDigest(a, Scale::Tiny), gpuDigest(b, Scale::Tiny, 1));
}

TEST(SuffixTreeTest, MatchesNaiveSearch)
{
    Rng rng(4242);
    for (int trial = 0; trial < 20; ++trial) {
        int n = 50 + int(rng.below(200));
        std::vector<uint8_t> text(n + 1);
        for (int i = 0; i < n; ++i)
            text[i] = uint8_t(rng.below(4));
        text[n] = SuffixTree::kTerm;
        SuffixTree tree(text);

        for (int q = 0; q < 20; ++q) {
            int qlen = 1 + int(rng.below(20));
            std::vector<uint8_t> query(qlen);
            for (auto &c : query)
                c = uint8_t(rng.below(4));

            // Naive longest-prefix-occurring-in-text.
            int best = 0;
            for (int s = 0; s < n; ++s) {
                int l = 0;
                while (l < qlen && s + l < n &&
                       text[s + l] == query[l])
                    ++l;
                best = std::max(best, l);
            }
            EXPECT_EQ(tree.matchLength(query.data(), qlen), best)
                << "trial " << trial << " query " << q;
        }
    }
}

TEST(SuffixTreeTest, ExactSubstringsFullyMatch)
{
    Rng rng(7);
    std::vector<uint8_t> text(301);
    for (int i = 0; i < 300; ++i)
        text[i] = uint8_t(rng.below(4));
    text[300] = SuffixTree::kTerm;
    SuffixTree tree(text);
    for (int s = 0; s < 280; s += 13) {
        std::vector<uint8_t> q(text.begin() + s, text.begin() + s + 20);
        EXPECT_EQ(tree.matchLength(q.data(), 20), 20);
    }
}

TEST(MummerTest, CpuAndGpuAgree)
{
    Mummer a, b;
    EXPECT_EQ(cpuDigest(a, Scale::Tiny), gpuDigest(b, Scale::Tiny));
}

/** Every Rodinia workload runs at Tiny scale on both targets. */
class RodiniaSmoke : public ::testing::TestWithParam<std::string>
{
};

TEST_P(RodiniaSmoke, CpuRunsAndChecksums)
{
    registerAllWorkloads();
    auto w = Registry::instance().create(GetParam());
    trace::TraceSession session(4, true);
    w->runCpu(session, Scale::Tiny);
    EXPECT_GT(session.totalMix().total(), 0u);
    EXPECT_GT(session.totalEvents(), 0u);
    EXPECT_NE(w->checksum(), 0u);
}

TEST_P(RodiniaSmoke, GpuRunsDeterministically)
{
    registerAllWorkloads();
    auto w = Registry::instance().create(GetParam());
    ASSERT_GE(w->gpuVersions(), 1);
    auto seq1 = w->runGpu(Scale::Tiny, 1);
    uint64_t d1 = w->checksum();
    auto w2 = Registry::instance().create(GetParam());
    auto seq2 = w2->runGpu(Scale::Tiny, 1);
    EXPECT_EQ(d1, w2->checksum());
    EXPECT_EQ(seq1.threadInstructions(), seq2.threadInstructions());
    EXPECT_GT(seq1.threadInstructions(), 0u);
}

INSTANTIATE_TEST_SUITE_P(
    AllRodinia, RodiniaSmoke,
    ::testing::Values("kmeans", "nw", "hotspot", "backprop", "srad",
                      "leukocyte", "bfs", "streamcluster", "mummer",
                      "cfd", "lud", "heartwall"),
    [](const auto &info) { return info.param; });
