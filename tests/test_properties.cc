/**
 * @file
 * Property-based and parameterized sweeps across the library:
 * invariants that must hold for every workload, scale, and
 * configuration, plus a reference-model equivalence check for the
 * cache simulator.
 */

#include <gtest/gtest.h>

#include <list>
#include <tuple>

#include "cachesim/cache.hh"
#include "core/characterize.hh"
#include "core/workload.hh"
#include "gpusim/replay.hh"
#include "gpusim/timing.hh"
#include "support/rng.hh"
#include "trace/trace.hh"

using namespace rodinia;
using namespace rodinia::core;

// ---------------------------------------------------------------------
// Cache simulator vs an obviously correct reference model.
// ---------------------------------------------------------------------

namespace {

/** Reference set-associative LRU cache built on std::list. */
class RefCache
{
  public:
    RefCache(uint64_t size, int assoc, int line)
        : assoc(assoc), line(line), numSets(size / (uint64_t(assoc) *
                                                    line))
    {
        while (numSets & (numSets - 1))
            numSets &= numSets - 1;
        sets.resize(numSets);
    }

    bool
    access(uint64_t addr)
    {
        uint64_t la = addr / line;
        uint64_t set = (la ^ (la / numSets) * 0x9e3779b9) &
                       (numSets - 1);
        uint64_t tag = la / numSets;
        auto &s = sets[set];
        for (auto it = s.begin(); it != s.end(); ++it) {
            if (*it == tag) {
                s.erase(it);
                s.push_front(tag);
                return true;
            }
        }
        s.push_front(tag);
        if (int(s.size()) > assoc)
            s.pop_back();
        return false;
    }

  private:
    int assoc;
    int line;
    uint64_t numSets;
    std::vector<std::list<uint64_t>> sets;
};

} // namespace

class CacheEquivalence
    : public ::testing::TestWithParam<std::tuple<uint64_t, int>>
{
};

TEST_P(CacheEquivalence, MatchesReferenceLru)
{
    auto [size, assoc] = GetParam();
    cachesim::CacheConfig cfg;
    cfg.sizeBytes = size;
    cfg.assoc = assoc;
    cfg.lineBytes = 64;
    cachesim::SharedCache dut(cfg);
    RefCache ref(size, assoc, 64);

    Rng rng(uint64_t(size) * 31 + uint64_t(assoc));
    uint64_t refMisses = 0;
    for (int i = 0; i < 50000; ++i) {
        // Mix of hot and cold regions to exercise reuse + eviction.
        // 4-byte aligned so a 4-byte access never splits lines (the
        // reference model has no splitting).
        uint64_t addr = (rng.chance(0.7) ? rng.below(size * 2)
                                         : rng.below(size * 64)) &
                        ~uint64_t(3);
        dut.access(0, addr, 4, rng.chance(0.3));
        if (!ref.access(addr))
            ++refMisses;
    }
    EXPECT_EQ(dut.stats().misses, refMisses);
}

INSTANTIATE_TEST_SUITE_P(
    Geometries, CacheEquivalence,
    ::testing::Values(std::make_tuple(uint64_t(4096), 1),
                      std::make_tuple(uint64_t(8192), 2),
                      std::make_tuple(uint64_t(64 * 1024), 4),
                      std::make_tuple(uint64_t(128 * 1024), 8),
                      std::make_tuple(uint64_t(1024 * 1024), 4)));

// ---------------------------------------------------------------------
// Per-workload invariants, parameterized over the whole registry.
// ---------------------------------------------------------------------

class WorkloadProperties : public ::testing::TestWithParam<std::string>
{
  protected:
    void
    SetUp() override
    {
        registerAllWorkloads();
    }
};

TEST_P(WorkloadProperties, WorkGrowsWithScale)
{
    auto tiny = Registry::instance().create(GetParam());
    auto small = Registry::instance().create(GetParam());
    trace::TraceSession st(4, false), ss(4, false);
    tiny->runCpu(st, Scale::Tiny);
    small->runCpu(ss, Scale::Small);
    EXPECT_LT(st.totalMix().total(), ss.totalMix().total());
}

TEST_P(WorkloadProperties, MixIsConsistent)
{
    auto w = Registry::instance().create(GetParam());
    trace::TraceSession s(4, true);
    w->runCpu(s, Scale::Tiny);
    auto mix = s.totalMix();
    // Recorded memory events cover every counted reference; an
    // access that straddles a 64 B line is split into multiple
    // events at record time, so events can exceed references.
    EXPECT_GE(s.totalEvents(), mix.memRefs());
    EXPECT_GT(mix.branches + mix.intOps + mix.fpOps, 0u);
}

TEST_P(WorkloadProperties, FootprintWithinAllocationBounds)
{
    auto w = Registry::instance().create(GetParam());
    trace::TraceSession s(4, true);
    w->runCpu(s, Scale::Tiny);
    // No workload at Tiny scale touches more than 64 MB of pages.
    EXPECT_LT(s.dataFootprintPages(), 16384u);
    EXPECT_GE(s.dataFootprintPages(), 1u);
}

INSTANTIATE_TEST_SUITE_P(
    AllWorkloads, WorkloadProperties,
    ::testing::Values("kmeans", "nw", "hotspot", "backprop", "srad",
                      "leukocyte", "bfs", "streamcluster", "mummer",
                      "cfd", "lud", "heartwall", "blackscholes",
                      "bodytrack", "canneal", "dedup", "facesim",
                      "ferret", "fluidanimate", "freqmine", "raytrace",
                      "swaptions", "vips", "x264"),
    [](const auto &info) { return info.param; });

// ---------------------------------------------------------------------
// GPU timing invariants, parameterized over configurations.
// ---------------------------------------------------------------------

namespace {

gpusim::KernelRecording
mixedKernel()
{
    static std::vector<float> data(1 << 16, 1.0f);
    gpusim::LaunchConfig launch;
    launch.gridDim = 24;
    launch.blockDim = 128;
    return gpusim::recordKernel(launch, [&](gpusim::KernelCtx &ctx) {
        auto sh = ctx.shared<float>(128);
        float acc = 0.0f;
        for (int r = 0; r < 8; ++r) {
            gpusim::LoopIter li(ctx, r);
            acc += ctx.ldg(&data[(ctx.globalId() * 17 + r * 4099) %
                                 int(data.size())]);
            ctx.fp(3);
        }
        sh.put(ctx, ctx.tid(), acc);
        ctx.sync();
        if (ctx.branch(ctx.tid() == 0))
            ctx.stg(&data[ctx.blockIdx()], sh.get(ctx, 0));
    });
}

} // namespace

class TimingInvariants : public ::testing::TestWithParam<int>
{
};

TEST_P(TimingInvariants, StatsAreSelfConsistent)
{
    auto rec = mixedKernel();
    gpusim::SimConfig cfg = gpusim::SimConfig::gpgpusimDefault();
    cfg.numSms = GetParam();
    auto st = gpusim::TimingSim(cfg).simulate(rec);

    EXPECT_GT(st.cycles, 0u);
    EXPECT_GE(st.threadInstructions, rec.threadInstructions());
    EXPECT_LE(st.ipc(), double(cfg.numSms) * cfg.warpSize + 1e-9);
    uint64_t bucketSum = 0;
    for (auto b : st.occupancyBuckets)
        bucketSum += b;
    EXPECT_EQ(bucketSum, st.warpInstructions);
    EXPECT_LE(st.bwUtilization(), 1.0 + 1e-9);
    EXPECT_EQ(st.dramBytes,
              st.dramTransactions * uint64_t(cfg.coalesceBytes));
    // Caches: hits + misses equals lookups that reached them.
    EXPECT_EQ(st.l1Hits + st.l1Misses, 0u); // L1 disabled by default
}

TEST_P(TimingInvariants, MoreSmsNeverSlower)
{
    auto rec = mixedKernel();
    gpusim::SimConfig a = gpusim::SimConfig::gpgpusimDefault();
    a.numSms = GetParam();
    gpusim::SimConfig b = a;
    b.numSms = GetParam() * 2;
    auto sa = gpusim::TimingSim(a).simulate(rec);
    auto sb = gpusim::TimingSim(b).simulate(rec);
    EXPECT_LE(sb.cycles, sa.cycles + sa.cycles / 10);
}

INSTANTIATE_TEST_SUITE_P(SmCounts, TimingInvariants,
                         ::testing::Values(1, 2, 4, 8, 14));

// ---------------------------------------------------------------------
// Feature-extraction invariants across scales.
// ---------------------------------------------------------------------

class FeatureScaleSweep
    : public ::testing::TestWithParam<std::tuple<std::string, Scale>>
{
};

TEST_P(FeatureScaleSweep, FeaturesAreFiniteAndBounded)
{
    registerAllWorkloads();
    auto [name, scale] = GetParam();
    auto w = Registry::instance().create(name);
    auto c = characterizeCpu(*w, scale, 4);
    for (double f : c.allFeatures()) {
        EXPECT_TRUE(std::isfinite(f));
        EXPECT_GE(f, -1e-9);
        EXPECT_LE(f, 1.0 + 1e-9); // all features are fractions
    }
}

INSTANTIATE_TEST_SUITE_P(
    ScaleGrid, FeatureScaleSweep,
    ::testing::Combine(::testing::Values("kmeans", "mummer", "dedup",
                                         "vips"),
                       ::testing::Values(Scale::Tiny, Scale::Small)));
