/**
 * @file
 * Unit tests for the statistics substrate: matrix ops, Jacobi
 * eigendecomposition, PCA, hierarchical clustering, Plackett-Burman.
 */

#include <gtest/gtest.h>

#include <cmath>

#include "stats/cluster.hh"
#include "stats/eigen.hh"
#include "stats/matrix.hh"
#include "stats/pca.hh"
#include "stats/plackett_burman.hh"
#include "support/rng.hh"

using namespace rodinia;
using namespace rodinia::stats;

TEST(Matrix, BasicAccessAndTranspose)
{
    Matrix m = Matrix::fromRows({{1, 2, 3}, {4, 5, 6}});
    EXPECT_EQ(m.rows(), 2u);
    EXPECT_EQ(m.cols(), 3u);
    EXPECT_DOUBLE_EQ(m.at(1, 2), 6.0);
    Matrix t = m.transposed();
    EXPECT_EQ(t.rows(), 3u);
    EXPECT_DOUBLE_EQ(t.at(2, 1), 6.0);
}

TEST(Matrix, MultiplyMatchesHandComputation)
{
    Matrix a = Matrix::fromRows({{1, 2}, {3, 4}});
    Matrix b = Matrix::fromRows({{5, 6}, {7, 8}});
    Matrix c = a.multiply(b);
    EXPECT_DOUBLE_EQ(c.at(0, 0), 19.0);
    EXPECT_DOUBLE_EQ(c.at(0, 1), 22.0);
    EXPECT_DOUBLE_EQ(c.at(1, 0), 43.0);
    EXPECT_DOUBLE_EQ(c.at(1, 1), 50.0);
}

TEST(Matrix, ColumnStatistics)
{
    Matrix m = Matrix::fromRows({{1, 10}, {3, 10}, {5, 10}});
    auto means = m.colMeans();
    EXPECT_DOUBLE_EQ(means[0], 3.0);
    EXPECT_DOUBLE_EQ(means[1], 10.0);
    auto sds = m.colStddevs();
    EXPECT_NEAR(sds[0], 2.0, 1e-12);
    EXPECT_DOUBLE_EQ(sds[1], 0.0);
}

TEST(Matrix, StandardizeHandlesConstantColumns)
{
    Matrix m = Matrix::fromRows({{1, 7}, {2, 7}, {3, 7}});
    Matrix z = m.standardized();
    // Constant column becomes zero instead of NaN.
    for (size_t r = 0; r < 3; ++r)
        EXPECT_DOUBLE_EQ(z.at(r, 1), 0.0);
    EXPECT_NEAR(z.at(0, 0), -1.0, 1e-12);
    EXPECT_NEAR(z.at(2, 0), 1.0, 1e-12);
}

TEST(Matrix, CovarianceIsSymmetric)
{
    Rng rng(7);
    Matrix m(20, 4);
    for (size_t r = 0; r < 20; ++r)
        for (size_t c = 0; c < 4; ++c)
            m.at(r, c) = rng.gaussian();
    Matrix cov = m.covariance();
    for (size_t i = 0; i < 4; ++i)
        for (size_t j = 0; j < 4; ++j)
            EXPECT_NEAR(cov.at(i, j), cov.at(j, i), 1e-12);
}

TEST(Eigen, DiagonalMatrix)
{
    Matrix m = Matrix::fromRows({{3, 0}, {0, 1}});
    auto eig = jacobiEigen(m);
    EXPECT_NEAR(eig.values[0], 3.0, 1e-10);
    EXPECT_NEAR(eig.values[1], 1.0, 1e-10);
}

TEST(Eigen, ReconstructsSymmetricMatrix)
{
    Rng rng(13);
    const size_t n = 6;
    Matrix m(n, n);
    for (size_t i = 0; i < n; ++i)
        for (size_t j = i; j < n; ++j)
            m.at(i, j) = m.at(j, i) = rng.gaussian();
    auto eig = jacobiEigen(m);

    // Reconstruct M = V diag(l) V^T.
    Matrix d(n, n);
    for (size_t i = 0; i < n; ++i)
        d.at(i, i) = eig.values[i];
    Matrix rec =
        eig.vectors.multiply(d).multiply(eig.vectors.transposed());
    for (size_t i = 0; i < n; ++i)
        for (size_t j = 0; j < n; ++j)
            EXPECT_NEAR(rec.at(i, j), m.at(i, j), 1e-8);
}

TEST(Eigen, VectorsAreOrthonormal)
{
    Rng rng(99);
    const size_t n = 5;
    Matrix m(n, n);
    for (size_t i = 0; i < n; ++i)
        for (size_t j = i; j < n; ++j)
            m.at(i, j) = m.at(j, i) = rng.uniform();
    auto eig = jacobiEigen(m);
    Matrix vtv = eig.vectors.transposed().multiply(eig.vectors);
    for (size_t i = 0; i < n; ++i)
        for (size_t j = 0; j < n; ++j)
            EXPECT_NEAR(vtv.at(i, j), i == j ? 1.0 : 0.0, 1e-9);
}

TEST(Pca, ExplainedVarianceSumsToOne)
{
    Rng rng(3);
    Matrix m(30, 5);
    for (size_t r = 0; r < 30; ++r)
        for (size_t c = 0; c < 5; ++c)
            m.at(r, c) = rng.gaussian() * double(c + 1);
    auto pca = runPca(m);
    double total = 0.0;
    for (double e : pca.explained)
        total += e;
    EXPECT_NEAR(total, 1.0, 1e-9);
    // Components sorted by decreasing variance.
    for (size_t i = 1; i < pca.eigenvalues.size(); ++i)
        EXPECT_GE(pca.eigenvalues[i - 1], pca.eigenvalues[i] - 1e-12);
}

TEST(Pca, RecoversDominantDirection)
{
    // Points along (1, 1)/sqrt(2) with small noise: PC1 must align.
    Rng rng(21);
    Matrix m(200, 2);
    for (size_t r = 0; r < 200; ++r) {
        double t = rng.gaussian() * 10.0;
        m.at(r, 0) = t + rng.gaussian() * 0.01;
        m.at(r, 1) = t + rng.gaussian() * 0.01;
    }
    auto pca = runPca(m, false);
    double x = pca.components.at(0, 0);
    double y = pca.components.at(1, 0);
    EXPECT_NEAR(std::fabs(x), std::sqrt(0.5), 1e-3);
    EXPECT_NEAR(std::fabs(y), std::sqrt(0.5), 1e-3);
    EXPECT_GT(pca.explained[0], 0.99);
}

TEST(Pca, ScoresAreUncorrelated)
{
    Rng rng(31);
    Matrix m(60, 4);
    for (size_t r = 0; r < 60; ++r)
        for (size_t c = 0; c < 4; ++c)
            m.at(r, c) = rng.gaussian() + (c == 0 ? m.at(r, 1) : 0.0);
    auto pca = runPca(m);
    Matrix cov = pca.scores.covariance();
    for (size_t i = 0; i < 4; ++i)
        for (size_t j = 0; j < 4; ++j)
            if (i != j) {
                EXPECT_NEAR(cov.at(i, j), 0.0, 1e-8);
            }
}

TEST(Pca, ComponentsForVariance)
{
    PcaResult r;
    r.explained = {0.6, 0.3, 0.1};
    EXPECT_EQ(r.componentsForVariance(0.5), 1u);
    EXPECT_EQ(r.componentsForVariance(0.8), 2u);
    EXPECT_EQ(r.componentsForVariance(1.0), 3u);
}

TEST(Cluster, TwoObviousClusters)
{
    Matrix pts = Matrix::fromRows({
        {0.0, 0.0}, {0.1, 0.0}, {0.0, 0.1},   // cluster A
        {9.0, 9.0}, {9.1, 9.0}, {9.0, 9.1},   // cluster B
    });
    auto lk = hierarchicalCluster(pts, LinkageMethod::Average);
    ASSERT_EQ(lk.merges.size(), 5u);
    auto labels = lk.cut(2);
    EXPECT_EQ(labels[0], labels[1]);
    EXPECT_EQ(labels[0], labels[2]);
    EXPECT_EQ(labels[3], labels[4]);
    EXPECT_EQ(labels[3], labels[5]);
    EXPECT_NE(labels[0], labels[3]);
    // The final merge joins the two far-apart clusters.
    EXPECT_GT(lk.merges.back().dist, 8.0);
}

TEST(Cluster, CopheneticDistanceRespectsStructure)
{
    Matrix pts = Matrix::fromRows({{0, 0}, {1, 0}, {10, 0}});
    auto lk = hierarchicalCluster(pts, LinkageMethod::Single);
    EXPECT_LT(lk.copheneticDistance(0, 1),
              lk.copheneticDistance(0, 2));
    EXPECT_DOUBLE_EQ(lk.copheneticDistance(0, 2),
                     lk.copheneticDistance(1, 2));
}

TEST(Cluster, LinkageMethodsOrderDistances)
{
    Rng rng(5);
    Matrix pts(12, 3);
    for (size_t r = 0; r < 12; ++r)
        for (size_t c = 0; c < 3; ++c)
            pts.at(r, c) = rng.uniform(0.0, 10.0);
    auto single = hierarchicalCluster(pts, LinkageMethod::Single);
    auto complete = hierarchicalCluster(pts, LinkageMethod::Complete);
    // Complete linkage's final merge distance >= single linkage's.
    EXPECT_GE(complete.merges.back().dist,
              single.merges.back().dist - 1e-12);
}

TEST(Cluster, DendrogramRendersEveryLabel)
{
    Matrix pts = Matrix::fromRows({{0, 0}, {1, 0}, {5, 5}, {6, 5}});
    auto lk = hierarchicalCluster(pts);
    auto text = renderDendrogram(lk, {"aa", "bb", "cc", "dd"});
    EXPECT_NE(text.find("aa"), std::string::npos);
    EXPECT_NE(text.find("bb"), std::string::npos);
    EXPECT_NE(text.find("cc"), std::string::npos);
    EXPECT_NE(text.find("dd"), std::string::npos);
    EXPECT_NE(text.find('+'), std::string::npos);
}

TEST(Cluster, CutExtremes)
{
    Matrix pts = Matrix::fromRows({{0, 0}, {1, 0}, {2, 0}});
    auto lk = hierarchicalCluster(pts);
    auto one = lk.cut(1);
    EXPECT_EQ(one[0], one[1]);
    EXPECT_EQ(one[1], one[2]);
    auto all = lk.cut(3);
    EXPECT_NE(all[0], all[1]);
    EXPECT_NE(all[1], all[2]);
}

TEST(PlackettBurman, TwelveRunDesignProperties)
{
    auto d = pbDesign(9);
    EXPECT_EQ(d.runs, 12);
    EXPECT_EQ(d.factors, 9);
    // Balance: each factor has 6 highs and 6 lows.
    for (int f = 0; f < d.factors; ++f) {
        int highs = 0;
        for (int r = 0; r < d.runs; ++r)
            highs += d.signs[r][f] == 1;
        EXPECT_EQ(highs, 6) << "factor " << f;
    }
    // Orthogonality: any two factor columns are uncorrelated.
    for (int f1 = 0; f1 < d.factors; ++f1) {
        for (int f2 = f1 + 1; f2 < d.factors; ++f2) {
            int dot = 0;
            for (int r = 0; r < d.runs; ++r)
                dot += d.signs[r][f1] * d.signs[r][f2];
            EXPECT_EQ(dot, 0) << f1 << "," << f2;
        }
    }
}

TEST(PlackettBurman, RunCountSelection)
{
    EXPECT_EQ(pbDesign(5).runs, 8);
    EXPECT_EQ(pbDesign(7).runs, 8);
    EXPECT_EQ(pbDesign(8).runs, 12);
    EXPECT_EQ(pbDesign(11).runs, 12);
    EXPECT_EQ(pbDesign(12).runs, 16);
    EXPECT_EQ(pbDesign(19).runs, 20);
    EXPECT_EQ(pbDesign(23).runs, 24);
}

TEST(PlackettBurman, RecoversPlantedEffects)
{
    // Response = 10 * f0 - 4 * f2 + noise-free baseline: the effect
    // estimator must rank f0 first, f2 second, and give magnitudes
    // close to 2x the coefficients.
    auto d = pbDesign(9);
    std::vector<double> resp(d.runs);
    for (int r = 0; r < d.runs; ++r)
        resp[r] = 100.0 + 10.0 * d.signs[r][0] - 4.0 * d.signs[r][2];
    auto effects = pbEffects(d, resp);
    EXPECT_EQ(effects[0].factor, 0);
    EXPECT_NEAR(effects[0].effect, 20.0, 1e-9);
    EXPECT_EQ(effects[1].factor, 2);
    EXPECT_NEAR(effects[1].effect, -8.0, 1e-9);
    for (size_t i = 2; i < effects.size(); ++i)
        EXPECT_NEAR(effects[i].magnitude, 0.0, 1e-9);
}

TEST(Rng, DeterministicAndBounded)
{
    Rng a(42), b(42);
    for (int i = 0; i < 1000; ++i) {
        EXPECT_EQ(a.next(), b.next());
        double u = a.uniform();
        b.uniform();
        EXPECT_GE(u, 0.0);
        EXPECT_LT(u, 1.0);
    }
}

TEST(Rng, BelowIsUnbiasedForNonPowerOfTwoBounds)
{
    // Regression for the modulo-biased bounded draw: with
    // `next() % n` at n = 3 * 2^62, the 2^62 values below
    // 2^64 mod n get an extra hit, so P(v < 2^62) = 1/2 instead of
    // 1/3. Masked rejection keeps the draw uniform.
    Rng rng(2024);
    const int n = 30000;
    const uint64_t bound = 3ull << 62;
    int low = 0;
    for (int i = 0; i < n; ++i) {
        uint64_t v = rng.below(bound);
        ASSERT_LT(v, bound);
        if (v < (1ull << 62))
            ++low;
    }
    // Binomial sd here is ~0.003; the biased generator sits at 0.5.
    EXPECT_NEAR(double(low) / n, 1.0 / 3.0, 0.02);

    // Small non-power-of-two bounds stay uniform too.
    std::array<int, 3> counts{};
    for (int i = 0; i < n; ++i) {
        uint64_t v = rng.below(3);
        ASSERT_LT(v, 3u);
        ++counts[size_t(v)];
    }
    for (int c : counts)
        EXPECT_NEAR(double(c) / n, 1.0 / 3.0, 0.02);
}

TEST(Rng, BelowKeepsExactStreamForPowerOfTwoBounds)
{
    // Power-of-two bounds accept every masked draw, so those call
    // sites keep the exact value stream `next() % n` produced —
    // which keeps previously published figures bit-identical.
    Rng a(99), b(99);
    for (int i = 0; i < 256; ++i)
        EXPECT_EQ(a.below(1024), b.next() % 1024);
    // Degenerate bounds consume no state.
    EXPECT_EQ(a.below(1), 0u);
    EXPECT_EQ(a.next(), b.next());
}

TEST(Rng, GaussianMoments)
{
    Rng rng(1234);
    double sum = 0.0, sum2 = 0.0;
    const int n = 200000;
    for (int i = 0; i < n; ++i) {
        double g = rng.gaussian();
        sum += g;
        sum2 += g * g;
    }
    EXPECT_NEAR(sum / n, 0.0, 0.02);
    EXPECT_NEAR(sum2 / n, 1.0, 0.02);
}
