/**
 * @file
 * Paper-scale smoke lane: one representative workload per Berkeley
 * dwarf actually runs at Scale::Paper (the paper's Table I problem
 * sizes) under a peak-RSS guard. The point is not output checking —
 * the golden corpus does that at Scale::Full — but proving the
 * streaming trace representation keeps paper-scale recording inside
 * a bounded memory envelope, end to end through the real workload
 * code. A regression to materialized per-event structs (24 B/event
 * at hundreds of millions of events) blows the guard immediately;
 * the compact chunks (~2-4 B/event) stay far inside it.
 *
 * Representatives are the cheapest member of each dwarf so the lane
 * stays tier-1-affordable; the full `experiments --scale paper` run
 * covers the rest.
 */

#include <gtest/gtest.h>

#include <sys/resource.h>

#include "core/characterize.hh"
#include "core/workload.hh"
#include "gpusim/simconfig.hh"
#include "gpusim/timing.hh"
#include "support/threadbudget.hh"
#include "trace/trace.hh"

using namespace rodinia;
using namespace rodinia::core;

namespace {

/** Process peak RSS in MiB (Linux ru_maxrss is in KiB). */
long
peakRssMiB()
{
    struct rusage ru;
    getrusage(RUSAGE_SELF, &ru);
    return ru.ru_maxrss / 1024;
}

/**
 * Whole-binary peak-RSS budget. ru_maxrss is a high-water mark, so
 * every test in this binary shares one monotone counter; the budget
 * covers the cumulative worst case across all representatives. The
 * largest paper-scale recording here is tens of millions of events:
 * materialized that alone is multiple GiB, streamed it is tens of
 * MiB, so 2 GiB cleanly separates the two while absorbing allocator
 * retention across tests.
 */
constexpr long kRssBudgetMiB = 2048;

} // namespace

/** One representative per dwarf (see the file comment). */
class PaperSmoke : public ::testing::TestWithParam<const char *>
{
  protected:
    void
    SetUp() override
    {
        registerAllWorkloads();
    }
};

TEST_P(PaperSmoke, RunsAtPaperScaleWithinMemoryBudget)
{
    auto w = Registry::instance().create(GetParam());
    ASSERT_NE(w, nullptr);
    EXPECT_FALSE(w->info().paperSize.empty())
        << "every workload must document its Table I problem size";

    trace::TraceSession paper(8, true);
    w->runCpu(paper, Scale::Paper);
    EXPECT_GT(paper.totalMix().total(), 0u);
    EXPECT_GT(paper.totalEvents(), 0u);
    EXPECT_LE(peakRssMiB(), kRssBudgetMiB)
        << "paper-scale recording of '" << GetParam()
        << "' exceeded the streaming memory envelope";

    // Paper sizes must actually be larger than the figure-pipeline
    // default work at Small scale — a mis-wired switch that falls
    // through to a smaller tier would pass the RSS guard trivially.
    auto w2 = Registry::instance().create(GetParam());
    trace::TraceSession small(8, false);
    w2->runCpu(small, Scale::Small);
    EXPECT_GT(paper.totalMix().total(), small.totalMix().total());
}

INSTANTIATE_TEST_SUITE_P(
    OnePerDwarf, PaperSmoke,
    ::testing::Values("srad",      // Structured Grid
                      "lud",       // Dense Linear Algebra
                      "nw",        // Dynamic Programming
                      "bfs",       // Graph Traversal
                      "backprop",  // Unstructured Grid
                      "dedup",     // Combinational Logic
                      "swaptions"  // MapReduce
                      ),
    [](const auto &info) { return std::string(info.param); });

/**
 * One full CPU characterization — recording plus the Mattson cache
 * sweep consuming the stream — end to end at paper scale.
 */
TEST(PaperSmokeDeep, LudCharacterizesAtPaperScale)
{
    registerAllWorkloads();
    auto w = Registry::instance().create("lud");
    auto c = characterizeCpu(*w, Scale::Paper, 8);
    EXPECT_GT(c.mix.total(), 0u);
    EXPECT_GT(c.sweep.size(), 0u);
    // Miss rates are fractions and the sweep is monotone non-
    // increasing in cache size.
    for (size_t i = 1; i < c.sweep.size(); ++i)
        EXPECT_LE(c.sweep[i].missRate(), c.sweep[i - 1].missRate() +
                                             1e-12);
    EXPECT_LE(peakRssMiB(), kRssBudgetMiB);
}

/** One GPU recording + timing simulation at paper scale. */
TEST(PaperSmokeDeep, LudGpuSimulatesAtPaperScale)
{
    registerAllWorkloads();
    auto w = Registry::instance().create("lud");
    auto g = characterizeGpu(*w, Scale::Paper,
                             gpusim::SimConfig::gpgpusimDefault());
    EXPECT_GT(g.timing.cycles, 0u);
    EXPECT_GT(g.trace.threadInstructions, 0u);
    EXPECT_LE(peakRssMiB(), kRssBudgetMiB);
}

/**
 * The parallel timing engine at paper scale: record one dwarf
 * representative once, simulate it serially and with sim-threads
 * maxed (256 requested; the thread budget clamps the pool to the
 * machine), and require bit-identical stats — all inside the same
 * streaming RSS envelope. This is where a race or an epoch-boundary
 * bug that survives small inputs would surface: paper-scale traces
 * cross tens of thousands of epoch barriers.
 */
TEST(PaperSmokeDeep, SradParallelSimMatchesSerialAtPaperScale)
{
    registerAllWorkloads();
    int prev_cap = support::ThreadBudget::instance().capacity();
    support::ThreadBudget::instance().setCapacity(8);
    auto w = Registry::instance().create("srad");
    gpusim::LaunchSequence seq = w->runGpu(Scale::Paper);
    ASSERT_FALSE(seq.launches.empty());

    gpusim::SimConfig serial_cfg = gpusim::SimConfig::gpgpusimDefault();
    serial_cfg.simThreads = 1;
    gpusim::KernelStats serial =
        gpusim::TimingSim(serial_cfg).simulate(seq);

    gpusim::SimConfig par_cfg = gpusim::SimConfig::gpgpusimDefault();
    par_cfg.simThreads = 256; // maxed; clamped to numSms and budget
    gpusim::KernelStats par = gpusim::TimingSim(par_cfg).simulate(seq);

    EXPECT_EQ(serial, par);
    EXPECT_EQ(gpusim::serializeKernelStats(serial),
              gpusim::serializeKernelStats(par));
    EXPECT_GT(serial.cycles, 0u);
    EXPECT_LE(peakRssMiB(), kRssBudgetMiB);
    support::ThreadBudget::instance().setCapacity(prev_cap);
}
