/**
 * @file
 * Service stress and fairness layer (the service-stress CI lane).
 *
 * Three suites, named so the service-smoke lane's filter does not
 * pick them up:
 *
 *  - Wfq: deficit-round-robin properties of WfqQueue — served-share
 *    proportionality, the starvation regression (a weight-1 client
 *    progresses every round no matter how heavy the competing
 *    flood), idle-credit forfeiture, no mid-round barging, quantum
 *    scaling, composition with the per-client quota, and a
 *    deterministic end-to-end served-order check against the
 *    Context's sim telemetry.
 *
 *  - SingleFlight: coalescing edge cases over a live daemon —
 *    followers receive the leader's bytes while exactly one sim
 *    runs, a follower's cancel or deadline never disturbs the
 *    leader, a leader failure propagates its error class to every
 *    follower (and the next identical request re-executes), and
 *    serial identical requests never count as coalesced.
 *
 *  - Stress: a seeded multi-client flood (mixed warm/cold/batch/
 *    cancel plus a mid-stream disconnect, over both transports)
 *    asserting the acceptance criterion directly: sims computed ==
 *    distinct fingerprints requested, responses byte-identical
 *    across every client, and accounting settled to zero after the
 *    drain.
 */

#include <gtest/gtest.h>

#include <unistd.h>

#include <algorithm>
#include <chrono>
#include <filesystem>
#include <map>
#include <mutex>
#include <random>
#include <string>
#include <thread>
#include <vector>

#include "driver/context.hh"
#include "gpusim/timing.hh"
#include "service/admission.hh"
#include "service/client.hh"
#include "service/protocol.hh"
#include "service/server.hh"
#include "support/metrics.hh"

using namespace rodinia;
using service::AdmissionController;
using service::AdmissionPolicy;
using service::ExperimentService;
using service::Lane;
using service::Outcome;
using service::ServiceClient;
using service::ServiceConfig;
using service::Verdict;
using service::WfqQueue;

namespace {

/** Fresh scratch directory under the system temp dir. */
class ScratchDir
{
  public:
    explicit ScratchDir(const std::string &tag)
        : path(std::filesystem::temp_directory_path() /
               ("rodinia_service_stress_" + tag))
    {
        std::filesystem::remove_all(path);
        std::filesystem::create_directories(path);
    }
    ~ScratchDir() { std::filesystem::remove_all(path); }

    std::string
    socket() const
    {
        return (path / "d.sock").string();
    }
    std::string
    cache() const
    {
        return (path / "cache").string();
    }

  private:
    std::filesystem::path path;
};

ServiceConfig
testConfig(const ScratchDir &scratch)
{
    ServiceConfig cfg;
    cfg.socketPath = scratch.socket();
    cfg.cacheDir = scratch.cache();
    cfg.executorThreads = 2;
    return cfg;
}

uint64_t
metric(const char *name)
{
    return support::metrics::Registry::global().snapshot().value(name);
}

uint64_t
simsRun()
{
    return metric("gpusim.sims_run");
}

/** Total admitted-but-unfinished work across every client. */
uint64_t
totalInFlight(ExperimentService &svc)
{
    uint64_t n = 0;
    for (const auto &[name, cs] : svc.admission().snapshot())
        n += cs.inFlight;
    return n;
}

/** Poll @p pred (max ~10 s); returns its final value. */
template <typename Pred>
bool
eventually(Pred pred)
{
    for (int i = 0; i < 200; ++i) {
        if (pred())
            return true;
        std::this_thread::sleep_for(std::chrono::milliseconds(50));
    }
    return pred();
}

} // namespace

// ---------------------------------------------------------------
// Wfq: deficit-round-robin properties (single-threaded, exact).
// ---------------------------------------------------------------

TEST(Wfq, ServedShareMatchesWeightsUnderSaturation)
{
    WfqQueue<int> q;
    q.setWeight("heavy", 3);
    q.setWeight("light", 1);
    // Both clients stay backlogged for the whole window, so each
    // full round serves exactly quantum x weight items per client:
    // the 3:1 served-share ratio is exact, not approximate.
    for (int i = 0; i < 30; ++i)
        q.push("heavy", 100 + i);
    for (int i = 0; i < 10; ++i)
        q.push("light", 200 + i);

    std::map<std::string, int> served;
    std::map<std::string, int> nextVal = {{"heavy", 100},
                                          {"light", 200}};
    int item = 0;
    std::string who;
    for (int i = 0; i < 24; ++i) { // 6 full rounds of 4
        ASSERT_TRUE(q.pop(item, &who));
        served[who] += 1;
        // FIFO within one client's sub-queue.
        EXPECT_EQ(item, nextVal[who]++);
    }
    EXPECT_EQ(served["heavy"], 18); // 3/4 of 24
    EXPECT_EQ(served["light"], 6);  // 1/4 of 24
    EXPECT_EQ(q.size(), 16u);
}

TEST(Wfq, WeightOneClientIsNeverStarvedByAFlood)
{
    // The starvation regression: under the old FIFO lane queue a
    // client with a deep backlog monopolized the workers until it
    // drained. Under DRR the weight-1 client is served at least
    // once per round — within every window of (8 + 1) pops.
    WfqQueue<std::string> q;
    q.setWeight("flood", 8);
    q.setWeight("meek", 1);
    for (int i = 0; i < 800; ++i)
        q.push("flood", "f" + std::to_string(i));
    for (int i = 0; i < 10; ++i)
        q.push("meek", "m" + std::to_string(i));

    std::string item, who;
    int sinceMeek = 0, meekServed = 0;
    for (int i = 0; i < 9 * 10; ++i) {
        ASSERT_TRUE(q.pop(item, &who));
        if (who == "meek") {
            meekServed += 1;
            sinceMeek = 0;
        } else {
            sinceMeek += 1;
            // Never more than one full flood allotment between two
            // meek servings.
            EXPECT_LE(sinceMeek, 8) << "starved at pop " << i;
        }
    }
    EXPECT_EQ(meekServed, 10); // meek drained inside 10 rounds
}

TEST(Wfq, IdleCreditIsForfeitedNotBanked)
{
    // A client whose sub-queue drains mid-allotment forfeits the
    // leftover credit: going idle must never buy a burst later.
    WfqQueue<int> q;
    q.setWeight("a", 4);
    q.setWeight("b", 1);
    q.push("a", 1);
    q.push("a", 2);
    int item = 0;
    std::string who;
    ASSERT_TRUE(q.pop(item, &who)); // a drains with 2 credits left
    ASSERT_TRUE(q.pop(item, &who));
    EXPECT_TRUE(q.empty());

    // Re-backlogged against b: a's round allotment is still exactly
    // 4 — the forfeited credits are gone.
    for (int i = 0; i < 8; ++i)
        q.push("a", 10 + i);
    for (int i = 0; i < 4; ++i)
        q.push("b", 20 + i);
    std::vector<std::string> order;
    while (q.pop(item, &who))
        order.push_back(who);
    std::vector<std::string> want = {"a", "a", "a", "a", "b", //
                                     "a", "a", "a", "a", "b", //
                                     "b", "b"};
    EXPECT_EQ(order, want);
}

TEST(Wfq, NewcomerJoinsTheRoundTailNotMidRound)
{
    WfqQueue<int> q;
    q.setWeight("a", 2);
    q.setWeight("b", 2);
    for (int i = 0; i < 4; ++i)
        q.push("a", i);
    int item = 0;
    std::string who;
    ASSERT_TRUE(q.pop(item, &who));
    EXPECT_EQ(who, "a");
    // b arrives while a's allotment is half used: it must wait for
    // the allotment to finish, never barge in mid-round.
    for (int i = 0; i < 2; ++i)
        q.push("b", 10 + i);
    std::vector<std::string> order;
    while (q.pop(item, &who))
        order.push_back(who);
    std::vector<std::string> want = {"a", "b", "b", "a", "a"};
    EXPECT_EQ(order, want);
}

TEST(Wfq, QuantumScalesEveryAllotment)
{
    WfqQueue<int> q(3); // quantum 3: weight-1 clients get 3/round
    q.setWeight("a", 2);
    // b keeps the default weight 1.
    for (int i = 0; i < 12; ++i)
        q.push("a", i);
    for (int i = 0; i < 6; ++i)
        q.push("b", 100 + i);
    std::map<std::string, int> first9;
    int item = 0;
    std::string who;
    for (int i = 0; i < 9; ++i) { // one full round: 6 a + 3 b
        ASSERT_TRUE(q.pop(item, &who));
        first9[who] += 1;
    }
    EXPECT_EQ(first9["a"], 6);
    EXPECT_EQ(first9["b"], 3);
}

TEST(Wfq, PopOnEmptyIsFalseAndWeightsPersistAcrossIdle)
{
    WfqQueue<int> q;
    int item = 0;
    EXPECT_FALSE(q.pop(item));
    q.setWeight("a", 5);
    q.push("a", 1);
    ASSERT_TRUE(q.pop(item));
    EXPECT_FALSE(q.pop(item));
    // The weight declared before the idle period still holds.
    EXPECT_EQ(q.weight("a"), 5u);
    EXPECT_EQ(q.weight("never-seen"), 1u);
}

TEST(Wfq, ComposesWithPerClientQuota)
{
    // The quota bounds how deep a backlog ANY weight can amplify: a
    // weight-8 client with a quota of 2 gets at most 2 items into
    // the queue, so its round allotment is moot beyond that.
    AdmissionPolicy policy;
    policy.perClientInFlight = 2;
    AdmissionController ac(policy);
    WfqQueue<std::string> q;
    q.setWeight("hog", 8);
    q.setWeight("small", 1);

    int hogQueued = 0;
    for (int i = 0; i < 5; ++i) {
        if (ac.admit("hog", Lane::Cold) == Verdict::Admit) {
            q.push("hog", "h" + std::to_string(i));
            ++hogQueued;
        }
    }
    EXPECT_EQ(hogQueued, 2); // quota, not weight, set the depth
    ASSERT_EQ(ac.admit("small", Lane::Cold), Verdict::Admit);
    q.push("small", "s0");

    std::vector<std::string> order;
    std::string item, who;
    while (q.pop(item, &who)) {
        order.push_back(who);
        ac.started(Lane::Cold);
        ac.finish(who, Lane::Cold, true);
    }
    std::vector<std::string> want = {"hog", "hog", "small"};
    EXPECT_EQ(order, want);
    // Everything settled: the quota is fully released again.
    EXPECT_EQ(ac.admit("hog", Lane::Cold), Verdict::Admit);
}

// ---------------------------------------------------------------
// Wfq end to end: served ORDER over a live daemon. The Context's
// sim telemetry records executions in completion order, and with
// one cold worker completion order == DRR service order.
// ---------------------------------------------------------------

TEST(Wfq, ServedShareTracksWeightsEndToEnd)
{
    ScratchDir scratch("wfq_e2e");
    ServiceConfig cfg = testConfig(scratch);
    cfg.coldWorkers = 1; // serialize: telemetry order = DRR order
    ExperimentService svc(cfg);
    ASSERT_TRUE(svc.start());

    // A slow full-scale gate occupies the only cold worker while
    // both competitors enqueue their whole backlog.
    ServiceClient gate;
    ASSERT_TRUE(gate.connect(scratch.socket()));
    ASSERT_TRUE(gate.sendSim("gate", "srad", "full", "{}"));
    ASSERT_TRUE(eventually([&] {
        return totalInFlight(svc) == 1 &&
               svc.admission().queueDepth(Lane::Cold) == 0;
    })) << "gate never started";

    // Heavy (weight 4) backlogs 8 distinct tiny sims; light (weight
    // 1) backlogs 2. Distinct workloads so the telemetry keys name
    // the client that issued them.
    ServiceClient heavy, light;
    ASSERT_TRUE(heavy.connect(scratch.socket()));
    ASSERT_TRUE(light.connect(scratch.socket()));
    ASSERT_TRUE(heavy.sendHello("hh", 4));
    ASSERT_TRUE(heavy.await("hh").ok());
    ASSERT_TRUE(light.sendHello("lh", 1));
    ASSERT_TRUE(light.await("lh").ok());
    for (int i = 0; i < 8; ++i)
        ASSERT_TRUE(heavy.sendSim(
            "h" + std::to_string(i), "backprop", "tiny",
            "{\"gmemLatencyCycles\":" + std::to_string(430 + i) +
                "}"));
    for (int i = 0; i < 2; ++i)
        ASSERT_TRUE(light.sendSim(
            "l" + std::to_string(i), "bfs", "tiny",
            "{\"gmemLatencyCycles\":" + std::to_string(450 + i) +
                "}"));
    ASSERT_TRUE(eventually([&] {
        return svc.admission().queueDepth(Lane::Cold) == 10;
    })) << "backlog never fully enqueued; depth "
        << svc.admission().queueDepth(Lane::Cold);

    EXPECT_TRUE(gate.await("gate").ok());
    for (int i = 0; i < 8; ++i)
        ASSERT_TRUE(heavy.await("h" + std::to_string(i)).ok());
    for (int i = 0; i < 2; ++i)
        ASSERT_TRUE(light.await("l" + std::to_string(i)).ok());

    // Completion order, gate excluded: with weights 4:1 and both
    // clients backlogged, every DRR round serves 4 heavy + 1 light,
    // so each window of 5 holds exactly one light sim.
    std::vector<std::string> order;
    for (const auto &t : svc.context().gpuSimTelemetrySnapshot()) {
        if (t.key.rfind("backprop/", 0) == 0)
            order.push_back("heavy");
        else if (t.key.rfind("bfs/", 0) == 0)
            order.push_back("light");
    }
    ASSERT_EQ(order.size(), 10u);
    int lightFirst5 = 0, lightSecond5 = 0;
    for (int i = 0; i < 5; ++i)
        lightFirst5 += order[size_t(i)] == "light";
    for (int i = 5; i < 10; ++i)
        lightSecond5 += order[size_t(i)] == "light";
    EXPECT_EQ(lightFirst5, 1) << "round 1 violated the 4:1 share";
    EXPECT_EQ(lightSecond5, 1) << "round 2 violated the 4:1 share";
    svc.stop();
}

// ---------------------------------------------------------------
// SingleFlight: coalescing edge cases over a live daemon.
// ---------------------------------------------------------------

namespace {

/** A distinct full-scale config per test so flights never collide
 *  across tests sharing the process-global metrics. */
std::string
slowConfig(int salt)
{
    return "{\"gmemLatencyCycles\":" + std::to_string(900 + salt) +
           "}";
}

} // namespace

TEST(SingleFlight, FollowersGetLeaderBytesAndOneSimRuns)
{
    ScratchDir scratch("sf_bytes");
    ExperimentService svc(testConfig(scratch));
    ASSERT_TRUE(svc.start());

    ServiceClient a, b;
    ASSERT_TRUE(a.connect(scratch.socket()));
    ASSERT_TRUE(b.connect(scratch.socket()));
    uint64_t sims0 = simsRun();
    uint64_t followers0 = metric("service.coalesce.followers");

    ASSERT_TRUE(a.sendSim("lead", "bfs", "full", slowConfig(0)));
    // Only send the identical request once the leader's flight is
    // registered, so B deterministically joins as a follower.
    ASSERT_TRUE(eventually(
        [&] { return svc.context().simFlightsInFlight() == 1; }))
        << "leader flight never registered";
    ASSERT_TRUE(b.sendSim("follow", "bfs", "full", slowConfig(0)));

    Outcome lead = a.await("lead");
    Outcome follow = b.await("follow");
    ASSERT_TRUE(lead.ok()) << lead.detail;
    ASSERT_TRUE(follow.ok()) << follow.detail;
    // N identical in-flight requests, ONE execution: the follower
    // streams the leader's bytes and says so.
    EXPECT_EQ(simsRun(), sims0 + 1);
    EXPECT_EQ(metric("service.coalesce.followers"), followers0 + 1);
    EXPECT_FALSE(lead.coalesced);
    EXPECT_TRUE(follow.coalesced);
    EXPECT_EQ(follow.payload, lead.payload);
    gpusim::KernelStats stats;
    EXPECT_TRUE(gpusim::parseKernelStats(follow.payload, stats));
    // The registry drained once the flight completed.
    EXPECT_TRUE(eventually(
        [&] { return svc.context().simFlightsInFlight() == 0; }));
    svc.stop();
}

TEST(SingleFlight, FollowerCancelLeavesLeaderUndisturbed)
{
    ScratchDir scratch("sf_fcancel");
    ExperimentService svc(testConfig(scratch));
    ASSERT_TRUE(svc.start());

    ServiceClient a, b;
    ASSERT_TRUE(a.connect(scratch.socket()));
    ASSERT_TRUE(b.connect(scratch.socket()));
    uint64_t sims0 = simsRun();

    ASSERT_TRUE(a.sendSim("lead", "bfs", "full", slowConfig(1)));
    ASSERT_TRUE(eventually(
        [&] { return svc.context().simFlightsInFlight() == 1; }));
    ASSERT_TRUE(b.sendSim("follow", "bfs", "full", slowConfig(1)));
    ASSERT_TRUE(b.sendCancel("kill", "follow"));
    ASSERT_TRUE(b.await("kill").ok());

    Outcome follow = b.await("follow");
    EXPECT_EQ(follow.status, Outcome::Status::Error);
    EXPECT_EQ(follow.errorClass, "cancelled");
    // The leader never noticed: it serves, and exactly one sim ran.
    Outcome lead = a.await("lead");
    ASSERT_TRUE(lead.ok()) << lead.detail;
    EXPECT_FALSE(lead.coalesced);
    EXPECT_EQ(simsRun(), sims0 + 1);
    svc.stop();
}

TEST(SingleFlight, FollowerDeadlineExpiresWhileLeaderContinues)
{
    ScratchDir scratch("sf_fdl");
    ExperimentService svc(testConfig(scratch));
    ASSERT_TRUE(svc.start());

    ServiceClient a, b;
    ASSERT_TRUE(a.connect(scratch.socket()));
    ASSERT_TRUE(b.connect(scratch.socket()));
    uint64_t sims0 = simsRun();

    ASSERT_TRUE(a.sendSim("lead", "bfs", "full", slowConfig(2)));
    ASSERT_TRUE(eventually(
        [&] { return svc.context().simFlightsInFlight() == 1; }));
    // A 1 ms deadline expires while the follower waits on the
    // flight; its own token aborts the wait, the leader's does not.
    ASSERT_TRUE(
        b.sendSim("follow", "bfs", "full", slowConfig(2), 1.0));
    Outcome follow = b.await("follow");
    EXPECT_EQ(follow.status, Outcome::Status::Error);
    EXPECT_EQ(follow.errorClass, "deadline");

    Outcome lead = a.await("lead");
    ASSERT_TRUE(lead.ok()) << lead.detail;
    EXPECT_EQ(simsRun(), sims0 + 1);
    svc.stop();
}

TEST(SingleFlight, LeaderFailurePropagatesErrorClassToFollowers)
{
    ScratchDir scratch("sf_lfail");
    ExperimentService svc(testConfig(scratch));
    ASSERT_TRUE(svc.start());

    ServiceClient a, b;
    ASSERT_TRUE(a.connect(scratch.socket()));
    ASSERT_TRUE(b.connect(scratch.socket()));
    uint64_t followers0 = metric("service.coalesce.followers");

    ASSERT_TRUE(a.sendSim("lead", "bfs", "full", slowConfig(3)));
    ASSERT_TRUE(eventually(
        [&] { return svc.context().simFlightsInFlight() == 1; }));
    ASSERT_TRUE(b.sendSim("follow", "bfs", "full", slowConfig(3)));
    // Wait until the follower has demonstrably JOINED the flight —
    // cancelling the leader first would just let the follower start
    // a flight of its own and serve.
    ASSERT_TRUE(eventually([&] {
        return metric("service.coalesce.followers") == followers0 + 1;
    })) << "follower never joined the leader's flight";
    // Kill the LEADER: the follower must inherit the leader's error
    // class rather than hang or fabricate a success.
    ASSERT_TRUE(a.sendCancel("kill", "lead"));
    ASSERT_TRUE(a.await("kill").ok());
    Outcome lead = a.await("lead");
    EXPECT_EQ(lead.status, Outcome::Status::Error);
    EXPECT_EQ(lead.errorClass, "cancelled");
    Outcome follow = b.await("follow");
    EXPECT_EQ(follow.status, Outcome::Status::Error);
    EXPECT_EQ(follow.errorClass, "cancelled");

    // The failed flight retired without poisoning the key: the next
    // identical request re-executes and serves.
    uint64_t sims0 = simsRun();
    ASSERT_TRUE(b.sendSim("retry", "bfs", "full", slowConfig(3)));
    Outcome retry = b.await("retry");
    ASSERT_TRUE(retry.ok()) << retry.detail;
    EXPECT_EQ(simsRun(), sims0 + 1);
    svc.stop();
}

TEST(SingleFlight, SerialIdenticalRequestsNeverCountAsCoalesced)
{
    // The coalescing metrics must distinguish overlap from replay: a
    // serial replay of the same sim is a warm memo hit (zero
    // followers), while the parallel case (covered above) yields
    // followers == N-1. Both cost exactly one execution.
    ScratchDir scratch("sf_serial");
    ExperimentService svc(testConfig(scratch));
    ASSERT_TRUE(svc.start());

    ServiceClient c;
    ASSERT_TRUE(c.connect(scratch.socket()));
    uint64_t sims0 = simsRun();
    uint64_t followers0 = metric("service.coalesce.followers");

    ASSERT_TRUE(c.sendSim("one", "backprop", "tiny", slowConfig(4)));
    Outcome one = c.await("one");
    ASSERT_TRUE(one.ok()) << one.detail;
    ASSERT_TRUE(c.sendSim("two", "backprop", "tiny", slowConfig(4)));
    Outcome two = c.await("two");
    ASSERT_TRUE(two.ok()) << two.detail;

    EXPECT_EQ(two.lane, "warm");
    EXPECT_FALSE(one.coalesced);
    EXPECT_FALSE(two.coalesced);
    EXPECT_EQ(two.payload, one.payload);
    EXPECT_EQ(simsRun(), sims0 + 1);
    EXPECT_EQ(metric("service.coalesce.followers"), followers0);
    svc.stop();
}

// ---------------------------------------------------------------
// Stress: seeded multi-client flood.
// ---------------------------------------------------------------

TEST(Stress, SeededFloodRunsEachDistinctSimExactlyOnce)
{
    ScratchDir scratch("flood");
    ServiceConfig cfg = testConfig(scratch);
    cfg.tcpPort = 0; // half the clients connect over TCP
    ExperimentService svc(cfg);
    ASSERT_TRUE(svc.start());
    ASSERT_GT(svc.tcpPort(), 0);

    // Prime one warm sim (the flood's warm traffic) and take the
    // baseline AFTER, so the acceptance criterion is exact: the
    // flood's cold pool has kPool distinct fingerprints, so the
    // flood may run exactly kPool simulations — memoization plus
    // single flight make every other serving free.
    {
        ServiceClient p;
        ASSERT_TRUE(p.connect(scratch.socket()));
        ASSERT_TRUE(p.sendSim("prime", "backprop", "tiny", "{}"));
        ASSERT_TRUE(p.await("prime").ok());
    }
    const int kClients = 8;
    const int kOps = 12;
    const int kPool = 6;
    auto poolConfig = [](int v) {
        return "{\"gmemLatencyCycles\":" + std::to_string(460 + v) +
               "}";
    };
    uint64_t sims0 = simsRun();

    // pool payloads seen, per variant, across every client — the
    // byte-identity assertion after the drain.
    std::mutex seenMu;
    std::vector<std::vector<std::string>> seen(kPool);
    std::vector<int> failures(kClients, 0);

    auto client = [&](int idx) {
        ServiceClient c;
        bool up = (idx % 2 == 0) ? c.connect(scratch.socket())
                                 : c.connectTcp(svc.tcpPort());
        if (!up) {
            failures[size_t(idx)] = 1000;
            return;
        }
        std::mt19937 rng(1000u + uint32_t(idx));
        // Client kClients-1 is the saboteur: warm-only traffic, then
        // a truncated line and a mid-stream hangup. Its teardown
        // must never cancel a pool execution some other client's
        // response depends on (warm requests touch no flight).
        bool saboteur = idx == kClients - 1;
        for (int r = 0; r < kOps; ++r) {
            std::string id =
                "c" + std::to_string(idx) + "r" + std::to_string(r);
            if (saboteur) {
                if (r == kOps / 2) {
                    c.sendRaw(R"({"op":"sim","id":"trunc")");
                    c.close();
                    return;
                }
                if (!c.sendSim(id, "backprop", "tiny", "{}") ||
                    !c.await(id).ok())
                    failures[size_t(idx)] += 1;
                continue;
            }
            // Every client covers the whole pool (op r hits variant
            // r % kPool), interleaved with seeded warm/stats/cancel
            // noise — so all kPool fingerprints are requested by all
            // clients and the exactly-once assertion is tight.
            switch (rng() % 4) {
            case 0: { // warm sim
                if (!c.sendSim(id, "backprop", "tiny", "{}") ||
                    !c.await(id).ok())
                    failures[size_t(idx)] += 1;
                break;
            }
            case 1: { // stats
                if (!c.sendStats(id) || !c.await(id).ok())
                    failures[size_t(idx)] += 1;
                break;
            }
            case 2: { // cancel of an already-finished id: rejected,
                      // never fatal, and never touches a flight
                if (!c.sendCancel(id, "no-such-" + id)) {
                    failures[size_t(idx)] += 1;
                    break;
                }
                if (c.await(id).status != Outcome::Status::Rejected)
                    failures[size_t(idx)] += 1;
                break;
            }
            default:
                break; // fall through to the pool sim below
            }
            int v = r % kPool;
            std::string sid = id + "p";
            bool batch = rng() % 3 == 0;
            if (batch) {
                // A 2-point sweep over pool variants: same dedup
                // rules, one admission unit.
                std::vector<std::string> sweep = {
                    poolConfig(v), poolConfig((v + 1) % kPool)};
                if (!c.sendBatch(sid, "backprop", "tiny", sweep)) {
                    failures[size_t(idx)] += 1;
                    continue;
                }
                Outcome out = c.await(sid);
                if (!out.ok() || out.points.size() != 2 ||
                    !out.points[0].ok || !out.points[1].ok) {
                    failures[size_t(idx)] += 1;
                    continue;
                }
                std::lock_guard<std::mutex> lock(seenMu);
                seen[size_t(v)].push_back(out.points[0].payload);
                seen[size_t((v + 1) % kPool)].push_back(
                    out.points[1].payload);
            } else {
                if (!c.sendSim(sid, "backprop", "tiny",
                               poolConfig(v))) {
                    failures[size_t(idx)] += 1;
                    continue;
                }
                Outcome out = c.await(sid);
                if (!out.ok()) {
                    failures[size_t(idx)] += 1;
                    continue;
                }
                std::lock_guard<std::mutex> lock(seenMu);
                seen[size_t(v)].push_back(out.payload);
            }
        }
    };

    std::vector<std::thread> threads;
    for (int i = 0; i < kClients; ++i)
        threads.emplace_back(client, i);
    for (auto &t : threads)
        t.join();
    for (int i = 0; i < kClients; ++i)
        EXPECT_EQ(failures[size_t(i)], 0) << "client " << i;

    // Zero duplicate cold executions: sims computed == distinct
    // fingerprints in the pool.
    EXPECT_EQ(simsRun(), sims0 + uint64_t(kPool));
    // Byte-identical responses for every variant, across clients,
    // transports, and the single/batch paths.
    for (int v = 0; v < kPool; ++v) {
        ASSERT_FALSE(seen[size_t(v)].empty()) << "variant " << v;
        for (const auto &payload : seen[size_t(v)])
            EXPECT_EQ(payload, seen[size_t(v)].front())
                << "variant " << v << " diverged";
    }
    // Accounting settles to zero after the drain (the saboteur's
    // teardown included).
    EXPECT_TRUE(eventually([&] { return totalInFlight(svc) == 0; }))
        << totalInFlight(svc) << " still in flight";
    EXPECT_EQ(svc.admission().queueDepth(Lane::Cold), 0u);
    EXPECT_EQ(svc.admission().queueDepth(Lane::Warm), 0u);
    EXPECT_EQ(svc.context().simFlightsInFlight(), 0u);
    svc.stop();
}
