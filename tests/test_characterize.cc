/**
 * @file
 * Integration tests: the full characterization pipeline from
 * workloads through feature vectors, PCA, and clustering — the
 * paper's Section IV/V methodology end to end.
 */

#include <gtest/gtest.h>

#include "core/characterize.hh"
#include "core/workload.hh"
#include "gpusim/simconfig.hh"
#include "stats/cluster.hh"
#include "stats/pca.hh"

using namespace rodinia;
using namespace rodinia::core;

namespace {

CpuCharacterization
charOf(const std::string &name, Scale scale = Scale::Tiny)
{
    registerAllWorkloads();
    auto w = Registry::instance().create(name);
    return characterizeCpu(*w, scale, 4);
}

} // namespace

TEST(Characterize, FeatureVectorShapes)
{
    auto c = charOf("hotspot");
    EXPECT_EQ(c.instrMixFeatures().size(), 5u);
    EXPECT_EQ(c.workingSetFeatures().size(), 8u);
    EXPECT_EQ(c.sharingFeatures().size(), 16u);
    EXPECT_EQ(c.allFeatures().size(), 29u);
    EXPECT_EQ(CpuCharacterization::instrMixFeatureNames().size(), 5u);
    EXPECT_EQ(CpuCharacterization::workingSetFeatureNames(c.cacheSizes)
                  .size(),
              8u);
    EXPECT_EQ(
        CpuCharacterization::sharingFeatureNames(c.cacheSizes).size(),
        16u);
}

TEST(Characterize, InstrMixFractionsSumToOne)
{
    for (const char *name : {"kmeans", "bfs", "dedup", "raytrace"}) {
        auto f = charOf(name).instrMixFeatures();
        double sum = 0.0;
        for (double v : f) {
            EXPECT_GE(v, 0.0);
            sum += v;
        }
        EXPECT_NEAR(sum, 1.0, 1e-9) << name;
    }
}

TEST(Characterize, MissRatesMonotoneForEveryWorkload)
{
    registerAllWorkloads();
    for (const auto &name : Registry::instance().names(Suite::Rodinia)) {
        auto c = charOf(name);
        for (size_t i = 1; i < c.sweep.size(); ++i)
            EXPECT_LE(c.sweep[i].missRate(),
                      c.sweep[i - 1].missRate() + 1e-9)
                << name << " @ size index " << i;
    }
}

TEST(Characterize, SharingBoundsHold)
{
    for (const char *name : {"facesim", "canneal", "streamcluster"}) {
        auto c = charOf(name);
        for (const auto &s : c.sweep) {
            EXPECT_GE(s.sharedLineFraction(), 0.0);
            EXPECT_LE(s.sharedLineFraction(), 1.0);
            EXPECT_GE(s.sharedAccessFraction(), 0.0);
            EXPECT_LE(s.sharedAccessFraction(), 1.0);
        }
    }
}

TEST(Characterize, DeterministicUpToAddressLayout)
{
    // Instruction mix and computed results are bit-deterministic;
    // cache statistics depend on heap base addresses (page and set
    // alignment of allocations), so they are only stable to within a
    // few percent run to run — like any Pin-based measurement.
    auto a = charOf("srad");
    auto b = charOf("srad");
    EXPECT_EQ(a.mix.total(), b.mix.total());
    EXPECT_EQ(a.mix.loads, b.mix.loads);
    EXPECT_EQ(a.checksum, b.checksum);
    EXPECT_EQ(a.instructionSites, b.instructionSites);
    EXPECT_NEAR(double(a.dataPages), double(b.dataPages),
                0.1 * double(a.dataPages));
    for (size_t i = 0; i < a.sweep.size(); ++i) {
        EXPECT_NEAR(a.sweep[i].missRate(), b.sweep[i].missRate(),
                    0.05 * a.sweep[i].missRate() + 1e-4);
    }
}

TEST(Characterize, GpuPipelineEndToEnd)
{
    registerAllWorkloads();
    auto w = Registry::instance().create("hotspot");
    auto g = characterizeGpu(*w, Scale::Tiny,
                             gpusim::SimConfig::gpgpusimDefault());
    EXPECT_GT(g.timing.cycles, 0u);
    EXPECT_GT(g.timing.ipc(), 0.0);
    EXPECT_LE(g.timing.ipc(), 28.0 * 32.0);
    EXPECT_GT(g.trace.threadInstructions, 0u);
    EXPECT_GE(g.timing.bwUtilization(), 0.0);
    EXPECT_LE(g.timing.bwUtilization(), 1.0);
}

TEST(Characterize, SharedMemoryWorkloadsShowSharedOps)
{
    registerAllWorkloads();
    for (const char *name : {"hotspot", "nw", "backprop"}) {
        auto w = Registry::instance().create(name);
        auto seq = w->runGpu(Scale::Tiny, w->gpuVersions());
        auto f = gpusim::analyzeTrace(seq).memOpFractions();
        EXPECT_GT(f[size_t(gpusim::Space::Shared)], 0.2) << name;
    }
}

TEST(Characterize, TextureWorkloadsShowTextureOps)
{
    registerAllWorkloads();
    for (const char *name : {"kmeans", "mummer", "leukocyte"}) {
        auto w = Registry::instance().create(name);
        // Small scale: Leukocyte v2's persistent blocks are mostly
        // idle at Tiny scale, skewing its memory mix.
        auto seq = w->runGpu(Scale::Small, w->gpuVersions());
        auto f = gpusim::analyzeTrace(seq).memOpFractions();
        EXPECT_GT(f[size_t(gpusim::Space::Tex)], 0.15) << name;
    }
    // Leukocyte's hallmark (Table III) is its constant-memory use.
    auto lc = Registry::instance().create("leukocyte");
    auto f = gpusim::analyzeTrace(lc->runGpu(Scale::Small, 2))
                 .memOpFractions();
    EXPECT_GT(f[size_t(gpusim::Space::Const)], 0.4);
}

TEST(Characterize, DivergentWorkloadsUnderfillWarps)
{
    registerAllWorkloads();
    // BFS and MUMmer must show many low-occupancy warps; dense
    // kernels must not.
    auto occ = [&](const char *name) {
        auto w = Registry::instance().create(name);
        auto seq = w->runGpu(Scale::Small, 1);
        return gpusim::analyzeTrace(seq).occupancyFractions()[0];
    };
    EXPECT_GT(occ("bfs"), 0.3);
    EXPECT_GT(occ("mummer"), 0.3);
    EXPECT_LT(occ("kmeans"), 0.05);
    EXPECT_LT(occ("cfd"), 0.05);
}

TEST(PipelineIntegration, PcaAndClusterOverSixWorkloads)
{
    registerAllWorkloads();
    const std::vector<std::string> names = {
        "kmeans", "bfs", "hotspot", "blackscholes", "canneal", "vips",
    };
    std::vector<std::vector<double>> rows;
    for (const auto &n : names)
        rows.push_back(charOf(n).allFeatures());

    auto pca = stats::runPca(stats::Matrix::fromRows(rows));
    EXPECT_GT(pca.explained[0], 0.0);
    auto lk = stats::hierarchicalCluster(stats::pcaProject(pca, 3));
    EXPECT_EQ(lk.merges.size(), names.size() - 1);
    auto cut = lk.cut(3);
    // Exactly three distinct labels.
    std::vector<int> seen;
    for (int l : cut)
        if (std::find(seen.begin(), seen.end(), l) == seen.end())
            seen.push_back(l);
    EXPECT_EQ(seen.size(), 3u);
    // Rendering works for the full pipeline output.
    std::vector<std::string> labels = names;
    EXPECT_FALSE(stats::renderDendrogram(lk, labels).empty());
}

TEST(PipelineIntegration, SuiteChecksumsAllDistinct)
{
    registerAllWorkloads();
    std::vector<uint64_t> sums;
    for (const auto &info : Registry::instance().all()) {
        auto w = Registry::instance().create(info.name);
        trace::TraceSession session(4, false);
        w->runCpu(session, Scale::Tiny);
        sums.push_back(w->checksum());
    }
    std::sort(sums.begin(), sums.end());
    EXPECT_EQ(std::adjacent_find(sums.begin(), sums.end()), sums.end());
}
