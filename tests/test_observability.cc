/**
 * @file
 * Observability tests: TraceCollector rendering rules (content-sorted
 * events, category-derived tids, wall-clock fields last), and
 * child-process integration tests pinning the determinism contract
 * of `experiments --trace/--metrics` — after stripping the
 * wall-clock remainder, the dumps are byte-identical across worker
 * counts and across processes — plus the --keep-going regression
 * that a failed job's metrics are dropped whole, never surfaced as
 * partially-merged counters.
 */

#include <gtest/gtest.h>

#include <sys/wait.h>
#include <unistd.h>

#include <chrono>
#include <cstdlib>
#include <filesystem>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "driver/tracing.hh"
#include "support/metrics.hh"

using namespace rodinia;
using driver::TraceArgs;
using driver::TraceCollector;

namespace {

/** Fresh scratch directory under the system temp dir. */
class ScratchDir
{
  public:
    explicit ScratchDir(const std::string &tag)
        : path(std::filesystem::temp_directory_path() /
               ("rodinia_obs_test_" + tag))
    {
        std::filesystem::remove_all(path);
        std::filesystem::create_directories(path);
    }
    ~ScratchDir() { std::filesystem::remove_all(path); }
    const std::filesystem::path &dir() const { return path; }

  private:
    std::filesystem::path path;
};

// ---------------------------------------------------------------
// Child-process harness for the experiments CLI (same shape as
// test_faults.cc: explicit fault/cache environment, stdout piped
// back, stderr inherited).
// ---------------------------------------------------------------

struct RunResult
{
    int exit = -1;
    std::string out;
};

RunResult
runExperiments(const std::vector<std::string> &args,
               const std::string &faults, const std::string &cacheDir)
{
    int fds[2];
    if (pipe(fds) != 0)
        return {};
    pid_t pid = fork();
    if (pid == 0) {
        dup2(fds[1], STDOUT_FILENO);
        close(fds[0]);
        close(fds[1]);
        unsetenv("RODINIA_FAULTS");
        unsetenv("RODINIA_CACHE_DIR");
        if (!faults.empty())
            setenv("RODINIA_FAULTS", faults.c_str(), 1);
        std::vector<std::string> all = {RODINIA_EXPERIMENTS_BIN,
                                        "--cache-dir", cacheDir};
        all.insert(all.end(), args.begin(), args.end());
        std::vector<char *> argv;
        for (auto &a : all)
            argv.push_back(const_cast<char *>(a.c_str()));
        argv.push_back(nullptr);
        execv(argv[0], argv.data());
        _exit(127);
    }
    close(fds[1]);
    RunResult r;
    char buf[4096];
    for (;;) {
        ssize_t n = read(fds[0], buf, sizeof(buf));
        if (n > 0) {
            r.out.append(buf, size_t(n));
            continue;
        }
        if (n < 0 && errno == EINTR)
            continue;
        break;
    }
    close(fds[0]);
    int st = 0;
    if (waitpid(pid, &st, 0) == pid) {
        if (WIFEXITED(st))
            r.exit = WEXITSTATUS(st);
        else if (WIFSIGNALED(st))
            r.exit = 128 + WTERMSIG(st);
    }
    return r;
}

std::string
slurp(const std::filesystem::path &p)
{
    std::ifstream in(p, std::ios::binary);
    std::ostringstream buf;
    buf << in.rdbuf();
    return buf.str();
}

/**
 * Remove the wall-clock remainder from a rendered trace: each event
 * is one line with ts/dur rendered last, so erasing from `,"ts":` to
 * the line's closing brace leaves exactly the deterministic part.
 */
std::string
stripTraceTimestamps(const std::string &trace)
{
    std::string out;
    std::istringstream in(trace);
    std::string line;
    while (std::getline(in, line)) {
        size_t ts = line.find(",\"ts\":");
        if (ts != std::string::npos) {
            size_t close = line.rfind('}');
            EXPECT_NE(close, std::string::npos) << line;
            EXPECT_GT(close, ts) << line;
            line.erase(ts, close - ts);
        }
        out += line;
        out += '\n';
    }
    return out;
}

/** The Stable section of a metrics dump: everything before the
 *  "volatile" key (the dump orders "stable" first by contract). */
std::string
stableMetrics(const std::string &json)
{
    size_t at = json.find("\"volatile\"");
    EXPECT_NE(at, std::string::npos) << json;
    return json.substr(0, at);
}

} // namespace

// ---------------------------------------------------------------
// Tracing — collector unit tests
// ---------------------------------------------------------------

TEST(Tracing, ArgsBuilderOrdersAndEscapes)
{
    TraceArgs a;
    a.str("job", "figure:\"x\"\\y").num("attempt", 3).str("z", "");
    EXPECT_EQ(a.json(),
              "{\"job\":\"figure:\\\"x\\\"\\\\y\",\"attempt\":3,"
              "\"z\":\"\"}");
    EXPECT_EQ(TraceArgs().json(), "{}");
}

TEST(Tracing, EventsSortByContentNotRecordingOrder)
{
    TraceCollector tc;
    auto t = TraceCollector::Clock::now();
    using std::chrono::microseconds;
    // Record in an order a racy schedule could produce; the render
    // must sort by (category, name, args) regardless.
    tc.record("store", "load", "{\"entry\":\"b\"}",
              t + microseconds(300), t + microseconds(400));
    tc.record("executor", "attempt", "{\"job\":\"y\"}",
              t + microseconds(200), t + microseconds(900));
    tc.record("executor", "attempt", "{\"job\":\"x\"}",
              t + microseconds(500), t + microseconds(600));
    tc.record("store", "load", "{\"entry\":\"a\"}",
              t + microseconds(100), t + microseconds(150));
    EXPECT_EQ(tc.eventCount(), 4u);

    std::string doc = tc.render();
    size_t x = doc.find("\"job\":\"x\"");
    size_t y = doc.find("\"job\":\"y\"");
    size_t a = doc.find("\"entry\":\"a\"");
    size_t b = doc.find("\"entry\":\"b\"");
    ASSERT_NE(x, std::string::npos);
    ASSERT_NE(y, std::string::npos);
    ASSERT_NE(a, std::string::npos);
    ASSERT_NE(b, std::string::npos);
    EXPECT_LT(x, y) << doc;
    EXPECT_LT(y, a) << "executor events sort before store events: "
                    << doc;
    EXPECT_LT(a, b) << doc;
}

TEST(Tracing, TidsComeFromSortedCategoriesNotThreads)
{
    TraceCollector tc;
    auto t = TraceCollector::Clock::now();
    tc.record("store", "load", "{}", t, t);
    tc.record("executor", "attempt", "{}", t, t);
    std::string doc = tc.render();

    // One virtual thread per category, numbered in sorted order and
    // announced first with thread_name metadata.
    EXPECT_NE(doc.find("\"ph\":\"M\",\"pid\":1,\"tid\":1,"
                       "\"name\":\"thread_name\",\"args\":{\"name\":"
                       "\"executor\"}"),
              std::string::npos)
        << doc;
    EXPECT_NE(doc.find("\"ph\":\"M\",\"pid\":1,\"tid\":2,"
                       "\"name\":\"thread_name\",\"args\":{\"name\":"
                       "\"store\"}"),
              std::string::npos)
        << doc;
    EXPECT_NE(doc.find("\"tid\":1,\"cat\":\"executor\""),
              std::string::npos)
        << doc;
    EXPECT_NE(doc.find("\"tid\":2,\"cat\":\"store\""),
              std::string::npos)
        << doc;
}

TEST(Tracing, WallClockFieldsRenderLastAndStripClean)
{
    // Two collectors record the same spans at different wall-clock
    // offsets; the stripped renders are byte-identical.
    auto recordAll = [](TraceCollector &tc, int skewUs) {
        auto t = TraceCollector::Clock::now();
        using std::chrono::microseconds;
        tc.record("gpusim", "sim", "{\"key\":\"k1\"}",
                  t + microseconds(skewUs),
                  t + microseconds(skewUs + 70));
        tc.record("figure", "fig4", "{}", t,
                  t + microseconds(2 * skewUs + 1));
    };
    TraceCollector a, b;
    recordAll(a, 1000);
    recordAll(b, 31);
    EXPECT_NE(a.render(), b.render());
    EXPECT_EQ(stripTraceTimestamps(a.render()),
              stripTraceTimestamps(b.render()));

    // ts/dur are the line's final members.
    std::istringstream in(a.render());
    std::string line;
    int spans = 0;
    while (std::getline(in, line)) {
        size_t ts = line.find(",\"ts\":");
        if (ts == std::string::npos)
            continue;
        ++spans;
        EXPECT_NE(line.find(",\"dur\":", ts), std::string::npos)
            << line;
        EXPECT_GT(ts, line.find("\"args\":")) << line;
    }
    EXPECT_EQ(spans, 2);
}

TEST(Tracing, NegativeDurationsClampToZero)
{
    TraceCollector tc;
    auto t = TraceCollector::Clock::now();
    tc.record("executor", "attempt", "{}",
              t + std::chrono::microseconds(50), t);
    std::string doc = tc.render();
    EXPECT_NE(doc.find("\"dur\":0"), std::string::npos) << doc;
}

TEST(Tracing, WriteFileRoundTripsAndReportsFailure)
{
    ScratchDir scratch("tracewrite");
    TraceCollector tc;
    auto t = TraceCollector::Clock::now();
    tc.record("store", "gc", "{\"collected\":0}", t, t);

    auto path = scratch.dir() / "trace.json";
    ASSERT_TRUE(tc.writeFile(path));
    EXPECT_EQ(slurp(path), tc.render());

    // A directory is not a writable file.
    EXPECT_FALSE(tc.writeFile(scratch.dir()));
}

TEST(Tracing, InstallActiveRoundTrip)
{
    ASSERT_EQ(TraceCollector::active(), nullptr)
        << "tests must leave no collector installed";
    TraceCollector tc;
    TraceCollector::install(&tc);
    EXPECT_EQ(TraceCollector::active(), &tc);
    TraceCollector::install(nullptr);
    EXPECT_EQ(TraceCollector::active(), nullptr);
}

// ---------------------------------------------------------------
// Observability — end-to-end determinism of --trace/--metrics
// ---------------------------------------------------------------

TEST(Observability, SidecarsDeterministicAcrossJobsAndProcesses)
{
    ScratchDir scratch("determinism");
    std::string cache = (scratch.dir() / "cache").string();

    // fig6 consumes the 25 CPU characterizations (cachesim seam),
    // ablation_coalesce replays GPU recordings (gpusim seam).
    const std::string figs = "fig6,ablation_coalesce";
    RunResult warm = runExperiments(
        {"--figure", figs, "--quiet", "--no-summary"}, "", cache);
    ASSERT_EQ(warm.exit, 0) << warm.out;

    auto instrumented = [&](const std::string &tag,
                            const std::string &jobs) {
        std::string t = (scratch.dir() / (tag + ".trace")).string();
        std::string m = (scratch.dir() / (tag + ".metrics")).string();
        RunResult r = runExperiments(
            {"--figure", figs, "--jobs", jobs, "--quiet",
             "--no-summary", "--trace", t, "--metrics", m},
            "", cache);
        EXPECT_EQ(r.exit, 0) << r.out;
        return std::make_pair(slurp(t), slurp(m));
    };

    auto [trace1, metrics1] = instrumented("j1", "1");
    auto [trace4, metrics4] = instrumented("j4", "4");
    auto [trace1b, metrics1b] = instrumented("j1b", "1");

    // Every instrumented seam shows up in the trace.
    for (const char *cat :
         {"\"cat\":\"executor\"", "\"cat\":\"store\"",
          "\"cat\":\"gpusim\"", "\"cat\":\"cachesim\"",
          "\"cat\":\"figure\""})
        EXPECT_NE(trace1.find(cat), std::string::npos) << cat;

    // Modulo wall-clock fields, traces are byte-identical across
    // worker counts and across processes.
    std::string s1 = stripTraceTimestamps(trace1);
    EXPECT_EQ(s1, stripTraceTimestamps(trace4));
    EXPECT_EQ(s1, stripTraceTimestamps(trace1b));

    // The Stable metrics section is byte-identical; the Volatile
    // section exists but carries the wall-clock readings.
    std::string m1 = stableMetrics(metrics1);
    EXPECT_EQ(m1, stableMetrics(metrics4));
    EXPECT_EQ(m1, stableMetrics(metrics1b));
    for (const char *name :
         {"\"jobs_done\"", "\"store_served\"", "\"chars_served\"",
          "\"built\"", "\"hits\""})
        EXPECT_NE(m1.find(name), std::string::npos) << name << "\n"
                                                    << m1;
}

TEST(Observability, ColdRunCoversComputePaths)
{
    ScratchDir scratch("coldtrace");
    std::string cache = (scratch.dir() / "cache").string();
    std::string t = (scratch.dir() / "cold.trace").string();
    std::string m = (scratch.dir() / "cold.metrics").string();
    RunResult r = runExperiments(
        {"--figure", "ablation_coalesce", "--quiet", "--no-summary",
         "--trace", t, "--metrics", m},
        "", cache);
    ASSERT_EQ(r.exit, 0) << r.out;

    std::string trace = slurp(t);
    EXPECT_NE(trace.find("\"name\":\"publish\""), std::string::npos);
    EXPECT_NE(trace.find("\"source\":\"simulated\""),
              std::string::npos);
    std::string metrics = slurp(m);
    EXPECT_NE(metrics.find("\"sims_run\": 9"), std::string::npos)
        << metrics;
    EXPECT_NE(metrics.find("\"publishes\": 9"), std::string::npos)
        << metrics;
    // Volatile latency histograms recorded real samples.
    EXPECT_NE(metrics.find("\"publish_us\""), std::string::npos);
    EXPECT_NE(metrics.find("\"sim_wall_us\""), std::string::npos);
}

// ---------------------------------------------------------------
// KeepGoing — failed jobs must not leak partial metrics (the
// --stats --keep-going regression; runs in the faults-smoke lane)
// ---------------------------------------------------------------

TEST(KeepGoing, StatsDropFailedJobsCountersWholesale)
{
    ScratchDir scratch("kgstats");
    std::string cache = (scratch.dir() / "cache").string();

    // Stall the cfd sim far past the watchdog deadline: the figure
    // job runs some kmeans sims (publishing them to the store —
    // durable side effects are not transactional), then fails on
    // the deadline. Its metric transaction must be dropped whole:
    // --stats reports zero sims and zero store traffic, not the
    // partial counts the job accumulated before dying.
    std::vector<std::string> args = {
        "--figure", "ablation_coalesce", "--jobs", "1",
        "--deadline", "2500", "--keep-going", "--stats",
        "--quiet", "--no-summary"};
    RunResult r1 =
        runExperiments(args, "stall=sim:cfd@60000", cache);
    EXPECT_NE(r1.exit, 0);
    EXPECT_NE(r1.out.find("MISSING(deadline)"), std::string::npos)
        << r1.out;
    EXPECT_NE(r1.out.find("0 sims run / 0 store-served"),
              std::string::npos)
        << r1.out;
    EXPECT_NE(r1.out.find("result store: 0 hits / 0 misses / 0 "
                          "publish failures / 0 orphaned tmp "
                          "collected"),
              std::string::npos)
        << r1.out;
    EXPECT_NE(r1.out.find("no sweeps replayed this run"),
              std::string::npos)
        << r1.out;

    // The dropped transaction did not undo durable work: sims the
    // doomed job memoized before its deadline were published.
    bool published = false;
    std::error_code ec;
    for (const auto &entry : std::filesystem::directory_iterator(
             cache, ec))
        if (entry.path().filename().string().rfind("gpustats_", 0) ==
            0)
            published = true;
    EXPECT_TRUE(published);

    // Deterministic failure accounting: run 2 serves those sims
    // from the store inside the same doomed job, drops them with
    // the same transaction, and prints byte-identical stats.
    RunResult r2 =
        runExperiments(args, "stall=sim:cfd@60000", cache);
    EXPECT_EQ(r1.out, r2.out);
    EXPECT_EQ(r1.exit, r2.exit);

    // With the fault cleared the same store completes the figure
    // and the committed metrics appear.
    RunResult ok = runExperiments(args, "", cache);
    EXPECT_EQ(ok.exit, 0) << ok.out;
    EXPECT_EQ(ok.out.find("MISSING("), std::string::npos) << ok.out;
    EXPECT_EQ(ok.out.find("0 sims run"), std::string::npos) << ok.out;
}

TEST(KeepGoing, StatsHintsWhenNothingWasRecorded)
{
    ScratchDir scratch("statshint");
    std::string cache = (scratch.dir() / "cache").string();

    // Stall every site (every stall-site name contains ':') past a
    // short deadline: every job fails, every metric transaction is
    // dropped, and --stats has nothing to show. It must say why
    // instead of printing all-zero tables that read like a free run.
    std::vector<std::string> args = {
        "--no-cache", "--deadline", "300", "--keep-going",
        "--stats",    "--quiet",    "--no-summary"};
    RunResult r = runExperiments(args, "stall=:@60000", cache);
    EXPECT_NE(r.exit, 0);
    EXPECT_NE(r.out.find("hint: nothing was recorded this run"),
              std::string::npos)
        << r.out;

    // A run that does record work must not print the hint.
    RunResult ok = runExperiments(
        {"--figure", "fig1", "--stats", "--quiet", "--no-summary"},
        "", cache);
    EXPECT_EQ(ok.exit, 0) << ok.out;
    EXPECT_EQ(ok.out.find("hint: nothing was recorded"),
              std::string::npos)
        << ok.out;
}
