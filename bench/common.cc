#include "bench/common.hh"

#include <benchmark/benchmark.h>

#include <cstdio>
#include <cstdlib>

#include "driver/context.hh"
#include "driver/result_store.hh"
#include "support/logging.hh"

namespace rodinia {
namespace bench {

namespace {

/**
 * Process-wide experiment context for the bench binaries: serial
 * execution (the harness measures the serial path) with the default
 * on-disk store. RODINIA_CACHE_DIR relocates the store (the same
 * directory the experiments CLI's --cache-dir points at), so a
 * bench binary and the driver can share one set of cached
 * characterizations. Function-local statics keep construction
 * thread-safe and lazy.
 */
driver::Context &
defaultContext()
{
    static driver::ResultStore store([] {
        const char *dir = std::getenv("RODINIA_CACHE_DIR");
        return std::string(dir && *dir ? dir : "bench_cache");
    }());
    static driver::Context ctx(&store, nullptr);
    return ctx;
}

} // namespace

const std::vector<std::pair<std::string, std::string>> &
figureOrder()
{
    return driver::figureOrder();
}

std::vector<std::string>
allCpuWorkloads()
{
    return driver::allCpuWorkloads();
}

core::CpuCharacterization
cachedCpu(const std::string &name, core::Scale scale, int threads)
{
    return defaultContext().cpu(name, scale, threads);
}

gpusim::LaunchSequence
recordGpu(const std::string &name, core::Scale scale, int version)
{
    return defaultContext().gpu(name, scale, version);
}

std::vector<core::CpuCharacterization>
allCharacterizations(core::Scale scale, int threads)
{
    return defaultContext().allCpu(scale, threads);
}

std::string
renderScatter(const std::vector<double> &xs,
              const std::vector<double> &ys,
              const std::vector<std::string> &labels,
              const std::vector<core::Suite> &suites, int width,
              int height)
{
    return driver::renderScatter(xs, ys, labels, suites, width,
                                 height);
}

namespace {

std::string g_output;
std::function<std::string()> g_build;

void
BM_Figure(benchmark::State &state)
{
    for (auto _ : state)
        g_output = g_build();
}

} // namespace

int
runFigureBench(int argc, char **argv, const std::string &title,
               const std::function<std::string()> &build)
{
    g_build = build;
    benchmark::RegisterBenchmark(title.c_str(), BM_Figure)
        ->Iterations(1)
        ->Unit(benchmark::kMillisecond);
    benchmark::Initialize(&argc, argv);
    benchmark::RunSpecifiedBenchmarks();
    benchmark::Shutdown();
    std::fputs("\n", stdout);
    std::fputs(g_output.c_str(), stdout);
    std::fflush(stdout);
    return 0;
}

int
runFigureById(int argc, char **argv, const std::string &id)
{
    const driver::FigureDef *def = driver::findFigure(id);
    if (!def)
        fatal("unknown figure id '", id, "'");
    return runFigureBench(argc, argv, def->title, [def] {
        return def->build(defaultContext());
    });
}

} // namespace bench
} // namespace rodinia
