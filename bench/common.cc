#include "bench/common.hh"

#include <benchmark/benchmark.h>

#include <cstdio>
#include <filesystem>
#include <fstream>
#include <sstream>

#include "support/logging.hh"

namespace rodinia {
namespace bench {

namespace {

constexpr int kCacheVersion = 4;

std::string
cachePath(const std::string &name, core::Scale scale, int threads)
{
    std::ostringstream os;
    os << "bench_cache/v" << kCacheVersion << "_" << name << "_s"
       << int(scale) << "_t" << threads << ".txt";
    return os.str();
}

bool
loadCached(const std::string &path, core::CpuCharacterization &out)
{
    std::ifstream in(path);
    if (!in)
        return false;
    std::string tag;
    size_t sweeps = 0;
    in >> tag >> out.name >> out.threads;
    if (tag != "cpuchar")
        return false;
    int suite;
    in >> suite;
    out.suite = core::Suite(suite);
    in >> out.mix.intOps >> out.mix.fpOps >> out.mix.branches >>
        out.mix.loads >> out.mix.stores;
    in >> out.memEvents >> out.instructionSites >>
        out.instructionBlocks >> out.dataPages >> out.checksum;
    in >> sweeps;
    out.cacheSizes.resize(sweeps);
    out.sweep.resize(sweeps);
    for (size_t i = 0; i < sweeps; ++i) {
        auto &s = out.sweep[i];
        in >> out.cacheSizes[i] >> s.accesses >> s.misses >>
            s.evictions >> s.residencies >> s.sharedResidencies >>
            s.accessesToShared >> s.writesToShared;
    }
    return bool(in);
}

void
storeCached(const std::string &path,
            const core::CpuCharacterization &c)
{
    std::filesystem::create_directories("bench_cache");
    std::ofstream outf(path);
    outf << "cpuchar " << c.name << " " << c.threads << "\n"
         << int(c.suite) << "\n";
    outf << c.mix.intOps << " " << c.mix.fpOps << " " << c.mix.branches
         << " " << c.mix.loads << " " << c.mix.stores << "\n";
    outf << c.memEvents << " " << c.instructionSites << " "
         << c.instructionBlocks << " " << c.dataPages << " "
         << c.checksum << "\n";
    outf << c.sweep.size() << "\n";
    for (size_t i = 0; i < c.sweep.size(); ++i) {
        const auto &s = c.sweep[i];
        outf << c.cacheSizes[i] << " " << s.accesses << " " << s.misses
             << " " << s.evictions << " " << s.residencies << " "
             << s.sharedResidencies << " " << s.accessesToShared << " "
             << s.writesToShared << "\n";
    }
}

} // namespace

const std::vector<std::pair<std::string, std::string>> &
figureOrder()
{
    static const std::vector<std::pair<std::string, std::string>> order =
        {
            {"backprop", "BP"},   {"bfs", "BFS"},
            {"cfd", "CFD"},       {"heartwall", "HW"},
            {"hotspot", "HS"},    {"kmeans", "KM"},
            {"leukocyte", "LC"},  {"lud", "LUD"},
            {"mummer", "MUM"},    {"nw", "NW"},
            {"srad", "SRAD"},     {"streamcluster", "SC"},
        };
    return order;
}

std::vector<std::string>
allCpuWorkloads()
{
    core::registerAllWorkloads();
    auto &reg = core::Registry::instance();
    auto rodinia = reg.names(core::Suite::Rodinia);
    auto parsec = reg.names(core::Suite::Parsec);
    std::vector<std::string> all = rodinia;
    for (const auto &p : parsec)
        if (std::find(all.begin(), all.end(), p) == all.end())
            all.push_back(p);
    return all;
}

core::CpuCharacterization
cachedCpu(const std::string &name, core::Scale scale, int threads)
{
    core::registerAllWorkloads();
    std::string path = cachePath(name, scale, threads);
    core::CpuCharacterization out;
    if (loadCached(path, out))
        return out;
    auto w = core::Registry::instance().create(name);
    out = core::characterizeCpu(*w, scale, threads);
    storeCached(path, out);
    return out;
}

gpusim::LaunchSequence
recordGpu(const std::string &name, core::Scale scale, int version)
{
    core::registerAllWorkloads();
    auto w = core::Registry::instance().create(name);
    if (w->gpuVersions() < 1)
        fatal("workload '", name, "' has no GPU implementation");
    if (version <= 0)
        version = w->gpuVersions(); // shipped (most optimized)
    return w->runGpu(scale, version);
}

std::vector<core::CpuCharacterization>
allCharacterizations(core::Scale scale, int threads)
{
    std::vector<core::CpuCharacterization> out;
    for (const auto &name : allCpuWorkloads())
        out.push_back(cachedCpu(name, scale, threads));
    return out;
}

std::string
renderScatter(const std::vector<double> &xs,
              const std::vector<double> &ys,
              const std::vector<std::string> &labels,
              const std::vector<core::Suite> &suites, int width,
              int height)
{
    if (xs.empty())
        return "";
    double xmin = xs[0], xmax = xs[0], ymin = ys[0], ymax = ys[0];
    for (size_t i = 0; i < xs.size(); ++i) {
        xmin = std::min(xmin, xs[i]);
        xmax = std::max(xmax, xs[i]);
        ymin = std::min(ymin, ys[i]);
        ymax = std::max(ymax, ys[i]);
    }
    double xspan = std::max(xmax - xmin, 1e-9);
    double yspan = std::max(ymax - ymin, 1e-9);

    std::vector<std::string> grid(height, std::string(width, ' '));
    for (size_t i = 0; i < xs.size(); ++i) {
        int cx = int((xs[i] - xmin) / xspan * (width - 1) + 0.5);
        int cy = int((ys[i] - ymin) / yspan * (height - 1) + 0.5);
        char mark = suites[i] == core::Suite::Rodinia ? 'x'
                    : suites[i] == core::Suite::Parsec ? 'o'
                                                       : '#';
        char &cell = grid[height - 1 - cy][cx];
        cell = (cell == ' ') ? mark : '*';
    }

    std::ostringstream os;
    os << "  PC2 ^   (x = Rodinia, o = Parsec, # = both, * = overlap)\n";
    for (const auto &row : grid)
        os << "      |" << row << "\n";
    os << "      +" << std::string(width, '-') << "> PC1\n\n";
    for (size_t i = 0; i < labels.size(); ++i) {
        char buf[96];
        std::snprintf(buf, sizeof(buf), "  %-14s %-6s (%7.2f, %7.2f)\n",
                      labels[i].c_str(),
                      core::suiteTag(suites[i]).c_str(), xs[i], ys[i]);
        os << buf;
    }
    return os.str();
}

namespace {

std::string g_output;
std::function<std::string()> g_build;

void
BM_Figure(benchmark::State &state)
{
    for (auto _ : state)
        g_output = g_build();
}

} // namespace

int
runFigureBench(int argc, char **argv, const std::string &title,
               const std::function<std::string()> &build)
{
    g_build = build;
    benchmark::RegisterBenchmark(title.c_str(), BM_Figure)
        ->Iterations(1)
        ->Unit(benchmark::kMillisecond);
    benchmark::Initialize(&argc, argv);
    benchmark::RunSpecifiedBenchmarks();
    benchmark::Shutdown();
    std::fputs("\n", stdout);
    std::fputs(g_output.c_str(), stdout);
    std::fflush(stdout);
    return 0;
}

} // namespace bench
} // namespace rodinia
