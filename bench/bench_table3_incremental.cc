/**
 * @file
 * Table III: the incrementally optimized versions of SRAD and
 * Leukocyte — IPC, DRAM bandwidth utilization, and memory-space mix.
 *
 * Paper shape: SRAD v2's shared-memory tiling raises IPC (404 -> 748
 * in the paper) and its shared fraction (9.7% -> 28.9%); Leukocyte
 * v2's persistent blocks eliminate global traffic (7.7% -> 0.0%) and
 * cut bandwidth utilization while raising IPC.
 */

#include <sstream>

#include "bench/common.hh"
#include "gpusim/replay.hh"
#include "gpusim/timing.hh"
#include "support/table.hh"

using namespace rodinia;
using gpusim::Space;

namespace {

std::string
build()
{
    gpusim::TimingSim sim(gpusim::SimConfig::gpgpusimDefault());
    Table t("Table III: incrementally optimized SRAD and Leukocyte");
    t.setHeader({"Benchmark", "Version", "IPC", "BW util", "Shared",
                 "Global", "Const", "Tex"});
    for (const std::string name : {"srad", "leukocyte"}) {
        for (int version : {1, 2}) {
            auto seq = bench::recordGpu(name, core::Scale::Full,
                                        version);
            auto st = sim.simulate(seq);
            auto mix = gpusim::analyzeTrace(seq).memOpFractions();
            t.addRow({name, "v" + std::to_string(version),
                      Table::fmt(st.ipc(), 0),
                      Table::pct(st.bwUtilization(), 0),
                      Table::pct(mix[size_t(Space::Shared)]),
                      Table::pct(mix[size_t(Space::Global)]),
                      Table::pct(mix[size_t(Space::Const)]),
                      Table::pct(mix[size_t(Space::Tex)])});
        }
    }
    // NW and LUD also ship incremental versions; include them as the
    // release does.
    for (const std::string name : {"nw", "lud"}) {
        for (int version : {1, 2}) {
            auto seq = bench::recordGpu(name, core::Scale::Full,
                                        version);
            auto st = sim.simulate(seq);
            auto mix = gpusim::analyzeTrace(seq).memOpFractions();
            t.addRow({name, "v" + std::to_string(version),
                      Table::fmt(st.ipc(), 0),
                      Table::pct(st.bwUtilization(), 0),
                      Table::pct(mix[size_t(Space::Shared)]),
                      Table::pct(mix[size_t(Space::Global)]),
                      Table::pct(mix[size_t(Space::Const)]),
                      Table::pct(mix[size_t(Space::Tex)])});
        }
    }
    return t.render();
}

} // namespace

int
main(int argc, char **argv)
{
    return bench::runFigureBench(argc, argv, "table3/incremental",
                                 build);
}
