/**
 * @file
 * Table III: the incrementally optimized versions of SRAD and
 * Leukocyte — IPC, DRAM bandwidth utilization, and memory-space mix.
 *
 * Paper shape: SRAD v2's shared-memory tiling raises IPC (404 -> 748
 * in the paper) and its shared fraction (9.7% -> 28.9%); Leukocyte
 * v2's persistent blocks eliminate global traffic (7.7% -> 0.0%) and
 * cut bandwidth utilization while raising IPC.
 */

#include "bench/common.hh"

int
main(int argc, char **argv)
{
    return rodinia::bench::runFigureById(argc, argv, "table3");
}
