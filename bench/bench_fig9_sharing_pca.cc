/**
 * @file
 * Figure 9: PCA scatter of the sharing features (fraction of shared
 * line residencies and fraction of accesses to shared lines, at
 * eight cache sizes).
 *
 * Paper shape: Heartwall sits far from everything else; the
 * remaining workloads form a main cloud with StreamCluster, Vips,
 * Swaptions, Blackscholes, LUD and HotSpot spread around it.
 */

#include "bench/common.hh"

int
main(int argc, char **argv)
{
    return rodinia::bench::runFigureById(argc, argv, "fig9");
}
