/**
 * @file
 * Section III-E: Plackett-Burman sensitivity study over nine GPU
 * architectural parameters (after Yi et al. [36]). Each benchmark is
 * simulated under the 12-run PB design; the response is total
 * execution cycles, and factors are ranked by |effect|.
 *
 * Paper shape: SIMD width and the number of memory channels have the
 * largest impacts overall, often an order of magnitude above the
 * rest; SRAD is also sensitive to shared-memory configuration, and
 * texture/constant-bound benchmarks (Leukocyte, HotSpot) respond
 * only modestly to memory-interface parameters.
 */

#include "bench/common.hh"

int
main(int argc, char **argv)
{
    return rodinia::bench::runFigureById(argc, argv, "pb");
}
