/**
 * @file
 * Section III-E: Plackett-Burman sensitivity study over nine GPU
 * architectural parameters (after Yi et al. [36]). Each benchmark is
 * simulated under the 12-run PB design; the response is total
 * execution cycles, and factors are ranked by |effect|.
 *
 * Paper shape: SIMD width and the number of memory channels have the
 * largest impacts overall, often an order of magnitude above the
 * rest; SRAD is also sensitive to shared-memory configuration, and
 * texture/constant-bound benchmarks (Leukocyte, HotSpot) respond
 * only modestly to memory-interface parameters.
 */

#include <sstream>

#include "bench/common.hh"
#include "gpusim/timing.hh"
#include "stats/plackett_burman.hh"
#include "support/table.hh"

using namespace rodinia;

namespace {

const std::vector<std::string> kFactorNames = {
    "core-clock",   "simd-width",  "shared-size",
    "bank-conflict", "regfile",    "threads/SM",
    "mem-clock",    "channels",    "bus-width",
};

gpusim::SimConfig
configFor(const std::vector<int> &signs)
{
    gpusim::SimConfig cfg = gpusim::SimConfig::gpgpusimDefault();
    cfg.coreClockGhz = signs[0] > 0 ? 1.5 : 1.2;
    cfg.simdWidth = signs[1] > 0 ? 32 : 16;
    cfg.sharedMemPerSm = signs[2] > 0 ? 32 * 1024 : 16 * 1024;
    cfg.bankConflictsEnabled = signs[3] > 0;
    cfg.regFileSize = signs[4] > 0 ? 32768 : 16384;
    cfg.maxThreadsPerSm = signs[5] > 0 ? 2048 : 1024;
    cfg.memClockGhz = signs[6] > 0 ? 2.0 : 1.6;
    cfg.numChannels = signs[7] > 0 ? 8 : 4;
    cfg.dramBusBytes = signs[8] > 0 ? 16 : 8;
    return cfg;
}

std::string
build()
{
    auto design = stats::pbDesign(int(kFactorNames.size()));

    Table t("Plackett-Burman sensitivity: top-3 factors per benchmark");
    t.setHeader({"Benchmark", "#1", "#2", "#3"});
    std::vector<double> rankScore(kFactorNames.size(), 0.0);

    for (const auto &[name, label] : bench::figureOrder()) {
        auto seq = bench::recordGpu(name, core::Scale::Small);
        std::vector<double> responses;
        for (int r = 0; r < design.runs; ++r) {
            gpusim::SimConfig cfg = configFor(design.signs[r]);
            auto st = gpusim::TimingSim(cfg).simulate(seq);
            // The paper's response variable is total execution
            // cycles (Section III-E).
            responses.push_back(double(st.cycles));
        }
        auto effects = stats::pbEffects(design, responses,
                                        kFactorNames);
        t.addRow({label, effects[0].name, effects[1].name,
                  effects[2].name});
        // Aggregate: Borda-style rank points.
        for (size_t i = 0; i < effects.size(); ++i)
            rankScore[size_t(effects[i].factor)] +=
                double(effects.size() - i);
    }

    std::vector<std::pair<double, std::string>> agg;
    for (size_t i = 0; i < kFactorNames.size(); ++i)
        agg.emplace_back(rankScore[i], kFactorNames[i]);
    std::sort(agg.rbegin(), agg.rend());

    Table t2("Aggregate factor importance across the suite");
    t2.setHeader({"Rank", "Factor", "Score"});
    for (size_t i = 0; i < agg.size(); ++i)
        t2.addRow({std::to_string(i + 1), agg[i].second,
                   Table::fmt(agg[i].first, 0)});

    return t.render() + "\n" + t2.render();
}

} // namespace

int
main(int argc, char **argv)
{
    return bench::runFigureBench(argc, argv, "sec3e/plackett_burman",
                                 build);
}
