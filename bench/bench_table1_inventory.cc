/**
 * @file
 * Table I (Rodinia applications, dwarves, domains, problem sizes)
 * and the Table IV/V suite comparison, regenerated from the
 * registry metadata.
 */

#include "bench/common.hh"

int
main(int argc, char **argv)
{
    return rodinia::bench::runFigureById(argc, argv, "table1");
}
