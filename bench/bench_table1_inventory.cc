/**
 * @file
 * Table I (Rodinia applications, dwarves, domains, problem sizes)
 * and the Table IV/V suite comparison, regenerated from the
 * registry metadata.
 */

#include <sstream>

#include "bench/common.hh"
#include "support/table.hh"

using namespace rodinia;

namespace {

std::string
build()
{
    core::registerAllWorkloads();
    auto &reg = core::Registry::instance();
    std::ostringstream os;

    Table t1("Table I: Rodinia applications and kernels");
    t1.setHeader({"Application", "Dwarf", "Domain", "Problem size"});
    for (const auto &info : reg.all()) {
        if (info.suite == core::Suite::Rodinia ||
            info.suite == core::Suite::Both)
            t1.addRow({info.displayName, info.dwarf, info.domain,
                       info.problemSize});
    }
    os << t1.render() << "\n";

    Table t5("Table V: Parsec applications (analog implementations)");
    t5.setHeader({"Application", "Domain", "Problem size",
                  "Description"});
    for (const auto &info : reg.all()) {
        if (info.suite == core::Suite::Parsec ||
            info.suite == core::Suite::Both)
            t5.addRow({info.displayName, info.domain, info.problemSize,
                       info.description});
    }
    os << t5.render() << "\n";

    Table t4("Table IV: suite comparison");
    t4.setHeader({"Feature", "Parsec", "Rodinia"});
    t4.addRow({"Platform", "CPU", "CPU and GPU"});
    t4.addRow({"Machine Model", "Shared Memory",
               "Shared Memory and Offloading"});
    t4.addRow({"Application Count", "13 workloads", "12 workloads"});
    t4.addRow({"Incremental Versions", "No",
               "Yes (NW, SRAD, Leukocyte, LUD)"});
    t4.addRow({"Memory Space", "HW Cache", "HW and SW Caches"});
    t4.addRow({"Synchronization", "Barriers, Locks, Pipelines",
               "Barriers"});
    os << t4.render();
    return os.str();
}

} // namespace

int
main(int argc, char **argv)
{
    return bench::runFigureBench(argc, argv, "table1/inventory", build);
}
