/**
 * @file
 * Figure 1: IPC of every Rodinia GPU kernel on the 8-shader and
 * 28-shader GPGPU-Sim configurations.
 *
 * Paper shape: SRAD/HotSpot/Leukocyte highest; MUMmer and
 * Needleman-Wunsch below 100; most benchmarks scale well from 8 to
 * 28 shaders except bandwidth-bound (MUMmer, BFS) and
 * dependence-limited (LUD) ones.
 */

#include "bench/common.hh"

int
main(int argc, char **argv)
{
    return rodinia::bench::runFigureById(argc, argv, "fig1");
}
