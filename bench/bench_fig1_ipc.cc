/**
 * @file
 * Figure 1: IPC of every Rodinia GPU kernel on the 8-shader and
 * 28-shader GPGPU-Sim configurations.
 *
 * Paper shape: SRAD/HotSpot/Leukocyte highest; MUMmer and
 * Needleman-Wunsch below 100; most benchmarks scale well from 8 to
 * 28 shaders except bandwidth-bound (MUMmer, BFS) and
 * dependence-limited (LUD) ones.
 */

#include <sstream>

#include "bench/common.hh"
#include "gpusim/timing.hh"
#include "support/table.hh"

using namespace rodinia;

namespace {

std::string
build()
{
    gpusim::TimingSim sim8(gpusim::SimConfig::shaders(8));
    gpusim::TimingSim sim28(gpusim::SimConfig::shaders(28));

    Table t("Figure 1: IPC, 8-shader vs 28-shader configurations");
    t.setHeader({"Benchmark", "IPC(8)", "IPC(28)", "Scaling"});
    std::ostringstream bars;
    double maxIpc = 0.0;
    std::vector<std::tuple<std::string, double, double>> rows;

    for (const auto &[name, label] : bench::figureOrder()) {
        auto seq = bench::recordGpu(name, core::Scale::Full);
        auto s8 = sim8.simulate(seq);
        auto s28 = sim28.simulate(seq);
        rows.emplace_back(label, s8.ipc(), s28.ipc());
        maxIpc = std::max(maxIpc, s28.ipc());
        t.addRow({label, Table::fmt(s8.ipc(), 1),
                  Table::fmt(s28.ipc(), 1),
                  Table::fmt(s28.ipc() / std::max(s8.ipc(), 1e-9), 2) +
                      "x"});
    }

    for (const auto &[label, i8, i28] : rows) {
        bars << barRow(label + " (28)", i28, maxIpc) << "\n";
        bars << barRow(label + " (8)", i8, maxIpc) << "\n";
    }
    return t.render() + "\n" + bars.str();
}

} // namespace

int
main(int argc, char **argv)
{
    return bench::runFigureBench(argc, argv, "fig1/ipc", build);
}
