/**
 * @file
 * Figure 11: instruction footprint — the number of 64-byte
 * instruction blocks touched over the whole execution.
 *
 * Our substitution models static code as the set of distinct
 * instrumentation sites executed (16 bytes of machine code per
 * site), so absolute counts are smaller than compiled x86 binaries;
 * the paper's *relative* shape — Parsec applications generally touch
 * more code than Rodinia kernels, with MUMmer the Rodinia
 * exception — is the reproduced claim.
 */

#include <algorithm>
#include <sstream>

#include "bench/common.hh"
#include "support/table.hh"

using namespace rodinia;

namespace {

std::string
build()
{
    auto chars = bench::allCharacterizations(core::Scale::Full);
    std::vector<std::tuple<double, std::string, core::Suite>> rows;
    for (const auto &c : chars)
        rows.emplace_back(double(c.instructionBlocks), c.name, c.suite);
    std::sort(rows.rbegin(), rows.rend());

    double maxBlocks = std::get<0>(rows.front());
    std::ostringstream os;
    os << "Figure 11: instruction footprint (64 B blocks touched)\n\n";
    for (const auto &[blocks, name, suite] : rows)
        os << barRow(name + core::suiteTag(suite), blocks, maxBlocks,
                     40, 0)
           << "\n";

    double rodiniaAvg = 0, parsecAvg = 0;
    int nr = 0, np = 0;
    for (const auto &c : chars) {
        if (c.suite != core::Suite::Parsec) {
            rodiniaAvg += double(c.instructionBlocks);
            ++nr;
        }
        if (c.suite != core::Suite::Rodinia) {
            parsecAvg += double(c.instructionBlocks);
            ++np;
        }
    }
    os << "\n  suite averages: Rodinia " << Table::fmt(rodiniaAvg / nr, 1)
       << " blocks, Parsec " << Table::fmt(parsecAvg / np, 1)
       << " blocks\n";
    return os.str();
}

} // namespace

int
main(int argc, char **argv)
{
    return bench::runFigureBench(argc, argv, "fig11/ifootprint", build);
}
