/**
 * @file
 * Figure 11: instruction footprint — the number of 64-byte
 * instruction blocks touched over the whole execution.
 *
 * Our substitution models static code as the set of distinct
 * instrumentation sites executed (16 bytes of machine code per
 * site), so absolute counts are smaller than compiled x86 binaries;
 * the paper's *relative* shape — Parsec applications generally touch
 * more code than Rodinia kernels, with MUMmer the Rodinia
 * exception — is the reproduced claim.
 */

#include "bench/common.hh"

int
main(int argc, char **argv)
{
    return rodinia::bench::runFigureById(argc, argv, "fig11");
}
