/**
 * @file
 * Figure 12: data footprint — the number of distinct 4 kB pages
 * touched over the whole execution.
 *
 * Paper shape: both suites use large working sets; the biggest
 * footprints belong to the streaming/large-data workloads (Canneal,
 * Vips, MUMmer, Dedup, CFD), the smallest to the compute-dense
 * kernels.
 */

#include <algorithm>
#include <sstream>

#include "bench/common.hh"
#include "support/table.hh"

using namespace rodinia;

namespace {

std::string
build()
{
    auto chars = bench::allCharacterizations(core::Scale::Full);
    std::vector<std::tuple<double, std::string, core::Suite>> rows;
    for (const auto &c : chars)
        rows.emplace_back(double(c.dataPages), c.name, c.suite);
    std::sort(rows.rbegin(), rows.rend());

    double maxPages = std::get<0>(rows.front());
    std::ostringstream os;
    os << "Figure 12: data footprint (4 kB pages touched)\n\n";
    for (const auto &[pages, name, suite] : rows)
        os << barRow(name + core::suiteTag(suite), pages, maxPages, 40,
                     0)
           << "\n";
    return os.str();
}

} // namespace

int
main(int argc, char **argv)
{
    return bench::runFigureBench(argc, argv, "fig12/dfootprint", build);
}
