/**
 * @file
 * Figure 12: data footprint — the number of distinct 4 kB pages
 * touched over the whole execution.
 *
 * Paper shape: both suites use large working sets; the biggest
 * footprints belong to the streaming/large-data workloads (Canneal,
 * Vips, MUMmer, Dedup, CFD), the smallest to the compute-dense
 * kernels.
 */

#include "bench/common.hh"

int
main(int argc, char **argv)
{
    return rodinia::bench::runFigureById(argc, argv, "fig12");
}
