/**
 * @file
 * Figure 2: memory-operation breakdown by space (shared, texture,
 * constant, parameter, global/local) for each Rodinia GPU kernel.
 *
 * Paper shape: BP/HS/NW/SC dominated by shared memory; KM/LC/MUM by
 * texture; HW uses constant memory heavily; BFS/CFD are almost all
 * global.
 */

#include <sstream>

#include "bench/common.hh"
#include "gpusim/replay.hh"
#include "support/table.hh"

using namespace rodinia;
using gpusim::Space;

namespace {

std::string
build()
{
    Table t("Figure 2: memory operation breakdown (percent)");
    t.setHeader({"Benchmark", "Shared", "Tex", "Const", "Param",
                 "Global/Local"});
    for (const auto &[name, label] : bench::figureOrder()) {
        auto seq = bench::recordGpu(name, core::Scale::Full);
        auto stats = gpusim::analyzeTrace(seq);
        auto f = stats.memOpFractions();
        double globloc =
            f[size_t(Space::Global)] + f[size_t(Space::Local)];
        t.addRow({label, Table::pct(f[size_t(Space::Shared)]),
                  Table::pct(f[size_t(Space::Tex)]),
                  Table::pct(f[size_t(Space::Const)]),
                  Table::pct(f[size_t(Space::Param)]),
                  Table::pct(globloc)});
    }
    return t.render();
}

} // namespace

int
main(int argc, char **argv)
{
    return bench::runFigureBench(argc, argv, "fig2/memmix", build);
}
