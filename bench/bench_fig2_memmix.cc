/**
 * @file
 * Figure 2: memory-operation breakdown by space (shared, texture,
 * constant, parameter, global/local) for each Rodinia GPU kernel.
 *
 * Paper shape: BP/HS/NW/SC dominated by shared memory; KM/LC/MUM by
 * texture; HW uses constant memory heavily; BFS/CFD are almost all
 * global.
 */

#include "bench/common.hh"

int
main(int argc, char **argv)
{
    return rodinia::bench::runFigureById(argc, argv, "fig2");
}
