/**
 * @file
 * Figure 6: hierarchical-clustering dendrogram of the Rodinia and
 * Parsec workloads over the full feature set (instruction mix,
 * working sets across eight cache sizes, and sharing behavior),
 * reduced by PCA before clustering, exactly as the paper's
 * methodology section describes.
 *
 * Paper shape: most clusters mix Rodinia and Parsec applications
 * (the suites cover similar spaces); MUMmer and Heartwall are the
 * most dissimilar outliers; stencil codes (SRAD, Fluidanimate) pair
 * up; same-dwarf applications (e.g. MUMmer vs BFS) can land far
 * apart.
 */

#include <sstream>

#include "bench/common.hh"
#include "stats/cluster.hh"
#include "stats/pca.hh"
#include "support/table.hh"

using namespace rodinia;

namespace {

std::string
build()
{
    auto chars = bench::allCharacterizations(core::Scale::Full);

    std::vector<std::vector<double>> rows;
    std::vector<std::string> labels;
    for (const auto &c : chars) {
        rows.push_back(c.allFeatures());
        labels.push_back(c.name + core::suiteTag(c.suite));
    }

    auto pca = stats::runPca(stats::Matrix::fromRows(rows));
    size_t keep = pca.componentsForVariance(0.9);
    auto scores = stats::pcaProject(pca, keep);

    auto lk = stats::hierarchicalCluster(scores,
                                         stats::LinkageMethod::Average);
    std::ostringstream os;
    os << "Figure 6: dendrogram over " << keep
       << " principal components (90% variance)\n\n";
    os << stats::renderDendrogram(lk, labels);

    os << "\nFlat clustering at k=8:\n";
    auto cut = lk.cut(8);
    for (int cl = 0; cl < 8; ++cl) {
        os << "  cluster " << cl << ":";
        for (size_t i = 0; i < labels.size(); ++i)
            if (cut[i] == cl)
                os << " " << labels[i];
        os << "\n";
    }
    return os.str();
}

} // namespace

int
main(int argc, char **argv)
{
    return bench::runFigureBench(argc, argv, "fig6/dendrogram", build);
}
