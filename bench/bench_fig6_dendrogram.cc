/**
 * @file
 * Figure 6: hierarchical-clustering dendrogram of the Rodinia and
 * Parsec workloads over the full feature set (instruction mix,
 * working sets across eight cache sizes, and sharing behavior),
 * reduced by PCA before clustering, exactly as the paper's
 * methodology section describes.
 *
 * Paper shape: most clusters mix Rodinia and Parsec applications
 * (the suites cover similar spaces); MUMmer and Heartwall are the
 * most dissimilar outliers; stencil codes (SRAD, Fluidanimate) pair
 * up; same-dwarf applications (e.g. MUMmer vs BFS) can land far
 * apart.
 */

#include "bench/common.hh"

int
main(int argc, char **argv)
{
    return rodinia::bench::runFigureById(argc, argv, "fig6");
}
