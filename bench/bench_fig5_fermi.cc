/**
 * @file
 * Figure 5: kernel execution time on a Fermi-like GTX 480 (both the
 * shared-bias and L1-bias on-chip memory configurations), normalized
 * to a GTX 280-like cache-less GPU.
 *
 * Paper shape: global-memory-bound benchmarks (MUMmer +11.6%, BFS
 * +16.7%) improve when switching from shared bias to L1 bias;
 * shared-memory-tuned kernels (SRAD, NW, Leukocyte) prefer shared
 * bias; LUD and StreamCluster barely move.
 */

#include "bench/common.hh"

int
main(int argc, char **argv)
{
    return rodinia::bench::runFigureById(argc, argv, "fig5");
}
