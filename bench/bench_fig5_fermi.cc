/**
 * @file
 * Figure 5: kernel execution time on a Fermi-like GTX 480 (both the
 * shared-bias and L1-bias on-chip memory configurations), normalized
 * to a GTX 280-like cache-less GPU.
 *
 * Paper shape: global-memory-bound benchmarks (MUMmer +11.6%, BFS
 * +16.7%) improve when switching from shared bias to L1 bias;
 * shared-memory-tuned kernels (SRAD, NW, Leukocyte) prefer shared
 * bias; LUD and StreamCluster barely move.
 */

#include "bench/common.hh"
#include "gpusim/timing.hh"
#include "support/table.hh"

using namespace rodinia;

namespace {

std::string
build()
{
    gpusim::TimingSim gtx280(gpusim::SimConfig::gtx280());
    gpusim::TimingSim sharedBias(gpusim::SimConfig::gtx480(false));
    gpusim::TimingSim l1Bias(gpusim::SimConfig::gtx480(true));

    Table t("Figure 5: kernel time normalized to GTX 280");
    t.setHeader({"Benchmark", "GTX280", "GTX480 shared-bias",
                 "GTX480 L1-bias", "L1-bias gain"});
    for (const auto &[name, label] : bench::figureOrder()) {
        auto seq = bench::recordGpu(name, core::Scale::Full);
        double t280 = gtx280.simulate(seq).timeUs();
        double tShared = sharedBias.simulate(seq).timeUs();
        double tL1 = l1Bias.simulate(seq).timeUs();
        double gain = (tShared - tL1) / tShared;
        t.addRow({label, "1.00", Table::fmt(tShared / t280, 2),
                  Table::fmt(tL1 / t280, 2), Table::pct(gain)});
    }
    return t.render();
}

} // namespace

int
main(int argc, char **argv)
{
    return bench::runFigureBench(argc, argv, "fig5/fermi", build);
}
