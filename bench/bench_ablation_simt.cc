/**
 * @file
 * Ablation: loop-iteration path keys in the SIMT replayer.
 *
 * DESIGN.md calls out the min-PC reconvergence model with per-
 * iteration order keys. This bench records a MUMmer-style traversal
 * kernel twice — once with LoopIter path keys and once without —
 * and compares the resulting warp occupancy: without the keys,
 * lanes in different loop iterations are merged at the same PC,
 * which over-estimates occupancy on trip-count-divergent code.
 */

#include <sstream>

#include "bench/common.hh"
#include "gpusim/recorder.hh"
#include "gpusim/replay.hh"
#include "support/rng.hh"
#include "support/table.hh"

using namespace rodinia;
using namespace rodinia::gpusim;

namespace {

std::string
build()
{
    // Per-thread trip counts drawn from a skewed distribution, like
    // query lengths in MUMmer.
    Rng rng(0xAB1);
    std::vector<int> trips(2048);
    for (auto &t : trips)
        t = 1 + int(rng.below(64));
    std::vector<float> data(1 << 16, 1.0f);

    LaunchConfig launch;
    launch.gridDim = 16;
    launch.blockDim = 128;

    // The loop body takes a data-dependent branch, like an edge
    // comparison in a tree walk: lanes on different iterations sit
    // at the same then/else PCs, which naive min-PC would merge.
    auto body = [&](KernelCtx &ctx, float &acc, int i) {
        if (ctx.branch(((ctx.globalId() * 31 + i) % 3) == 0)) {
            acc += ctx.ldg(&data[(ctx.globalId() * 67 + i) %
                                 int(data.size())]);
            ctx.fp(4);
        } else {
            ctx.alu(2);
        }
    };
    auto makeRec = [&](bool use_keys) {
        return recordKernel(launch, [&](KernelCtx &ctx) {
            int n = trips[ctx.globalId()];
            float acc = 0.0f;
            for (int i = 0; i < n; ++i) {
                if (use_keys) {
                    LoopIter li(ctx, i);
                    body(ctx, acc, i);
                } else {
                    body(ctx, acc, i);
                }
            }
            ctx.stg(&data[ctx.globalId()], acc);
        });
    };

    auto withKeys = analyzeTrace(makeRec(true));
    auto without = analyzeTrace(makeRec(false));

    Table t("SIMT ablation: loop path keys vs naive min-PC merge");
    t.setHeader({"Model", "avg active threads", "warp insts",
                 "1-8 bucket"});
    auto row = [&](const char *name, const TraceStats &s) {
        t.addRow({name, Table::fmt(s.avgWarpOccupancy(), 2),
                  Table::fmtInt(s.warpInstructions),
                  Table::pct(s.occupancyFractions()[0])});
    };
    row("loop path keys (default)", withKeys);
    row("naive min-PC (no keys)", without);

    std::ostringstream os;
    os << t.render() << "\n"
       << "Without path keys, different loop iterations of different\n"
       << "lanes merge at the same PC, inflating occupancy and\n"
       << "deflating the serialized warp-instruction count on\n"
       << "trip-count-divergent kernels (MUMmer, BFS).\n";
    return os.str();
}

} // namespace

int
main(int argc, char **argv)
{
    return bench::runFigureBench(argc, argv, "ablation/simt_keys",
                                 build);
}
