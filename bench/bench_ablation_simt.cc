/**
 * @file
 * Ablation: loop-iteration path keys in the SIMT replayer.
 *
 * DESIGN.md calls out the min-PC reconvergence model with per-
 * iteration order keys. This bench records a MUMmer-style traversal
 * kernel twice — once with LoopIter path keys and once without —
 * and compares the resulting warp occupancy: without the keys,
 * lanes in different loop iterations are merged at the same PC,
 * which over-estimates occupancy on trip-count-divergent code.
 */

#include "bench/common.hh"

int
main(int argc, char **argv)
{
    return rodinia::bench::runFigureById(argc, argv, "ablation_simt");
}
