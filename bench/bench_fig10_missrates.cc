/**
 * @file
 * Figure 10: misses per memory reference under a 4 MB shared cache
 * for every Rodinia and Parsec workload.
 *
 * Paper shape: MUMmer has by far the highest miss rate (correlating
 * with its working-set outlier status); streaming workloads
 * (Canneal, StreamCluster, CFD, Vips) follow; compute-dense kernels
 * (Blackscholes, Swaptions, Raytrace, HotSpot) are lowest.
 */

#include <algorithm>
#include <sstream>

#include "bench/common.hh"
#include "support/table.hh"

using namespace rodinia;

namespace {

std::string
build()
{
    auto chars = bench::allCharacterizations(core::Scale::Full);

    // Find the 4 MB sweep index.
    size_t idx4mb = 0;
    for (size_t i = 0; i < chars[0].cacheSizes.size(); ++i)
        if (chars[0].cacheSizes[i] == 4ull * 1024 * 1024)
            idx4mb = i;

    std::vector<std::tuple<double, std::string, core::Suite>> rows;
    for (const auto &c : chars)
        rows.emplace_back(c.sweep[idx4mb].missRate(), c.name, c.suite);
    std::sort(rows.rbegin(), rows.rend());

    double maxRate = std::get<0>(rows.front());
    std::ostringstream os;
    os << "Figure 10: miss rate per memory reference @ 4 MB shared "
          "cache\n\n";
    for (const auto &[rate, name, suite] : rows)
        os << barRow(name + core::suiteTag(suite), rate,
                     std::max(maxRate, 1e-9), 40, 4)
           << "\n";
    return os.str();
}

} // namespace

int
main(int argc, char **argv)
{
    return bench::runFigureBench(argc, argv, "fig10/missrates", build);
}
