/**
 * @file
 * Figure 10: misses per memory reference under a 4 MB shared cache
 * for every Rodinia and Parsec workload.
 *
 * Paper shape: MUMmer has by far the highest miss rate (correlating
 * with its working-set outlier status); streaming workloads
 * (Canneal, StreamCluster, CFD, Vips) follow; compute-dense kernels
 * (Blackscholes, Swaptions, Raytrace, HotSpot) are lowest.
 */

#include "bench/common.hh"

int
main(int argc, char **argv)
{
    return rodinia::bench::runFigureById(argc, argv, "fig10");
}
