/**
 * @file
 * Figure 7: PCA scatter of the instruction-mix features (integer,
 * floating-point, branch, load, store fractions).
 *
 * Paper shape: Rodinia's BFS/BackProp/HotSpot and Parsec's
 * Raytrace/Ferret/Bodytrack/StreamCluster populate different regions
 * — the suites' instruction mixes are complementary.
 */

#include "bench/common.hh"

int
main(int argc, char **argv)
{
    return rodinia::bench::runFigureById(argc, argv, "fig7");
}
