/**
 * @file
 * Figure 7: PCA scatter of the instruction-mix features (integer,
 * floating-point, branch, load, store fractions).
 *
 * Paper shape: Rodinia's BFS/BackProp/HotSpot and Parsec's
 * Raytrace/Ferret/Bodytrack/StreamCluster populate different regions
 * — the suites' instruction mixes are complementary.
 */

#include "bench/common.hh"
#include "stats/pca.hh"

using namespace rodinia;

namespace {

std::string
build()
{
    auto chars = bench::allCharacterizations(core::Scale::Full);
    std::vector<std::vector<double>> rows;
    std::vector<std::string> labels;
    std::vector<core::Suite> suites;
    for (const auto &c : chars) {
        rows.push_back(c.instrMixFeatures());
        labels.push_back(c.name);
        suites.push_back(c.suite);
    }
    auto pca = stats::runPca(stats::Matrix::fromRows(rows));
    std::vector<double> xs, ys;
    for (size_t i = 0; i < rows.size(); ++i) {
        xs.push_back(pca.scores.at(i, 0));
        ys.push_back(pca.scores.at(i, 1));
    }
    std::string head =
        "Figure 7: instruction-mix PCA (PC1 explains " +
        std::to_string(int(pca.explained[0] * 100)) + "%, PC2 " +
        std::to_string(int(pca.explained[1] * 100)) + "%)\n\n";
    return head + bench::renderScatter(xs, ys, labels, suites);
}

} // namespace

int
main(int argc, char **argv)
{
    return bench::runFigureBench(argc, argv, "fig7/instmix_pca", build);
}
