/**
 * @file
 * Shared utilities for the figure/table reproduction benches.
 *
 * Every bench binary regenerates one table or figure of the paper:
 * it registers a google-benchmark case whose body performs the full
 * experiment (so wall-clock cost is reported by the harness), and
 * prints the reproduced rows/series afterwards.
 *
 * The experiment definitions themselves live in the driver
 * subsystem (driver::allFigures()); each bench binary is a thin
 * harness around one driver::FigureDef, and the `experiments` CLI
 * runs the same definitions as one parallel job graph. Both paths
 * call identical builder code, so their figure text is
 * byte-identical by construction.
 *
 * CPU characterizations are cached on disk through the driver's
 * content-hashed ResultStore (./bench_cache) because Figures 6-12
 * all consume the same 25 workload characterizations; results are
 * deterministic, so a cache entry is always valid for its key
 * (workload, scale, threads, store version).
 */

#ifndef RODINIA_BENCH_COMMON_HH
#define RODINIA_BENCH_COMMON_HH

#include <functional>
#include <string>
#include <vector>

#include "core/characterize.hh"
#include "core/workload.hh"
#include "driver/figures.hh"
#include "gpusim/recorder.hh"

namespace rodinia {
namespace bench {

/**
 * Rodinia workloads in the paper's figure order (Figs. 1-5).
 * Thread-safe: backed by a function-local static (see
 * driver::figureOrder()), so benches may query it from pool threads.
 */
const std::vector<std::pair<std::string, std::string>> &figureOrder();

/** All 25 CPU workloads: 12 Rodinia + 13 Parsec (SC shared). */
std::vector<std::string> allCpuWorkloads();

/**
 * CPU characterization with disk caching (driver ResultStore;
 * crash-safe write-temp + atomic-rename publication).
 *
 * @param name workload registry name
 * @param scale problem-size tier
 * @param threads worker thread count (paper: 8-core CMP)
 */
core::CpuCharacterization cachedCpu(const std::string &name,
                                    core::Scale scale, int threads = 8);

/** Record a workload's GPU launch sequence (best version). */
gpusim::LaunchSequence recordGpu(const std::string &name,
                                 core::Scale scale, int version = 0);

/**
 * Run the standard bench main: register the experiment as a
 * google-benchmark case, run the harness, and print the produced
 * figure text.
 */
int runFigureBench(int argc, char **argv, const std::string &title,
                   const std::function<std::string()> &build);

/**
 * Run one driver figure under the bench harness, sharing the
 * default on-disk result store. This is the whole body of every
 * bench binary's main().
 */
int runFigureById(int argc, char **argv, const std::string &id);

/** Characterize all 25 CPU workloads (cached). */
std::vector<core::CpuCharacterization>
allCharacterizations(core::Scale scale, int threads = 8);

/**
 * Render an ASCII scatter plot (Figures 7-9): Rodinia points print
 * as 'x', Parsec as 'o', StreamCluster (both suites) as '#'; a
 * legend lists the exact coordinates.
 */
std::string renderScatter(const std::vector<double> &xs,
                          const std::vector<double> &ys,
                          const std::vector<std::string> &labels,
                          const std::vector<core::Suite> &suites,
                          int width = 64, int height = 20);

} // namespace bench
} // namespace rodinia

#endif // RODINIA_BENCH_COMMON_HH
