/**
 * @file
 * Ablation: memory-transaction (coalescing) granularity.
 *
 * DESIGN.md calls out the coalescing granularity as a modeling
 * choice. This bench sweeps 32/64/128-byte transactions over three
 * representative kernels (coalesced Kmeans, scattered CFD gathers,
 * and BFS) and reports cycles and DRAM transactions per
 * configuration, normalized to 64 B.
 */

#include "bench/common.hh"
#include "gpusim/timing.hh"
#include "support/table.hh"

using namespace rodinia;

namespace {

std::string
build()
{
    Table t("Coalescing-granularity ablation (normalized to 64 B)");
    t.setHeader({"Benchmark", "Metric", "32B", "64B", "128B"});
    for (const std::string name : {"kmeans", "cfd", "bfs"}) {
        auto seq = bench::recordGpu(name, core::Scale::Small);
        double cycles[3], trans[3];
        int idx = 0;
        for (int granule : {32, 64, 128}) {
            gpusim::SimConfig cfg = gpusim::SimConfig::gpgpusimDefault();
            cfg.coalesceBytes = granule;
            auto st = gpusim::TimingSim(cfg).simulate(seq);
            cycles[idx] = double(st.cycles);
            trans[idx] = double(st.dramTransactions);
            ++idx;
        }
        t.addRow({name, "cycles", Table::fmt(cycles[0] / cycles[1], 2),
                  "1.00", Table::fmt(cycles[2] / cycles[1], 2)});
        t.addRow({"", "transactions",
                  Table::fmt(trans[0] / trans[1], 2), "1.00",
                  Table::fmt(trans[2] / trans[1], 2)});
    }
    return t.render();
}

} // namespace

int
main(int argc, char **argv)
{
    return bench::runFigureBench(argc, argv, "ablation/coalesce",
                                 build);
}
