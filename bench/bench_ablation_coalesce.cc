/**
 * @file
 * Ablation: memory-transaction (coalescing) granularity.
 *
 * DESIGN.md calls out the coalescing granularity as a modeling
 * choice. This bench sweeps 32/64/128-byte transactions over three
 * representative kernels (coalesced Kmeans, scattered CFD gathers,
 * and BFS) and reports cycles and DRAM transactions per
 * configuration, normalized to 64 B.
 */

#include "bench/common.hh"

int
main(int argc, char **argv)
{
    return rodinia::bench::runFigureById(argc, argv, "ablation_coalesce");
}
