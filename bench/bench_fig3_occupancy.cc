/**
 * @file
 * Figure 3: warp-occupancy histogram — the fraction of issued warp
 * instructions with 1-8, 9-16, 17-24, and 25-32 active threads.
 *
 * Paper shape: BFS, SRAD and Heartwall diverge through control flow;
 * BP and NW under-fill warps through reduction/diagonal structure;
 * MUMmer is the extreme case with >60% of warps under 5 active
 * threads; dense kernels (KM, HS, LC, CFD, SC) run nearly full.
 */

#include "bench/common.hh"

int
main(int argc, char **argv)
{
    return rodinia::bench::runFigureById(argc, argv, "fig3");
}
