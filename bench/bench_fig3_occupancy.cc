/**
 * @file
 * Figure 3: warp-occupancy histogram — the fraction of issued warp
 * instructions with 1-8, 9-16, 17-24, and 25-32 active threads.
 *
 * Paper shape: BFS, SRAD and Heartwall diverge through control flow;
 * BP and NW under-fill warps through reduction/diagonal structure;
 * MUMmer is the extreme case with >60% of warps under 5 active
 * threads; dense kernels (KM, HS, LC, CFD, SC) run nearly full.
 */

#include "bench/common.hh"
#include "gpusim/replay.hh"
#include "support/table.hh"

using namespace rodinia;

namespace {

std::string
build()
{
    Table t("Figure 3: warp occupancy (percent of warp instructions)");
    t.setHeader({"Benchmark", "1-8", "9-16", "17-24", "25-32",
                 "avg active"});
    for (const auto &[name, label] : bench::figureOrder()) {
        auto seq = bench::recordGpu(name, core::Scale::Full);
        auto stats = gpusim::analyzeTrace(seq);
        auto f = stats.occupancyFractions();
        t.addRow({label, Table::pct(f[0]), Table::pct(f[1]),
                  Table::pct(f[2]), Table::pct(f[3]),
                  Table::fmt(stats.avgWarpOccupancy(), 1)});
    }
    return t.render();
}

} // namespace

int
main(int argc, char **argv)
{
    return bench::runFigureBench(argc, argv, "fig3/occupancy", build);
}
