/**
 * @file
 * Figure 8: PCA scatter of the working-set features (misses per
 * memory reference at eight shared-cache sizes, 128 kB - 16 MB).
 *
 * Paper shape: MUMmer is a significant outlier (its suffix tree
 * never fits), with StreamCluster, Canneal, BackProp and NW also
 * away from the main cluster.
 */

#include "bench/common.hh"

int
main(int argc, char **argv)
{
    return rodinia::bench::runFigureById(argc, argv, "fig8");
}
