/**
 * @file
 * Figure 8: PCA scatter of the working-set features (misses per
 * memory reference at eight shared-cache sizes, 128 kB - 16 MB).
 *
 * Paper shape: MUMmer is a significant outlier (its suffix tree
 * never fits), with StreamCluster, Canneal, BackProp and NW also
 * away from the main cluster.
 */

#include "bench/common.hh"
#include "stats/pca.hh"

using namespace rodinia;

namespace {

std::string
build()
{
    auto chars = bench::allCharacterizations(core::Scale::Full);
    std::vector<std::vector<double>> rows;
    std::vector<std::string> labels;
    std::vector<core::Suite> suites;
    for (const auto &c : chars) {
        rows.push_back(c.workingSetFeatures());
        labels.push_back(c.name);
        suites.push_back(c.suite);
    }
    auto pca = stats::runPca(stats::Matrix::fromRows(rows));
    std::vector<double> xs, ys;
    for (size_t i = 0; i < rows.size(); ++i) {
        xs.push_back(pca.scores.at(i, 0));
        ys.push_back(pca.scores.at(i, 1));
    }
    std::string head =
        "Figure 8: working-set PCA (PC1 explains " +
        std::to_string(int(pca.explained[0] * 100)) + "%, PC2 " +
        std::to_string(int(pca.explained[1] * 100)) + "%)\n\n";
    return head + bench::renderScatter(xs, ys, labels, suites);
}

} // namespace

int
main(int argc, char **argv)
{
    return bench::runFigureBench(argc, argv, "fig8/workingset_pca",
                                 build);
}
