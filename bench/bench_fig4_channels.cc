/**
 * @file
 * Figure 4: performance improvement as memory channels grow from 4
 * to 6 to 8, normalized to the 4-channel configuration.
 *
 * Paper shape: BFS, CFD and MUMmer benefit most; LUD and HotSpot
 * (shared-memory locality) and Kmeans/Leukocyte (texture/constant
 * bound) benefit least.
 */

#include "bench/common.hh"

int
main(int argc, char **argv)
{
    return rodinia::bench::runFigureById(argc, argv, "fig4");
}
