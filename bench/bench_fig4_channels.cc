/**
 * @file
 * Figure 4: performance improvement as memory channels grow from 4
 * to 6 to 8, normalized to the 4-channel configuration.
 *
 * Paper shape: BFS, CFD and MUMmer benefit most; LUD and HotSpot
 * (shared-memory locality) and Kmeans/Leukocyte (texture/constant
 * bound) benefit least.
 */

#include "bench/common.hh"
#include "gpusim/timing.hh"
#include "support/table.hh"

using namespace rodinia;

namespace {

std::string
build()
{
    Table t("Figure 4: speedup vs channels (normalized to 4 channels)");
    t.setHeader({"Benchmark", "4ch", "6ch", "8ch", "BW util @4ch"});
    for (const auto &[name, label] : bench::figureOrder()) {
        auto seq = bench::recordGpu(name, core::Scale::Full);
        double cycles[3];
        double util4 = 0.0;
        int idx = 0;
        for (int ch : {4, 6, 8}) {
            gpusim::SimConfig cfg = gpusim::SimConfig::gpgpusimDefault();
            cfg.numChannels = ch;
            auto st = gpusim::TimingSim(cfg).simulate(seq);
            cycles[idx++] = double(st.cycles);
            if (ch == 4)
                util4 = st.bwUtilization();
        }
        t.addRow({label, "1.00",
                  Table::fmt(cycles[0] / cycles[1], 2),
                  Table::fmt(cycles[0] / cycles[2], 2),
                  Table::pct(util4)});
    }
    return t.render();
}

} // namespace

int
main(int argc, char **argv)
{
    return bench::runFigureBench(argc, argv, "fig4/channels", build);
}
