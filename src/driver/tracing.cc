#include "driver/tracing.hh"

#include <algorithm>
#include <fstream>
#include <map>
#include <sstream>

#include "support/metrics.hh"

namespace rodinia {
namespace driver {

using support::metrics::jsonEscape;

std::atomic<TraceCollector *> TraceCollector::current{nullptr};

TraceArgs &
TraceArgs::str(std::string_view key, std::string_view value)
{
    body += (body.empty() ? "\"" : ",\"") + jsonEscape(key) +
            "\":\"" + jsonEscape(value) + "\"";
    return *this;
}

TraceArgs &
TraceArgs::num(std::string_view key, uint64_t value)
{
    body += (body.empty() ? "\"" : ",\"") + jsonEscape(key) +
            "\":" + std::to_string(value);
    return *this;
}

void
TraceCollector::record(std::string_view cat, std::string_view name,
                       std::string argsJson, Clock::time_point start,
                       Clock::time_point end)
{
    auto us = [this](Clock::time_point t) -> uint64_t {
        if (t <= t0)
            return 0;
        return uint64_t(
            std::chrono::duration_cast<std::chrono::microseconds>(
                t - t0)
                .count());
    };
    Event e;
    e.cat = std::string(cat);
    e.name = std::string(name);
    e.args = std::move(argsJson);
    e.tsUs = us(start);
    e.durUs = end > start ? us(end) - e.tsUs : 0;
    std::lock_guard<std::mutex> lock(mu);
    events.push_back(std::move(e));
}

size_t
TraceCollector::eventCount() const
{
    std::lock_guard<std::mutex> lock(mu);
    return events.size();
}

std::string
TraceCollector::render() const
{
    std::vector<Event> sorted;
    {
        std::lock_guard<std::mutex> lock(mu);
        sorted = events;
    }
    // Content identity first, wall clock only as a tiebreaker:
    // events that differ only in timing collapse to identical lines
    // once the determinism tests strip ts/dur, so residual timing
    // ties cannot reorder distinguishable lines.
    std::sort(sorted.begin(), sorted.end(),
              [](const Event &a, const Event &b) {
                  if (a.cat != b.cat)
                      return a.cat < b.cat;
                  if (a.name != b.name)
                      return a.name < b.name;
                  if (a.args != b.args)
                      return a.args < b.args;
                  if (a.tsUs != b.tsUs)
                      return a.tsUs < b.tsUs;
                  return a.durUs < b.durUs;
              });

    // One virtual thread per category, numbered in sorted-category
    // order — never from OS thread ids, which are
    // schedule-dependent.
    std::map<std::string, int> tids;
    for (const Event &e : sorted)
        tids.emplace(e.cat, 0);
    int next = 1;
    for (auto &[cat, tid] : tids)
        tid = next++;

    std::ostringstream os;
    os << "{\"traceEvents\":[";
    // Each event is one line; continuation lines lead with the
    // comma so every line ends at its event's closing brace (the
    // strip rule depends on that).
    const char *sep = "\n";
    for (const auto &[cat, tid] : tids) {
        os << sep << "{\"ph\":\"M\",\"pid\":1,\"tid\":" << tid
           << ",\"name\":\"thread_name\",\"args\":{\"name\":\""
           << jsonEscape(cat) << "\"}}";
        sep = ",\n";
    }
    for (const Event &e : sorted) {
        os << sep << "{\"ph\":\"X\",\"pid\":1,\"tid\":"
           << tids[e.cat] << ",\"cat\":\"" << jsonEscape(e.cat)
           << "\",\"name\":\"" << jsonEscape(e.name)
           << "\",\"args\":" << (e.args.empty() ? "{}" : e.args)
           << ",\"ts\":" << e.tsUs << ",\"dur\":" << e.durUs << "}";
        sep = ",\n";
    }
    os << "\n]}\n";
    return os.str();
}

bool
TraceCollector::writeFile(const std::filesystem::path &path) const
{
    std::ofstream out(path, std::ios::binary | std::ios::trunc);
    if (!out)
        return false;
    out << render();
    out.flush();
    return bool(out);
}

} // namespace driver
} // namespace rodinia
