#include "driver/job.hh"

#include "support/logging.hh"

namespace rodinia {
namespace driver {

const char *
jobStatusName(JobStatus status)
{
    switch (status) {
      case JobStatus::Pending:
        return "pending";
      case JobStatus::Running:
        return "running";
      case JobStatus::Done:
        return "done";
      case JobStatus::Failed:
        return "failed";
      case JobStatus::Skipped:
        return "skipped";
    }
    return "unknown";
}

const char *
errorClassName(ErrorClass cls)
{
    switch (cls) {
      case ErrorClass::None:
        return "none";
      case ErrorClass::Injected:
        return "injected";
      case ErrorClass::StoreIo:
        return "store-io";
      case ErrorClass::Deadline:
        return "deadline";
      case ErrorClass::Oom:
        return "oom";
      case ErrorClass::Workload:
        return "workload";
      case ErrorClass::Skipped:
        return "skipped";
      case ErrorClass::Unknown:
        return "unknown";
    }
    return "unknown";
}

size_t
JobGraph::add(std::string name, std::function<void()> work,
              std::vector<size_t> deps)
{
    size_t id = jobs_.size();
    for (size_t dep : deps) {
        if (dep >= id)
            fatal("JobGraph: job '", name, "' depends on job ", dep,
                  " which has not been added yet (have ", id, " jobs)");
    }
    Job j;
    j.name = std::move(name);
    j.work = std::move(work);
    j.deps = std::move(deps);
    jobs_.push_back(std::move(j));
    return id;
}

std::vector<size_t>
JobGraph::dependents(size_t id) const
{
    std::vector<size_t> out;
    for (size_t i = 0; i < jobs_.size(); ++i) {
        for (size_t dep : jobs_[i].deps) {
            if (dep == id) {
                out.push_back(i);
                break;
            }
        }
    }
    return out;
}

bool
JobGraph::allDone() const
{
    for (const auto &j : jobs_)
        if (j.status != JobStatus::Done)
            return false;
    return true;
}

double
JobGraph::totalWorkMs() const
{
    double total = 0.0;
    for (const auto &j : jobs_)
        total += j.wallMs;
    return total;
}

} // namespace driver
} // namespace rodinia
