/**
 * @file
 * Content-hashed, concurrency-safe experiment result store.
 *
 * Replaces the ad-hoc `bench_cache/v4_<name>_s<scale>_t<threads>.txt`
 * naming in bench/common.cc. A result is addressed by an FNV-1a
 * digest over every field that determines its content — result
 * kind, workload name, scale, thread count, simulator-config string,
 * and a store version — so adding a key field or bumping kVersion
 * automatically invalidates stale entries instead of silently
 * returning them.
 *
 * Writes are crash-safe and safe under concurrent writers: the
 * payload goes to a unique temporary in the same directory, is
 * fsync'd, and is then published with an atomic rename followed by
 * an fsync of the directory — so a power cut can leave a *.tmp
 * droppings file but never a truncated or unlinked entry. A publish
 * that fails at any step is reported to the caller (and counted)
 * rather than silently warned away; concurrent writers of the same
 * key race benignly (results are deterministic, so both wrote
 * identical bytes).
 */

#ifndef RODINIA_DRIVER_RESULT_STORE_HH
#define RODINIA_DRIVER_RESULT_STORE_HH

#include <atomic>
#include <cstdint>
#include <filesystem>
#include <optional>
#include <string>

#include "core/characterize.hh"

namespace rodinia {
namespace driver {

class ResultStore
{
  public:
    /** Bump to invalidate every previously stored result. */
    static constexpr int kVersion = 6;

    /** Everything that determines a stored result's content. */
    struct Key
    {
        std::string kind;     //!< e.g. "cpuchar"
        std::string workload; //!< registry name
        int scale = 0;        //!< int(core::Scale)
        int threads = 0;      //!< worker threads (0 if n/a)
        std::string config;   //!< sim-config serialization ("" if n/a)
    };

    /**
     * @param dir cache directory (created lazily on first store)
     * @param enabled false turns load into a constant miss and
     *        store into a no-op (--no-cache)
     * @param version store version folded into every hash; exposed
     *        for invalidation tests
     *
     * Opening an enabled store garbage-collects orphaned `*.tmp.*`
     * droppings left behind by publishes that crashed between write
     * and rename (counted in tmpCollected()). Published entries are
     * never touched.
     */
    explicit ResultStore(std::filesystem::path dir, bool enabled = true,
                         int version = kVersion);

    /** FNV-1a digest of every key field plus the store version. */
    uint64_t hashKey(const Key &key) const;

    /** File that does/would hold this key's payload. */
    std::filesystem::path pathFor(const Key &key) const;

    /** Payload for the key, or nullopt on miss. */
    std::optional<std::string> load(const Key &key) const;

    /**
     * Durably publish the payload for the key: write + fsync a
     * unique temporary, atomically rename it into place, fsync the
     * directory. @return false (and count a publish failure) if any
     * step failed — the entry is then absent, not torn.
     */
    bool store(const Key &key, const std::string &payload) const;

    /**
     * Drop the stored entry for the key, reclassifying the hit that
     * surfaced it as a miss. Call when a loaded payload turns out to
     * be unusable (parse failure) so the corrupt entry self-heals on
     * the recompute instead of poisoning every future run.
     *
     * Idempotent: the hit→miss reclassification happens only when
     * this call actually removed the entry, so repeated discards —
     * or a discard retried after an (injected) unlink failure —
     * never double-count.
     */
    void discard(const Key &key) const;

    bool enabled() const { return on; }
    const std::filesystem::path &directory() const { return dir; }

    /** Cache traffic since construction (for run summaries). */
    uint64_t hits() const { return nHits.load(); }
    uint64_t misses() const { return nMisses.load(); }
    /** Publishes that failed (write, fsync, or rename). */
    uint64_t publishFailures() const { return nPublishFailures.load(); }
    /** Orphaned *.tmp.* droppings collected when the store opened. */
    uint64_t tmpCollected() const { return nTmpCollected.load(); }

  private:
    void collectTmpGarbage();
    /** The uninstrumented publish protocol behind store(). */
    bool doStore(const Key &key, const std::string &payload) const;

    std::filesystem::path dir;
    bool on;
    int version;
    mutable std::atomic<uint64_t> nHits{0};
    mutable std::atomic<uint64_t> nMisses{0};
    mutable std::atomic<uint64_t> nPublishFailures{0};
    mutable std::atomic<uint64_t> nTmpCollected{0};
};

/** Key for a CPU characterization result. */
ResultStore::Key cpuCharKey(const std::string &workload,
                            core::Scale scale, int threads);

/**
 * Key for a GPU timing-simulation result. The config string is the
 * SimConfig fingerprint plus the recorded launch sequence's content
 * hash, so a change to either the architecture under test or the
 * recording itself (workload logic, problem size, recorder fixes)
 * moves the key instead of serving stale stats. The kernel version
 * rides in the threads slot (0 if shipped).
 */
ResultStore::Key gpuStatsKey(const std::string &workload,
                             core::Scale scale, int version,
                             const std::string &config_fingerprint,
                             uint64_t recording_hash);

/** Serialize a CPU characterization to the store payload format. */
std::string serializeCpuChar(const core::CpuCharacterization &c);

/**
 * Parse a store payload back into a characterization.
 * @return false if the payload is malformed (treated as a miss)
 */
bool parseCpuChar(const std::string &payload,
                  core::CpuCharacterization &out);

} // namespace driver
} // namespace rodinia

#endif // RODINIA_DRIVER_RESULT_STORE_HH
