/**
 * @file
 * Span-based tracing with Chrome trace_event JSON export.
 *
 * A TraceCollector buffers completed spans — (category, name, args,
 * start, end) — recorded from any thread, and renders them as a
 * Chrome/Perfetto-loadable `{"traceEvents":[...]}` document
 * (chrome://tracing, https://ui.perfetto.dev). The instrumented
 * seams record through TraceCollector::active(), a process-wide
 * pointer installed by `experiments --trace`; when no collector is
 * installed, record sites cost one relaxed atomic load.
 *
 * Determinism rules (the --trace determinism test pins these):
 *
 *  - Events are sorted by (category, name, args) — their stable
 *    content identity — with wall-clock fields only breaking ties.
 *    The executor schedule can reorder *recording*, never output.
 *
 *  - The rendered `tid` is derived from the sorted category list
 *    (one virtual thread per category, announced with thread_name
 *    metadata events), never from OS thread ids, which are
 *    schedule-dependent.
 *
 *  - Each event is one line with the wall-clock fields ("ts",
 *    "dur", microseconds relative to collector creation) rendered
 *    LAST, so stripping a line from `,"ts":` to its closing brace
 *    removes exactly the nondeterministic remainder.
 *
 * Args strings are built with TraceArgs so every site emits a valid
 * JSON object with deterministic member order.
 */

#ifndef RODINIA_DRIVER_TRACING_HH
#define RODINIA_DRIVER_TRACING_HH

#include <atomic>
#include <chrono>
#include <cstdint>
#include <filesystem>
#include <mutex>
#include <string>
#include <string_view>
#include <vector>

namespace rodinia {
namespace driver {

/** Incremental JSON-object builder for span args. Member order is
 *  insertion order, so identical call sites render identically. */
class TraceArgs
{
  public:
    TraceArgs &str(std::string_view key, std::string_view value);
    TraceArgs &num(std::string_view key, uint64_t value);
    /** The accumulated members as one JSON object. */
    std::string json() const { return "{" + body + "}"; }

  private:
    std::string body;
};

class TraceCollector
{
  public:
    using Clock = std::chrono::steady_clock;

    TraceCollector() : t0(Clock::now()) {}

    /** Buffer one completed span. Thread-safe. */
    void record(std::string_view cat, std::string_view name,
                std::string argsJson, Clock::time_point start,
                Clock::time_point end);

    /** Render the Chrome trace_event JSON document. */
    std::string render() const;

    /** Render to a file. @return false on any IO failure. */
    bool writeFile(const std::filesystem::path &path) const;

    size_t eventCount() const;

    /** The process-wide collector, or nullptr when tracing is off. */
    static TraceCollector *
    active()
    {
        return current.load(std::memory_order_acquire);
    }

    /** Install @p tc as the process collector (nullptr uninstalls).
     *  Not synchronized against in-flight record() calls: install
     *  before starting work, uninstall after it settles. */
    static void
    install(TraceCollector *tc)
    {
        current.store(tc, std::memory_order_release);
    }

  private:
    struct Event
    {
        std::string cat;
        std::string name;
        std::string args;
        uint64_t tsUs = 0;
        uint64_t durUs = 0;
    };

    Clock::time_point t0;
    mutable std::mutex mu;
    std::vector<Event> events;
    static std::atomic<TraceCollector *> current;
};

} // namespace driver
} // namespace rodinia

#endif // RODINIA_DRIVER_TRACING_HH
