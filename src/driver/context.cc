#include "driver/context.hh"

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <sstream>

#include "driver/executor.hh"
#include "driver/tracing.hh"
#include "support/cancel.hh"
#include "support/faultinject.hh"
#include "support/logging.hh"
#include "support/metrics.hh"

namespace rodinia {
namespace driver {

const std::vector<std::pair<std::string, std::string>> &
figureOrder()
{
    // Function-local static: guaranteed thread-safe one-time
    // initialization (C++11 magic statics), so pool threads may race
    // on the first call.
    static const std::vector<std::pair<std::string, std::string>> order =
        {
            {"backprop", "BP"},   {"bfs", "BFS"},
            {"cfd", "CFD"},       {"heartwall", "HW"},
            {"hotspot", "HS"},    {"kmeans", "KM"},
            {"leukocyte", "LC"},  {"lud", "LUD"},
            {"mummer", "MUM"},    {"nw", "NW"},
            {"srad", "SRAD"},     {"streamcluster", "SC"},
        };
    return order;
}

std::vector<std::string>
allCpuWorkloads()
{
    core::registerAllWorkloads();
    auto &reg = core::Registry::instance();
    auto rodinia = reg.names(core::Suite::Rodinia);
    auto parsec = reg.names(core::Suite::Parsec);
    std::vector<std::string> all = rodinia;
    for (const auto &p : parsec)
        if (std::find(all.begin(), all.end(), p) == all.end())
            all.push_back(p);
    return all;
}

gpusim::LaunchSequence
recordGpuLaunch(const std::string &name, core::Scale scale, int version)
{
    core::registerAllWorkloads();
    auto w = core::Registry::instance().create(name);
    if (w->gpuVersions() < 1)
        fatal("workload '", name, "' has no GPU implementation");
    if (version <= 0)
        version = w->gpuVersions(); // shipped (most optimized)
    return w->runGpu(scale, version);
}

namespace {

/**
 * ChunkSink adapter that spills sealed trace chunks into the
 * ResultStore, keyed by the chunk's content hash — the store doubles
 * as the trace cache, so spilled chunks survive the process and
 * dedupe across identical traces. put/load ride the store's
 * concurrency-safe publish/load paths, so pool threads may spill
 * and refetch concurrently.
 */
class StoreChunkSink : public trace::ChunkSink
{
  public:
    explicit StoreChunkSink(ResultStore *store) : store(store) {}

    void
    put(uint64_t key, const std::string &blob) override
    {
        store->store(keyFor(key), blob);
    }

    bool
    get(uint64_t key, std::string &blob) override
    {
        auto payload = store->load(keyFor(key));
        if (!payload)
            return false;
        blob = std::move(*payload);
        return true;
    }

  private:
    static ResultStore::Key
    keyFor(uint64_t hash)
    {
        ResultStore::Key k;
        k.kind = "tracechunk";
        char hex[17];
        std::snprintf(hex, sizeof(hex), "%016llx",
                      (unsigned long long)hash);
        k.config = hex;
        return k;
    }

    ResultStore *store;
};

} // namespace

Context::Context(ResultStore *store, Executor *executor)
    : store(store), exec(executor)
{
    // Opt-in spill-to-store for streaming CPU traces: the env var's
    // value is the resident sealed-chunk budget per EventStream.
    // Installed here (not in trace/) so the sink can reuse the
    // figure result store; torn down in the destructor so tests that
    // build short-lived Contexts don't leak a dangling sink.
    const char *budget = std::getenv("RODINIA_TRACE_SPILL_CHUNKS");
    if (store && budget && *budget) {
        char *end = nullptr;
        unsigned long n = std::strtoul(budget, &end, 10);
        if (end != budget && *end == '\0' && n > 0) {
            prevSpillResident = trace::traceSpillResidentChunks();
            spillSink = std::make_unique<StoreChunkSink>(store);
            prevSpillSink =
                trace::setTraceSpill(spillSink.get(), uint32_t(n));
        }
    }
}

Context::~Context()
{
    if (spillSink)
        trace::setTraceSpill(prevSpillSink, prevSpillResident);
}

const core::CpuCharacterization &
Context::cpu(const std::string &name, core::Scale scale, int threads)
{
    std::ostringstream keyName;
    keyName << name << "/s" << int(scale) << "/t" << threads;
    Entry<core::CpuCharacterization> *entry;
    {
        std::lock_guard<std::mutex> lock(mu);
        auto &slot = cpuEntries[keyName.str()];
        if (!slot)
            slot =
                std::make_unique<Entry<core::CpuCharacterization>>();
        entry = slot.get();
    }
    // call_once keeps concurrent requesters from duplicating the
    // (expensive) characterization and propagates exceptions.
    std::call_once(entry->once, [&] {
        auto t0 = std::chrono::steady_clock::now();
        core::registerAllWorkloads();
        auto key = cpuCharKey(name, scale, threads);
        bool fromStore = false;
        if (store) {
            if (auto payload = store->load(key)) {
                if (parseCpuChar(*payload, entry->value))
                    fromStore = true;
                else
                    // Unusable entry: drop it so the recompute below
                    // republishes a good one instead of every future
                    // run re-hitting the corrupt bytes.
                    store->discard(key);
            }
        }
        if (!fromStore) {
            // Stall site + checkpoint sit after the store hit path:
            // a warm entry is always served, only real compute is
            // stallable/cancellable.
            support::FaultInjector::instance().maybeStall(
                "cpu:" + keyName.str());
            support::checkpointCancellation();
            auto w = core::Registry::instance().create(name);
            entry->value = core::characterizeCpu(*w, scale, threads);
            if (store)
                store->store(key, serializeCpuChar(entry->value));
            support::metrics::count("cachesim.chars_computed");
            support::metrics::countLabeled(
                "cachesim.sweep.line_accesses", keyName.str(),
                entry->value.sweepLineAccesses);
            support::metrics::countLabeled(
                "cachesim.sweep.wall_us", keyName.str(),
                uint64_t(entry->value.sweepReplaySeconds * 1e6),
                support::metrics::Stability::Volatile);
            {
                std::lock_guard<std::mutex> lock(mu);
                sweepTelemetry.push_back(
                    {keyName.str(),
                     entry->value.sweepLineAccesses,
                     entry->value.sweepReplaySeconds});
            }
        } else {
            support::metrics::count("cachesim.chars_served");
        }
        if (auto *tc = TraceCollector::active())
            tc->record("cachesim", "cpu-char",
                       TraceArgs()
                           .str("key", keyName.str())
                           .str("source",
                                fromStore ? "store" : "computed")
                           .json(),
                       t0, std::chrono::steady_clock::now());
    });
    return entry->value;
}

std::vector<core::CpuCharacterization>
Context::allCpu(core::Scale scale, int threads)
{
    auto names = allCpuWorkloads();
    std::vector<core::CpuCharacterization> out(names.size());
    // Fan out across the pool; slot-per-name keeps output order
    // identical to the serial loop.
    parallelFor(names.size(), [&](size_t i) {
        out[i] = cpu(names[i], scale, threads);
    });
    return out;
}

const gpusim::LaunchSequence &
Context::gpu(const std::string &name, core::Scale scale, int version)
{
    std::ostringstream keyName;
    keyName << name << "/s" << int(scale) << "/v" << version;
    Entry<gpusim::LaunchSequence> *entry;
    {
        std::lock_guard<std::mutex> lock(mu);
        auto &slot = gpuEntries[keyName.str()];
        if (!slot)
            slot = std::make_unique<Entry<gpusim::LaunchSequence>>();
        entry = slot.get();
    }
    std::call_once(entry->once, [&] {
        entry->value = recordGpuLaunch(name, scale, version);
    });
    return entry->value;
}

uint64_t
Context::recordingHash(const std::string &name, core::Scale scale,
                       int version)
{
    std::ostringstream keyName;
    keyName << name << "/s" << int(scale) << "/v" << version;
    Entry<uint64_t> *entry;
    {
        std::lock_guard<std::mutex> lock(mu);
        auto &slot = gpuHashEntries[keyName.str()];
        if (!slot)
            slot = std::make_unique<Entry<uint64_t>>();
        entry = slot.get();
    }
    std::call_once(entry->once, [&] {
        entry->value = gpusim::contentHash(gpu(name, scale, version));
        std::lock_guard<std::mutex> lock(mu);
        doneKeys.insert("rhash:" + keyName.str());
    });
    return entry->value;
}

bool
Context::gpuStatsWarm(const std::string &name, core::Scale scale,
                      int version, const gpusim::SimConfig &config)
{
    std::string fp = config.fingerprint();
    std::ostringstream recName;
    recName << name << "/s" << int(scale) << "/v" << version;
    std::string statsKey = recName.str() + "/" + fp;
    uint64_t recHash = 0;
    {
        std::lock_guard<std::mutex> lock(mu);
        if (doneKeys.count("stats:" + statsKey))
            return true;
        if (!doneKeys.count("rhash:" + recName.str()))
            return false;
        // Completed entries are immutable, so the value is readable
        // outside its call_once once the done key is present.
        recHash = gpuHashEntries.at(recName.str())->value;
    }
    if (!store || !store->enabled())
        return false;
    auto key = gpuStatsKey(name, scale, version, fp, recHash);
    std::error_code ec;
    return std::filesystem::exists(store->pathFor(key), ec);
}

const gpusim::KernelStats &
Context::gpuStats(const std::string &name, core::Scale scale,
                  int version, const gpusim::SimConfig &config)
{
    std::string fp = config.fingerprint();
    std::ostringstream keyName;
    keyName << name << "/s" << int(scale) << "/v" << version << "/"
            << fp;
    Entry<gpusim::KernelStats> *entry;
    {
        std::lock_guard<std::mutex> lock(mu);
        auto &slot = gpuStatsEntries[keyName.str()];
        if (!slot)
            slot = std::make_unique<Entry<gpusim::KernelStats>>();
        entry = slot.get();
    }
    std::call_once(entry->once, [&] {
        auto span0 = std::chrono::steady_clock::now();
        // The recording is needed even on a store hit: its content
        // hash is part of the key (a changed recording must not be
        // served stale stats).
        const gpusim::LaunchSequence &seq = gpu(name, scale, version);
        uint64_t rec_hash = recordingHash(name, scale, version);
        auto key = gpuStatsKey(name, scale, version, fp, rec_hash);
        bool fromStore = false;
        if (store) {
            if (auto payload = store->load(key)) {
                if (gpusim::parseKernelStats(*payload, entry->value))
                    fromStore = true;
                else
                    store->discard(key);
            }
        }
        if (!fromStore) {
            support::FaultInjector::instance().maybeStall(
                "sim:" + keyName.str());
            support::checkpointCancellation();
            auto t0 = std::chrono::steady_clock::now();
            gpusim::TimingSim sim(config);
            entry->value = sim.simulate(seq);
            std::chrono::duration<double> dt =
                std::chrono::steady_clock::now() - t0;
            if (store)
                store->store(
                    key, gpusim::serializeKernelStats(entry->value));
            uint64_t simUs = uint64_t(dt.count() * 1e6);
            support::metrics::count("gpusim.sims_run");
            support::metrics::count("gpusim.cycles",
                                    entry->value.cycles);
            support::metrics::countLabeled("gpusim.sim.cycles",
                                           keyName.str(),
                                           entry->value.cycles);
            support::metrics::countLabeled(
                "gpusim.sim.wall_us", keyName.str(), simUs,
                support::metrics::Stability::Volatile);
            support::metrics::observe("gpusim.sim_wall_us", simUs);
            {
                std::lock_guard<std::mutex> lock(mu);
                gpuSimTelemetry.push_back(
                    {keyName.str(), entry->value.cycles, dt.count()});
            }
        } else {
            nGpuStoreHits.fetch_add(1);
            support::metrics::count("gpusim.store_served");
        }
        if (auto *tc = TraceCollector::active()) {
            // Per-sim cycles, cache hit rates, and the stall
            // breakdown (channel occupancy, bank-conflict
            // serialization) straight from the timing model's
            // KernelStats — identical whether simulated or
            // store-served, so trace args stay deterministic.
            const gpusim::KernelStats &s = entry->value;
            tc->record("gpusim", "sim",
                       TraceArgs()
                           .str("key", keyName.str())
                           .str("source",
                                fromStore ? "store" : "simulated")
                           // Requested parallelism, not the helper
                           // count actually granted: the span must
                           // stay deterministic across budget states
                           // (results are identical either way).
                           .num("sim_threads",
                                uint64_t(config.effectiveSimThreads()))
                           .num("cycles", s.cycles)
                           .num("warp_insns", s.warpInstructions)
                           .num("channel_busy_cycles",
                                s.channelBusyCycles)
                           .num("bank_conflict_extra_cycles",
                                s.bankConflictExtraCycles)
                           .num("l1_hits", s.l1Hits)
                           .num("l1_misses", s.l1Misses)
                           .num("l2_hits", s.l2Hits)
                           .num("l2_misses", s.l2Misses)
                           .json(),
                       span0, std::chrono::steady_clock::now());
        }
        std::lock_guard<std::mutex> lock(mu);
        doneKeys.insert("stats:" + keyName.str());
    });
    return entry->value;
}

std::shared_ptr<Context::SimFlight>
Context::simFlightJoin(const std::string &name, core::Scale scale,
                       int version, const gpusim::SimConfig &config,
                       bool &leader)
{
    std::ostringstream keyName;
    keyName << name << "/s" << int(scale) << "/v" << version << "/"
            << config.fingerprint();
    std::lock_guard<std::mutex> lock(mu);
    auto &slot = simFlights[keyName.str()];
    if (slot) {
        leader = false;
        {
            std::lock_guard<std::mutex> flock(slot->mu);
            slot->followers += 1;
        }
        return slot;
    }
    leader = true;
    slot = std::make_shared<SimFlight>();
    return slot;
}

void
Context::simFlightComplete(const std::shared_ptr<SimFlight> &flight,
                           bool ok, const std::string &errorClass,
                           const std::string &message,
                           const std::string &payload)
{
    // Retire the registry entry FIRST: once followers can observe
    // done, a brand-new request for the same key must start its own
    // flight (served from the memo) rather than join a finished one.
    {
        std::lock_guard<std::mutex> lock(mu);
        for (auto it = simFlights.begin(); it != simFlights.end();
             ++it) {
            if (it->second == flight) {
                simFlights.erase(it);
                break;
            }
        }
    }
    {
        std::lock_guard<std::mutex> flock(flight->mu);
        flight->ok = ok;
        flight->errorClass = errorClass;
        flight->message = message;
        flight->payload = payload;
        flight->done = true;
    }
    flight->cv.notify_all();
}

size_t
Context::simFlightsInFlight() const
{
    std::lock_guard<std::mutex> lock(mu);
    return simFlights.size();
}

std::vector<Context::GpuSimTelemetry>
Context::gpuSimTelemetrySnapshot() const
{
    std::lock_guard<std::mutex> lock(mu);
    return gpuSimTelemetry;
}

std::vector<Context::SweepTelemetry>
Context::sweepTelemetrySnapshot() const
{
    std::lock_guard<std::mutex> lock(mu);
    return sweepTelemetry;
}

void
Context::parallelFor(size_t n, const std::function<void(size_t)> &fn)
{
    if (exec) {
        exec->parallelFor(n, fn);
        return;
    }
    for (size_t i = 0; i < n; ++i)
        fn(i);
}

} // namespace driver
} // namespace rodinia
