#include "driver/executor.hh"

#include <algorithm>
#include <atomic>
#include <chrono>
#include <condition_variable>
#include <deque>
#include <mutex>
#include <thread>
#include <utility>
#include <vector>

#include "driver/failure.hh"
#include "driver/tracing.hh"
#include "support/cancel.hh"
#include "support/faultinject.hh"
#include "support/metrics.hh"
#include "support/threadbudget.hh"

namespace rodinia {
namespace driver {

struct Executor::Impl
{
    using Task = std::function<void()>;

    /** One worker's deque. Owner pops the back; thieves take the
     *  front. Coarse jobs make a plain mutex the right tradeoff. */
    struct WorkerQueue
    {
        std::mutex mu;
        std::deque<Task> q;
    };

    std::vector<std::unique_ptr<WorkerQueue>> queues;
    std::vector<std::thread> workers;
    RetryPolicy policy;
    std::atomic<bool> stop{false};
    std::atomic<size_t> pending{0}; //!< queued, not-yet-claimed tasks
    std::atomic<size_t> cursor{0};  //!< round-robin slot for outsiders
    std::mutex idleMu;
    std::condition_variable idleCv;

    explicit Impl(int n);
    ~Impl();

    void submit(Task t);
    bool tryRunOne(int self);
    void workerLoop(int id);

    /**
     * Shared state of one run(). Owned by shared_ptr: every pool
     * task holds a reference, so a worker finishing the final job
     * can never observe destroyed state even though run() may have
     * already returned on the waiting thread.
     */
    /** Watchdog view of one in-flight job attempt. */
    struct RunningSlot
    {
        std::shared_ptr<support::CancelToken> token;
        std::chrono::steady_clock::time_point start;
        double deadlineMs = 0.0;
    };

    struct RunCtx
    {
        JobGraph *graph = nullptr;
        support::ProgressReporter *progress = nullptr;
        Impl *impl = nullptr;
        size_t total = 0;

        std::mutex mu;
        std::condition_variable cv;
        size_t finished = 0;
        std::vector<int> remaining;
        std::vector<char> depFailed;
        std::vector<size_t> skipCause; //!< failed dep behind depFailed
        std::vector<std::vector<size_t>> dependents;
        std::vector<RunningSlot> running; //!< guarded by mu
        /** When each job was (re)submitted to the pool; written
         *  before submit(), whose queue mutex publishes it to the
         *  worker that later claims the task. Feeds the queue-wait
         *  span and histogram. */
        std::vector<std::chrono::steady_clock::time_point> submitted;
    };

    static void executeJob(const std::shared_ptr<RunCtx> &ctx,
                           size_t id);
    static void completeJob(const std::shared_ptr<RunCtx> &ctx,
                            size_t id, JobStatus status, double wallMs,
                            const std::string &error, ErrorClass cls,
                            int attempts);
    static void watchdogLoop(const std::shared_ptr<RunCtx> &ctx);

    // Which executor (if any) owns the current thread. Lets submit()
    // push to the worker's own queue, and keeps queue indices
    // straight when several executors coexist (tests).
    static thread_local Impl *tlsOwner;
    static thread_local int tlsId;
};

thread_local Executor::Impl *Executor::Impl::tlsOwner = nullptr;
thread_local int Executor::Impl::tlsId = -1;

Executor::Impl::Impl(int n)
{
    if (n <= 0)
        n = int(std::thread::hardware_concurrency());
    if (n < 1)
        n = 1;
    queues.reserve(size_t(n));
    for (int i = 0; i < n; ++i)
        queues.push_back(std::make_unique<WorkerQueue>());
    workers.reserve(size_t(n));
    for (int i = 0; i < n; ++i)
        workers.emplace_back([this, i] { workerLoop(i); });
}

Executor::Impl::~Impl()
{
    stop.store(true);
    {
        std::lock_guard<std::mutex> lock(idleMu);
    }
    idleCv.notify_all();
    for (auto &t : workers)
        t.join();
}

void
Executor::Impl::submit(Task t)
{
    size_t slot;
    if (tlsOwner == this && tlsId >= 0)
        slot = size_t(tlsId); // keep spawned work local; thieves balance
    else
        slot = cursor.fetch_add(1) % queues.size();
    {
        std::lock_guard<std::mutex> lock(queues[slot]->mu);
        queues[slot]->q.push_back(std::move(t));
    }
    pending.fetch_add(1);
    {
        // Pairs with the predicate re-check in workerLoop: taking the
        // mutex here closes the missed-wakeup window between a
        // worker's predicate evaluation and its actual sleep.
        std::lock_guard<std::mutex> lock(idleMu);
    }
    idleCv.notify_one();
}

bool
Executor::Impl::tryRunOne(int self)
{
    Task task;
    if (self >= 0) {
        auto &own = *queues[size_t(self)];
        std::lock_guard<std::mutex> lock(own.mu);
        if (!own.q.empty()) {
            task = std::move(own.q.back());
            own.q.pop_back();
        }
    }
    if (!task) {
        size_t n = queues.size();
        size_t start = self >= 0 ? size_t(self) + 1 : cursor.load();
        for (size_t k = 0; k < n && !task; ++k) {
            auto &victim = *queues[(start + k) % n];
            std::lock_guard<std::mutex> lock(victim.mu);
            if (!victim.q.empty()) {
                task = std::move(victim.q.front());
                victim.q.pop_front();
                // Only workers steal; an outsider draining via the
                // cursor is load distribution, not a steal.
                if (self >= 0)
                    support::metrics::Registry::global().countAdd(
                        "executor.steals", "", 1,
                        support::metrics::Stability::Volatile);
            }
        }
    }
    if (!task)
        return false;
    pending.fetch_sub(1);
    // Reserve this context in the process-wide helper-thread budget
    // while the task runs: a GPU sim inside the task then sizes its
    // epoch-engine pool to the machine's *remaining* threads instead
    // of oversubscribing (ThreadBudget is the meeting point between
    // the executor's slots and gpusim's nested parallelism).
    struct BudgetMark
    {
        BudgetMark() { support::ThreadBudget::instance().markActive(); }
        ~BudgetMark() { support::ThreadBudget::instance().markIdle(); }
    } mark;
    task();
    return true;
}

void
Executor::Impl::workerLoop(int id)
{
    tlsOwner = this;
    tlsId = id;
    for (;;) {
        if (tryRunOne(id))
            continue;
        std::unique_lock<std::mutex> lock(idleMu);
        idleCv.wait(lock, [this] {
            return stop.load() || pending.load() > 0;
        });
        if (stop.load())
            return;
    }
}

Executor::Executor(int threads) : impl(std::make_unique<Impl>(threads))
{
}

Executor::~Executor() = default;

int
Executor::threadCount() const
{
    return int(impl->queues.size());
}

void
Executor::setRetryPolicy(const RetryPolicy &policy)
{
    impl->policy = policy;
}

RetryPolicy
Executor::retryPolicy() const
{
    return impl->policy;
}

// completeJob() records a job's outcome, releases dependents, and
// (for failure) cascades Skipped through the downstream graph.
void
Executor::Impl::completeJob(const std::shared_ptr<RunCtx> &ctx,
                            size_t id, JobStatus status, double wallMs,
                            const std::string &error, ErrorClass cls,
                            int attempts)
{
    std::vector<size_t> ready;
    std::vector<std::pair<size_t, std::string>> skips;
    bool lastJob = false;
    {
        std::lock_guard<std::mutex> lock(ctx->mu);
        Job &j = ctx->graph->job(id);
        j.status = status;
        j.wallMs = wallMs;
        j.error = error;
        j.errorClass = cls;
        j.attempts = attempts;
        for (size_t dep : ctx->dependents[id]) {
            if (status != JobStatus::Done && !ctx->depFailed[dep]) {
                ctx->depFailed[dep] = 1;
                ctx->skipCause[dep] = id; // first failed dep wins
            }
            if (--ctx->remaining[dep] == 0) {
                if (ctx->depFailed[dep])
                    skips.emplace_back(
                        dep,
                        "skipped: dependency '" +
                            ctx->graph->job(ctx->skipCause[dep]).name +
                            "' failed");
                else
                    ready.push_back(dep);
            }
        }
        ++ctx->finished;
        lastJob = ctx->finished == ctx->total;
    }
    if (ctx->progress) {
        if (status == JobStatus::Done)
            ctx->progress->jobFinished(ctx->graph->job(id).name,
                                       wallMs);
        else
            ctx->progress->jobFailed(ctx->graph->job(id).name, error,
                                     status == JobStatus::Skipped);
    }
    // Lifecycle counters go straight to the global registry, never
    // through a job transaction: a failed job must still count as
    // failed even though its work-body metrics are dropped.
    {
        auto &reg = support::metrics::Registry::global();
        const char *metric =
            status == JobStatus::Done      ? "executor.jobs_done"
            : status == JobStatus::Skipped ? "executor.jobs_skipped"
                                           : "executor.jobs_failed";
        reg.countAdd(metric, "", 1,
                     support::metrics::Stability::Stable);
    }
    for (auto &skip : skips)
        completeJob(ctx, skip.first, JobStatus::Skipped, 0.0,
                    skip.second, ErrorClass::Skipped, 0);
    for (size_t r : ready) {
        ctx->submitted[r] = std::chrono::steady_clock::now();
        ctx->impl->submit([ctx, r] { executeJob(ctx, r); });
    }
    if (lastJob) {
        // Notify under the lock so the waiter in run() cannot wake,
        // observe finished == total, and return between our predicate
        // store and the notify. The shared_ptr keeps RunCtx alive for
        // this frame even after run() returns.
        std::lock_guard<std::mutex> lock(ctx->mu);
        ctx->cv.notify_all();
    }
}

// executeJob() is the task body run on pool threads. Each attempt
// gets a fresh CancelToken registered in ctx->running so the
// watchdog can cancel it; transient failures retry with capped
// exponential backoff.
void
Executor::Impl::executeJob(const std::shared_ptr<RunCtx> &ctx, size_t id)
{
    std::string name;
    double deadlineMs = 0.0;
    int maxAttempts = 0;
    {
        std::lock_guard<std::mutex> lock(ctx->mu);
        Job &j = ctx->graph->job(id);
        j.status = JobStatus::Running;
        name = j.name;
        deadlineMs = j.softDeadlineMs;
        maxAttempts = j.maxAttempts;
    }
    const RetryPolicy policy = ctx->impl->policy;
    if (maxAttempts <= 0)
        maxAttempts = std::max(1, policy.maxAttempts);
    if (ctx->progress)
        ctx->progress->jobStarted(name);

    auto &injector = support::FaultInjector::instance();
    auto t0 = std::chrono::steady_clock::now();
    auto *tc = TraceCollector::active();
    auto &reg = support::metrics::Registry::global();
    constexpr auto kVolatile = support::metrics::Stability::Volatile;
    if (tc)
        tc->record("executor", "queue-wait",
                   TraceArgs().str("job", name).json(),
                   ctx->submitted[id], t0);
    reg.observe("executor.queue_wait_us", "",
                uint64_t(std::chrono::duration_cast<
                             std::chrono::microseconds>(
                             t0 - ctx->submitted[id])
                             .count()),
                kVolatile);
    // Work-body metrics accumulate in a per-job transaction that is
    // committed to the global registry only if the job eventually
    // succeeds (carried across retry attempts, since a later
    // attempt may memo-hit work a failed one finished). A job that
    // fails for good drops its transaction whole — no
    // partially-merged counters ever reach --stats/--metrics.
    support::metrics::Registry txn;
    JobStatus status = JobStatus::Done;
    std::string error;
    ErrorClass cls = ErrorClass::None;
    int attempt = 0;
    for (attempt = 1;; ++attempt) {
        auto token = std::make_shared<support::CancelToken>();
        {
            std::lock_guard<std::mutex> lock(ctx->mu);
            ctx->running[id] = {token,
                                std::chrono::steady_clock::now(),
                                deadlineMs};
        }
        auto attemptStart = std::chrono::steady_clock::now();
        auto attemptSpan = [&](const char *outcome) {
            auto end = std::chrono::steady_clock::now();
            if (tc)
                tc->record("executor", "attempt",
                           TraceArgs()
                               .str("job", name)
                               .num("attempt", uint64_t(attempt))
                               .str("outcome", outcome)
                               .json(),
                           attemptStart, end);
            reg.observe("executor.attempt_wall_us", "",
                        uint64_t(std::chrono::duration_cast<
                                     std::chrono::microseconds>(
                                     end - attemptStart)
                                     .count()),
                        kVolatile);
        };
        try {
            support::CancelScope scope(token.get());
            support::metrics::SinkScope msink(&txn);
            injector.maybeFailJob(name, attempt);
            injector.maybeStall("job:" + name);
            {
                // Armed inside the try so stack unwinding disarms
                // injection before the catch body allocates.
                support::AllocFaultScope allocFaults(name);
                ctx->graph->job(id).work();
            }
            attemptSpan("ok");
            break; // success
        } catch (...) {
            Classified c = classifyCurrentException();
            {
                std::lock_guard<std::mutex> lock(ctx->mu);
                ctx->running[id] = RunningSlot{};
            }
            if (c.transient && attempt < maxAttempts) {
                attemptSpan("retry");
                reg.countAdd("executor.retries", "", 1,
                             support::metrics::Stability::Stable);
                int shift = std::min(attempt - 1, 20);
                int backoffMs =
                    std::min(policy.backoffCapMs,
                             policy.backoffBaseMs << shift);
                if (backoffMs > 0) {
                    auto b0 = std::chrono::steady_clock::now();
                    std::this_thread::sleep_for(
                        std::chrono::milliseconds(backoffMs));
                    if (tc)
                        tc->record(
                            "executor", "backoff",
                            TraceArgs()
                                .str("job", name)
                                .num("attempt", uint64_t(attempt))
                                .json(),
                            b0, std::chrono::steady_clock::now());
                }
                continue;
            }
            attemptSpan(errorClassName(c.cls));
            status = JobStatus::Failed;
            error = c.message;
            cls = c.cls;
            break;
        }
    }
    if (status == JobStatus::Done)
        txn.drainInto(reg);
    {
        std::lock_guard<std::mutex> lock(ctx->mu);
        ctx->running[id] = RunningSlot{};
    }
    double ms = std::chrono::duration<double, std::milli>(
                    std::chrono::steady_clock::now() - t0)
                    .count();
    completeJob(ctx, id, status, ms, error, cls, attempt);
}

// watchdogLoop() runs on its own thread for graphs with soft
// deadlines: it wakes every ~20 ms, compares each running attempt's
// elapsed time against its deadline, and cancels overdue tokens.
// The cancel reason quotes the configured deadline (not the
// measured elapsed time) so failure messages — and therefore
// MISSING cells and resumed reruns — stay byte-deterministic.
void
Executor::Impl::watchdogLoop(const std::shared_ptr<RunCtx> &ctx)
{
    std::unique_lock<std::mutex> lock(ctx->mu);
    for (;;) {
        if (ctx->cv.wait_for(lock, std::chrono::milliseconds(20), [&] {
                return ctx->finished == ctx->total;
            }))
            return;
        auto now = std::chrono::steady_clock::now();
        for (size_t id = 0; id < ctx->running.size(); ++id) {
            RunningSlot &slot = ctx->running[id];
            if (!slot.token || slot.deadlineMs <= 0.0 ||
                slot.token->cancelled())
                continue;
            double elapsed =
                std::chrono::duration<double, std::milli>(now -
                                                          slot.start)
                    .count();
            if (elapsed <= slot.deadlineMs)
                continue;
            // CancelToken has its own (leaf) mutex; safe under mu.
            slot.token->cancel(
                "watchdog: job '" + ctx->graph->job(id).name +
                "' exceeded soft deadline of " +
                std::to_string(int64_t(slot.deadlineMs)) + " ms");
        }
    }
}

bool
Executor::run(JobGraph &graph, support::ProgressReporter *progress)
{
    const size_t total = graph.size();
    if (total == 0)
        return true;

    auto ctx = std::make_shared<Impl::RunCtx>();
    ctx->graph = &graph;
    ctx->progress = progress;
    ctx->impl = impl.get();
    ctx->total = total;
    ctx->remaining.resize(total);
    ctx->depFailed.assign(total, 0);
    ctx->skipCause.assign(total, 0);
    ctx->dependents.resize(total);
    ctx->running.assign(total, Impl::RunningSlot{});
    ctx->submitted.assign(total,
                          std::chrono::steady_clock::time_point{});

    // Roots are read off the immutable graph structure before any
    // submission. The previous version seeded by scanning the mutable
    // remaining[] counters while already-submitted roots could be
    // completing concurrently and releasing dependents — a dependent
    // whose counter hit zero mid-scan was submitted twice, finished
    // over-counted, and run() returned while workers still executed
    // (then-destroyed) stack state.
    std::vector<size_t> roots;
    for (size_t i = 0; i < total; ++i) {
        ctx->remaining[i] = int(graph.job(i).deps.size());
        for (size_t dep : graph.job(i).deps)
            ctx->dependents[dep].push_back(i);
        if (graph.job(i).deps.empty())
            roots.push_back(i);
    }

    bool anyDeadline = false;
    for (size_t i = 0; i < total; ++i)
        anyDeadline = anyDeadline || graph.job(i).softDeadlineMs > 0.0;
    std::thread watchdog;
    if (anyDeadline)
        watchdog = std::thread([ctx] { Impl::watchdogLoop(ctx); });

    for (size_t r : roots) {
        ctx->submitted[r] = std::chrono::steady_clock::now();
        impl->submit([ctx, r] { Impl::executeJob(ctx, r); });
    }

    {
        std::unique_lock<std::mutex> lock(ctx->mu);
        ctx->cv.wait(lock,
                     [&] { return ctx->finished == ctx->total; });
    }
    if (watchdog.joinable())
        watchdog.join();
    return graph.allDone();
}

void
Executor::parallelFor(size_t n, const std::function<void(size_t)> &fn)
{
    if (n == 0)
        return;
    if (n == 1) {
        fn(0);
        return;
    }

    struct PfState
    {
        std::atomic<size_t> next{0};
        std::atomic<size_t> active{0};
        size_t n = 0;
        const std::function<void(size_t)> *fn = nullptr;
        const support::CancelToken *token = nullptr;
        //! caller's metric-sink override (job txn), for helpers
        support::metrics::Registry *sink = nullptr;
        std::mutex mu;
        std::condition_variable cv;
        //! every failed iteration's (index, exception); guarded by mu
        std::vector<std::pair<size_t, std::exception_ptr>> errors;
    };
    auto st = std::make_shared<PfState>();
    st->n = n;
    st->fn = &fn;
    // Propagate the caller's cancel token onto helper threads so a
    // watchdog-cancelled job's nested sweep iterations observe the
    // cancellation at their own checkpoints.
    st->token = support::currentCancelToken();
    // Ditto for the metric sink: helper iterations of a job's sweep
    // must charge the same per-job transaction as the caller, or a
    // failed job would leak partial helper-side counters.
    st->sink = support::metrics::currentSinkOverride();

    // Claim protocol: active is raised *before* the claim so that
    // "next >= n && active == 0" proves no iteration is running or
    // can still start — late-arriving helper tasks bump active, see
    // an exhausted range, and leave without touching fn (whose
    // lifetime ends when parallelFor returns).
    auto drain = [](PfState *s) {
        support::CancelScope scope(s->token);
        support::metrics::SinkScope msink(s->sink);
        for (;;) {
            s->active.fetch_add(1);
            size_t i = s->next.fetch_add(1);
            if (i >= s->n) {
                // Exhausted: this is each drainer's single exit, so
                // the thread whose decrement lands on zero here is
                // the globally last one out and wakes the waiter.
                if (s->active.fetch_sub(1) == 1) {
                    std::lock_guard<std::mutex> lock(s->mu);
                    s->cv.notify_all();
                }
                return;
            }
            try {
                (*s->fn)(i);
            } catch (...) {
                {
                    std::lock_guard<std::mutex> lock(s->mu);
                    s->errors.emplace_back(i,
                                           std::current_exception());
                }
                s->next.store(s->n); // abandon unclaimed iterations
            }
            s->active.fetch_sub(1);
        }
    };

    // If a helper submission itself throws (e.g. injected allocation
    // failure), abandon the remaining range, let everything already
    // claimed settle, and surface the submission error.
    std::exception_ptr submitError;
    size_t helpers = std::min(size_t(threadCount()), n - 1);
    try {
        for (size_t h = 0; h < helpers; ++h)
            impl->submit([st, drain] { drain(st.get()); });
    } catch (...) {
        submitError = std::current_exception();
        st->next.store(st->n);
    }

    drain(st.get());

    {
        std::unique_lock<std::mutex> lock(st->mu);
        st->cv.wait(lock, [&] {
            return st->next.load() >= st->n && st->active.load() == 0;
        });
    }

    // All drainers have settled; errors is no longer concurrently
    // mutated. Sort by iteration index so aggregation is independent
    // of scheduling order.
    auto &errors = st->errors;
    std::sort(errors.begin(), errors.end(),
              [](const auto &a, const auto &b) {
                  return a.first < b.first;
              });
    if (errors.empty()) {
        if (submitError)
            std::rethrow_exception(submitError);
        return;
    }
    // Cancellation dominates: concurrent iterations of a cancelled
    // job all trip the same token, and the token's reason is the
    // deterministic root cause — an aggregate of "which iterations
    // happened to be in flight" would not be.
    for (auto &err : errors) {
        Classified c = classifyException(err.second);
        if (c.cls == ErrorClass::Deadline)
            std::rethrow_exception(err.second);
    }
    if (errors.size() == 1 && !submitError)
        std::rethrow_exception(errors[0].second); // keep the type
    size_t shown = 0;
    std::string what = std::to_string(errors.size()) + " of " +
                       std::to_string(n) +
                       " parallel iterations failed:";
    bool allTransient = !submitError;
    ErrorClass cls = ErrorClass::None;
    bool mixed = false;
    for (auto &err : errors) {
        Classified c = classifyException(err.second);
        allTransient = allTransient && c.transient;
        if (cls == ErrorClass::None)
            cls = c.cls;
        else if (cls != c.cls)
            mixed = true;
        if (shown < 4) {
            what += " [" + std::to_string(err.first) + "] " +
                    c.message + ";";
            ++shown;
        }
    }
    if (errors.size() > shown)
        what += " (+" + std::to_string(errors.size() - shown) +
                " more)";
    else
        what.pop_back(); // trailing ';'
    throw AggregateError(what, mixed ? ErrorClass::Workload : cls,
                         allTransient, errors.size());
}

} // namespace driver
} // namespace rodinia
