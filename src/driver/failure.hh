/**
 * @file
 * Failure taxonomy and structured failure records.
 *
 * Every exception escaping a job body is classified into an
 * ErrorClass (job.hh) with a transient/permanent verdict:
 *
 *   class      source exception                transient?
 *   --------   -----------------------------   ----------
 *   deadline   support::CancelledError         no (the retry would
 *                                              hit the same deadline)
 *   injected   support::InjectedFault          rule-controlled
 *   store-io   TransientError,                 yes
 *              std::filesystem::filesystem_error
 *   oom        std::bad_alloc                  yes
 *   workload   any other std::exception        no
 *   unknown    non-std::exception throw        no
 *
 * Transient failures are retried by the executor with capped
 * exponential backoff; permanent ones fail the job on first throw.
 * After a run, collectFailures() turns the graph's Failed/Skipped
 * jobs into Failure records for reporting.
 */

#ifndef RODINIA_DRIVER_FAILURE_HH
#define RODINIA_DRIVER_FAILURE_HH

#include <exception>
#include <stdexcept>
#include <string>
#include <vector>

#include "driver/job.hh"

namespace rodinia {
namespace driver {

/** Throw this from experiment code for errors worth retrying
 *  (store IO, publish races). Classified store-io/transient. */
class TransientError : public std::runtime_error
{
  public:
    using std::runtime_error::runtime_error;
};

/**
 * Several parallelFor iterations failed. what() lists the failing
 * iteration indices and messages (in index order, truncated past
 * the first few). Carries the dominant class and whether *every*
 * component was transient, so a retry decision on the aggregate is
 * as conservative as its least-retryable part.
 */
class AggregateError : public std::runtime_error
{
  public:
    AggregateError(const std::string &what, ErrorClass cls,
                   bool allTransient, size_t errorCount)
        : std::runtime_error(what), cls_(cls),
          allTransient_(allTransient), errorCount_(errorCount)
    {
    }

    ErrorClass errorClass() const { return cls_; }
    bool allTransient() const { return allTransient_; }
    size_t errorCount() const { return errorCount_; }

  private:
    ErrorClass cls_;
    bool allTransient_;
    size_t errorCount_;
};

/** Classification verdict for one exception. */
struct Classified
{
    ErrorClass cls = ErrorClass::Unknown;
    bool transient = false;
    std::string message;
};

/** Classify @p e per the table in the file comment. */
Classified classifyException(std::exception_ptr e);

/** Classify the in-flight exception (call from a catch block). */
Classified classifyCurrentException();

/** Structured record of one failed or skipped job. */
struct Failure
{
    std::string job;
    ErrorClass cls = ErrorClass::Unknown;
    std::string message;
    int attempts = 0;
    double elapsedMs = 0.0;

    /** "job 'x' [store-io, 3 attempts]: message" */
    std::string format() const;
};

/** Failure records for every Failed/Skipped job, in job-id order
 *  (deterministic across thread counts). */
std::vector<Failure> collectFailures(const JobGraph &graph);

} // namespace driver
} // namespace rodinia

#endif // RODINIA_DRIVER_FAILURE_HH
