/**
 * @file
 * Work-stealing executor for experiment job graphs.
 *
 * The executor owns a pool of worker threads, each with its own
 * double-ended task queue: a worker pushes and pops its own queue at
 * the back (LIFO, keeps caches warm for task trees) and steals from
 * the front of a victim's queue when its own runs dry (FIFO, takes
 * the oldest — typically largest — piece of work). Experiment jobs
 * are coarse (milliseconds to seconds), so the queues are guarded by
 * plain mutexes rather than lock-free Chase-Lev deques; the stealing
 * *discipline* is what matters for load balance here, not
 * nanosecond-scale pop latency.
 *
 * Two entry points:
 *
 *  - run(graph): execute a JobGraph respecting dependencies. Ready
 *    jobs are distributed across the pool; when a job finishes, its
 *    dependents with no remaining dependencies are released. A
 *    failed job marks every transitive dependent Skipped.
 *
 *  - parallelFor(n, fn): data-parallel helper, callable both from
 *    outside and from *inside* a running job (nested parallelism for
 *    a figure's inner config sweep). The calling thread participates
 *    in the loop, so progress never depends on pool availability and
 *    nesting cannot deadlock.
 *
 * Determinism: the executor guarantees nothing about execution
 * order, so deterministic output is the job author's contract —
 * every job/iteration writes its own result slot and the caller
 * assembles slots in a fixed order. All experiment code in this
 * repo follows that rule, which is what makes N-thread runs
 * byte-identical to serial ones.
 *
 * Failure discipline (see driver/failure.hh for the taxonomy):
 *
 *  - Isolation: a job exception fails that job (status, error
 *    message, error class, and attempt count recorded in the graph)
 *    and skips its transitive dependents; nothing is rethrown out of
 *    run() and unrelated jobs keep executing.
 *
 *  - Retries: transient classes (store IO, allocation pressure,
 *    injected-transient) are retried up to the RetryPolicy's attempt
 *    cap with capped exponential backoff; permanent classes fail on
 *    the first throw.
 *
 *  - Watchdog: when any job carries a softDeadlineMs, run() spawns a
 *    monitor thread that cancels over-deadline attempts via a
 *    per-attempt support::CancelToken. Cancellation is cooperative —
 *    the token is installed as the thread's CancelScope (and
 *    propagated to parallelFor helpers), and the sim/replay loops
 *    poll checkpointCancellation(), so a hung or runaway sim fails
 *    its own figure, not the process.
 */

#ifndef RODINIA_DRIVER_EXECUTOR_HH
#define RODINIA_DRIVER_EXECUTOR_HH

#include <functional>
#include <memory>

#include "driver/job.hh"
#include "support/progress.hh"

namespace rodinia {
namespace driver {

/** Retry policy for transient job failures. */
struct RetryPolicy
{
    int maxAttempts = 3;   //!< total attempts (1 = no retry)
    int backoffBaseMs = 10; //!< sleep before attempt 2
    int backoffCapMs = 250; //!< backoff ceiling (doubles per retry)
};

class Executor
{
  public:
    /**
     * @param threads worker thread count; <= 0 selects
     *        std::thread::hardware_concurrency()
     */
    explicit Executor(int threads = 0);
    ~Executor();

    Executor(const Executor &) = delete;
    Executor &operator=(const Executor &) = delete;

    int threadCount() const;

    /** Replace the transient-failure retry policy. Call before
     *  run(); not synchronized against an in-flight run. */
    void setRetryPolicy(const RetryPolicy &policy);
    RetryPolicy retryPolicy() const;

    /**
     * Execute every job in the graph, respecting dependencies.
     * Statuses, wall-clock times, and error messages are written
     * back into the graph. Not reentrant: one run() at a time.
     *
     * @param progress optional lifecycle sink (thread-safe calls)
     * @return true iff every job finished Done
     */
    bool run(JobGraph &graph,
             support::ProgressReporter *progress = nullptr);

    /**
     * Run fn(0..n-1) across the pool. The caller claims iterations
     * too, so this is safe to call from inside a job. Iterations
     * must be independent. On failure, every claimed iteration
     * settles and *all* exceptions are collected (remaining
     * iterations are abandoned): a lone exception is rethrown with
     * its original type; several become one AggregateError listing
     * the failed indices in index order; a cancellation
     * (CancelledError) dominates either way, since concurrent
     * iterations of a cancelled job all trip the same token and the
     * token's reason is the deterministic root cause. The caller's
     * active CancelToken (if any) is propagated to helper threads.
     */
    void parallelFor(size_t n, const std::function<void(size_t)> &fn);

  private:
    struct Impl;
    std::unique_ptr<Impl> impl;
};

} // namespace driver
} // namespace rodinia

#endif // RODINIA_DRIVER_EXECUTOR_HH
