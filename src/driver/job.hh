/**
 * @file
 * Experiment job graph.
 *
 * A Job is one unit of experiment work — a CPU characterization, a
 * GPU launch-sequence recording, a timing sweep, or the assembly of
 * a figure's text — expressed as a closure plus explicit
 * dependencies on earlier jobs. The JobGraph owns the jobs and the
 * dependency edges; driver::Executor schedules ready jobs across a
 * work-stealing thread pool and records per-job status and
 * wall-clock time back into the graph.
 *
 * Dependencies refer to already-added jobs (by the id returned from
 * add()), so a graph is acyclic by construction.
 */

#ifndef RODINIA_DRIVER_JOB_HH
#define RODINIA_DRIVER_JOB_HH

#include <cstddef>
#include <functional>
#include <string>
#include <vector>

namespace rodinia {
namespace driver {

/** Lifecycle of one job. */
enum class JobStatus {
    Pending, //!< waiting on dependencies
    Running, //!< executing on a pool thread
    Done,    //!< finished successfully
    Failed,  //!< the work function threw
    Skipped, //!< not run because a (transitive) dependency failed
};

/** Human-readable status tag ("done", "failed", ...). */
const char *jobStatusName(JobStatus status);

/**
 * Why a job failed. The class drives two policies: whether the
 * executor retries (transient classes: store IO, allocation
 * pressure, injected-transient), and how a missing figure cell is
 * rendered by `experiments --keep-going` (MISSING(<class>)).
 */
enum class ErrorClass {
    None,     //!< job did not fail
    Injected, //!< fault-injection harness (support::InjectedFault)
    StoreIo,  //!< result-store / filesystem IO (transient)
    Deadline, //!< cancelled by the watchdog (support::CancelledError)
    Oom,      //!< allocation failure (std::bad_alloc, transient)
    Workload, //!< the experiment body threw (permanent)
    Skipped,  //!< not run; a dependency failed
    Unknown,  //!< non-std::exception throw
};

/** Human-readable class tag ("injected", "store-io", ...). */
const char *errorClassName(ErrorClass cls);

/** One schedulable unit of experiment work. */
struct Job
{
    std::string name;            //!< display name, e.g. "cpu:kmeans"
    std::function<void()> work;  //!< the experiment body
    std::vector<size_t> deps;    //!< ids of jobs that must finish first

    // Scheduling policy (set by the graph author before run()).
    double softDeadlineMs = 0.0; //!< watchdog deadline per attempt;
                                 //!< <= 0 disables
    int maxAttempts = 0;         //!< retry cap for transient errors;
                                 //!< <= 0 uses the executor's policy

    // Filled in by the executor.
    JobStatus status = JobStatus::Pending;
    double wallMs = 0.0;         //!< execution wall-clock time
    std::string error;           //!< exception message when Failed
    ErrorClass errorClass = ErrorClass::None;
    int attempts = 0;            //!< attempts actually made
};

/**
 * An append-only DAG of jobs. Build the graph single-threaded, then
 * hand it to Executor::run(); the executor mutates job status
 * fields, so a graph describes exactly one run.
 */
class JobGraph
{
  public:
    /**
     * Add a job. Dependency ids must come from earlier add() calls
     * (checked; violations are fatal), which keeps the graph
     * trivially acyclic.
     *
     * @return the new job's id
     */
    size_t add(std::string name, std::function<void()> work,
               std::vector<size_t> deps = {});

    size_t size() const { return jobs_.size(); }
    bool empty() const { return jobs_.empty(); }

    Job &job(size_t id) { return jobs_.at(id); }
    const Job &job(size_t id) const { return jobs_.at(id); }

    std::vector<Job> &jobs() { return jobs_; }
    const std::vector<Job> &jobs() const { return jobs_; }

    /** Ids of jobs that directly depend on @p id. */
    std::vector<size_t> dependents(size_t id) const;

    /** True once every job is Done. */
    bool allDone() const;

    /** Total wall-clock milliseconds across all executed jobs. */
    double totalWorkMs() const;

  private:
    std::vector<Job> jobs_;
};

} // namespace driver
} // namespace rodinia

#endif // RODINIA_DRIVER_JOB_HH
