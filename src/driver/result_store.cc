#include "driver/result_store.hh"

#include <fcntl.h>
#include <unistd.h>

#include <chrono>
#include <fstream>
#include <sstream>
#include <thread>

#include "driver/tracing.hh"
#include "support/faultinject.hh"
#include "support/hash.hh"
#include "support/logging.hh"
#include "support/metrics.hh"

namespace {

uint64_t
elapsedUs(std::chrono::steady_clock::time_point t0)
{
    return uint64_t(
        std::chrono::duration_cast<std::chrono::microseconds>(
            std::chrono::steady_clock::now() - t0)
            .count());
}

} // namespace

namespace rodinia {
namespace driver {

ResultStore::ResultStore(std::filesystem::path dir, bool enabled,
                         int version)
    : dir(std::move(dir)), on(enabled), version(version)
{
    if (on)
        collectTmpGarbage();
}

// A crashed publish leaves `<entry>.tmp.<writer>` behind (write
// happened, rename did not). Those droppings are dead weight — a
// tmp name is never read and never reused unless the same writer id
// recurs — so sweep them when the store opens, before any publishes
// from this process can be in flight.
void
ResultStore::collectTmpGarbage()
{
    auto t0 = std::chrono::steady_clock::now();
    uint64_t collected = 0;
    std::error_code ec;
    // The ec overload degrades to an empty range when the directory
    // does not exist yet.
    for (const auto &entry :
         std::filesystem::directory_iterator(dir, ec)) {
        std::string name = entry.path().filename().string();
        if (name.find(".tmp.") == std::string::npos)
            continue;
        if (support::FaultInjector::instance().failFile(
                support::FaultOp::Unlink, name)) {
            warn("ResultStore: injected unlink failure for ",
                 entry.path().string());
            continue;
        }
        std::error_code rmEc;
        if (std::filesystem::remove(entry.path(), rmEc) && !rmEc) {
            nTmpCollected.fetch_add(1);
            ++collected;
        }
    }
    support::metrics::count("store.tmp_collected", collected);
    if (auto *tc = TraceCollector::active())
        tc->record("store", "gc",
                   TraceArgs().num("collected", collected).json(),
                   t0, std::chrono::steady_clock::now());
}

uint64_t
ResultStore::hashKey(const Key &key) const
{
    support::Fnv1a h;
    h.field(version)
        .field(key.kind)
        .field(key.workload)
        .field(key.scale)
        .field(key.threads)
        .field(key.config);
    return h.digest();
}

std::filesystem::path
ResultStore::pathFor(const Key &key) const
{
    std::ostringstream hex;
    uint64_t h = hashKey(key);
    hex << std::hex;
    hex.width(16);
    hex.fill('0');
    hex << h;
    // kind + workload prefix keeps the directory human-navigable;
    // the digest carries the actual identity.
    return dir /
           (key.kind + "_" + key.workload + "_" + hex.str() + ".txt");
}

std::optional<std::string>
ResultStore::load(const Key &key) const
{
    auto t0 = std::chrono::steady_clock::now();
    std::filesystem::path path = pathFor(key);
    std::optional<std::string> out;
    if (on) {
        std::ifstream in(path, std::ios::binary);
        if (in) {
            std::ostringstream buf;
            buf << in.rdbuf();
            if (in.good() || in.eof())
                out = buf.str();
        }
    }
    if (out) {
        nHits.fetch_add(1);
        support::metrics::count("store.hits");
    } else {
        nMisses.fetch_add(1);
        support::metrics::count("store.misses");
    }
    support::metrics::observe("store.load_us", elapsedUs(t0));
    if (auto *tc = TraceCollector::active())
        tc->record("store", "load",
                   TraceArgs()
                       .str("entry", path.filename().string())
                       .str("outcome", out ? "hit" : "miss")
                       .json(),
                   t0, std::chrono::steady_clock::now());
    return out;
}

namespace {

/** write(2) the whole buffer, then fsync. False on any failure.
 *  @p faultKey names the destination entry for injected write/fsync
 *  failures (keyed by the entry, not the per-writer tmp name, so
 *  injection decisions are stable across thread ids). */
bool
writeAllDurably(const std::filesystem::path &path,
                const std::string &payload,
                const std::string &faultKey)
{
    auto &injector = support::FaultInjector::instance();
    int fd = ::open(path.c_str(), O_WRONLY | O_CREAT | O_TRUNC, 0644);
    if (fd < 0)
        return false;
    if (injector.failFile(support::FaultOp::Write, faultKey)) {
        // Model a mid-write crash: the tmp exists (possibly with
        // partial bytes) but the payload never made it.
        ::close(fd);
        return false;
    }
    const char *p = payload.data();
    size_t left = payload.size();
    while (left > 0) {
        ssize_t n = ::write(fd, p, left);
        if (n < 0) {
            if (errno == EINTR)
                continue;
            ::close(fd);
            return false;
        }
        p += n;
        left -= size_t(n);
    }
    bool ok = false;
    if (!injector.failFile(support::FaultOp::Fsync, faultKey)) {
        auto f0 = std::chrono::steady_clock::now();
        ok = ::fsync(fd) == 0;
        rodinia::support::metrics::observe("store.fsync_us",
                                           elapsedUs(f0));
    }
    return (::close(fd) == 0) && ok;
}

/** fsync a directory so a rename inside it survives a crash. */
bool
syncDirectory(const std::filesystem::path &dir)
{
    int fd = ::open(dir.c_str(), O_RDONLY | O_DIRECTORY);
    if (fd < 0)
        return false;
    bool ok = ::fsync(fd) == 0;
    ::close(fd);
    return ok;
}

} // namespace

bool
ResultStore::store(const Key &key, const std::string &payload) const
{
    if (!on)
        return true; // disabled stores have nothing to publish
    auto t0 = std::chrono::steady_clock::now();
    bool ok = doStore(key, payload);
    support::metrics::count(ok ? "store.publishes"
                               : "store.publish_failures");
    support::metrics::observe("store.publish_us", elapsedUs(t0));
    if (auto *tc = TraceCollector::active())
        tc->record("store", "publish",
                   TraceArgs()
                       .str("entry", pathFor(key).filename().string())
                       .str("outcome", ok ? "ok" : "fail")
                       .json(),
                   t0, std::chrono::steady_clock::now());
    return ok;
}

bool
ResultStore::doStore(const Key &key, const std::string &payload) const
{
    std::error_code ec;
    std::filesystem::create_directories(dir, ec);
    if (ec) {
        warn("ResultStore: cannot create ", dir.string(), ": ",
             ec.message());
        nPublishFailures.fetch_add(1);
        return false;
    }
    std::filesystem::path dest = pathFor(key);
    // Unique temp name per writer so concurrent stores of the same
    // key never scribble on one another's half-written file.
    std::ostringstream tmpName;
    tmpName << dest.filename().string() << ".tmp."
            << std::hash<std::thread::id>{}(std::this_thread::get_id());
    std::filesystem::path tmp = dir / tmpName.str();
    if (!writeAllDurably(tmp, payload, dest.filename().string())) {
        warn("ResultStore: cannot write ", tmp.string());
        std::filesystem::remove(tmp, ec);
        nPublishFailures.fetch_add(1);
        return false;
    }
    if (support::FaultInjector::instance().failFile(
            support::FaultOp::Rename, dest.filename().string())) {
        warn("ResultStore: injected rename failure for ",
             dest.string());
        std::filesystem::remove(tmp, ec);
        nPublishFailures.fetch_add(1);
        return false;
    }
    std::filesystem::rename(tmp, dest, ec);
    if (ec) {
        warn("ResultStore: rename ", tmp.string(), " -> ",
             dest.string(), ": ", ec.message());
        std::filesystem::remove(tmp, ec);
        nPublishFailures.fetch_add(1);
        return false;
    }
    if (!syncDirectory(dir))
        warn("ResultStore: cannot fsync ", dir.string());
    return true;
}

void
ResultStore::discard(const Key &key) const
{
    if (!on)
        return;
    std::filesystem::path path = pathFor(key);
    if (support::FaultInjector::instance().failFile(
            support::FaultOp::Unlink, path.filename().string())) {
        warn("ResultStore: injected unlink failure for ",
             path.string());
        return; // entry survives; a retried discard starts over
    }
    std::error_code ec;
    if (!std::filesystem::remove(path, ec) || ec)
        return; // nothing removed — nothing to reclassify
    // The load that surfaced the bad payload was counted as a hit;
    // the caller is about to recompute, so reclassify it. The
    // registry keeps raw observed outcomes instead (counters never
    // decrement); discards are visible as their own metric.
    nHits.fetch_sub(1);
    nMisses.fetch_add(1);
    support::metrics::count("store.discards");
}

ResultStore::Key
cpuCharKey(const std::string &workload, core::Scale scale, int threads)
{
    ResultStore::Key key;
    key.kind = "cpuchar";
    key.workload = workload;
    key.scale = int(scale);
    key.threads = threads;
    key.config = ""; // CPU characterizations have no sim config
    return key;
}

ResultStore::Key
gpuStatsKey(const std::string &workload, core::Scale scale,
            int version, const std::string &config_fingerprint,
            uint64_t recording_hash)
{
    ResultStore::Key key;
    key.kind = "gpustats";
    key.workload = workload;
    key.scale = int(scale);
    key.threads = version;
    std::ostringstream cfg;
    cfg << config_fingerprint << "|rec=" << std::hex
        << recording_hash;
    key.config = cfg.str();
    return key;
}

std::string
serializeCpuChar(const core::CpuCharacterization &c)
{
    std::ostringstream outf;
    outf << "cpuchar " << c.name << " " << c.threads << "\n"
         << int(c.suite) << "\n";
    outf << c.mix.intOps << " " << c.mix.fpOps << " " << c.mix.branches
         << " " << c.mix.loads << " " << c.mix.stores << "\n";
    outf << c.memEvents << " " << c.instructionSites << " "
         << c.instructionBlocks << " " << c.dataPages << " "
         << c.checksum << "\n";
    outf << c.sweep.size() << "\n";
    for (size_t i = 0; i < c.sweep.size(); ++i) {
        const auto &s = c.sweep[i];
        outf << c.cacheSizes[i] << " " << s.accesses << " " << s.misses
             << " " << s.evictions << " " << s.residencies << " "
             << s.sharedResidencies << " " << s.accessesToShared << " "
             << s.writesToShared;
        for (uint64_t d : s.hitDepth)
            outf << " " << d;
        outf << "\n";
    }
    return outf.str();
}

bool
parseCpuChar(const std::string &payload, core::CpuCharacterization &out)
{
    std::istringstream in(payload);
    std::string tag;
    size_t sweeps = 0;
    in >> tag >> out.name >> out.threads;
    if (tag != "cpuchar")
        return false;
    int suite;
    in >> suite;
    out.suite = core::Suite(suite);
    in >> out.mix.intOps >> out.mix.fpOps >> out.mix.branches >>
        out.mix.loads >> out.mix.stores;
    in >> out.memEvents >> out.instructionSites >>
        out.instructionBlocks >> out.dataPages >> out.checksum;
    in >> sweeps;
    if (!in || sweeps > 1024)
        return false;
    out.cacheSizes.resize(sweeps);
    out.sweep.resize(sweeps);
    for (size_t i = 0; i < sweeps; ++i) {
        auto &s = out.sweep[i];
        in >> out.cacheSizes[i] >> s.accesses >> s.misses >>
            s.evictions >> s.residencies >> s.sharedResidencies >>
            s.accessesToShared >> s.writesToShared;
        for (auto &d : s.hitDepth)
            in >> d;
    }
    return bool(in);
}

} // namespace driver
} // namespace rodinia
