#include "driver/failure.hh"

#include <filesystem>
#include <new>

#include "support/cancel.hh"
#include "support/faultinject.hh"

namespace rodinia {
namespace driver {

Classified
classifyException(std::exception_ptr e)
{
    if (!e)
        return {ErrorClass::None, false, ""};
    try {
        std::rethrow_exception(e);
    } catch (const support::CancelledError &ex) {
        return {ErrorClass::Deadline, false, ex.what()};
    } catch (const support::InjectedFault &ex) {
        return {ErrorClass::Injected, ex.transient(), ex.what()};
    } catch (const TransientError &ex) {
        return {ErrorClass::StoreIo, true, ex.what()};
    } catch (const std::filesystem::filesystem_error &ex) {
        return {ErrorClass::StoreIo, true, ex.what()};
    } catch (const AggregateError &ex) {
        return {ex.errorClass(), ex.allTransient(), ex.what()};
    } catch (const std::bad_alloc &ex) {
        return {ErrorClass::Oom, true, ex.what()};
    } catch (const std::exception &ex) {
        return {ErrorClass::Workload, false, ex.what()};
    } catch (...) {
        return {ErrorClass::Unknown, false, "unknown exception"};
    }
}

Classified
classifyCurrentException()
{
    return classifyException(std::current_exception());
}

std::string
Failure::format() const
{
    std::string out = "job '" + job + "' [";
    out += errorClassName(cls);
    if (attempts > 0) {
        out += ", ";
        out += std::to_string(attempts);
        out += attempts == 1 ? " attempt" : " attempts";
    }
    out += "]: ";
    out += message;
    return out;
}

std::vector<Failure>
collectFailures(const JobGraph &graph)
{
    std::vector<Failure> out;
    for (const Job &j : graph.jobs()) {
        if (j.status != JobStatus::Failed &&
            j.status != JobStatus::Skipped)
            continue;
        Failure f;
        f.job = j.name;
        f.cls = j.errorClass;
        f.message = j.error;
        f.attempts = j.attempts;
        f.elapsedMs = j.wallMs;
        out.push_back(std::move(f));
    }
    return out;
}

} // namespace driver
} // namespace rodinia
