/**
 * @file
 * The paper's figures and tables as driver experiments.
 *
 * Every figure/table reproduced from the paper is one FigureDef: an
 * id for the CLI, the bench harness title, a builder that renders
 * the figure text from a shared Context, and the figure's inputs
 * (whether it consumes the 25 CPU characterizations, and which GPU
 * launch recordings it replays). The experiments CLI turns those
 * declared inputs into job-graph dependencies so characterizations
 * and recordings are shared across figures; the bench binaries call
 * the same builders one figure at a time, which is what keeps the
 * two execution paths byte-identical.
 *
 * Builders write per-iteration results into preallocated slots and
 * assemble output in a fixed order, so running them on the pool
 * (Context::parallelFor) cannot change the produced text.
 */

#ifndef RODINIA_DRIVER_FIGURES_HH
#define RODINIA_DRIVER_FIGURES_HH

#include <string>
#include <vector>

#include "driver/context.hh"

namespace rodinia {
namespace driver {

/**
 * The problem-size tier the figure builders characterize and replay
 * (defaults to Scale::Full). The experiments CLI sets this from its
 * --scale flag before building anything; ablation and sensitivity
 * figures that intentionally run at Scale::Small are unaffected.
 * Changing the scale invalidates FigureDef pointers previously
 * returned by allFigures()/findFigure(), so set it once at startup.
 */
core::Scale primaryScale();
void setPrimaryScale(core::Scale scale);

/** One GPU launch recording a figure replays. */
struct GpuDep
{
    std::string workload;
    core::Scale scale = core::Scale::Full;
    int version = 0; //!< 0 = shipped (most optimized) version
};

/** One reproducible figure/table of the paper. */
struct FigureDef
{
    std::string id;    //!< CLI id, e.g. "fig4"
    std::string title; //!< harness title, e.g. "fig4/channels"
    std::string (*build)(Context &ctx);
    bool needsAllCpu = false;     //!< consumes the 25 characterizations
    std::vector<GpuDep> gpuDeps;  //!< recordings the builder replays
};

/** Every figure in paper order. */
const std::vector<FigureDef> &allFigures();

/** Find by CLI id; nullptr if unknown. */
const FigureDef *findFigure(const std::string &id);

/**
 * Run a figure's builder with observability: a "figure" trace span
 * named after the figure id, a figures.built counter, and a
 * per-figure wall-time gauge (figures.wall_us, labeled by id).
 * Returns exactly def.build(ctx) — instrumentation never alters the
 * figure text, so this wrapper and a direct builder call stay
 * byte-identical.
 */
std::string buildFigure(const FigureDef &def, Context &ctx);

/**
 * Render an ASCII scatter plot (Figures 7-9): Rodinia points print
 * as 'x', Parsec as 'o', StreamCluster (both suites) as '#'; a
 * legend lists the exact coordinates.
 */
std::string renderScatter(const std::vector<double> &xs,
                          const std::vector<double> &ys,
                          const std::vector<std::string> &labels,
                          const std::vector<core::Suite> &suites,
                          int width = 64, int height = 20);

} // namespace driver
} // namespace rodinia

#endif // RODINIA_DRIVER_FIGURES_HH
