#include "driver/figures.hh"

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <sstream>
#include <tuple>

#include "driver/tracing.hh"
#include "gpusim/recorder.hh"
#include "gpusim/replay.hh"
#include "gpusim/timing.hh"
#include "stats/cluster.hh"
#include "stats/pca.hh"
#include "stats/plackett_burman.hh"
#include "support/metrics.hh"
#include "support/rng.hh"
#include "support/table.hh"

namespace rodinia {
namespace driver {

namespace {

core::Scale &
primaryScaleSlot()
{
    static core::Scale scale = core::Scale::Full;
    return scale;
}

} // namespace

core::Scale
primaryScale()
{
    return primaryScaleSlot();
}

void
setPrimaryScale(core::Scale scale)
{
    primaryScaleSlot() = scale;
}

std::string
renderScatter(const std::vector<double> &xs,
              const std::vector<double> &ys,
              const std::vector<std::string> &labels,
              const std::vector<core::Suite> &suites, int width,
              int height)
{
    if (xs.empty())
        return "";
    double xmin = xs[0], xmax = xs[0], ymin = ys[0], ymax = ys[0];
    for (size_t i = 0; i < xs.size(); ++i) {
        xmin = std::min(xmin, xs[i]);
        xmax = std::max(xmax, xs[i]);
        ymin = std::min(ymin, ys[i]);
        ymax = std::max(ymax, ys[i]);
    }
    double xspan = std::max(xmax - xmin, 1e-9);
    double yspan = std::max(ymax - ymin, 1e-9);

    std::vector<std::string> grid(height, std::string(width, ' '));
    for (size_t i = 0; i < xs.size(); ++i) {
        int cx = int((xs[i] - xmin) / xspan * (width - 1) + 0.5);
        int cy = int((ys[i] - ymin) / yspan * (height - 1) + 0.5);
        char mark = suites[i] == core::Suite::Rodinia ? 'x'
                    : suites[i] == core::Suite::Parsec ? 'o'
                                                       : '#';
        char &cell = grid[height - 1 - cy][cx];
        cell = (cell == ' ') ? mark : '*';
    }

    std::ostringstream os;
    os << "  PC2 ^   (x = Rodinia, o = Parsec, # = both, * = overlap)\n";
    for (const auto &row : grid)
        os << "      |" << row << "\n";
    os << "      +" << std::string(width, '-') << "> PC1\n\n";
    for (size_t i = 0; i < labels.size(); ++i) {
        char buf[96];
        std::snprintf(buf, sizeof(buf), "  %-14s %-6s (%7.2f, %7.2f)\n",
                      labels[i].c_str(),
                      core::suiteTag(suites[i]).c_str(), xs[i], ys[i]);
        os << buf;
    }
    return os.str();
}

namespace {

// ---------------------------------------------------------------
// Table I / IV / V: suite inventory from the registry metadata.
// ---------------------------------------------------------------

std::string
buildTable1(Context &ctx)
{
    (void)ctx;
    core::registerAllWorkloads();
    auto &reg = core::Registry::instance();
    std::ostringstream os;

    Table t1("Table I: Rodinia applications and kernels");
    t1.setHeader({"Application", "Dwarf", "Domain", "Problem size"});
    for (const auto &info : reg.all()) {
        if (info.suite == core::Suite::Rodinia ||
            info.suite == core::Suite::Both)
            t1.addRow({info.displayName, info.dwarf, info.domain,
                       info.problemSize});
    }
    os << t1.render() << "\n";

    Table t5("Table V: Parsec applications (analog implementations)");
    t5.setHeader({"Application", "Domain", "Problem size",
                  "Description"});
    for (const auto &info : reg.all()) {
        if (info.suite == core::Suite::Parsec ||
            info.suite == core::Suite::Both)
            t5.addRow({info.displayName, info.domain, info.problemSize,
                       info.description});
    }
    os << t5.render() << "\n";

    Table t4("Table IV: suite comparison");
    t4.setHeader({"Feature", "Parsec", "Rodinia"});
    t4.addRow({"Platform", "CPU", "CPU and GPU"});
    t4.addRow({"Machine Model", "Shared Memory",
               "Shared Memory and Offloading"});
    t4.addRow({"Application Count", "13 workloads", "12 workloads"});
    t4.addRow({"Incremental Versions", "No",
               "Yes (NW, SRAD, Leukocyte, LUD)"});
    t4.addRow({"Memory Space", "HW Cache", "HW and SW Caches"});
    t4.addRow({"Synchronization", "Barriers, Locks, Pipelines",
               "Barriers"});
    os << t4.render();
    return os.str();
}

// ---------------------------------------------------------------
// Figure 1: IPC on the 8- and 28-shader configurations. The 12
// benchmarks x 2 shader counts fan out across the pool through
// Context::gpuStats (memoized + store-cached); the table is
// assembled serially in figure order from per-iteration slots.
// ---------------------------------------------------------------

std::string
buildFig1(Context &ctx)
{
    static constexpr int kShaders[2] = {8, 28};
    const auto &order = figureOrder();

    std::vector<std::array<double, 2>> ipc(order.size());
    ctx.parallelFor(order.size() * 2, [&](size_t idx) {
        size_t b = idx / 2;
        size_t si = idx % 2;
        const auto &st =
            ctx.gpuStats(order[b].first, primaryScale(), 0,
                         gpusim::SimConfig::shaders(kShaders[si]));
        ipc[b][si] = st.ipc();
    });

    Table t("Figure 1: IPC, 8-shader vs 28-shader configurations");
    t.setHeader({"Benchmark", "IPC(8)", "IPC(28)", "Scaling"});
    std::ostringstream bars;
    double maxIpc = 0.0;
    for (size_t b = 0; b < order.size(); ++b)
        maxIpc = std::max(maxIpc, ipc[b][1]);

    for (size_t b = 0; b < order.size(); ++b) {
        const auto &label = order[b].second;
        double i8 = ipc[b][0], i28 = ipc[b][1];
        t.addRow({label, Table::fmt(i8, 1), Table::fmt(i28, 1),
                  Table::fmt(i28 / std::max(i8, 1e-9), 2) + "x"});
        bars << barRow(label + " (28)", i28, maxIpc) << "\n";
        bars << barRow(label + " (8)", i8, maxIpc) << "\n";
    }
    return t.render() + "\n" + bars.str();
}

// ---------------------------------------------------------------
// Figure 2: memory-operation breakdown by space.
// ---------------------------------------------------------------

std::string
buildFig2(Context &ctx)
{
    using gpusim::Space;
    Table t("Figure 2: memory operation breakdown (percent)");
    t.setHeader({"Benchmark", "Shared", "Tex", "Const", "Param",
                 "Global/Local"});
    for (const auto &[name, label] : figureOrder()) {
        const auto &seq = ctx.gpu(name, primaryScale());
        auto stats = gpusim::analyzeTrace(seq);
        auto f = stats.memOpFractions();
        double globloc =
            f[size_t(Space::Global)] + f[size_t(Space::Local)];
        t.addRow({label, Table::pct(f[size_t(Space::Shared)]),
                  Table::pct(f[size_t(Space::Tex)]),
                  Table::pct(f[size_t(Space::Const)]),
                  Table::pct(f[size_t(Space::Param)]),
                  Table::pct(globloc)});
    }
    return t.render();
}

// ---------------------------------------------------------------
// Figure 3: warp-occupancy histogram.
// ---------------------------------------------------------------

std::string
buildFig3(Context &ctx)
{
    Table t("Figure 3: warp occupancy (percent of warp instructions)");
    t.setHeader({"Benchmark", "1-8", "9-16", "17-24", "25-32",
                 "avg active"});
    for (const auto &[name, label] : figureOrder()) {
        const auto &seq = ctx.gpu(name, primaryScale());
        auto stats = gpusim::analyzeTrace(seq);
        auto f = stats.occupancyFractions();
        t.addRow({label, Table::pct(f[0]), Table::pct(f[1]),
                  Table::pct(f[2]), Table::pct(f[3]),
                  Table::fmt(stats.avgWarpOccupancy(), 1)});
    }
    return t.render();
}

// ---------------------------------------------------------------
// Figure 4: speedup vs memory channels. The 12 benchmarks x 3
// channel configurations fan out across the pool; every iteration
// writes its own slot, and the table is assembled in figure order.
// ---------------------------------------------------------------

std::string
buildFig4(Context &ctx)
{
    static constexpr int kChannels[3] = {4, 6, 8};
    const auto &order = figureOrder();

    struct Slot
    {
        double cycles[3] = {0.0, 0.0, 0.0};
        double util4 = 0.0;
    };
    std::vector<Slot> slots(order.size());

    ctx.parallelFor(order.size() * 3, [&](size_t idx) {
        size_t b = idx / 3;
        size_t ci = idx % 3;
        gpusim::SimConfig cfg = gpusim::SimConfig::gpgpusimDefault();
        cfg.numChannels = kChannels[ci];
        const auto &st =
            ctx.gpuStats(order[b].first, primaryScale(), 0, cfg);
        slots[b].cycles[ci] = double(st.cycles);
        if (kChannels[ci] == 4)
            slots[b].util4 = st.bwUtilization();
    });

    Table t("Figure 4: speedup vs channels (normalized to 4 channels)");
    t.setHeader({"Benchmark", "4ch", "6ch", "8ch", "BW util @4ch"});
    for (size_t b = 0; b < order.size(); ++b) {
        const auto &s = slots[b];
        t.addRow({order[b].second, "1.00",
                  Table::fmt(s.cycles[0] / s.cycles[1], 2),
                  Table::fmt(s.cycles[0] / s.cycles[2], 2),
                  Table::pct(s.util4)});
    }
    return t.render();
}

// ---------------------------------------------------------------
// Figure 5: Fermi (GTX 480) vs GTX 280. 12 benchmarks x 3 GPU
// configurations fan out across the pool into per-benchmark slots.
// ---------------------------------------------------------------

std::string
buildFig5(Context &ctx)
{
    const auto &order = figureOrder();
    auto configFor = [](size_t ci) {
        return ci == 0   ? gpusim::SimConfig::gtx280()
               : ci == 1 ? gpusim::SimConfig::gtx480(false)
                         : gpusim::SimConfig::gtx480(true);
    };

    std::vector<std::array<double, 3>> us(order.size());
    ctx.parallelFor(order.size() * 3, [&](size_t idx) {
        size_t b = idx / 3;
        size_t ci = idx % 3;
        const auto &st = ctx.gpuStats(order[b].first,
                                      primaryScale(), 0,
                                      configFor(ci));
        us[b][ci] = st.timeUs();
    });

    Table t("Figure 5: kernel time normalized to GTX 280");
    t.setHeader({"Benchmark", "GTX280", "GTX480 shared-bias",
                 "GTX480 L1-bias", "L1-bias gain"});
    for (size_t b = 0; b < order.size(); ++b) {
        double t280 = us[b][0], tShared = us[b][1], tL1 = us[b][2];
        double gain = (tShared - tL1) / tShared;
        t.addRow({order[b].second, "1.00",
                  Table::fmt(tShared / t280, 2),
                  Table::fmt(tL1 / t280, 2), Table::pct(gain)});
    }
    return t.render();
}

// ---------------------------------------------------------------
// Table III: incrementally optimized versions.
// ---------------------------------------------------------------

std::string
buildTable3(Context &ctx)
{
    using gpusim::Space;
    // srad/leukocyte first, then the nw/lud incremental versions the
    // release also ships; 8 (benchmark, version) combos fan out.
    static const std::pair<const char *, int> kCombos[] = {
        {"srad", 1},      {"srad", 2},
        {"leukocyte", 1}, {"leukocyte", 2},
        {"nw", 1},        {"nw", 2},
        {"lud", 1},       {"lud", 2},
    };
    constexpr size_t kNumCombos = sizeof(kCombos) / sizeof(kCombos[0]);

    struct Slot
    {
        gpusim::KernelStats st;
        std::array<double, 7> mix{};
    };
    std::vector<Slot> slots(kNumCombos);
    ctx.parallelFor(kNumCombos, [&](size_t i) {
        const auto &[name, version] = kCombos[i];
        slots[i].st =
            ctx.gpuStats(name, primaryScale(), version,
                         gpusim::SimConfig::gpgpusimDefault());
        slots[i].mix = gpusim::analyzeTrace(
                           ctx.gpu(name, primaryScale(), version))
                           .memOpFractions();
    });

    Table t("Table III: incrementally optimized SRAD and Leukocyte");
    t.setHeader({"Benchmark", "Version", "IPC", "BW util", "Shared",
                 "Global", "Const", "Tex"});
    for (size_t i = 0; i < kNumCombos; ++i) {
        const auto &[name, version] = kCombos[i];
        const auto &st = slots[i].st;
        const auto &mix = slots[i].mix;
        t.addRow({name, "v" + std::to_string(version),
                  Table::fmt(st.ipc(), 0),
                  Table::pct(st.bwUtilization(), 0),
                  Table::pct(mix[size_t(Space::Shared)]),
                  Table::pct(mix[size_t(Space::Global)]),
                  Table::pct(mix[size_t(Space::Const)]),
                  Table::pct(mix[size_t(Space::Tex)])});
    }
    return t.render();
}

// ---------------------------------------------------------------
// Section III-E: Plackett-Burman sensitivity. The 12 benchmarks x
// 12 design runs fan out across the pool into per-run response
// slots; effect ranking and the Borda aggregation stay serial and
// ordered, so pool execution cannot change the output.
// ---------------------------------------------------------------

const std::vector<std::string> &
pbFactorNames()
{
    static const std::vector<std::string> names = {
        "core-clock",   "simd-width",  "shared-size",
        "bank-conflict", "regfile",    "threads/SM",
        "mem-clock",    "channels",    "bus-width",
    };
    return names;
}

gpusim::SimConfig
pbConfigFor(const std::vector<int> &signs)
{
    gpusim::SimConfig cfg = gpusim::SimConfig::gpgpusimDefault();
    cfg.coreClockGhz = signs[0] > 0 ? 1.5 : 1.2;
    cfg.simdWidth = signs[1] > 0 ? 32 : 16;
    cfg.sharedMemPerSm = signs[2] > 0 ? 32 * 1024 : 16 * 1024;
    cfg.bankConflictsEnabled = signs[3] > 0;
    cfg.regFileSize = signs[4] > 0 ? 32768 : 16384;
    cfg.maxThreadsPerSm = signs[5] > 0 ? 2048 : 1024;
    cfg.memClockGhz = signs[6] > 0 ? 2.0 : 1.6;
    cfg.numChannels = signs[7] > 0 ? 8 : 4;
    cfg.dramBusBytes = signs[8] > 0 ? 16 : 8;
    return cfg;
}

std::string
buildPbSensitivity(Context &ctx)
{
    const auto &factors = pbFactorNames();
    auto design = stats::pbDesign(int(factors.size()));
    const auto &order = figureOrder();
    const size_t runs = size_t(design.runs);

    std::vector<std::vector<double>> responses(
        order.size(), std::vector<double>(runs, 0.0));
    ctx.parallelFor(order.size() * runs, [&](size_t idx) {
        size_t b = idx / runs;
        size_t r = idx % runs;
        gpusim::SimConfig cfg = pbConfigFor(design.signs[r]);
        const auto &st = ctx.gpuStats(order[b].first,
                                      core::Scale::Small, 0, cfg);
        // The paper's response variable is total execution
        // cycles (Section III-E).
        responses[b][r] = double(st.cycles);
    });

    Table t("Plackett-Burman sensitivity: top-3 factors per benchmark");
    t.setHeader({"Benchmark", "#1", "#2", "#3"});
    std::vector<double> rankScore(factors.size(), 0.0);

    for (size_t b = 0; b < order.size(); ++b) {
        auto effects = stats::pbEffects(design, responses[b], factors);
        t.addRow({order[b].second, effects[0].name, effects[1].name,
                  effects[2].name});
        // Aggregate: Borda-style rank points.
        for (size_t i = 0; i < effects.size(); ++i)
            rankScore[size_t(effects[i].factor)] +=
                double(effects.size() - i);
    }

    std::vector<std::pair<double, std::string>> agg;
    for (size_t i = 0; i < factors.size(); ++i)
        agg.emplace_back(rankScore[i], factors[i]);
    std::sort(agg.rbegin(), agg.rend());

    Table t2("Aggregate factor importance across the suite");
    t2.setHeader({"Rank", "Factor", "Score"});
    for (size_t i = 0; i < agg.size(); ++i)
        t2.addRow({std::to_string(i + 1), agg[i].second,
                   Table::fmt(agg[i].first, 0)});

    return t.render() + "\n" + t2.render();
}

// ---------------------------------------------------------------
// Figure 6: hierarchical-clustering dendrogram.
// ---------------------------------------------------------------

std::string
buildFig6(Context &ctx)
{
    auto chars = ctx.allCpu(primaryScale());

    std::vector<std::vector<double>> rows;
    std::vector<std::string> labels;
    for (const auto &c : chars) {
        rows.push_back(c.allFeatures());
        labels.push_back(c.name + core::suiteTag(c.suite));
    }

    auto pca = stats::runPca(stats::Matrix::fromRows(rows));
    size_t keep = pca.componentsForVariance(0.9);
    auto scores = stats::pcaProject(pca, keep);

    auto lk = stats::hierarchicalCluster(scores,
                                         stats::LinkageMethod::Average);
    std::ostringstream os;
    os << "Figure 6: dendrogram over " << keep
       << " principal components (90% variance)\n\n";
    os << stats::renderDendrogram(lk, labels);

    os << "\nFlat clustering at k=8:\n";
    auto cut = lk.cut(8);
    for (int cl = 0; cl < 8; ++cl) {
        os << "  cluster " << cl << ":";
        for (size_t i = 0; i < labels.size(); ++i)
            if (cut[i] == cl)
                os << " " << labels[i];
        os << "\n";
    }
    return os.str();
}

// ---------------------------------------------------------------
// Figures 7-9: PCA scatters over one feature group each.
// ---------------------------------------------------------------

std::string
buildPcaScatter(Context &ctx, const char *caption,
                std::vector<double> (core::CpuCharacterization::*features)()
                    const)
{
    auto chars = ctx.allCpu(primaryScale());
    std::vector<std::vector<double>> rows;
    std::vector<std::string> labels;
    std::vector<core::Suite> suites;
    for (const auto &c : chars) {
        rows.push_back((c.*features)());
        labels.push_back(c.name);
        suites.push_back(c.suite);
    }
    auto pca = stats::runPca(stats::Matrix::fromRows(rows));
    std::vector<double> xs, ys;
    for (size_t i = 0; i < rows.size(); ++i) {
        xs.push_back(pca.scores.at(i, 0));
        ys.push_back(pca.scores.at(i, 1));
    }
    std::string head =
        std::string(caption) + " (PC1 explains " +
        std::to_string(int(pca.explained[0] * 100)) + "%, PC2 " +
        std::to_string(int(pca.explained[1] * 100)) + "%)\n\n";
    return head + renderScatter(xs, ys, labels, suites);
}

std::string
buildFig7(Context &ctx)
{
    return buildPcaScatter(ctx, "Figure 7: instruction-mix PCA",
                           &core::CpuCharacterization::instrMixFeatures);
}

std::string
buildFig8(Context &ctx)
{
    return buildPcaScatter(
        ctx, "Figure 8: working-set PCA",
        &core::CpuCharacterization::workingSetFeatures);
}

std::string
buildFig9(Context &ctx)
{
    return buildPcaScatter(ctx, "Figure 9: sharing-behavior PCA",
                           &core::CpuCharacterization::sharingFeatures);
}

// ---------------------------------------------------------------
// Figure 10: miss rates at a 4 MB shared cache.
// ---------------------------------------------------------------

std::string
buildFig10(Context &ctx)
{
    auto chars = ctx.allCpu(primaryScale());

    // Find the 4 MB sweep index.
    size_t idx4mb = 0;
    for (size_t i = 0; i < chars[0].cacheSizes.size(); ++i)
        if (chars[0].cacheSizes[i] == 4ull * 1024 * 1024)
            idx4mb = i;

    std::vector<std::tuple<double, std::string, core::Suite>> rows;
    for (const auto &c : chars)
        rows.emplace_back(c.sweep[idx4mb].missRate(), c.name, c.suite);
    std::sort(rows.rbegin(), rows.rend());

    double maxRate = std::get<0>(rows.front());
    std::ostringstream os;
    os << "Figure 10: miss rate per memory reference @ 4 MB shared "
          "cache\n\n";
    for (const auto &[rate, name, suite] : rows)
        os << barRow(name + core::suiteTag(suite), rate,
                     std::max(maxRate, 1e-9), 40, 4)
           << "\n";
    return os.str();
}

// ---------------------------------------------------------------
// Figure 11: instruction footprint.
// ---------------------------------------------------------------

std::string
buildFig11(Context &ctx)
{
    auto chars = ctx.allCpu(primaryScale());
    std::vector<std::tuple<double, std::string, core::Suite>> rows;
    for (const auto &c : chars)
        rows.emplace_back(double(c.instructionBlocks), c.name, c.suite);
    std::sort(rows.rbegin(), rows.rend());

    double maxBlocks = std::get<0>(rows.front());
    std::ostringstream os;
    os << "Figure 11: instruction footprint (64 B blocks touched)\n\n";
    for (const auto &[blocks, name, suite] : rows)
        os << barRow(name + core::suiteTag(suite), blocks, maxBlocks,
                     40, 0)
           << "\n";

    double rodiniaAvg = 0, parsecAvg = 0;
    int nr = 0, np = 0;
    for (const auto &c : chars) {
        if (c.suite != core::Suite::Parsec) {
            rodiniaAvg += double(c.instructionBlocks);
            ++nr;
        }
        if (c.suite != core::Suite::Rodinia) {
            parsecAvg += double(c.instructionBlocks);
            ++np;
        }
    }
    os << "\n  suite averages: Rodinia " << Table::fmt(rodiniaAvg / nr, 1)
       << " blocks, Parsec " << Table::fmt(parsecAvg / np, 1)
       << " blocks\n";
    return os.str();
}

// ---------------------------------------------------------------
// Figure 12: data footprint.
// ---------------------------------------------------------------

std::string
buildFig12(Context &ctx)
{
    auto chars = ctx.allCpu(primaryScale());
    std::vector<std::tuple<double, std::string, core::Suite>> rows;
    for (const auto &c : chars)
        rows.emplace_back(double(c.dataPages), c.name, c.suite);
    std::sort(rows.rbegin(), rows.rend());

    double maxPages = std::get<0>(rows.front());
    std::ostringstream os;
    os << "Figure 12: data footprint (4 kB pages touched)\n\n";
    for (const auto &[pages, name, suite] : rows)
        os << barRow(name + core::suiteTag(suite), pages, maxPages, 40,
                     0)
           << "\n";
    return os.str();
}

// ---------------------------------------------------------------
// Ablation: SIMT loop-iteration path keys.
// ---------------------------------------------------------------

std::string
buildAblationSimt(Context &ctx)
{
    (void)ctx;
    using namespace rodinia::gpusim;

    // Per-thread trip counts drawn from a skewed distribution, like
    // query lengths in MUMmer.
    Rng rng(0xAB1);
    std::vector<int> trips(2048);
    for (auto &t : trips)
        t = 1 + int(rng.below(64));
    std::vector<float> data(1 << 16, 1.0f);

    LaunchConfig launch;
    launch.gridDim = 16;
    launch.blockDim = 128;

    // The loop body takes a data-dependent branch, like an edge
    // comparison in a tree walk: lanes on different iterations sit
    // at the same then/else PCs, which naive min-PC would merge.
    auto body = [&](KernelCtx &ctx2, float &acc, int i) {
        if (ctx2.branch(((ctx2.globalId() * 31 + i) % 3) == 0)) {
            acc += ctx2.ldg(&data[(ctx2.globalId() * 67 + i) %
                                  int(data.size())]);
            ctx2.fp(4);
        } else {
            ctx2.alu(2);
        }
    };
    auto makeRec = [&](bool use_keys) {
        return recordKernel(launch, [&](KernelCtx &ctx2) {
            int n = trips[ctx2.globalId()];
            float acc = 0.0f;
            for (int i = 0; i < n; ++i) {
                if (use_keys) {
                    LoopIter li(ctx2, i);
                    body(ctx2, acc, i);
                } else {
                    body(ctx2, acc, i);
                }
            }
            ctx2.stg(&data[ctx2.globalId()], acc);
        });
    };

    auto withKeys = analyzeTrace(makeRec(true));
    auto without = analyzeTrace(makeRec(false));

    Table t("SIMT ablation: loop path keys vs naive min-PC merge");
    t.setHeader({"Model", "avg active threads", "warp insts",
                 "1-8 bucket"});
    auto row = [&](const char *name, const TraceStats &s) {
        t.addRow({name, Table::fmt(s.avgWarpOccupancy(), 2),
                  Table::fmtInt(s.warpInstructions),
                  Table::pct(s.occupancyFractions()[0])});
    };
    row("loop path keys (default)", withKeys);
    row("naive min-PC (no keys)", without);

    std::ostringstream os;
    os << t.render() << "\n"
       << "Without path keys, different loop iterations of different\n"
       << "lanes merge at the same PC, inflating occupancy and\n"
       << "deflating the serialized warp-instruction count on\n"
       << "trip-count-divergent kernels (MUMmer, BFS).\n";
    return os.str();
}

// ---------------------------------------------------------------
// Ablation: coalescing granularity.
// ---------------------------------------------------------------

std::string
buildAblationCoalesce(Context &ctx)
{
    static const char *kNames[3] = {"kmeans", "cfd", "bfs"};
    static constexpr int kGranules[3] = {32, 64, 128};

    struct Slot
    {
        double cycles[3] = {0, 0, 0};
        double trans[3] = {0, 0, 0};
    };
    std::vector<Slot> slots(3);
    ctx.parallelFor(9, [&](size_t idx) {
        size_t b = idx / 3;
        size_t gi = idx % 3;
        gpusim::SimConfig cfg = gpusim::SimConfig::gpgpusimDefault();
        cfg.coalesceBytes = kGranules[gi];
        const auto &st =
            ctx.gpuStats(kNames[b], core::Scale::Small, 0, cfg);
        slots[b].cycles[gi] = double(st.cycles);
        slots[b].trans[gi] = double(st.dramTransactions);
    });

    Table t("Coalescing-granularity ablation (normalized to 64 B)");
    t.setHeader({"Benchmark", "Metric", "32B", "64B", "128B"});
    for (size_t b = 0; b < 3; ++b) {
        const auto &s = slots[b];
        t.addRow({kNames[b], "cycles",
                  Table::fmt(s.cycles[0] / s.cycles[1], 2), "1.00",
                  Table::fmt(s.cycles[2] / s.cycles[1], 2)});
        t.addRow({"", "transactions",
                  Table::fmt(s.trans[0] / s.trans[1], 2), "1.00",
                  Table::fmt(s.trans[2] / s.trans[1], 2)});
    }
    return t.render();
}

std::vector<GpuDep>
figureOrderDeps(core::Scale scale)
{
    std::vector<GpuDep> deps;
    for (const auto &[name, label] : figureOrder()) {
        (void)label;
        deps.push_back({name, scale, 0});
    }
    return deps;
}

} // namespace

const std::vector<FigureDef> &
allFigures()
{
    // Cached per primary scale: the GPU dependency lists embed the
    // scale, so a --scale change (set once at startup, before any
    // figure is built) rebuilds the table on the next call.
    static core::Scale builtFor = core::Scale::Full;
    static std::vector<FigureDef> figures;
    if (!figures.empty() && builtFor == primaryScale())
        return figures;
    builtFor = primaryScale();
    figures = [] {
        std::vector<FigureDef> f;
        auto fullOrder = figureOrderDeps(primaryScale());
        auto smallOrder = figureOrderDeps(core::Scale::Small);

        f.push_back({"table1", "table1/inventory", buildTable1, false,
                     {}});
        f.push_back({"fig1", "fig1/ipc", buildFig1, false, fullOrder});
        f.push_back(
            {"fig2", "fig2/memmix", buildFig2, false, fullOrder});
        f.push_back(
            {"fig3", "fig3/occupancy", buildFig3, false, fullOrder});
        f.push_back(
            {"fig4", "fig4/channels", buildFig4, false, fullOrder});
        f.push_back({"fig5", "fig5/fermi", buildFig5, false, fullOrder});
        f.push_back({"table3", "table3/incremental", buildTable3, false,
                     {{"srad", primaryScale(), 1},
                      {"srad", primaryScale(), 2},
                      {"leukocyte", primaryScale(), 1},
                      {"leukocyte", primaryScale(), 2},
                      {"nw", primaryScale(), 1},
                      {"nw", primaryScale(), 2},
                      {"lud", primaryScale(), 1},
                      {"lud", primaryScale(), 2}}});
        f.push_back({"pb", "sec3e/plackett_burman", buildPbSensitivity,
                     false, smallOrder});
        f.push_back(
            {"fig6", "fig6/dendrogram", buildFig6, true, {}});
        f.push_back(
            {"fig7", "fig7/instmix_pca", buildFig7, true, {}});
        f.push_back(
            {"fig8", "fig8/workingset_pca", buildFig8, true, {}});
        f.push_back(
            {"fig9", "fig9/sharing_pca", buildFig9, true, {}});
        f.push_back(
            {"fig10", "fig10/missrates", buildFig10, true, {}});
        f.push_back(
            {"fig11", "fig11/ifootprint", buildFig11, true, {}});
        f.push_back(
            {"fig12", "fig12/dfootprint", buildFig12, true, {}});
        f.push_back({"ablation_simt", "ablation/simt_keys",
                     buildAblationSimt, false, {}});
        f.push_back({"ablation_coalesce", "ablation/coalesce",
                     buildAblationCoalesce, false,
                     {{"kmeans", core::Scale::Small, 0},
                      {"cfd", core::Scale::Small, 0},
                      {"bfs", core::Scale::Small, 0}}});
        return f;
    }();
    return figures;
}

const FigureDef *
findFigure(const std::string &id)
{
    for (const auto &f : allFigures())
        if (f.id == id)
            return &f;
    return nullptr;
}

std::string
buildFigure(const FigureDef &def, Context &ctx)
{
    auto t0 = std::chrono::steady_clock::now();
    std::string out = def.build(ctx);
    auto t1 = std::chrono::steady_clock::now();
    support::metrics::count("figures.built");
    support::metrics::gaugeLabeled(
        "figures.wall_us", def.id,
        uint64_t(std::chrono::duration_cast<
                     std::chrono::microseconds>(t1 - t0)
                     .count()));
    if (auto *tc = TraceCollector::active())
        tc->record("figure", def.id, "{}", t0, t1);
    return out;
}

} // namespace driver
} // namespace rodinia
