/**
 * @file
 * Shared experiment context.
 *
 * Figures 6-12 all consume the same 25 CPU characterizations, and
 * Figures 1-5 replay the same recorded GPU launch sequences under
 * different timing configurations. The Context memoizes both behind
 * a per-key std::call_once, so any number of figure jobs running
 * concurrently share one computation (and one ResultStore entry)
 * instead of recomputing or re-deserializing per binary.
 *
 * All public methods are thread-safe and return references that
 * stay valid for the Context's lifetime (entries are never evicted).
 */

#ifndef RODINIA_DRIVER_CONTEXT_HH
#define RODINIA_DRIVER_CONTEXT_HH

#include <atomic>
#include <condition_variable>
#include <functional>
#include <map>
#include <memory>
#include <mutex>
#include <set>
#include <string>
#include <vector>

#include "core/characterize.hh"
#include "core/workload.hh"
#include "driver/result_store.hh"
#include "gpusim/recorder.hh"
#include "gpusim/timing.hh"

namespace rodinia {
namespace driver {

class Executor;

/**
 * Rodinia workloads in the paper's figure order (Figs. 1-5).
 * Thread-safe: the table is a function-local static, which C++11
 * guarantees is initialized exactly once even under concurrent
 * first calls from pool threads.
 */
const std::vector<std::pair<std::string, std::string>> &figureOrder();

/** All 25 CPU workloads: 12 Rodinia + 13 Parsec (SC shared). */
std::vector<std::string> allCpuWorkloads();

/** Record a workload's GPU launch sequence (0 = shipped version). */
gpusim::LaunchSequence recordGpuLaunch(const std::string &name,
                                       core::Scale scale,
                                       int version = 0);

class Context
{
  public:
    /**
     * @param store result store for CPU characterizations; nullptr
     *        disables disk caching (results are still memoized)
     * @param executor pool used by parallelFor; nullptr runs
     *        sweeps serially
     */
    explicit Context(ResultStore *store = nullptr,
                     Executor *executor = nullptr);

    /** Uninstalls the trace-spill sink if the constructor armed it. */
    ~Context();

    Context(const Context &) = delete;
    Context &operator=(const Context &) = delete;

    /** One workload's CPU characterization (memoized + cached). */
    const core::CpuCharacterization &
    cpu(const std::string &name, core::Scale scale, int threads = 8);

    /** All 25 characterizations in allCpuWorkloads() order. */
    std::vector<core::CpuCharacterization>
    allCpu(core::Scale scale, int threads = 8);

    /** One workload's recorded launch sequence (memoized). */
    const gpusim::LaunchSequence &
    gpu(const std::string &name, core::Scale scale, int version = 0);

    /**
     * Timing-simulation stats for one workload under one SimConfig
     * (memoized + store-cached). Keyed by the recording's content
     * hash plus the config fingerprint, so identical (recording,
     * config) pairs — within this process or across processes —
     * simulate exactly once; figures that share a configuration
     * (e.g. Fig. 1's 28-SM point and Fig. 4's 8-channel point)
     * share the result. Safe to call concurrently from parallelFor
     * iterations: each distinct key simulates under its own
     * call_once.
     */
    const gpusim::KernelStats &
    gpuStats(const std::string &name, core::Scale scale, int version,
             const gpusim::SimConfig &config);

    /**
     * Would gpuStats() for this key be served without running a
     * simulation? True when the stats are already memoized in this
     * Context, or when the recording's content hash is memoized and
     * the result store holds a published entry for the key. A cheap,
     * non-blocking probe (one map lookup, at most one stat(2)) —
     * never records, hashes, or simulates — used by the experiment
     * service to route requests onto the warm lane. A false negative
     * (e.g. store entry present but the recording not yet memoized)
     * is safe: the request just takes the cold lane and still hits
     * the store.
     */
    bool gpuStatsWarm(const std::string &name, core::Scale scale,
                      int version, const gpusim::SimConfig &config);

    /**
     * Fan a sweep's iterations across the executor (serial when the
     * context has none). Iterations must write disjoint result
     * slots; assembly order is the caller's.
     */
    void parallelFor(size_t n, const std::function<void(size_t)> &fn);

    Executor *executor() const { return exec; }
    ResultStore *resultStore() const { return store; }

    /** One cache-sweep replay actually performed this process. */
    struct SweepTelemetry
    {
        std::string key;           //!< "name/s<scale>/t<threads>"
        uint64_t lineAccesses = 0;
        double replaySeconds = 0.0;
    };

    /**
     * Telemetry for every characterization computed (not loaded from
     * the store) so far, in completion order. Snapshot, thread-safe.
     */
    std::vector<SweepTelemetry> sweepTelemetrySnapshot() const;

    /** One timing simulation actually performed this process. */
    struct GpuSimTelemetry
    {
        std::string key;      //!< "name/s<scale>/v<version>/<config>"
        uint64_t cycles = 0;  //!< simulated GPU cycles produced
        double simSeconds = 0.0;
    };

    /**
     * Telemetry for every timing simulation actually run (not served
     * from memo or store) so far, in completion order. Thread-safe.
     */
    std::vector<GpuSimTelemetry> gpuSimTelemetrySnapshot() const;

    /** gpuStats results served from the result store, not simulated. */
    uint64_t gpuStatsStoreHits() const { return nGpuStoreHits.load(); }

    // ---- in-flight simulation registry (single flight) ----------

    /**
     * One in-flight gpuStats computation, shared between the LEADER
     * (the caller that actually runs it) and any FOLLOWERS that
     * joined while it was running. The leader fills the outcome and
     * flips done under mu; followers wait on cv — with their own
     * cancellation checked between waits, so a follower abandoning
     * the flight never disturbs the leader.
     *
     * The flight key is the gpuStats memo key (workload / scale /
     * version / SimConfig::fingerprint), which within one process
     * identifies exactly one (recording contentHash, fingerprint)
     * pair — recordings are memoized per (workload, scale, version),
     * so equal keys mean equal recording bytes and the store key the
     * leader publishes under is the same one every follower would
     * have computed.
     */
    struct SimFlight
    {
        std::mutex mu;
        std::condition_variable cv;
        bool done = false;
        bool ok = false;          //!< outcome: served vs failed
        std::string errorClass;   //!< failure-taxonomy name when !ok
        std::string message;      //!< error message when !ok
        std::string payload;      //!< serialized KernelStats when ok
        uint64_t followers = 0;   //!< joins observed (telemetry)
    };

    /**
     * Join-or-begin the in-flight simulation for a gpuStats key.
     * Exactly one concurrent caller per key gets @p leader = true
     * and MUST eventually call simFlightComplete() with the same
     * handle however its computation ends; everyone else joins the
     * existing flight as a follower and should wait on its cv.
     * The flight is registered until the leader completes it, so a
     * request arriving after completion starts a fresh flight — by
     * then the result is memoized and the "fresh" flight is a cheap
     * memo read.
     */
    std::shared_ptr<SimFlight>
    simFlightJoin(const std::string &name, core::Scale scale,
                  int version, const gpusim::SimConfig &config,
                  bool &leader);

    /**
     * Leader-only: publish the outcome (ok + payload, or error class
     * + message), retire the flight from the registry, and wake every
     * follower. Exactly one call per leader handle.
     */
    void simFlightComplete(const std::shared_ptr<SimFlight> &flight,
                           bool ok, const std::string &errorClass,
                           const std::string &message,
                           const std::string &payload);

    /** In-flight simulation count (flights registered, not yet
     *  completed). Snapshot for stats surfaces. */
    size_t simFlightsInFlight() const;

  private:
    template <typename V> struct Entry
    {
        std::once_flag once;
        V value;
    };

    ResultStore *store;
    Executor *exec;

    /** ResultStore-backed trace-chunk spill sink (see context.cc);
     *  non-null only when RODINIA_TRACE_SPILL_CHUNKS armed it. */
    std::unique_ptr<trace::ChunkSink> spillSink;
    trace::ChunkSink *prevSpillSink = nullptr;
    uint32_t prevSpillResident = 0;

    /** Content hash of a memoized recording (memoized itself: the
     *  digest walks every event, so figures sharing a recording
     *  should not rehash it per config). */
    uint64_t recordingHash(const std::string &name, core::Scale scale,
                           int version);

    mutable std::mutex mu;
    std::map<std::string, std::unique_ptr<Entry<core::CpuCharacterization>>>
        cpuEntries;
    std::map<std::string, std::unique_ptr<Entry<gpusim::LaunchSequence>>>
        gpuEntries;
    std::map<std::string, std::unique_ptr<Entry<uint64_t>>> gpuHashEntries;
    std::map<std::string, std::unique_ptr<Entry<gpusim::KernelStats>>>
        gpuStatsEntries;
    std::vector<SweepTelemetry> sweepTelemetry;
    std::vector<GpuSimTelemetry> gpuSimTelemetry;
    std::atomic<uint64_t> nGpuStoreHits{0};
    /** Open flights by gpuStats key; erased on completion. The map
     *  holds one ref, leader + followers hold their own, so a flight
     *  outlives its registry entry as long as anyone waits on it. */
    std::map<std::string, std::shared_ptr<SimFlight>> simFlights;
    /** Keys whose call_once completed ("stats:..."/"rhash:...") —
     *  the queryable side of the once_flag, for gpuStatsWarm. */
    std::set<std::string> doneKeys;
};

} // namespace driver
} // namespace rodinia

#endif // RODINIA_DRIVER_CONTEXT_HH
