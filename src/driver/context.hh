/**
 * @file
 * Shared experiment context.
 *
 * Figures 6-12 all consume the same 25 CPU characterizations, and
 * Figures 1-5 replay the same recorded GPU launch sequences under
 * different timing configurations. The Context memoizes both behind
 * a per-key std::call_once, so any number of figure jobs running
 * concurrently share one computation (and one ResultStore entry)
 * instead of recomputing or re-deserializing per binary.
 *
 * All public methods are thread-safe and return references that
 * stay valid for the Context's lifetime (entries are never evicted).
 */

#ifndef RODINIA_DRIVER_CONTEXT_HH
#define RODINIA_DRIVER_CONTEXT_HH

#include <functional>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "core/characterize.hh"
#include "core/workload.hh"
#include "driver/result_store.hh"
#include "gpusim/recorder.hh"

namespace rodinia {
namespace driver {

class Executor;

/**
 * Rodinia workloads in the paper's figure order (Figs. 1-5).
 * Thread-safe: the table is a function-local static, which C++11
 * guarantees is initialized exactly once even under concurrent
 * first calls from pool threads.
 */
const std::vector<std::pair<std::string, std::string>> &figureOrder();

/** All 25 CPU workloads: 12 Rodinia + 13 Parsec (SC shared). */
std::vector<std::string> allCpuWorkloads();

/** Record a workload's GPU launch sequence (0 = shipped version). */
gpusim::LaunchSequence recordGpuLaunch(const std::string &name,
                                       core::Scale scale,
                                       int version = 0);

class Context
{
  public:
    /**
     * @param store result store for CPU characterizations; nullptr
     *        disables disk caching (results are still memoized)
     * @param executor pool used by parallelFor; nullptr runs
     *        sweeps serially
     */
    explicit Context(ResultStore *store = nullptr,
                     Executor *executor = nullptr);

    /** One workload's CPU characterization (memoized + cached). */
    const core::CpuCharacterization &
    cpu(const std::string &name, core::Scale scale, int threads = 8);

    /** All 25 characterizations in allCpuWorkloads() order. */
    std::vector<core::CpuCharacterization>
    allCpu(core::Scale scale, int threads = 8);

    /** One workload's recorded launch sequence (memoized). */
    const gpusim::LaunchSequence &
    gpu(const std::string &name, core::Scale scale, int version = 0);

    /**
     * Fan a sweep's iterations across the executor (serial when the
     * context has none). Iterations must write disjoint result
     * slots; assembly order is the caller's.
     */
    void parallelFor(size_t n, const std::function<void(size_t)> &fn);

    Executor *executor() const { return exec; }
    ResultStore *resultStore() const { return store; }

    /** One cache-sweep replay actually performed this process. */
    struct SweepTelemetry
    {
        std::string key;           //!< "name/s<scale>/t<threads>"
        uint64_t lineAccesses = 0;
        double replaySeconds = 0.0;
    };

    /**
     * Telemetry for every characterization computed (not loaded from
     * the store) so far, in completion order. Snapshot, thread-safe.
     */
    std::vector<SweepTelemetry> sweepTelemetrySnapshot() const;

  private:
    template <typename V> struct Entry
    {
        std::once_flag once;
        V value;
    };

    ResultStore *store;
    Executor *exec;

    mutable std::mutex mu;
    std::map<std::string, std::unique_ptr<Entry<core::CpuCharacterization>>>
        cpuEntries;
    std::map<std::string, std::unique_ptr<Entry<gpusim::LaunchSequence>>>
        gpuEntries;
    std::vector<SweepTelemetry> sweepTelemetry;
};

} // namespace driver
} // namespace rodinia

#endif // RODINIA_DRIVER_CONTEXT_HH
