/**
 * @file
 * Characterization runner: turns a workload into the paper's metrics.
 *
 * CPU side (Sections IV-B/V): instruction mix, cache-size sweep
 * (misses per memory reference), sharing behavior, and instruction/
 * data footprints, combined into the feature vectors used for PCA
 * and hierarchical clustering.
 *
 * GPU side (Section III): records the kernel launch sequence once
 * and exposes both timing-free trace statistics and timing-model
 * results for a given configuration.
 */

#ifndef RODINIA_CORE_CHARACTERIZE_HH
#define RODINIA_CORE_CHARACTERIZE_HH

#include <string>
#include <vector>

#include "cachesim/cache.hh"
#include "cachesim/sweep.hh"
#include "core/workload.hh"
#include "gpusim/replay.hh"
#include "gpusim/timing.hh"
#include "trace/trace.hh"

namespace rodinia {
namespace core {

/** All CPU-side metrics of one workload run. */
struct CpuCharacterization
{
    std::string name;
    Suite suite = Suite::Rodinia;
    int threads = 0;

    trace::InstrMix mix;
    std::vector<uint64_t> cacheSizes;
    std::vector<cachesim::CacheStats> sweep;

    uint64_t memEvents = 0;
    uint64_t instructionSites = 0;
    uint64_t instructionBlocks = 0;
    uint64_t dataPages = 0;
    uint64_t checksum = 0;

    /**
     * Replay telemetry from the single-pass cache sweep: line
     * accesses simulated and the wall clock they took. Observability
     * only — zero when a characterization was loaded from the result
     * store rather than recomputed.
     */
    uint64_t sweepLineAccesses = 0;
    double sweepReplaySeconds = 0.0;

    /** Instruction-mix features: {int, fp, branch, load, store}. */
    std::vector<double> instrMixFeatures() const;
    /** Working-set features: miss rate at each swept cache size. */
    std::vector<double> workingSetFeatures() const;
    /** Sharing features: shared-line and shared-access fractions. */
    std::vector<double> sharingFeatures() const;
    /** Concatenation of all feature groups (Fig. 6's input). */
    std::vector<double> allFeatures() const;

    static std::vector<std::string> instrMixFeatureNames();
    static std::vector<std::string>
    workingSetFeatureNames(const std::vector<uint64_t> &sizes);
    static std::vector<std::string>
    sharingFeatureNames(const std::vector<uint64_t> &sizes);
};

/**
 * Run the workload's CPU implementation and collect every metric.
 *
 * @param workload the benchmark
 * @param scale problem-size tier
 * @param threads worker threads (the paper models an 8-core CMP)
 */
CpuCharacterization characterizeCpu(Workload &workload, Scale scale,
                                    int threads = 8);

/** GPU-side metrics of one workload under one configuration. */
struct GpuCharacterization
{
    std::string name;
    int version = 1;
    gpusim::TraceStats trace;
    gpusim::KernelStats timing;
};

/**
 * Record and simulate the workload's GPU implementation.
 * For sweeps over many configurations, prefer recording once via
 * Workload::runGpu and invoking gpusim::TimingSim directly.
 */
GpuCharacterization characterizeGpu(Workload &workload, Scale scale,
                                    const gpusim::SimConfig &config,
                                    int version = 1);

/** Suite display tag used in figures: "(R)", "(P)" or "(R, P)". */
std::string suiteTag(Suite suite);

} // namespace core
} // namespace rodinia

#endif // RODINIA_CORE_CHARACTERIZE_HH
