#include "core/characterize.hh"

#include "support/alloc_align.hh"
#include "support/logging.hh"

namespace rodinia {
namespace core {

std::vector<double>
CpuCharacterization::instrMixFeatures() const
{
    double total = double(mix.total());
    if (total <= 0.0)
        return {0.0, 0.0, 0.0, 0.0, 0.0};
    return {
        mix.intOps / total,   mix.fpOps / total, mix.branches / total,
        mix.loads / total,    mix.stores / total,
    };
}

std::vector<double>
CpuCharacterization::workingSetFeatures() const
{
    std::vector<double> out;
    out.reserve(sweep.size());
    for (const auto &s : sweep)
        out.push_back(s.missRate());
    return out;
}

std::vector<double>
CpuCharacterization::sharingFeatures() const
{
    std::vector<double> out;
    out.reserve(sweep.size() * 2);
    for (const auto &s : sweep)
        out.push_back(s.sharedLineFraction());
    for (const auto &s : sweep)
        out.push_back(s.sharedAccessFraction());
    return out;
}

std::vector<double>
CpuCharacterization::allFeatures() const
{
    std::vector<double> out = instrMixFeatures();
    auto ws = workingSetFeatures();
    auto sh = sharingFeatures();
    out.insert(out.end(), ws.begin(), ws.end());
    out.insert(out.end(), sh.begin(), sh.end());
    return out;
}

std::vector<std::string>
CpuCharacterization::instrMixFeatureNames()
{
    return {"int", "fp", "branch", "load", "store"};
}

namespace {

std::string
sizeLabel(uint64_t bytes)
{
    if (bytes >= 1024 * 1024)
        return std::to_string(bytes / (1024 * 1024)) + "MB";
    return std::to_string(bytes / 1024) + "kB";
}

} // namespace

std::vector<std::string>
CpuCharacterization::workingSetFeatureNames(
    const std::vector<uint64_t> &sizes)
{
    std::vector<std::string> out;
    for (uint64_t s : sizes)
        out.push_back("miss@" + sizeLabel(s));
    return out;
}

std::vector<std::string>
CpuCharacterization::sharingFeatureNames(const std::vector<uint64_t> &sizes)
{
    std::vector<std::string> out;
    for (uint64_t s : sizes)
        out.push_back("shline@" + sizeLabel(s));
    for (uint64_t s : sizes)
        out.push_back("shacc@" + sizeLabel(s));
    return out;
}

CpuCharacterization
characterizeCpu(Workload &workload, Scale scale, int threads)
{
    CpuCharacterization out;
    out.name = workload.info().name;
    out.suite = workload.info().suite;
    out.threads = threads;

    trace::TraceSession session(threads, true);
    {
        // Pin every workload allocation's line/page phase so the
        // traced addresses group (straddle lines, share pages) the
        // same way in every process; see support/alloc_align.hh.
        support::DeterministicAllocScope alignScope;
        workload.runCpu(session, scale);
    }
    // Canonical page layout: metrics must not depend on where the
    // heap landed this run (ASLR), only on what the workload did.
    session.normalizeAddresses();

    out.mix = session.totalMix();
    out.memEvents = session.totalEvents();
    out.instructionSites = session.instructionSites();
    out.instructionBlocks = session.instructionFootprintBlocks();
    out.dataPages = session.dataFootprintPages();
    out.checksum = workload.checksum();

    out.cacheSizes = cachesim::paperCacheSizes();
    cachesim::SweepConfig sweep_cfg;
    sweep_cfg.sizesBytes = out.cacheSizes;
    cachesim::SweepResult swept = cachesim::runSweep(session, sweep_cfg);
    out.sweep = std::move(swept.stats);
    out.sweepLineAccesses = swept.lineAccesses;
    out.sweepReplaySeconds = swept.replaySeconds;
    return out;
}

GpuCharacterization
characterizeGpu(Workload &workload, Scale scale,
                const gpusim::SimConfig &config, int version)
{
    if (workload.gpuVersions() < version)
        fatal("workload '", workload.info().name,
              "' has no GPU version ", version);

    GpuCharacterization out;
    out.name = workload.info().name;
    out.version = version;

    gpusim::LaunchSequence seq = workload.runGpu(scale, version);
    out.trace = gpusim::analyzeTrace(seq, config.warpSize);
    gpusim::TimingSim sim(config);
    out.timing = sim.simulate(seq);
    return out;
}

std::string
suiteTag(Suite suite)
{
    switch (suite) {
      case Suite::Rodinia:
        return "(R)";
      case Suite::Parsec:
        return "(P)";
      case Suite::Both:
      default:
        return "(R, P)";
    }
}

} // namespace core
} // namespace rodinia
