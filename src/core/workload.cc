#include "core/workload.hh"

#include "support/logging.hh"

namespace rodinia {
namespace core {

Registry &
Registry::instance()
{
    static Registry registry;
    return registry;
}

void
Registry::add(const WorkloadInfo &info, WorkloadFactory factory)
{
    for (const auto &existing : infos) {
        if (existing.name == info.name)
            fatal("Registry: duplicate workload '", info.name, "'");
    }
    infos.push_back(info);
    factories.push_back(std::move(factory));
}

std::unique_ptr<Workload>
Registry::create(const std::string &name) const
{
    for (size_t i = 0; i < infos.size(); ++i) {
        if (infos[i].name == name)
            return factories[i]();
    }
    fatal("Registry: unknown workload '", name, "'");
}

bool
Registry::has(const std::string &name) const
{
    for (const auto &info : infos) {
        if (info.name == name)
            return true;
    }
    return false;
}

std::vector<std::string>
Registry::names(Suite suite) const
{
    std::vector<std::string> out;
    for (const auto &info : infos) {
        if (info.suite == suite || info.suite == Suite::Both)
            out.push_back(info.name);
    }
    return out;
}

} // namespace core
} // namespace rodinia
