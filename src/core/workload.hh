/**
 * @file
 * Workload abstraction and registry.
 *
 * Every benchmark in the reproduced suites (the 12 Rodinia
 * applications and the 13 Parsec analogs) implements Workload: an
 * instrumented multithreaded CPU implementation (the OpenMP analog)
 * and, for Rodinia, one or more instrumented SIMT GPU kernels (the
 * CUDA analog). The registry maps names to factories and carries the
 * Table I / Table V metadata (dwarf, domain, problem sizes).
 */

#ifndef RODINIA_CORE_WORKLOAD_HH
#define RODINIA_CORE_WORKLOAD_HH

#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "gpusim/recorder.hh"
#include "trace/trace.hh"

namespace rodinia {
namespace core {

/** Which benchmark collection a workload belongs to. */
enum class Suite { Rodinia, Parsec, Both };

/** Problem-size tier (lower tiers are scaled for simulation). */
enum class Scale {
    Tiny, //!< smallest: parameter sweeps (Plackett-Burman) and tests
    Small, //!< quick characterization runs
    Full, //!< default evaluation size (scaled down from Table I)
    Paper, //!< the paper's Table I problem sizes (streaming traces)
};

/** Static metadata about one workload (Tables I and V). */
struct WorkloadInfo
{
    std::string name;        //!< registry key, e.g. "kmeans"
    std::string displayName; //!< e.g. "Kmeans"
    Suite suite = Suite::Rodinia;
    std::string dwarf;       //!< Berkeley dwarf
    std::string domain;      //!< application domain
    std::string problemSize; //!< human-readable Full-scale size
    std::string description;
    /** Human-readable Paper-scale (Table I) size; trailing field so
     *  aggregate-initialized registrations without it still compile
     *  (and problemSize strings — printed by the Table I figure —
     *  stay untouched). */
    std::string paperSize;
};

/** One benchmark with instrumented CPU and (optionally) GPU code. */
class Workload
{
  public:
    virtual ~Workload() = default;

    virtual const WorkloadInfo &info() const = 0;

    /**
     * Run the multithreaded CPU implementation under instrumentation.
     * The session supplies the thread count and records the trace.
     */
    virtual void runCpu(trace::TraceSession &session, Scale scale) = 0;

    /** Number of GPU implementation versions (0 = CPU only). */
    virtual int gpuVersions() const { return 0; }

    /**
     * Record the GPU implementation's launch sequence.
     * @param version 1-based implementation version (Table III's
     *        incrementally optimized variants)
     */
    virtual gpusim::LaunchSequence
    runGpu(Scale scale, int version = 1)
    {
        (void)scale;
        (void)version;
        return {};
    }

    /** Deterministic digest of the most recent run's output. */
    virtual uint64_t checksum() const { return 0; }
};

/** Factory signature for registry entries. */
using WorkloadFactory = std::function<std::unique_ptr<Workload>()>;

/** Global name-to-factory registry with suite metadata. */
class Registry
{
  public:
    static Registry &instance();

    /** Register a workload; duplicate names are fatal. */
    void add(const WorkloadInfo &info, WorkloadFactory factory);

    /** Instantiate by name; unknown names are fatal. */
    std::unique_ptr<Workload> create(const std::string &name) const;

    bool has(const std::string &name) const;

    /** Metadata for every registered workload, in insertion order. */
    const std::vector<WorkloadInfo> &all() const { return infos; }

    /** Names of workloads in the given suite (Both matches both). */
    std::vector<std::string> names(Suite suite) const;

  private:
    std::vector<WorkloadInfo> infos;
    std::vector<WorkloadFactory> factories;
};

/**
 * Register every built-in workload (idempotent). Call before using
 * the registry; an explicit call avoids static-initialization-order
 * and static-library dead-stripping hazards.
 */
void registerAllWorkloads();

/** FNV-1a helper for workload checksums. */
inline uint64_t
hashCombine(uint64_t h, uint64_t v)
{
    h ^= v + 0x9e3779b97f4a7c15ULL + (h << 6) + (h >> 2);
    return h;
}

/** Checksum helper over a range of arithmetic values. */
template <typename It>
uint64_t
hashRange(It begin, It end)
{
    uint64_t h = 1469598103934665603ULL;
    for (It it = begin; it != end; ++it) {
        uint64_t bits;
        double d = double(*it);
        static_assert(sizeof(bits) == sizeof(d));
        __builtin_memcpy(&bits, &d, sizeof(bits));
        h = hashCombine(h, bits);
    }
    return h;
}

} // namespace core
} // namespace rodinia

#endif // RODINIA_CORE_WORKLOAD_HH
