/**
 * @file
 * Multicore shared-cache simulator for working-set and sharing
 * analysis (Sections IV-B, V-A; Figures 8, 9, 10).
 *
 * Mirrors Bienia et al.'s methodology: an 8-core CMP with one cache
 * shared by all cores, 4-way associative with 64-byte lines, swept
 * from 128 kB to 16 MB. For every residency of a line we track which
 * threads touched it; a residency touched by more than one thread is
 * "shared", giving the fraction-of-lines-shared and
 * accesses-to-shared-lines-per-memory-reference metrics.
 */

#ifndef RODINIA_CACHESIM_CACHE_HH
#define RODINIA_CACHESIM_CACHE_HH

#include <array>
#include <cstddef>
#include <cstdint>
#include <vector>

namespace rodinia {
namespace trace {
class TraceSession;
} // namespace trace

namespace cachesim {

/** Geometry of one simulated shared cache. */
struct CacheConfig
{
    uint64_t sizeBytes = 4 * 1024 * 1024;
    int assoc = 4;
    int lineBytes = 64;

    /**
     * Check the geometry and fail fast with a clear message instead
     * of silently truncating: sizeBytes must be a positive multiple
     * of assoc * lineBytes, and the set count (like the line size)
     * must be a power of two for the masked index mapping.
     */
    void validate() const;

    /** Number of sets. Fatal if the geometry is invalid. */
    uint64_t numSets() const;
};

/** Counters accumulated while replaying a trace through the cache. */
struct CacheStats
{
    /**
     * LRU stack-distance histogram buckets: hitDepth[d] counts hits
     * whose line sat at depth d (0 = MRU) of its set's recency
     * stack. Depths beyond the last bucket clamp into it. Misses
     * are the accesses in no bucket, so the miss count at a reduced
     * associativity a <= assoc is `accesses - sum(hitDepth[0..a-1])`
     * (Mattson: one replay measures every smaller associativity).
     */
    static constexpr int kDepthBuckets = 8;

    uint64_t accesses = 0;
    uint64_t misses = 0;
    uint64_t evictions = 0;

    /** Line residencies that ended (evicted or still live at end). */
    uint64_t residencies = 0;
    /** Residencies touched by two or more distinct threads. */
    uint64_t sharedResidencies = 0;
    /** Accesses to a line after it became shared in its residency. */
    uint64_t accessesToShared = 0;
    /** Write accesses to shared residencies (communication proxy). */
    uint64_t writesToShared = 0;

    /** Hits per LRU stack depth (see kDepthBuckets). */
    std::array<uint64_t, kDepthBuckets> hitDepth{};

    double
    missRate() const
    {
        return accesses ? double(misses) / double(accesses) : 0.0;
    }

    /** Misses this trace would take at associativity `a` (<= assoc). */
    uint64_t
    missesAtAssoc(int a) const
    {
        uint64_t hits = 0;
        for (int d = 0; d < a && d < kDepthBuckets; ++d)
            hits += hitDepth[size_t(d)];
        return accesses - hits;
    }

    bool
    operator==(const CacheStats &o) const
    {
        return accesses == o.accesses && misses == o.misses &&
               evictions == o.evictions &&
               residencies == o.residencies &&
               sharedResidencies == o.sharedResidencies &&
               accessesToShared == o.accessesToShared &&
               writesToShared == o.writesToShared &&
               hitDepth == o.hitDepth;
    }
    double
    sharedLineFraction() const
    {
        return residencies ? double(sharedResidencies) /
                             double(residencies)
                           : 0.0;
    }
    double
    sharedAccessFraction() const
    {
        return accesses ? double(accessesToShared) / double(accesses)
                        : 0.0;
    }
};

/**
 * One shared, set-associative, LRU, write-allocate cache fed by a
 * multithreaded access stream.
 */
class SharedCache
{
  public:
    explicit SharedCache(const CacheConfig &config);

    /** Replay one access; internally splits line-crossing accesses. */
    void access(int tid, uint64_t addr, uint32_t size, bool is_write);

    /**
     * Finalize statistics: residencies still live in the cache are
     * counted (and classified shared or private). Call once, after
     * the full trace has been replayed.
     */
    const CacheStats &finish();

    const CacheConfig &config() const { return cfg; }
    const CacheStats &stats() const { return counters; }

  private:
    void accessLine(int tid, uint64_t line_addr, bool is_write);

    struct Line
    {
        uint64_t tag = 0;
        uint64_t lastUse = 0;
        uint64_t threadMask = 0;
        bool valid = false;
    };

    CacheConfig cfg;
    CacheStats counters;
    std::vector<Line> lines;   //!< numSets * assoc, set-major
    uint64_t nSets = 0;        //!< cached cfg.numSets()
    int setShift = 0;          //!< log2(nSets)
    uint64_t useClock = 0;
    bool finished = false;
};

/**
 * Replay the session's interleaved memory trace once and return the
 * per-size statistics for every given size. Implemented on the
 * single-pass stack-distance engine (see sweep.hh); byte-identical
 * to replaying a SharedCache per size.
 */
std::vector<CacheStats> sweepCacheSizes(
    const trace::TraceSession &session,
    const std::vector<uint64_t> &sizes_bytes, int assoc = 4,
    int line_bytes = 64);

/** The paper's eight cache sizes: 128 kB .. 16 MB, powers of two. */
std::vector<uint64_t> paperCacheSizes();

} // namespace cachesim
} // namespace rodinia

#endif // RODINIA_CACHESIM_CACHE_HH
