#include "cachesim/cache.hh"

#include "support/logging.hh"
#include "trace/trace.hh"

namespace rodinia {
namespace cachesim {

namespace {

bool
isPow2(uint64_t v)
{
    return v && (v & (v - 1)) == 0;
}

int
popcount64(uint64_t v)
{
    return __builtin_popcountll(v);
}

} // namespace

SharedCache::SharedCache(const CacheConfig &config) : cfg(config)
{
    if (!isPow2(cfg.sizeBytes) || !isPow2(uint64_t(cfg.lineBytes)))
        fatal("SharedCache: size and line size must be powers of two");
    if (cfg.sizeBytes < uint64_t(cfg.assoc) * cfg.lineBytes)
        fatal("SharedCache: cache smaller than one set");
    lines.resize(cfg.numSets() * cfg.assoc);
}

void
SharedCache::access(int tid, uint64_t addr, uint32_t size, bool is_write)
{
    if (finished)
        panic("SharedCache::access after finish()");
    uint64_t first = addr / cfg.lineBytes;
    uint64_t last = (addr + (size ? size - 1 : 0)) / cfg.lineBytes;
    for (uint64_t line = first; line <= last; ++line)
        accessLine(tid, line, is_write);
}

void
SharedCache::accessLine(int tid, uint64_t line_addr, bool is_write)
{
    ++counters.accesses;
    ++useClock;

    // Set-index hashing (XOR-folded upper bits): real L2/L3 caches
    // hash the index, and without it our scaled power-of-two problem
    // sizes place all threads' partition-aligned streams into the
    // same set simultaneously — a synthetic conflict artifact the
    // paper's odd-sized inputs (34 features, 609x590 frames) never
    // hit.
    uint64_t num_sets = cfg.numSets();
    uint64_t set = (line_addr ^ (line_addr / num_sets) * 0x9e3779b9) &
                   (num_sets - 1);
    uint64_t tag = line_addr / num_sets;
    Line *base = &lines[set * cfg.assoc];

    uint64_t tid_bit = 1ULL << (tid & 63);

    // Hit?
    for (int w = 0; w < cfg.assoc; ++w) {
        Line &l = base[w];
        if (l.valid && l.tag == tag) {
            l.lastUse = useClock;
            bool was_shared = popcount64(l.threadMask) > 1;
            l.threadMask |= tid_bit;
            bool now_shared = popcount64(l.threadMask) > 1;
            if (was_shared || now_shared) {
                ++counters.accessesToShared;
                if (is_write)
                    ++counters.writesToShared;
            }
            return;
        }
    }

    // Miss: choose victim (invalid way first, else LRU).
    ++counters.misses;
    Line *victim = base;
    for (int w = 0; w < cfg.assoc; ++w) {
        Line &l = base[w];
        if (!l.valid) {
            victim = &l;
            break;
        }
        if (l.lastUse < victim->lastUse)
            victim = &l;
    }
    if (victim->valid) {
        ++counters.evictions;
        ++counters.residencies;
        if (popcount64(victim->threadMask) > 1)
            ++counters.sharedResidencies;
    }
    victim->valid = true;
    victim->tag = tag;
    victim->lastUse = useClock;
    victim->threadMask = tid_bit;
}

const CacheStats &
SharedCache::finish()
{
    if (finished)
        return counters;
    finished = true;
    for (const Line &l : lines) {
        if (!l.valid)
            continue;
        ++counters.residencies;
        if (popcount64(l.threadMask) > 1)
            ++counters.sharedResidencies;
    }
    return counters;
}

std::vector<CacheStats>
sweepCacheSizes(const trace::TraceSession &session,
                const std::vector<uint64_t> &sizes_bytes, int assoc,
                int line_bytes)
{
    std::vector<SharedCache> caches;
    caches.reserve(sizes_bytes.size());
    for (uint64_t size : sizes_bytes) {
        CacheConfig cfg;
        cfg.sizeBytes = size;
        cfg.assoc = assoc;
        cfg.lineBytes = line_bytes;
        caches.emplace_back(cfg);
    }

    session.forEachInterleaved([&](int tid, const trace::MemEvent &e) {
        for (auto &cache : caches)
            cache.access(tid, e.addr, e.size, e.isWrite != 0);
    });

    std::vector<CacheStats> out;
    out.reserve(caches.size());
    for (auto &cache : caches)
        out.push_back(cache.finish());
    return out;
}

std::vector<uint64_t>
paperCacheSizes()
{
    std::vector<uint64_t> sizes;
    for (uint64_t s = 128 * 1024; s <= 16 * 1024 * 1024; s *= 2)
        sizes.push_back(s);
    return sizes;
}

} // namespace cachesim
} // namespace rodinia
