#include "cachesim/cache.hh"

#include "cachesim/sweep.hh"
#include "support/logging.hh"
#include "trace/trace.hh"

namespace rodinia {
namespace cachesim {

namespace {

bool
isPow2(uint64_t v)
{
    return v && (v & (v - 1)) == 0;
}

int
popcount64(uint64_t v)
{
    return __builtin_popcountll(v);
}

int
log2u64(uint64_t v)
{
    return 63 - __builtin_clzll(v);
}

} // namespace

void
CacheConfig::validate() const
{
    if (assoc <= 0 || lineBytes <= 0)
        fatal("CacheConfig: assoc (", assoc, ") and line size (",
              lineBytes, ") must be positive");
    if (!isPow2(uint64_t(lineBytes)))
        fatal("CacheConfig: line size ", lineBytes,
              " B must be a power of two");
    uint64_t set_bytes = uint64_t(assoc) * uint64_t(lineBytes);
    if (sizeBytes == 0 || sizeBytes % set_bytes != 0)
        fatal("CacheConfig: size ", sizeBytes,
              " B is not a positive multiple of assoc * line = ",
              set_bytes, " B (the set count would truncate)");
    if (!isPow2(sizeBytes / set_bytes))
        fatal("CacheConfig: ", sizeBytes / set_bytes,
              " sets; the set count must be a power of two for the "
              "masked index mapping");
}

uint64_t
CacheConfig::numSets() const
{
    validate();
    return sizeBytes / (uint64_t(assoc) * lineBytes);
}

SharedCache::SharedCache(const CacheConfig &config) : cfg(config)
{
    cfg.validate();
    nSets = cfg.numSets();
    setShift = log2u64(nSets);
    lines.resize(nSets * cfg.assoc);
}

void
SharedCache::access(int tid, uint64_t addr, uint32_t size, bool is_write)
{
    if (finished)
        panic("SharedCache::access after finish()");
    uint64_t first = addr / cfg.lineBytes;
    uint64_t last = (addr + (size ? size - 1 : 0)) / cfg.lineBytes;
    for (uint64_t line = first; line <= last; ++line)
        accessLine(tid, line, is_write);
}

void
SharedCache::accessLine(int tid, uint64_t line_addr, bool is_write)
{
    ++counters.accesses;
    ++useClock;

    // Set-index hashing (XOR-folded upper bits): real L2/L3 caches
    // hash the index, and without it our scaled power-of-two problem
    // sizes place all threads' partition-aligned streams into the
    // same set simultaneously — a synthetic conflict artifact the
    // paper's odd-sized inputs (34 features, 609x590 frames) never
    // hit.
    uint64_t set = (line_addr ^ (line_addr >> setShift) * 0x9e3779b9) &
                   (nSets - 1);
    uint64_t tag = line_addr >> setShift;
    Line *base = &lines[set * cfg.assoc];

    uint64_t tid_bit = 1ULL << (tid & 63);

    // Hit?
    for (int w = 0; w < cfg.assoc; ++w) {
        Line &l = base[w];
        if (l.valid && l.tag == tag) {
            // LRU stack distance: how many set-mates were used more
            // recently. Valid lines carry distinct lastUse stamps,
            // so this is the line's depth in the recency stack.
            int depth = 0;
            for (int v = 0; v < cfg.assoc; ++v)
                if (base[v].valid && base[v].lastUse > l.lastUse)
                    ++depth;
            if (depth >= CacheStats::kDepthBuckets)
                depth = CacheStats::kDepthBuckets - 1;
            ++counters.hitDepth[size_t(depth)];
            l.lastUse = useClock;
            bool was_shared = popcount64(l.threadMask) > 1;
            l.threadMask |= tid_bit;
            bool now_shared = popcount64(l.threadMask) > 1;
            if (was_shared || now_shared) {
                ++counters.accessesToShared;
                if (is_write)
                    ++counters.writesToShared;
            }
            return;
        }
    }

    // Miss: choose victim (invalid way first, else LRU).
    ++counters.misses;
    Line *victim = base;
    for (int w = 0; w < cfg.assoc; ++w) {
        Line &l = base[w];
        if (!l.valid) {
            victim = &l;
            break;
        }
        if (l.lastUse < victim->lastUse)
            victim = &l;
    }
    if (victim->valid) {
        ++counters.evictions;
        ++counters.residencies;
        if (popcount64(victim->threadMask) > 1)
            ++counters.sharedResidencies;
    }
    victim->valid = true;
    victim->tag = tag;
    victim->lastUse = useClock;
    victim->threadMask = tid_bit;
}

const CacheStats &
SharedCache::finish()
{
    if (finished)
        return counters;
    finished = true;
    for (const Line &l : lines) {
        if (!l.valid)
            continue;
        ++counters.residencies;
        if (popcount64(l.threadMask) > 1)
            ++counters.sharedResidencies;
    }
    return counters;
}

std::vector<CacheStats>
sweepCacheSizes(const trace::TraceSession &session,
                const std::vector<uint64_t> &sizes_bytes, int assoc,
                int line_bytes)
{
    SweepConfig cfg;
    cfg.sizesBytes = sizes_bytes;
    cfg.assoc = assoc;
    cfg.lineBytes = line_bytes;
    return runSweep(session, cfg).stats;
}

std::vector<uint64_t>
paperCacheSizes()
{
    std::vector<uint64_t> sizes;
    for (uint64_t s = 128 * 1024; s <= 16 * 1024 * 1024; s *= 2)
        sizes.push_back(s);
    return sizes;
}

} // namespace cachesim
} // namespace rodinia
