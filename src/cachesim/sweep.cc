#include "cachesim/sweep.hh"

#include <chrono>
#include <cstring>

#include "support/cancel.hh"
#include "support/logging.hh"
#include "trace/trace.hh"

namespace rodinia {
namespace cachesim {

namespace {

int
popcount64(uint64_t v)
{
    return __builtin_popcountll(v);
}

int
log2u64(uint64_t v)
{
    return 63 - __builtin_clzll(v);
}

} // namespace

CacheSweep::CacheSweep(const SweepConfig &config) : cfg(config)
{
    if (cfg.sizesBytes.empty())
        fatal("CacheSweep: no cache sizes to sweep");
    lineShift = log2u64(uint64_t(cfg.lineBytes));
    levels.resize(cfg.sizesBytes.size());
    for (size_t i = 0; i < cfg.sizesBytes.size(); ++i) {
        CacheConfig geom;
        geom.sizeBytes = cfg.sizesBytes[i];
        geom.assoc = cfg.assoc;
        geom.lineBytes = cfg.lineBytes;
        Level &lv = levels[i];
        lv.nSets = geom.numSets(); // validates, fatal on bad geometry
        lv.setShift = log2u64(lv.nSets);
        lv.ways.resize(lv.nSets * size_t(cfg.assoc));
        lv.fill.assign(lv.nSets, 0);
    }
}

void
CacheSweep::accessLine(uint64_t tid_bit, uint64_t line_addr,
                       bool is_write)
{
    if (finished)
        panic("CacheSweep::access after finish()");
    ++lineAccesses;
    for (Level &lv : levels) {
        CacheStats &st = lv.stats;
        ++st.accesses;

        // Same XOR-folded index hash as SharedCache (see cache.cc for
        // the rationale); the stacks below are its LRU order with the
        // timestamps replaced by position.
        uint64_t set =
            (line_addr ^ (line_addr >> lv.setShift) * 0x9e3779b9) &
            (lv.nSets - 1);
        uint64_t tag = line_addr >> lv.setShift;
        Way *base = &lv.ways[set * size_t(cfg.assoc)];
        int n = lv.fill[set];

        // MRU fast path: a re-reference of the stack head needs no
        // reordering, and it is the overwhelmingly common case on
        // looping workloads, so skip the scan-and-memmove entirely.
        // The bookkeeping matches the depth==0 arm of the slow path
        // exactly.
        if (n > 0 && base[0].tag == tag) {
            ++st.hitDepth[0];
            uint64_t mask = base[0].threadMask;
            bool was_shared = popcount64(mask) > 1;
            mask |= tid_bit;
            if (was_shared || popcount64(mask) > 1) {
                ++st.accessesToShared;
                if (is_write)
                    ++st.writesToShared;
            }
            base[0].threadMask = mask;
            continue;
        }

        int depth = 1;
        while (depth < n && base[depth].tag != tag)
            ++depth;

        if (depth < n) {
            // Hit: the MRU-stack index IS the LRU stack distance.
            int bucket = depth < CacheStats::kDepthBuckets
                             ? depth
                             : CacheStats::kDepthBuckets - 1;
            ++st.hitDepth[size_t(bucket)];
            uint64_t mask = base[depth].threadMask;
            bool was_shared = popcount64(mask) > 1;
            mask |= tid_bit;
            bool now_shared = popcount64(mask) > 1;
            if (was_shared || now_shared) {
                ++st.accessesToShared;
                if (is_write)
                    ++st.writesToShared;
            }
            std::memmove(base + 1, base, sizeof(Way) * size_t(depth));
            base[0] = Way{tag, mask};
        } else {
            ++st.misses;
            if (n == cfg.assoc) {
                // Stack full: the tail is the LRU victim.
                const Way &victim = base[n - 1];
                ++st.evictions;
                ++st.residencies;
                if (popcount64(victim.threadMask) > 1)
                    ++st.sharedResidencies;
                std::memmove(base + 1, base,
                             sizeof(Way) * size_t(n - 1));
            } else {
                std::memmove(base + 1, base, sizeof(Way) * size_t(n));
                ++lv.fill[set];
            }
            base[0] = Way{tag, tid_bit};
        }
    }
}

SweepResult
CacheSweep::finish(double replay_seconds)
{
    if (finished)
        panic("CacheSweep::finish called twice");
    finished = true;
    SweepResult result;
    result.sizesBytes = cfg.sizesBytes;
    result.stats.reserve(levels.size());
    for (Level &lv : levels) {
        for (uint64_t set = 0; set < lv.nSets; ++set) {
            const Way *base = &lv.ways[set * size_t(cfg.assoc)];
            for (int w = 0; w < lv.fill[set]; ++w) {
                ++lv.stats.residencies;
                if (popcount64(base[w].threadMask) > 1)
                    ++lv.stats.sharedResidencies;
            }
        }
        result.stats.push_back(lv.stats);
    }
    result.lineAccesses = lineAccesses;
    result.replaySeconds = replay_seconds;
    return result;
}

SweepResult
runSweep(const trace::TraceSession &session, const SweepConfig &config)
{
    CacheSweep sweep(config);
    auto t0 = std::chrono::steady_clock::now();
    uint64_t events = 0;
    session.forEachInterleaved(
        [&sweep, &events](int tid, const trace::MemEvent &e) {
            // Cooperative cancellation checkpoint, strided to keep
            // the replay loop's per-event cost unchanged.
            if ((++events & 0xfffff) == 0)
                support::checkpointCancellation();
            sweep.access(tid, e.addr, e.size, e.isWrite != 0);
        });
    double seconds =
        std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                      t0)
            .count();
    return sweep.finish(seconds);
}

} // namespace cachesim
} // namespace rodinia
