/**
 * @file
 * Single-pass multi-configuration cache sweep (Figures 8, 9, 10).
 *
 * The paper sweeps one shared cache from 128 kB to 16 MB at fixed
 * 4-way/64 B geometry. Simulating each size independently repeats
 * identical work per trace event: the line split, the interleaving
 * walk, and a timestamped LRU update per size. This engine replays
 * the trace ONCE and maintains, for every swept size, per-set LRU
 * stacks ordered most- to least-recently used (Mattson-style): a
 * hit's position in its stack is its stack distance, recorded into
 * CacheStats::hitDepth, and the stack's tail is the LRU victim, so
 * misses, evictions, and the shared-residency bookkeeping fall out
 * for all sizes in the same pass — plus, from the distance
 * histogram, the miss count at every associativity below the
 * simulated one for free.
 *
 * Equivalence contract: for each size the per-set stack order equals
 * the lastUse-timestamp order SharedCache maintains, and the
 * sharing counters are updated at the same points, so every
 * CacheStats field is byte-identical to an independent SharedCache
 * replay of the same interleaved trace (asserted by the equivalence
 * property tests; SharedCache remains the oracle).
 */

#ifndef RODINIA_CACHESIM_SWEEP_HH
#define RODINIA_CACHESIM_SWEEP_HH

#include <cstdint>
#include <vector>

#include "cachesim/cache.hh"

namespace rodinia {
namespace trace {
class TraceSession;
} // namespace trace

namespace cachesim {

/** Geometry shared by every configuration of one sweep. */
struct SweepConfig
{
    std::vector<uint64_t> sizesBytes; //!< one simulated cache each
    int assoc = 4;
    int lineBytes = 64;
};

/** Everything one replay pass measured. */
struct SweepResult
{
    std::vector<uint64_t> sizesBytes;
    std::vector<CacheStats> stats; //!< parallel to sizesBytes

    /** Line-granular accesses replayed (equal for every size). */
    uint64_t lineAccesses = 0;
    /** Wall-clock spent replaying (observability, not serialized). */
    double replaySeconds = 0.0;

    double
    accessesPerSecond() const
    {
        return replaySeconds > 0.0 ? double(lineAccesses) /
                                     replaySeconds
                                   : 0.0;
    }
};

/**
 * The single-pass engine. Feed the interleaved access stream through
 * access(), then collect everything with finish(). Use runSweep()
 * for the common replay-a-session case.
 */
class CacheSweep
{
  public:
    explicit CacheSweep(const SweepConfig &config);

    /** Replay one access; internally splits line-crossing accesses. */
    void
    access(int tid, uint64_t addr, uint32_t size, bool is_write)
    {
        uint64_t first = addr >> lineShift;
        uint64_t last = (addr + (size ? size - 1 : 0)) >> lineShift;
        uint64_t tid_bit = 1ULL << (tid & 63);
        for (uint64_t line = first; line <= last; ++line)
            accessLine(tid_bit, line, is_write);
    }

    /**
     * Finalize statistics: residencies still live are counted and
     * classified, exactly like SharedCache::finish(). Call once.
     */
    SweepResult finish(double replay_seconds = 0.0);

    const SweepConfig &config() const { return cfg; }

  private:
    /** One resident line: identity plus the threads that touched it
     *  this residency. Stored in MRU-to-LRU order within its set. */
    struct Way
    {
        uint64_t tag;
        uint64_t threadMask;
    };

    /** One swept cache size. */
    struct Level
    {
        uint64_t nSets = 0;
        int setShift = 0;            //!< log2(nSets)
        std::vector<Way> ways;       //!< nSets * assoc, set-major
        std::vector<uint8_t> fill;   //!< valid ways per set
        CacheStats stats;
    };

    void accessLine(uint64_t tid_bit, uint64_t line_addr,
                    bool is_write);

    SweepConfig cfg;
    std::vector<Level> levels;
    int lineShift = 6;
    uint64_t lineAccesses = 0;
    bool finished = false;
};

/**
 * Replay the session's deterministic interleaved trace through the
 * engine and return the per-size statistics plus replay telemetry.
 */
SweepResult runSweep(const trace::TraceSession &session,
                     const SweepConfig &config);

} // namespace cachesim
} // namespace rodinia

#endif // RODINIA_CACHESIM_SWEEP_HH
