#include "trace/stream.hh"

#include <atomic>

#include "support/logging.hh"

namespace rodinia {
namespace trace {

namespace {

/** Process-wide spill configuration (install-before-record). */
ChunkSink *g_sink = nullptr;
uint32_t g_residentChunks = 0;
std::atomic<uint64_t> g_chunksSpilled{0};

/** Append a length-prefixed byte column to blob. */
void
putColumn(std::string &blob, const std::vector<uint8_t> &col)
{
    std::vector<uint8_t> len;
    support::putVarint(len, col.size());
    blob.append(reinterpret_cast<const char *>(len.data()), len.size());
    blob.append(reinterpret_cast<const char *>(col.data()), col.size());
}

} // namespace

ChunkSink *
setTraceSpill(ChunkSink *sink, uint32_t residentChunks)
{
    ChunkSink *prev = g_sink;
    g_sink = sink;
    g_residentChunks = sink ? residentChunks : 0;
    return prev;
}

ChunkSink *
traceSpillSink()
{
    return g_sink;
}

uint32_t
traceSpillResidentChunks()
{
    return g_residentChunks;
}

uint64_t
traceChunksSpilled()
{
    return g_chunksSpilled.load(std::memory_order_relaxed);
}

uint64_t
chunkContentHash(const std::string &blob)
{
    uint64_t h = 0xcbf29ce484222325ull; // FNV-1a 64
    for (unsigned char c : blob)
        h = (h ^ c) * 0x100000001b3ull;
    return h;
}

void
EventStream::startChunk(uint64_t addr)
{
    // Enforce the resident ring before growing: sealed chunks beyond
    // the bound go to the sink oldest-first, so memory holds only the
    // open chunk plus the configured window of recent ones.
    if (g_sink != nullptr) {
        size_t sealed = chunks.size();
        while (sealed - firstResident > g_residentChunks) {
            spillOldest();
        }
    }
    chunks.emplace_back();
    chunks.back().baseAddr = addr;
    prevAddr = addr;
    flagAccum = 0;
    flagBits = 0;
}

void
EventStream::seal()
{
    Chunk &c = chunks.back();
    if (flagBits & 7) {
        c.flags.push_back(flagAccum);
        flagAccum = 0;
    }
    c.n = openN;
    openN = 0;
}

void
EventStream::spillOldest()
{
    Chunk &c = chunks[firstResident];
    std::string blob;
    std::vector<uint8_t> hdr;
    support::putVarint(hdr, c.n);
    support::putVarint(hdr, c.baseAddr);
    blob.append(reinterpret_cast<const char *>(hdr.data()), hdr.size());
    putColumn(blob, c.addrs);
    putColumn(blob, c.sizes);
    putColumn(blob, c.flags);
    c.spillKey = chunkContentHash(blob);
    c.encodedSize = uint32_t(blob.size());
    g_sink->put(c.spillKey, blob);
    c.addrs = {};
    c.sizes = {};
    c.flags = {};
    c.spilled = true;
    ++firstResident;
    ++nSpilled;
    g_chunksSpilled.fetch_add(1, std::memory_order_relaxed);
}

bool
EventStream::Cursor::openNextChunk()
{
    while (true) {
        if (nextChunk >= s->chunks.size())
            return false;
        const Chunk &c = s->chunks[nextChunk++];
        bool open = nextChunk == s->chunks.size() && s->openN > 0;
        uint32_t n = open ? s->openN : c.n;
        if (n == 0)
            continue; // sealed-empty should not happen; be safe
        if (c.spilled) {
            ChunkSink *sink = traceSpillSink();
            if (!fetched)
                fetched = std::make_unique<std::string>();
            if (sink == nullptr || !sink->get(c.spillKey, *fetched))
                panic("EventStream: spilled trace chunk ",
                      c.spillKey, " unavailable");
            const uint8_t *p =
                reinterpret_cast<const uint8_t *>(fetched->data());
            uint32_t bn = uint32_t(support::getVarint(p));
            if (bn != n)
                panic("EventStream: spilled chunk ", c.spillKey,
                      " event count mismatch");
            prevAddr = support::getVarint(p);
            uint64_t aLen = support::getVarint(p);
            pa = p;
            p += aLen;
            uint64_t sLen = support::getVarint(p);
            ps = p;
            p += sLen;
            uint64_t fLen = support::getVarint(p);
            pf = p;
            flagBytes = uint32_t(fLen);
            tailFlags = 0;
        } else {
            prevAddr = c.baseAddr;
            pa = c.addrs.data();
            ps = c.sizes.data();
            pf = c.flags.data();
            flagBytes = uint32_t(c.flags.size());
            tailFlags = open ? s->flagAccum : 0;
        }
        chunkN = n;
        inChunk = 0;
        return true;
    }
}

uint64_t
EventStream::encodedBytes() const
{
    if (materializedMode)
        return count * sizeof(MemEvent);
    uint64_t bytes = 0;
    for (const auto &c : chunks) {
        if (c.spilled)
            bytes += c.encodedSize;
        else
            bytes += c.addrs.size() + c.sizes.size() + c.flags.size();
    }
    return bytes;
}

std::vector<MemEvent>
EventStream::decodeAll() const
{
    std::vector<MemEvent> out;
    out.reserve(size_t(count));
    forEach([&](const MemEvent &e) { out.push_back(e); });
    return out;
}

} // namespace trace
} // namespace rodinia
