/**
 * @file
 * Source-level instrumentation substrate — the Pin analog.
 *
 * The paper collects its CPU-side metrics (instruction mix, cache
 * behavior, sharing, footprints) with Pin binary instrumentation. We
 * substitute source-level instrumentation: every workload performs
 * its real computation through a trace::ThreadCtx, which records
 * per-thread instruction-mix counters, a memory-access trace, the set
 * of static instrumentation sites executed (for instruction
 * footprints), and the set of data pages touched.
 *
 * Workloads run on real std::threads; the session interleaves the
 * per-thread memory traces round-robin when feeding cache simulation
 * so results are deterministic.
 */

#ifndef RODINIA_TRACE_TRACE_HH
#define RODINIA_TRACE_TRACE_HH

#include <barrier>
#include <cstdint>
#include <functional>
#include <memory>
#include <source_location>
#include <string_view>
#include <unordered_map>
#include <unordered_set>
#include <vector>

namespace rodinia {
namespace trace {

/** One recorded memory access. */
struct MemEvent
{
    uint64_t addr;
    uint16_t size;
    uint8_t isWrite;
};

/** Dynamic instruction-mix counters (Bienia et al.'s categories). */
struct InstrMix
{
    uint64_t intOps = 0;
    uint64_t fpOps = 0;
    uint64_t branches = 0;
    uint64_t loads = 0;
    uint64_t stores = 0;

    uint64_t total() const
    {
        return intOps + fpOps + branches + loads + stores;
    }
    uint64_t memRefs() const { return loads + stores; }

    InstrMix &
    operator+=(const InstrMix &o)
    {
        intOps += o.intOps;
        fpOps += o.fpOps;
        branches += o.branches;
        loads += o.loads;
        stores += o.stores;
        return *this;
    }
};

class TraceSession;

/**
 * Per-thread instrumentation handle. A workload thread performs its
 * real loads/stores through ld()/st() (or reports them with
 * load()/store()) and reports computation with alu()/fp()/branch().
 *
 * Each call site is identified via std::source_location, which
 * models the static code footprint: distinct sites executed stand in
 * for distinct instruction blocks in the compiled binary.
 */
class ThreadCtx
{
  public:
    ThreadCtx(TraceSession *session, int tid);

    int tid() const { return threadId; }
    int numThreads() const;

    /** Record a load of `size` bytes at `a`. */
    void
    load(const void *a, size_t size,
         std::source_location loc = std::source_location::current())
    {
        mix.loads++;
        touchSite(loc);
        if (recording)
            memTrace.push_back({uint64_t(uintptr_t(a)),
                                uint16_t(size), 0});
    }

    /** Record a store of `size` bytes at `a`. */
    void
    store(const void *a, size_t size,
          std::source_location loc = std::source_location::current())
    {
        mix.stores++;
        touchSite(loc);
        if (recording)
            memTrace.push_back({uint64_t(uintptr_t(a)),
                                uint16_t(size), 1});
    }

    /** Load through the instrumentation: returns *p and records. */
    template <typename T>
    T
    ld(const T *p, std::source_location loc = std::source_location::current())
    {
        load(p, sizeof(T), loc);
        return *p;
    }

    /** Store through the instrumentation: *p = v and records. */
    template <typename T>
    void
    st(T *p, const T &v,
       std::source_location loc = std::source_location::current())
    {
        store(p, sizeof(T), loc);
        *p = v;
    }

    /** Report `n` integer ALU operations at this site. */
    void
    alu(uint64_t n = 1,
        std::source_location loc = std::source_location::current())
    {
        mix.intOps += n;
        touchSite(loc);
    }

    /** Report `n` floating-point operations at this site. */
    void
    fp(uint64_t n = 1,
       std::source_location loc = std::source_location::current())
    {
        mix.fpOps += n;
        touchSite(loc);
    }

    /** Report `n` branch instructions at this site. */
    void
    branch(uint64_t n = 1,
           std::source_location loc = std::source_location::current())
    {
        mix.branches += n;
        touchSite(loc);
    }

    /**
     * Declare that this thread executes a static code region of
     * roughly `bytes` bytes of machine code (the hot text of the
     * real application this workload models). Instruction footprints
     * (Fig. 11) combine these regions with the per-site model, since
     * source-level instrumentation cannot observe compiled code
     * size directly.
     */
    void
    codeRegion(uint64_t bytes,
               std::source_location loc = std::source_location::current())
    {
        uint64_t key = std::hash<std::string_view>{}(loc.file_name());
        key ^= (uint64_t(loc.line()) << 12) ^ loc.column();
        regionMap[key] = bytes;
    }

    const std::unordered_map<uint64_t, uint64_t> &regions() const
    {
        return regionMap;
    }

    /** Block until every workload thread reaches the barrier. */
    void barrier();

    const InstrMix &instrMix() const { return mix; }
    const std::vector<MemEvent> &events() const { return memTrace; }
    const std::unordered_set<uint64_t> &sites() const { return siteSet; }

  private:
    void
    touchSite(const std::source_location &loc)
    {
        // One-entry site cache: a tight instrumented loop touches the
        // same source location on every iteration, so compare the
        // (stable) file-name pointer and line/column first and skip
        // the string hash + set probe on a repeat. The set contents
        // are unchanged — the skipped key was inserted by the
        // previous call.
        const char *file = loc.file_name();
        uint64_t lc = (uint64_t(loc.line()) << 12) ^ loc.column();
        if (file == lastSiteFile && lc == lastSiteLc)
            return;
        lastSiteFile = file;
        lastSiteLc = lc;
        uint64_t key = std::hash<std::string_view>{}(file);
        key ^= lc;
        siteSet.insert(key);
    }

    TraceSession *session;
    int threadId;
    bool recording;
    InstrMix mix;
    std::vector<MemEvent> memTrace;
    std::unordered_set<uint64_t> siteSet;
    std::unordered_map<uint64_t, uint64_t> regionMap;
    const char *lastSiteFile = nullptr;
    uint64_t lastSiteLc = 0;

    friend class TraceSession;
};

/**
 * Runs an instrumented multithreaded workload and aggregates the
 * per-thread recordings.
 */
class TraceSession
{
  public:
    /**
     * @param num_threads number of workload threads to spawn
     * @param record keep full memory traces (disable for functional
     *        tests that only need the computation, not the metrics)
     */
    explicit TraceSession(int num_threads, bool record = true);
    ~TraceSession();

    TraceSession(const TraceSession &) = delete;
    TraceSession &operator=(const TraceSession &) = delete;

    /** Execute fn once per thread, concurrently. */
    void run(const std::function<void(ThreadCtx &)> &fn);

    int numThreads() const { return nThreads; }
    bool recordsEvents() const { return recording; }

    /** Per-thread contexts (valid after run()). */
    const std::vector<std::unique_ptr<ThreadCtx>> &contexts() const
    {
        return ctxs;
    }

    /** Instruction mix summed over all threads. */
    InstrMix totalMix() const;

    /** Total recorded memory events across threads. */
    uint64_t totalEvents() const;

    /** Number of distinct static instrumentation sites executed. */
    uint64_t instructionSites() const;

    /**
     * Modeled instruction footprint in 64-byte blocks (Fig. 11).
     * Each distinct site stands for bytesPerSite bytes of machine
     * code.
     */
    uint64_t instructionFootprintBlocks() const;

    /** Distinct 4 kB data pages touched (Fig. 12). */
    uint64_t dataFootprintPages() const;

    /**
     * Visit all recorded memory events in a deterministic
     * round-robin interleaving across threads (models concurrent
     * execution when replaying into a cache simulator). Templated so
     * replay loops inline the visitor instead of paying a
     * std::function dispatch per event.
     */
    template <typename Fn>
    void
    forEachInterleaved(Fn &&fn) const
    {
        std::vector<size_t> cursor(ctxs.size(), 0);
        bool any = true;
        while (any) {
            any = false;
            for (size_t t = 0; t < ctxs.size(); ++t) {
                const auto &ev = ctxs[t]->events();
                if (cursor[t] < ev.size()) {
                    fn(int(t), ev[cursor[t]]);
                    ++cursor[t];
                    any = true;
                }
            }
        }
    }

    /**
     * Rewrite every recorded address onto a canonical layout so a
     * characterization is byte-identical across processes by
     * construction, independent of where the heap happened to land
     * (ASLR, allocator phase):
     *
     *  - events are first split at 64 B line boundaries, so each
     *    event touches exactly one line (the cache simulators split
     *    them anyway; pre-splitting makes every event relocatable);
     *  - each distinct 4 kB page is assigned a sequential virtual
     *    page on first touch in the deterministic interleaved order;
     *  - within each page, each distinct 64 B line is assigned a
     *    sequential slot on first touch in the same order, erasing
     *    the allocator's intra-page phase.
     *
     * Distinct-page and distinct-line counts, sharing, and event
     * sizes are preserved exactly; byte offsets within a line are
     * not meaningful afterwards. Call once, after run() and before
     * replaying the trace.
     */
    void normalizeAddresses();

    /** Bytes of machine code modeled per instrumentation site. */
    static constexpr uint64_t bytesPerSite = 16;

  private:
    int nThreads;
    bool recording;
    std::vector<std::unique_ptr<ThreadCtx>> ctxs;
    std::unique_ptr<std::barrier<>> syncBarrier;

    friend class ThreadCtx;
};

} // namespace trace
} // namespace rodinia

#endif // RODINIA_TRACE_TRACE_HH
