/**
 * @file
 * Source-level instrumentation substrate — the Pin analog.
 *
 * The paper collects its CPU-side metrics (instruction mix, cache
 * behavior, sharing, footprints) with Pin binary instrumentation. We
 * substitute source-level instrumentation: every workload performs
 * its real computation through a trace::ThreadCtx, which records
 * per-thread instruction-mix counters, a memory-access trace, the set
 * of static instrumentation sites executed (for instruction
 * footprints), and the set of data pages touched.
 *
 * Memory traces are stored as compact delta-encoded streams
 * (trace::EventStream) so paper-scale inputs fit in memory; accesses
 * are split at 64-byte line boundaries at record time, so every
 * stored event covers exactly one cache line (and a multi-megabyte
 * access can never truncate the uint16_t size field).
 *
 * Workloads run on real std::threads; the session interleaves the
 * per-thread memory traces round-robin when feeding cache simulation
 * so results are deterministic.
 */

#ifndef RODINIA_TRACE_TRACE_HH
#define RODINIA_TRACE_TRACE_HH

#include <algorithm>
#include <barrier>
#include <cassert>
#include <cstdint>
#include <functional>
#include <memory>
#include <source_location>
#include <string_view>
#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "trace/stream.hh"

namespace rodinia {
namespace trace {

/** Dynamic instruction-mix counters (Bienia et al.'s categories). */
struct InstrMix
{
    uint64_t intOps = 0;
    uint64_t fpOps = 0;
    uint64_t branches = 0;
    uint64_t loads = 0;
    uint64_t stores = 0;

    uint64_t total() const
    {
        return intOps + fpOps + branches + loads + stores;
    }
    uint64_t memRefs() const { return loads + stores; }

    InstrMix &
    operator+=(const InstrMix &o)
    {
        intOps += o.intOps;
        fpOps += o.fpOps;
        branches += o.branches;
        loads += o.loads;
        stores += o.stores;
        return *this;
    }
};

class TraceSession;

/**
 * Per-thread instrumentation handle. A workload thread performs its
 * real loads/stores through ld()/st() (or reports them with
 * load()/store()) and reports computation with alu()/fp()/branch().
 *
 * Each call site is identified via std::source_location, which
 * models the static code footprint: distinct sites executed stand in
 * for distinct instruction blocks in the compiled binary.
 */
class ThreadCtx
{
  public:
    ThreadCtx(TraceSession *session, int tid);

    int tid() const { return threadId; }
    int numThreads() const;

    /** Record a load of `size` bytes at `a`. */
    void
    load(const void *a, size_t size,
         std::source_location loc = std::source_location::current())
    {
        mix.loads++;
        touchSite(loc);
        if (recording)
            record(uint64_t(uintptr_t(a)), size, 0);
    }

    /** Record a store of `size` bytes at `a`. */
    void
    store(const void *a, size_t size,
          std::source_location loc = std::source_location::current())
    {
        mix.stores++;
        touchSite(loc);
        if (recording)
            record(uint64_t(uintptr_t(a)), size, 1);
    }

    /** Load through the instrumentation: returns *p and records. */
    template <typename T>
    T
    ld(const T *p, std::source_location loc = std::source_location::current())
    {
        load(p, sizeof(T), loc);
        return *p;
    }

    /** Store through the instrumentation: *p = v and records. */
    template <typename T>
    void
    st(T *p, const T &v,
       std::source_location loc = std::source_location::current())
    {
        store(p, sizeof(T), loc);
        *p = v;
    }

    /** Report `n` integer ALU operations at this site. */
    void
    alu(uint64_t n = 1,
        std::source_location loc = std::source_location::current())
    {
        mix.intOps += n;
        touchSite(loc);
    }

    /** Report `n` floating-point operations at this site. */
    void
    fp(uint64_t n = 1,
       std::source_location loc = std::source_location::current())
    {
        mix.fpOps += n;
        touchSite(loc);
    }

    /** Report `n` branch instructions at this site. */
    void
    branch(uint64_t n = 1,
           std::source_location loc = std::source_location::current())
    {
        mix.branches += n;
        touchSite(loc);
    }

    /**
     * Declare that this thread executes a static code region of
     * roughly `bytes` bytes of machine code (the hot text of the
     * real application this workload models). Instruction footprints
     * (Fig. 11) combine these regions with the per-site model, since
     * source-level instrumentation cannot observe compiled code
     * size directly.
     */
    void
    codeRegion(uint64_t bytes,
               std::source_location loc = std::source_location::current())
    {
        uint64_t key = std::hash<std::string_view>{}(loc.file_name());
        key ^= (uint64_t(loc.line()) << 12) ^ loc.column();
        regionMap[key] = bytes;
    }

    const std::unordered_map<uint64_t, uint64_t> &regions() const
    {
        return regionMap;
    }

    /** Block until every workload thread reaches the barrier. */
    void barrier();

    const InstrMix &instrMix() const { return mix; }

    /** This thread's recorded memory trace (line-granular events). */
    const EventStream &stream() const { return memTrace; }

    /** Recorded events after line splitting. */
    uint64_t eventCount() const { return memTrace.size(); }

    /** Materialize the trace (tests / small traces only). */
    std::vector<MemEvent> eventsCopy() const { return memTrace.decodeAll(); }

    const std::unordered_set<uint64_t> &sites() const { return siteSet; }

  private:
    /**
     * Append one access, split at 64 B line boundaries so every
     * stored event covers exactly one line. This makes the uint16_t
     * size field exact by construction — a >64 KiB access used to
     * wrap it silently, corrupting footprint and cache statistics —
     * and lets normalizeAddresses remap each line independently
     * without a second splitting pass.
     */
    void
    record(uint64_t addr, size_t size, uint8_t isWrite)
    {
        if (size == 0) {
            memTrace.append(addr, 0, isWrite);
            return;
        }
        uint64_t end = addr + size;
        if ((addr >> 6) == ((end - 1) >> 6)) { // common: one line
            memTrace.append(addr, uint16_t(size), isWrite);
            return;
        }
        while (addr < end) {
            uint64_t piece = std::min(end, (addr | 63) + 1) - addr;
            assert(piece <= 64 && "line split produced oversize piece");
            memTrace.append(addr, uint16_t(piece), isWrite);
            addr += piece;
        }
    }

    void
    touchSite(const std::source_location &loc)
    {
        // One-entry site cache: a tight instrumented loop touches the
        // same source location on every iteration, so compare the
        // (stable) file-name pointer and line/column first and skip
        // the string hash + set probe on a repeat. The set contents
        // are unchanged — the skipped key was inserted by the
        // previous call.
        const char *file = loc.file_name();
        uint64_t lc = (uint64_t(loc.line()) << 12) ^ loc.column();
        if (file == lastSiteFile && lc == lastSiteLc)
            return;
        lastSiteFile = file;
        lastSiteLc = lc;
        uint64_t key = std::hash<std::string_view>{}(file);
        key ^= lc;
        siteSet.insert(key);
    }

    TraceSession *session;
    int threadId;
    bool recording;
    InstrMix mix;
    EventStream memTrace;
    std::unordered_set<uint64_t> siteSet;
    std::unordered_map<uint64_t, uint64_t> regionMap;
    const char *lastSiteFile = nullptr;
    uint64_t lastSiteLc = 0;

    friend class TraceSession;
};

/**
 * Runs an instrumented multithreaded workload and aggregates the
 * per-thread recordings.
 */
class TraceSession
{
  public:
    /**
     * @param num_threads number of workload threads to spawn
     * @param record keep full memory traces (disable for functional
     *        tests that only need the computation, not the metrics)
     */
    explicit TraceSession(int num_threads, bool record = true);
    ~TraceSession();

    TraceSession(const TraceSession &) = delete;
    TraceSession &operator=(const TraceSession &) = delete;

    /** Execute fn once per thread, concurrently. */
    void run(const std::function<void(ThreadCtx &)> &fn);

    int numThreads() const { return nThreads; }
    bool recordsEvents() const { return recording; }

    /** Per-thread contexts (valid after run()). */
    const std::vector<std::unique_ptr<ThreadCtx>> &contexts() const
    {
        return ctxs;
    }

    /** Instruction mix summed over all threads. */
    InstrMix totalMix() const;

    /** Total recorded memory events across threads. */
    uint64_t totalEvents() const;

    /** Number of distinct static instrumentation sites executed. */
    uint64_t instructionSites() const;

    /**
     * Modeled instruction footprint in 64-byte blocks (Fig. 11).
     * Each distinct site stands for bytesPerSite bytes of machine
     * code.
     */
    uint64_t instructionFootprintBlocks() const;

    /** Distinct 4 kB data pages touched (Fig. 12). */
    uint64_t dataFootprintPages() const;

    /**
     * Visit all recorded memory events in a deterministic
     * round-robin interleaving across threads (models concurrent
     * execution when replaying into a cache simulator). Templated so
     * replay loops inline the visitor instead of paying a
     * std::function dispatch per event.
     *
     * The live-cursor set is compacted in place as threads exhaust:
     * a thread that runs out of events leaves the round-robin
     * entirely instead of being rescanned every round, keeping the
     * walk linear in total events even when per-thread trace lengths
     * are wildly uneven (the old cursor-vector walk was
     * O(threads × max events) at paper scale).
     */
    template <typename Fn>
    void
    forEachInterleaved(Fn &&fn) const
    {
        struct Live
        {
            int tid;
            EventStream::Cursor cur;
            MemEvent ev;
        };
        std::vector<Live> live;
        live.reserve(ctxs.size());
        for (size_t t = 0; t < ctxs.size(); ++t) {
            Live l{int(t), EventStream::Cursor(ctxs[t]->memTrace), {}};
            if (l.cur.next(l.ev))
                live.push_back(std::move(l));
        }
        while (!live.empty()) {
            size_t w = 0;
            for (size_t i = 0; i < live.size(); ++i) {
                fn(live[i].tid, live[i].ev);
                if (live[i].cur.next(live[i].ev)) {
                    if (w != i)
                        live[w] = std::move(live[i]);
                    ++w;
                }
            }
            live.resize(w);
        }
    }

    /**
     * Rewrite every recorded address onto a canonical layout so a
     * characterization is byte-identical across processes by
     * construction, independent of where the heap happened to land
     * (ASLR, allocator phase):
     *
     *  - events are line-granular by construction (split at 64 B
     *    boundaries at record time), so each event is relocatable;
     *  - each distinct 4 kB page is assigned a sequential virtual
     *    page on first touch in the deterministic interleaved order;
     *  - within each page, each distinct 64 B line is assigned a
     *    sequential slot on first touch in the same order, erasing
     *    the allocator's intra-page phase.
     *
     * Distinct-page and distinct-line counts, sharing, and event
     * sizes are preserved exactly; byte offsets within a line are
     * not meaningful afterwards. Call once, after run() and before
     * replaying the trace.
     */
    void normalizeAddresses();

    /** Bytes of machine code modeled per instrumentation site. */
    static constexpr uint64_t bytesPerSite = 16;

  private:
    int nThreads;
    bool recording;
    std::vector<std::unique_ptr<ThreadCtx>> ctxs;
    std::unique_ptr<std::barrier<>> syncBarrier;

    friend class ThreadCtx;
};

} // namespace trace
} // namespace rodinia

#endif // RODINIA_TRACE_TRACE_HH
