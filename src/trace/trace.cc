#include "trace/trace.hh"

#include <algorithm>
#include <array>
#include <thread>
#include <unordered_set>

#include "support/logging.hh"

namespace rodinia {
namespace trace {

ThreadCtx::ThreadCtx(TraceSession *session, int tid)
    : session(session), threadId(tid), recording(session->recordsEvents())
{
}

int
ThreadCtx::numThreads() const
{
    return session->numThreads();
}

void
ThreadCtx::barrier()
{
    session->syncBarrier->arrive_and_wait();
}

TraceSession::TraceSession(int num_threads, bool record)
    : nThreads(num_threads), recording(record)
{
    if (num_threads < 1)
        fatal("TraceSession: need at least one thread");
    syncBarrier = std::make_unique<std::barrier<>>(num_threads);
    for (int i = 0; i < num_threads; ++i)
        ctxs.push_back(std::make_unique<ThreadCtx>(this, i));
}

TraceSession::~TraceSession() = default;

void
TraceSession::run(const std::function<void(ThreadCtx &)> &fn)
{
    std::vector<std::thread> threads;
    threads.reserve(nThreads);
    for (int i = 0; i < nThreads; ++i)
        threads.emplace_back([this, &fn, i] { fn(*ctxs[i]); });
    for (auto &t : threads)
        t.join();
}

InstrMix
TraceSession::totalMix() const
{
    InstrMix mix;
    for (const auto &c : ctxs)
        mix += c->instrMix();
    return mix;
}

uint64_t
TraceSession::totalEvents() const
{
    uint64_t n = 0;
    for (const auto &c : ctxs)
        n += c->events().size();
    return n;
}

uint64_t
TraceSession::instructionSites() const
{
    std::unordered_set<uint64_t> all;
    for (const auto &c : ctxs)
        all.insert(c->sites().begin(), c->sites().end());
    return all.size();
}

uint64_t
TraceSession::instructionFootprintBlocks() const
{
    uint64_t bytes = instructionSites() * bytesPerSite;
    std::unordered_map<uint64_t, uint64_t> regions;
    for (const auto &c : ctxs)
        for (const auto &[key, sz] : c->regions())
            regions[key] = sz;
    for (const auto &[key, sz] : regions)
        bytes += sz;
    return (bytes + 63) / 64;
}

uint64_t
TraceSession::dataFootprintPages() const
{
    std::unordered_set<uint64_t> pages;
    for (const auto &c : ctxs) {
        for (const auto &e : c->events()) {
            pages.insert(e.addr >> 12);
            // Accesses straddling a page boundary touch both pages.
            if (((e.addr + e.size - 1) >> 12) != (e.addr >> 12))
                pages.insert((e.addr + e.size - 1) >> 12);
        }
    }
    return pages.size();
}

void
TraceSession::normalizeAddresses()
{
    // Pass 1: split every event at 64 B line boundaries so each
    // event covers exactly one line. The cache simulators perform
    // this split per replay anyway; doing it once here makes every
    // event relocatable independently (a multi-line event could not
    // be expressed as one contiguous range once its lines are
    // remapped to non-adjacent canonical slots).
    for (auto &c : ctxs) {
        bool needs_split = false;
        for (const auto &e : c->memTrace)
            if ((e.addr >> 6) !=
                ((e.addr + (e.size ? e.size - 1 : 0)) >> 6)) {
                needs_split = true;
                break;
            }
        if (!needs_split)
            continue;
        std::vector<MemEvent> split;
        split.reserve(c->memTrace.size());
        for (const auto &e : c->memTrace) {
            uint64_t end = e.addr + (e.size ? e.size : 1);
            for (uint64_t a = e.addr; a < end;) {
                uint64_t line_end = (a | 63) + 1;
                uint64_t piece = std::min(end, line_end) - a;
                split.push_back({a, uint16_t(piece), e.isWrite});
                a += piece;
            }
        }
        c->memTrace = std::move(split);
    }

    // Pass 2: assign canonical identities in first-touch order over
    // the same interleaving the cache simulators replay — pages get
    // sequential virtual pages, and lines within each page get
    // sequential slots. First-touch order is a pure function of the
    // recorded traces, so the canonical layout (and every figure
    // derived from it) is identical in any process.
    struct PageMap
    {
        uint64_t vpage;
        std::array<int8_t, 64> slot;
        int8_t nextSlot = 0;
    };
    std::unordered_map<uint64_t, PageMap> pages;
    constexpr uint64_t basePage = uint64_t(1) << 20; // 4 GB mark
    // One-entry lookup cache: traces have strong page locality, so
    // most events skip the hash probe. unordered_map values are
    // node-stable under insertion, so the cached pointer survives
    // later try_emplace calls.
    uint64_t lastPage = ~uint64_t(0);
    PageMap *lastPm = nullptr;
    auto canonical = [&](uint64_t addr) {
        uint64_t page = addr >> 12;
        PageMap *pm = lastPm;
        if (page != lastPage) {
            auto [it, fresh] = pages.try_emplace(page);
            pm = &it->second;
            if (fresh) {
                pm->vpage = basePage + pages.size() - 1;
                pm->slot.fill(-1);
            }
            lastPage = page;
            lastPm = pm;
        }
        size_t lineIdx = (addr >> 6) & 63;
        if (pm->slot[lineIdx] < 0)
            pm->slot[lineIdx] = pm->nextSlot++;
        return (pm->vpage << 12) | (uint64_t(pm->slot[lineIdx]) << 6);
    };
    forEachInterleaved(
        [&](int, const MemEvent &e) { canonical(e.addr); });
    for (auto &c : ctxs)
        for (auto &e : c->memTrace)
            e.addr = canonical(e.addr);
}

} // namespace trace
} // namespace rodinia
