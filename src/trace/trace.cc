#include "trace/trace.hh"

#include <thread>
#include <unordered_set>

#include "support/logging.hh"

namespace rodinia {
namespace trace {

ThreadCtx::ThreadCtx(TraceSession *session, int tid)
    : session(session), threadId(tid), recording(session->recordsEvents())
{
}

int
ThreadCtx::numThreads() const
{
    return session->numThreads();
}

void
ThreadCtx::barrier()
{
    session->syncBarrier->arrive_and_wait();
}

TraceSession::TraceSession(int num_threads, bool record)
    : nThreads(num_threads), recording(record)
{
    if (num_threads < 1)
        fatal("TraceSession: need at least one thread");
    syncBarrier = std::make_unique<std::barrier<>>(num_threads);
    for (int i = 0; i < num_threads; ++i)
        ctxs.push_back(std::make_unique<ThreadCtx>(this, i));
}

TraceSession::~TraceSession() = default;

void
TraceSession::run(const std::function<void(ThreadCtx &)> &fn)
{
    std::vector<std::thread> threads;
    threads.reserve(nThreads);
    for (int i = 0; i < nThreads; ++i)
        threads.emplace_back([this, &fn, i] { fn(*ctxs[i]); });
    for (auto &t : threads)
        t.join();
}

InstrMix
TraceSession::totalMix() const
{
    InstrMix mix;
    for (const auto &c : ctxs)
        mix += c->instrMix();
    return mix;
}

uint64_t
TraceSession::totalEvents() const
{
    uint64_t n = 0;
    for (const auto &c : ctxs)
        n += c->events().size();
    return n;
}

uint64_t
TraceSession::instructionSites() const
{
    std::unordered_set<uint64_t> all;
    for (const auto &c : ctxs)
        all.insert(c->sites().begin(), c->sites().end());
    return all.size();
}

uint64_t
TraceSession::instructionFootprintBlocks() const
{
    uint64_t bytes = instructionSites() * bytesPerSite;
    std::unordered_map<uint64_t, uint64_t> regions;
    for (const auto &c : ctxs)
        for (const auto &[key, sz] : c->regions())
            regions[key] = sz;
    for (const auto &[key, sz] : regions)
        bytes += sz;
    return (bytes + 63) / 64;
}

uint64_t
TraceSession::dataFootprintPages() const
{
    std::unordered_set<uint64_t> pages;
    for (const auto &c : ctxs) {
        for (const auto &e : c->events()) {
            pages.insert(e.addr >> 12);
            // Accesses straddling a page boundary touch both pages.
            if (((e.addr + e.size - 1) >> 12) != (e.addr >> 12))
                pages.insert((e.addr + e.size - 1) >> 12);
        }
    }
    return pages.size();
}

void
TraceSession::normalizeAddresses()
{
    // Assign virtual pages in first-touch order over the same
    // interleaving the cache simulator replays, so the mapping (and
    // everything downstream) is deterministic.
    std::unordered_map<uint64_t, uint64_t> pages;
    constexpr uint64_t basePage = uint64_t(1) << 20; // 4 GB mark
    auto vpage = [&](uint64_t page) {
        auto [it, fresh] = pages.try_emplace(page, 0);
        if (fresh)
            it->second = basePage + pages.size() - 1;
        return it->second;
    };
    forEachInterleaved([&](int, const MemEvent &e) {
        uint64_t first = e.addr >> 12;
        uint64_t last = (e.addr + e.size - 1) >> 12;
        if (first == last) {
            vpage(first);
            return;
        }
        // A straddling access wants contiguous virtual pages; grant
        // that when both are unmapped (the common first touch).
        if (!pages.count(first) && !pages.count(last)) {
            uint64_t v = vpage(first);
            pages.emplace(last, v + 1);
        } else {
            vpage(first);
            vpage(last);
        }
    });
    for (auto &c : ctxs)
        for (auto &e : c->memTrace)
            e.addr = (vpage(e.addr >> 12) << 12) | (e.addr & 0xfff);
}

void
TraceSession::forEachInterleaved(
    const std::function<void(int tid, const MemEvent &)> &fn) const
{
    std::vector<size_t> cursor(ctxs.size(), 0);
    bool any = true;
    while (any) {
        any = false;
        for (size_t t = 0; t < ctxs.size(); ++t) {
            const auto &ev = ctxs[t]->events();
            if (cursor[t] < ev.size()) {
                fn(int(t), ev[cursor[t]]);
                ++cursor[t];
                any = true;
            }
        }
    }
}

} // namespace trace
} // namespace rodinia
