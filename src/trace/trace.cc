#include "trace/trace.hh"

#include <array>
#include <thread>
#include <unordered_set>

#include "support/logging.hh"

namespace rodinia {
namespace trace {

ThreadCtx::ThreadCtx(TraceSession *session, int tid)
    : session(session), threadId(tid), recording(session->recordsEvents())
{
}

int
ThreadCtx::numThreads() const
{
    return session->numThreads();
}

void
ThreadCtx::barrier()
{
    session->syncBarrier->arrive_and_wait();
}

TraceSession::TraceSession(int num_threads, bool record)
    : nThreads(num_threads), recording(record)
{
    if (num_threads < 1)
        fatal("TraceSession: need at least one thread");
    syncBarrier = std::make_unique<std::barrier<>>(num_threads);
    for (int i = 0; i < num_threads; ++i)
        ctxs.push_back(std::make_unique<ThreadCtx>(this, i));
}

TraceSession::~TraceSession() = default;

void
TraceSession::run(const std::function<void(ThreadCtx &)> &fn)
{
    std::vector<std::thread> threads;
    threads.reserve(nThreads);
    for (int i = 0; i < nThreads; ++i)
        threads.emplace_back([this, &fn, i] { fn(*ctxs[i]); });
    for (auto &t : threads)
        t.join();
}

InstrMix
TraceSession::totalMix() const
{
    InstrMix mix;
    for (const auto &c : ctxs)
        mix += c->instrMix();
    return mix;
}

uint64_t
TraceSession::totalEvents() const
{
    uint64_t n = 0;
    for (const auto &c : ctxs)
        n += c->eventCount();
    return n;
}

uint64_t
TraceSession::instructionSites() const
{
    std::unordered_set<uint64_t> all;
    for (const auto &c : ctxs)
        all.insert(c->sites().begin(), c->sites().end());
    return all.size();
}

uint64_t
TraceSession::instructionFootprintBlocks() const
{
    uint64_t bytes = instructionSites() * bytesPerSite;
    std::unordered_map<uint64_t, uint64_t> regions;
    for (const auto &c : ctxs)
        for (const auto &[key, sz] : c->regions())
            regions[key] = sz;
    for (const auto &[key, sz] : regions)
        bytes += sz;
    return (bytes + 63) / 64;
}

uint64_t
TraceSession::dataFootprintPages() const
{
    std::unordered_set<uint64_t> pages;
    for (const auto &c : ctxs) {
        c->stream().forEach([&](const MemEvent &e) {
            pages.insert(e.addr >> 12);
            // Accesses straddling a page boundary touch both pages
            // (cannot happen for line-granular events, but stay
            // correct for hand-built streams in tests).
            if (((e.addr + e.size - 1) >> 12) != (e.addr >> 12))
                pages.insert((e.addr + e.size - 1) >> 12);
        });
    }
    return pages.size();
}

void
TraceSession::normalizeAddresses()
{
    // Events are line-granular by construction — ThreadCtx::record
    // splits every access at 64 B boundaries — so each event can be
    // remapped independently; no splitting pass is needed here.
    //
    // Assign canonical identities in first-touch order over the same
    // interleaving the cache simulators replay: pages get sequential
    // virtual pages, and lines within each page get sequential
    // slots. First-touch order is a pure function of the recorded
    // traces, so the canonical layout (and every figure derived from
    // it) is identical in any process.
    struct PageMap
    {
        uint64_t vpage;
        std::array<int8_t, 64> slot;
        int8_t nextSlot = 0;
    };
    std::unordered_map<uint64_t, PageMap> pages;
    constexpr uint64_t basePage = uint64_t(1) << 20; // 4 GB mark
    // One-entry lookup cache: traces have strong page locality, so
    // most events skip the hash probe. unordered_map values are
    // node-stable under insertion, so the cached pointer survives
    // later try_emplace calls.
    uint64_t lastPage = ~uint64_t(0);
    PageMap *lastPm = nullptr;
    auto canonical = [&](uint64_t addr) {
        uint64_t page = addr >> 12;
        PageMap *pm = lastPm;
        if (page != lastPage) {
            auto [it, fresh] = pages.try_emplace(page);
            pm = &it->second;
            if (fresh) {
                pm->vpage = basePage + pages.size() - 1;
                pm->slot.fill(-1);
            }
            lastPage = page;
            lastPm = pm;
        }
        size_t lineIdx = (addr >> 6) & 63;
        if (pm->slot[lineIdx] < 0)
            pm->slot[lineIdx] = pm->nextSlot++;
        return (pm->vpage << 12) | (uint64_t(pm->slot[lineIdx]) << 6);
    };
    forEachInterleaved(
        [&](int, const MemEvent &e) { canonical(e.addr); });
    for (auto &c : ctxs)
        c->memTrace.transform(
            [&](MemEvent &e) { e.addr = canonical(e.addr); });
}

} // namespace trace
} // namespace rodinia
