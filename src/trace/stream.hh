/**
 * @file
 * Compact streaming storage for CPU memory traces.
 *
 * The paper-scale inputs (Table I: BFS on 1 M nodes, NW 2048², ...)
 * produce traces that do not fit in memory as materialized 24-byte
 * MemEvent structs. EventStream stores the same sequence as
 * delta-encoded columnar chunks — separate byte streams per chunk for
 * zigzag-varint address deltas, varint sizes, and bit-packed
 * read/write flags — cut every kChunkEvents events. Real traces have
 * strong spatial locality, so address deltas are small and the
 * encoding lands around 2-4 bytes/event instead of 24.
 *
 * Chunks are self-contained (each carries the absolute base address
 * its first delta is taken against), which enables the spill path: a
 * process-wide ChunkSink — in production an adapter over
 * driver::ResultStore, keyed by the chunk's content hash so the store
 * doubles as a trace cache — absorbs sealed chunks beyond a bounded
 * resident ring, and cursors fetch them back transparently during
 * replay.
 *
 * The original materialized representation is kept behind
 * support::traceOracleMode() (RODINIA_TRACE_ORACLE=1) as a
 * byte-equivalence oracle: both representations must reproduce every
 * figure byte-identically.
 *
 * Concurrency contract: one EventStream belongs to one recording
 * thread. Cursors may read concurrently with each other but not with
 * append()/transform(). The ChunkSink must be thread-safe (streams on
 * different threads seal concurrently) and must be installed before
 * recording starts.
 */

#ifndef RODINIA_TRACE_STREAM_HH
#define RODINIA_TRACE_STREAM_HH

#include <cassert>
#include <cstdint>
#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "support/tracemode.hh"
#include "support/varint.hh"

namespace rodinia {
namespace trace {

/** One recorded memory access. */
struct MemEvent
{
    uint64_t addr;
    uint16_t size;
    uint8_t isWrite;
};

/**
 * Destination for spilled trace chunks. Implementations must be
 * thread-safe; blobs are opaque and content-addressed, so put() for
 * an existing key may no-op (identical chunks dedupe).
 */
class ChunkSink
{
  public:
    virtual ~ChunkSink() = default;
    /** Persist blob under key (key = chunkContentHash(blob)). */
    virtual void put(uint64_t key, const std::string &blob) = 0;
    /** Fetch a blob; false if the sink lost it (fatal for replay). */
    virtual bool get(uint64_t key, std::string &blob) = 0;
};

/**
 * Install the process-wide spill sink. residentChunks bounds the
 * per-stream in-memory ring of sealed chunks: sealing past the bound
 * pushes the oldest resident chunk to the sink. nullptr disables
 * spilling (all chunks stay resident). Install before recording;
 * returns the previous sink so scopes can restore it.
 */
ChunkSink *setTraceSpill(ChunkSink *sink, uint32_t residentChunks);

/** Currently installed sink (nullptr when spilling is disabled). */
ChunkSink *traceSpillSink();

/** Resident-ring bound active for the installed sink. */
uint32_t traceSpillResidentChunks();

/** Content hash (FNV-1a 64) used as a spilled chunk's store key. */
uint64_t chunkContentHash(const std::string &blob);

/** Total chunks spilled process-wide (telemetry for tests/stats). */
uint64_t traceChunksSpilled();

/**
 * Append-only store for one thread's memory-access sequence, with
 * sequential decode via Cursor. Representation is chosen at
 * construction from support::traceOracleMode().
 */
class EventStream
{
  public:
    /** Events per sealed chunk (the columnar framing granularity). */
    static constexpr uint32_t kChunkEvents = 4096;

    EventStream() : materializedMode(support::traceOracleMode()) {}

    /** Force a representation (tests); production uses the default. */
    explicit EventStream(bool materialized) : materializedMode(materialized)
    {
    }

    /** Record one access at the tail of the sequence. */
    void
    append(uint64_t addr, uint16_t size, uint8_t isWrite)
    {
        ++count;
        if (materializedMode) {
            vec.push_back({addr, size, isWrite});
            return;
        }
        if (openN == 0)
            startChunk(addr);
        Chunk &c = chunks.back();
        support::putVarint(c.addrs,
                           support::zigzag(int64_t(addr - prevAddr)));
        prevAddr = addr;
        support::putVarint(c.sizes, size);
        flagAccum |= uint8_t(isWrite ? 1u : 0u) << (flagBits & 7);
        if ((++flagBits & 7) == 0) {
            c.flags.push_back(flagAccum);
            flagAccum = 0;
        }
        if (++openN == kChunkEvents)
            seal();
    }

    uint64_t size() const { return count; }
    bool empty() const { return count == 0; }
    bool materialized() const { return materializedMode; }

    /** Encoded bytes across all chunks (spilled ones included). */
    uint64_t encodedBytes() const;

    /** Chunks pushed to the spill sink by this stream. */
    uint64_t spilledChunks() const { return nSpilled; }

    /**
     * Sequential reader. Holds pointers into the stream (or into a
     * private buffer for fetched spilled chunks); movable so live
     * cursor sets can be compacted. Do not append to the stream
     * while cursors exist.
     */
    class Cursor
    {
      public:
        Cursor() = default;
        explicit Cursor(const EventStream &stream) : s(&stream) {}

        /** Decode the next event into out; false at end of stream. */
        bool
        next(MemEvent &out)
        {
            if (s == nullptr)
                return false;
            if (s->materializedMode) {
                if (vecIdx >= s->vec.size())
                    return false;
                out = s->vec[vecIdx++];
                return true;
            }
            if (inChunk == chunkN) {
                if (!openNextChunk())
                    return false;
            }
            int64_t d = support::unzigzag(support::getVarint(pa));
            prevAddr = uint64_t(int64_t(prevAddr) + d);
            out.addr = prevAddr;
            out.size = uint16_t(support::getVarint(ps));
            uint32_t bit = inChunk;
            uint8_t byte = (bit >> 3) < flagBytes ? pf[bit >> 3]
                                                  : tailFlags;
            out.isWrite = uint8_t((byte >> (bit & 7)) & 1u);
            ++inChunk;
            return true;
        }

      private:
        bool openNextChunk();

        const EventStream *s = nullptr;
        size_t vecIdx = 0;       //!< materialized-mode position
        size_t nextChunk = 0;    //!< next chunk index to open
        uint32_t inChunk = 0;    //!< events consumed in open chunk
        uint32_t chunkN = 0;     //!< events in open chunk
        const uint8_t *pa = nullptr; //!< address-delta read head
        const uint8_t *ps = nullptr; //!< size read head
        const uint8_t *pf = nullptr; //!< flag-byte column
        uint32_t flagBytes = 0;  //!< complete flag bytes available
        uint8_t tailFlags = 0;   //!< partial flag byte (open chunk)
        uint64_t prevAddr = 0;   //!< delta-decode accumulator
        /** Blob backing a spilled chunk's read heads. Heap-allocated
         *  so moving the cursor (live-set compaction) cannot
         *  relocate the bytes pa/ps/pf point into (std::string SSO
         *  would). */
        std::unique_ptr<std::string> fetched;
    };

    /** Visit every event in order (inlined per-event dispatch). */
    template <typename Fn>
    void
    forEach(Fn &&fn) const
    {
        Cursor c(*this);
        MemEvent e;
        while (c.next(e))
            fn(e);
    }

    /** Materialize the whole sequence (tests / small traces only). */
    std::vector<MemEvent> decodeAll() const;

    /**
     * Rewrite every event in place: decode, apply fn(MemEvent&),
     * re-encode. Used by normalizeAddresses to remap addresses onto
     * the canonical layout. Invalidates cursors.
     */
    template <typename Fn>
    void
    transform(Fn &&fn)
    {
        if (materializedMode) {
            for (auto &e : vec)
                fn(e);
            return;
        }
        EventStream out(false);
        forEach([&](const MemEvent &ev) {
            MemEvent m = ev;
            fn(m);
            out.append(m.addr, m.size, m.isWrite);
        });
        out.nSpilled += nSpilled; // keep telemetry cumulative
        *this = std::move(out);
    }

  private:
    friend class Cursor;

    /**
     * One sealed or open chunk. Sealed chunks may be spilled: the
     * columns are released and only (spillKey, n, sizes) remain so a
     * cursor can fetch the blob back from the sink.
     */
    struct Chunk
    {
        uint32_t n = 0;          //!< events (set on seal)
        uint64_t baseAddr = 0;   //!< first delta is vs this address
        std::vector<uint8_t> addrs; //!< zigzag varint address deltas
        std::vector<uint8_t> sizes; //!< varint access sizes
        std::vector<uint8_t> flags; //!< isWrite bits, LSB-first
        uint64_t spillKey = 0;   //!< chunkContentHash of the blob
        uint32_t encodedSize = 0; //!< blob bytes (valid when spilled)
        bool spilled = false;
    };

    void startChunk(uint64_t addr);
    void seal();
    void spillOldest();

    bool materializedMode;
    uint64_t count = 0;
    std::vector<MemEvent> vec; //!< materialized (oracle) storage
    std::vector<Chunk> chunks; //!< compact storage; back() may be open
    uint32_t openN = 0;        //!< events in the open chunk (0 = none)
    uint64_t prevAddr = 0;     //!< delta-encode accumulator
    uint8_t flagAccum = 0;     //!< pending flag bits
    uint32_t flagBits = 0;     //!< total flag bits in the open chunk
    size_t firstResident = 0;  //!< chunks[0..firstResident) spilled
    uint64_t nSpilled = 0;
};

} // namespace trace
} // namespace rodinia

#endif // RODINIA_TRACE_STREAM_HH
