#include "gpusim/timing.hh"

#include <algorithm>
#include <deque>
#include <memory>
#include <queue>
#include <vector>

#include "gpusim/replay.hh"
#include "gpusim/simplecache.hh"
#include "support/logging.hh"

namespace rodinia {
namespace gpusim {

void
KernelStats::add(const KernelStats &o)
{
    cycles += o.cycles;
    threadInstructions += o.threadInstructions;
    warpInstructions += o.warpInstructions;
    for (size_t i = 0; i < occupancyBuckets.size(); ++i)
        occupancyBuckets[i] += o.occupancyBuckets[i];
    for (size_t i = 0; i < memOps.size(); ++i)
        memOps[i] += o.memOps[i];
    dramTransactions += o.dramTransactions;
    dramBytes += o.dramBytes;
    channelBusyCycles += o.channelBusyCycles;
    bankConflictExtraCycles += o.bankConflictExtraCycles;
    l1Hits += o.l1Hits;
    l1Misses += o.l1Misses;
    l2Hits += o.l2Hits;
    l2Misses += o.l2Misses;
    texHits += o.texHits;
    texMisses += o.texMisses;
    constHits += o.constHits;
    constMisses += o.constMisses;
    numChannels = o.numChannels;
    coreClockGhz = o.coreClockGhz;
}

namespace {

struct Cta;

/** One resident warp: its replay cursor and pending instruction. */
struct Warp
{
    Warp(const BlockRecord &block, int start, int warp_size)
        : rep(block, start, warp_size)
    {
    }

    WarpReplayer rep;
    WarpInst inst;
    bool hasInst = false;
    Cta *cta = nullptr;
};

/** One resident thread block and its barrier bookkeeping. */
struct Cta
{
    int blockDim = 0;
    uint64_t sharedBytes = 0;
    int smIndex = -1;
    std::vector<std::unique_ptr<Warp>> warps;
    int aliveWarps = 0;
    int arrived = 0;
    std::vector<Warp *> barrierWaiters;
};

struct WaitEntry
{
    uint64_t wake;
    uint64_t seq;
    Warp *warp;

    bool
    operator>(const WaitEntry &o) const
    {
        return wake != o.wake ? wake > o.wake : seq > o.seq;
    }
};

/** Per-SM issue state. */
struct Sm
{
    std::deque<Warp *> ready;
    std::priority_queue<WaitEntry, std::vector<WaitEntry>,
                        std::greater<WaitEntry>>
        waiting;
    uint64_t freeCycle = 0;
    std::vector<std::unique_ptr<Cta>> ctas;
    int usedCtas = 0;
    int usedThreads = 0;
    int usedRegs = 0;
    uint64_t usedShared = 0;
    std::unique_ptr<SimpleCache> l1;
    std::unique_ptr<SimpleCache> tex;
    std::unique_ptr<SimpleCache> cst;
};

/** Single-launch simulation engine. */
class Engine
{
  public:
    Engine(const SimConfig &cfg, const KernelRecording &rec)
        : cfg(cfg), rec(rec)
    {
    }

    KernelStats
    run()
    {
        stats.numChannels = cfg.numChannels;
        stats.coreClockGhz = cfg.coreClockGhz;

        sms.resize(cfg.numSms);
        for (auto &sm : sms) {
            if (cfg.l1Enabled)
                sm.l1 = std::make_unique<SimpleCache>(cfg.l1Bytes, 8,
                                                      cfg.l1LineBytes);
            sm.tex = std::make_unique<SimpleCache>(cfg.texCacheBytes, 8, 64);
            sm.cst = std::make_unique<SimpleCache>(cfg.constCacheBytes, 8,
                                                   64);
        }
        if (cfg.l2Enabled)
            l2 = std::make_unique<SimpleCache>(cfg.l2Bytes, 16,
                                               cfg.l2LineBytes);
        chFree.assign(cfg.numChannels, 0);

        blocksRemaining = int(rec.blocks.size());
        for (int s = 0; s < cfg.numSms && nextBlock < rec.blocks.size();
             ++s)
            placeBlocks(s, 0);

        uint64_t cycle = 0;
        while (blocksRemaining > 0) {
            bool issued = false;
            for (int s = 0; s < cfg.numSms; ++s) {
                Sm &sm = sms[s];
                while (!sm.waiting.empty() &&
                       sm.waiting.top().wake <= cycle) {
                    sm.ready.push_back(sm.waiting.top().warp);
                    sm.waiting.pop();
                }
                if (cycle < sm.freeCycle || sm.ready.empty())
                    continue;
                Warp *w = sm.ready.front();
                sm.ready.pop_front();
                issue(s, *w, cycle);
                issued = true;
                if (blocksRemaining == 0)
                    break;
            }
            if (blocksRemaining == 0)
                break;
            if (issued) {
                ++cycle;
                continue;
            }
            // Nothing issued: jump to the next interesting cycle.
            uint64_t next = ~0ULL;
            for (auto &sm : sms) {
                if (!sm.ready.empty())
                    next = std::min(next, std::max(cycle + 1,
                                                   sm.freeCycle));
                if (!sm.waiting.empty())
                    next = std::min(next,
                                    std::max(cycle + 1,
                                             sm.waiting.top().wake));
            }
            if (next == ~0ULL)
                panic("gpusim deadlock: no runnable warps but ",
                      blocksRemaining, " blocks remain");
            cycle = next;
        }

        stats.cycles = std::max(cycle, simEnd);
        return stats;
    }

  private:
    bool
    canFit(const Sm &sm, const BlockRecord &block) const
    {
        if (sm.usedCtas == 0)
            return true; // always allow one CTA to avoid deadlock
        return sm.usedCtas < cfg.maxCtasPerSm &&
               sm.usedThreads + block.blockDim <= cfg.maxThreadsPerSm &&
               sm.usedShared + block.sharedBytes <= cfg.sharedMemPerSm &&
               sm.usedRegs + block.blockDim * cfg.regsPerThread <=
                   cfg.regFileSize;
    }

    void
    placeBlocks(int sm_index, uint64_t cycle)
    {
        Sm &sm = sms[sm_index];
        while (nextBlock < rec.blocks.size() &&
               canFit(sm, rec.blocks[nextBlock])) {
            const BlockRecord &block = rec.blocks[nextBlock];
            ++nextBlock;

            auto cta = std::make_unique<Cta>();
            cta->blockDim = block.blockDim;
            cta->sharedBytes = block.sharedBytes;
            cta->smIndex = sm_index;
            int warps = warpsPerBlock(block.blockDim, cfg.warpSize);
            for (int wi = 0; wi < warps; ++wi) {
                auto warp = std::make_unique<Warp>(
                    block, wi * cfg.warpSize, cfg.warpSize);
                warp->cta = cta.get();
                warp->hasInst = warp->rep.next(warp->inst);
                if (warp->hasInst) {
                    ++cta->aliveWarps;
                    sm.waiting.push({cycle + 1, seq++, warp.get()});
                }
                cta->warps.push_back(std::move(warp));
            }

            if (cta->aliveWarps == 0) {
                // Block recorded nothing; it completes immediately.
                --blocksRemaining;
                continue;
            }

            sm.usedCtas += 1;
            sm.usedThreads += block.blockDim;
            sm.usedShared += block.sharedBytes;
            sm.usedRegs += block.blockDim * cfg.regsPerThread;
            sm.ctas.push_back(std::move(cta));
        }
    }

    /** One global-memory transaction; returns its completion cycle. */
    uint64_t
    dramAccess(Sm &sm, uint64_t cycle, uint64_t addr, bool is_write,
               bool use_l1)
    {
        if (cfg.l1Enabled && use_l1 && !is_write) {
            if (sm.l1->access(addr)) {
                ++stats.l1Hits;
                return cycle + cfg.l1HitLatency;
            }
            ++stats.l1Misses;
        }
        if (l2) {
            if (l2->access(addr)) {
                ++stats.l2Hits;
                return cycle + cfg.l2HitLatency;
            }
            ++stats.l2Misses;
        }
        int ch = int((addr >> 8) % uint64_t(cfg.numChannels));
        uint64_t svc = cfg.channelServiceCycles();
        uint64_t start = std::max(cycle, chFree[ch]);
        chFree[ch] = start + svc;
        stats.channelBusyCycles += svc;
        stats.dramBytes += cfg.coalesceBytes;
        ++stats.dramTransactions;
        return start + svc + cfg.gmemLatencyCycles;
    }

    /** Distinct coalesced segment addresses of a memory warp inst. */
    void
    coalesce(const WarpInst &inst, std::vector<uint64_t> &out) const
    {
        out.clear();
        for (int l = 0; l < 32; ++l) {
            if (!(inst.activeMask & (1u << l)))
                continue;
            uint64_t first = inst.addrs[l] / cfg.coalesceBytes;
            uint64_t last = (inst.addrs[l] + std::max(inst.size, 1u) - 1) /
                            cfg.coalesceBytes;
            for (uint64_t s = first; s <= last; ++s) {
                uint64_t seg = s * cfg.coalesceBytes;
                if (std::find(out.begin(), out.end(), seg) == out.end())
                    out.push_back(seg);
            }
        }
    }

    /** Shared-memory bank-conflict serialization factor. */
    int
    bankConflictFactor(const WarpInst &inst) const
    {
        if (!cfg.bankConflictsEnabled)
            return 1;
        // Words mapping to the same bank serialize; identical words
        // broadcast. Count distinct words per bank.
        int factor = 1;
        std::array<std::vector<uint64_t>, 32> perBank;
        for (int l = 0; l < 32; ++l) {
            if (!(inst.activeMask & (1u << l)))
                continue;
            uint64_t word = inst.addrs[l] >> 2;
            int bank = int(word % uint64_t(cfg.sharedBanks));
            auto &v = perBank[bank];
            if (std::find(v.begin(), v.end(), word) == v.end())
                v.push_back(word);
        }
        for (const auto &v : perBank)
            factor = std::max(factor, int(v.size()));
        return factor;
    }

    void
    finishWarp(int sm_index, Warp &w, uint64_t cycle)
    {
        Cta *cta = w.cta;
        --cta->aliveWarps;
        if (cta->aliveWarps > 0) {
            // A warp ending can complete a barrier rendezvous.
            if (cta->arrived == cta->aliveWarps && cta->arrived > 0)
                releaseBarrier(sm_index, *cta, cycle);
            return;
        }

        // CTA complete: free resources, pull in pending work.
        Sm &sm = sms[sm_index];
        sm.usedCtas -= 1;
        sm.usedThreads -= cta->blockDim;
        sm.usedShared -= cta->sharedBytes;
        sm.usedRegs -= cta->blockDim * cfg.regsPerThread;
        --blocksRemaining;
        placeBlocks(sm_index, cycle);
    }

    void
    releaseBarrier(int sm_index, Cta &cta, uint64_t cycle)
    {
        Sm &sm = sms[sm_index];
        for (Warp *waiter : cta.barrierWaiters)
            sm.waiting.push({cycle + barrierLatency, seq++, waiter});
        cta.barrierWaiters.clear();
        cta.arrived = 0;
    }

    void
    issue(int sm_index, Warp &w, uint64_t cycle)
    {
        Sm &sm = sms[sm_index];
        const WarpInst inst = w.inst;
        const int active = inst.activeLanes();
        const int issueC = cfg.warpIssueCycles();

        // Commit statistics.
        stats.warpInstructions += inst.count;
        stats.threadInstructions += uint64_t(active) * inst.count;
        int bucket = std::min((active - 1) / 8, 3);
        stats.occupancyBuckets[bucket] += inst.count;

        // Memory instructions carry implicit address-arithmetic
        // instructions: commit them and occupy the issue slot.
        uint64_t issue_done = cycle + issueC;
        if (inst.op == GOp::Load || inst.op == GOp::Store) {
            stats.memOps[size_t(inst.space)] += active;
            uint64_t extra = uint64_t(cfg.addressAluPerMem);
            if (extra) {
                stats.warpInstructions += extra;
                stats.threadInstructions += extra * uint64_t(active);
                stats.occupancyBuckets[bucket] += extra;
                issue_done = cycle + issueC * (1 + extra);
            }
        }

        uint64_t wake = issue_done;
        sm.freeCycle = issue_done;

        switch (inst.op) {
          case GOp::IntAlu:
          case GOp::FpAlu:
          case GOp::Branch:
            sm.freeCycle = cycle + uint64_t(issueC) * inst.count;
            wake = sm.freeCycle;
            break;

          case GOp::Sync: {
            // Advance past the barrier, then park until release.
            Cta *cta = w.cta;
            w.hasInst = w.rep.next(w.inst);
            if (!w.hasInst) {
                finishWarp(sm_index, w, cycle);
            } else {
                cta->barrierWaiters.push_back(&w);
                ++cta->arrived;
                if (cta->arrived == cta->aliveWarps)
                    releaseBarrier(sm_index, *cta, cycle);
            }
            simEnd = std::max(simEnd, cycle + issueC);
            return;
          }

          case GOp::Load:
          case GOp::Store:
            switch (inst.space) {
              case Space::Shared: {
                int factor = bankConflictFactor(inst);
                sm.freeCycle = issue_done + uint64_t(issueC) *
                                                (factor - 1);
                wake = sm.freeCycle;
                stats.bankConflictExtraCycles +=
                    uint64_t(issueC) * (factor - 1);
                break;
              }
              case Space::Param:
                break; // register-speed, always hits
              case Space::Const: {
                // Distinct words serialize on the constant cache.
                scratch.clear();
                for (int l = 0; l < 32; ++l) {
                    if (!(inst.activeMask & (1u << l)))
                        continue;
                    uint64_t word = inst.addrs[l] >> 2;
                    if (std::find(scratch.begin(), scratch.end(), word) ==
                        scratch.end())
                        scratch.push_back(word);
                }
                uint64_t done = issue_done + cfg.constHitLatency;
                for (uint64_t word : scratch) {
                    if (sm.cst->access(word << 2)) {
                        ++stats.constHits;
                    } else {
                        ++stats.constMisses;
                        done = std::max(done, dramAccess(sm, cycle,
                                                         word << 2, false,
                                                         false));
                    }
                }
                sm.freeCycle =
                    issue_done +
                    uint64_t(issueC) *
                        (std::max<size_t>(scratch.size(), 1) - 1);
                wake = std::max(done, sm.freeCycle);
                break;
              }
              case Space::Tex: {
                coalesce(inst, scratch);
                uint64_t done = issue_done + cfg.texHitLatency;
                for (uint64_t seg : scratch) {
                    if (sm.tex->access(seg)) {
                        ++stats.texHits;
                    } else {
                        ++stats.texMisses;
                        done = std::max(done, dramAccess(sm, cycle, seg,
                                                         false, false));
                    }
                }
                wake = done;
                break;
              }
              case Space::Global:
              case Space::Local:
              default: {
                coalesce(inst, scratch);
                if (inst.op == GOp::Load) {
                    uint64_t done = issue_done;
                    for (uint64_t seg : scratch)
                        done = std::max(done, dramAccess(sm, cycle, seg,
                                                         false, true));
                    wake = done;
                } else {
                    // Stores are buffered: consume bandwidth but do
                    // not stall the warp.
                    for (uint64_t seg : scratch)
                        simEnd = std::max(simEnd,
                                          dramAccess(sm, cycle, seg, true,
                                                     true));
                }
                break;
              }
            }
            break;
        }

        simEnd = std::max(simEnd, wake);
        w.hasInst = w.rep.next(w.inst);
        if (!w.hasInst) {
            finishWarp(sm_index, w, cycle);
            return;
        }
        sm.waiting.push({std::max(wake, cycle + 1), seq++, &w});
    }

    static constexpr uint64_t barrierLatency = 8;

    const SimConfig &cfg;
    const KernelRecording &rec;
    KernelStats stats;
    std::vector<Sm> sms;
    std::unique_ptr<SimpleCache> l2;
    std::vector<uint64_t> chFree;
    std::vector<uint64_t> scratch;
    size_t nextBlock = 0;
    int blocksRemaining = 0;
    uint64_t seq = 0;
    uint64_t simEnd = 0;
};

} // namespace

KernelStats
TimingSim::simulate(const KernelRecording &rec) const
{
    Engine engine(cfg, rec);
    return engine.run();
}

KernelStats
TimingSim::simulate(const LaunchSequence &seq) const
{
    KernelStats total;
    for (const auto &rec : seq.launches) {
        KernelStats s = simulate(rec);
        s.cycles += cfg.launchOverheadCycles;
        total.add(s);
    }
    return total;
}

} // namespace gpusim
} // namespace rodinia
