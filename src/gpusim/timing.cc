#include "gpusim/timing.hh"

#include <algorithm>
#include <atomic>
#include <chrono>
#include <condition_variable>
#include <cstdlib>
#include <deque>
#include <iomanip>
#include <limits>
#include <memory>
#include <mutex>
#include <queue>
#include <sstream>
#include <thread>
#include <vector>

#include "gpusim/replay.hh"
#include "gpusim/simplecache.hh"
#include "support/cancel.hh"
#include "support/logging.hh"
#include "support/metrics.hh"
#include "support/threadbudget.hh"

namespace rodinia {
namespace gpusim {

void
KernelStats::add(const KernelStats &o)
{
    cycles += o.cycles;
    threadInstructions += o.threadInstructions;
    warpInstructions += o.warpInstructions;
    for (size_t i = 0; i < occupancyBuckets.size(); ++i)
        occupancyBuckets[i] += o.occupancyBuckets[i];
    for (size_t i = 0; i < memOps.size(); ++i)
        memOps[i] += o.memOps[i];
    dramTransactions += o.dramTransactions;
    dramBytes += o.dramBytes;
    channelBusyCycles += o.channelBusyCycles;
    bankConflictExtraCycles += o.bankConflictExtraCycles;
    l1Hits += o.l1Hits;
    l1Misses += o.l1Misses;
    l2Hits += o.l2Hits;
    l2Misses += o.l2Misses;
    texHits += o.texHits;
    texMisses += o.texMisses;
    constHits += o.constHits;
    constMisses += o.constMisses;
    numChannels = o.numChannels;
    coreClockGhz = o.coreClockGhz;
}

bool
KernelStats::operator==(const KernelStats &o) const
{
    return cycles == o.cycles &&
           threadInstructions == o.threadInstructions &&
           warpInstructions == o.warpInstructions &&
           occupancyBuckets == o.occupancyBuckets &&
           memOps == o.memOps &&
           dramTransactions == o.dramTransactions &&
           dramBytes == o.dramBytes &&
           channelBusyCycles == o.channelBusyCycles &&
           bankConflictExtraCycles == o.bankConflictExtraCycles &&
           l1Hits == o.l1Hits && l1Misses == o.l1Misses &&
           l2Hits == o.l2Hits && l2Misses == o.l2Misses &&
           texHits == o.texHits && texMisses == o.texMisses &&
           constHits == o.constHits && constMisses == o.constMisses &&
           numChannels == o.numChannels &&
           coreClockGhz == o.coreClockGhz;
}

std::string
serializeKernelStats(const KernelStats &s)
{
    std::ostringstream os;
    os << "gpustats 1\n"
       << s.cycles << " " << s.threadInstructions << " "
       << s.warpInstructions << "\n";
    for (size_t i = 0; i < s.occupancyBuckets.size(); ++i)
        os << (i ? " " : "") << s.occupancyBuckets[i];
    os << "\n";
    for (size_t i = 0; i < s.memOps.size(); ++i)
        os << (i ? " " : "") << s.memOps[i];
    os << "\n"
       << s.dramTransactions << " " << s.dramBytes << " "
       << s.channelBusyCycles << " " << s.bankConflictExtraCycles
       << "\n"
       << s.l1Hits << " " << s.l1Misses << " " << s.l2Hits << " "
       << s.l2Misses << " " << s.texHits << " " << s.texMisses << " "
       << s.constHits << " " << s.constMisses << "\n"
       << s.numChannels << " "
       << std::setprecision(std::numeric_limits<double>::max_digits10)
       << s.coreClockGhz << "\n";
    return os.str();
}

bool
parseKernelStats(const std::string &payload, KernelStats &out)
{
    std::istringstream in(payload);
    std::string tag;
    int version = 0;
    in >> tag >> version;
    if (tag != "gpustats" || version != 1)
        return false;
    in >> out.cycles >> out.threadInstructions >>
        out.warpInstructions;
    for (auto &b : out.occupancyBuckets)
        in >> b;
    for (auto &m : out.memOps)
        in >> m;
    in >> out.dramTransactions >> out.dramBytes >>
        out.channelBusyCycles >> out.bankConflictExtraCycles;
    in >> out.l1Hits >> out.l1Misses >> out.l2Hits >> out.l2Misses >>
        out.texHits >> out.texMisses >> out.constHits >>
        out.constMisses;
    in >> out.numChannels >> out.coreClockGhz;
    return bool(in);
}

std::string
formatDeadlockDiagnostics(uint64_t cycle, size_t next_block,
                          size_t total_blocks, size_t blocks_remaining,
                          const std::vector<SmSnapshot> &sms)
{
    std::ostringstream os;
    os << "gpusim deadlock: no runnable warps at cycle " << cycle
       << " with " << blocks_remaining << " of " << total_blocks
       << " blocks unfinished (next block to place: " << next_block
       << " of " << total_blocks << ")";
    for (size_t s = 0; s < sms.size(); ++s) {
        const SmSnapshot &sm = sms[s];
        os << "\n  sm" << s << ": ready=" << sm.readyWarps
           << " waiting=" << sm.waitingWarps
           << " ctas=" << sm.residentCtas
           << " freeCycle=" << sm.freeCycle << " next=";
        if (sm.nextBound == ~0ULL)
            os << "idle";
        else
            os << sm.nextBound;
    }
    return os.str();
}

namespace {

/** setSimEpochForTest's cap; 0 = use epochCyclesFor unmodified. */
std::atomic<uint64_t> epochCapForTest{0};

} // namespace

uint64_t
epochCyclesFor(const SimConfig &cfg)
{
    // The shortest path through shared state: an L2 hit, or a DRAM
    // transaction that starts on an idle channel. Any request issued
    // at cycle c therefore completes at or after c + E, i.e. never
    // before the next epoch boundary — which is exactly what lets the
    // parallel engine defer all shared-state arbitration to the
    // boundary without changing any warp's wake cycle.
    uint64_t dram = uint64_t(cfg.channelServiceCycles()) +
                    uint64_t(cfg.gmemLatencyCycles > 0
                                 ? cfg.gmemLatencyCycles
                                 : 0);
    uint64_t e = dram;
    if (cfg.l2Enabled && uint64_t(cfg.l2HitLatency) < e)
        e = uint64_t(cfg.l2HitLatency);
    return e > 0 ? e : 1;
}

void
setSimEpochForTest(uint64_t cycles)
{
    epochCapForTest.store(cycles, std::memory_order_relaxed);
}

namespace {

constexpr uint64_t kIdle = ~0ULL;

/** RODINIA_STRICT as a runtime switch (unset or "0" = off). Read
 *  uncached on the cold oversubscription path so death tests and
 *  child processes see the current environment. */
bool
strictChecksEnabled()
{
    const char *v = std::getenv("RODINIA_STRICT");
    return v && *v && !(v[0] == '0' && v[1] == '\0');
}

/**
 * Why this block can never satisfy canFit's steady-state bounds on
 * an *empty* SM — i.e. its standalone demand exceeds the SM's total
 * capacity — or nullptr if it fits. Such a CTA is only ever admitted
 * through the "always allow one CTA" deadlock-avoidance hatch, and
 * silently simulating it understates contention, so both engines
 * count it and optionally fail fast.
 */
const char *
ctaOverloadReason(const SimConfig &cfg, const BlockRecord &block)
{
    if (block.blockDim > cfg.maxThreadsPerSm)
        return "blockDim exceeds maxThreadsPerSm";
    if (block.sharedBytes > cfg.sharedMemPerSm)
        return "sharedBytes exceeds sharedMemPerSm";
    if (block.blockDim * cfg.regsPerThread > cfg.regFileSize)
        return "register demand exceeds regFileSize";
    return nullptr;
}

void
noteOversubscribedCta(const SimConfig &cfg, const BlockRecord &block,
                      size_t sm_index, const char *why)
{
    support::metrics::count("gpusim.oversubscribed_cta");
    if (strictChecksEnabled())
        panic("gpusim: oversubscribed CTA admitted on sm", sm_index,
              " (", why, "): blockDim=", block.blockDim,
              " sharedBytes=", block.sharedBytes,
              " regDemand=", block.blockDim * cfg.regsPerThread,
              " vs maxThreadsPerSm=", cfg.maxThreadsPerSm,
              " sharedMemPerSm=", cfg.sharedMemPerSm,
              " regFileSize=", cfg.regFileSize);
}

struct Cta;

/** One resident warp: its replay cursor and pending instruction. */
struct Warp
{
    Warp(const BlockRecord &block, int start, int warp_size)
        : rep(block, start, warp_size)
    {
    }

    WarpReplayer rep;
    WarpInst inst;
    bool hasInst = false;
    Cta *cta = nullptr;
};

/** One resident thread block and its barrier bookkeeping. */
struct Cta
{
    int blockDim = 0;
    uint64_t sharedBytes = 0;
    int smIndex = -1;
    std::vector<std::unique_ptr<Warp>> warps;
    int aliveWarps = 0;
    int arrived = 0;
    std::vector<Warp *> barrierWaiters;
};

struct WaitEntry
{
    uint64_t wake;
    uint64_t seq;
    Warp *warp;

    bool
    operator>(const WaitEntry &o) const
    {
        return wake != o.wake ? wake > o.wake : seq > o.seq;
    }
};

/** Per-SM issue state. */
struct Sm
{
    std::deque<Warp *> ready;
    std::priority_queue<WaitEntry, std::vector<WaitEntry>,
                        std::greater<WaitEntry>>
        waiting;
    uint64_t freeCycle = 0;
    std::vector<std::unique_ptr<Cta>> ctas;
    int usedCtas = 0;
    int usedThreads = 0;
    int usedRegs = 0;
    uint64_t usedShared = 0;
    std::unique_ptr<SimpleCache> l1;
    std::unique_ptr<SimpleCache> tex;
    std::unique_ptr<SimpleCache> cst;
};

/** Distinct coalesced segment addresses of a memory warp inst. */
void
coalesceSegs(int coal_shift, const WarpInst &inst,
             std::vector<uint64_t> &out)
{
    // coalesceBytes is validated power-of-two, so segment math is
    // shifts rather than 64-bit division on this per-memory-
    // instruction path.
    out.clear();
    for (int l = 0; l < 32; ++l) {
        if (!(inst.activeMask & (1u << l)))
            continue;
        uint64_t first = inst.addrs[size_t(l)] >> coal_shift;
        uint64_t last =
            (inst.addrs[size_t(l)] + std::max(inst.size, 1u) - 1) >>
            coal_shift;
        for (uint64_t s = first; s <= last; ++s) {
            uint64_t seg = s << coal_shift;
            if (std::find(out.begin(), out.end(), seg) == out.end())
                out.push_back(seg);
        }
    }
}

/** Distinct constant-memory words touched by a warp inst. */
void
constWords(const WarpInst &inst, std::vector<uint64_t> &out)
{
    out.clear();
    for (int l = 0; l < 32; ++l) {
        if (!(inst.activeMask & (1u << l)))
            continue;
        uint64_t word = inst.addrs[size_t(l)] >> 2;
        if (std::find(out.begin(), out.end(), word) == out.end())
            out.push_back(word);
    }
}

/** Shared-memory bank-conflict serialization factor. */
int
bankConflictFactorFor(const SimConfig &cfg, uint64_t bank_mask,
                      const WarpInst &inst)
{
    if (!cfg.bankConflictsEnabled)
        return 1;
    // Words mapping to the same bank serialize; identical words
    // broadcast. This runs once per shared-memory warp
    // instruction — the hot path of NW/LUD/HS simulations — so
    // it scans fixed stack arrays (at most 32 entries) instead
    // of allocating per-bank containers, and divides only when
    // the bank count is not a power of two.
    uint64_t seenWord[32];
    int seenBank[32];
    int n = 0;
    int factor = 1;
    for (int l = 0; l < 32; ++l) {
        if (!(inst.activeMask & (1u << l)))
            continue;
        uint64_t word = inst.addrs[size_t(l)] >> 2;
        int bank = bank_mask ? int(word & bank_mask)
                             : int(word % uint64_t(cfg.sharedBanks));
        bool dup = false;
        int multiplicity = 1;
        for (int i = 0; i < n; ++i) {
            if (seenWord[i] == word) {
                dup = true; // broadcast: no extra cost
                break;
            }
            if (seenBank[i] == bank)
                ++multiplicity;
        }
        if (dup)
            continue;
        seenWord[n] = word;
        seenBank[n] = bank;
        ++n;
        factor = std::max(factor, multiplicity);
    }
    return factor;
}

int
channelOf(uint64_t addr, uint64_t chan_mask, int num_channels)
{
    return chan_mask ? int((addr >> 8) & chan_mask)
                     : int((addr >> 8) % uint64_t(num_channels));
}

/** Single-launch serial simulation engine — the determinism oracle
 *  the parallel engine below is tested against. */
class Engine
{
  public:
    Engine(const SimConfig &cfg, const KernelRecording &rec)
        : cfg(cfg), rec(rec)
    {
    }

    KernelStats
    run()
    {
        stats.numChannels = cfg.numChannels;
        stats.coreClockGhz = cfg.coreClockGhz;

        sms.resize(size_t(cfg.numSms));
        for (auto &sm : sms) {
            if (cfg.l1Enabled)
                sm.l1 = std::make_unique<SimpleCache>(cfg.l1Bytes, 8,
                                                      cfg.l1LineBytes);
            sm.tex = std::make_unique<SimpleCache>(cfg.texCacheBytes, 8, 64);
            sm.cst = std::make_unique<SimpleCache>(cfg.constCacheBytes, 8,
                                                   64);
        }
        if (cfg.l2Enabled)
            l2 = std::make_unique<SimpleCache>(cfg.l2Bytes, 16,
                                               cfg.l2LineBytes);
        chFree.assign(size_t(cfg.numChannels), 0);
        bankMask = (cfg.sharedBanks & (cfg.sharedBanks - 1)) == 0
                       ? uint64_t(cfg.sharedBanks) - 1
                       : 0;
        chanMask = (cfg.numChannels & (cfg.numChannels - 1)) == 0
                       ? uint64_t(cfg.numChannels) - 1
                       : 0;
        coalShift = __builtin_ctz(unsigned(cfg.coalesceBytes));

        blocksRemaining = rec.blocks.size();
        for (size_t s = 0;
             s < sms.size() && nextBlock < rec.blocks.size(); ++s)
            placeBlocks(s, 0);

        // smNext[s] is a conservative lower bound on the next cycle
        // at which SM s can make progress; the per-cycle scan skips
        // an SM with one dense-array compare instead of touching its
        // queues. Deferring the waiting->ready drain this way cannot
        // change results: entries drain in (wake, seq) heap order
        // whether moved cycle-by-cycle or in one batch, and issue
        // itself only ever happens at cycles the bound admits. Only
        // the SM an issue runs on can gain work (barrier release and
        // block placement are SM-local), so recomputing the bound
        // after visiting that SM keeps it valid.
        smNext.assign(sms.size(), 0);
        uint64_t cycle = 0;
        uint64_t loops = 0;
        while (blocksRemaining > 0) {
            // Cooperative cancellation: a watchdog-cancelled job's
            // sim unwinds here. Strided so the thread-local poll
            // costs nothing measurable per cycle; cycles are
            // logical, so the check cannot perturb results.
            if ((++loops & 0x3fff) == 0)
                support::checkpointCancellation();
            bool issued = false;
            for (size_t s = 0; s < sms.size(); ++s) {
                if (smNext[s] > cycle)
                    continue;
                Sm &sm = sms[s];
                while (!sm.waiting.empty() &&
                       sm.waiting.top().wake <= cycle) {
                    sm.ready.push_back(sm.waiting.top().warp);
                    sm.waiting.pop();
                }
                if (cycle >= sm.freeCycle && !sm.ready.empty()) {
                    Warp *w = sm.ready.front();
                    sm.ready.pop_front();
                    issue(s, *w, cycle);
                    issued = true;
                    if (blocksRemaining == 0)
                        break;
                }
                smNext[s] =
                    !sm.ready.empty()
                        ? std::max(sm.freeCycle, cycle + 1)
                        : (!sm.waiting.empty()
                               ? std::max(sm.waiting.top().wake,
                                          cycle + 1)
                               : kIdle);
            }
            if (blocksRemaining == 0)
                break;
            if (issued) {
                ++cycle;
                continue;
            }
            // Nothing issued: jump to the next interesting cycle.
            uint64_t next = kIdle;
            for (uint64_t lb : smNext)
                next = std::min(next, std::max(cycle + 1, lb));
            if (next == kIdle) {
                std::vector<SmSnapshot> snaps(sms.size());
                for (size_t s = 0; s < sms.size(); ++s)
                    snaps[s] = {sms[s].ready.size(),
                                sms[s].waiting.size(),
                                sms[s].usedCtas, sms[s].freeCycle,
                                smNext[s]};
                panic(formatDeadlockDiagnostics(
                    cycle, nextBlock, rec.blocks.size(),
                    blocksRemaining, snaps));
            }
            cycle = next;
        }

        stats.cycles = std::max(cycle, simEnd);
        return stats;
    }

  private:
    bool
    canFit(const Sm &sm, const BlockRecord &block) const
    {
        if (sm.usedCtas == 0)
            return true; // always allow one CTA to avoid deadlock
        return sm.usedCtas < cfg.maxCtasPerSm &&
               sm.usedThreads + block.blockDim <= cfg.maxThreadsPerSm &&
               sm.usedShared + block.sharedBytes <= cfg.sharedMemPerSm &&
               sm.usedRegs + block.blockDim * cfg.regsPerThread <=
                   cfg.regFileSize;
    }

    void
    placeBlocks(size_t sm_index, uint64_t cycle)
    {
        Sm &sm = sms[sm_index];
        while (nextBlock < rec.blocks.size() &&
               canFit(sm, rec.blocks[nextBlock])) {
            const BlockRecord &block = rec.blocks[nextBlock];
            ++nextBlock;
            // Only the empty-SM hatch in canFit can admit a CTA whose
            // standalone demand exceeds total SM capacity; flag it
            // instead of silently under-modeling contention.
            if (const char *why = ctaOverloadReason(cfg, block))
                noteOversubscribedCta(cfg, block, sm_index, why);

            auto cta = std::make_unique<Cta>();
            cta->blockDim = block.blockDim;
            cta->sharedBytes = block.sharedBytes;
            cta->smIndex = int(sm_index);
            int warps = warpsPerBlock(block.blockDim, cfg.warpSize);
            for (int wi = 0; wi < warps; ++wi) {
                auto warp = std::make_unique<Warp>(
                    block, wi * cfg.warpSize, cfg.warpSize);
                warp->cta = cta.get();
                warp->hasInst = warp->rep.next(warp->inst);
                if (warp->hasInst) {
                    ++cta->aliveWarps;
                    sm.waiting.push({cycle + 1, seq++, warp.get()});
                }
                cta->warps.push_back(std::move(warp));
            }

            if (cta->aliveWarps == 0) {
                // Block recorded nothing; it completes immediately.
                --blocksRemaining;
                continue;
            }

            sm.usedCtas += 1;
            sm.usedThreads += block.blockDim;
            sm.usedShared += block.sharedBytes;
            sm.usedRegs += block.blockDim * cfg.regsPerThread;
            sm.ctas.push_back(std::move(cta));
        }
    }

    /** One global-memory transaction; returns its completion cycle. */
    uint64_t
    dramAccess(Sm &sm, uint64_t cycle, uint64_t addr, bool is_write,
               bool use_l1)
    {
        if (cfg.l1Enabled && use_l1 && !is_write) {
            if (sm.l1->access(addr)) {
                ++stats.l1Hits;
                return cycle + cfg.l1HitLatency;
            }
            ++stats.l1Misses;
        }
        if (l2) {
            if (l2->access(addr)) {
                ++stats.l2Hits;
                return cycle + cfg.l2HitLatency;
            }
            ++stats.l2Misses;
        }
        int ch = channelOf(addr, chanMask, cfg.numChannels);
        uint64_t svc = uint64_t(cfg.channelServiceCycles());
        uint64_t start = std::max(cycle, chFree[size_t(ch)]);
        chFree[size_t(ch)] = start + svc;
        stats.channelBusyCycles += svc;
        stats.dramBytes += uint64_t(cfg.coalesceBytes);
        ++stats.dramTransactions;
        return start + svc + uint64_t(cfg.gmemLatencyCycles);
    }

    void
    finishWarp(size_t sm_index, Warp &w, uint64_t cycle)
    {
        Cta *cta = w.cta;
        --cta->aliveWarps;
        if (cta->aliveWarps > 0) {
            // A warp ending can complete a barrier rendezvous.
            if (cta->arrived == cta->aliveWarps && cta->arrived > 0)
                releaseBarrier(sm_index, *cta, cycle);
            return;
        }

        // CTA complete: free resources, pull in pending work.
        Sm &sm = sms[sm_index];
        sm.usedCtas -= 1;
        sm.usedThreads -= cta->blockDim;
        sm.usedShared -= cta->sharedBytes;
        sm.usedRegs -= cta->blockDim * cfg.regsPerThread;
        --blocksRemaining;
        placeBlocks(sm_index, cycle);
    }

    void
    releaseBarrier(size_t sm_index, Cta &cta, uint64_t cycle)
    {
        Sm &sm = sms[sm_index];
        for (Warp *waiter : cta.barrierWaiters)
            sm.waiting.push({cycle + barrierLatency, seq++, waiter});
        cta.barrierWaiters.clear();
        cta.arrived = 0;
    }

    void
    issue(size_t sm_index, Warp &w, uint64_t cycle)
    {
        Sm &sm = sms[sm_index];
        // Reference, not copy (WarpInst carries 32 lane addresses):
        // every read below happens before w.rep.next(w.inst)
        // overwrites the slot at the end of issue.
        const WarpInst &inst = w.inst;
        const int active = inst.activeLanes();
        const int issueC = cfg.warpIssueCycles();

        // Commit statistics.
        stats.warpInstructions += inst.count;
        stats.threadInstructions += uint64_t(active) * inst.count;
        size_t bucket = size_t(std::min((active - 1) / 8, 3));
        stats.occupancyBuckets[bucket] += inst.count;

        // Memory instructions carry implicit address-arithmetic
        // instructions: commit them and occupy the issue slot.
        uint64_t issue_done = cycle + uint64_t(issueC);
        if (inst.op == GOp::Load || inst.op == GOp::Store) {
            stats.memOps[size_t(inst.space)] += uint64_t(active);
            uint64_t extra = uint64_t(cfg.addressAluPerMem);
            if (extra) {
                stats.warpInstructions += extra;
                stats.threadInstructions += extra * uint64_t(active);
                stats.occupancyBuckets[bucket] += extra;
                issue_done = cycle + uint64_t(issueC) * (1 + extra);
            }
        }

        uint64_t wake = issue_done;
        sm.freeCycle = issue_done;

        switch (inst.op) {
          case GOp::IntAlu:
          case GOp::FpAlu:
          case GOp::Branch:
            sm.freeCycle = cycle + uint64_t(issueC) * inst.count;
            wake = sm.freeCycle;
            break;

          case GOp::Sync: {
            // Advance past the barrier, then park until release.
            Cta *cta = w.cta;
            w.hasInst = w.rep.next(w.inst);
            if (!w.hasInst) {
                finishWarp(sm_index, w, cycle);
            } else {
                cta->barrierWaiters.push_back(&w);
                ++cta->arrived;
                if (cta->arrived == cta->aliveWarps)
                    releaseBarrier(sm_index, *cta, cycle);
            }
            simEnd = std::max(simEnd, cycle + uint64_t(issueC));
            return;
          }

          case GOp::Load:
          case GOp::Store:
            switch (inst.space) {
              case Space::Shared: {
                int factor = bankConflictFactorFor(cfg, bankMask, inst);
                sm.freeCycle = issue_done + uint64_t(issueC) *
                                                uint64_t(factor - 1);
                wake = sm.freeCycle;
                stats.bankConflictExtraCycles +=
                    uint64_t(issueC) * uint64_t(factor - 1);
                break;
              }
              case Space::Param:
                break; // register-speed, always hits
              case Space::Const: {
                // Distinct words serialize on the constant cache.
                constWords(inst, scratch);
                uint64_t done = issue_done + uint64_t(cfg.constHitLatency);
                for (uint64_t word : scratch) {
                    if (sm.cst->access(word << 2)) {
                        ++stats.constHits;
                    } else {
                        ++stats.constMisses;
                        done = std::max(done, dramAccess(sm, cycle,
                                                         word << 2, false,
                                                         false));
                    }
                }
                sm.freeCycle =
                    issue_done +
                    uint64_t(issueC) *
                        (std::max<size_t>(scratch.size(), 1) - 1);
                wake = std::max(done, sm.freeCycle);
                break;
              }
              case Space::Tex: {
                coalesceSegs(coalShift, inst, scratch);
                uint64_t done = issue_done + uint64_t(cfg.texHitLatency);
                for (uint64_t seg : scratch) {
                    if (sm.tex->access(seg)) {
                        ++stats.texHits;
                    } else {
                        ++stats.texMisses;
                        done = std::max(done, dramAccess(sm, cycle, seg,
                                                         false, false));
                    }
                }
                wake = done;
                break;
              }
              case Space::Global:
              case Space::Local:
              default: {
                coalesceSegs(coalShift, inst, scratch);
                if (inst.op == GOp::Load) {
                    uint64_t done = issue_done;
                    for (uint64_t seg : scratch)
                        done = std::max(done, dramAccess(sm, cycle, seg,
                                                         false, true));
                    wake = done;
                } else {
                    // Stores are buffered: consume bandwidth but do
                    // not stall the warp.
                    for (uint64_t seg : scratch)
                        simEnd = std::max(simEnd,
                                          dramAccess(sm, cycle, seg, true,
                                                     true));
                }
                break;
              }
            }
            break;
        }

        simEnd = std::max(simEnd, wake);
        w.hasInst = w.rep.next(w.inst);
        if (!w.hasInst) {
            finishWarp(sm_index, w, cycle);
            return;
        }
        // Heap bypass for stall-bound instructions (ALU, shared,
        // cache-hit constant): when the warp wakes no later than the
        // SM's own issue stall, the SM cannot issue before `wake`, so
        // every future push on this SM carries a strictly larger wake
        // (freeCycle is monotone and wake' > cycle' >= freeCycle).
        // If every already-parked warp also wakes strictly later,
        // the (wake, seq) drain would deliver this warp exactly at
        // the back of the current ready queue — append it there
        // directly and skip the priority-queue round trip. An equal
        // top wake means an older (smaller-seq) warp must go first,
        // so that case takes the heap path.
        if (wake <= sm.freeCycle &&
            (sm.waiting.empty() || sm.waiting.top().wake > wake)) {
            sm.ready.push_back(&w);
            return;
        }
        sm.waiting.push({std::max(wake, cycle + 1), seq++, &w});
    }

    static constexpr uint64_t barrierLatency = 8;

    const SimConfig &cfg;
    const KernelRecording &rec;
    KernelStats stats;
    std::vector<Sm> sms;
    std::unique_ptr<SimpleCache> l2;
    std::vector<uint64_t> chFree;
    std::vector<uint64_t> scratch;
    std::vector<uint64_t> smNext; //!< per-SM next-progress lower bound
    uint64_t bankMask = 0; //!< sharedBanks-1 when a power of two
    uint64_t chanMask = 0; //!< numChannels-1 when a power of two
    int coalShift = 0;     //!< log2(coalesceBytes)
    size_t nextBlock = 0;
    size_t blocksRemaining = 0;
    uint64_t seq = 0;
    uint64_t simEnd = 0;
};

} // namespace

} // namespace gpusim
} // namespace rodinia

#include "gpusim/timing_epoch.inc"

namespace rodinia {
namespace gpusim {

KernelStats
TimingSim::simulate(const KernelRecording &rec) const
{
    // The epoch engine needs at least two blocks to have any cross-SM
    // work to overlap; single-block launches and explicit simThreads=1
    // take the serial oracle path. The *structure* (epoch batching)
    // is chosen by the requested thread count alone so --sim-threads N
    // deterministically exercises the parallel engine; only the
    // helper-pool *size* adapts to the process-wide thread budget.
    int want = cfg.effectiveSimThreads();
    if (want > 1 && rec.blocks.size() > 1 && cfg.numSms > 1) {
        int target = std::min(want, cfg.numSms);
        auto &budget = support::ThreadBudget::instance();
        int granted = budget.tryAcquire(target - 1);
        struct Release
        {
            support::ThreadBudget &b;
            int n;
            ~Release() { b.release(n); }
        } release{budget, granted};
        EpochEngine engine(cfg, rec, 1 + granted);
        return engine.run();
    }
    Engine engine(cfg, rec);
    return engine.run();
}

KernelStats
TimingSim::simulate(const LaunchSequence &seq) const
{
    KernelStats total;
    for (const auto &rec : seq.launches) {
        support::checkpointCancellation();
        KernelStats s = simulate(rec);
        s.cycles += cfg.launchOverheadCycles;
        total.add(s);
    }
    return total;
}

} // namespace gpusim
} // namespace rodinia
