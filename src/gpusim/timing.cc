#include "gpusim/timing.hh"

#include <algorithm>
#include <deque>
#include <iomanip>
#include <limits>
#include <memory>
#include <queue>
#include <sstream>
#include <vector>

#include "gpusim/replay.hh"
#include "gpusim/simplecache.hh"
#include "support/cancel.hh"
#include "support/logging.hh"

namespace rodinia {
namespace gpusim {

void
KernelStats::add(const KernelStats &o)
{
    cycles += o.cycles;
    threadInstructions += o.threadInstructions;
    warpInstructions += o.warpInstructions;
    for (size_t i = 0; i < occupancyBuckets.size(); ++i)
        occupancyBuckets[i] += o.occupancyBuckets[i];
    for (size_t i = 0; i < memOps.size(); ++i)
        memOps[i] += o.memOps[i];
    dramTransactions += o.dramTransactions;
    dramBytes += o.dramBytes;
    channelBusyCycles += o.channelBusyCycles;
    bankConflictExtraCycles += o.bankConflictExtraCycles;
    l1Hits += o.l1Hits;
    l1Misses += o.l1Misses;
    l2Hits += o.l2Hits;
    l2Misses += o.l2Misses;
    texHits += o.texHits;
    texMisses += o.texMisses;
    constHits += o.constHits;
    constMisses += o.constMisses;
    numChannels = o.numChannels;
    coreClockGhz = o.coreClockGhz;
}

bool
KernelStats::operator==(const KernelStats &o) const
{
    return cycles == o.cycles &&
           threadInstructions == o.threadInstructions &&
           warpInstructions == o.warpInstructions &&
           occupancyBuckets == o.occupancyBuckets &&
           memOps == o.memOps &&
           dramTransactions == o.dramTransactions &&
           dramBytes == o.dramBytes &&
           channelBusyCycles == o.channelBusyCycles &&
           bankConflictExtraCycles == o.bankConflictExtraCycles &&
           l1Hits == o.l1Hits && l1Misses == o.l1Misses &&
           l2Hits == o.l2Hits && l2Misses == o.l2Misses &&
           texHits == o.texHits && texMisses == o.texMisses &&
           constHits == o.constHits && constMisses == o.constMisses &&
           numChannels == o.numChannels &&
           coreClockGhz == o.coreClockGhz;
}

std::string
serializeKernelStats(const KernelStats &s)
{
    std::ostringstream os;
    os << "gpustats 1\n"
       << s.cycles << " " << s.threadInstructions << " "
       << s.warpInstructions << "\n";
    for (size_t i = 0; i < s.occupancyBuckets.size(); ++i)
        os << (i ? " " : "") << s.occupancyBuckets[i];
    os << "\n";
    for (size_t i = 0; i < s.memOps.size(); ++i)
        os << (i ? " " : "") << s.memOps[i];
    os << "\n"
       << s.dramTransactions << " " << s.dramBytes << " "
       << s.channelBusyCycles << " " << s.bankConflictExtraCycles
       << "\n"
       << s.l1Hits << " " << s.l1Misses << " " << s.l2Hits << " "
       << s.l2Misses << " " << s.texHits << " " << s.texMisses << " "
       << s.constHits << " " << s.constMisses << "\n"
       << s.numChannels << " "
       << std::setprecision(std::numeric_limits<double>::max_digits10)
       << s.coreClockGhz << "\n";
    return os.str();
}

bool
parseKernelStats(const std::string &payload, KernelStats &out)
{
    std::istringstream in(payload);
    std::string tag;
    int version = 0;
    in >> tag >> version;
    if (tag != "gpustats" || version != 1)
        return false;
    in >> out.cycles >> out.threadInstructions >>
        out.warpInstructions;
    for (auto &b : out.occupancyBuckets)
        in >> b;
    for (auto &m : out.memOps)
        in >> m;
    in >> out.dramTransactions >> out.dramBytes >>
        out.channelBusyCycles >> out.bankConflictExtraCycles;
    in >> out.l1Hits >> out.l1Misses >> out.l2Hits >> out.l2Misses >>
        out.texHits >> out.texMisses >> out.constHits >>
        out.constMisses;
    in >> out.numChannels >> out.coreClockGhz;
    return bool(in);
}

namespace {

struct Cta;

/** One resident warp: its replay cursor and pending instruction. */
struct Warp
{
    Warp(const BlockRecord &block, int start, int warp_size)
        : rep(block, start, warp_size)
    {
    }

    WarpReplayer rep;
    WarpInst inst;
    bool hasInst = false;
    Cta *cta = nullptr;
};

/** One resident thread block and its barrier bookkeeping. */
struct Cta
{
    int blockDim = 0;
    uint64_t sharedBytes = 0;
    int smIndex = -1;
    std::vector<std::unique_ptr<Warp>> warps;
    int aliveWarps = 0;
    int arrived = 0;
    std::vector<Warp *> barrierWaiters;
};

struct WaitEntry
{
    uint64_t wake;
    uint64_t seq;
    Warp *warp;

    bool
    operator>(const WaitEntry &o) const
    {
        return wake != o.wake ? wake > o.wake : seq > o.seq;
    }
};

/** Per-SM issue state. */
struct Sm
{
    std::deque<Warp *> ready;
    std::priority_queue<WaitEntry, std::vector<WaitEntry>,
                        std::greater<WaitEntry>>
        waiting;
    uint64_t freeCycle = 0;
    std::vector<std::unique_ptr<Cta>> ctas;
    int usedCtas = 0;
    int usedThreads = 0;
    int usedRegs = 0;
    uint64_t usedShared = 0;
    std::unique_ptr<SimpleCache> l1;
    std::unique_ptr<SimpleCache> tex;
    std::unique_ptr<SimpleCache> cst;
};

/** Single-launch simulation engine. */
class Engine
{
  public:
    Engine(const SimConfig &cfg, const KernelRecording &rec)
        : cfg(cfg), rec(rec)
    {
    }

    KernelStats
    run()
    {
        stats.numChannels = cfg.numChannels;
        stats.coreClockGhz = cfg.coreClockGhz;

        sms.resize(cfg.numSms);
        for (auto &sm : sms) {
            if (cfg.l1Enabled)
                sm.l1 = std::make_unique<SimpleCache>(cfg.l1Bytes, 8,
                                                      cfg.l1LineBytes);
            sm.tex = std::make_unique<SimpleCache>(cfg.texCacheBytes, 8, 64);
            sm.cst = std::make_unique<SimpleCache>(cfg.constCacheBytes, 8,
                                                   64);
        }
        if (cfg.l2Enabled)
            l2 = std::make_unique<SimpleCache>(cfg.l2Bytes, 16,
                                               cfg.l2LineBytes);
        chFree.assign(cfg.numChannels, 0);
        bankMask = (cfg.sharedBanks & (cfg.sharedBanks - 1)) == 0
                       ? uint64_t(cfg.sharedBanks) - 1
                       : 0;
        chanMask = (cfg.numChannels & (cfg.numChannels - 1)) == 0
                       ? uint64_t(cfg.numChannels) - 1
                       : 0;
        coalShift = __builtin_ctz(unsigned(cfg.coalesceBytes));

        blocksRemaining = int(rec.blocks.size());
        for (int s = 0; s < cfg.numSms && nextBlock < rec.blocks.size();
             ++s)
            placeBlocks(s, 0);

        // smNext[s] is a conservative lower bound on the next cycle
        // at which SM s can make progress; the per-cycle scan skips
        // an SM with one dense-array compare instead of touching its
        // queues. Deferring the waiting->ready drain this way cannot
        // change results: entries drain in (wake, seq) heap order
        // whether moved cycle-by-cycle or in one batch, and issue
        // itself only ever happens at cycles the bound admits. Only
        // the SM an issue runs on can gain work (barrier release and
        // block placement are SM-local), so recomputing the bound
        // after visiting that SM keeps it valid.
        smNext.assign(size_t(cfg.numSms), 0);
        uint64_t cycle = 0;
        uint64_t loops = 0;
        while (blocksRemaining > 0) {
            // Cooperative cancellation: a watchdog-cancelled job's
            // sim unwinds here. Strided so the thread-local poll
            // costs nothing measurable per cycle; cycles are
            // logical, so the check cannot perturb results.
            if ((++loops & 0x3fff) == 0)
                support::checkpointCancellation();
            bool issued = false;
            for (int s = 0; s < cfg.numSms; ++s) {
                if (smNext[size_t(s)] > cycle)
                    continue;
                Sm &sm = sms[s];
                while (!sm.waiting.empty() &&
                       sm.waiting.top().wake <= cycle) {
                    sm.ready.push_back(sm.waiting.top().warp);
                    sm.waiting.pop();
                }
                if (cycle >= sm.freeCycle && !sm.ready.empty()) {
                    Warp *w = sm.ready.front();
                    sm.ready.pop_front();
                    issue(s, *w, cycle);
                    issued = true;
                    if (blocksRemaining == 0)
                        break;
                }
                smNext[size_t(s)] =
                    !sm.ready.empty()
                        ? std::max(sm.freeCycle, cycle + 1)
                        : (!sm.waiting.empty()
                               ? std::max(sm.waiting.top().wake,
                                          cycle + 1)
                               : ~0ULL);
            }
            if (blocksRemaining == 0)
                break;
            if (issued) {
                ++cycle;
                continue;
            }
            // Nothing issued: jump to the next interesting cycle.
            uint64_t next = ~0ULL;
            for (uint64_t lb : smNext)
                next = std::min(next, std::max(cycle + 1, lb));
            if (next == ~0ULL)
                panic("gpusim deadlock: no runnable warps but ",
                      blocksRemaining, " blocks remain");
            cycle = next;
        }

        stats.cycles = std::max(cycle, simEnd);
        return stats;
    }

  private:
    bool
    canFit(const Sm &sm, const BlockRecord &block) const
    {
        if (sm.usedCtas == 0)
            return true; // always allow one CTA to avoid deadlock
        return sm.usedCtas < cfg.maxCtasPerSm &&
               sm.usedThreads + block.blockDim <= cfg.maxThreadsPerSm &&
               sm.usedShared + block.sharedBytes <= cfg.sharedMemPerSm &&
               sm.usedRegs + block.blockDim * cfg.regsPerThread <=
                   cfg.regFileSize;
    }

    void
    placeBlocks(int sm_index, uint64_t cycle)
    {
        Sm &sm = sms[sm_index];
        while (nextBlock < rec.blocks.size() &&
               canFit(sm, rec.blocks[nextBlock])) {
            const BlockRecord &block = rec.blocks[nextBlock];
            ++nextBlock;

            auto cta = std::make_unique<Cta>();
            cta->blockDim = block.blockDim;
            cta->sharedBytes = block.sharedBytes;
            cta->smIndex = sm_index;
            int warps = warpsPerBlock(block.blockDim, cfg.warpSize);
            for (int wi = 0; wi < warps; ++wi) {
                auto warp = std::make_unique<Warp>(
                    block, wi * cfg.warpSize, cfg.warpSize);
                warp->cta = cta.get();
                warp->hasInst = warp->rep.next(warp->inst);
                if (warp->hasInst) {
                    ++cta->aliveWarps;
                    sm.waiting.push({cycle + 1, seq++, warp.get()});
                }
                cta->warps.push_back(std::move(warp));
            }

            if (cta->aliveWarps == 0) {
                // Block recorded nothing; it completes immediately.
                --blocksRemaining;
                continue;
            }

            sm.usedCtas += 1;
            sm.usedThreads += block.blockDim;
            sm.usedShared += block.sharedBytes;
            sm.usedRegs += block.blockDim * cfg.regsPerThread;
            sm.ctas.push_back(std::move(cta));
        }
    }

    /** One global-memory transaction; returns its completion cycle. */
    uint64_t
    dramAccess(Sm &sm, uint64_t cycle, uint64_t addr, bool is_write,
               bool use_l1)
    {
        if (cfg.l1Enabled && use_l1 && !is_write) {
            if (sm.l1->access(addr)) {
                ++stats.l1Hits;
                return cycle + cfg.l1HitLatency;
            }
            ++stats.l1Misses;
        }
        if (l2) {
            if (l2->access(addr)) {
                ++stats.l2Hits;
                return cycle + cfg.l2HitLatency;
            }
            ++stats.l2Misses;
        }
        int ch = chanMask ? int((addr >> 8) & chanMask)
                          : int((addr >> 8) % uint64_t(cfg.numChannels));
        uint64_t svc = cfg.channelServiceCycles();
        uint64_t start = std::max(cycle, chFree[ch]);
        chFree[ch] = start + svc;
        stats.channelBusyCycles += svc;
        stats.dramBytes += cfg.coalesceBytes;
        ++stats.dramTransactions;
        return start + svc + cfg.gmemLatencyCycles;
    }

    /** Distinct coalesced segment addresses of a memory warp inst. */
    void
    coalesce(const WarpInst &inst, std::vector<uint64_t> &out) const
    {
        // coalesceBytes is validated power-of-two, so segment math is
        // shifts rather than 64-bit division on this per-memory-
        // instruction path.
        out.clear();
        for (int l = 0; l < 32; ++l) {
            if (!(inst.activeMask & (1u << l)))
                continue;
            uint64_t first = inst.addrs[l] >> coalShift;
            uint64_t last =
                (inst.addrs[l] + std::max(inst.size, 1u) - 1) >>
                coalShift;
            for (uint64_t s = first; s <= last; ++s) {
                uint64_t seg = s << coalShift;
                if (std::find(out.begin(), out.end(), seg) == out.end())
                    out.push_back(seg);
            }
        }
    }

    /** Shared-memory bank-conflict serialization factor. */
    int
    bankConflictFactor(const WarpInst &inst) const
    {
        if (!cfg.bankConflictsEnabled)
            return 1;
        // Words mapping to the same bank serialize; identical words
        // broadcast. This runs once per shared-memory warp
        // instruction — the hot path of NW/LUD/HS simulations — so
        // it scans fixed stack arrays (at most 32 entries) instead
        // of allocating per-bank containers, and divides only when
        // the bank count is not a power of two.
        uint64_t seenWord[32];
        int seenBank[32];
        int n = 0;
        int factor = 1;
        for (int l = 0; l < 32; ++l) {
            if (!(inst.activeMask & (1u << l)))
                continue;
            uint64_t word = inst.addrs[l] >> 2;
            int bank = bankMask ? int(word & bankMask)
                                : int(word % uint64_t(cfg.sharedBanks));
            bool dup = false;
            int multiplicity = 1;
            for (int i = 0; i < n; ++i) {
                if (seenWord[i] == word) {
                    dup = true; // broadcast: no extra cost
                    break;
                }
                if (seenBank[i] == bank)
                    ++multiplicity;
            }
            if (dup)
                continue;
            seenWord[n] = word;
            seenBank[n] = bank;
            ++n;
            factor = std::max(factor, multiplicity);
        }
        return factor;
    }

    void
    finishWarp(int sm_index, Warp &w, uint64_t cycle)
    {
        Cta *cta = w.cta;
        --cta->aliveWarps;
        if (cta->aliveWarps > 0) {
            // A warp ending can complete a barrier rendezvous.
            if (cta->arrived == cta->aliveWarps && cta->arrived > 0)
                releaseBarrier(sm_index, *cta, cycle);
            return;
        }

        // CTA complete: free resources, pull in pending work.
        Sm &sm = sms[sm_index];
        sm.usedCtas -= 1;
        sm.usedThreads -= cta->blockDim;
        sm.usedShared -= cta->sharedBytes;
        sm.usedRegs -= cta->blockDim * cfg.regsPerThread;
        --blocksRemaining;
        placeBlocks(sm_index, cycle);
    }

    void
    releaseBarrier(int sm_index, Cta &cta, uint64_t cycle)
    {
        Sm &sm = sms[sm_index];
        for (Warp *waiter : cta.barrierWaiters)
            sm.waiting.push({cycle + barrierLatency, seq++, waiter});
        cta.barrierWaiters.clear();
        cta.arrived = 0;
    }

    void
    issue(int sm_index, Warp &w, uint64_t cycle)
    {
        Sm &sm = sms[sm_index];
        // Reference, not copy (WarpInst carries 32 lane addresses):
        // every read below happens before w.rep.next(w.inst)
        // overwrites the slot at the end of issue.
        const WarpInst &inst = w.inst;
        const int active = inst.activeLanes();
        const int issueC = cfg.warpIssueCycles();

        // Commit statistics.
        stats.warpInstructions += inst.count;
        stats.threadInstructions += uint64_t(active) * inst.count;
        int bucket = std::min((active - 1) / 8, 3);
        stats.occupancyBuckets[bucket] += inst.count;

        // Memory instructions carry implicit address-arithmetic
        // instructions: commit them and occupy the issue slot.
        uint64_t issue_done = cycle + issueC;
        if (inst.op == GOp::Load || inst.op == GOp::Store) {
            stats.memOps[size_t(inst.space)] += active;
            uint64_t extra = uint64_t(cfg.addressAluPerMem);
            if (extra) {
                stats.warpInstructions += extra;
                stats.threadInstructions += extra * uint64_t(active);
                stats.occupancyBuckets[bucket] += extra;
                issue_done = cycle + issueC * (1 + extra);
            }
        }

        uint64_t wake = issue_done;
        sm.freeCycle = issue_done;

        switch (inst.op) {
          case GOp::IntAlu:
          case GOp::FpAlu:
          case GOp::Branch:
            sm.freeCycle = cycle + uint64_t(issueC) * inst.count;
            wake = sm.freeCycle;
            break;

          case GOp::Sync: {
            // Advance past the barrier, then park until release.
            Cta *cta = w.cta;
            w.hasInst = w.rep.next(w.inst);
            if (!w.hasInst) {
                finishWarp(sm_index, w, cycle);
            } else {
                cta->barrierWaiters.push_back(&w);
                ++cta->arrived;
                if (cta->arrived == cta->aliveWarps)
                    releaseBarrier(sm_index, *cta, cycle);
            }
            simEnd = std::max(simEnd, cycle + issueC);
            return;
          }

          case GOp::Load:
          case GOp::Store:
            switch (inst.space) {
              case Space::Shared: {
                int factor = bankConflictFactor(inst);
                sm.freeCycle = issue_done + uint64_t(issueC) *
                                                (factor - 1);
                wake = sm.freeCycle;
                stats.bankConflictExtraCycles +=
                    uint64_t(issueC) * (factor - 1);
                break;
              }
              case Space::Param:
                break; // register-speed, always hits
              case Space::Const: {
                // Distinct words serialize on the constant cache.
                scratch.clear();
                for (int l = 0; l < 32; ++l) {
                    if (!(inst.activeMask & (1u << l)))
                        continue;
                    uint64_t word = inst.addrs[l] >> 2;
                    if (std::find(scratch.begin(), scratch.end(), word) ==
                        scratch.end())
                        scratch.push_back(word);
                }
                uint64_t done = issue_done + cfg.constHitLatency;
                for (uint64_t word : scratch) {
                    if (sm.cst->access(word << 2)) {
                        ++stats.constHits;
                    } else {
                        ++stats.constMisses;
                        done = std::max(done, dramAccess(sm, cycle,
                                                         word << 2, false,
                                                         false));
                    }
                }
                sm.freeCycle =
                    issue_done +
                    uint64_t(issueC) *
                        (std::max<size_t>(scratch.size(), 1) - 1);
                wake = std::max(done, sm.freeCycle);
                break;
              }
              case Space::Tex: {
                coalesce(inst, scratch);
                uint64_t done = issue_done + cfg.texHitLatency;
                for (uint64_t seg : scratch) {
                    if (sm.tex->access(seg)) {
                        ++stats.texHits;
                    } else {
                        ++stats.texMisses;
                        done = std::max(done, dramAccess(sm, cycle, seg,
                                                         false, false));
                    }
                }
                wake = done;
                break;
              }
              case Space::Global:
              case Space::Local:
              default: {
                coalesce(inst, scratch);
                if (inst.op == GOp::Load) {
                    uint64_t done = issue_done;
                    for (uint64_t seg : scratch)
                        done = std::max(done, dramAccess(sm, cycle, seg,
                                                         false, true));
                    wake = done;
                } else {
                    // Stores are buffered: consume bandwidth but do
                    // not stall the warp.
                    for (uint64_t seg : scratch)
                        simEnd = std::max(simEnd,
                                          dramAccess(sm, cycle, seg, true,
                                                     true));
                }
                break;
              }
            }
            break;
        }

        simEnd = std::max(simEnd, wake);
        w.hasInst = w.rep.next(w.inst);
        if (!w.hasInst) {
            finishWarp(sm_index, w, cycle);
            return;
        }
        // Heap bypass for stall-bound instructions (ALU, shared,
        // cache-hit constant): when the warp wakes no later than the
        // SM's own issue stall, the SM cannot issue before `wake`, so
        // every future push on this SM carries a strictly larger wake
        // (freeCycle is monotone and wake' > cycle' >= freeCycle).
        // If every already-parked warp also wakes strictly later,
        // the (wake, seq) drain would deliver this warp exactly at
        // the back of the current ready queue — append it there
        // directly and skip the priority-queue round trip. An equal
        // top wake means an older (smaller-seq) warp must go first,
        // so that case takes the heap path.
        if (wake <= sm.freeCycle &&
            (sm.waiting.empty() || sm.waiting.top().wake > wake)) {
            sm.ready.push_back(&w);
            return;
        }
        sm.waiting.push({std::max(wake, cycle + 1), seq++, &w});
    }

    static constexpr uint64_t barrierLatency = 8;

    const SimConfig &cfg;
    const KernelRecording &rec;
    KernelStats stats;
    std::vector<Sm> sms;
    std::unique_ptr<SimpleCache> l2;
    std::vector<uint64_t> chFree;
    std::vector<uint64_t> scratch;
    std::vector<uint64_t> smNext; //!< per-SM next-progress lower bound
    uint64_t bankMask = 0; //!< sharedBanks-1 when a power of two
    uint64_t chanMask = 0; //!< numChannels-1 when a power of two
    int coalShift = 0;     //!< log2(coalesceBytes)
    size_t nextBlock = 0;
    int blocksRemaining = 0;
    uint64_t seq = 0;
    uint64_t simEnd = 0;
};

} // namespace

KernelStats
TimingSim::simulate(const KernelRecording &rec) const
{
    Engine engine(cfg, rec);
    return engine.run();
}

KernelStats
TimingSim::simulate(const LaunchSequence &seq) const
{
    KernelStats total;
    for (const auto &rec : seq.launches) {
        support::checkpointCancellation();
        KernelStats s = simulate(rec);
        s.cycles += cfg.launchOverheadCycles;
        total.add(s);
    }
    return total;
}

} // namespace gpusim
} // namespace rodinia
