/**
 * @file
 * Kernel-authoring API for the SIMT simulator.
 *
 * A kernel is a per-thread C++ function receiving a KernelCtx. The
 * function performs the real computation on host data while reporting
 * every dynamic instruction through the context:
 *
 *   float v = ctx.ldg(&in[i]);        // global load (reads in[i])
 *   ctx.fp(3);                        // three FP operations
 *   if (ctx.branch(v > 0.0f)) { ... } // divergent branch
 *   ctx.sync();                       // __syncthreads()
 *
 * Shared memory is allocated per block via ctx.shared<T>(n) and read
 * and written through Shared<T>, giving real producer/consumer
 * semantics between barriers (threads of a block run as cooperatively
 * scheduled fibers). Loop bodies that may diverge across lanes should
 * declare a LoopIter so that different iterations get distinct
 * execution-order keys, modeling reconvergence-stack behavior.
 */

#ifndef RODINIA_GPUSIM_KERNEL_HH
#define RODINIA_GPUSIM_KERNEL_HH

#include <cstring>
#include <functional>
#include <source_location>

#include "gpusim/types.hh"

namespace rodinia {
namespace gpusim {

class BlockRunner;
class KernelCtx;

/** Handle to a per-block shared-memory array of T. */
template <typename T>
class Shared
{
  public:
    Shared() = default;
    Shared(T *storage, uint64_t base_addr, size_t count)
        : storage(storage), baseAddr(base_addr), nElems(count)
    {
    }

    /** Instrumented shared-memory load (declared below). */
    T get(KernelCtx &ctx, size_t i,
          std::source_location loc = std::source_location::current()) const;

    /** Instrumented shared-memory store (declared below). */
    void put(KernelCtx &ctx, size_t i, const T &v,
             std::source_location loc =
                 std::source_location::current()) const;

    size_t size() const { return nElems; }
    uint64_t addrOf(size_t i) const { return baseAddr + i * sizeof(T); }

  private:
    T *storage = nullptr;
    uint64_t baseAddr = 0;
    size_t nElems = 0;
};

/** The per-thread execution context passed to kernel functions. */
class KernelCtx
{
  public:
    KernelCtx(BlockRunner *runner, int tid, int block_idx,
              const LaunchConfig &launch);

    /** Thread index within the block. */
    int tid() const { return threadId; }
    /** Block index within the grid. */
    int blockIdx() const { return blockId; }
    int blockDim() const { return cfg.blockDim; }
    int gridDim() const { return cfg.gridDim; }
    /** Flattened global thread id. */
    int globalId() const { return blockId * cfg.blockDim + threadId; }

    /** @name Instrumented memory accesses
     *  Typed loads/stores that move real data and record the access.
     *  @{
     */
    template <typename T>
    T
    ldg(const T *p,
        std::source_location loc = std::source_location::current())
    {
        record(GOp::Load, Space::Global, uint64_t(uintptr_t(p)), sizeof(T),
               loc);
        return *p;
    }

    template <typename T>
    void
    stg(T *p, const T &v,
        std::source_location loc = std::source_location::current())
    {
        record(GOp::Store, Space::Global, uint64_t(uintptr_t(p)), sizeof(T),
               loc);
        *p = v;
    }

    /** Constant-memory load (cached, read-only parameters). */
    template <typename T>
    T
    ldc(const T *p,
        std::source_location loc = std::source_location::current())
    {
        record(GOp::Load, Space::Const, uint64_t(uintptr_t(p)), sizeof(T),
               loc);
        return *p;
    }

    /** Texture fetch (cached, read-only, spatially local). */
    template <typename T>
    T
    ldt(const T *p,
        std::source_location loc = std::source_location::current())
    {
        record(GOp::Load, Space::Tex, uint64_t(uintptr_t(p)), sizeof(T),
               loc);
        return *p;
    }

    /** Kernel-parameter load (always treated as a cache hit [2]). */
    template <typename T>
    T
    ldp(const T *p,
        std::source_location loc = std::source_location::current())
    {
        record(GOp::Load, Space::Param, uint64_t(uintptr_t(p)), sizeof(T),
               loc);
        return *p;
    }

    /** Thread-local (spill) memory access. */
    template <typename T>
    T
    ldl(const T *p,
        std::source_location loc = std::source_location::current())
    {
        record(GOp::Load, Space::Local, uint64_t(uintptr_t(p)), sizeof(T),
               loc);
        return *p;
    }

    template <typename T>
    void
    stl(T *p, const T &v,
        std::source_location loc = std::source_location::current())
    {
        record(GOp::Store, Space::Local, uint64_t(uintptr_t(p)), sizeof(T),
               loc);
        *p = v;
    }
    /** @} */

    /** Allocate (or attach to) a per-block shared array of n Ts. */
    template <typename T>
    Shared<T>
    shared(size_t n)
    {
        uint64_t base = 0;
        void *storage = sharedAlloc(n * sizeof(T), alignof(T), base);
        return Shared<T>(static_cast<T *>(storage), base, n);
    }

    /** Report `n` integer ALU instructions. */
    void
    alu(uint32_t n = 1,
        std::source_location loc = std::source_location::current())
    {
        record(GOp::IntAlu, Space::None, 0, 0, loc, n);
    }

    /** Report `n` floating-point instructions. */
    void
    fp(uint32_t n = 1,
       std::source_location loc = std::source_location::current())
    {
        record(GOp::FpAlu, Space::None, 0, 0, loc, n);
    }

    /** Record a branch; returns `cond` for direct use in `if`. */
    bool
    branch(bool cond,
           std::source_location loc = std::source_location::current())
    {
        record(GOp::Branch, Space::None, 0, 0, loc);
        return cond;
    }

    /** __syncthreads(): barrier across the thread block. */
    void sync(std::source_location loc = std::source_location::current());

    /** @name Loop path tracking (used by LoopIter) @{ */
    void pushLoop(uint16_t pc, uint32_t iter);
    void popLoop();
    /** @} */

    /** Record one dynamic instruction. */
    void record(GOp op, Space space, uint64_t addr, uint32_t size,
                const std::source_location &loc, uint32_t count = 1);

    /** Raw shared-memory access recording (used by Shared<T>). */
    void
    recordShared(bool is_write, uint64_t addr, uint32_t size,
                 const std::source_location &loc)
    {
        record(is_write ? GOp::Store : GOp::Load, Space::Shared, addr, size,
               loc);
    }

  private:
    OrderKey currentKey(uint16_t event_pc) const;
    void recomputeKeyBase();
    void *sharedAlloc(size_t bytes, size_t align, uint64_t &base_addr);

    BlockRunner *runner;
    int threadId;
    int blockId;
    LaunchConfig cfg;

    /** Loop path stack: packed (pc << 16) | (iter + 1), outer first. */
    uint32_t loopStack[8];
    int loopDepth = 0;

    // currentKey() runs on every recorded instruction, but the loop-
    // stack part of the key only changes on pushLoop/popLoop: cache
    // the folded stack (keyBase) plus where the event PC slots in, so
    // the per-record cost is an OR instead of rebuilding eight
    // fields. Defaults encode the empty stack (PC in hi bits 48-63).
    OrderKey keyBase{};
    bool pcInHi = true;
    int pcShift = 48;

    /**
     * The lane trace under construction plus a one-event merge
     * buffer: the most recent event stays in `pending` so batched
     * ALU work at the same site can bump its repeat count before it
     * is committed to the (append-only) stream. flushPending() is
     * called before reading the stream and when the block finishes.
     */
    LaneStream events;
    GEvent pending{};
    bool hasPending = false;

    void
    flushPending()
    {
        if (hasPending) {
            events.append(pending);
            hasPending = false;
        }
    }

    size_t sharedCursor = 0;

    friend class BlockRunner;
};

template <typename T>
T
Shared<T>::get(KernelCtx &ctx, size_t i, std::source_location loc) const
{
    ctx.recordShared(false, addrOf(i), sizeof(T), loc);
    return storage[i];
}

template <typename T>
void
Shared<T>::put(KernelCtx &ctx, size_t i, const T &v,
               std::source_location loc) const
{
    ctx.recordShared(true, addrOf(i), sizeof(T), loc);
    storage[i] = v;
}

/**
 * RAII marker for one iteration of a potentially divergent loop.
 * Construct inside the loop body with the iteration number; distinct
 * iterations then get distinct execution-order keys so lanes in
 * different iterations are not merged by the warp replayer.
 */
class LoopIter
{
  public:
    LoopIter(KernelCtx &ctx, uint32_t iter,
             std::source_location loc = std::source_location::current())
        : ctx(ctx)
    {
        ctx.pushLoop(packPc(loc), iter);
    }
    ~LoopIter() { ctx.popLoop(); }

    LoopIter(const LoopIter &) = delete;
    LoopIter &operator=(const LoopIter &) = delete;

  private:
    KernelCtx &ctx;
};

/** A GPU kernel: per-thread function over the execution context. */
using Kernel = std::function<void(KernelCtx &)>;

} // namespace gpusim
} // namespace rodinia

#endif // RODINIA_GPUSIM_KERNEL_HH
