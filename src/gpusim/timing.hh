/**
 * @file
 * Cycle-level GPU timing model (the GPGPU-Sim analog).
 *
 * Replays a recorded kernel through a configurable many-core GPU:
 * CTAs are placed onto SMs subject to thread/CTA/shared-memory/
 * register limits; each SM issues at most one warp instruction per
 * cycle from a round-robin-ish ready queue; memory instructions are
 * coalesced into transactions that queue on the memory channels;
 * shared-memory bank conflicts serialize issue; texture/constant
 * caches, and (in Fermi mode) per-SM L1 plus a unified L2, filter
 * traffic. Barriers synchronize the warps of a CTA.
 *
 * Outputs the statistics behind Figures 1-5 and Table III: IPC, warp
 * occupancy, memory-space mix, DRAM bandwidth utilization, and cache
 * hit rates.
 */

#ifndef RODINIA_GPUSIM_TIMING_HH
#define RODINIA_GPUSIM_TIMING_HH

#include <array>
#include <cstdint>
#include <string>
#include <vector>

#include "gpusim/recorder.hh"
#include "gpusim/simconfig.hh"
#include "gpusim/types.hh"

namespace rodinia {
namespace gpusim {

/** Statistics produced by one simulated kernel (or launch sequence). */
struct KernelStats
{
    uint64_t cycles = 0;
    uint64_t threadInstructions = 0;
    uint64_t warpInstructions = 0;
    std::array<uint64_t, 4> occupancyBuckets{};
    std::array<uint64_t, 7> memOps{};

    uint64_t dramTransactions = 0;
    uint64_t dramBytes = 0;
    uint64_t channelBusyCycles = 0;
    uint64_t bankConflictExtraCycles = 0;

    uint64_t l1Hits = 0, l1Misses = 0;
    uint64_t l2Hits = 0, l2Misses = 0;
    uint64_t texHits = 0, texMisses = 0;
    uint64_t constHits = 0, constMisses = 0;

    int numChannels = 0;
    double coreClockGhz = 0.0;

    /** Committed thread instructions per cycle. */
    double
    ipc() const
    {
        return cycles ? double(threadInstructions) / double(cycles) : 0.0;
    }

    /** Fraction of total channel-cycles spent transferring data. */
    double
    bwUtilization() const
    {
        if (!cycles || !numChannels)
            return 0.0;
        return double(channelBusyCycles) /
               (double(cycles) * double(numChannels));
    }

    /** Wall-clock kernel time in microseconds at the core clock. */
    double
    timeUs() const
    {
        return coreClockGhz > 0.0
                   ? double(cycles) / (coreClockGhz * 1e3)
                   : 0.0;
    }

    /** Aggregate another launch's stats (cycles accumulate). */
    void add(const KernelStats &o);

    bool operator==(const KernelStats &o) const;
};

/**
 * Serialize stats to the result-store payload format. The payload
 * is a pure function of the field values (doubles print with
 * max_digits10 precision, which round-trips exactly), so identical
 * simulations publish identical bytes from any process.
 */
std::string serializeKernelStats(const KernelStats &s);

/**
 * Parse a store payload back into stats.
 * @return false if the payload is malformed (treated as a miss)
 */
bool parseKernelStats(const std::string &payload, KernelStats &out);

/**
 * Point-in-time view of one SM's scheduler state, captured for the
 * deadlock diagnostic below. Plain data so tests can fabricate
 * snapshots without driving a real engine into a wedged state.
 */
struct SmSnapshot
{
    size_t readyWarps = 0;   //!< warps in the issue queue
    size_t waitingWarps = 0; //!< warps parked on wake cycles
    int residentCtas = 0;    //!< CTAs currently placed on the SM
    uint64_t freeCycle = 0;  //!< first cycle the SM may issue again
    uint64_t nextBound = 0;  //!< scheduler's next-progress lower bound
};

/**
 * Render the "no runnable warps but blocks remain" diagnostic: the
 * wedged cycle, block-dispatch counters, and one line per SM with
 * queue depths and scheduler bounds. A wedged paper-scale sim must
 * be debuggable from this message alone, so it is a separate pure
 * function with its own unit test rather than an inline panic string.
 */
std::string formatDeadlockDiagnostics(uint64_t cycle, size_t next_block,
                                      size_t total_blocks,
                                      size_t blocks_remaining,
                                      const std::vector<SmSnapshot> &sms);

/**
 * The epoch length (in core cycles) the parallel engine uses for the
 * given configuration: the minimum latency of any path through the
 * shared L2/DRAM model. Any request issued inside an epoch completes
 * at or after the next epoch boundary, which is what makes deferring
 * shared-state arbitration to the boundary exact rather than
 * approximate (see DESIGN.md "Parallel timing engine").
 */
uint64_t epochCyclesFor(const SimConfig &cfg);

/**
 * Test hook: cap the parallel engine's epoch length at @p cycles
 * (0 restores the automatic epochCyclesFor value). Values above the
 * safe bound are clamped to it — shorter epochs are always sound,
 * longer ones are not — so property tests can sweep epoch lengths
 * and assert bit-identical stats without risking an unsound run.
 */
void setSimEpochForTest(uint64_t cycles);

/** Simulates recorded kernels under one architectural configuration. */
class TimingSim
{
  public:
    /** Validates the configuration up front (fatal on nonsense). */
    explicit TimingSim(const SimConfig &config) : cfg(config)
    {
        cfg.validate();
    }

    /** Simulate one kernel launch. */
    KernelStats simulate(const KernelRecording &rec) const;

    /**
     * Simulate a sequence of dependent launches; cycle counts add up
     * and a per-launch overhead models the driver launch cost.
     */
    KernelStats simulate(const LaunchSequence &seq) const;

    const SimConfig &config() const { return cfg; }

  private:
    SimConfig cfg;
};

} // namespace gpusim
} // namespace rodinia

#endif // RODINIA_GPUSIM_TIMING_HH
