/**
 * @file
 * Cycle-level GPU timing model (the GPGPU-Sim analog).
 *
 * Replays a recorded kernel through a configurable many-core GPU:
 * CTAs are placed onto SMs subject to thread/CTA/shared-memory/
 * register limits; each SM issues at most one warp instruction per
 * cycle from a round-robin-ish ready queue; memory instructions are
 * coalesced into transactions that queue on the memory channels;
 * shared-memory bank conflicts serialize issue; texture/constant
 * caches, and (in Fermi mode) per-SM L1 plus a unified L2, filter
 * traffic. Barriers synchronize the warps of a CTA.
 *
 * Outputs the statistics behind Figures 1-5 and Table III: IPC, warp
 * occupancy, memory-space mix, DRAM bandwidth utilization, and cache
 * hit rates.
 */

#ifndef RODINIA_GPUSIM_TIMING_HH
#define RODINIA_GPUSIM_TIMING_HH

#include <array>
#include <cstdint>
#include <string>

#include "gpusim/recorder.hh"
#include "gpusim/simconfig.hh"
#include "gpusim/types.hh"

namespace rodinia {
namespace gpusim {

/** Statistics produced by one simulated kernel (or launch sequence). */
struct KernelStats
{
    uint64_t cycles = 0;
    uint64_t threadInstructions = 0;
    uint64_t warpInstructions = 0;
    std::array<uint64_t, 4> occupancyBuckets{};
    std::array<uint64_t, 7> memOps{};

    uint64_t dramTransactions = 0;
    uint64_t dramBytes = 0;
    uint64_t channelBusyCycles = 0;
    uint64_t bankConflictExtraCycles = 0;

    uint64_t l1Hits = 0, l1Misses = 0;
    uint64_t l2Hits = 0, l2Misses = 0;
    uint64_t texHits = 0, texMisses = 0;
    uint64_t constHits = 0, constMisses = 0;

    int numChannels = 0;
    double coreClockGhz = 0.0;

    /** Committed thread instructions per cycle. */
    double
    ipc() const
    {
        return cycles ? double(threadInstructions) / double(cycles) : 0.0;
    }

    /** Fraction of total channel-cycles spent transferring data. */
    double
    bwUtilization() const
    {
        if (!cycles || !numChannels)
            return 0.0;
        return double(channelBusyCycles) /
               (double(cycles) * double(numChannels));
    }

    /** Wall-clock kernel time in microseconds at the core clock. */
    double
    timeUs() const
    {
        return coreClockGhz > 0.0
                   ? double(cycles) / (coreClockGhz * 1e3)
                   : 0.0;
    }

    /** Aggregate another launch's stats (cycles accumulate). */
    void add(const KernelStats &o);

    bool operator==(const KernelStats &o) const;
};

/**
 * Serialize stats to the result-store payload format. The payload
 * is a pure function of the field values (doubles print with
 * max_digits10 precision, which round-trips exactly), so identical
 * simulations publish identical bytes from any process.
 */
std::string serializeKernelStats(const KernelStats &s);

/**
 * Parse a store payload back into stats.
 * @return false if the payload is malformed (treated as a miss)
 */
bool parseKernelStats(const std::string &payload, KernelStats &out);

/** Simulates recorded kernels under one architectural configuration. */
class TimingSim
{
  public:
    /** Validates the configuration up front (fatal on nonsense). */
    explicit TimingSim(const SimConfig &config) : cfg(config)
    {
        cfg.validate();
    }

    /** Simulate one kernel launch. */
    KernelStats simulate(const KernelRecording &rec) const;

    /**
     * Simulate a sequence of dependent launches; cycle counts add up
     * and a per-launch overhead models the driver launch cost.
     */
    KernelStats simulate(const LaunchSequence &seq) const;

    const SimConfig &config() const { return cfg; }

  private:
    SimConfig cfg;
};

} // namespace gpusim
} // namespace rodinia

#endif // RODINIA_GPUSIM_TIMING_HH
