#include "gpusim/simplecache.hh"

#include "support/logging.hh"

namespace rodinia {
namespace gpusim {

SimpleCache::SimpleCache(uint64_t size_bytes, int assoc, int line_bytes)
    : assoc(assoc), line(line_bytes)
{
    if (size_bytes == 0 || assoc <= 0 || line_bytes <= 0)
        fatal("SimpleCache: invalid geometry");
    numSets = size_bytes / (uint64_t(assoc) * line_bytes);
    if (numSets == 0)
        numSets = 1;
    // Round down to a power of two for cheap indexing.
    while (numSets & (numSets - 1))
        numSets &= numSets - 1;
    setShift = __builtin_ctzll(numSets);
    lineShift = (line & (line - 1)) == 0 ? __builtin_ctz(unsigned(line))
                                         : -1;
    entries.resize(numSets * assoc);
}

bool
SimpleCache::access(uint64_t addr)
{
    ++clock;
    uint64_t line_addr =
        lineShift >= 0 ? addr >> lineShift : addr / uint64_t(line);
    uint64_t set = line_addr & (numSets - 1);
    uint64_t tag = line_addr >> setShift;
    Entry *base = &entries[set * assoc];

    for (int w = 0; w < assoc; ++w) {
        if (base[w].valid && base[w].tag == tag) {
            base[w].lastUse = clock;
            ++nHits;
            return true;
        }
    }

    ++nMisses;
    Entry *victim = base;
    for (int w = 0; w < assoc; ++w) {
        if (!base[w].valid) {
            victim = &base[w];
            break;
        }
        if (base[w].lastUse < victim->lastUse)
            victim = &base[w];
    }
    victim->valid = true;
    victim->tag = tag;
    victim->lastUse = clock;
    return false;
}

} // namespace gpusim
} // namespace rodinia
