#include "gpusim/replay.hh"

#include "gpusim/recorder.hh"

namespace rodinia {
namespace gpusim {

WarpReplayer::WarpReplayer(const BlockRecord &block, int warp_start,
                           int warp_size)
{
    int lanes = block.blockDim - warp_start;
    if (lanes > warp_size)
        lanes = warp_size;
    for (int l = 0; l < lanes; ++l) {
        const auto &trace = block.lanes[size_t(warp_start + l)];
        if (trace.empty())
            continue;
        cur[size_t(l)] = LaneStream::Cursor(trace);
        if (cur[size_t(l)].next(ev[size_t(l)]))
            live |= 1u << l;
    }
}

double
TraceStats::avgWarpOccupancy() const
{
    if (!warpInstructions)
        return 0.0;
    return double(threadInstructions) / double(warpInstructions);
}

std::array<double, 4>
TraceStats::occupancyFractions() const
{
    std::array<double, 4> out{};
    uint64_t total = 0;
    for (auto b : occupancyBuckets)
        total += b;
    if (!total)
        return out;
    for (size_t i = 0; i < out.size(); ++i)
        out[i] = double(occupancyBuckets[i]) / double(total);
    return out;
}

std::array<double, 7>
TraceStats::memOpFractions() const
{
    std::array<double, 7> out{};
    uint64_t total = 0;
    for (auto m : memOps)
        total += m;
    if (!total)
        return out;
    for (size_t i = 0; i < out.size(); ++i)
        out[i] = double(memOps[i]) / double(total);
    return out;
}

namespace {

void
accumulate(TraceStats &stats, const KernelRecording &rec, int warp_size)
{
    for (const auto &block : rec.blocks) {
        for (int w = 0; w < warpsPerBlock(block.blockDim, warp_size); ++w) {
            WarpReplayer rep(block, w * warp_size, warp_size);
            WarpInst inst;
            while (rep.next(inst)) {
                int active = inst.activeLanes();
                stats.warpInstructions += inst.count;
                stats.threadInstructions +=
                    uint64_t(active) * inst.count;
                int bucket = (active - 1) / 8;
                if (bucket > 3)
                    bucket = 3;
                stats.occupancyBuckets[bucket] += inst.count;
                if (inst.op == GOp::Load || inst.op == GOp::Store)
                    stats.memOps[size_t(inst.space)] += active;
            }
        }
    }
}

} // namespace

TraceStats
analyzeTrace(const KernelRecording &rec, int warp_size)
{
    TraceStats stats;
    accumulate(stats, rec, warp_size);
    return stats;
}

TraceStats
analyzeTrace(const LaunchSequence &seq, int warp_size)
{
    TraceStats stats;
    for (const auto &rec : seq.launches)
        accumulate(stats, rec, warp_size);
    return stats;
}

} // namespace gpusim
} // namespace rodinia
