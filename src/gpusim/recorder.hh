/**
 * @file
 * Kernel trace recorder.
 *
 * Executes a kernel's real computation thread-by-thread and records
 * per-lane dynamic instruction traces. Threads of one block run as
 * cooperatively scheduled fibers so that __syncthreads() has real
 * barrier semantics: all threads of the block complete the current
 * barrier phase (including their shared-memory writes) before any
 * thread starts the next phase, exactly as a data-race-free CUDA
 * kernel requires.
 */

#ifndef RODINIA_GPUSIM_RECORDER_HH
#define RODINIA_GPUSIM_RECORDER_HH

#include "gpusim/kernel.hh"
#include "gpusim/types.hh"

namespace rodinia {
namespace gpusim {

/**
 * Record one kernel launch.
 *
 * Blocks execute sequentially (deterministically); within a block,
 * threads are fibers scheduled in thread-id order between barriers.
 *
 * @param launch grid/block geometry
 * @param kernel per-thread kernel function
 */
KernelRecording recordKernel(const LaunchConfig &launch,
                             const Kernel &kernel);

/**
 * A sequence of dependent kernel launches (iterative applications
 * launch the same kernel many times with a global synchronization
 * between launches).
 */
struct LaunchSequence
{
    std::vector<KernelRecording> launches;

    /** Append one more recorded launch. */
    void
    add(KernelRecording rec)
    {
        launches.push_back(std::move(rec));
    }

    uint64_t threadInstructions() const;
    std::vector<uint64_t> memOpsBySpace() const;
};

} // namespace gpusim
} // namespace rodinia

#endif // RODINIA_GPUSIM_RECORDER_HH
