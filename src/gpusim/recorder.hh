/**
 * @file
 * Kernel trace recorder.
 *
 * Executes a kernel's real computation thread-by-thread and records
 * per-lane dynamic instruction traces. Threads of one block run as
 * cooperatively scheduled fibers so that __syncthreads() has real
 * barrier semantics: all threads of the block complete the current
 * barrier phase (including their shared-memory writes) before any
 * thread starts the next phase, exactly as a data-race-free CUDA
 * kernel requires.
 */

#ifndef RODINIA_GPUSIM_RECORDER_HH
#define RODINIA_GPUSIM_RECORDER_HH

#include "gpusim/kernel.hh"
#include "gpusim/types.hh"

namespace rodinia {
namespace gpusim {

/**
 * Record one kernel launch.
 *
 * Blocks execute sequentially (deterministically); within a block,
 * threads are fibers scheduled in thread-id order between barriers.
 *
 * @param launch grid/block geometry
 * @param kernel per-thread kernel function
 */
KernelRecording recordKernel(const LaunchConfig &launch,
                             const Kernel &kernel);

/**
 * A sequence of dependent kernel launches (iterative applications
 * launch the same kernel many times with a global synchronization
 * between launches).
 */
struct LaunchSequence
{
    std::vector<KernelRecording> launches;

    /** Append one more recorded launch. */
    void
    add(KernelRecording rec)
    {
        launches.push_back(std::move(rec));
    }

    uint64_t threadInstructions() const;
    std::vector<uint64_t> memOpsBySpace() const;
};

/**
 * Digest over every field that determines simulation output: launch
 * geometry, per-block shared size, and each lane's full event
 * stream (order keys, addresses, sizes, counts, op, space).
 * Recordings are canonical (device addresses are rewritten onto
 * gpusim::DeviceSpace), so the digest is process-independent; the
 * driver uses it to content-address stored simulation results.
 */
uint64_t contentHash(const KernelRecording &rec);

/** Digest of a whole sequence (folds in every launch's digest). */
uint64_t contentHash(const LaunchSequence &seq);

} // namespace gpusim
} // namespace rodinia

#endif // RODINIA_GPUSIM_RECORDER_HH
