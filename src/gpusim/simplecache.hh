/**
 * @file
 * Small set-associative LRU cache used for the GPU's texture,
 * constant, L1 and L2 caches. Tracks hits and misses only — the
 * timing model turns misses into memory-channel transactions.
 */

#ifndef RODINIA_GPUSIM_SIMPLECACHE_HH
#define RODINIA_GPUSIM_SIMPLECACHE_HH

#include <cstdint>
#include <vector>

namespace rodinia {
namespace gpusim {

/** Set-associative LRU lookup cache (no data, no coherence). */
class SimpleCache
{
  public:
    SimpleCache(uint64_t size_bytes, int assoc, int line_bytes);

    /** Look up `addr`; allocate on miss. Returns true on hit. */
    bool access(uint64_t addr);

    uint64_t hits() const { return nHits; }
    uint64_t misses() const { return nMisses; }
    int lineBytes() const { return line; }

  private:
    struct Entry
    {
        uint64_t tag = 0;
        uint64_t lastUse = 0;
        bool valid = false;
    };

    int assoc;
    int line;
    int lineShift = -1; //!< log2(line) when a power of two, else -1
    int setShift = 0;   //!< log2(numSets); numSets is always a power of two
    uint64_t numSets;
    std::vector<Entry> entries;
    uint64_t clock = 0;
    uint64_t nHits = 0;
    uint64_t nMisses = 0;
};

} // namespace gpusim
} // namespace rodinia

#endif // RODINIA_GPUSIM_SIMPLECACHE_HH
