/**
 * @file
 * Core types for the trace-driven SIMT GPU simulator (the GPGPU-Sim
 * analog used for Figures 1-5, Table III, and the Plackett-Burman
 * study).
 *
 * Kernels execute their real computation per thread while recording a
 * trace of dynamic instructions. Each event carries a 128-bit order
 * key encoding the loop-iteration path plus the source-location PC;
 * comparing keys lexicographically reproduces program execution
 * order, which lets the warp replayer model SIMT reconvergence by
 * always executing the minimum-key lanes together.
 *
 * Lane traces are stored as LaneStreams: delta-encoded byte buffers
 * (order-key deltas, address deltas, op/space tag bytes, optional
 * repeat counts) decoded sequentially during replay. A 40-byte GEvent
 * compresses to a few bytes because consecutive events share key
 * prefixes and access strides — that is what makes paper-scale
 * recordings fit in memory. The materialized GEvent-vector
 * representation survives behind support::traceOracleMode() as the
 * byte-equivalence oracle.
 */

#ifndef RODINIA_GPUSIM_TYPES_HH
#define RODINIA_GPUSIM_TYPES_HH

#include <cstddef>
#include <cstdint>
#include <source_location>
#include <vector>

#include "support/tracemode.hh"
#include "support/varint.hh"

namespace rodinia {
namespace gpusim {

/** Dynamic instruction categories recorded by kernels. */
enum class GOp : uint8_t {
    IntAlu,
    FpAlu,
    Branch,
    Load,
    Store,
    Sync,
};

/** GPU memory spaces (Figure 2's breakdown). */
enum class Space : uint8_t {
    None,
    Global,
    Shared,
    Const,
    Tex,
    Param,
    Local,
};

/** Printable name for a memory space. */
const char *spaceName(Space s);

/**
 * 128-bit execution-order key: up to three (pc, iteration) loop
 * levels followed by the event PC, packed most-significant-first so
 * integer comparison equals lexicographic program-order comparison.
 */
struct OrderKey
{
    uint64_t hi = 0;
    uint64_t lo = 0;

    bool
    operator==(const OrderKey &o) const
    {
        return hi == o.hi && lo == o.lo;
    }
    bool
    operator<(const OrderKey &o) const
    {
        return hi != o.hi ? hi < o.hi : lo < o.lo;
    }
};

/**
 * Compress a source location into a 16-bit PC.
 *
 * Lines above 1023 fold their overflow bits back into the 10-bit
 * field (XOR of the 10-bit groups) instead of clamping: clamping
 * mapped every line past 1023 to the same PC, so distinct
 * instrumentation sites deep in a large file collided into one key
 * slot, merging distinct loop levels and distorting SIMT
 * reconvergence. For lines <= 1023 the folds are no-ops, so existing
 * PCs (and every recorded content hash) are unchanged.
 */
inline uint16_t
packPc(const std::source_location &loc)
{
    uint32_t line = loc.line();
    line = (line ^ (line >> 10) ^ (line >> 20)) & 1023;
    uint32_t col = loc.column() > 63 ? 63 : loc.column();
    uint16_t pc = uint16_t((line << 6) | col);
    return pc ? pc : 1;
}

/** One recorded dynamic instruction of one GPU thread. */
struct GEvent
{
    OrderKey key;
    uint64_t addr = 0;
    uint32_t size = 0;
    uint32_t count = 1; //!< repeat count for batched ALU work
    GOp op = GOp::IntAlu;
    Space space = Space::None;
};

/**
 * Compact append-only storage for one lane's event trace.
 *
 * Events are delta-encoded into a single byte buffer: a tag byte
 * (op, space, presence bits), zigzag-varint deltas of the two order-
 * key words against the previous event, a zigzag-varint address
 * delta against the previous memory access plus a varint size (only
 * for events that carry an address), and a varint repeat count (only
 * when != 1). One buffer per lane — not one per column — because a
 * paper-scale launch has millions of short lanes and per-lane column
 * vectors would cost more in headers than the payload; the CPU-side
 * trace::EventStream, with few long streams, keeps true columns.
 *
 * Decoding is sequential via Cursor, which is exactly how the warp
 * replayer, the content hash, and the aggregate counters consume
 * lanes. In oracle mode (support::traceOracleMode()) the stream
 * stores plain GEvents instead and must behave identically.
 */
class LaneStream
{
  public:
    LaneStream() : materializedMode(support::traceOracleMode()) {}

    /** Force a representation (tests); production uses the default. */
    explicit LaneStream(bool materialized)
        : materializedMode(materialized)
    {
    }

    /** Append one event at the tail of the lane. */
    void
    append(const GEvent &e)
    {
        ++count;
        if (materializedMode) {
            vec.push_back(e);
            return;
        }
        bool hasAddr = e.addr != 0 || e.size != 0;
        bool hasCount = e.count != 1;
        uint8_t tag = uint8_t(uint8_t(e.op) | (uint8_t(e.space) << 3) |
                              (hasAddr ? 0x40 : 0) |
                              (hasCount ? 0x80 : 0));
        buf.push_back(tag);
        // Order keys are packed most-significant-first (the event PC
        // occupies bits 48-63 of an empty stack), so consecutive
        // events differ in the HIGH bits — the worst case for a
        // little-endian varint of an arithmetic delta. Byte-swapping
        // before an XOR delta moves the changing bytes to the low
        // end: a PC change costs 1-3 varint bytes instead of 8-10.
        uint64_t swHi = __builtin_bswap64(e.key.hi);
        uint64_t swLo = __builtin_bswap64(e.key.lo);
        support::putVarint(buf, swHi ^ prevKeyHi);
        support::putVarint(buf, swLo ^ prevKeyLo);
        prevKeyHi = swHi;
        prevKeyLo = swLo;
        if (hasAddr) {
            support::putVarint(
                buf, support::zigzag(int64_t(e.addr - prevAddr)));
            support::putVarint(buf, e.size);
            prevAddr = e.addr;
        }
        if (hasCount)
            support::putVarint(buf, e.count);
    }

    uint64_t size() const { return count; }
    bool empty() const { return count == 0; }
    bool materialized() const { return materializedMode; }

    /** Encoded payload bytes (materialized mode: struct bytes). */
    uint64_t
    encodedBytes() const
    {
        return materializedMode ? count * sizeof(GEvent) : buf.size();
    }

    /** Sequential decoder; do not append while cursors exist. */
    class Cursor
    {
      public:
        Cursor() = default;
        explicit Cursor(const LaneStream &stream)
            : s(&stream), remaining(stream.count)
        {
        }

        /** Decode the next event into out; false at end of lane. */
        bool
        next(GEvent &out)
        {
            if (remaining == 0)
                return false;
            --remaining;
            if (s->materializedMode) {
                out = s->vec[idx++];
                return true;
            }
            const uint8_t *p = s->buf.data() + off;
            uint8_t tag = *p++;
            out.op = GOp(tag & 7);
            out.space = Space((tag >> 3) & 7);
            prevKeyHi ^= support::getVarint(p);
            prevKeyLo ^= support::getVarint(p);
            out.key.hi = __builtin_bswap64(prevKeyHi);
            out.key.lo = __builtin_bswap64(prevKeyLo);
            if (tag & 0x40) {
                prevAddr +=
                    uint64_t(support::unzigzag(support::getVarint(p)));
                out.addr = prevAddr;
                out.size = uint32_t(support::getVarint(p));
            } else {
                out.addr = 0;
                out.size = 0;
            }
            out.count = (tag & 0x80) ? uint32_t(support::getVarint(p)) : 1;
            off = std::size_t(p - s->buf.data());
            return true;
        }

      private:
        const LaneStream *s = nullptr;
        uint64_t remaining = 0;
        std::size_t idx = 0; //!< materialized-mode position
        std::size_t off = 0; //!< compact-mode byte offset
        uint64_t prevKeyHi = 0;
        uint64_t prevKeyLo = 0;
        uint64_t prevAddr = 0;
    };

    /** Visit every event in order (inlined per-event dispatch). */
    template <typename Fn>
    void
    forEach(Fn &&fn) const
    {
        Cursor c(*this);
        GEvent e;
        while (c.next(e))
            fn(e);
    }

    /** Materialize the lane (tests / small traces only). */
    std::vector<GEvent>
    decodeAll() const
    {
        std::vector<GEvent> out;
        out.reserve(std::size_t(count));
        forEach([&](const GEvent &e) { out.push_back(e); });
        return out;
    }

    /**
     * Rewrite every event in place: decode, apply fn(GEvent&),
     * re-encode. Used by DeviceSpace::rewrite to remap addresses
     * onto the canonical device layout. Invalidates cursors.
     */
    template <typename Fn>
    void
    transform(Fn &&fn)
    {
        if (materializedMode) {
            for (auto &e : vec)
                fn(e);
            return;
        }
        LaneStream out(false);
        out.buf.reserve(buf.size());
        forEach([&](const GEvent &ev) {
            GEvent m = ev;
            fn(m);
            out.append(m);
        });
        *this = std::move(out);
    }

  private:
    bool materializedMode;
    uint64_t count = 0;
    std::vector<GEvent> vec;  //!< materialized (oracle) storage
    std::vector<uint8_t> buf; //!< delta-encoded compact storage
    uint64_t prevKeyHi = 0;   //!< encoder state: byte-swapped key words
    uint64_t prevKeyLo = 0;
    uint64_t prevAddr = 0;    //!< encoder state: previous mem address
};

/** Kernel launch geometry (1-D grid and block, as Rodinia uses). */
struct LaunchConfig
{
    int gridDim = 1;
    int blockDim = 32;

    int totalThreads() const { return gridDim * blockDim; }
};

/** Recording of one thread block: one event trace per thread. */
struct BlockRecord
{
    std::vector<LaneStream> lanes;
    uint64_t sharedBytes = 0;
    int blockDim = 0;
};

/** Full recording of one kernel launch. */
struct KernelRecording
{
    LaunchConfig launch;
    std::vector<BlockRecord> blocks;

    /** Total dynamic thread instructions across all blocks. */
    uint64_t threadInstructions() const;

    /** Total dynamic memory instructions by space. */
    std::vector<uint64_t> memOpsBySpace() const;
};

} // namespace gpusim
} // namespace rodinia

#endif // RODINIA_GPUSIM_TYPES_HH
