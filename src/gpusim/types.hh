/**
 * @file
 * Core types for the trace-driven SIMT GPU simulator (the GPGPU-Sim
 * analog used for Figures 1-5, Table III, and the Plackett-Burman
 * study).
 *
 * Kernels execute their real computation per thread while recording a
 * trace of dynamic instructions. Each event carries a 128-bit order
 * key encoding the loop-iteration path plus the source-location PC;
 * comparing keys lexicographically reproduces program execution
 * order, which lets the warp replayer model SIMT reconvergence by
 * always executing the minimum-key lanes together.
 */

#ifndef RODINIA_GPUSIM_TYPES_HH
#define RODINIA_GPUSIM_TYPES_HH

#include <cstdint>
#include <source_location>
#include <vector>

namespace rodinia {
namespace gpusim {

/** Dynamic instruction categories recorded by kernels. */
enum class GOp : uint8_t {
    IntAlu,
    FpAlu,
    Branch,
    Load,
    Store,
    Sync,
};

/** GPU memory spaces (Figure 2's breakdown). */
enum class Space : uint8_t {
    None,
    Global,
    Shared,
    Const,
    Tex,
    Param,
    Local,
};

/** Printable name for a memory space. */
const char *spaceName(Space s);

/**
 * 128-bit execution-order key: up to three (pc, iteration) loop
 * levels followed by the event PC, packed most-significant-first so
 * integer comparison equals lexicographic program-order comparison.
 */
struct OrderKey
{
    uint64_t hi = 0;
    uint64_t lo = 0;

    bool
    operator==(const OrderKey &o) const
    {
        return hi == o.hi && lo == o.lo;
    }
    bool
    operator<(const OrderKey &o) const
    {
        return hi != o.hi ? hi < o.hi : lo < o.lo;
    }
};

/** Compress a source location into a 16-bit PC. */
inline uint16_t
packPc(const std::source_location &loc)
{
    uint32_t line = loc.line() > 1023 ? 1023 : loc.line();
    uint32_t col = loc.column() > 63 ? 63 : loc.column();
    uint16_t pc = uint16_t((line << 6) | col);
    return pc ? pc : 1;
}

/** One recorded dynamic instruction of one GPU thread. */
struct GEvent
{
    OrderKey key;
    uint64_t addr = 0;
    uint32_t size = 0;
    uint32_t count = 1; //!< repeat count for batched ALU work
    GOp op = GOp::IntAlu;
    Space space = Space::None;
};

/** Kernel launch geometry (1-D grid and block, as Rodinia uses). */
struct LaunchConfig
{
    int gridDim = 1;
    int blockDim = 32;

    int totalThreads() const { return gridDim * blockDim; }
};

/** Recording of one thread block: one event trace per thread. */
struct BlockRecord
{
    std::vector<std::vector<GEvent>> lanes;
    uint64_t sharedBytes = 0;
    int blockDim = 0;
};

/** Full recording of one kernel launch. */
struct KernelRecording
{
    LaunchConfig launch;
    std::vector<BlockRecord> blocks;

    /** Total dynamic thread instructions across all blocks. */
    uint64_t threadInstructions() const;

    /** Total dynamic memory instructions by space. */
    std::vector<uint64_t> memOpsBySpace() const;
};

} // namespace gpusim
} // namespace rodinia

#endif // RODINIA_GPUSIM_TYPES_HH
