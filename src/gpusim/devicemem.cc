#include "gpusim/devicemem.hh"

#include <algorithm>
#include <unordered_map>

#include "support/logging.hh"

namespace rodinia {
namespace gpusim {

void
DeviceSpace::add(const void *p, size_t bytes)
{
    if (p == nullptr || bytes == 0)
        return;
    Buffer b;
    b.base = uint64_t(uintptr_t(p));
    b.bytes = bytes;
    b.canonical = top;
    top = (top + bytes + kAlign - 1) / kAlign * kAlign;

    auto it = std::upper_bound(buffers.begin(), buffers.end(), b,
                               [](const Buffer &x, const Buffer &y) {
                                   return x.base < y.base;
                               });
    // Overlap would make the address -> buffer lookup ambiguous; it
    // means a registered buffer died and its storage was reused.
    if (it != buffers.end() && b.base + b.bytes > it->base)
        fatal("DeviceSpace: buffer overlaps a later registration");
    if (it != buffers.begin()) {
        const Buffer &prev = *(it - 1);
        if (prev.base + prev.bytes > b.base)
            fatal("DeviceSpace: buffer overlaps an earlier registration");
    }
    buffers.insert(it, b);
}

void
DeviceSpace::rewrite(LaunchSequence &seq) const
{
    // First-touch page map for addresses in no registered buffer
    // (stack scalars referenced via ctx.param(&x) and the like).
    std::unordered_map<uint64_t, uint64_t> hostPages;

    // One-entry buffer cache: consecutive events overwhelmingly hit
    // the same registered buffer, so try the previous match before
    // paying the binary search.
    const Buffer *lastBuf = nullptr;
    auto remap = [&](uint64_t addr) -> uint64_t {
        if (lastBuf && addr - lastBuf->base < lastBuf->bytes)
            return lastBuf->canonical + (addr - lastBuf->base);
        // Registered buffer: canonical base + offset.
        auto it = std::upper_bound(
            buffers.begin(), buffers.end(), addr,
            [](uint64_t a, const Buffer &x) { return a < x.base; });
        if (it != buffers.begin()) {
            const Buffer &b = *(it - 1);
            if (addr - b.base < b.bytes) {
                lastBuf = &b;
                return b.canonical + (addr - b.base);
            }
        }
        // Fallback: deterministic page-granular relocation.
        uint64_t page = addr >> 12;
        auto [slot, fresh] =
            hostPages.try_emplace(page, kHostBase >> 12);
        if (fresh)
            slot->second = (kHostBase >> 12) + hostPages.size() - 1;
        return (slot->second << 12) | (addr & 0xfff);
    };

    for (auto &launch : seq.launches) {
        for (auto &block : launch.blocks) {
            for (auto &lane : block.lanes) {
                lane.transform([&](GEvent &e) {
                    if (e.op != GOp::Load && e.op != GOp::Store)
                        return;
                    if (e.space == Space::Shared ||
                        e.space == Space::None)
                        return;
                    e.addr = remap(e.addr);
                });
            }
        }
    }
}

} // namespace gpusim
} // namespace rodinia
