/**
 * @file
 * SIMT warp replay: merges per-lane traces into warp instructions.
 *
 * The replayer walks the 32 lanes of a warp in lockstep: at each
 * step it finds the minimum execution-order key among the lanes'
 * next events and issues one warp instruction covering exactly the
 * lanes sitting at that key. Divergent branches therefore split the
 * warp into serialized groups (smaller active masks), and lanes
 * reconverge as soon as their keys match again — the behavior of a
 * reconvergence-stack SIMT pipeline, including loop-level divergence
 * thanks to LoopIter's per-iteration keys.
 */

#ifndef RODINIA_GPUSIM_REPLAY_HH
#define RODINIA_GPUSIM_REPLAY_HH

#include <array>
#include <cstdint>

#include "gpusim/types.hh"

namespace rodinia {
namespace gpusim {

/** One warp-level instruction reconstructed from lane traces. */
struct WarpInst
{
    GOp op = GOp::IntAlu;
    Space space = Space::None;
    uint32_t activeMask = 0;
    uint32_t count = 1;  //!< serialized repeat count (batched ALU)
    uint32_t size = 0;   //!< per-lane access size for memory ops
    std::array<uint64_t, 32> addrs{}; //!< per-lane addresses (mem ops)

    int activeLanes() const { return __builtin_popcount(activeMask); }
};

/** Replays one warp of a recorded block as warp instructions. */
class WarpReplayer
{
  public:
    /**
     * @param block recorded block
     * @param warp_start first lane's thread index within the block
     * @param warp_size lanes per warp (threads beyond blockDim are
     *        simply absent)
     */
    WarpReplayer(const BlockRecord &block, int warp_start, int warp_size);

    /** Produce the next warp instruction; false when exhausted. */
    bool next(WarpInst &out);

    /** Total warp instructions remaining untouched by next(). */
    bool done() const { return remaining == 0; }

  private:
    const BlockRecord *block;
    int start;
    int lanes;
    std::array<uint32_t, 32> cursor{};
    int remaining;
};

/** Number of warps needed for a block of the given size. */
inline int
warpsPerBlock(int block_dim, int warp_size)
{
    return (block_dim + warp_size - 1) / warp_size;
}

/** Warp-level trace statistics, independent of any timing model. */
struct TraceStats
{
    uint64_t warpInstructions = 0;
    uint64_t threadInstructions = 0;
    /** Warp instructions by active-lane bucket: 1-8/9-16/17-24/25-32. */
    std::array<uint64_t, 4> occupancyBuckets{};
    /** Thread-level memory operations by Space. */
    std::array<uint64_t, 7> memOps{};

    /** Average active threads over all issued warp instructions. */
    double avgWarpOccupancy() const;
    /** Fraction of warp instructions in each occupancy bucket. */
    std::array<double, 4> occupancyFractions() const;
    /** Fraction of memory ops in each space. */
    std::array<double, 7> memOpFractions() const;
};

/** Compute trace statistics for a whole recording. */
TraceStats analyzeTrace(const KernelRecording &rec, int warp_size = 32);

/** Aggregate trace statistics over a launch sequence. */
TraceStats analyzeTrace(const struct LaunchSequence &seq,
                        int warp_size = 32);

} // namespace gpusim
} // namespace rodinia

#endif // RODINIA_GPUSIM_REPLAY_HH
