/**
 * @file
 * SIMT warp replay: merges per-lane traces into warp instructions.
 *
 * The replayer walks the 32 lanes of a warp in lockstep: at each
 * step it finds the minimum execution-order key among the lanes'
 * next events and issues one warp instruction covering exactly the
 * lanes sitting at that key. Divergent branches therefore split the
 * warp into serialized groups (smaller active masks), and lanes
 * reconverge as soon as their keys match again — the behavior of a
 * reconvergence-stack SIMT pipeline, including loop-level divergence
 * thanks to LoopIter's per-iteration keys.
 */

#ifndef RODINIA_GPUSIM_REPLAY_HH
#define RODINIA_GPUSIM_REPLAY_HH

#include <array>
#include <cstdint>

#include "gpusim/types.hh"

namespace rodinia {
namespace gpusim {

/** One warp-level instruction reconstructed from lane traces. */
struct WarpInst
{
    GOp op = GOp::IntAlu;
    Space space = Space::None;
    uint32_t activeMask = 0;
    uint32_t count = 1;  //!< serialized repeat count (batched ALU)
    uint32_t size = 0;   //!< per-lane access size for memory ops
    std::array<uint64_t, 32> addrs{}; //!< per-lane addresses (mem ops)

    int activeLanes() const { return __builtin_popcount(activeMask); }
};

/** Replays one warp of a recorded block as warp instructions. */
class WarpReplayer
{
  public:
    /**
     * @param block recorded block
     * @param warp_start first lane's thread index within the block
     * @param warp_size lanes per warp (threads beyond blockDim are
     *        simply absent)
     */
    WarpReplayer(const BlockRecord &block, int warp_start, int warp_size);

    /** Produce the next warp instruction; false when exhausted. */
    bool next(WarpInst &out);

    /** True once every lane's trace is exhausted. */
    bool done() const { return live == 0; }

  private:
    // Per-lane stream cursors plus a one-event decoded lookahead:
    // ev[l] always holds lane l's next undelivered event, decoded
    // once when the previous one was consumed. The min-key scan in
    // next() therefore reads plain structs exactly as the old
    // pointer-window formulation did — the delta decode happens once
    // per event, not once per scan — and walks only the set bits of
    // `live` (lanes with events left).
    std::array<LaneStream::Cursor, 32> cur{};
    std::array<GEvent, 32> ev{};
    uint32_t live = 0;
};

// Defined inline: this runs once per warp instruction inside the
// timing-simulation issue loop — the hottest call in the whole
// experiment pipeline — and inlining it there is worth several
// percent of end-to-end runtime.
inline bool
WarpReplayer::next(WarpInst &out)
{
    if (live == 0)
        return false;

    // Single fused scan: track the running-minimum key and gather the
    // matching lanes as we go; a lane with a strictly smaller key
    // restarts the gather (rare — warps mostly run in lockstep).
    // Lanes are scanned in ascending order, so the instruction's
    // op/space come from the lowest lane at the minimum key, exactly
    // as the two-pass find-then-gather formulation would produce.
    // Lanes whose key matches but whose op/space differ are neither
    // gathered nor advanced. A restart can leave stale addrs entries
    // for lanes outside the final activeMask; every consumer masks
    // addrs reads by activeMask, so those slots are dead.
    const GEvent *min_ev = nullptr;
    out.activeMask = 0;
    out.count = 1;
    for (uint32_t m = live; m; m &= m - 1) {
        int l = __builtin_ctz(m);
        const GEvent &e = ev[std::size_t(l)];
        if (!min_ev || e.key < min_ev->key) {
            min_ev = &e;
            out.op = e.op;
            out.space = e.space;
            out.size = e.size;
            out.activeMask = 0;
            out.count = 1;
        } else if (!(e.key == min_ev->key) || e.op != min_ev->op ||
                   e.space != min_ev->space) {
            continue;
        }
        out.activeMask |= 1u << l;
        out.addrs[std::size_t(l)] = e.addr;
        if (e.count > out.count)
            out.count = e.count;
    }

    // Consume the gathered lanes' events: decode each lane's next
    // event into its lookahead slot, dropping exhausted lanes.
    for (uint32_t m = out.activeMask; m; m &= m - 1) {
        int l = __builtin_ctz(m);
        if (!cur[std::size_t(l)].next(ev[std::size_t(l)]))
            live &= ~(1u << l);
    }
    return true;
}

/** Number of warps needed for a block of the given size. */
inline int
warpsPerBlock(int block_dim, int warp_size)
{
    return (block_dim + warp_size - 1) / warp_size;
}

/** Warp-level trace statistics, independent of any timing model. */
struct TraceStats
{
    uint64_t warpInstructions = 0;
    uint64_t threadInstructions = 0;
    /** Warp instructions by active-lane bucket: 1-8/9-16/17-24/25-32. */
    std::array<uint64_t, 4> occupancyBuckets{};
    /** Thread-level memory operations by Space. */
    std::array<uint64_t, 7> memOps{};

    /** Average active threads over all issued warp instructions. */
    double avgWarpOccupancy() const;
    /** Fraction of warp instructions in each occupancy bucket. */
    std::array<double, 4> occupancyFractions() const;
    /** Fraction of memory ops in each space. */
    std::array<double, 7> memOpFractions() const;
};

/** Compute trace statistics for a whole recording. */
TraceStats analyzeTrace(const KernelRecording &rec, int warp_size = 32);

/** Aggregate trace statistics over a launch sequence. */
TraceStats analyzeTrace(const struct LaunchSequence &seq,
                        int warp_size = 32);

} // namespace gpusim
} // namespace rodinia

#endif // RODINIA_GPUSIM_REPLAY_HH
