/**
 * @file
 * GPU timing-model configuration.
 *
 * The default configuration mirrors Table II of the paper (the
 * GPGPU-Sim setup): 28 SMs at 2 GHz, 32-wide SIMD, 1024 threads and
 * 8 CTAs per SM, 32 kB shared memory per SM with bank conflicts
 * modeled, 8 memory channels, and no L2. Presets are provided for
 * the 8-shader configuration (Fig. 1), the GTX 280, and the GTX 480
 * (Fermi) in both L1-bias and shared-bias modes (Fig. 5).
 */

#ifndef RODINIA_GPUSIM_SIMCONFIG_HH
#define RODINIA_GPUSIM_SIMCONFIG_HH

#include <cstdint>
#include <string>

namespace rodinia {
namespace gpusim {

/** All architectural parameters of the timing model. */
struct SimConfig
{
    // Core organization.
    int numSms = 28;
    int warpSize = 32;
    int simdWidth = 32;
    int maxThreadsPerSm = 1024;
    int maxCtasPerSm = 8;
    int regFileSize = 16384;  //!< registers per SM
    int regsPerThread = 16;   //!< estimated per-thread register demand

    // Shared memory.
    uint64_t sharedMemPerSm = 32 * 1024;
    bool bankConflictsEnabled = true;
    int sharedBanks = 16;

    // Clocks. The memory clock is the effective transfer rate (DDR
    // data rate), so channel bandwidth = dramBusBytes * memClockGhz.
    double coreClockGhz = 2.0;
    double memClockGhz = 2.0;

    /**
     * Integer instructions implicitly issued around every memory
     * instruction (address arithmetic, predicates). Kernel traces
     * record algorithmic work only; a real PTX stream carries this
     * overhead, which both raises committed IPC and spaces out
     * memory requests.
     */
    int addressAluPerMem = 4;

    // Memory system.
    int numChannels = 8;
    int dramBusBytes = 16;    //!< bytes per memory-clock beat
    int coalesceBytes = 64;   //!< memory transaction granularity
    int gmemLatencyCycles = 440;
    int launchOverheadCycles = 600;

    // Per-SM read-only caches (pre-Fermi GPUs have these). The
    // texture size folds the per-SM L1 tex cache and its share of
    // the per-partition L2 texture cache into one level.
    uint64_t texCacheBytes = 64 * 1024;
    uint64_t constCacheBytes = 8 * 1024;
    int texHitLatency = 18;
    int constHitLatency = 4;

    // Fermi-style data caches.
    bool l1Enabled = false;
    uint64_t l1Bytes = 16 * 1024;
    int l1LineBytes = 128;
    int l1HitLatency = 28;
    bool l2Enabled = false;
    uint64_t l2Bytes = 768 * 1024;
    int l2LineBytes = 128;
    int l2HitLatency = 130;

    /**
     * Runtime option, NOT an architectural parameter: how many
     * threads one timing simulation may spread its SMs over.
     * 0 = the process default (defaultSimThreads()), 1 = the serial
     * reference engine, >= 2 = the epoch-synchronized parallel
     * engine. Parallelism never changes simulation output — the
     * parallel engine is bit-identical to serial by construction and
     * by test — so this field is deliberately excluded from
     * fingerprint(): the same store entry serves every thread count.
     */
    int simThreads = 0;

    /**
     * Fail fast (fatal) on geometry that would make the timing model
     * simulate nonsense: zero/negative shader, channel, warp or bank
     * counts, non-power-of-two line and transaction sizes, non-
     * positive clocks, or a Fermi configuration whose L1 + shared
     * split does not add up to the 64 kB configurable SM memory.
     */
    void validate() const;

    /**
     * The same geometry rules as validate(), reported instead of
     * enforced: returns "" for a sound configuration, or the first
     * violation's message. This is the boundary check for untrusted
     * configs (the experiment service rejects the request instead of
     * aborting the daemon); validate() remains the in-process
     * contract for code paths that constructed the config themselves.
     */
    std::string check() const;

    /**
     * Canonical, stable serialization of every field. Two configs
     * produce equal fingerprints iff every architectural parameter
     * is equal, so the fingerprint keys memoized and store-cached
     * simulation results (see driver::Context::gpuStats).
     */
    std::string fingerprint() const;

    /** Issue cycles per warp instruction (warpSize / simdWidth). */
    int
    warpIssueCycles() const
    {
        return warpSize / (simdWidth > 0 ? simdWidth : 1);
    }

    /**
     * Core cycles one memory channel is busy serving one coalesced
     * transaction of coalesceBytes.
     */
    int
    channelServiceCycles() const
    {
        double mem_cycles = double(coalesceBytes) / double(dramBusBytes);
        double core_per_mem = coreClockGhz / memClockGhz;
        int c = int(mem_cycles * core_per_mem + 0.5);
        return c > 0 ? c : 1;
    }

    /**
     * The thread count simThreads == 0 resolves to; starts at the
     * RODINIA_SIM_THREADS environment value if set, else 1 (serial).
     * The experiments CLI raises it via --sim-threads.
     */
    static int defaultSimThreads();

    /** Set the process default (clamped to [1, 256]). */
    static void setDefaultSimThreads(int n);

    /**
     * The thread count a simulation with this config actually uses:
     * simThreads, resolved through the process default, clamped to
     * [1, 256], and forced to 1 when RODINIA_SIM_SERIAL=1 (the
     * determinism-oracle escape hatch).
     */
    int effectiveSimThreads() const;

    /** Table II defaults (the paper's GPGPU-Sim configuration). */
    static SimConfig gpgpusimDefault();

    /** Same as the default but with a different shader count. */
    static SimConfig shaders(int num_sms);

    /** GTX 280-like: 30 SMs, 1.3 GHz SPs, no L1/L2 data caches. */
    static SimConfig gtx280();

    /**
     * GTX 480 (Fermi)-like: 15 SMs, 1.4 GHz SPs, unified 768 kB L2,
     * and a 64 kB configurable SM memory split.
     *
     * @param l1_bias true = 48 kB L1 + 16 kB shared;
     *                false = 16 kB L1 + 48 kB shared (default bias)
     */
    static SimConfig gtx480(bool l1_bias);
};

} // namespace gpusim
} // namespace rodinia

#endif // RODINIA_GPUSIM_SIMCONFIG_HH
