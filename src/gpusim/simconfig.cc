#include "gpusim/simconfig.hh"

#include <atomic>
#include <cstdlib>
#include <sstream>

#include "support/logging.hh"

namespace rodinia {
namespace gpusim {

namespace {

bool
isPow2(uint64_t v)
{
    return v && (v & (v - 1)) == 0;
}

} // namespace

std::string
SimConfig::check() const
{
    auto msg = [](auto &&...parts) {
        return detail::concatMessage(
            std::forward<decltype(parts)>(parts)...);
    };
    if (numSms <= 0)
        return msg("SimConfig: numSms (", numSms,
                   ") must be positive");
    if (warpSize <= 0 || warpSize > 32)
        return msg("SimConfig: warpSize (", warpSize,
                   ") must be in [1, 32] (the replayer models 32 "
                   "lanes)");
    if (simdWidth <= 0)
        return msg("SimConfig: simdWidth (", simdWidth,
                   ") must be positive");
    if (warpSize % simdWidth != 0)
        return msg("SimConfig: warpSize (", warpSize,
                   ") must be a multiple of simdWidth (", simdWidth,
                   ") for a whole number of issue cycles");
    if (maxThreadsPerSm <= 0 || maxCtasPerSm <= 0)
        return msg("SimConfig: maxThreadsPerSm (", maxThreadsPerSm,
                   ") and maxCtasPerSm (", maxCtasPerSm,
                   ") must be positive");
    if (regFileSize <= 0 || regsPerThread <= 0)
        return msg("SimConfig: regFileSize (", regFileSize,
                   ") and regsPerThread (", regsPerThread,
                   ") must be positive");
    if (sharedBanks <= 0)
        return msg("SimConfig: sharedBanks (", sharedBanks,
                   ") must be positive (bank index is addr mod "
                   "banks)");
    if (coreClockGhz <= 0.0 || memClockGhz <= 0.0)
        return msg("SimConfig: clocks (core ", coreClockGhz,
                   " GHz, mem ", memClockGhz, " GHz) must be "
                   "positive");
    if (addressAluPerMem < 0)
        return msg("SimConfig: addressAluPerMem (", addressAluPerMem,
                   ") must be non-negative");
    if (numChannels <= 0)
        return msg("SimConfig: numChannels (", numChannels,
                   ") must be positive (channel index is addr mod "
                   "channels)");
    if (dramBusBytes <= 0)
        return msg("SimConfig: dramBusBytes (", dramBusBytes,
                   ") must be positive");
    if (!isPow2(uint64_t(coalesceBytes)))
        return msg("SimConfig: coalesceBytes (", coalesceBytes,
                   ") must be a power of two (transaction "
                   "segmentation)");
    if (gmemLatencyCycles < 0 || launchOverheadCycles < 0)
        return msg("SimConfig: latencies must be non-negative");
    if (texCacheBytes == 0 || constCacheBytes == 0)
        return msg("SimConfig: texture and constant caches must "
                   "have non-zero capacity (every SM instantiates "
                   "them)");
    if (l1Enabled && !isPow2(uint64_t(l1LineBytes)))
        return msg("SimConfig: l1LineBytes (", l1LineBytes,
                   ") must be a power of two");
    if (l2Enabled && !isPow2(uint64_t(l2LineBytes)))
        return msg("SimConfig: l2LineBytes (", l2LineBytes,
                   ") must be a power of two");
    if (l1Enabled && l1Bytes + sharedMemPerSm != 64 * 1024)
        return msg("SimConfig: inconsistent Fermi split — l1Bytes (",
                   l1Bytes, ") + sharedMemPerSm (", sharedMemPerSm,
                   ") must equal the 64 kB configurable SM memory");
    if (l2Enabled && l2Bytes == 0)
        return msg("SimConfig: l2Enabled with zero l2Bytes");
    if (simThreads < 0)
        return msg("SimConfig: simThreads (", simThreads,
                   ") must be non-negative (0 = process default)");
    return "";
}

namespace {

int
clampThreads(int n)
{
    return n < 1 ? 1 : (n > 256 ? 256 : n);
}

std::atomic<int> &
defaultSimThreadsSlot()
{
    static std::atomic<int> slot = [] {
        const char *env = std::getenv("RODINIA_SIM_THREADS");
        int n = env && *env ? std::atoi(env) : 1;
        return clampThreads(n);
    }();
    return slot;
}

} // namespace

int
SimConfig::defaultSimThreads()
{
    return defaultSimThreadsSlot().load(std::memory_order_relaxed);
}

void
SimConfig::setDefaultSimThreads(int n)
{
    defaultSimThreadsSlot().store(clampThreads(n),
                                  std::memory_order_relaxed);
}

int
SimConfig::effectiveSimThreads() const
{
    static const bool forceSerial = [] {
        const char *env = std::getenv("RODINIA_SIM_SERIAL");
        return env && *env && *env != '0';
    }();
    if (forceSerial)
        return 1;
    return clampThreads(simThreads == 0 ? defaultSimThreads()
                                        : simThreads);
}

void
SimConfig::validate() const
{
    if (std::string err = check(); !err.empty())
        fatal(err);
}

std::string
SimConfig::fingerprint() const
{
    // Stable key=value list covering EVERY architectural field; ints
    // and bools print exactly, clocks are scaled to integral MHz
    // (every preset and sweep uses whole MHz) so no float formatting
    // is involved. simThreads is a runtime option, not architecture:
    // the parallel engine is bit-identical to serial, so including it
    // would only split the store key space for equal results.
    std::ostringstream os;
    os << "sms=" << numSms << ";warp=" << warpSize
       << ";simd=" << simdWidth << ";thr=" << maxThreadsPerSm
       << ";ctas=" << maxCtasPerSm << ";regs=" << regFileSize
       << ";rpt=" << regsPerThread << ";smem=" << sharedMemPerSm
       << ";bank=" << (bankConflictsEnabled ? 1 : 0)
       << ";banks=" << sharedBanks
       << ";core=" << int64_t(coreClockGhz * 1000.0 + 0.5)
       << ";mem=" << int64_t(memClockGhz * 1000.0 + 0.5)
       << ";alu=" << addressAluPerMem << ";ch=" << numChannels
       << ";bus=" << dramBusBytes << ";coal=" << coalesceBytes
       << ";glat=" << gmemLatencyCycles
       << ";launch=" << launchOverheadCycles
       << ";tex=" << texCacheBytes << ";cst=" << constCacheBytes
       << ";texlat=" << texHitLatency << ";cstlat=" << constHitLatency
       << ";l1=" << (l1Enabled ? 1 : 0) << ";l1b=" << l1Bytes
       << ";l1line=" << l1LineBytes << ";l1lat=" << l1HitLatency
       << ";l2=" << (l2Enabled ? 1 : 0) << ";l2b=" << l2Bytes
       << ";l2line=" << l2LineBytes << ";l2lat=" << l2HitLatency;
    return os.str();
}

SimConfig
SimConfig::gpgpusimDefault()
{
    return SimConfig{};
}

SimConfig
SimConfig::shaders(int num_sms)
{
    SimConfig cfg;
    cfg.numSms = num_sms;
    return cfg;
}

SimConfig
SimConfig::gtx280()
{
    SimConfig cfg;
    cfg.numSms = 30;
    cfg.coreClockGhz = 1.3;
    cfg.memClockGhz = 2.2;
    cfg.sharedMemPerSm = 16 * 1024;
    cfg.numChannels = 8;
    cfg.l1Enabled = false;
    cfg.l2Enabled = false;
    return cfg;
}

SimConfig
SimConfig::gtx480(bool l1_bias)
{
    SimConfig cfg;
    cfg.numSms = 15;
    cfg.coreClockGhz = 1.4;
    cfg.memClockGhz = 3.6;
    cfg.maxThreadsPerSm = 1536;
    cfg.regFileSize = 32768;
    cfg.numChannels = 6;
    cfg.l1Enabled = true;
    cfg.l2Enabled = true;
    cfg.l2Bytes = 768 * 1024;
    if (l1_bias) {
        cfg.l1Bytes = 48 * 1024;
        cfg.sharedMemPerSm = 16 * 1024;
    } else {
        cfg.l1Bytes = 16 * 1024;
        cfg.sharedMemPerSm = 48 * 1024;
    }
    return cfg;
}

} // namespace gpusim
} // namespace rodinia
