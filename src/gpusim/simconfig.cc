#include "gpusim/simconfig.hh"

namespace rodinia {
namespace gpusim {

SimConfig
SimConfig::gpgpusimDefault()
{
    return SimConfig{};
}

SimConfig
SimConfig::shaders(int num_sms)
{
    SimConfig cfg;
    cfg.numSms = num_sms;
    return cfg;
}

SimConfig
SimConfig::gtx280()
{
    SimConfig cfg;
    cfg.numSms = 30;
    cfg.coreClockGhz = 1.3;
    cfg.memClockGhz = 2.2;
    cfg.sharedMemPerSm = 16 * 1024;
    cfg.numChannels = 8;
    cfg.l1Enabled = false;
    cfg.l2Enabled = false;
    return cfg;
}

SimConfig
SimConfig::gtx480(bool l1_bias)
{
    SimConfig cfg;
    cfg.numSms = 15;
    cfg.coreClockGhz = 1.4;
    cfg.memClockGhz = 3.6;
    cfg.maxThreadsPerSm = 1536;
    cfg.regFileSize = 32768;
    cfg.numChannels = 6;
    cfg.l1Enabled = true;
    cfg.l2Enabled = true;
    cfg.l2Bytes = 768 * 1024;
    if (l1_bias) {
        cfg.l1Bytes = 48 * 1024;
        cfg.sharedMemPerSm = 16 * 1024;
    } else {
        cfg.l1Bytes = 16 * 1024;
        cfg.sharedMemPerSm = 48 * 1024;
    }
    return cfg;
}

} // namespace gpusim
} // namespace rodinia
