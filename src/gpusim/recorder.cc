#include "gpusim/recorder.hh"

#include <ucontext.h>

#include <cstdint>
#include <memory>

#include "support/logging.hh"

namespace rodinia {
namespace gpusim {

namespace {

constexpr size_t fiberStackBytes = 128 * 1024;
constexpr uint64_t sharedBase = 0x10000;
/**
 * Runaway-kernel guard. Sized for the streamed LaneStream encoding
 * (~3-5 B/event, so a maximal launch is ~1-1.5 GB): paper-scale
 * kmeans records ~90 M thread events in one launch and must fit.
 * Before streaming this was 80 M — the materialized 32 B GEvent
 * vectors made anything larger unaffordable.
 */
constexpr uint64_t maxEventsPerLaunch = 320ULL * 1000 * 1000;

/**
 * Recycles fiber stacks across the blocks of one launch. Blocks run
 * sequentially, so at most blockDim stacks are live at once; without
 * the pool every block re-allocates (and re-faults) blockDim x 128 KB
 * of stack, which dominates recording time for launches with many
 * blocks.
 */
class StackPool
{
  public:
    std::unique_ptr<char[]>
    get()
    {
        if (!free.empty()) {
            auto s = std::move(free.back());
            free.pop_back();
            return s;
        }
        return std::make_unique<char[]>(fiberStackBytes);
    }

    void
    put(std::unique_ptr<char[]> s)
    {
        free.push_back(std::move(s));
    }

  private:
    std::vector<std::unique_ptr<char[]>> free;
};

} // namespace

/**
 * Executes the threads of one block as fibers, giving real barrier
 * and shared-memory semantics while recording per-lane traces.
 */
class BlockRunner
{
  public:
    BlockRunner(const LaunchConfig &launch, const Kernel &kernel,
                int block_idx, StackPool &stacks)
        : launch(launch), kernel(kernel), blockIdx(block_idx),
          stacks(stacks)
    {
    }

    BlockRecord run();

    /** Fiber-yielding barrier, called from KernelCtx::sync(). */
    void
    barrier(int tid)
    {
        fibers[tid].atBarrier = true;
        swapcontext(&fibers[tid].ctx, &schedCtx);
    }

    /**
     * Order-stable per-block shared-memory allocator: every thread
     * performs the same allocation sequence; the first performer
     * creates the buffer, later threads attach by cursor.
     */
    void *
    sharedAlloc(size_t &cursor, size_t bytes, size_t align,
                uint64_t &base_addr)
    {
        if (cursor == allocs.size()) {
            SharedAllocation a;
            uint64_t aligned = (sharedTop + align - 1) / align * align;
            a.base = aligned;
            a.buf.assign(bytes, std::byte{0});
            sharedTop = aligned + bytes;
            allocs.push_back(std::move(a));
        }
        SharedAllocation &a = allocs[cursor];
        if (a.buf.size() != bytes)
            fatal("shared allocation sequence diverged across threads "
                  "(block ", blockIdx, ", alloc #", cursor, ")");
        base_addr = a.base;
        ++cursor;
        return a.buf.data();
    }

    uint64_t eventBudgetUsed = 0;

  private:
    struct Fiber
    {
        ucontext_t ctx;
        std::unique_ptr<char[]> stack;
        bool done = false;
        bool atBarrier = false;
    };

    struct SharedAllocation
    {
        std::vector<std::byte> buf;
        uint64_t base = 0;
    };

    static void trampoline(unsigned hi, unsigned lo);

    void
    runThreadBody()
    {
        kernel(*ctxs[currentThread]);
        fibers[currentThread].done = true;
    }

    LaunchConfig launch;
    const Kernel &kernel;
    int blockIdx;
    StackPool &stacks;

    ucontext_t schedCtx;
    std::vector<Fiber> fibers;
    std::vector<std::unique_ptr<KernelCtx>> ctxs;
    int currentThread = 0;

    std::vector<SharedAllocation> allocs;
    uint64_t sharedTop = sharedBase;
};

void
BlockRunner::trampoline(unsigned hi, unsigned lo)
{
    auto *self = reinterpret_cast<BlockRunner *>(
        (uint64_t(hi) << 32) | uint64_t(lo));
    self->runThreadBody();
    // Returning lets ucontext follow uc_link back to the scheduler.
}

BlockRecord
BlockRunner::run()
{
    const int n = launch.blockDim;
    fibers.resize(n);
    ctxs.clear();
    for (int t = 0; t < n; ++t)
        ctxs.push_back(
            std::make_unique<KernelCtx>(this, t, blockIdx, launch));

    uint64_t self_bits = uint64_t(uintptr_t(this));
    for (int t = 0; t < n; ++t) {
        Fiber &f = fibers[t];
        f.stack = stacks.get();
        if (getcontext(&f.ctx) != 0)
            panic("getcontext failed");
        f.ctx.uc_stack.ss_sp = f.stack.get();
        f.ctx.uc_stack.ss_size = fiberStackBytes;
        f.ctx.uc_link = &schedCtx;
        makecontext(&f.ctx, reinterpret_cast<void (*)()>(trampoline), 2,
                    unsigned(self_bits >> 32), unsigned(self_bits));
    }

    // Scheduler: run every live, unblocked fiber in thread order;
    // when all live fibers sit at the barrier, release them together.
    while (true) {
        bool all_done = true;
        for (int t = 0; t < n; ++t) {
            Fiber &f = fibers[t];
            if (f.done || f.atBarrier) {
                all_done = all_done && f.done;
                continue;
            }
            currentThread = t;
            swapcontext(&schedCtx, &f.ctx);
            all_done = all_done && f.done;
        }
        if (all_done)
            break;
        // Every fiber is now done or at a barrier: release the phase.
        for (int t = 0; t < n; ++t)
            fibers[t].atBarrier = false;
    }

    BlockRecord rec;
    rec.blockDim = n;
    rec.sharedBytes = sharedTop - sharedBase;
    rec.lanes.reserve(n);
    for (int t = 0; t < n; ++t) {
        ctxs[t]->flushPending();
        eventBudgetUsed += ctxs[t]->events.size();
        rec.lanes.push_back(std::move(ctxs[t]->events));
        stacks.put(std::move(fibers[t].stack));
    }
    return rec;
}

KernelCtx::KernelCtx(BlockRunner *runner, int tid, int block_idx,
                     const LaunchConfig &launch)
    : runner(runner), threadId(tid), blockId(block_idx), cfg(launch)
{
}

OrderKey
KernelCtx::currentKey(uint16_t event_pc) const
{
    OrderKey k = keyBase;
    if (pcInHi)
        k.hi |= uint64_t(event_pc) << pcShift;
    else
        k.lo |= uint64_t(event_pc) << pcShift;
    return k;
}

void
KernelCtx::recomputeKeyBase()
{
    uint16_t f[8] = {0, 0, 0, 0, 0, 0, 0, 0};
    int levels = loopDepth < 3 ? loopDepth : 3;
    for (int i = 0; i < levels; ++i) {
        f[2 * i] = uint16_t(loopStack[i] >> 16);
        f[2 * i + 1] = uint16_t(loopStack[i]);
    }
    keyBase.hi = (uint64_t(f[0]) << 48) | (uint64_t(f[1]) << 32) |
                 (uint64_t(f[2]) << 16) | uint64_t(f[3]);
    keyBase.lo = (uint64_t(f[4]) << 48) | (uint64_t(f[5]) << 32) |
                 (uint64_t(f[6]) << 16) | uint64_t(f[7]);
    // The event PC occupies slot 2*levels of the same layout.
    int slot = 2 * levels;
    pcInHi = slot < 4;
    pcShift = 48 - 16 * (slot & 3);
}

void
KernelCtx::pushLoop(uint16_t pc, uint32_t iter)
{
    if (loopDepth >= 8)
        fatal("LoopIter nesting deeper than 8");
    uint32_t it = iter + 1;
    if (it > 0xffff)
        it = 0xffff;
    loopStack[loopDepth++] = (uint32_t(pc) << 16) | it;
    recomputeKeyBase();
}

void
KernelCtx::popLoop()
{
    if (loopDepth <= 0)
        panic("LoopIter pop without push");
    --loopDepth;
    recomputeKeyBase();
}

void
KernelCtx::record(GOp op, Space space, uint64_t addr, uint32_t size,
                  const std::source_location &loc, uint32_t count)
{
    OrderKey key = currentKey(packPc(loc));
    if ((op == GOp::IntAlu || op == GOp::FpAlu) && hasPending &&
        pending.op == op && pending.key == key &&
        uint64_t(pending.count) + count <= 0xffffffffu) {
        // Merge only while the 32-bit repeat counter has room; a
        // kernel issuing >4G ALU ops at one site spills into a
        // fresh event instead of silently wrapping. The last event
        // lives in `pending` (not yet committed to the append-only
        // stream) precisely so this merge can mutate it.
        pending.count += count;
        return;
    }
    if (runner->eventBudgetUsed + events.size() + (hasPending ? 1 : 0) >
        maxEventsPerLaunch)
        fatal("kernel trace exceeds ", maxEventsPerLaunch,
              " events; reduce the problem size");
    flushPending();
    pending.key = key;
    pending.addr = addr;
    pending.size = size;
    pending.count = count;
    pending.op = op;
    pending.space = space;
    hasPending = true;
}

void
KernelCtx::sync(std::source_location loc)
{
    record(GOp::Sync, Space::None, 0, 0, loc);
    runner->barrier(threadId);
}

void *
KernelCtx::sharedAlloc(size_t bytes, size_t align, uint64_t &base_addr)
{
    return runner->sharedAlloc(sharedCursor, bytes, align, base_addr);
}

KernelRecording
recordKernel(const LaunchConfig &launch, const Kernel &kernel)
{
    if (launch.gridDim < 1 || launch.blockDim < 1)
        fatal("recordKernel: invalid launch geometry");

    KernelRecording rec;
    rec.launch = launch;
    rec.blocks.reserve(launch.gridDim);
    StackPool stacks;
    uint64_t budget = 0;
    for (int b = 0; b < launch.gridDim; ++b) {
        BlockRunner runner(launch, kernel, b, stacks);
        runner.eventBudgetUsed = budget;
        rec.blocks.push_back(runner.run());
        budget = runner.eventBudgetUsed;
    }
    return rec;
}

uint64_t
KernelRecording::threadInstructions() const
{
    uint64_t n = 0;
    for (const auto &block : blocks)
        for (const auto &lane : block.lanes)
            lane.forEach([&](const GEvent &e) {
                n += e.op == GOp::Sync ? 1 : e.count;
            });
    return n;
}

std::vector<uint64_t>
KernelRecording::memOpsBySpace() const
{
    std::vector<uint64_t> out(size_t(Space::Local) + 1, 0);
    for (const auto &block : blocks) {
        for (const auto &lane : block.lanes) {
            lane.forEach([&](const GEvent &e) {
                if (e.op == GOp::Load || e.op == GOp::Store)
                    out[size_t(e.space)] += 1;
            });
        }
    }
    return out;
}

uint64_t
LaunchSequence::threadInstructions() const
{
    uint64_t n = 0;
    for (const auto &l : launches)
        n += l.threadInstructions();
    return n;
}

std::vector<uint64_t>
LaunchSequence::memOpsBySpace() const
{
    std::vector<uint64_t> out(size_t(Space::Local) + 1, 0);
    for (const auto &l : launches) {
        auto v = l.memOpsBySpace();
        for (size_t i = 0; i < out.size(); ++i)
            out[i] += v[i];
    }
    return out;
}

namespace {

/**
 * splitmix64-style word mixer. Recordings run to tens of millions of
 * events, and byte-at-a-time FNV-1a over them costs seconds per
 * process; this absorbs a 64-bit word in a handful of ALU ops while
 * still diffusing every input bit across the state. Deterministic
 * and platform-independent, which is all the store key needs.
 */
inline uint64_t
mixWord(uint64_t h, uint64_t v)
{
    uint64_t x = h + 0x9e3779b97f4a7c15ull + v;
    x ^= x >> 30;
    x *= 0xbf58476d1ce4e5b9ull;
    x ^= x >> 27;
    x *= 0x94d049bb133111ebull;
    x ^= x >> 31;
    return x;
}

} // namespace

uint64_t
contentHash(const KernelRecording &rec)
{
    uint64_t h = 0x6a09e667f3bcc908ull; // arbitrary fixed seed
    h = mixWord(h, uint64_t(rec.launch.gridDim));
    h = mixWord(h, uint64_t(rec.launch.blockDim));
    h = mixWord(h, uint64_t(rec.blocks.size()));
    for (const auto &block : rec.blocks) {
        h = mixWord(h, uint64_t(block.blockDim));
        h = mixWord(h, block.sharedBytes);
        h = mixWord(h, uint64_t(block.lanes.size()));
        for (const auto &lane : block.lanes) {
            h = mixWord(h, uint64_t(lane.size()));
            lane.forEach([&](const GEvent &e) {
                // Field-by-field over the decoded event (a GEvent
                // has padding bytes whose contents are unspecified),
                // so the digest is a pure function of the logical
                // trace and identical across the compact and oracle
                // representations — store keys must not depend on
                // how the trace is stored. Two mix rounds per event,
                // not five: each field is premixed with a distinct
                // odd multiplier so contributions cannot cancel by
                // simple XOR alignment, and the full avalanche runs
                // on the combined words. This loop hashes tens of
                // millions of events per run, so the round count is
                // what the recording phase pays.
                uint64_t w1 =
                    e.key.hi * 0x9e3779b97f4a7c15ull + e.key.lo;
                uint64_t w2 =
                    e.addr +
                    ((uint64_t(e.size) << 32) |
                     (uint64_t(e.count) & 0xffffffffu)) *
                        0xc2b2ae3d27d4eb4full +
                    ((uint64_t(uint8_t(e.op)) << 8) |
                     uint64_t(uint8_t(e.space))) *
                        0xff51afd7ed558ccdull;
                h = mixWord(mixWord(h, w1), w2);
            });
        }
    }
    return h;
}

uint64_t
contentHash(const LaunchSequence &seq)
{
    uint64_t h = mixWord(0x6a09e667f3bcc908ull,
                         uint64_t(seq.launches.size()));
    for (const auto &rec : seq.launches)
        h = mixWord(h, contentHash(rec));
    return h;
}

const char *
spaceName(Space s)
{
    switch (s) {
      case Space::Global:
        return "global";
      case Space::Shared:
        return "shared";
      case Space::Const:
        return "const";
      case Space::Tex:
        return "tex";
      case Space::Param:
        return "param";
      case Space::Local:
        return "local";
      default:
        return "none";
    }
}

} // namespace gpusim
} // namespace rodinia
