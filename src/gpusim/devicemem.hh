/**
 * @file
 * Canonical device address space for recorded kernel traces.
 *
 * Kernels record the real host addresses of the std::vector buffers
 * that stand in for device memory, so a raw trace depends on the
 * process's heap layout: the same workload recorded in a different
 * binary (or after different prior allocations) yields different
 * coalescing, cache-set and channel behavior. Real CUDA does not
 * have this problem because cudaMalloc hands out addresses from a
 * private device address space.
 *
 * DeviceSpace reproduces that: a workload's runGpu registers every
 * traced buffer (the cudaMalloc analog), and rewrite() relocates all
 * recorded addresses onto canonical, 256-byte-aligned bases assigned
 * in registration order — matching cudaMalloc's 256-byte alignment
 * guarantee. Offsets within a buffer are preserved exactly, so
 * coalescing and cache behavior are those of the canonical layout,
 * identical across processes, threads, and allocation histories.
 *
 * Addresses outside every registered buffer (stack scalars passed by
 * pointer, forgotten registrations) are remapped page-wise on first
 * touch in deterministic trace order, preserving page offsets.
 * Shared-memory addresses are already virtual (the recorder's
 * bump allocator) and are left untouched.
 */

#ifndef RODINIA_GPUSIM_DEVICEMEM_HH
#define RODINIA_GPUSIM_DEVICEMEM_HH

#include <cstddef>
#include <cstdint>
#include <vector>

#include "gpusim/recorder.hh"

namespace rodinia {
namespace gpusim {

class DeviceSpace
{
  public:
    /** Canonical base of the first registered buffer. */
    static constexpr uint64_t kDeviceBase = uint64_t(1) << 32;
    /** cudaMalloc alignment guarantee. */
    static constexpr uint64_t kAlign = 256;
    /** Fallback region for addresses in no registered buffer. */
    static constexpr uint64_t kHostBase = uint64_t(1) << 40;

    /**
     * Register a host buffer as a device allocation. Buffers must be
     * live (distinct addresses) at registration time; overlapping
     * registrations are fatal.
     */
    void add(const void *p, size_t bytes);

    /** Register a whole vector's storage. */
    template <typename T>
    void
    add(const std::vector<T> &v)
    {
        if (!v.empty())
            add(v.data(), v.size() * sizeof(T));
    }

    /**
     * Rewrite every recorded global/const/tex/param/local address
     * into the canonical space. Call once, after the last
     * recordKernel of the sequence and before the buffers die.
     */
    void rewrite(LaunchSequence &seq) const;

  private:
    struct Buffer
    {
        uint64_t base = 0;      //!< real host address
        uint64_t bytes = 0;
        uint64_t canonical = 0; //!< assigned device address
    };

    std::vector<Buffer> buffers; //!< sorted by real base
    uint64_t top = kDeviceBase;  //!< next canonical base
};

} // namespace gpusim
} // namespace rodinia

#endif // RODINIA_GPUSIM_DEVICEMEM_HH
