/**
 * @file
 * Wire protocol of the experiment service.
 *
 * The daemon and its clients exchange *line-delimited JSON*: every
 * request and every response is one JSON object on one '\n'-
 * terminated line, so a connection is a full-duplex stream of
 * independently parseable messages and a reader never needs more
 * state than "bytes up to the next newline". Requests carry a
 * client-chosen id echoed on every response, which is what lets one
 * connection keep many requests in flight and match streamed
 * responses back to them.
 *
 * Request grammar (one object per line; keys are whitelisted per op,
 * so a typoed key — or a key misplaced from another op, like "scale"
 * on a figure request — is rejected instead of silently running
 * defaults):
 *
 *   {"op":"ping"}
 *   {"op":"hello","id":REQ,"weight":N}
 *   {"op":"figure","id":REQ,"figure":"fig1"[,"deadline_ms":N]}
 *   {"op":"sim","id":REQ,"workload":"bfs"[,"scale":"tiny|small|full|paper"]
 *       [,"version":N][,"config":{SimConfig fields...}]
 *       [,"deadline_ms":N]}
 *   {"op":"batch","id":REQ,"workload":"bfs"[,"scale":S][,"version":N],
 *       "sweep":[{SimConfig fields...},...][,"deadline_ms":N]}
 *   {"op":"stats","id":REQ}
 *   {"op":"cancel","id":REQ,"target":REQ2}
 *
 * "hello" declares the connection's weighted-fair-queueing weight
 * (clamped to the server's --max-weight); it is acknowledged with a
 * "done" on lane "hello". "batch" carries a whole SimConfig sweep —
 * at most kMaxBatchPoints points, every point a valid config — and
 * is admission-controlled as ONE unit (one queue slot, one in-flight
 * quota unit).
 *
 * Response grammar (the "type" key discriminates):
 *
 *   {"id":REQ,"type":"accepted","lane":"warm|cold"}
 *   {"id":REQ,"type":"rejected","reason":"overload|quota|bad-request",
 *       "detail":"..."}
 *   {"id":REQ,"type":"chunk","seq":N,"data":"..."}      (payload part)
 *   {"id":REQ,"type":"point","index":I,"status":"served","bytes":N,
 *       "coalesced":0|1}
 *   {"id":REQ,"type":"point","index":I,"status":"error",
 *       "class":"...","message":"..."}
 *   {"id":REQ,"type":"done","lane":L,"chunks":N,"bytes":N,
 *       "wall_us":N,"coalesced":0|1}
 *   {"id":REQ,"type":"error","class":"deadline|cancelled|...",
 *       "message":"..."}
 *   {"id":REQ,"type":"stats","data":"<metrics JSON, escaped>"}
 *   {"type":"pong"}
 *
 * Payloads (figure text, serialized KernelStats) are streamed as
 * numbered "chunk" responses followed by one "done"; concatenating
 * the chunks in seq order reproduces the payload byte-exactly, which
 * is what the golden-corpus smoke test pins. A batch streams one
 * served-"point" header per sweep point followed by that point's
 * chunks (seq numbering continues across points; chunks between two
 * point headers belong to the earlier point), or an error-"point"
 * line with no chunks; "done" still terminates the request.
 * "coalesced" marks a response whose simulation was deduplicated
 * onto another in-flight request's execution (single flight) — the
 * payload bytes are identical to the leader's.
 *
 * Robustness contract (the fuzz tests pin it): a malformed,
 * oversized, or semantically invalid request never terminates the
 * daemon or the connection — it earns a "rejected" response (with
 * id "" when no id could be recovered) and the stream stays usable.
 * Client-supplied SimConfig fields are range-clamped and then
 * checked with SimConfig::check(), so a config the timing model
 * would refuse is a per-request rejection, not a daemon abort.
 */

#ifndef RODINIA_SERVICE_PROTOCOL_HH
#define RODINIA_SERVICE_PROTOCOL_HH

#include <cstdint>
#include <map>
#include <memory>
#include <string>
#include <string_view>
#include <vector>

#include "core/workload.hh"
#include "gpusim/simconfig.hh"

namespace rodinia {
namespace service {

/** Hard cap on one request line (newline included). Longer lines
 *  are rejected without buffering the excess. */
constexpr size_t kMaxRequestBytes = 64 * 1024;

/** Payload bytes per "chunk" response (before JSON escaping). */
constexpr size_t kChunkBytes = 16 * 1024;

/** Hard cap on sweep points in one batch request. Bounds both the
 *  decoded request's memory and the work one admission slot can
 *  represent. */
constexpr size_t kMaxBatchPoints = 128;

/** Hard cap on a hello weight before the server's own policy clamp
 *  (AdmissionPolicy::maxWeight) is applied. */
constexpr uint32_t kMaxHelloWeight = 4096;

// ---------------------------------------------------------------
// Minimal JSON tree (parse side of the protocol).
// ---------------------------------------------------------------

/**
 * Immutable JSON value. Covers exactly what the protocol needs —
 * null, bool, double-precision numbers, strings (with full escape
 * and BMP \uXXXX decoding), objects, arrays — with depth and size
 * limits so hostile input cannot recurse or balloon the parser.
 */
class Json
{
  public:
    enum class Type { Null, Bool, Number, String, Object, Array };

    Json() = default;

    Type type() const { return ty; }
    bool isObject() const { return ty == Type::Object; }
    bool isString() const { return ty == Type::String; }
    bool isNumber() const { return ty == Type::Number; }
    bool isBool() const { return ty == Type::Bool; }

    bool boolean() const { return b; }
    double number() const { return num; }
    const std::string &string() const { return str; }
    const std::vector<std::pair<std::string, Json>> &members() const
    {
        return obj;
    }
    const std::vector<Json> &elements() const { return arr; }

    /** Member lookup (objects only); nullptr when absent. */
    const Json *get(std::string_view key) const;

    /**
     * Parse one complete JSON document. Trailing non-whitespace,
     * nesting beyond a small depth cap, or any syntax error fails
     * with a position-carrying message in @p error.
     */
    static bool parse(std::string_view text, Json &out,
                      std::string &error);

  private:
    Type ty = Type::Null;
    bool b = false;
    double num = 0.0;
    std::string str;
    std::vector<std::pair<std::string, Json>> obj;
    std::vector<Json> arr;

    friend class JsonParser;
};

// ---------------------------------------------------------------
// Requests.
// ---------------------------------------------------------------

enum class Op { Ping, Figure, Sim, Stats, Cancel, Batch, Hello };

/** One decoded request line. */
struct Request
{
    Op op = Op::Ping;
    std::string id;       //!< client request id ("" only for ping)
    std::string figure;   //!< Op::Figure: figure id, e.g. "fig1"
    std::string workload; //!< Op::Sim/Batch: registry name
    core::Scale scale = core::Scale::Full;
    int version = 0;      //!< Op::Sim/Batch: kernel version (0 = shipped)
    gpusim::SimConfig config; //!< Op::Sim: decoded + clamped config
    std::vector<gpusim::SimConfig> sweep; //!< Op::Batch: sweep points
    double deadlineMs = 0.0;  //!< 0 = server default
    std::string target;   //!< Op::Cancel: request id to cancel
    uint32_t weight = 1;  //!< Op::Hello: requested WFQ weight
};

/**
 * Decode one request line. On failure @p error describes the
 * problem and @p out.id carries whatever id could be recovered from
 * the line (so the rejection can still be routed client-side).
 * Structural validation only — figure/workload existence is the
 * server's admission decision, not the parser's.
 */
bool parseRequest(const std::string &line, Request &out,
                  std::string &error);

/**
 * Apply a client-supplied config object onto Table II defaults:
 * every member must name a SimConfig field; integer fields are
 * clamped into generous-but-sane ranges (a request for 10^9 SMs
 * becomes the cap, not an allocation bomb) and the result must pass
 * SimConfig::check(). Returns false (with @p error) for unknown
 * fields, non-numeric values, or a config check() refuses.
 */
bool decodeSimConfig(const Json &obj, gpusim::SimConfig &out,
                     std::string &error);

/** "tiny"/"small"/"full" -> Scale; false on anything else. */
bool parseScale(const std::string &s, core::Scale &out);

// ---------------------------------------------------------------
// Responses.
// ---------------------------------------------------------------

/** Rejection reasons (the admission-control verdicts plus parse
 *  failures). */
enum class RejectReason { Overload, Quota, BadRequest };

const char *rejectReasonName(RejectReason r);

std::string renderAccepted(const std::string &id,
                           const std::string &lane);
std::string renderRejected(const std::string &id, RejectReason reason,
                           const std::string &detail);
std::string renderChunk(const std::string &id, uint64_t seq,
                        std::string_view data);
std::string renderDone(const std::string &id, const std::string &lane,
                       uint64_t chunks, uint64_t bytes,
                       uint64_t wallUs, bool coalesced = false);
std::string renderPointServed(const std::string &id, uint64_t index,
                              uint64_t bytes, bool coalesced = false);
std::string renderPointError(const std::string &id, uint64_t index,
                             const std::string &errorClass,
                             const std::string &message);
std::string renderErrorResponse(const std::string &id,
                                const std::string &errorClass,
                                const std::string &message);
std::string renderStats(const std::string &id,
                        const std::string &payload);
std::string renderPong();

} // namespace service
} // namespace rodinia

#endif // RODINIA_SERVICE_PROTOCOL_HH
