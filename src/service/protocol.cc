#include "service/protocol.hh"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <sstream>

#include "support/metrics.hh"

namespace rodinia {
namespace service {

using support::metrics::jsonEscape;

// ---------------------------------------------------------------
// JSON parsing.
// ---------------------------------------------------------------

const Json *
Json::get(std::string_view key) const
{
    for (const auto &[k, v] : obj)
        if (k == key)
            return &v;
    return nullptr;
}

/**
 * Recursive-descent parser over a string_view. Bounded: nesting is
 * capped (the protocol needs two levels), and every loop consumes at
 * least one byte, so parse time is linear in the input — both matter
 * because this runs on untrusted client bytes.
 */
class JsonParser
{
  public:
    JsonParser(std::string_view text, std::string &error)
        : text_(text), error_(error)
    {
    }

    bool
    parse(Json &out)
    {
        skipWs();
        if (!value(out, 0))
            return false;
        skipWs();
        if (pos_ != text_.size())
            return fail("trailing bytes after JSON value");
        return true;
    }

  private:
    /** Requests are depth <= 3, but clients parse the /stats
     *  payload (metrics histograms nest to ~8) with this same
     *  parser, so the cap leaves headroom over both. */
    static constexpr int kMaxDepth = 16;

    std::string_view text_;
    std::string &error_;
    size_t pos_ = 0;

    bool
    fail(const std::string &msg)
    {
        std::ostringstream os;
        os << msg << " at byte " << pos_;
        error_ = os.str();
        return false;
    }

    bool atEnd() const { return pos_ >= text_.size(); }
    char peek() const { return text_[pos_]; }

    void
    skipWs()
    {
        while (!atEnd() && (peek() == ' ' || peek() == '\t' ||
                            peek() == '\r' || peek() == '\n'))
            ++pos_;
    }

    bool
    literal(std::string_view word)
    {
        if (text_.substr(pos_, word.size()) != word)
            return fail("invalid literal");
        pos_ += word.size();
        return true;
    }

    bool
    value(Json &out, int depth)
    {
        if (depth > kMaxDepth)
            return fail("nesting too deep");
        if (atEnd())
            return fail("unexpected end of input");
        switch (peek()) {
        case '{':
            return object(out, depth);
        case '[':
            return array(out, depth);
        case '"':
            out.ty = Json::Type::String;
            return string(out.str);
        case 't':
            out.ty = Json::Type::Bool;
            out.b = true;
            return literal("true");
        case 'f':
            out.ty = Json::Type::Bool;
            out.b = false;
            return literal("false");
        case 'n':
            out.ty = Json::Type::Null;
            return literal("null");
        default:
            return number(out);
        }
    }

    bool
    object(Json &out, int depth)
    {
        out.ty = Json::Type::Object;
        ++pos_; // '{'
        skipWs();
        if (!atEnd() && peek() == '}') {
            ++pos_;
            return true;
        }
        for (;;) {
            skipWs();
            if (atEnd() || peek() != '"')
                return fail("expected object key");
            std::string key;
            if (!string(key))
                return false;
            // Duplicate keys are a protocol error: silently keeping
            // either copy would make request meaning depend on
            // parser internals.
            for (const auto &[k, v] : out.obj)
                if (k == key)
                    return fail("duplicate key '" + key + "'");
            skipWs();
            if (atEnd() || peek() != ':')
                return fail("expected ':'");
            ++pos_;
            skipWs();
            Json member;
            if (!value(member, depth + 1))
                return false;
            out.obj.emplace_back(std::move(key), std::move(member));
            skipWs();
            if (atEnd())
                return fail("unterminated object");
            if (peek() == ',') {
                ++pos_;
                continue;
            }
            if (peek() == '}') {
                ++pos_;
                return true;
            }
            return fail("expected ',' or '}'");
        }
    }

    bool
    array(Json &out, int depth)
    {
        out.ty = Json::Type::Array;
        ++pos_; // '['
        skipWs();
        if (!atEnd() && peek() == ']') {
            ++pos_;
            return true;
        }
        for (;;) {
            skipWs();
            Json elem;
            if (!value(elem, depth + 1))
                return false;
            out.arr.push_back(std::move(elem));
            skipWs();
            if (atEnd())
                return fail("unterminated array");
            if (peek() == ',') {
                ++pos_;
                continue;
            }
            if (peek() == ']') {
                ++pos_;
                return true;
            }
            return fail("expected ',' or ']'");
        }
    }

    bool
    hex4(unsigned &out)
    {
        out = 0;
        for (int i = 0; i < 4; ++i) {
            if (atEnd())
                return fail("truncated \\u escape");
            char c = peek();
            unsigned digit;
            if (c >= '0' && c <= '9')
                digit = unsigned(c - '0');
            else if (c >= 'a' && c <= 'f')
                digit = unsigned(c - 'a') + 10;
            else if (c >= 'A' && c <= 'F')
                digit = unsigned(c - 'A') + 10;
            else
                return fail("bad \\u escape digit");
            out = out * 16 + digit;
            ++pos_;
        }
        return true;
    }

    bool
    string(std::string &out)
    {
        ++pos_; // '"'
        out.clear();
        while (!atEnd()) {
            char c = peek();
            if (c == '"') {
                ++pos_;
                return true;
            }
            if (static_cast<unsigned char>(c) < 0x20)
                return fail("unescaped control character");
            if (c != '\\') {
                out += c;
                ++pos_;
                continue;
            }
            ++pos_; // '\\'
            if (atEnd())
                return fail("truncated escape");
            char e = peek();
            ++pos_;
            switch (e) {
            case '"': out += '"'; break;
            case '\\': out += '\\'; break;
            case '/': out += '/'; break;
            case 'b': out += '\b'; break;
            case 'f': out += '\f'; break;
            case 'n': out += '\n'; break;
            case 'r': out += '\r'; break;
            case 't': out += '\t'; break;
            case 'u': {
                unsigned cp;
                if (!hex4(cp))
                    return false;
                // BMP only; surrogate halves have no standalone
                // meaning and the protocol never emits them.
                if (cp >= 0xd800 && cp <= 0xdfff)
                    return fail("surrogate \\u escape unsupported");
                if (cp < 0x80) {
                    out += char(cp);
                } else if (cp < 0x800) {
                    out += char(0xc0 | (cp >> 6));
                    out += char(0x80 | (cp & 0x3f));
                } else {
                    out += char(0xe0 | (cp >> 12));
                    out += char(0x80 | ((cp >> 6) & 0x3f));
                    out += char(0x80 | (cp & 0x3f));
                }
                break;
            }
            default:
                return fail("unknown escape");
            }
        }
        return fail("unterminated string");
    }

    bool
    number(Json &out)
    {
        size_t start = pos_;
        if (!atEnd() && peek() == '-')
            ++pos_;
        while (!atEnd() && ((peek() >= '0' && peek() <= '9') ||
                            peek() == '.' || peek() == 'e' ||
                            peek() == 'E' || peek() == '+' ||
                            peek() == '-'))
            ++pos_;
        if (pos_ == start)
            return fail("expected value");
        std::string text(text_.substr(start, pos_ - start));
        char *end = nullptr;
        double v = std::strtod(text.c_str(), &end);
        if (end != text.c_str() + text.size() || !std::isfinite(v)) {
            pos_ = start;
            return fail("malformed number");
        }
        out.ty = Json::Type::Number;
        out.num = v;
        return true;
    }
};

bool
Json::parse(std::string_view text, Json &out, std::string &error)
{
    out = Json();
    JsonParser p(text, error);
    return p.parse(out);
}

// ---------------------------------------------------------------
// Request decoding.
// ---------------------------------------------------------------

bool
parseScale(const std::string &s, core::Scale &out)
{
    if (s == "tiny")
        out = core::Scale::Tiny;
    else if (s == "small")
        out = core::Scale::Small;
    else if (s == "full")
        out = core::Scale::Full;
    else if (s == "paper")
        out = core::Scale::Paper;
    else
        return false;
    return true;
}

namespace {

/**
 * Read a JSON number as an integer clamped into [lo, hi]. Rejects
 * non-numbers; fractional parts are truncated (the protocol treats
 * every architectural parameter as integral).
 */
bool
clampedInt(const Json &v, long long lo, long long hi, long long &out)
{
    if (!v.isNumber())
        return false;
    double d = v.number();
    if (d < double(lo))
        d = double(lo);
    if (d > double(hi))
        d = double(hi);
    out = (long long)(d);
    return true;
}

bool
clampedDouble(const Json &v, double lo, double hi, double &out)
{
    if (!v.isNumber())
        return false;
    out = std::min(hi, std::max(lo, v.number()));
    return true;
}

} // namespace

bool
decodeSimConfig(const Json &obj, gpusim::SimConfig &out,
                std::string &error)
{
    if (!obj.isObject()) {
        error = "config must be an object";
        return false;
    }
    gpusim::SimConfig cfg; // Table II defaults
    for (const auto &[key, v] : obj.members()) {
        long long i = 0;
        double d = 0.0;
        bool ok;
        // Clamp ranges are deliberately generous — they bound
        // resource use (allocation, sim time), not architectural
        // taste; check() below enforces the model's real rules.
        if (key == "numSms")
            ok = clampedInt(v, 1, 4096, i), cfg.numSms = int(i);
        else if (key == "warpSize")
            ok = clampedInt(v, 1, 32, i), cfg.warpSize = int(i);
        else if (key == "simdWidth")
            ok = clampedInt(v, 1, 64, i), cfg.simdWidth = int(i);
        else if (key == "maxThreadsPerSm")
            ok = clampedInt(v, 1, 65536, i),
            cfg.maxThreadsPerSm = int(i);
        else if (key == "maxCtasPerSm")
            ok = clampedInt(v, 1, 256, i), cfg.maxCtasPerSm = int(i);
        else if (key == "regFileSize")
            ok = clampedInt(v, 1, 1 << 22, i),
            cfg.regFileSize = int(i);
        else if (key == "regsPerThread")
            ok = clampedInt(v, 1, 256, i), cfg.regsPerThread = int(i);
        else if (key == "sharedMemPerSm")
            ok = clampedInt(v, 0, 16 << 20, i),
            cfg.sharedMemPerSm = uint64_t(i);
        else if (key == "bankConflictsEnabled")
            ok = v.isBool(), cfg.bankConflictsEnabled = v.boolean();
        else if (key == "sharedBanks")
            ok = clampedInt(v, 1, 256, i), cfg.sharedBanks = int(i);
        else if (key == "coreClockGhz")
            ok = clampedDouble(v, 0.001, 100.0, d),
            cfg.coreClockGhz = d;
        else if (key == "memClockGhz")
            ok = clampedDouble(v, 0.001, 100.0, d),
            cfg.memClockGhz = d;
        else if (key == "addressAluPerMem")
            ok = clampedInt(v, 0, 64, i), cfg.addressAluPerMem = int(i);
        else if (key == "numChannels")
            ok = clampedInt(v, 1, 1024, i), cfg.numChannels = int(i);
        else if (key == "dramBusBytes")
            ok = clampedInt(v, 1, 1024, i), cfg.dramBusBytes = int(i);
        else if (key == "coalesceBytes")
            ok = clampedInt(v, 1, 4096, i), cfg.coalesceBytes = int(i);
        else if (key == "gmemLatencyCycles")
            ok = clampedInt(v, 0, 1 << 20, i),
            cfg.gmemLatencyCycles = int(i);
        else if (key == "launchOverheadCycles")
            ok = clampedInt(v, 0, 1 << 20, i),
            cfg.launchOverheadCycles = int(i);
        else if (key == "texCacheBytes")
            ok = clampedInt(v, 1, 256 << 20, i),
            cfg.texCacheBytes = uint64_t(i);
        else if (key == "constCacheBytes")
            ok = clampedInt(v, 1, 256 << 20, i),
            cfg.constCacheBytes = uint64_t(i);
        else if (key == "texHitLatency")
            ok = clampedInt(v, 0, 1 << 16, i),
            cfg.texHitLatency = int(i);
        else if (key == "constHitLatency")
            ok = clampedInt(v, 0, 1 << 16, i),
            cfg.constHitLatency = int(i);
        else if (key == "l1Enabled")
            ok = v.isBool(), cfg.l1Enabled = v.boolean();
        else if (key == "l1Bytes")
            ok = clampedInt(v, 0, 256 << 20, i),
            cfg.l1Bytes = uint64_t(i);
        else if (key == "l1LineBytes")
            ok = clampedInt(v, 1, 4096, i), cfg.l1LineBytes = int(i);
        else if (key == "l1HitLatency")
            ok = clampedInt(v, 0, 1 << 16, i),
            cfg.l1HitLatency = int(i);
        else if (key == "l2Enabled")
            ok = v.isBool(), cfg.l2Enabled = v.boolean();
        else if (key == "l2Bytes")
            ok = clampedInt(v, 0, 1 << 30, i),
            cfg.l2Bytes = uint64_t(i);
        else if (key == "l2LineBytes")
            ok = clampedInt(v, 1, 4096, i), cfg.l2LineBytes = int(i);
        else if (key == "l2HitLatency")
            ok = clampedInt(v, 0, 1 << 16, i),
            cfg.l2HitLatency = int(i);
        else {
            error = "unknown config field '" + key + "'";
            return false;
        }
        if (!ok) {
            error = "config field '" + key + "' has the wrong type";
            return false;
        }
    }
    if (std::string err = cfg.check(); !err.empty()) {
        error = "invalid config: " + err;
        return false;
    }
    out = cfg;
    return true;
}

bool
parseRequest(const std::string &line, Request &out, std::string &error)
{
    out = Request();
    if (line.size() > kMaxRequestBytes) {
        error = "request exceeds " +
                std::to_string(kMaxRequestBytes) + " bytes";
        return false;
    }
    Json root;
    if (!Json::parse(line, root, error))
        return false;
    if (!root.isObject()) {
        error = "request must be a JSON object";
        return false;
    }
    // Recover the id first so even a rejected request can be routed.
    if (const Json *id = root.get("id"); id && id->isString())
        out.id = id->string();

    const Json *op = root.get("op");
    if (!op || !op->isString()) {
        error = "missing 'op'";
        return false;
    }
    const std::string &opName = op->string();
    if (opName == "ping")
        out.op = Op::Ping;
    else if (opName == "figure")
        out.op = Op::Figure;
    else if (opName == "sim")
        out.op = Op::Sim;
    else if (opName == "stats")
        out.op = Op::Stats;
    else if (opName == "cancel")
        out.op = Op::Cancel;
    else if (opName == "batch")
        out.op = Op::Batch;
    else if (opName == "hello")
        out.op = Op::Hello;
    else {
        error = "unknown op '" + opName + "'";
        return false;
    }

    // Per-op key whitelist: a typoed key must not silently become
    // "use the default", and a key that belongs to a *different* op
    // ("scale" on a figure request, "target" on a sim) must not be
    // silently dropped either.
    auto keyAllowed = [&](const std::string &key) {
        if (key == "op" || key == "id")
            return true;
        switch (out.op) {
        case Op::Ping:
        case Op::Stats:
            return false;
        case Op::Figure:
            return key == "figure" || key == "deadline_ms";
        case Op::Sim:
            return key == "workload" || key == "scale" ||
                   key == "version" || key == "config" ||
                   key == "deadline_ms";
        case Op::Batch:
            return key == "workload" || key == "scale" ||
                   key == "version" || key == "sweep" ||
                   key == "deadline_ms";
        case Op::Cancel:
            return key == "target";
        case Op::Hello:
            return key == "weight";
        }
        return false;
    };
    for (const auto &[key, v] : root.members()) {
        (void)v;
        if (!keyAllowed(key)) {
            error = "request field '" + key + "' is not valid for op '" +
                    opName + "'";
            return false;
        }
    }

    if (out.op != Op::Ping && out.id.empty()) {
        error = "missing 'id'";
        return false;
    }

    if (const Json *dl = root.get("deadline_ms")) {
        if (!dl->isNumber() || dl->number() < 0.0 ||
            dl->number() > 86400000.0) {
            error = "deadline_ms must be in [0, 86400000]";
            return false;
        }
        out.deadlineMs = dl->number();
    }

    // Shared by sim and batch: workload (required), scale, version.
    auto parseTarget = [&]() -> bool {
        const Json *wl = root.get("workload");
        if (!wl || !wl->isString() || wl->string().empty()) {
            error = "request needs a 'workload' name";
            return false;
        }
        out.workload = wl->string();
        if (const Json *sc = root.get("scale")) {
            if (!sc->isString() ||
                !parseScale(sc->string(), out.scale)) {
                error = "scale must be tiny|small|full|paper";
                return false;
            }
        }
        if (const Json *ver = root.get("version")) {
            long long v = 0;
            if (!clampedInt(*ver, 0, 64, v)) {
                error = "version must be a number";
                return false;
            }
            out.version = int(v);
        }
        return true;
    };

    switch (out.op) {
    case Op::Ping:
    case Op::Stats:
        break;
    case Op::Figure: {
        const Json *fig = root.get("figure");
        if (!fig || !fig->isString() || fig->string().empty()) {
            error = "figure request needs a 'figure' id";
            return false;
        }
        out.figure = fig->string();
        break;
    }
    case Op::Sim: {
        if (!parseTarget())
            return false;
        if (const Json *cfg = root.get("config")) {
            if (!decodeSimConfig(*cfg, out.config, error))
                return false;
        }
        break;
    }
    case Op::Batch: {
        if (!parseTarget())
            return false;
        const Json *sweep = root.get("sweep");
        if (!sweep || sweep->type() != Json::Type::Array) {
            error = "batch request needs a 'sweep' array";
            return false;
        }
        const auto &points = sweep->elements();
        if (points.empty()) {
            error = "sweep must have at least one point";
            return false;
        }
        if (points.size() > kMaxBatchPoints) {
            error = "sweep has " + std::to_string(points.size()) +
                    " points; max is " +
                    std::to_string(kMaxBatchPoints);
            return false;
        }
        out.sweep.reserve(points.size());
        for (size_t i = 0; i < points.size(); ++i) {
            gpusim::SimConfig cfg;
            std::string perr;
            // Duplicate points are legal: the sim memo and the
            // single-flight registry make the repeat free, so
            // rejecting them would only push dedup onto clients.
            if (!decodeSimConfig(points[i], cfg, perr)) {
                error = "sweep point " + std::to_string(i) + ": " +
                        perr;
                return false;
            }
            out.sweep.push_back(cfg);
        }
        break;
    }
    case Op::Hello: {
        const Json *w = root.get("weight");
        long long v = 0;
        if (!w || !w->isNumber() || w->number() < 1.0 ||
            w->number() > double(kMaxHelloWeight)) {
            error = "hello request needs a 'weight' in [1, " +
                    std::to_string(kMaxHelloWeight) + "]";
            return false;
        }
        clampedInt(*w, 1, kMaxHelloWeight, v);
        out.weight = uint32_t(v);
        break;
    }
    case Op::Cancel: {
        const Json *t = root.get("target");
        if (!t || !t->isString() || t->string().empty()) {
            error = "cancel request needs a 'target' id";
            return false;
        }
        out.target = t->string();
        break;
    }
    }
    return true;
}

// ---------------------------------------------------------------
// Response rendering.
// ---------------------------------------------------------------

const char *
rejectReasonName(RejectReason r)
{
    switch (r) {
    case RejectReason::Overload: return "overload";
    case RejectReason::Quota: return "quota";
    case RejectReason::BadRequest: return "bad-request";
    }
    return "?";
}

std::string
renderAccepted(const std::string &id, const std::string &lane)
{
    return "{\"id\":\"" + jsonEscape(id) +
           "\",\"type\":\"accepted\",\"lane\":\"" + jsonEscape(lane) +
           "\"}\n";
}

std::string
renderRejected(const std::string &id, RejectReason reason,
               const std::string &detail)
{
    return "{\"id\":\"" + jsonEscape(id) +
           "\",\"type\":\"rejected\",\"reason\":\"" +
           rejectReasonName(reason) + "\",\"detail\":\"" +
           jsonEscape(detail) + "\"}\n";
}

std::string
renderChunk(const std::string &id, uint64_t seq, std::string_view data)
{
    std::string out = "{\"id\":\"" + jsonEscape(id) +
                      "\",\"type\":\"chunk\",\"seq\":" +
                      std::to_string(seq) + ",\"data\":\"";
    out += jsonEscape(data);
    out += "\"}\n";
    return out;
}

std::string
renderDone(const std::string &id, const std::string &lane,
           uint64_t chunks, uint64_t bytes, uint64_t wallUs,
           bool coalesced)
{
    return "{\"id\":\"" + jsonEscape(id) +
           "\",\"type\":\"done\",\"lane\":\"" + jsonEscape(lane) +
           "\",\"chunks\":" + std::to_string(chunks) +
           ",\"bytes\":" + std::to_string(bytes) +
           ",\"wall_us\":" + std::to_string(wallUs) +
           ",\"coalesced\":" + (coalesced ? "1" : "0") + "}\n";
}

std::string
renderPointServed(const std::string &id, uint64_t index,
                  uint64_t bytes, bool coalesced)
{
    return "{\"id\":\"" + jsonEscape(id) +
           "\",\"type\":\"point\",\"index\":" + std::to_string(index) +
           ",\"status\":\"served\",\"bytes\":" +
           std::to_string(bytes) +
           ",\"coalesced\":" + (coalesced ? "1" : "0") + "}\n";
}

std::string
renderPointError(const std::string &id, uint64_t index,
                 const std::string &errorClass,
                 const std::string &message)
{
    return "{\"id\":\"" + jsonEscape(id) +
           "\",\"type\":\"point\",\"index\":" + std::to_string(index) +
           ",\"status\":\"error\",\"class\":\"" +
           jsonEscape(errorClass) + "\",\"message\":\"" +
           jsonEscape(message) + "\"}\n";
}

std::string
renderErrorResponse(const std::string &id,
                    const std::string &errorClass,
                    const std::string &message)
{
    return "{\"id\":\"" + jsonEscape(id) +
           "\",\"type\":\"error\",\"class\":\"" +
           jsonEscape(errorClass) + "\",\"message\":\"" +
           jsonEscape(message) + "\"}\n";
}

std::string
renderStats(const std::string &id, const std::string &payload)
{
    return "{\"id\":\"" + jsonEscape(id) +
           "\",\"type\":\"stats\",\"data\":\"" + jsonEscape(payload) +
           "\"}\n";
}

std::string
renderPong()
{
    return "{\"type\":\"pong\"}\n";
}

} // namespace service
} // namespace rodinia
