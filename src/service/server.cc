#include "service/server.hh"

#include <poll.h>
#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

#include <atomic>
#include <chrono>
#include <condition_variable>
#include <cstring>
#include <deque>
#include <map>
#include <mutex>
#include <sstream>
#include <thread>
#include <vector>

#include "driver/context.hh"
#include "driver/executor.hh"
#include "driver/failure.hh"
#include "driver/figures.hh"
#include "driver/result_store.hh"
#include "driver/tracing.hh"
#include "service/protocol.hh"
#include "support/cancel.hh"
#include "support/logging.hh"
#include "support/metrics.hh"

namespace rodinia {
namespace service {

namespace metrics = support::metrics;
using Clock = std::chrono::steady_clock;

namespace {

uint64_t
elapsedUs(Clock::time_point from, Clock::time_point to)
{
    return uint64_t(std::chrono::duration_cast<std::chrono::microseconds>(
                        to - from)
                        .count());
}

} // namespace

// ---------------------------------------------------------------
// Impl
// ---------------------------------------------------------------

struct ExperimentService::Impl
{
    explicit Impl(const ServiceConfig &cfg)
        : config(cfg), store(cfg.cacheDir, cfg.cacheEnabled),
          executor(cfg.executorThreads), ctx(&store, &executor),
          admission(cfg.admission)
    {
        core::registerAllWorkloads();
    }

    // ---- connection state -------------------------------------

    struct Conn
    {
        int fd = -1;
        std::string client; //!< "c<N>"
        std::mutex writeMu;
        std::atomic<bool> open{true};
        std::atomic<bool> readerDone{false};
        std::thread reader;

        /** Runs only after the last shared_ptr holder (reader
         *  thread, conns list, queued Tasks) drops, so closing here
         *  is what keeps a long-lived daemon from leaking one fd per
         *  disconnected client until EMFILE kills accept(). */
        ~Conn()
        {
            if (fd >= 0)
                ::close(fd);
        }

        /** Serialize one response line onto the socket. Returns
         *  false (and latches the connection closed) on any write
         *  error — a vanished client stops costing us syscalls. */
        bool
        write(const std::string &line)
        {
            std::lock_guard<std::mutex> lock(writeMu);
            if (!open.load(std::memory_order_acquire))
                return false;
            const char *p = line.data();
            size_t left = line.size();
            while (left > 0) {
                ssize_t n = ::send(fd, p, left, MSG_NOSIGNAL);
                if (n < 0) {
                    if (errno == EINTR)
                        continue;
                    open.store(false, std::memory_order_release);
                    return false;
                }
                p += n;
                left -= size_t(n);
            }
            return true;
        }
    };

    // ---- one admitted unit of work ----------------------------

    struct Task
    {
        std::shared_ptr<Conn> conn;
        std::string id;
        Op op = Op::Figure;
        const driver::FigureDef *figure = nullptr;
        std::string workload;
        core::Scale scale = core::Scale::Full;
        int version = 0;
        gpusim::SimConfig simConfig;
        Lane lane = Lane::Cold;
        std::shared_ptr<support::CancelToken> token;
        Clock::time_point accepted;
    };

    /** Cancelation handle for every admitted-but-unfinished
     *  request, addressed by (connection, request id). */
    struct InFlight
    {
        std::shared_ptr<support::CancelToken> token;
        Clock::time_point deadline{};
        bool hasDeadline = false;
    };

    ServiceConfig config;
    driver::ResultStore store;
    driver::Executor executor;
    driver::Context ctx;
    AdmissionController admission;

    std::atomic<bool> running{false};
    std::atomic<uint64_t> connCounter{0};
    int listenFd = -1;
    std::thread acceptThread;
    std::thread watchdogThread;
    std::vector<std::thread> workers;

    std::mutex connsMu;
    std::vector<std::shared_ptr<Conn>> conns;

    std::mutex queueMu;
    std::condition_variable queueCv;
    std::deque<Task> queues[2]; //!< [0]=warm, [1]=cold

    std::mutex inflightMu;
    std::map<std::pair<std::string, std::string>, InFlight> inflight;

    /** Figure id -> rendered text. Figure output is deterministic,
     *  so a benign double-build race publishes identical bytes. */
    std::mutex figureCacheMu;
    std::map<std::string, std::string> figureCache;

    // ---- lifecycle --------------------------------------------

    bool bind();
    void acceptLoop();
    void readerLoop(const std::shared_ptr<Conn> &conn);
    void workerLoop(Lane lane);
    void watchdogLoop();

    // ---- request handling -------------------------------------

    void handleLine(const std::shared_ptr<Conn> &conn,
                    const std::string &line);
    void handleStats(const std::shared_ptr<Conn> &conn,
                     const Request &req);
    void handleCancel(const std::shared_ptr<Conn> &conn,
                      const Request &req);
    void handleWork(const std::shared_ptr<Conn> &conn,
                    const Request &req);
    void execute(Task &task);
    void streamPayload(Task &task, const std::string &payload);
    void finishError(Task &task, const std::string &cls,
                     const std::string &message);

    bool figureWarm(const std::string &id);
    std::string figureText(const driver::FigureDef &def);

    void eraseInflight(const Conn &conn, const std::string &id);
    void cancelConnection(const Conn &conn, const std::string &why);
};

// ---------------------------------------------------------------
// Socket plumbing
// ---------------------------------------------------------------

bool
ExperimentService::Impl::bind()
{
    sockaddr_un addr{};
    addr.sun_family = AF_UNIX;
    if (config.socketPath.empty() ||
        config.socketPath.size() >= sizeof(addr.sun_path)) {
        warn("service: socket path '", config.socketPath,
             "' is empty or longer than ", sizeof(addr.sun_path) - 1,
             " bytes");
        return false;
    }
    std::memcpy(addr.sun_path, config.socketPath.c_str(),
                config.socketPath.size() + 1);

    listenFd = ::socket(AF_UNIX, SOCK_STREAM, 0);
    if (listenFd < 0) {
        warn("service: socket(): ", std::strerror(errno));
        return false;
    }
    // A stale socket file from a dead daemon would make bind fail
    // forever; unlinking is safe because a *live* daemon would still
    // own the listening inode.
    ::unlink(config.socketPath.c_str());
    if (::bind(listenFd, reinterpret_cast<sockaddr *>(&addr),
               sizeof(addr)) != 0 ||
        ::listen(listenFd, 64) != 0) {
        warn("service: cannot listen on '", config.socketPath,
             "': ", std::strerror(errno));
        ::close(listenFd);
        listenFd = -1;
        return false;
    }
    return true;
}

void
ExperimentService::Impl::acceptLoop()
{
    while (running.load(std::memory_order_acquire)) {
        pollfd pfd{listenFd, POLLIN, 0};
        int pr = ::poll(&pfd, 1, 100);
        if (pr <= 0)
            continue;
        int fd = ::accept(listenFd, nullptr, nullptr);
        if (fd < 0)
            continue;
        auto conn = std::make_shared<Conn>();
        conn->fd = fd;
        conn->client =
            "c" + std::to_string(connCounter.fetch_add(1) + 1);
        metrics::count("service.connections");
        if (config.verbose)
            warn("service: accepted ", conn->client);
        conn->reader =
            std::thread([this, conn] { readerLoop(conn); });
        std::lock_guard<std::mutex> lock(connsMu);
        // Reap connections whose readers already finished so a
        // long-lived daemon doesn't accumulate one zombie thread
        // object per historical client.
        for (auto it = conns.begin(); it != conns.end();) {
            if ((*it)->readerDone.load(std::memory_order_acquire)) {
                (*it)->reader.join();
                it = conns.erase(it);
            } else {
                ++it;
            }
        }
        conns.push_back(std::move(conn));
    }
}

void
ExperimentService::Impl::readerLoop(const std::shared_ptr<Conn> &conn)
{
    std::string buf;
    bool discarding = false;
    char chunk[4096];
    for (;;) {
        ssize_t n = ::read(conn->fd, chunk, sizeof(chunk));
        if (n < 0 && errno == EINTR)
            continue;
        if (n <= 0)
            break;
        size_t start = 0;
        for (ssize_t i = 0; i < n; ++i) {
            if (chunk[i] != '\n')
                continue;
            if (discarding) {
                // Tail of an oversized line: drop it and resume
                // normal framing at the next byte.
                discarding = false;
            } else {
                buf.append(chunk + start, size_t(i) - start);
                handleLine(conn, buf);
            }
            buf.clear();
            start = size_t(i) + 1;
        }
        if (!discarding) {
            buf.append(chunk + start, size_t(n) - start);
            if (buf.size() > kMaxRequestBytes) {
                metrics::count("service.oversized_lines");
                conn->write(renderRejected(
                    "", RejectReason::BadRequest,
                    "request line exceeds " +
                        std::to_string(kMaxRequestBytes) +
                        " bytes"));
                buf.clear();
                discarding = true;
            }
        }
    }
    // A request line truncated by the disconnect is dropped, not
    // parsed — half a request must not execute.
    conn->open.store(false, std::memory_order_release);
    cancelConnection(*conn, "client disconnected");
    if (config.verbose)
        warn("service: ", conn->client, " disconnected");
    conn->readerDone.store(true, std::memory_order_release);
}

// ---------------------------------------------------------------
// Request handling (reader thread)
// ---------------------------------------------------------------

void
ExperimentService::Impl::handleLine(const std::shared_ptr<Conn> &conn,
                                    const std::string &line)
{
    if (line.empty() ||
        line.find_first_not_of(" \t\r") == std::string::npos)
        return; // blank keep-alive line
    Request req;
    std::string error;
    if (!parseRequest(line, req, error)) {
        metrics::count("service.bad_requests");
        conn->write(
            renderRejected(req.id, RejectReason::BadRequest, error));
        return;
    }
    switch (req.op) {
    case Op::Ping:
        conn->write(renderPong());
        return;
    case Op::Stats:
        handleStats(conn, req);
        return;
    case Op::Cancel:
        handleCancel(conn, req);
        return;
    case Op::Figure:
    case Op::Sim:
        handleWork(conn, req);
        return;
    }
}

void
ExperimentService::Impl::handleStats(const std::shared_ptr<Conn> &conn,
                                     const Request &req)
{
    // One JSON object: the controller's per-client accounting, live
    // queue depths, and the full metrics registry (PR 5) embedded as
    // its own sub-object. Rendered inline on the reader thread so
    // stats stay available while every worker is busy.
    std::ostringstream os;
    os << "{\"clients\":{";
    bool firstClient = true;
    for (const auto &[client, cs] : admission.snapshot()) {
        if (!firstClient)
            os << ",";
        firstClient = false;
        os << "\"" << metrics::jsonEscape(client) << "\":{"
           << "\"admitted\":" << cs.admitted
           << ",\"rejected_overload\":" << cs.rejectedOverload
           << ",\"rejected_quota\":" << cs.rejectedQuota
           << ",\"served\":" << cs.served
           << ",\"failed\":" << cs.failed
           << ",\"in_flight\":" << cs.inFlight << "}";
    }
    os << "},\"queue\":{\"warm\":" << admission.queueDepth(Lane::Warm)
       << ",\"cold\":" << admission.queueDepth(Lane::Cold) << "}";
    {
        std::lock_guard<std::mutex> lock(figureCacheMu);
        os << ",\"figure_cache\":" << figureCache.size();
    }
    os << ",\"metrics\":"
       << metrics::Registry::global().snapshot().renderJson() << "}";
    conn->write(renderStats(req.id, os.str()));
}

void
ExperimentService::Impl::handleCancel(
    const std::shared_ptr<Conn> &conn, const Request &req)
{
    bool found = false;
    {
        std::lock_guard<std::mutex> lock(inflightMu);
        auto it = inflight.find({conn->client, req.target});
        if (it != inflight.end()) {
            found = true;
            it->second.token->cancel("cancel: request '" +
                                     req.target +
                                     "' cancelled by client");
        }
    }
    if (found) {
        metrics::count("service.cancels");
        conn->write(renderDone(req.id, "cancel", 0, 0, 0));
    } else {
        conn->write(renderRejected(
            req.id, RejectReason::BadRequest,
            "no in-flight request '" + req.target + "'"));
    }
}

bool
ExperimentService::Impl::figureWarm(const std::string &id)
{
    std::lock_guard<std::mutex> lock(figureCacheMu);
    return figureCache.count(id) != 0;
}

void
ExperimentService::Impl::handleWork(const std::shared_ptr<Conn> &conn,
                                    const Request &req)
{
    Task task;
    task.conn = conn;
    task.id = req.id;
    task.op = req.op;

    if (req.op == Op::Figure) {
        task.figure = driver::findFigure(req.figure);
        if (!task.figure) {
            conn->write(renderRejected(
                req.id, RejectReason::BadRequest,
                "unknown figure '" + req.figure + "'"));
            return;
        }
        task.lane = figureWarm(req.figure) ? Lane::Warm : Lane::Cold;
    } else {
        auto &reg = core::Registry::instance();
        if (!reg.has(req.workload)) {
            conn->write(renderRejected(
                req.id, RejectReason::BadRequest,
                "unknown workload '" + req.workload + "'"));
            return;
        }
        int versions = reg.create(req.workload)->gpuVersions();
        if (versions < 1) {
            conn->write(renderRejected(
                req.id, RejectReason::BadRequest,
                "workload '" + req.workload +
                    "' has no GPU implementation"));
            return;
        }
        if (req.version > versions) {
            conn->write(renderRejected(
                req.id, RejectReason::BadRequest,
                "workload '" + req.workload + "' has " +
                    std::to_string(versions) + " version(s)"));
            return;
        }
        task.workload = req.workload;
        task.scale = req.scale;
        task.version = req.version;
        task.simConfig = req.config;
        task.lane = ctx.gpuStatsWarm(req.workload, req.scale,
                                     req.version, req.config)
                        ? Lane::Warm
                        : Lane::Cold;
    }

    // One live request per (client, id): a reused id would make
    // cancel and response routing ambiguous.
    {
        std::lock_guard<std::mutex> lock(inflightMu);
        if (inflight.count({conn->client, req.id})) {
            conn->write(renderRejected(
                req.id, RejectReason::BadRequest,
                "request id '" + req.id + "' already in flight"));
            return;
        }
    }

    switch (admission.admit(conn->client, task.lane)) {
    case Verdict::RejectOverload:
        conn->write(renderRejected(req.id, RejectReason::Overload,
                                   std::string(laneName(task.lane)) +
                                       " queue is full"));
        return;
    case Verdict::RejectQuota:
        conn->write(renderRejected(
            req.id, RejectReason::Quota,
            "client has " +
                std::to_string(admission.policy().perClientInFlight) +
                " requests in flight"));
        return;
    case Verdict::Admit:
        break;
    }

    task.token = std::make_shared<support::CancelToken>();
    task.accepted = Clock::now();
    double deadlineMs = req.deadlineMs > 0.0
                            ? req.deadlineMs
                            : config.defaultDeadlineMs;
    {
        std::lock_guard<std::mutex> lock(inflightMu);
        InFlight inf;
        inf.token = task.token;
        if (deadlineMs > 0.0) {
            inf.hasDeadline = true;
            inf.deadline =
                task.accepted +
                std::chrono::microseconds(int64_t(deadlineMs * 1e3));
        }
        inflight.emplace(std::make_pair(conn->client, req.id),
                         std::move(inf));
    }
    conn->write(renderAccepted(req.id, laneName(task.lane)));
    {
        std::lock_guard<std::mutex> lock(queueMu);
        queues[task.lane == Lane::Warm ? 0 : 1].push_back(
            std::move(task));
    }
    queueCv.notify_all();
}

// ---------------------------------------------------------------
// Lane workers
// ---------------------------------------------------------------

void
ExperimentService::Impl::workerLoop(Lane lane)
{
    size_t qi = lane == Lane::Warm ? 0 : 1;
    for (;;) {
        Task task;
        {
            std::unique_lock<std::mutex> lock(queueMu);
            queueCv.wait(lock, [&] {
                return !queues[qi].empty() ||
                       !running.load(std::memory_order_acquire);
            });
            if (queues[qi].empty()) {
                if (!running.load(std::memory_order_acquire))
                    return;
                continue;
            }
            task = std::move(queues[qi].front());
            queues[qi].pop_front();
        }
        admission.started(lane);
        execute(task);
    }
}

std::string
ExperimentService::Impl::figureText(const driver::FigureDef &def)
{
    {
        std::lock_guard<std::mutex> lock(figureCacheMu);
        auto it = figureCache.find(def.id);
        if (it != figureCache.end()) {
            metrics::count("service.figure_cache_hits");
            return it->second;
        }
    }
    std::string text = driver::buildFigure(def, ctx);
    std::lock_guard<std::mutex> lock(figureCacheMu);
    figureCache.emplace(def.id, text);
    return text;
}

void
ExperimentService::Impl::streamPayload(Task &task,
                                       const std::string &payload)
{
    uint64_t seq = 0;
    for (size_t off = 0; off < payload.size(); off += kChunkBytes) {
        if (!task.conn->write(renderChunk(
                task.id, seq,
                std::string_view(payload).substr(off, kChunkBytes))))
            return; // client gone; finish() still runs in execute()
        ++seq;
    }
    uint64_t wallUs = elapsedUs(task.accepted, Clock::now());
    task.conn->write(renderDone(task.id, laneName(task.lane), seq,
                                payload.size(), wallUs));
    metrics::observeLabeled("service.latency_us",
                            task.conn->client + "/" +
                                laneName(task.lane),
                            wallUs);
}

void
ExperimentService::Impl::finishError(Task &task,
                                     const std::string &cls,
                                     const std::string &message)
{
    task.conn->write(renderErrorResponse(task.id, cls, message));
    metrics::countLabeled("service.errors",
                          task.conn->client + "/" + cls, 1);
}

void
ExperimentService::Impl::execute(Task &task)
{
    auto t0 = Clock::now();
    metrics::observeLabeled("service.queue_wait_us",
                            laneName(task.lane),
                            elapsedUs(task.accepted, t0));
    bool served = false;
    std::string spanWhat =
        task.op == Op::Figure ? task.figure->id : task.workload;
    auto cancelClass = [](const std::string &r) {
        return r.rfind("deadline:", 0) == 0    ? "deadline"
               : r.rfind("shutdown:", 0) == 0 ? "shutdown"
                                              : "cancelled";
    };
    std::string payload, errCls, errMsg;
    // Cancelled while queued (deadline, client cancel, teardown):
    // answer without touching the Context at all.
    if (task.token->cancelled()) {
        errCls = cancelClass(task.token->reason());
        errMsg = task.token->reason();
    } else {
        support::CancelScope scope(task.token.get());
        try {
            if (task.op == Op::Figure) {
                payload = figureText(*task.figure);
            } else {
                payload = gpusim::serializeKernelStats(
                    ctx.gpuStats(task.workload, task.scale,
                                 task.version, task.simConfig));
            }
            served = true;
        } catch (const support::CancelledError &e) {
            errCls = cancelClass(e.what());
            errMsg = e.what();
        } catch (...) {
            auto c = driver::classifyCurrentException();
            errCls = driver::errorClassName(c.cls);
            errMsg = c.message;
        }
    }
    // Settle the accounting BEFORE the terminal response goes out: a
    // client that has seen "done"/"error" may immediately ask /stats
    // and must find this request counted as finished, not in flight.
    eraseInflight(*task.conn, task.id);
    admission.finish(task.conn->client, task.lane, served);
    if (served)
        streamPayload(task, payload);
    else
        finishError(task, errCls, errMsg);
    if (auto *tc = driver::TraceCollector::active())
        tc->record("service",
                   task.op == Op::Figure ? "figure" : "sim",
                   driver::TraceArgs()
                       .str("client", task.conn->client)
                       .str("what", spanWhat)
                       .str("lane", laneName(task.lane))
                       .str("outcome", served ? "served" : "failed")
                       .json(),
                   t0, Clock::now());
    if (config.verbose)
        warn("service: ", task.conn->client, "/", task.id, " ",
             spanWhat, " [", laneName(task.lane), "] ",
             served ? "served" : "failed");
}

// ---------------------------------------------------------------
// Cancellation bookkeeping
// ---------------------------------------------------------------

void
ExperimentService::Impl::eraseInflight(const Conn &conn,
                                       const std::string &id)
{
    std::lock_guard<std::mutex> lock(inflightMu);
    inflight.erase({conn.client, id});
}

void
ExperimentService::Impl::cancelConnection(const Conn &conn,
                                          const std::string &why)
{
    std::lock_guard<std::mutex> lock(inflightMu);
    for (auto &[key, inf] : inflight)
        if (key.first == conn.client)
            inf.token->cancel("cancelled: " + why);
}

void
ExperimentService::Impl::watchdogLoop()
{
    while (running.load(std::memory_order_acquire)) {
        std::this_thread::sleep_for(std::chrono::milliseconds(10));
        auto now = Clock::now();
        std::lock_guard<std::mutex> lock(inflightMu);
        for (auto &[key, inf] : inflight) {
            if (!inf.hasDeadline || inf.token->cancelled() ||
                now <= inf.deadline)
                continue;
            // Like the executor watchdog, the reason quotes the
            // request key, not the measured elapsed time, so error
            // messages stay deterministic.
            inf.token->cancel("deadline: request '" + key.second +
                              "' exceeded its deadline");
            metrics::count("service.deadline_cancels");
        }
    }
}

// ---------------------------------------------------------------
// Public surface
// ---------------------------------------------------------------

ExperimentService::ExperimentService(const ServiceConfig &config)
    : impl(std::make_unique<Impl>(config))
{
}

ExperimentService::~ExperimentService()
{
    stop();
}

bool
ExperimentService::start()
{
    if (impl->running.load())
        return true;
    if (!impl->bind())
        return false;
    impl->running.store(true, std::memory_order_release);
    impl->acceptThread =
        std::thread([this] { impl->acceptLoop(); });
    impl->watchdogThread =
        std::thread([this] { impl->watchdogLoop(); });
    int warm = std::max(1, impl->config.warmWorkers);
    int cold = std::max(1, impl->config.coldWorkers);
    for (int i = 0; i < warm; ++i)
        impl->workers.emplace_back(
            [this] { impl->workerLoop(Lane::Warm); });
    for (int i = 0; i < cold; ++i)
        impl->workers.emplace_back(
            [this] { impl->workerLoop(Lane::Cold); });
    return true;
}

void
ExperimentService::stop()
{
    if (!impl->running.exchange(false))
        return;
    // Order matters: stop intake first (accept loop sees running ==
    // false), then cancel outstanding work so queued tasks drain as
    // immediate "shutdown" errors, then wake and join the workers,
    // then unblock every connection reader.
    if (impl->acceptThread.joinable())
        impl->acceptThread.join();
    if (impl->listenFd >= 0) {
        ::close(impl->listenFd);
        impl->listenFd = -1;
        ::unlink(impl->config.socketPath.c_str());
    }
    {
        std::lock_guard<std::mutex> lock(impl->inflightMu);
        for (auto &[key, inf] : impl->inflight)
            inf.token->cancel("shutdown: service stopping");
    }
    {
        // The workers' wait predicate reads `running`, which was
        // flipped outside queueMu; notifying while holding the mutex
        // orders the flip with the wait so no worker can check the
        // predicate, miss the flip, and then block past the notify.
        std::lock_guard<std::mutex> lock(impl->queueMu);
        impl->queueCv.notify_all();
    }
    for (auto &w : impl->workers)
        w.join();
    impl->workers.clear();
    if (impl->watchdogThread.joinable())
        impl->watchdogThread.join();
    std::vector<std::shared_ptr<Impl::Conn>> conns;
    {
        std::lock_guard<std::mutex> lock(impl->connsMu);
        conns.swap(impl->conns);
    }
    for (auto &c : conns) {
        ::shutdown(c->fd, SHUT_RDWR);
        if (c->reader.joinable())
            c->reader.join();
        // ~Conn closes the fd once queued Tasks release their refs.
    }
}

bool
ExperimentService::running() const
{
    return impl->running.load(std::memory_order_acquire);
}

const ServiceConfig &
ExperimentService::config() const
{
    return impl->config;
}

uint64_t
ExperimentService::connectionsAccepted() const
{
    return impl->connCounter.load();
}

driver::Context &
ExperimentService::context()
{
    return impl->ctx;
}

AdmissionController &
ExperimentService::admission()
{
    return impl->admission;
}

} // namespace service
} // namespace rodinia
