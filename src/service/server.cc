#include "service/server.hh"

#include <netinet/in.h>
#include <poll.h>
#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

#include <atomic>
#include <chrono>
#include <condition_variable>
#include <cstring>
#include <deque>
#include <map>
#include <mutex>
#include <sstream>
#include <thread>
#include <vector>

#include "driver/context.hh"
#include "driver/executor.hh"
#include "driver/failure.hh"
#include "driver/figures.hh"
#include "driver/result_store.hh"
#include "driver/tracing.hh"
#include "service/protocol.hh"
#include "support/cancel.hh"
#include "support/logging.hh"
#include "support/metrics.hh"

namespace rodinia {
namespace service {

namespace metrics = support::metrics;
using Clock = std::chrono::steady_clock;

namespace {

uint64_t
elapsedUs(Clock::time_point from, Clock::time_point to)
{
    return uint64_t(std::chrono::duration_cast<std::chrono::microseconds>(
                        to - from)
                        .count());
}

/** Error class for a cancellation, recovered from the token reason's
 *  prefix (the watchdog, client cancel, and shutdown each stamp
 *  their own). */
const char *
cancelClass(const std::string &reason)
{
    return reason.rfind("deadline:", 0) == 0    ? "deadline"
           : reason.rfind("shutdown:", 0) == 0 ? "shutdown"
                                               : "cancelled";
}

} // namespace

// ---------------------------------------------------------------
// Impl
// ---------------------------------------------------------------

struct ExperimentService::Impl
{
    explicit Impl(const ServiceConfig &cfg)
        : config(cfg), store(cfg.cacheDir, cfg.cacheEnabled),
          executor(cfg.executorThreads), ctx(&store, &executor),
          admission(cfg.admission)
    {
        core::registerAllWorkloads();
        queues[0] = WfqQueue<Task>(cfg.admission.wfqQuantum);
        queues[1] = WfqQueue<Task>(cfg.admission.wfqQuantum);
    }

    // ---- connection state -------------------------------------

    struct Conn
    {
        int fd = -1;
        std::string client; //!< "c<N>"
        std::mutex writeMu;
        std::atomic<bool> open{true};
        std::atomic<bool> readerDone{false};
        std::thread reader;

        /** Runs only after the last shared_ptr holder (reader
         *  thread, conns list, queued Tasks) drops, so closing here
         *  is what keeps a long-lived daemon from leaking one fd per
         *  disconnected client until EMFILE kills accept(). */
        ~Conn()
        {
            if (fd >= 0)
                ::close(fd);
        }

        /** Serialize one response line onto the socket. Returns
         *  false (and latches the connection closed) on any write
         *  error — a vanished client stops costing us syscalls. */
        bool
        write(const std::string &line)
        {
            std::lock_guard<std::mutex> lock(writeMu);
            if (!open.load(std::memory_order_acquire))
                return false;
            const char *p = line.data();
            size_t left = line.size();
            while (left > 0) {
                ssize_t n = ::send(fd, p, left, MSG_NOSIGNAL);
                if (n < 0) {
                    if (errno == EINTR)
                        continue;
                    open.store(false, std::memory_order_release);
                    return false;
                }
                p += n;
                left -= size_t(n);
            }
            return true;
        }
    };

    // ---- one admitted unit of work ----------------------------

    struct Task
    {
        std::shared_ptr<Conn> conn;
        std::string id;
        Op op = Op::Figure;
        const driver::FigureDef *figure = nullptr;
        std::string workload;
        core::Scale scale = core::Scale::Full;
        int version = 0;
        gpusim::SimConfig simConfig;
        std::vector<gpusim::SimConfig> sweep; //!< Op::Batch points
        Lane lane = Lane::Cold;
        std::shared_ptr<support::CancelToken> token;
        Clock::time_point accepted;
    };

    /** Cancelation handle for every admitted-but-unfinished
     *  request, addressed by (connection, request id). */
    struct InFlight
    {
        std::shared_ptr<support::CancelToken> token;
        Clock::time_point deadline{};
        bool hasDeadline = false;
    };

    ServiceConfig config;
    driver::ResultStore store;
    driver::Executor executor;
    driver::Context ctx;
    AdmissionController admission;

    std::atomic<bool> running{false};
    std::atomic<uint64_t> connCounter{0};
    int listenFd = -1;
    int tcpListenFd = -1; //!< optional loopback TCP listener
    int boundTcpPort = 0; //!< resolved port (config may say 0)
    std::thread acceptThread;
    std::thread watchdogThread;
    std::vector<std::thread> workers;

    std::mutex connsMu;
    std::vector<std::shared_ptr<Conn>> conns;

    std::mutex queueMu;
    std::condition_variable queueCv;
    WfqQueue<Task> queues[2]; //!< [0]=warm, [1]=cold; DRR per client

    std::mutex inflightMu;
    std::map<std::pair<std::string, std::string>, InFlight> inflight;

    /** Figure id -> rendered text. Figure output is deterministic,
     *  so a benign double-build race publishes identical bytes. */
    std::mutex figureCacheMu;
    std::map<std::string, std::string> figureCache;

    // ---- lifecycle --------------------------------------------

    bool bind();
    bool bindTcp();
    void acceptFrom(int fd);
    void acceptLoop();
    void readerLoop(const std::shared_ptr<Conn> &conn);
    void workerLoop(Lane lane);
    void watchdogLoop();

    // ---- request handling -------------------------------------

    void handleLine(const std::shared_ptr<Conn> &conn,
                    const std::string &line);
    void handleStats(const std::shared_ptr<Conn> &conn,
                     const Request &req);
    void handleCancel(const std::shared_ptr<Conn> &conn,
                      const Request &req);
    void handleHello(const std::shared_ptr<Conn> &conn,
                     const Request &req);
    void handleWork(const std::shared_ptr<Conn> &conn,
                    const Request &req);
    void execute(Task &task);
    void executeBatch(Task &task, Clock::time_point t0);
    bool simPayload(const std::string &workload, core::Scale scale,
                    int version, const gpusim::SimConfig &config,
                    support::CancelToken *token, std::string &payload,
                    std::string &errCls, std::string &errMsg,
                    bool &coalesced);
    void streamPayload(Task &task, const std::string &payload,
                       bool coalesced);
    void finishError(Task &task, const std::string &cls,
                     const std::string &message);

    bool figureWarm(const std::string &id);
    std::string figureText(const driver::FigureDef &def);

    void eraseInflight(const Conn &conn, const std::string &id);
    void cancelConnection(const Conn &conn, const std::string &why);
};

// ---------------------------------------------------------------
// Socket plumbing
// ---------------------------------------------------------------

bool
ExperimentService::Impl::bind()
{
    sockaddr_un addr{};
    addr.sun_family = AF_UNIX;
    if (config.socketPath.empty() ||
        config.socketPath.size() >= sizeof(addr.sun_path)) {
        warn("service: socket path '", config.socketPath,
             "' is empty or longer than ", sizeof(addr.sun_path) - 1,
             " bytes");
        return false;
    }
    std::memcpy(addr.sun_path, config.socketPath.c_str(),
                config.socketPath.size() + 1);

    listenFd = ::socket(AF_UNIX, SOCK_STREAM, 0);
    if (listenFd < 0) {
        warn("service: socket(): ", std::strerror(errno));
        return false;
    }
    // A stale socket file from a dead daemon would make bind fail
    // forever; unlinking is safe because a *live* daemon would still
    // own the listening inode.
    ::unlink(config.socketPath.c_str());
    if (::bind(listenFd, reinterpret_cast<sockaddr *>(&addr),
               sizeof(addr)) != 0 ||
        ::listen(listenFd, 64) != 0) {
        warn("service: cannot listen on '", config.socketPath,
             "': ", std::strerror(errno));
        ::close(listenFd);
        listenFd = -1;
        return false;
    }
    return true;
}

/**
 * Bind the optional loopback TCP listener. Everything past accept()
 * is transport-agnostic — TCP clients get the same Conn, the same
 * reader loop, the same admission path — so this is the whole of
 * the TCP support on the server side.
 */
bool
ExperimentService::Impl::bindTcp()
{
    tcpListenFd = ::socket(AF_INET, SOCK_STREAM, 0);
    if (tcpListenFd < 0) {
        warn("service: tcp socket(): ", std::strerror(errno));
        return false;
    }
    int one = 1;
    ::setsockopt(tcpListenFd, SOL_SOCKET, SO_REUSEADDR, &one,
                 sizeof(one));
    sockaddr_in addr{};
    addr.sin_family = AF_INET;
    addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
    addr.sin_port = htons(uint16_t(config.tcpPort));
    if (::bind(tcpListenFd, reinterpret_cast<sockaddr *>(&addr),
               sizeof(addr)) != 0 ||
        ::listen(tcpListenFd, 64) != 0) {
        warn("service: cannot listen on 127.0.0.1:", config.tcpPort,
             ": ", std::strerror(errno));
        ::close(tcpListenFd);
        tcpListenFd = -1;
        return false;
    }
    sockaddr_in bound{};
    socklen_t len = sizeof(bound);
    if (::getsockname(tcpListenFd,
                      reinterpret_cast<sockaddr *>(&bound),
                      &len) == 0)
        boundTcpPort = int(ntohs(bound.sin_port));
    return true;
}

void
ExperimentService::Impl::acceptFrom(int listenerFd)
{
    int fd = ::accept(listenerFd, nullptr, nullptr);
    if (fd < 0)
        return;
    auto conn = std::make_shared<Conn>();
    conn->fd = fd;
    conn->client = "c" + std::to_string(connCounter.fetch_add(1) + 1);
    metrics::count("service.connections");
    if (config.verbose)
        warn("service: accepted ", conn->client);
    conn->reader = std::thread([this, conn] { readerLoop(conn); });
    std::lock_guard<std::mutex> lock(connsMu);
    // Reap connections whose readers already finished so a
    // long-lived daemon doesn't accumulate one zombie thread
    // object per historical client.
    for (auto it = conns.begin(); it != conns.end();) {
        if ((*it)->readerDone.load(std::memory_order_acquire)) {
            (*it)->reader.join();
            it = conns.erase(it);
        } else {
            ++it;
        }
    }
    conns.push_back(std::move(conn));
}

void
ExperimentService::Impl::acceptLoop()
{
    while (running.load(std::memory_order_acquire)) {
        pollfd pfds[2];
        nfds_t nfds = 0;
        pfds[nfds++] = {listenFd, POLLIN, 0};
        if (tcpListenFd >= 0)
            pfds[nfds++] = {tcpListenFd, POLLIN, 0};
        int pr = ::poll(pfds, nfds, 100);
        if (pr <= 0)
            continue;
        for (nfds_t i = 0; i < nfds; ++i)
            if (pfds[i].revents & POLLIN)
                acceptFrom(pfds[i].fd);
    }
}

void
ExperimentService::Impl::readerLoop(const std::shared_ptr<Conn> &conn)
{
    std::string buf;
    bool discarding = false;
    char chunk[4096];
    for (;;) {
        ssize_t n = ::read(conn->fd, chunk, sizeof(chunk));
        if (n < 0 && errno == EINTR)
            continue;
        if (n <= 0)
            break;
        size_t start = 0;
        for (ssize_t i = 0; i < n; ++i) {
            if (chunk[i] != '\n')
                continue;
            if (discarding) {
                // Tail of an oversized line: drop it and resume
                // normal framing at the next byte.
                discarding = false;
            } else {
                buf.append(chunk + start, size_t(i) - start);
                handleLine(conn, buf);
            }
            buf.clear();
            start = size_t(i) + 1;
        }
        if (!discarding) {
            buf.append(chunk + start, size_t(n) - start);
            if (buf.size() > kMaxRequestBytes) {
                metrics::count("service.oversized_lines");
                conn->write(renderRejected(
                    "", RejectReason::BadRequest,
                    "request line exceeds " +
                        std::to_string(kMaxRequestBytes) +
                        " bytes"));
                buf.clear();
                discarding = true;
            }
        }
    }
    // A request line truncated by the disconnect is dropped, not
    // parsed — half a request must not execute.
    conn->open.store(false, std::memory_order_release);
    cancelConnection(*conn, "client disconnected");
    if (config.verbose)
        warn("service: ", conn->client, " disconnected");
    conn->readerDone.store(true, std::memory_order_release);
}

// ---------------------------------------------------------------
// Request handling (reader thread)
// ---------------------------------------------------------------

void
ExperimentService::Impl::handleLine(const std::shared_ptr<Conn> &conn,
                                    const std::string &line)
{
    if (line.empty() ||
        line.find_first_not_of(" \t\r") == std::string::npos)
        return; // blank keep-alive line
    Request req;
    std::string error;
    if (!parseRequest(line, req, error)) {
        metrics::count("service.bad_requests");
        conn->write(
            renderRejected(req.id, RejectReason::BadRequest, error));
        return;
    }
    switch (req.op) {
    case Op::Ping:
        conn->write(renderPong());
        return;
    case Op::Stats:
        handleStats(conn, req);
        return;
    case Op::Cancel:
        handleCancel(conn, req);
        return;
    case Op::Hello:
        handleHello(conn, req);
        return;
    case Op::Figure:
    case Op::Sim:
    case Op::Batch:
        handleWork(conn, req);
        return;
    }
}

void
ExperimentService::Impl::handleHello(const std::shared_ptr<Conn> &conn,
                                     const Request &req)
{
    // The parser already bounded the weight to [1, kMaxHelloWeight];
    // the server's own policy ceiling is the second clamp, so an
    // operator can cap how lopsided clients may make the rounds.
    uint32_t w =
        std::min<uint32_t>(req.weight, admission.policy().maxWeight);
    w = std::max<uint32_t>(1, w);
    {
        std::lock_guard<std::mutex> lock(queueMu);
        queues[0].setWeight(conn->client, w);
        queues[1].setWeight(conn->client, w);
    }
    metrics::countLabeled("service.hello", conn->client, 1);
    conn->write(renderDone(req.id, "hello", 0, 0, 0));
}

void
ExperimentService::Impl::handleStats(const std::shared_ptr<Conn> &conn,
                                     const Request &req)
{
    // One JSON object: the controller's per-client accounting, live
    // queue depths, and the full metrics registry (PR 5) embedded as
    // its own sub-object. Rendered inline on the reader thread so
    // stats stay available while every worker is busy.
    std::ostringstream os;
    os << "{\"clients\":{";
    bool firstClient = true;
    for (const auto &[client, cs] : admission.snapshot()) {
        if (!firstClient)
            os << ",";
        firstClient = false;
        os << "\"" << metrics::jsonEscape(client) << "\":{"
           << "\"admitted\":" << cs.admitted
           << ",\"rejected_overload\":" << cs.rejectedOverload
           << ",\"rejected_quota\":" << cs.rejectedQuota
           << ",\"served\":" << cs.served
           << ",\"failed\":" << cs.failed
           << ",\"in_flight\":" << cs.inFlight << "}";
    }
    os << "},\"queue\":{\"warm\":" << admission.queueDepth(Lane::Warm)
       << ",\"cold\":" << admission.queueDepth(Lane::Cold) << "}";
    {
        std::lock_guard<std::mutex> lock(figureCacheMu);
        os << ",\"figure_cache\":" << figureCache.size();
    }
    os << ",\"sim_flights\":" << ctx.simFlightsInFlight();
    os << ",\"metrics\":"
       << metrics::Registry::global().snapshot().renderJson() << "}";
    conn->write(renderStats(req.id, os.str()));
}

void
ExperimentService::Impl::handleCancel(
    const std::shared_ptr<Conn> &conn, const Request &req)
{
    bool found = false;
    {
        std::lock_guard<std::mutex> lock(inflightMu);
        auto it = inflight.find({conn->client, req.target});
        if (it != inflight.end()) {
            found = true;
            it->second.token->cancel("cancel: request '" +
                                     req.target +
                                     "' cancelled by client");
        }
    }
    if (found) {
        metrics::count("service.cancels");
        conn->write(renderDone(req.id, "cancel", 0, 0, 0));
    } else {
        conn->write(renderRejected(
            req.id, RejectReason::BadRequest,
            "no in-flight request '" + req.target + "'"));
    }
}

bool
ExperimentService::Impl::figureWarm(const std::string &id)
{
    std::lock_guard<std::mutex> lock(figureCacheMu);
    return figureCache.count(id) != 0;
}

void
ExperimentService::Impl::handleWork(const std::shared_ptr<Conn> &conn,
                                    const Request &req)
{
    Task task;
    task.conn = conn;
    task.id = req.id;
    task.op = req.op;

    if (req.op == Op::Figure) {
        task.figure = driver::findFigure(req.figure);
        if (!task.figure) {
            conn->write(renderRejected(
                req.id, RejectReason::BadRequest,
                "unknown figure '" + req.figure + "'"));
            return;
        }
        task.lane = figureWarm(req.figure) ? Lane::Warm : Lane::Cold;
    } else {
        auto &reg = core::Registry::instance();
        if (!reg.has(req.workload)) {
            conn->write(renderRejected(
                req.id, RejectReason::BadRequest,
                "unknown workload '" + req.workload + "'"));
            return;
        }
        int versions = reg.create(req.workload)->gpuVersions();
        if (versions < 1) {
            conn->write(renderRejected(
                req.id, RejectReason::BadRequest,
                "workload '" + req.workload +
                    "' has no GPU implementation"));
            return;
        }
        if (req.version > versions) {
            conn->write(renderRejected(
                req.id, RejectReason::BadRequest,
                "workload '" + req.workload + "' has " +
                    std::to_string(versions) + " version(s)"));
            return;
        }
        task.workload = req.workload;
        task.scale = req.scale;
        task.version = req.version;
        if (req.op == Op::Batch) {
            // A batch rides the warm lane only when EVERY point is
            // already served from cache: one cold point would put a
            // simulation on the warm workers and break the isolation
            // property the smoke test pins.
            task.sweep = req.sweep;
            bool allWarm = true;
            for (const auto &cfg : task.sweep)
                if (!ctx.gpuStatsWarm(req.workload, req.scale,
                                      req.version, cfg)) {
                    allWarm = false;
                    break;
                }
            task.lane = allWarm ? Lane::Warm : Lane::Cold;
        } else {
            task.simConfig = req.config;
            task.lane = ctx.gpuStatsWarm(req.workload, req.scale,
                                         req.version, req.config)
                            ? Lane::Warm
                            : Lane::Cold;
        }
    }

    // One live request per (client, id): a reused id would make
    // cancel and response routing ambiguous.
    {
        std::lock_guard<std::mutex> lock(inflightMu);
        if (inflight.count({conn->client, req.id})) {
            conn->write(renderRejected(
                req.id, RejectReason::BadRequest,
                "request id '" + req.id + "' already in flight"));
            return;
        }
    }

    switch (admission.admit(conn->client, task.lane)) {
    case Verdict::RejectOverload:
        conn->write(renderRejected(req.id, RejectReason::Overload,
                                   std::string(laneName(task.lane)) +
                                       " queue is full"));
        return;
    case Verdict::RejectQuota:
        conn->write(renderRejected(
            req.id, RejectReason::Quota,
            "client has " +
                std::to_string(admission.policy().perClientInFlight) +
                " requests in flight"));
        return;
    case Verdict::Admit:
        break;
    }

    task.token = std::make_shared<support::CancelToken>();
    task.accepted = Clock::now();
    double deadlineMs = req.deadlineMs > 0.0
                            ? req.deadlineMs
                            : config.defaultDeadlineMs;
    {
        std::lock_guard<std::mutex> lock(inflightMu);
        InFlight inf;
        inf.token = task.token;
        if (deadlineMs > 0.0) {
            inf.hasDeadline = true;
            inf.deadline =
                task.accepted +
                std::chrono::microseconds(int64_t(deadlineMs * 1e3));
        }
        inflight.emplace(std::make_pair(conn->client, req.id),
                         std::move(inf));
    }
    conn->write(renderAccepted(req.id, laneName(task.lane)));
    {
        std::lock_guard<std::mutex> lock(queueMu);
        queues[task.lane == Lane::Warm ? 0 : 1].push(
            conn->client, std::move(task));
    }
    queueCv.notify_all();
}

// ---------------------------------------------------------------
// Lane workers
// ---------------------------------------------------------------

void
ExperimentService::Impl::workerLoop(Lane lane)
{
    size_t qi = lane == Lane::Warm ? 0 : 1;
    for (;;) {
        Task task;
        {
            std::unique_lock<std::mutex> lock(queueMu);
            queueCv.wait(lock, [&] {
                return !queues[qi].empty() ||
                       !running.load(std::memory_order_acquire);
            });
            if (queues[qi].empty()) {
                if (!running.load(std::memory_order_acquire))
                    return;
                continue;
            }
            queues[qi].pop(task);
        }
        admission.started(lane);
        execute(task);
    }
}

std::string
ExperimentService::Impl::figureText(const driver::FigureDef &def)
{
    {
        std::lock_guard<std::mutex> lock(figureCacheMu);
        auto it = figureCache.find(def.id);
        if (it != figureCache.end()) {
            metrics::count("service.figure_cache_hits");
            return it->second;
        }
    }
    std::string text = driver::buildFigure(def, ctx);
    std::lock_guard<std::mutex> lock(figureCacheMu);
    figureCache.emplace(def.id, text);
    return text;
}

void
ExperimentService::Impl::streamPayload(Task &task,
                                       const std::string &payload,
                                       bool coalesced)
{
    uint64_t seq = 0;
    for (size_t off = 0; off < payload.size(); off += kChunkBytes) {
        if (!task.conn->write(renderChunk(
                task.id, seq,
                std::string_view(payload).substr(off, kChunkBytes))))
            return; // client gone; finish() still runs in execute()
        ++seq;
    }
    uint64_t wallUs = elapsedUs(task.accepted, Clock::now());
    task.conn->write(renderDone(task.id, laneName(task.lane), seq,
                                payload.size(), wallUs, coalesced));
    metrics::observeLabeled("service.latency_us",
                            task.conn->client + "/" +
                                laneName(task.lane),
                            wallUs);
}

void
ExperimentService::Impl::finishError(Task &task,
                                     const std::string &cls,
                                     const std::string &message)
{
    task.conn->write(renderErrorResponse(task.id, cls, message));
    metrics::countLabeled("service.errors",
                          task.conn->client + "/" + cls, 1);
}

/**
 * Compute (or join) the serialized KernelStats for one sim point,
 * under single-flight coalescing. Exactly one concurrent caller per
 * (workload, scale, version, fingerprint) key — the LEADER — runs
 * the simulation; everyone else FOLLOWS the leader's flight and gets
 * the same bytes, or the leader's error class if it fails. A
 * follower abandoning the wait (its own cancel/deadline) never
 * disturbs the leader. Returns true and fills @p payload on success;
 * false and fills @p errCls / @p errMsg otherwise. @p coalesced is
 * set iff the result came from another request's execution.
 */
bool
ExperimentService::Impl::simPayload(const std::string &workload,
                                    core::Scale scale, int version,
                                    const gpusim::SimConfig &config_,
                                    support::CancelToken *token,
                                    std::string &payload,
                                    std::string &errCls,
                                    std::string &errMsg,
                                    bool &coalesced)
{
    bool leader = false;
    auto flight =
        ctx.simFlightJoin(workload, scale, version, config_, leader);
    if (leader) {
        metrics::count("service.coalesce.leaders");
        coalesced = false;
        bool ok = false;
        try {
            support::CancelScope scope(token);
            payload = gpusim::serializeKernelStats(
                ctx.gpuStats(workload, scale, version, config_));
            ok = true;
        } catch (const support::CancelledError &e) {
            errCls = cancelClass(e.what());
            errMsg = e.what();
        } catch (...) {
            auto c = driver::classifyCurrentException();
            errCls = driver::errorClassName(c.cls);
            errMsg = c.message;
        }
        // Publish however it ended — a leader that fails (or is
        // cancelled) still wakes its followers with the error class,
        // rather than stranding them until their own deadlines.
        ctx.simFlightComplete(flight, ok, errCls, errMsg, payload);
        return ok;
    }
    metrics::count("service.coalesce.followers");
    coalesced = true;
    std::unique_lock<std::mutex> lock(flight->mu);
    while (!flight->done) {
        if (token && token->cancelled()) {
            errCls = cancelClass(token->reason());
            errMsg = token->reason();
            return false;
        }
        // Bounded wait so the follower's own cancellation is polled;
        // the leader's completion notify_all cuts the wait short.
        flight->cv.wait_for(lock, std::chrono::milliseconds(5));
    }
    if (flight->ok) {
        payload = flight->payload;
        return true;
    }
    errCls = flight->errorClass;
    errMsg = flight->message;
    return false;
}

void
ExperimentService::Impl::execute(Task &task)
{
    auto t0 = Clock::now();
    metrics::observeLabeled("service.queue_wait_us",
                            laneName(task.lane),
                            elapsedUs(task.accepted, t0));
    if (task.op == Op::Batch) {
        executeBatch(task, t0);
        return;
    }
    bool served = false;
    bool coalesced = false;
    std::string spanWhat =
        task.op == Op::Figure ? task.figure->id : task.workload;
    std::string payload, errCls, errMsg;
    // Cancelled while queued (deadline, client cancel, teardown):
    // answer without touching the Context at all.
    if (task.token->cancelled()) {
        errCls = cancelClass(task.token->reason());
        errMsg = task.token->reason();
    } else if (task.op == Op::Figure) {
        support::CancelScope scope(task.token.get());
        try {
            payload = figureText(*task.figure);
            served = true;
        } catch (const support::CancelledError &e) {
            errCls = cancelClass(e.what());
            errMsg = e.what();
        } catch (...) {
            auto c = driver::classifyCurrentException();
            errCls = driver::errorClassName(c.cls);
            errMsg = c.message;
        }
    } else {
        served = simPayload(task.workload, task.scale, task.version,
                            task.simConfig, task.token.get(), payload,
                            errCls, errMsg, coalesced);
    }
    // Settle the accounting BEFORE the terminal response goes out: a
    // client that has seen "done"/"error" may immediately ask /stats
    // and must find this request counted as finished, not in flight.
    eraseInflight(*task.conn, task.id);
    admission.finish(task.conn->client, task.lane, served);
    if (served)
        streamPayload(task, payload, coalesced);
    else
        finishError(task, errCls, errMsg);
    if (auto *tc = driver::TraceCollector::active())
        tc->record("service",
                   task.op == Op::Figure ? "figure" : "sim",
                   driver::TraceArgs()
                       .str("client", task.conn->client)
                       .str("what", spanWhat)
                       .str("lane", laneName(task.lane))
                       .str("outcome", served ? "served" : "failed")
                       .json(),
                   t0, Clock::now());
    if (config.verbose)
        warn("service: ", task.conn->client, "/", task.id, " ",
             spanWhat, " [", laneName(task.lane), "] ",
             served ? "served" : "failed");
}

/**
 * One admitted batch: stream every sweep point's result (served
 * header + chunks, or error header) in request order, then one
 * terminal "done". Chunk seq numbering continues across points, so
 * the client reassembles per-point payloads by splitting at the
 * point headers. A per-point failure (bad config the model refuses,
 * sim error) is reported on its point line and the batch CONTINUES;
 * cancellation/deadline/shutdown of the batch's own token aborts the
 * remainder with a terminal "error". Each point goes through the
 * same single-flight join as a standalone sim request, so a batch
 * overlapping other clients' requests still costs one execution per
 * distinct config.
 */
void
ExperimentService::Impl::executeBatch(Task &task, Clock::time_point t0)
{
    uint64_t seq = 0, totalBytes = 0;
    size_t pointsServed = 0, pointsFailed = 0;
    bool aborted = false;
    std::string abortCls, abortMsg;
    for (size_t i = 0; i < task.sweep.size(); ++i) {
        if (task.token->cancelled()) {
            aborted = true;
            abortCls = cancelClass(task.token->reason());
            abortMsg = task.token->reason();
            break;
        }
        std::string payload, errCls, errMsg;
        bool coalesced = false;
        bool ok = simPayload(task.workload, task.scale, task.version,
                             task.sweep[i], task.token.get(), payload,
                             errCls, errMsg, coalesced);
        if (!ok && task.token->cancelled()) {
            // The batch itself was cancelled mid-point — terminal,
            // not a per-point error.
            aborted = true;
            abortCls = errCls;
            abortMsg = errMsg;
            break;
        }
        if (!ok) {
            ++pointsFailed;
            if (!task.conn->write(
                    renderPointError(task.id, i, errCls, errMsg)))
                break; // client gone; settle below
            continue;
        }
        if (coalesced)
            metrics::count("service.batch.coalesced_points");
        if (!task.conn->write(renderPointServed(
                task.id, i, payload.size(), coalesced)))
            break;
        bool connLost = false;
        for (size_t off = 0; off < payload.size();
             off += kChunkBytes) {
            if (!task.conn->write(renderChunk(
                    task.id, seq,
                    std::string_view(payload).substr(off,
                                                     kChunkBytes)))) {
                connLost = true;
                break;
            }
            ++seq;
        }
        if (connLost)
            break;
        totalBytes += payload.size();
        ++pointsServed;
    }
    // Served = the whole sweep was walked (individual point errors
    // included — the client saw a verdict for every point). Settle
    // before the terminal line, same as single requests.
    bool served =
        !aborted && pointsServed + pointsFailed == task.sweep.size();
    eraseInflight(*task.conn, task.id);
    admission.finish(task.conn->client, task.lane, served);
    if (aborted) {
        finishError(task, abortCls, abortMsg);
    } else {
        uint64_t wallUs = elapsedUs(task.accepted, Clock::now());
        task.conn->write(renderDone(task.id, laneName(task.lane), seq,
                                    totalBytes, wallUs));
        metrics::observeLabeled("service.latency_us",
                                task.conn->client + "/" +
                                    laneName(task.lane),
                                wallUs);
    }
    metrics::observe("service.batch.points", double(task.sweep.size()));
    if (auto *tc = driver::TraceCollector::active())
        tc->record("service", "batch",
                   driver::TraceArgs()
                       .str("client", task.conn->client)
                       .str("what", task.workload)
                       .str("lane", laneName(task.lane))
                       .str("outcome", served ? "served" : "failed")
                       .json(),
                   t0, Clock::now());
    if (config.verbose)
        warn("service: ", task.conn->client, "/", task.id, " batch ",
             task.workload, " [", laneName(task.lane), "] ",
             served ? "served" : "failed", " (", pointsServed, "/",
             task.sweep.size(), " points)");
}

// ---------------------------------------------------------------
// Cancellation bookkeeping
// ---------------------------------------------------------------

void
ExperimentService::Impl::eraseInflight(const Conn &conn,
                                       const std::string &id)
{
    std::lock_guard<std::mutex> lock(inflightMu);
    inflight.erase({conn.client, id});
}

void
ExperimentService::Impl::cancelConnection(const Conn &conn,
                                          const std::string &why)
{
    std::lock_guard<std::mutex> lock(inflightMu);
    for (auto &[key, inf] : inflight)
        if (key.first == conn.client)
            inf.token->cancel("cancelled: " + why);
}

void
ExperimentService::Impl::watchdogLoop()
{
    while (running.load(std::memory_order_acquire)) {
        std::this_thread::sleep_for(std::chrono::milliseconds(10));
        auto now = Clock::now();
        std::lock_guard<std::mutex> lock(inflightMu);
        for (auto &[key, inf] : inflight) {
            if (!inf.hasDeadline || inf.token->cancelled() ||
                now <= inf.deadline)
                continue;
            // Like the executor watchdog, the reason quotes the
            // request key, not the measured elapsed time, so error
            // messages stay deterministic.
            inf.token->cancel("deadline: request '" + key.second +
                              "' exceeded its deadline");
            metrics::count("service.deadline_cancels");
        }
    }
}

// ---------------------------------------------------------------
// Public surface
// ---------------------------------------------------------------

ExperimentService::ExperimentService(const ServiceConfig &config)
    : impl(std::make_unique<Impl>(config))
{
}

ExperimentService::~ExperimentService()
{
    stop();
}

bool
ExperimentService::start()
{
    if (impl->running.load())
        return true;
    if (!impl->bind())
        return false;
    if (impl->config.tcpPort >= 0 && !impl->bindTcp()) {
        ::close(impl->listenFd);
        impl->listenFd = -1;
        ::unlink(impl->config.socketPath.c_str());
        return false;
    }
    impl->running.store(true, std::memory_order_release);
    impl->acceptThread =
        std::thread([this] { impl->acceptLoop(); });
    impl->watchdogThread =
        std::thread([this] { impl->watchdogLoop(); });
    int warm = std::max(1, impl->config.warmWorkers);
    int cold = std::max(1, impl->config.coldWorkers);
    for (int i = 0; i < warm; ++i)
        impl->workers.emplace_back(
            [this] { impl->workerLoop(Lane::Warm); });
    for (int i = 0; i < cold; ++i)
        impl->workers.emplace_back(
            [this] { impl->workerLoop(Lane::Cold); });
    return true;
}

void
ExperimentService::stop()
{
    if (!impl->running.exchange(false))
        return;
    // Order matters: stop intake first (accept loop sees running ==
    // false), then cancel outstanding work so queued tasks drain as
    // immediate "shutdown" errors, then wake and join the workers,
    // then unblock every connection reader.
    if (impl->acceptThread.joinable())
        impl->acceptThread.join();
    if (impl->listenFd >= 0) {
        ::close(impl->listenFd);
        impl->listenFd = -1;
        ::unlink(impl->config.socketPath.c_str());
    }
    if (impl->tcpListenFd >= 0) {
        ::close(impl->tcpListenFd);
        impl->tcpListenFd = -1;
    }
    {
        std::lock_guard<std::mutex> lock(impl->inflightMu);
        for (auto &[key, inf] : impl->inflight)
            inf.token->cancel("shutdown: service stopping");
    }
    {
        // The workers' wait predicate reads `running`, which was
        // flipped outside queueMu; notifying while holding the mutex
        // orders the flip with the wait so no worker can check the
        // predicate, miss the flip, and then block past the notify.
        std::lock_guard<std::mutex> lock(impl->queueMu);
        impl->queueCv.notify_all();
    }
    for (auto &w : impl->workers)
        w.join();
    impl->workers.clear();
    if (impl->watchdogThread.joinable())
        impl->watchdogThread.join();
    std::vector<std::shared_ptr<Impl::Conn>> conns;
    {
        std::lock_guard<std::mutex> lock(impl->connsMu);
        conns.swap(impl->conns);
    }
    for (auto &c : conns) {
        ::shutdown(c->fd, SHUT_RDWR);
        if (c->reader.joinable())
            c->reader.join();
        // ~Conn closes the fd once queued Tasks release their refs.
    }
}

bool
ExperimentService::running() const
{
    return impl->running.load(std::memory_order_acquire);
}

const ServiceConfig &
ExperimentService::config() const
{
    return impl->config;
}

uint64_t
ExperimentService::connectionsAccepted() const
{
    return impl->connCounter.load();
}

int
ExperimentService::tcpPort() const
{
    return impl->boundTcpPort;
}

driver::Context &
ExperimentService::context()
{
    return impl->ctx;
}

AdmissionController &
ExperimentService::admission()
{
    return impl->admission;
}

} // namespace service
} // namespace rodinia
