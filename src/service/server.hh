/**
 * @file
 * The long-lived experiment service.
 *
 * ExperimentService turns the batch experiment driver into a daemon:
 * it listens on a Unix-domain stream socket (and, optionally, a
 * loopback TCP port sharing the same accept path) and serves figure,
 * simulation, batch-sweep, and stats requests from many concurrent
 * clients over the line-delimited JSON protocol
 * (service/protocol.hh), all sharing ONE warm driver::Context, ONE
 * ResultStore, and ONE work-stealing Executor — so the memoized
 * characterizations, recordings, and timing simulations that a
 * batch run pays for once are paid for once per daemon lifetime,
 * not once per client.
 *
 * Request path:
 *
 *   reader thread (per connection)
 *     -> parse + structural validation (bad input = per-request
 *        rejection, never a daemon abort; SimConfigs are clamped and
 *        checked at this boundary)
 *     -> lane classification: warm iff the result is already served
 *        from cache (figure text cache, gpuStats memo, or published
 *        store entry)
 *     -> admission control (per-client quota, per-lane queue cap;
 *        see service/admission.hh) -> "accepted" or "rejected"
 *     -> lane queue: per-client deficit-round-robin (WfqQueue), so
 *        under saturation each backlogged client's served share
 *        tracks its "hello" weight instead of its enqueue rate
 *   lane workers (dedicated warm + cold pools)
 *     -> single flight: identical in-flight cold sims (same
 *        workload/scale/version/config fingerprint — within one
 *        process that pins the recording's content hash too)
 *        coalesce onto ONE execution via the Context's flight
 *        registry; followers stream the leader's bytes with
 *        "coalesced":1 on their done line, a follower's cancel or
 *        deadline never disturbs the leader, and a leader failure
 *        propagates its error class to every follower
 *     -> execute under a per-request CancelToken (deadline watchdog
 *        + client cancel + connection teardown all cancel the same
 *        token, reusing the cooperative checkpoints threaded through
 *        the sim/sweep loops in PR 4)
 *     -> stream the payload back as "chunk" responses + "done";
 *        a batch streams per-point "point" headers with the chunk
 *        seq continuing across points, one admission unit total
 *
 * Isolation property (pinned by tests): warm requests are never
 * behind a cold simulation — they have their own queue, their own
 * workers, and a cold flood can reject other *cold* work at the
 * queue cap but cannot add latency to a warm hit beyond the warm
 * workers' own service time.
 *
 * stats/ping/cancel are served inline on the reader thread (they
 * are O(registry size) at most), so they stay responsive even when
 * every worker is busy.
 */

#ifndef RODINIA_SERVICE_SERVER_HH
#define RODINIA_SERVICE_SERVER_HH

#include <memory>
#include <string>

#include "service/admission.hh"

namespace rodinia {
namespace driver {
class Context;
}

namespace service {

struct ServiceConfig
{
    std::string socketPath;        //!< required
    std::string cacheDir = "bench_cache";
    bool cacheEnabled = true;
    int executorThreads = 0;       //!< 0 = hardware concurrency
    int coldWorkers = 2;           //!< cold-lane request workers
    int warmWorkers = 1;           //!< warm-lane request workers
    AdmissionPolicy admission;
    double defaultDeadlineMs = 0.0; //!< applied when a request sends
                                    //!< none; 0 = no deadline
    int tcpPort = -1;              //!< loopback TCP listener beside
                                   //!< the socket: -1 = off, 0 =
                                   //!< kernel-chosen ephemeral port
    bool verbose = false;          //!< per-request stderr log lines
};

class ExperimentService
{
  public:
    explicit ExperimentService(const ServiceConfig &config);
    ~ExperimentService(); //!< stops if still running

    ExperimentService(const ExperimentService &) = delete;
    ExperimentService &operator=(const ExperimentService &) = delete;

    /**
     * Bind the socket (unlinking a stale file from a previous run),
     * start the accept loop, lane workers, and deadline watchdog.
     * @return false with a warn() if the socket cannot be bound.
     */
    bool start();

    /**
     * Stop accepting, cancel every queued and in-flight request
     * ("service shutting down"), close connections, join all
     * threads. Idempotent.
     */
    void stop();

    bool running() const;
    const ServiceConfig &config() const;

    /** Accepted connections so far (client ids are "c<N>"). */
    uint64_t connectionsAccepted() const;

    /** Port the TCP listener actually bound (useful when the config
     *  asked for 0 = ephemeral); 0 when the listener is disabled. */
    int tcpPort() const;

    driver::Context &context();
    AdmissionController &admission();

  private:
    struct Impl;
    std::unique_ptr<Impl> impl;
};

} // namespace service
} // namespace rodinia

#endif // RODINIA_SERVICE_SERVER_HH
