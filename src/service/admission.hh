/**
 * @file
 * Admission control and per-client fairness for the experiment
 * service.
 *
 * The daemon sits many clients in front of one warm Context and one
 * Executor, so the scarce resources are (a) queue slots and (b) cold
 * simulation workers. Admission control keeps one greedy or broken
 * client from consuming either:
 *
 *  - Two priority lanes. Requests whose results are already warm
 *    (figure cache, gpuStats memo, or a published store entry) go to
 *    the warm lane, served by its own worker(s); everything else is
 *    cold. A cold-sim flood therefore queues behind other cold work
 *    only — warm hits never wait on a simulation.
 *
 *  - Bounded queues. Each lane's queue has a hard depth cap; a
 *    request that would exceed it is REJECTED(overload) immediately
 *    (fail-fast backpressure) instead of growing an unbounded
 *    backlog whose tail latency nobody can meet.
 *
 *  - Per-client in-flight quotas. A client may have at most N
 *    requests admitted-but-unfinished across both lanes; excess
 *    earns REJECTED(quota). This is what makes the queue cap fair:
 *    without it, one client could legally fill every slot.
 *
 * Every verdict is counted per client and surfaced through the
 * metrics registry (service.admitted / service.rejected, labeled by
 * client and lane) and the controller's own accounting snapshot,
 * which the /stats request type reports.
 */

#ifndef RODINIA_SERVICE_ADMISSION_HH
#define RODINIA_SERVICE_ADMISSION_HH

#include <cstdint>
#include <map>
#include <mutex>
#include <string>
#include <vector>

namespace rodinia {
namespace service {

enum class Lane { Warm, Cold };

const char *laneName(Lane lane);

/** Tunable limits (defaults sized for a handful of clients). */
struct AdmissionPolicy
{
    size_t maxColdQueue = 64;  //!< queued-but-unstarted cold requests
    size_t maxWarmQueue = 256; //!< warm hits are cheap; deeper cap
    size_t perClientInFlight = 16; //!< admitted and not yet finished
};

/** Outcome of one admission decision. */
enum class Verdict { Admit, RejectOverload, RejectQuota };

class AdmissionController
{
  public:
    explicit AdmissionController(const AdmissionPolicy &policy);

    /**
     * Decide one request. Admit reserves a queue slot in @p lane and
     * one in-flight unit for @p client, released by finish() — the
     * caller must guarantee exactly one finish() per Admit however
     * the request ends (served, errored, cancelled, connection
     * dropped).
     */
    Verdict admit(const std::string &client, Lane lane);

    /** The request left its queue — began executing, or was dropped
     *  (cancelled, connection gone) before starting. Either way the
     *  lane's queue slot frees up. */
    void started(Lane lane);

    /** The request finished (any outcome). */
    void finish(const std::string &client, Lane lane, bool served);

    size_t queueDepth(Lane lane) const;

    /** Accounting for one client, reported by /stats. */
    struct ClientStats
    {
        uint64_t admitted = 0;
        uint64_t rejectedOverload = 0;
        uint64_t rejectedQuota = 0;
        uint64_t served = 0; //!< finished successfully
        uint64_t failed = 0; //!< finished any other way
        uint64_t inFlight = 0;
    };

    /** Per-client accounting, keyed by client id (sorted). */
    std::map<std::string, ClientStats> snapshot() const;

    const AdmissionPolicy &policy() const { return policy_; }

  private:
    AdmissionPolicy policy_;
    mutable std::mutex mu_;
    size_t queued_[2] = {0, 0};  //!< per-lane queued (not started)
    std::map<std::string, ClientStats> clients_;
};

} // namespace service
} // namespace rodinia

#endif // RODINIA_SERVICE_ADMISSION_HH
