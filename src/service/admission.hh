/**
 * @file
 * Admission control and per-client fairness for the experiment
 * service.
 *
 * The daemon sits many clients in front of one warm Context and one
 * Executor, so the scarce resources are (a) queue slots and (b) cold
 * simulation workers. Admission control keeps one greedy or broken
 * client from consuming either:
 *
 *  - Two priority lanes. Requests whose results are already warm
 *    (figure cache, gpuStats memo, or a published store entry) go to
 *    the warm lane, served by its own worker(s); everything else is
 *    cold. A cold-sim flood therefore queues behind other cold work
 *    only — warm hits never wait on a simulation.
 *
 *  - Bounded queues. Each lane's queue has a hard depth cap; a
 *    request that would exceed it is REJECTED(overload) immediately
 *    (fail-fast backpressure) instead of growing an unbounded
 *    backlog whose tail latency nobody can meet.
 *
 *  - Per-client in-flight quotas. A client may have at most N
 *    requests admitted-but-unfinished across both lanes; excess
 *    earns REJECTED(quota). This is what makes the queue cap fair:
 *    without it, one client could legally fill every slot.
 *
 *  - Weighted fair queueing WITHIN each lane (WfqQueue below). The
 *    old FIFO lane queues served admitted requests in arrival
 *    order, so a client that managed to enqueue a deep backlog
 *    still monopolized the workers until it drained. Each lane's
 *    queue is now per-client deficit round-robin: every client owns
 *    its own sub-queue, rounds visit backlogged clients in order,
 *    and a client is served up to quantum x weight items per round
 *    — so under saturation the served-work ratio between two
 *    backlogged clients converges to their weight ratio, and a
 *    weight-1 client is structurally guaranteed at least quantum
 *    item(s) per round no matter how heavy the competing flood.
 *    Weights arrive via the protocol's "hello" op, clamped to
 *    AdmissionPolicy::maxWeight.
 *
 * Every verdict is counted per client and surfaced through the
 * metrics registry (service.admitted / service.rejected, labeled by
 * client and lane) and the controller's own accounting snapshot,
 * which the /stats request type reports.
 */

#ifndef RODINIA_SERVICE_ADMISSION_HH
#define RODINIA_SERVICE_ADMISSION_HH

#include <algorithm>
#include <cstdint>
#include <deque>
#include <map>
#include <mutex>
#include <string>
#include <vector>

namespace rodinia {
namespace service {

enum class Lane { Warm, Cold };

const char *laneName(Lane lane);

/** Tunable limits (defaults sized for a handful of clients). */
struct AdmissionPolicy
{
    size_t maxColdQueue = 64;  //!< queued-but-unstarted cold requests
    size_t maxWarmQueue = 256; //!< warm hits are cheap; deeper cap
    size_t perClientInFlight = 16; //!< admitted and not yet finished
    uint32_t maxWeight = 64;   //!< WFQ weight ceiling ("hello" clamp)
    uint32_t wfqQuantum = 1;   //!< items a weight-1 client gets/round
};

/** Outcome of one admission decision. */
enum class Verdict { Admit, RejectOverload, RejectQuota };

class AdmissionController
{
  public:
    explicit AdmissionController(const AdmissionPolicy &policy);

    /**
     * Decide one request. Admit reserves a queue slot in @p lane and
     * one in-flight unit for @p client, released by finish() — the
     * caller must guarantee exactly one finish() per Admit however
     * the request ends (served, errored, cancelled, connection
     * dropped).
     */
    Verdict admit(const std::string &client, Lane lane);

    /** The request left its queue — began executing, or was dropped
     *  (cancelled, connection gone) before starting. Either way the
     *  lane's queue slot frees up. */
    void started(Lane lane);

    /** The request finished (any outcome). */
    void finish(const std::string &client, Lane lane, bool served);

    size_t queueDepth(Lane lane) const;

    /** Accounting for one client, reported by /stats. */
    struct ClientStats
    {
        uint64_t admitted = 0;
        uint64_t rejectedOverload = 0;
        uint64_t rejectedQuota = 0;
        uint64_t served = 0; //!< finished successfully
        uint64_t failed = 0; //!< finished any other way
        uint64_t inFlight = 0;
    };

    /** Per-client accounting, keyed by client id (sorted). */
    std::map<std::string, ClientStats> snapshot() const;

    const AdmissionPolicy &policy() const { return policy_; }

  private:
    AdmissionPolicy policy_;
    mutable std::mutex mu_;
    size_t queued_[2] = {0, 0};  //!< per-lane queued (not started)
    std::map<std::string, ClientStats> clients_;
};

/**
 * Deficit-round-robin weighted fair queue: one per lane.
 *
 * Each client owns a FIFO sub-queue. Backlogged clients form a round
 * (joined at the tail, so a newcomer never barges mid-round). When a
 * client reaches the round's front it is granted quantum x weight
 * credits; pop() serves its items one per call until the credit runs
 * out or its sub-queue drains, then rotates it to the tail (credit
 * left over when the queue drains is forfeited — classic DRR, so an
 * idle client cannot bank service). With every client backlogged and
 * unit-cost items, one full round serves exactly quantum x weight
 * items per client — the fairness property the Wfq tests pin.
 *
 * Not internally synchronized: the server calls every method under
 * its queue mutex, and the property tests are single-threaded.
 */
template <typename T>
class WfqQueue
{
  public:
    explicit WfqQueue(uint32_t quantum = 1)
        : quantum_(quantum < 1 ? 1 : quantum)
    {
    }

    /** Set (or pre-declare) a client's weight; persists across idle
     *  periods. Takes effect the next time the client reaches the
     *  round front. Clamped to >= 1. */
    void setWeight(const std::string &client, uint32_t weight)
    {
        clients_[client].weight = std::max<uint32_t>(1, weight);
    }

    uint32_t weight(const std::string &client) const
    {
        auto it = clients_.find(client);
        return it == clients_.end() ? 1 : it->second.weight;
    }

    void push(const std::string &client, T item)
    {
        PerClient &pc = clients_[client];
        if (!pc.inRound) {
            pc.inRound = true;
            pc.fresh = true;
            pc.credit = 0;
            round_.push_back(client);
        }
        pc.items.push_back(std::move(item));
        ++size_;
    }

    /**
     * Serve one item under DRR order. Returns false when every
     * sub-queue is empty. @p client (optional) receives the served
     * client's id.
     */
    bool pop(T &out, std::string *client = nullptr)
    {
        while (!round_.empty()) {
            const std::string &front = round_.front();
            PerClient &pc = clients_[front];
            if (pc.fresh) {
                pc.credit += uint64_t(quantum_) * pc.weight;
                pc.fresh = false;
            }
            if (pc.credit >= 1 && !pc.items.empty()) {
                out = std::move(pc.items.front());
                pc.items.pop_front();
                pc.credit -= 1;
                --size_;
                if (client)
                    *client = front;
                if (pc.items.empty()) {
                    pc.inRound = false;
                    pc.credit = 0; // forfeit: no banking while idle
                    round_.pop_front();
                }
                return true;
            }
            // Credit exhausted: rotate to the round's tail and grant
            // a fresh allotment when it comes around again.
            pc.fresh = true;
            round_.push_back(front);
            round_.pop_front();
        }
        return false;
    }

    size_t size() const { return size_; }
    bool empty() const { return size_ == 0; }

  private:
    struct PerClient
    {
        std::deque<T> items;
        uint32_t weight = 1;
        uint64_t credit = 0;
        bool inRound = false;
        bool fresh = true; //!< grant credit on next round-front visit
    };

    uint32_t quantum_;
    std::map<std::string, PerClient> clients_;
    std::deque<std::string> round_; //!< backlogged clients, RR order
    size_t size_ = 0;
};

} // namespace service
} // namespace rodinia

#endif // RODINIA_SERVICE_ADMISSION_HH
