/**
 * @file
 * Client side of the experiment service protocol.
 *
 * ServiceClient owns one Unix-socket connection and speaks the
 * line-delimited JSON protocol: send*() methods render request
 * lines, readEvent() blocks for the next response line and decodes
 * it, and await() drives readEvent() until one request reaches a
 * terminal state, reassembling its streamed chunks into the full
 * payload. Responses for *other* in-flight requests that arrive
 * while awaiting are buffered and replayed to their own await()
 * calls, so a caller can pipeline many requests on one connection
 * and collect them in any order.
 *
 * The class is deliberately synchronous and single-threaded (one
 * load-generator client = one thread = one ServiceClient); it is not
 * thread-safe.
 */

#ifndef RODINIA_SERVICE_CLIENT_HH
#define RODINIA_SERVICE_CLIENT_HH

#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "service/protocol.hh"

namespace rodinia {
namespace service {

/** One decoded response line. */
struct Event
{
    enum class Type {
        Accepted,
        Rejected,
        Chunk,
        Point, //!< batch per-point header (served or error)
        Done,
        Error,
        Stats,
        Pong,
        /** Healthy connection, unintelligible line: unparseable
         *  JSON or a "type" this client does not know (e.g. from a
         *  newer daemon). await() skips these — one stray line must
         *  not be misreported as a lost connection. */
        Malformed,
        /** The socket actually closed or the read failed. */
        ConnectionLost,
    };

    Type type = Type::ConnectionLost;
    std::string id;      //!< request id ("" for pong)
    std::string lane;    //!< accepted/done
    std::string reason;  //!< rejected: overload|quota|bad-request
    std::string detail;  //!< rejected detail / error message
    std::string errorClass; //!< error responses / errored points
    std::string data;    //!< chunk data / stats payload
    uint64_t seq = 0;    //!< chunk sequence number
    uint64_t bytes = 0;  //!< done/served-point: payload bytes
    uint64_t wallUs = 0; //!< done: server-side wall time
    uint64_t pointIndex = 0; //!< point: sweep index
    bool pointOk = false;    //!< point: served (vs error)
    bool coalesced = false;  //!< done: result rode another
                             //!< request's execution (single flight)
};

/** Terminal outcome of one request, payload reassembled. */
struct Outcome
{
    enum class Status { Served, Rejected, Error, Lost };

    /** One batch sweep point's verdict (index = position). */
    struct Point
    {
        bool ok = false;
        bool coalesced = false; //!< rode another request's execution
        std::string errorClass; //!< when !ok
        std::string detail;     //!< when !ok
        std::string payload;    //!< this point's chunks, reassembled
    };

    Status status = Status::Lost;
    std::string lane;       //!< from accepted/done
    std::string reason;     //!< rejection reason
    std::string errorClass; //!< error class
    std::string detail;     //!< rejection detail / error message
    std::string payload;    //!< chunks concatenated in seq order
    std::vector<Point> points; //!< batch only, in sweep order
    bool coalesced = false; //!< done carried "coalesced":1
    uint64_t serverWallUs = 0;

    bool ok() const { return status == Status::Served; }
};

class ServiceClient
{
  public:
    ServiceClient() = default;
    ~ServiceClient();

    ServiceClient(const ServiceClient &) = delete;
    ServiceClient &operator=(const ServiceClient &) = delete;

    /**
     * Connect to the daemon's socket. Retries connect() for up to
     * @p timeoutMs (the daemon may still be binding), so tests and
     * the load generator can race daemon startup safely.
     */
    bool connect(const std::string &socketPath, int timeoutMs = 5000);

    /** Connect to the daemon's loopback TCP listener instead; same
     *  protocol, same retry window. */
    bool connectTcp(int port, int timeoutMs = 5000);

    bool connected() const { return fd_ >= 0; }
    void close();

    // ---- request senders (return false on a write error) --------

    bool sendPing();
    bool sendFigure(const std::string &id, const std::string &figure,
                    double deadlineMs = 0.0);
    /**
     * @param configJson the "config" object's JSON text ("{}" or ""
     *        for Table II defaults) — kept textual so the load
     *        generator can fuzz/construct configs directly
     */
    bool sendSim(const std::string &id, const std::string &workload,
                 const std::string &scale,
                 const std::string &configJson,
                 double deadlineMs = 0.0, int version = 0);
    /**
     * One batch request: @p sweep holds each point's config-object
     * JSON text ("{}" for Table II defaults), sent in order.
     */
    bool sendBatch(const std::string &id, const std::string &workload,
                   const std::string &scale,
                   const std::vector<std::string> &sweep,
                   double deadlineMs = 0.0, int version = 0);
    /** Declare this connection's WFQ weight (server clamps). */
    bool sendHello(const std::string &id, uint32_t weight);
    bool sendStats(const std::string &id);
    bool sendCancel(const std::string &id, const std::string &target);
    /** Raw bytes, no framing added — protocol fuzz tests only. */
    bool sendRaw(const std::string &bytes);

    /**
     * Block for the next response line (any request) and decode it.
     * Returns an Event of type ConnectionLost when the daemon hangs
     * up, and of type Malformed when a line arrives but cannot be
     * decoded (bad JSON or an unknown "type").
     */
    Event readEvent();

    /**
     * Drive readEvent() until request @p id reaches a terminal
     * response (done / rejected / error / connection lost),
     * buffering events for other requests. Chunks are reassembled
     * into Outcome::payload.
     */
    Outcome await(const std::string &id);

  private:
    bool writeAll(const std::string &bytes);
    bool readLine(std::string &line);

    int fd_ = -1;
    std::string rbuf_;
    /** Events received while awaiting a different id. */
    std::vector<Event> pending_;
    /** Chunks-so-far per request id. */
    std::map<std::string, std::string> partial_;
};

} // namespace service
} // namespace rodinia

#endif // RODINIA_SERVICE_CLIENT_HH
