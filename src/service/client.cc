#include "service/client.hh"

#include <netinet/in.h>
#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

#include <cerrno>
#include <chrono>
#include <cstring>
#include <thread>

#include "support/metrics.hh"

namespace rodinia {
namespace service {

using support::metrics::jsonEscape;

ServiceClient::~ServiceClient()
{
    close();
}

void
ServiceClient::close()
{
    if (fd_ >= 0) {
        ::close(fd_);
        fd_ = -1;
    }
}

bool
ServiceClient::connect(const std::string &socketPath, int timeoutMs)
{
    sockaddr_un addr{};
    addr.sun_family = AF_UNIX;
    if (socketPath.empty() ||
        socketPath.size() >= sizeof(addr.sun_path))
        return false;
    std::memcpy(addr.sun_path, socketPath.c_str(),
                socketPath.size() + 1);

    auto give_up = std::chrono::steady_clock::now() +
                   std::chrono::milliseconds(timeoutMs);
    for (;;) {
        int fd = ::socket(AF_UNIX, SOCK_STREAM, 0);
        if (fd < 0)
            return false;
        if (::connect(fd, reinterpret_cast<sockaddr *>(&addr),
                      sizeof(addr)) == 0) {
            fd_ = fd;
            return true;
        }
        ::close(fd);
        if (std::chrono::steady_clock::now() >= give_up)
            return false;
        std::this_thread::sleep_for(std::chrono::milliseconds(20));
    }
}

bool
ServiceClient::connectTcp(int port, int timeoutMs)
{
    if (port <= 0 || port > 65535)
        return false;
    sockaddr_in addr{};
    addr.sin_family = AF_INET;
    addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
    addr.sin_port = htons(uint16_t(port));

    auto give_up = std::chrono::steady_clock::now() +
                   std::chrono::milliseconds(timeoutMs);
    for (;;) {
        int fd = ::socket(AF_INET, SOCK_STREAM, 0);
        if (fd < 0)
            return false;
        if (::connect(fd, reinterpret_cast<sockaddr *>(&addr),
                      sizeof(addr)) == 0) {
            fd_ = fd;
            return true;
        }
        ::close(fd);
        if (std::chrono::steady_clock::now() >= give_up)
            return false;
        std::this_thread::sleep_for(std::chrono::milliseconds(20));
    }
}

bool
ServiceClient::writeAll(const std::string &bytes)
{
    if (fd_ < 0)
        return false;
    const char *p = bytes.data();
    size_t left = bytes.size();
    while (left > 0) {
        ssize_t n = ::send(fd_, p, left, MSG_NOSIGNAL);
        if (n < 0) {
            if (errno == EINTR)
                continue;
            close();
            return false;
        }
        p += n;
        left -= size_t(n);
    }
    return true;
}

bool
ServiceClient::sendRaw(const std::string &bytes)
{
    return writeAll(bytes);
}

bool
ServiceClient::sendPing()
{
    return writeAll("{\"op\":\"ping\"}\n");
}

bool
ServiceClient::sendFigure(const std::string &id,
                          const std::string &figure, double deadlineMs)
{
    std::string line = "{\"op\":\"figure\",\"id\":\"" +
                       jsonEscape(id) + "\",\"figure\":\"" +
                       jsonEscape(figure) + "\"";
    if (deadlineMs > 0.0)
        line += ",\"deadline_ms\":" +
                std::to_string(int64_t(deadlineMs));
    line += "}\n";
    return writeAll(line);
}

bool
ServiceClient::sendSim(const std::string &id,
                       const std::string &workload,
                       const std::string &scale,
                       const std::string &configJson, double deadlineMs,
                       int version)
{
    std::string line = "{\"op\":\"sim\",\"id\":\"" + jsonEscape(id) +
                       "\",\"workload\":\"" + jsonEscape(workload) +
                       "\"";
    if (!scale.empty())
        line += ",\"scale\":\"" + jsonEscape(scale) + "\"";
    if (version > 0)
        line += ",\"version\":" + std::to_string(version);
    if (!configJson.empty() && configJson != "{}")
        line += ",\"config\":" + configJson;
    if (deadlineMs > 0.0)
        line += ",\"deadline_ms\":" +
                std::to_string(int64_t(deadlineMs));
    line += "}\n";
    return writeAll(line);
}

bool
ServiceClient::sendBatch(const std::string &id,
                         const std::string &workload,
                         const std::string &scale,
                         const std::vector<std::string> &sweep,
                         double deadlineMs, int version)
{
    std::string line = "{\"op\":\"batch\",\"id\":\"" + jsonEscape(id) +
                       "\",\"workload\":\"" + jsonEscape(workload) +
                       "\"";
    if (!scale.empty())
        line += ",\"scale\":\"" + jsonEscape(scale) + "\"";
    if (version > 0)
        line += ",\"version\":" + std::to_string(version);
    line += ",\"sweep\":[";
    for (size_t i = 0; i < sweep.size(); ++i) {
        if (i)
            line += ",";
        line += sweep[i].empty() ? "{}" : sweep[i];
    }
    line += "]";
    if (deadlineMs > 0.0)
        line += ",\"deadline_ms\":" +
                std::to_string(int64_t(deadlineMs));
    line += "}\n";
    return writeAll(line);
}

bool
ServiceClient::sendHello(const std::string &id, uint32_t weight)
{
    return writeAll("{\"op\":\"hello\",\"id\":\"" + jsonEscape(id) +
                    "\",\"weight\":" + std::to_string(weight) +
                    "}\n");
}

bool
ServiceClient::sendStats(const std::string &id)
{
    return writeAll("{\"op\":\"stats\",\"id\":\"" + jsonEscape(id) +
                    "\"}\n");
}

bool
ServiceClient::sendCancel(const std::string &id,
                          const std::string &target)
{
    return writeAll("{\"op\":\"cancel\",\"id\":\"" + jsonEscape(id) +
                    "\",\"target\":\"" + jsonEscape(target) +
                    "\"}\n");
}

bool
ServiceClient::readLine(std::string &line)
{
    for (;;) {
        size_t nl = rbuf_.find('\n');
        if (nl != std::string::npos) {
            line = rbuf_.substr(0, nl);
            rbuf_.erase(0, nl + 1);
            return true;
        }
        if (fd_ < 0)
            return false;
        char chunk[4096];
        ssize_t n = ::read(fd_, chunk, sizeof(chunk));
        if (n < 0 && errno == EINTR)
            continue;
        if (n <= 0) {
            close();
            return false;
        }
        rbuf_.append(chunk, size_t(n));
    }
}

Event
ServiceClient::readEvent()
{
    Event ev;
    std::string line;
    if (!readLine(line))
        return ev; // ConnectionLost
    Json root;
    std::string error;
    if (!Json::parse(line, root, error) || !root.isObject()) {
        ev.type = Event::Type::Malformed;
        return ev;
    }

    auto str = [&](const char *key) -> std::string {
        const Json *v = root.get(key);
        return v && v->isString() ? v->string() : "";
    };
    auto num = [&](const char *key) -> uint64_t {
        const Json *v = root.get(key);
        return v && v->isNumber() && v->number() >= 0.0
                   ? uint64_t(v->number())
                   : 0;
    };

    ev.id = str("id");
    std::string type = str("type");
    if (type == "accepted") {
        ev.type = Event::Type::Accepted;
        ev.lane = str("lane");
    } else if (type == "rejected") {
        ev.type = Event::Type::Rejected;
        ev.reason = str("reason");
        ev.detail = str("detail");
    } else if (type == "chunk") {
        ev.type = Event::Type::Chunk;
        ev.seq = num("seq");
        ev.data = str("data");
    } else if (type == "point") {
        ev.type = Event::Type::Point;
        ev.pointIndex = num("index");
        std::string status = str("status");
        if (status == "served") {
            ev.pointOk = true;
            ev.bytes = num("bytes");
            ev.coalesced = num("coalesced") != 0;
        } else {
            ev.pointOk = false;
            ev.errorClass = str("class");
            ev.detail = str("message");
        }
    } else if (type == "done") {
        ev.type = Event::Type::Done;
        ev.lane = str("lane");
        ev.bytes = num("bytes");
        ev.wallUs = num("wall_us");
        ev.coalesced = num("coalesced") != 0;
    } else if (type == "error") {
        ev.type = Event::Type::Error;
        ev.errorClass = str("class");
        ev.detail = str("message");
    } else if (type == "stats") {
        ev.type = Event::Type::Stats;
        ev.data = str("data");
    } else if (type == "pong") {
        ev.type = Event::Type::Pong;
    } else {
        ev.type = Event::Type::Malformed;
    }
    return ev;
}

Outcome
ServiceClient::await(const std::string &id)
{
    Outcome out;
    auto consume = [&](const Event &ev) -> bool {
        // Returns true when ev terminates request `id`.
        switch (ev.type) {
        case Event::Type::Accepted:
            out.lane = ev.lane;
            return false;
        case Event::Type::Chunk:
            // Inside a batch, chunks that follow a point header
            // belong to that point (seq numbering continues across
            // points, but reassembly is per point).
            if (!out.points.empty())
                out.points.back().payload += ev.data;
            else
                partial_[id] += ev.data;
            return false;
        case Event::Type::Point: {
            Outcome::Point p;
            p.ok = ev.pointOk;
            p.coalesced = ev.coalesced;
            p.errorClass = ev.errorClass;
            p.detail = ev.detail;
            out.points.push_back(std::move(p));
            return false;
        }
        case Event::Type::Done:
            out.status = Outcome::Status::Served;
            out.lane = ev.lane;
            out.serverWallUs = ev.wallUs;
            out.coalesced = ev.coalesced;
            out.payload = std::move(partial_[id]);
            partial_.erase(id);
            return true;
        case Event::Type::Rejected:
            out.status = Outcome::Status::Rejected;
            out.reason = ev.reason;
            out.detail = ev.detail;
            return true;
        case Event::Type::Error:
            out.status = Outcome::Status::Error;
            out.errorClass = ev.errorClass;
            out.detail = ev.detail;
            return true;
        case Event::Type::Stats:
            out.status = Outcome::Status::Served;
            out.payload = ev.data;
            return true;
        case Event::Type::Pong:
        case Event::Type::Malformed:
        case Event::Type::ConnectionLost:
            return false;
        }
        return false;
    };

    // Replay anything already buffered for this id.
    for (size_t i = 0; i < pending_.size();) {
        if (pending_[i].id != id) {
            ++i;
            continue;
        }
        Event ev = pending_[i];
        pending_.erase(pending_.begin() + long(i));
        if (consume(ev))
            return out;
    }
    for (;;) {
        Event ev = readEvent();
        if (ev.type == Event::Type::ConnectionLost) {
            out.status = Outcome::Status::Lost;
            return out;
        }
        // One unintelligible line is not a lost connection: skip it
        // and keep waiting for this request's terminal response.
        if (ev.type == Event::Type::Malformed)
            continue;
        if (ev.id == id) {
            if (consume(ev))
                return out;
        } else if (!ev.id.empty()) {
            pending_.push_back(std::move(ev));
        }
    }
}

} // namespace service
} // namespace rodinia
