#include "service/admission.hh"

#include "support/metrics.hh"

namespace rodinia {
namespace service {

namespace metrics = support::metrics;

const char *
laneName(Lane lane)
{
    return lane == Lane::Warm ? "warm" : "cold";
}

AdmissionController::AdmissionController(const AdmissionPolicy &policy)
    : policy_(policy)
{
}

Verdict
AdmissionController::admit(const std::string &client, Lane lane)
{
    std::lock_guard<std::mutex> lock(mu_);
    ClientStats &cs = clients_[client];
    size_t cap = lane == Lane::Warm ? policy_.maxWarmQueue
                                    : policy_.maxColdQueue;
    size_t &depth = queued_[lane == Lane::Warm ? 0 : 1];
    // Quota first: a client over its own limit is rejected even on
    // an idle server, so the verdict a client sees is independent of
    // what everyone else is doing.
    if (cs.inFlight >= policy_.perClientInFlight) {
        cs.rejectedQuota += 1;
        metrics::countLabeled("service.rejected",
                              client + "/quota", 1);
        return Verdict::RejectQuota;
    }
    if (depth >= cap) {
        cs.rejectedOverload += 1;
        metrics::countLabeled("service.rejected",
                              client + "/overload", 1);
        return Verdict::RejectOverload;
    }
    depth += 1;
    cs.admitted += 1;
    cs.inFlight += 1;
    metrics::countLabeled("service.admitted",
                          client + "/" + laneName(lane), 1);
    return Verdict::Admit;
}

void
AdmissionController::started(Lane lane)
{
    std::lock_guard<std::mutex> lock(mu_);
    size_t &depth = queued_[lane == Lane::Warm ? 0 : 1];
    if (depth > 0)
        depth -= 1;
}

void
AdmissionController::finish(const std::string &client, Lane lane,
                            bool served)
{
    std::lock_guard<std::mutex> lock(mu_);
    ClientStats &cs = clients_[client];
    if (cs.inFlight > 0)
        cs.inFlight -= 1;
    if (served)
        cs.served += 1;
    else
        cs.failed += 1;
    metrics::countLabeled(served ? "service.served"
                                 : "service.failed",
                          client + "/" + laneName(lane), 1);
}

size_t
AdmissionController::queueDepth(Lane lane) const
{
    std::lock_guard<std::mutex> lock(mu_);
    return queued_[lane == Lane::Warm ? 0 : 1];
}

std::map<std::string, AdmissionController::ClientStats>
AdmissionController::snapshot() const
{
    std::lock_guard<std::mutex> lock(mu_);
    return clients_;
}

} // namespace service
} // namespace rodinia
