/**
 * @file
 * Error-reporting helpers in the gem5 style.
 *
 * fatal() is for user-caused conditions (bad configuration, invalid
 * arguments); panic() is for conditions that indicate a bug in the
 * library itself. warn()/inform() print status without terminating.
 */

#ifndef RODINIA_SUPPORT_LOGGING_HH
#define RODINIA_SUPPORT_LOGGING_HH

#include <cstdio>
#include <cstdlib>
#include <sstream>
#include <string>
#include <utility>

namespace rodinia {

namespace detail {

/** Format the variadic argument pack into one string via a stream. */
template <typename... Args>
std::string
concatMessage(Args &&...args)
{
    std::ostringstream os;
    (os << ... << std::forward<Args>(args));
    return os.str();
}

[[noreturn]] void fatalExit(const char *kind, const std::string &msg);

} // namespace detail

/**
 * Terminate with exit(1) due to a user-level error (bad config,
 * invalid arguments). Not a library bug.
 */
template <typename... Args>
[[noreturn]] void
fatal(Args &&...args)
{
    detail::fatalExit("fatal",
                      detail::concatMessage(std::forward<Args>(args)...));
}

/**
 * Terminate with abort() due to an internal invariant violation —
 * something that should never happen regardless of user input.
 */
template <typename... Args>
[[noreturn]] void
panic(Args &&...args)
{
    std::fprintf(stderr, "panic: %s\n",
                 detail::concatMessage(std::forward<Args>(args)...).c_str());
    std::abort();
}

/** Print a warning about questionable but survivable behavior. */
template <typename... Args>
void
warn(Args &&...args)
{
    std::fprintf(stderr, "warn: %s\n",
                 detail::concatMessage(std::forward<Args>(args)...).c_str());
}

/** Print a neutral status message. */
template <typename... Args>
void
inform(Args &&...args)
{
    std::fprintf(stdout, "info: %s\n",
                 detail::concatMessage(std::forward<Args>(args)...).c_str());
}

} // namespace rodinia

#endif // RODINIA_SUPPORT_LOGGING_HH
