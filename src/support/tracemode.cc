#include "support/tracemode.hh"

#include <cstdlib>
#include <cstring>

namespace rodinia {
namespace support {

namespace {

bool
readEnvMode()
{
    const char *v = std::getenv("RODINIA_TRACE_ORACLE");
    return v != nullptr && v[0] != '\0' && std::strcmp(v, "0") != 0;
}

/** Latched mode; mutable only through setTraceOracleModeForTest. */
bool &
modeSlot()
{
    static bool materialized = readEnvMode();
    return materialized;
}

} // namespace

bool
traceOracleMode()
{
    return modeSlot();
}

bool
setTraceOracleModeForTest(bool materialized)
{
    bool prev = modeSlot();
    modeSlot() = materialized;
    return prev;
}

} // namespace support
} // namespace rodinia
