#include "support/progress.hh"

namespace rodinia {
namespace support {

StreamProgressReporter::StreamProgressReporter(size_t total,
                                               std::FILE *out,
                                               bool verbose)
    : total(total), out(out), verbose(verbose)
{
}

void
StreamProgressReporter::jobStarted(const std::string &name)
{
    if (!verbose)
        return;
    std::lock_guard<std::mutex> lock(mu);
    std::fprintf(out, "[%3zu/%zu] start  %s\n", done + 1, total,
                 name.c_str());
    std::fflush(out);
}

void
StreamProgressReporter::jobFinished(const std::string &name,
                                    double wallMs)
{
    std::lock_guard<std::mutex> lock(mu);
    ++done;
    if (verbose) {
        std::fprintf(out, "[%3zu/%zu] done   %s (%.1f ms)\n", done,
                     total, name.c_str(), wallMs);
        std::fflush(out);
    }
}

void
StreamProgressReporter::jobFailed(const std::string &name,
                                  const std::string &error, bool skipped)
{
    std::lock_guard<std::mutex> lock(mu);
    ++done;
    std::fprintf(out, "[%3zu/%zu] %s %s%s%s\n", done, total,
                 skipped ? "skip  " : "FAIL  ", name.c_str(),
                 error.empty() ? "" : ": ", error.c_str());
    std::fflush(out);
}

size_t
StreamProgressReporter::completed() const
{
    std::lock_guard<std::mutex> lock(mu);
    return done;
}

} // namespace support
} // namespace rodinia
