/**
 * @file
 * Deterministic, site-keyed fault injection.
 *
 * The experiment pipeline claims crash-safety, retry, and
 * graceful-degradation properties that only ever matter when
 * something fails — so failures must be manufacturable on demand,
 * and reproducibly. This harness injects faults at named sites:
 *
 *  - file-op failures (write / fsync / rename / unlink) consulted by
 *    ResultStore before each real syscall,
 *  - allocation failures, consulted by the global operator new
 *    replacement while an AllocFaultScope is armed,
 *  - job failures, thrown by the executor at the top of a job
 *    attempt (exact job-name match, optionally transient and
 *    attempt-capped, to exercise the retry path),
 *  - artificial stalls at named sites (substring match), served in
 *    small slices that poll the cancellation checkpoint so a stalled
 *    job is still watchdog-cancellable.
 *
 * Every probabilistic decision is a pure function of (seed, site
 * kind, site key, per-key occurrence counter) hashed through FNV-1a
 * — no clocks, no global RNG state — so a spec reproduces the same
 * fault pattern across runs, thread counts, and unrelated code
 * changes, and the faults-smoke ctest lane is stable.
 *
 * Configuration comes from the RODINIA_FAULTS environment variable
 * (parsed on first use; a malformed spec is fatal) or from
 * configure() in tests. Spec grammar — comma-separated entries:
 *
 *   seed=N                 hash seed (default 1)
 *   write=P | fsync=P | rename=P | unlink=P | alloc=P
 *                          per-site-occurrence failure probability,
 *                          P in [0,1]
 *   fail=NAME[@transient|@permanent][@COUNT]
 *                          throw InjectedFault from job NAME on its
 *                          first COUNT attempts (default: every
 *                          attempt, permanent)
 *   stall=SUBSTR@MS        sleep MS ms (cancellably) at any stall
 *                          site whose name contains SUBSTR
 *
 * '@' separates fail/stall arguments because job and site names
 * contain ':' (e.g. "figure:fig4", "sim:cfd/s0/v1").
 */

#ifndef RODINIA_SUPPORT_FAULTINJECT_HH
#define RODINIA_SUPPORT_FAULTINJECT_HH

#include <atomic>
#include <cstdint>
#include <mutex>
#include <stdexcept>
#include <string>
#include <unordered_map>
#include <vector>

namespace rodinia {
namespace support {

/** Thrown by injected job faults. transient() steers the executor's
 *  retry policy. */
class InjectedFault : public std::runtime_error
{
  public:
    InjectedFault(const std::string &what, bool transient)
        : std::runtime_error(what), transient_(transient)
    {
    }

    bool transient() const { return transient_; }

  private:
    bool transient_;
};

/** File operations with injectable failures. */
enum class FaultOp { Write, Fsync, Rename, Unlink, Alloc };

const char *faultOpName(FaultOp op);

/**
 * Process-wide injector. instance() lazily parses $RODINIA_FAULTS;
 * with the variable unset every query is a cheap "no". Tests call
 * configure() directly (it also resets occurrence counters, so a
 * test's decision sequence is independent of earlier tests).
 */
class FaultInjector
{
  public:
    /** The injector configured from $RODINIA_FAULTS. */
    static FaultInjector &instance();

    /** Replace the configuration from a spec string (see file
     *  comment for the grammar; malformed specs are fatal) and
     *  reset all counters. "" disables injection. */
    void configure(const std::string &spec);

    /** True if any fault source is configured. */
    bool enabled() const;

    /**
     * Should the next @p op on @p key (store entry filename) fail?
     * Deterministic per (seed, op, key, occurrence). Increments the
     * per-op injected-failure counter when it fires.
     */
    bool failFile(FaultOp op, const std::string &key);

    /** Throw InjectedFault if a fail= rule matches @p job for this
     *  @p attempt (1-based). */
    void maybeFailJob(const std::string &job, int attempt);

    /**
     * Serve any stall= rule whose SUBSTR occurs in @p site: sleeps
     * in 10 ms slices, polling checkpointCancellation() between
     * slices, so the watchdog can cancel a stalled job promptly.
     */
    void maybeStall(const std::string &site);

    // Telemetry (reset by configure()).
    uint64_t injectedFileFailures(FaultOp op) const;
    uint64_t injectedJobFailures() const;
    uint64_t stallsServed() const;

    /** Allocation-fault decision for the armed AllocFaultScope on
     *  this thread. Never allocates; called from operator new. */
    static bool shouldFailAlloc() noexcept;

  private:
    struct FailRule
    {
        std::string job;
        bool transient = false;
        int attempts = 0; //!< 0 = every attempt
    };
    struct StallRule
    {
        std::string substr;
        int ms = 0;
    };
    struct Config
    {
        uint64_t seed = 1;
        double probability[5] = {0, 0, 0, 0, 0}; //!< indexed by FaultOp
        std::vector<FailRule> fails;
        std::vector<StallRule> stalls;
    };

    FaultInjector() = default;
    explicit FaultInjector(const char *envSpec);

    static Config parseSpec(const std::string &spec);
    bool decide(FaultOp op, uint64_t keyHash, uint64_t occurrence,
                uint64_t seed, double p) const;

    mutable std::mutex mu_;
    Config cfg_;
    std::unordered_map<std::string, uint64_t> occurrences_;
    std::atomic<uint64_t> nFile_[5] = {};
    std::atomic<uint64_t> nJob_{0};
    std::atomic<uint64_t> nStall_{0};

    friend class AllocFaultScope;
};

/**
 * Arms allocation-fault injection for the current thread while
 * alive. The executor holds one around each job body, keyed by the
 * job name, so alloc=P faults land inside experiment work rather
 * than in harness bookkeeping. Scopes nest (inner wins); the
 * decision snapshot (seed, probability) is taken at construction so
 * the operator-new fast path stays allocation- and lock-free.
 */
class AllocFaultScope
{
  public:
    explicit AllocFaultScope(const std::string &site);
    ~AllocFaultScope();

    AllocFaultScope(const AllocFaultScope &) = delete;
    AllocFaultScope &operator=(const AllocFaultScope &) = delete;

  private:
    struct Arm
    {
        bool active = false;
        uint64_t seed = 0;
        uint64_t siteHash = 0;
        uint64_t counter = 0;
        double p = 0.0;
    };
    static Arm &tls();

    Arm prev_;

    friend class FaultInjector;
};

} // namespace support
} // namespace rodinia

#endif // RODINIA_SUPPORT_FAULTINJECT_HH
