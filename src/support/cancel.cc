#include "support/cancel.hh"

namespace rodinia {
namespace support {

namespace {

thread_local const CancelToken *tlsToken = nullptr;

} // namespace

void
CancelToken::cancel(const std::string &reason)
{
    std::lock_guard<std::mutex> lock(mu_);
    if (flag_.load(std::memory_order_relaxed))
        return; // first reason wins
    reason_ = reason;
    flag_.store(true, std::memory_order_release);
}

std::string
CancelToken::reason() const
{
    std::lock_guard<std::mutex> lock(mu_);
    return reason_;
}

void
CancelToken::checkpoint() const
{
    if (!flag_.load(std::memory_order_relaxed))
        return;
    throw CancelledError(reason());
}

CancelScope::CancelScope(const CancelToken *token) : prev_(tlsToken)
{
    tlsToken = token;
}

CancelScope::~CancelScope()
{
    tlsToken = prev_;
}

const CancelToken *
currentCancelToken()
{
    return tlsToken;
}

} // namespace support
} // namespace rodinia
