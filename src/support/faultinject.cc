#include "support/faultinject.hh"

#include <chrono>
#include <cstdlib>
#include <thread>

#include "support/cancel.hh"
#include "support/hash.hh"
#include "support/logging.hh"

namespace rodinia {
namespace support {

namespace {

// Map a 64-bit digest to [0, 1) using the top 53 bits.
double
unitInterval(uint64_t digest)
{
    return double(digest >> 11) * (1.0 / 9007199254740992.0);
}

std::vector<std::string>
split(const std::string &s, char sep)
{
    std::vector<std::string> out;
    size_t pos = 0;
    for (;;) {
        size_t next = s.find(sep, pos);
        if (next == std::string::npos) {
            out.push_back(s.substr(pos));
            return out;
        }
        out.push_back(s.substr(pos, next - pos));
        pos = next + 1;
    }
}

double
parseProbability(const std::string &key, const std::string &value)
{
    char *end = nullptr;
    double p = std::strtod(value.c_str(), &end);
    if (!end || *end != '\0' || value.empty() || p < 0.0 || p > 1.0)
        fatal("RODINIA_FAULTS: '", key, "=", value,
              "' is not a probability in [0,1]");
    return p;
}

uint64_t
parseCount(const std::string &entry, const std::string &value,
           uint64_t max)
{
    char *end = nullptr;
    unsigned long long v = std::strtoull(value.c_str(), &end, 10);
    if (!end || *end != '\0' || value.empty() || v > max)
        fatal("RODINIA_FAULTS: bad number '", value, "' in '", entry,
              "'");
    return uint64_t(v);
}

} // namespace

const char *
faultOpName(FaultOp op)
{
    switch (op) {
      case FaultOp::Write:
        return "write";
      case FaultOp::Fsync:
        return "fsync";
      case FaultOp::Rename:
        return "rename";
      case FaultOp::Unlink:
        return "unlink";
      case FaultOp::Alloc:
        return "alloc";
    }
    return "?";
}

FaultInjector::FaultInjector(const char *envSpec)
{
    if (envSpec && *envSpec)
        cfg_ = parseSpec(envSpec);
}

FaultInjector &
FaultInjector::instance()
{
    static FaultInjector inj(std::getenv("RODINIA_FAULTS"));
    return inj;
}

FaultInjector::Config
FaultInjector::parseSpec(const std::string &spec)
{
    Config cfg;
    for (const std::string &entry : split(spec, ',')) {
        if (entry.empty())
            continue;
        size_t eq = entry.find('=');
        if (eq == std::string::npos)
            fatal("RODINIA_FAULTS: entry '", entry,
                  "' is not key=value");
        std::string key = entry.substr(0, eq);
        std::string value = entry.substr(eq + 1);
        if (key == "seed") {
            cfg.seed = parseCount(entry, value, ~uint64_t(0));
        } else if (key == "write") {
            cfg.probability[int(FaultOp::Write)] =
                parseProbability(key, value);
        } else if (key == "fsync") {
            cfg.probability[int(FaultOp::Fsync)] =
                parseProbability(key, value);
        } else if (key == "rename") {
            cfg.probability[int(FaultOp::Rename)] =
                parseProbability(key, value);
        } else if (key == "unlink") {
            cfg.probability[int(FaultOp::Unlink)] =
                parseProbability(key, value);
        } else if (key == "alloc") {
            cfg.probability[int(FaultOp::Alloc)] =
                parseProbability(key, value);
        } else if (key == "fail") {
            auto parts = split(value, '@');
            FailRule rule;
            rule.job = parts[0];
            if (rule.job.empty())
                fatal("RODINIA_FAULTS: '", entry,
                      "' is missing a job name");
            for (size_t i = 1; i < parts.size(); ++i) {
                if (parts[i] == "transient")
                    rule.transient = true;
                else if (parts[i] == "permanent")
                    rule.transient = false;
                else
                    rule.attempts = int(
                        parseCount(entry, parts[i], 1000000));
            }
            cfg.fails.push_back(std::move(rule));
        } else if (key == "stall") {
            auto parts = split(value, '@');
            if (parts.size() != 2 || parts[0].empty())
                fatal("RODINIA_FAULTS: '", entry,
                      "' is not stall=SUBSTR@MS");
            StallRule rule;
            rule.substr = parts[0];
            rule.ms = int(parseCount(entry, parts[1], 3600000));
            if (rule.ms <= 0)
                fatal("RODINIA_FAULTS: '", entry,
                      "' needs a positive stall duration");
            cfg.stalls.push_back(std::move(rule));
        } else {
            fatal("RODINIA_FAULTS: unknown key '", key, "'");
        }
    }
    return cfg;
}

void
FaultInjector::configure(const std::string &spec)
{
    Config cfg = spec.empty() ? Config{} : parseSpec(spec);
    std::lock_guard<std::mutex> lock(mu_);
    cfg_ = std::move(cfg);
    occurrences_.clear();
    for (auto &n : nFile_)
        n.store(0);
    nJob_.store(0);
    nStall_.store(0);
}

bool
FaultInjector::enabled() const
{
    std::lock_guard<std::mutex> lock(mu_);
    for (double p : cfg_.probability)
        if (p > 0.0)
            return true;
    return !cfg_.fails.empty() || !cfg_.stalls.empty();
}

bool
FaultInjector::decide(FaultOp op, uint64_t keyHash,
                      uint64_t occurrence, uint64_t seed,
                      double p) const
{
    Fnv1a h;
    h.field(seed)
        .field(uint64_t(op))
        .field(keyHash)
        .field(occurrence);
    return unitInterval(h.digest()) < p;
}

bool
FaultInjector::failFile(FaultOp op, const std::string &key)
{
    uint64_t seed, occurrence;
    double p;
    {
        std::lock_guard<std::mutex> lock(mu_);
        p = cfg_.probability[int(op)];
        if (p <= 0.0)
            return false;
        seed = cfg_.seed;
        occurrence =
            occurrences_[std::string(faultOpName(op)) + ":" + key]++;
    }
    uint64_t keyHash = Fnv1a().field(std::string_view(key)).digest();
    if (!decide(op, keyHash, occurrence, seed, p))
        return false;
    nFile_[int(op)].fetch_add(1);
    return true;
}

void
FaultInjector::maybeFailJob(const std::string &job, int attempt)
{
    bool transient = false;
    bool fire = false;
    {
        std::lock_guard<std::mutex> lock(mu_);
        for (const FailRule &rule : cfg_.fails) {
            if (rule.job != job)
                continue;
            if (rule.attempts > 0 && attempt > rule.attempts)
                continue;
            transient = rule.transient;
            fire = true;
            break;
        }
    }
    if (!fire)
        return;
    nJob_.fetch_add(1);
    throw InjectedFault("injected fault in job '" + job +
                            "' (attempt " + std::to_string(attempt) +
                            ")",
                        transient);
}

void
FaultInjector::maybeStall(const std::string &site)
{
    int ms = 0;
    {
        std::lock_guard<std::mutex> lock(mu_);
        for (const StallRule &rule : cfg_.stalls) {
            if (site.find(rule.substr) != std::string::npos) {
                ms = rule.ms;
                break;
            }
        }
    }
    if (ms <= 0)
        return;
    nStall_.fetch_add(1);
    auto deadline = std::chrono::steady_clock::now() +
                    std::chrono::milliseconds(ms);
    for (;;) {
        checkpointCancellation();
        auto now = std::chrono::steady_clock::now();
        if (now >= deadline)
            return;
        auto slice = std::min<std::chrono::steady_clock::duration>(
            deadline - now, std::chrono::milliseconds(10));
        std::this_thread::sleep_for(slice);
    }
}

uint64_t
FaultInjector::injectedFileFailures(FaultOp op) const
{
    return nFile_[int(op)].load();
}

uint64_t
FaultInjector::injectedJobFailures() const
{
    return nJob_.load();
}

uint64_t
FaultInjector::stallsServed() const
{
    return nStall_.load();
}

bool
FaultInjector::shouldFailAlloc() noexcept
{
    AllocFaultScope::Arm &arm = AllocFaultScope::tls();
    if (!arm.active)
        return false;
    // Inline FNV-1a over fixed-width fields; this path must not
    // allocate (it runs inside operator new).
    uint64_t state = Fnv1a::kOffset;
    auto absorb = [&state](uint64_t v) {
        const auto *p = reinterpret_cast<const unsigned char *>(&v);
        for (size_t i = 0; i < sizeof(v); ++i) {
            state ^= p[i];
            state *= Fnv1a::kPrime;
        }
    };
    absorb(arm.seed);
    absorb(uint64_t(FaultOp::Alloc));
    absorb(arm.siteHash);
    absorb(arm.counter++);
    if (unitInterval(state) >= arm.p)
        return false;
    // instance() was already constructed by the arming scope, so
    // this is a plain atomic bump — still allocation-free.
    instance().nFile_[int(FaultOp::Alloc)].fetch_add(1);
    return true;
}

AllocFaultScope::Arm &
AllocFaultScope::tls()
{
    thread_local Arm arm;
    return arm;
}

AllocFaultScope::AllocFaultScope(const std::string &site)
{
    Arm &arm = tls();
    prev_ = arm;
    Arm next; // inactive unless alloc faults are configured
    FaultInjector &inj = FaultInjector::instance();
    {
        std::lock_guard<std::mutex> lock(inj.mu_);
        double p = inj.cfg_.probability[int(FaultOp::Alloc)];
        if (p > 0.0) {
            next.active = true;
            next.seed = inj.cfg_.seed;
            next.siteHash =
                Fnv1a().field(std::string_view(site)).digest();
            next.counter = 0;
            next.p = p;
        }
    }
    arm = next;
}

AllocFaultScope::~AllocFaultScope()
{
    tls() = prev_;
}

} // namespace support
} // namespace rodinia
