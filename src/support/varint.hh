/**
 * @file
 * LEB128 varint and zigzag primitives for the compact trace streams.
 *
 * Both trace codecs (trace::EventStream for CPU memory traces,
 * gpusim::LaneStream for GPU lane traces) store deltas between
 * consecutive events, which are small for real traces: order keys
 * advance by one loop iteration, addresses by one element stride.
 * Varint+zigzag turns those deltas into one or two bytes where the
 * materialized structs spend eight.
 *
 * Header-only on purpose: every call sits on a per-event encode or
 * decode path and must inline.
 */

#ifndef RODINIA_SUPPORT_VARINT_HH
#define RODINIA_SUPPORT_VARINT_HH

#include <cstdint>
#include <vector>

namespace rodinia {
namespace support {

/** Append v as a LEB128 varint (1 byte per 7 bits, low first). */
inline void
putVarint(std::vector<uint8_t> &out, uint64_t v)
{
    while (v >= 0x80) {
        out.push_back(uint8_t(v) | 0x80);
        v >>= 7;
    }
    out.push_back(uint8_t(v));
}

/** Decode a LEB128 varint, advancing p past it. */
inline uint64_t
getVarint(const uint8_t *&p)
{
    uint64_t v = uint64_t(*p) & 0x7f;
    if (*p++ < 0x80) [[likely]]
        return v;
    int shift = 7;
    while (true) {
        v |= (uint64_t(*p) & 0x7f) << shift;
        if (*p++ < 0x80)
            return v;
        shift += 7;
    }
}

/** Map a signed delta onto an unsigned varint-friendly value. */
inline uint64_t
zigzag(int64_t v)
{
    return (uint64_t(v) << 1) ^ uint64_t(v >> 63);
}

/** Inverse of zigzag(). */
inline int64_t
unzigzag(uint64_t v)
{
    return int64_t(v >> 1) ^ -int64_t(v & 1);
}

} // namespace support
} // namespace rodinia

#endif // RODINIA_SUPPORT_VARINT_HH
