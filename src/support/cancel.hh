/**
 * @file
 * Cooperative cancellation.
 *
 * A CancelToken is a one-shot flag plus a reason string. The owner
 * (the executor's watchdog, a test) calls cancel(); the cancellee
 * polls checkpoint() at safe points inside its long loops — sim
 * cycles, sweep replay, stall slices — and unwinds with a
 * CancelledError when the flag is set. Cancellation is therefore
 * *cooperative*: code that never reaches a checkpoint is never
 * interrupted, and a checkpoint is the only place the exception can
 * originate, so cancellees are always unwound at a point they chose.
 *
 * Tokens are installed per-thread with a CancelScope RAII guard; the
 * free function checkpointCancellation() consults the innermost
 * scope on the calling thread and is a no-op (one thread-local read)
 * when no token is active, which makes it cheap enough to sprinkle
 * through hot loops at a coarse stride. Executor::parallelFor
 * propagates the caller's token onto helper threads, so a figure
 * job's nested config sweep observes the figure's deadline.
 */

#ifndef RODINIA_SUPPORT_CANCEL_HH
#define RODINIA_SUPPORT_CANCEL_HH

#include <atomic>
#include <mutex>
#include <stdexcept>
#include <string>

namespace rodinia {
namespace support {

/** Thrown from CancelToken::checkpoint() once the token is
 *  cancelled. what() carries the canceller's reason. */
class CancelledError : public std::runtime_error
{
  public:
    using std::runtime_error::runtime_error;
};

/** One-shot cancellation flag, shared between canceller and
 *  cancellee. All members are thread-safe. */
class CancelToken
{
  public:
    /** Request cancellation. The first caller's reason wins;
     *  later calls are no-ops. */
    void cancel(const std::string &reason);

    bool cancelled() const
    {
        return flag_.load(std::memory_order_acquire);
    }

    /** The first cancel() reason, or "" if not cancelled. */
    std::string reason() const;

    /** Throw CancelledError iff cancelled. The fast path is one
     *  relaxed atomic load. */
    void checkpoint() const;

  private:
    std::atomic<bool> flag_{false};
    mutable std::mutex mu_;
    std::string reason_;
};

/**
 * Installs @p token as the calling thread's active cancel token for
 * the scope's lifetime, stacking over (and restoring) any outer
 * scope. A null token is allowed and simply shadows the outer scope
 * with "no token".
 */
class CancelScope
{
  public:
    explicit CancelScope(const CancelToken *token);
    ~CancelScope();

    CancelScope(const CancelScope &) = delete;
    CancelScope &operator=(const CancelScope &) = delete;

  private:
    const CancelToken *prev_;
};

/** The calling thread's active token, or nullptr. */
const CancelToken *currentCancelToken();

/** Poll the calling thread's active token; throws CancelledError if
 *  it has been cancelled, no-op otherwise (including when no scope
 *  is active). Safe to call from any loop. */
inline void
checkpointCancellation()
{
    if (const CancelToken *t = currentCancelToken())
        t->checkpoint();
}

} // namespace support
} // namespace rodinia

#endif // RODINIA_SUPPORT_CANCEL_HH
