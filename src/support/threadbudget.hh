/**
 * @file
 * Process-wide helper-thread budget for nested parallelism.
 *
 * Two layers of the system want the machine's cores: the driver's
 * work-stealing Executor runs many jobs concurrently, and a single
 * GPU timing simulation can now spread its SMs over helper threads.
 * Letting both claim hardware_concurrency independently
 * oversubscribes the machine (N jobs x M sim threads); statically
 * splitting it starves whichever layer happens to be idle. The
 * budget is the meeting point: executor workers mark themselves
 * active while they run a job, and a simulation asks for however
 * many helpers are left. On a saturated pool the answer is zero and
 * the sim runs its epochs on the calling thread alone; on the cold
 * critical path — one long sim, every other worker idle — the sim
 * gets the whole machine.
 *
 * Grants only size thread *pools*; they never influence simulation
 * results (the epoch engine is bit-identical for any helper count),
 * so the budget needs no fairness or determinism guarantees — a
 * single atomic reservation counter suffices.
 */

#ifndef RODINIA_SUPPORT_THREADBUDGET_HH
#define RODINIA_SUPPORT_THREADBUDGET_HH

#include <atomic>

namespace rodinia {
namespace support {

/** Process-global helper-thread accountant. All methods thread-safe. */
class ThreadBudget
{
  public:
    static ThreadBudget &instance();

    /** Hardware threads the budget hands out (>= 1). Defaults to
     *  std::thread::hardware_concurrency(). */
    int capacity() const { return cap.load(std::memory_order_relaxed); }

    /** Override the capacity (tests; clamped to >= 1). */
    void setCapacity(int n);

    /**
     * Mark the calling context busy (an executor worker entering a
     * job) / idle again. Pairs must balance.
     */
    void markActive();
    void markIdle();

    /**
     * Reserve up to @p want helper threads beyond the already-active
     * ones. Returns the number granted, in [0, want]; the caller must
     * release() exactly that many when its helpers exit. Never blocks
     * and never grants past capacity, but always grants at least one
     * helper when nothing at all is reserved — a lone caller on a
     * one-core box still deserves a concurrency-exercising helper
     * (the sanitizer lanes rely on this to see real threads).
     */
    int tryAcquire(int want);

    /** Return @p n helper slots obtained from tryAcquire(). */
    void release(int n);

    /** Currently reserved slots (active + granted); observability. */
    int reserved() const
    {
        return used.load(std::memory_order_relaxed);
    }

  private:
    ThreadBudget();

    std::atomic<int> cap;
    std::atomic<int> used{0}; //!< active workers + granted helpers
};

} // namespace support
} // namespace rodinia

#endif // RODINIA_SUPPORT_THREADBUDGET_HH
