/**
 * @file
 * Thread-safe progress reporting for long-running experiment sweeps.
 *
 * The driver's executor calls into a ProgressReporter from its pool
 * threads as jobs start and finish; the reporter serializes output
 * with an internal mutex so lines never interleave. Reporting is
 * line-oriented (one line per event) so it stays readable when
 * stderr is redirected to a file.
 */

#ifndef RODINIA_SUPPORT_PROGRESS_HH
#define RODINIA_SUPPORT_PROGRESS_HH

#include <cstdio>
#include <mutex>
#include <string>

namespace rodinia {
namespace support {

/** Sink for job lifecycle events. All methods are thread-safe. */
class ProgressReporter
{
  public:
    virtual ~ProgressReporter() = default;

    /** A job began executing. */
    virtual void jobStarted(const std::string &name) = 0;

    /** A job finished successfully. */
    virtual void jobFinished(const std::string &name, double wallMs) = 0;

    /** A job failed (threw) or was skipped due to a failed dep. */
    virtual void jobFailed(const std::string &name,
                           const std::string &error, bool skipped) = 0;
};

/**
 * Prints one line per event to a stdio stream with a done/total
 * counter. Construct with the total job count; the counter advances
 * on every finish/failure.
 */
class StreamProgressReporter : public ProgressReporter
{
  public:
    explicit StreamProgressReporter(size_t total, std::FILE *out = stderr,
                                    bool verbose = true);

    void jobStarted(const std::string &name) override;
    void jobFinished(const std::string &name, double wallMs) override;
    void jobFailed(const std::string &name, const std::string &error,
                   bool skipped) override;

    /** Jobs finished or failed so far. */
    size_t completed() const;

  private:
    mutable std::mutex mu;
    size_t total;
    size_t done = 0;
    std::FILE *out;
    bool verbose; //!< false: report failures only
};

/** Reporter that swallows everything (for --quiet and tests). */
class NullProgressReporter : public ProgressReporter
{
  public:
    void jobStarted(const std::string &) override {}
    void jobFinished(const std::string &, double) override {}
    void jobFailed(const std::string &, const std::string &,
                   bool) override
    {
    }
};

} // namespace support
} // namespace rodinia

#endif // RODINIA_SUPPORT_PROGRESS_HH
