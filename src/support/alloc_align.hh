/**
 * @file
 * Scoped deterministic allocation alignment.
 *
 * See alloc_align.cc for the full rationale. While at least one
 * DeterministicAllocScope is alive anywhere in the process, the
 * global operator new replacements pin every allocation's line/page
 * phase (under 64 B: line-aligned; otherwise page-aligned), making
 * line-straddle splits and page co-tenancy of traced addresses
 * process-independent. Outside any scope, allocation falls through
 * to plain malloc at full speed — the GPU simulator and the
 * statistics pipeline get their determinism from address rewriting
 * (gpusim::DeviceSpace) and need no help from the allocator.
 */

#ifndef RODINIA_SUPPORT_ALLOC_ALIGN_HH
#define RODINIA_SUPPORT_ALLOC_ALIGN_HH

namespace rodinia {
namespace support {

/**
 * RAII guard enabling deterministic allocation alignment. Scopes
 * nest and may overlap across threads (the state is a process-wide
 * counter): alignment is active while any guard lives, so a CPU
 * characterization holds one across its whole workload run and
 * worker-thread allocations inside it are covered too.
 */
class DeterministicAllocScope
{
  public:
    DeterministicAllocScope();
    ~DeterministicAllocScope();
    DeterministicAllocScope(const DeterministicAllocScope &) = delete;
    DeterministicAllocScope &
    operator=(const DeterministicAllocScope &) = delete;
};

/** True while any DeterministicAllocScope is alive. */
bool deterministicAllocationActive();

} // namespace support
} // namespace rodinia

#endif // RODINIA_SUPPORT_ALLOC_ALIGN_HH
