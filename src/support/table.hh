/**
 * @file
 * Aligned ASCII table rendering for the benchmark harness.
 *
 * Every bench binary regenerates one of the paper's tables or the
 * data series behind one of its figures; Table gives those binaries a
 * uniform, diffable text format.
 */

#ifndef RODINIA_SUPPORT_TABLE_HH
#define RODINIA_SUPPORT_TABLE_HH

#include <cstdint>
#include <string>
#include <vector>

namespace rodinia {

/** A simple column-aligned text table with an optional title. */
class Table
{
  public:
    explicit Table(std::string title = "");

    /** Set the header row. Clears any previously set header. */
    void setHeader(std::vector<std::string> cells);

    /** Append a data row; short rows are padded with empty cells. */
    void addRow(std::vector<std::string> cells);

    /** Convenience: format a double with the given precision. */
    static std::string fmt(double v, int precision = 2);

    /** Convenience: format a value as a percentage string. */
    static std::string pct(double fraction, int precision = 1);

    /** Convenience: format an integer with thousands separators. */
    static std::string fmtInt(uint64_t v);

    /** Render the table to a string. */
    std::string render() const;

    /** Render and write to stdout. */
    void print() const;

  private:
    std::string title;
    std::vector<std::string> header;
    std::vector<std::vector<std::string>> rows;
};

/**
 * Render a horizontal bar-chart row (for figure-series output) —
 * a label, a scaled run of '#' characters, and the numeric value.
 */
std::string barRow(const std::string &label, double value, double max_value,
                   int width = 40, int precision = 2);

} // namespace rodinia

#endif // RODINIA_SUPPORT_TABLE_HH
