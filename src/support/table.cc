#include "support/table.hh"

#include <algorithm>
#include <cstdio>
#include <sstream>

namespace rodinia {

Table::Table(std::string title) : title(std::move(title))
{
}

void
Table::setHeader(std::vector<std::string> cells)
{
    header = std::move(cells);
}

void
Table::addRow(std::vector<std::string> cells)
{
    rows.push_back(std::move(cells));
}

std::string
Table::fmt(double v, int precision)
{
    char buf[64];
    std::snprintf(buf, sizeof(buf), "%.*f", precision, v);
    return buf;
}

std::string
Table::pct(double fraction, int precision)
{
    char buf[64];
    std::snprintf(buf, sizeof(buf), "%.*f%%", precision, fraction * 100.0);
    return buf;
}

std::string
Table::fmtInt(uint64_t v)
{
    std::string raw = std::to_string(v);
    std::string out;
    int count = 0;
    for (auto it = raw.rbegin(); it != raw.rend(); ++it) {
        if (count && count % 3 == 0)
            out.push_back(',');
        out.push_back(*it);
        ++count;
    }
    std::reverse(out.begin(), out.end());
    return out;
}

std::string
Table::render() const
{
    std::vector<size_t> widths;
    auto grow = [&](const std::vector<std::string> &cells) {
        if (cells.size() > widths.size())
            widths.resize(cells.size(), 0);
        for (size_t i = 0; i < cells.size(); ++i)
            widths[i] = std::max(widths[i], cells[i].size());
    };
    if (!header.empty())
        grow(header);
    for (const auto &row : rows)
        grow(row);

    auto emit = [&](std::ostringstream &os,
                    const std::vector<std::string> &cells) {
        for (size_t i = 0; i < widths.size(); ++i) {
            std::string cell = i < cells.size() ? cells[i] : "";
            os << cell;
            if (i + 1 < widths.size())
                os << std::string(widths[i] - cell.size() + 2, ' ');
        }
        os << '\n';
    };

    std::ostringstream os;
    size_t total = 0;
    for (size_t w : widths)
        total += w + 2;
    if (!title.empty()) {
        os << title << '\n';
        os << std::string(std::max(title.size(), total), '-') << '\n';
    }
    if (!header.empty()) {
        emit(os, header);
        os << std::string(total, '-') << '\n';
    }
    for (const auto &row : rows)
        emit(os, row);
    return os.str();
}

void
Table::print() const
{
    std::fputs(render().c_str(), stdout);
    std::fflush(stdout);
}

std::string
barRow(const std::string &label, double value, double max_value, int width,
       int precision)
{
    int bars = 0;
    if (max_value > 0.0)
        bars = int(value / max_value * width + 0.5);
    bars = std::clamp(bars, 0, width);
    char buf[64];
    std::snprintf(buf, sizeof(buf), "%.*f", precision, value);
    std::ostringstream os;
    os << label;
    if (label.size() < 16)
        os << std::string(16 - label.size(), ' ');
    os << " |" << std::string(bars, '#')
       << std::string(width - bars, ' ') << "| " << buf;
    return os.str();
}

} // namespace rodinia
