/**
 * @file
 * FNV-1a hashing over heterogeneous key fields.
 *
 * Used by the driver's content-hashed result store: a store key is
 * built by feeding each field (workload name, scale, thread count,
 * sim-config string, store version) into one Fnv1a accumulator.
 * Every field is framed with its length so that adjacent string
 * fields can never alias ("ab"+"c" vs "a"+"bc").
 */

#ifndef RODINIA_SUPPORT_HASH_HH
#define RODINIA_SUPPORT_HASH_HH

#include <cstdint>
#include <string>
#include <string_view>

namespace rodinia {
namespace support {

/** Incremental 64-bit FNV-1a hasher. */
class Fnv1a
{
  public:
    static constexpr uint64_t kOffset = 1469598103934665603ULL;
    static constexpr uint64_t kPrime = 1099511628211ULL;

    /** Absorb raw bytes. */
    Fnv1a &
    bytes(const void *data, size_t len)
    {
        const auto *p = static_cast<const unsigned char *>(data);
        for (size_t i = 0; i < len; ++i) {
            state ^= p[i];
            state *= kPrime;
        }
        return *this;
    }

    /** Absorb a length-framed string field. */
    Fnv1a &
    field(std::string_view s)
    {
        uint64_t len = s.size();
        bytes(&len, sizeof(len));
        return bytes(s.data(), s.size());
    }

    /** Absorb an integer field. */
    Fnv1a &
    field(uint64_t v)
    {
        return bytes(&v, sizeof(v));
    }

    Fnv1a &
    field(int v)
    {
        return field(uint64_t(int64_t(v)));
    }

    uint64_t digest() const { return state; }

    /** Digest formatted as 16 lowercase hex digits. */
    std::string
    hex() const
    {
        static const char *digits = "0123456789abcdef";
        std::string out(16, '0');
        uint64_t h = state;
        for (int i = 15; i >= 0; --i) {
            out[size_t(i)] = digits[h & 0xf];
            h >>= 4;
        }
        return out;
    }

  private:
    uint64_t state = kOffset;
};

} // namespace support
} // namespace rodinia

#endif // RODINIA_SUPPORT_HASH_HH
