/**
 * @file
 * Process-wide metrics registry: counters, gauges, and fixed-bucket
 * latency histograms, addressed by a dotted metric name plus an
 * opaque label string.
 *
 * Concurrency model (same contract as gpusim::KernelStats::add):
 * every mutation lands in one of a fixed set of shards selected by
 * the writing thread's id, so unrelated threads almost never contend
 * on a shard mutex; snapshot() merges the shards with operations
 * that are associative and commutative — counters add, gauges take
 * the max, histograms merge bucket-wise — so the merged view is
 * independent of which thread wrote where and of merge order.
 *
 * Determinism contract: every metric carries a Stability tag.
 * Stable metrics are pure functions of the work performed (entries
 * loaded, sims run, jobs finished) and must be byte-identical across
 * worker counts and across processes for a clean run; Volatile
 * metrics carry wall-clock or schedule-dependent readings (latency
 * histograms, queue waits, steals). The JSON dump emits the two
 * groups in separate top-level sections ("stable" before
 * "volatile"), so stripping everything from the "volatile" key
 * onward yields the deterministic remainder — that is what the
 * --trace/--metrics determinism tests compare.
 *
 * Transactional sinks: writes go through the thread's current sink —
 * the global registry by default, or a scoped override installed
 * with SinkScope (the executor installs a per-job transaction
 * registry for the duration of each attempt and propagates it to
 * parallelFor helpers, mirroring support::CancelScope). A
 * transaction is published with drainInto(global) only when its job
 * succeeds, so a failed job's metrics are dropped whole rather than
 * surfacing as partially-merged counters.
 */

#ifndef RODINIA_SUPPORT_METRICS_HH
#define RODINIA_SUPPORT_METRICS_HH

#include <array>
#include <cstdint>
#include <map>
#include <mutex>
#include <string>
#include <string_view>

namespace rodinia {
namespace support {
namespace metrics {

/** Determinism class of a metric (see file comment). */
enum class Stability { Stable, Volatile };

enum class Kind { Counter, Gauge, Histogram };

/**
 * Power-of-two-bucket histogram over uint64 samples (microseconds
 * by convention). Bucket i covers [2^(i-1), 2^i); bucket 0 holds
 * zero. merge() is associative and commutative, and merging two
 * histograms equals observing the concatenation of their sample
 * streams — the property tests pin both.
 */
struct HistogramData
{
    static constexpr size_t kBuckets = 64;

    std::array<uint64_t, kBuckets> buckets{};
    uint64_t count = 0;
    uint64_t sum = 0;
    uint64_t min = 0; //!< meaningful only when count > 0
    uint64_t max = 0;

    /** Bucket index for a sample: bit width of the value, capped. */
    static size_t
    bucketOf(uint64_t v)
    {
        size_t w = 0;
        while (v) {
            ++w;
            v >>= 1;
        }
        return w < kBuckets ? w : kBuckets - 1;
    }

    /** Smallest sample that lands in bucket i. */
    static uint64_t
    bucketLowerBound(size_t i)
    {
        return i == 0 ? 0 : uint64_t(1) << (i - 1);
    }

    void
    observe(uint64_t v)
    {
        buckets[bucketOf(v)] += 1;
        if (count == 0 || v < min)
            min = v;
        if (count == 0 || v > max)
            max = v;
        count += 1;
        sum += v;
    }

    void
    merge(const HistogramData &o)
    {
        if (o.count == 0)
            return;
        if (count == 0 || o.min < min)
            min = o.min;
        if (count == 0 || o.max > max)
            max = o.max;
        count += o.count;
        sum += o.sum;
        for (size_t i = 0; i < kBuckets; ++i)
            buckets[i] += o.buckets[i];
    }

    bool operator==(const HistogramData &o) const = default;
};

/** Merged view of one metric across every shard. */
struct MetricSnapshot
{
    Kind kind = Kind::Counter;
    Stability stability = Stability::Stable;
    /** label -> value (counters and gauges). */
    std::map<std::string, uint64_t> values;
    /** label -> histogram (Kind::Histogram only). */
    std::map<std::string, HistogramData> histograms;
};

/** Point-in-time merged view of a whole registry. */
struct Snapshot
{
    std::map<std::string, MetricSnapshot> metrics;

    /** Metric by exact name, or nullptr. */
    const MetricSnapshot *find(std::string_view name) const;

    /** Counter/gauge value for (name, label); 0 when absent. */
    uint64_t value(std::string_view name,
                   std::string_view label = "") const;

    /**
     * Deterministic JSON dump: {"schema":1,"stable":{...},
     * "volatile":{...}} with metric names nested on '.' and labels
     * as leaf object keys, everything sorted. Truncating the text at
     * the "volatile" key leaves exactly the Stable section.
     */
    std::string renderJson() const;
};

/**
 * A sharded metric registry. Instantiable — the executor creates
 * one per job as a transaction buffer — with one process-wide
 * instance behind global().
 */
class Registry
{
  public:
    Registry() = default;
    Registry(const Registry &) = delete;
    Registry &operator=(const Registry &) = delete;

    void countAdd(std::string_view name, std::string_view label,
                  uint64_t delta, Stability st);
    /** Gauges merge by max (associative, commutative); a plain
     *  last-write-wins gauge would make shard merges order-
     *  dependent. */
    void gaugeMax(std::string_view name, std::string_view label,
                  uint64_t value, Stability st);
    void observe(std::string_view name, std::string_view label,
                 uint64_t value, Stability st);

    /** Merge every shard into one deterministic view. */
    Snapshot snapshot() const;

    /**
     * Merge this registry's whole content into @p dst and clear it.
     * Used to commit a per-job transaction into the global registry
     * when the job succeeds (a failed job's transaction is simply
     * destroyed, dropping its metrics whole).
     */
    void drainInto(Registry &dst);

    void clear();

    static Registry &global();

  private:
    struct Metric
    {
        Kind kind = Kind::Counter;
        Stability stability = Stability::Stable;
        std::map<std::string, uint64_t> values;
        std::map<std::string, HistogramData> hists;
    };

    struct Shard
    {
        mutable std::mutex mu;
        std::map<std::string, Metric> metrics;
    };

    static constexpr size_t kShards = 16;
    std::array<Shard, kShards> shards;

    Shard &myShard();
    static Metric &slot(Shard &shard, std::string_view name,
                        Kind kind, Stability st);
};

/** The thread's scoped sink override; nullptr = global(). */
Registry *currentSinkOverride();

/** Registry the free helpers below write to on this thread. The
 *  thread-local slot lives entirely inside metrics.cc (same pattern
 *  as CancelScope's token). */
Registry &sink();

/**
 * Install @p r as the thread's metric sink for the scope's lifetime
 * (nullptr restores the global default). Mirrors CancelScope: the
 * executor installs the job transaction per attempt, and
 * parallelFor re-installs the caller's override on helper threads.
 */
class SinkScope
{
  public:
    explicit SinkScope(Registry *r);
    ~SinkScope();
    SinkScope(const SinkScope &) = delete;
    SinkScope &operator=(const SinkScope &) = delete;

  private:
    Registry *prev;
};

// Free helpers writing through the thread's sink.

inline void
count(std::string_view name, uint64_t delta = 1,
      Stability st = Stability::Stable)
{
    sink().countAdd(name, "", delta, st);
}

inline void
countLabeled(std::string_view name, std::string_view label,
             uint64_t delta, Stability st = Stability::Stable)
{
    sink().countAdd(name, label, delta, st);
}

inline void
gauge(std::string_view name, uint64_t value,
      Stability st = Stability::Volatile)
{
    sink().gaugeMax(name, "", value, st);
}

inline void
gaugeLabeled(std::string_view name, std::string_view label,
             uint64_t value, Stability st = Stability::Volatile)
{
    sink().gaugeMax(name, label, value, st);
}

inline void
observe(std::string_view name, uint64_t value,
        Stability st = Stability::Volatile)
{
    sink().observe(name, "", value, st);
}

inline void
observeLabeled(std::string_view name, std::string_view label,
               uint64_t value, Stability st = Stability::Volatile)
{
    sink().observe(name, label, value, st);
}

/** JSON-escape a string for embedding in "..." (shared with the
 *  trace writer). */
std::string jsonEscape(std::string_view s);

} // namespace metrics
} // namespace support
} // namespace rodinia

#endif // RODINIA_SUPPORT_METRICS_HH
