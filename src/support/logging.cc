#include "support/logging.hh"

namespace rodinia {
namespace detail {

void
fatalExit(const char *kind, const std::string &msg)
{
    std::fprintf(stderr, "%s: %s\n", kind, msg.c_str());
    std::exit(1);
}

} // namespace detail
} // namespace rodinia
