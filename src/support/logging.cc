#include "support/logging.hh"

namespace rodinia {

namespace support {
extern int allocAlignAnchor;
}

namespace detail {

// Pulls alloc_align.o (the operator new replacements) out of the
// static archive into every binary that can report an error — i.e.
// all of them.
int *const kAllocAlignAnchor = &support::allocAlignAnchor;

void
fatalExit(const char *kind, const std::string &msg)
{
    std::fprintf(stderr, "%s: %s\n", kind, msg.c_str());
    std::exit(1);
}

} // namespace detail
} // namespace rodinia
