/**
 * @file
 * Scoped global allocation alignment for reproducible address
 * grouping.
 *
 * The characterization pipeline canonicalizes raw addresses by
 * first-touch order (trace::TraceSession::normalizeAddresses), which
 * makes page/line *identities* process-independent. What it cannot
 * repair is *grouping*: whether a 12-byte access straddles a 64 B
 * line, or whether two small arrays share a 4 kB page, is decided by
 * each allocation's base address modulo the line/page size — and
 * glibc hands threads malloc arenas by a timing-dependent trylock
 * race, so an allocation's phase drifts with scheduling history.
 *
 * These operator new replacements pin the phase instead of the
 * address: while a support::DeterministicAllocScope is alive, every
 * allocation of 64 bytes or more is page-aligned (so no two
 * allocations ever share a page), and smaller ones are line-aligned
 * (so no two ever share a 64 B line). Line-straddle splits and
 * page/line grouping are then pure functions of the allocation's
 * internal layout, independent of which arena served it.
 *
 * The alignment is scoped — core::characterizeCpu holds a scope
 * across the traced workload run — because pinning is not free:
 * page-aligning every vector in the process roughly doubles the GPU
 * simulator's wall clock (posix_memalign over-allocates, and
 * same-page locality between small hot allocations is lost). Only
 * traced CPU-workload data needs pinned phase; everything else runs
 * on plain malloc.
 *
 * Linked into every binary via the anchor referenced from
 * logging.cc (a plain static-archive member with no referenced
 * symbol would be dropped by the linker).
 */

#include "support/alloc_align.hh"

#include <atomic>
#include <cstddef>
#include <cstdlib>
#include <new>

#include "support/faultinject.hh"

namespace {

std::atomic<int> liveScopes{0};

} // namespace

namespace rodinia {
namespace support {

// Referenced from logging.cc purely to pull this object file out of
// the static archive.
int allocAlignAnchor = 0;

DeterministicAllocScope::DeterministicAllocScope()
{
    liveScopes.fetch_add(1, std::memory_order_relaxed);
}

DeterministicAllocScope::~DeterministicAllocScope()
{
    liveScopes.fetch_sub(1, std::memory_order_relaxed);
}

bool
deterministicAllocationActive()
{
    return liveScopes.load(std::memory_order_relaxed) > 0;
}

} // namespace support
} // namespace rodinia

namespace {

constexpr std::size_t kLine = 64;
constexpr std::size_t kPage = 4096;

void *
alignedAlloc(std::size_t size, std::size_t minAlign)
{
    // Injected allocation failure (armed per-thread by the executor
    // around job bodies; a no-op single thread-local read otherwise).
    // Bypasses the new_handler loop: an injected failure models
    // exhaustion that no handler could relieve.
    if (rodinia::support::FaultInjector::shouldFailAlloc())
        return nullptr;
    if (size == 0)
        size = 1;
    std::size_t align = minAlign;
    if (rodinia::support::deterministicAllocationActive()) {
        std::size_t pin = size < kLine ? kLine : kPage;
        if (align < pin)
            align = pin;
    }
    for (;;) {
        void *p = nullptr;
        if (align <= alignof(std::max_align_t)) {
            p = std::malloc(size);
            if (p)
                return p;
        } else if (posix_memalign(&p, align, size) == 0) {
            return p;
        }
        std::new_handler h = std::get_new_handler();
        if (!h)
            return nullptr;
        h();
    }
}

} // namespace

void *
operator new(std::size_t size)
{
    void *p = alignedAlloc(size, alignof(std::max_align_t));
    if (!p)
        throw std::bad_alloc();
    return p;
}

void *
operator new[](std::size_t size)
{
    return operator new(size);
}

void *
operator new(std::size_t size, std::align_val_t align)
{
    void *p = alignedAlloc(size, std::size_t(align));
    if (!p)
        throw std::bad_alloc();
    return p;
}

void *
operator new[](std::size_t size, std::align_val_t align)
{
    return operator new(size, align);
}

void *
operator new(std::size_t size, const std::nothrow_t &) noexcept
{
    return alignedAlloc(size, alignof(std::max_align_t));
}

void *
operator new[](std::size_t size, const std::nothrow_t &) noexcept
{
    return alignedAlloc(size, alignof(std::max_align_t));
}

void *
operator new(std::size_t size, std::align_val_t align,
             const std::nothrow_t &) noexcept
{
    return alignedAlloc(size, std::size_t(align));
}

void *
operator new[](std::size_t size, std::align_val_t align,
               const std::nothrow_t &) noexcept
{
    return alignedAlloc(size, std::size_t(align));
}

void
operator delete(void *p) noexcept
{
    std::free(p);
}

void
operator delete[](void *p) noexcept
{
    std::free(p);
}

void
operator delete(void *p, std::size_t) noexcept
{
    std::free(p);
}

void
operator delete[](void *p, std::size_t) noexcept
{
    std::free(p);
}

void
operator delete(void *p, std::align_val_t) noexcept
{
    std::free(p);
}

void
operator delete[](void *p, std::align_val_t) noexcept
{
    std::free(p);
}

void
operator delete(void *p, std::size_t, std::align_val_t) noexcept
{
    std::free(p);
}

void
operator delete[](void *p, std::size_t, std::align_val_t) noexcept
{
    std::free(p);
}

void
operator delete(void *p, const std::nothrow_t &) noexcept
{
    std::free(p);
}

void
operator delete[](void *p, const std::nothrow_t &) noexcept
{
    std::free(p);
}
