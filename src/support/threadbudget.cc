#include "support/threadbudget.hh"

#include <thread>

namespace rodinia {
namespace support {

ThreadBudget &
ThreadBudget::instance()
{
    static ThreadBudget b;
    return b;
}

ThreadBudget::ThreadBudget()
{
    int hw = int(std::thread::hardware_concurrency());
    cap.store(hw > 0 ? hw : 1, std::memory_order_relaxed);
}

void
ThreadBudget::setCapacity(int n)
{
    cap.store(n > 0 ? n : 1, std::memory_order_relaxed);
}

void
ThreadBudget::markActive()
{
    used.fetch_add(1, std::memory_order_relaxed);
}

void
ThreadBudget::markIdle()
{
    used.fetch_sub(1, std::memory_order_relaxed);
}

int
ThreadBudget::tryAcquire(int want)
{
    if (want <= 0)
        return 0;
    int cur = used.load(std::memory_order_relaxed);
    for (;;) {
        int free = cap.load(std::memory_order_relaxed) - cur;
        // A completely unreserved budget always yields one helper
        // even when capacity == active == 0 reservations would say
        // no: see the header comment.
        int grant = free > 0 ? (free < want ? free : want)
                             : (cur == 0 ? 1 : 0);
        if (grant == 0)
            return 0;
        if (used.compare_exchange_weak(cur, cur + grant,
                                       std::memory_order_relaxed))
            return grant;
    }
}

void
ThreadBudget::release(int n)
{
    if (n > 0)
        used.fetch_sub(n, std::memory_order_relaxed);
}

} // namespace support
} // namespace rodinia
