/**
 * @file
 * Deterministic pseudo-random number generation.
 *
 * All workloads draw randomness through Rng so that every figure the
 * benchmark harness produces is bit-reproducible across runs and
 * platforms. The core generator is xorshift64star seeded through
 * splitmix64, which is fast, has no global state, and is identical on
 * every platform (unlike std::default_random_engine distributions).
 */

#ifndef RODINIA_SUPPORT_RNG_HH
#define RODINIA_SUPPORT_RNG_HH

#include <cmath>
#include <cstdint>

namespace rodinia {

/** Small deterministic RNG with uniform and Gaussian draws. */
class Rng
{
  public:
    /** Seed via splitmix64 so nearby seeds give unrelated streams. */
    explicit Rng(uint64_t seed = 0x9e3779b97f4a7c15ULL)
    {
        uint64_t z = seed + 0x9e3779b97f4a7c15ULL;
        z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
        z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
        state = z ^ (z >> 31);
        if (state == 0)
            state = 0x2545f4914f6cdd1dULL;
    }

    /** Next raw 64-bit value (xorshift64star). */
    uint64_t
    next()
    {
        state ^= state >> 12;
        state ^= state << 25;
        state ^= state >> 27;
        return state * 0x2545f4914f6cdd1dULL;
    }

    /** Uniform double in [0, 1). */
    double
    uniform()
    {
        return (next() >> 11) * (1.0 / 9007199254740992.0);
    }

    /** Uniform double in [lo, hi). */
    double
    uniform(double lo, double hi)
    {
        return lo + (hi - lo) * uniform();
    }

    /**
     * Uniform integer in [0, n). n must be > 0.
     *
     * Unbiased bounded draw by masked rejection: draw ceil(log2 n)
     * bits and retry values >= n (at most ~2 draws expected). A
     * plain `next() % n` is modulo-biased whenever n does not divide
     * 2^64 — catastrophically so for n near 2^63, where low values
     * are twice as likely. Power-of-two n accepts every draw and the
     * mask equals n - 1, so those call sites keep the exact stream
     * the modulo version produced.
     */
    uint64_t
    below(uint64_t n)
    {
        if (n <= 1)
            return 0;
        uint64_t mask = n - 1;
        mask |= mask >> 1;
        mask |= mask >> 2;
        mask |= mask >> 4;
        mask |= mask >> 8;
        mask |= mask >> 16;
        mask |= mask >> 32;
        uint64_t v = next() & mask;
        while (v >= n)
            v = next() & mask;
        return v;
    }

    /** Uniform integer in [lo, hi]. */
    int64_t
    range(int64_t lo, int64_t hi)
    {
        return lo + int64_t(below(uint64_t(hi - lo + 1)));
    }

    /** Standard normal draw via Box-Muller (one value per call). */
    double
    gaussian()
    {
        if (haveSpare) {
            haveSpare = false;
            return spare;
        }
        double u1 = uniform();
        double u2 = uniform();
        if (u1 < 1e-300)
            u1 = 1e-300;
        double r = std::sqrt(-2.0 * std::log(u1));
        double theta = 6.283185307179586 * u2;
        spare = r * std::sin(theta);
        haveSpare = true;
        return r * std::cos(theta);
    }

    /** Bernoulli draw with probability p of true. */
    bool
    chance(double p)
    {
        return uniform() < p;
    }

  private:
    uint64_t state;
    double spare = 0.0;
    bool haveSpare = false;
};

} // namespace rodinia

#endif // RODINIA_SUPPORT_RNG_HH
