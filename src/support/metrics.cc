#include "support/metrics.hh"

#include <cstdio>
#include <functional>
#include <sstream>
#include <thread>
#include <vector>

#include "support/logging.hh"

namespace rodinia {
namespace support {
namespace metrics {

// File-local, like CancelScope's token: keeping the thread_local out
// of the header avoids cross-TU TLS-init-wrapper calls from inline
// code (which gcc+UBSan flag as a null store before first use).
namespace {
thread_local Registry *tlsSink = nullptr;
}

Registry *
currentSinkOverride()
{
    return tlsSink;
}

Registry &
sink()
{
    return tlsSink ? *tlsSink : Registry::global();
}

SinkScope::SinkScope(Registry *r) : prev(tlsSink)
{
    tlsSink = r;
}

SinkScope::~SinkScope()
{
    tlsSink = prev;
}

Registry &
Registry::global()
{
    static Registry instance;
    return instance;
}

Registry::Shard &
Registry::myShard()
{
    // One hash per thread lifetime: the shard choice only has to
    // spread threads out, not follow them around.
    static thread_local size_t idx =
        std::hash<std::thread::id>{}(std::this_thread::get_id()) %
        kShards;
    return shards[idx];
}

Registry::Metric &
Registry::slot(Shard &shard, std::string_view name, Kind kind,
               Stability st)
{
    auto [it, inserted] =
        shard.metrics.try_emplace(std::string(name));
    Metric &m = it->second;
    if (inserted) {
        m.kind = kind;
        m.stability = st;
    } else if (m.kind != kind || m.stability != st) {
        fatal("metric '", std::string(name),
              "' re-registered with a different kind or stability");
    }
    return m;
}

void
Registry::countAdd(std::string_view name, std::string_view label,
                   uint64_t delta, Stability st)
{
    Shard &shard = myShard();
    std::lock_guard<std::mutex> lock(shard.mu);
    slot(shard, name, Kind::Counter, st).values[std::string(label)] +=
        delta;
}

void
Registry::gaugeMax(std::string_view name, std::string_view label,
                   uint64_t value, Stability st)
{
    Shard &shard = myShard();
    std::lock_guard<std::mutex> lock(shard.mu);
    uint64_t &v =
        slot(shard, name, Kind::Gauge, st).values[std::string(label)];
    if (value > v)
        v = value;
}

void
Registry::observe(std::string_view name, std::string_view label,
                  uint64_t value, Stability st)
{
    Shard &shard = myShard();
    std::lock_guard<std::mutex> lock(shard.mu);
    slot(shard, name, Kind::Histogram, st)
        .hists[std::string(label)]
        .observe(value);
}

Snapshot
Registry::snapshot() const
{
    Snapshot snap;
    for (const Shard &shard : shards) {
        std::lock_guard<std::mutex> lock(shard.mu);
        for (const auto &[name, m] : shard.metrics) {
            auto [it, inserted] = snap.metrics.try_emplace(name);
            MetricSnapshot &out = it->second;
            if (inserted) {
                out.kind = m.kind;
                out.stability = m.stability;
            } else if (out.kind != m.kind ||
                       out.stability != m.stability) {
                fatal("metric '", name,
                      "' has conflicting kind/stability across "
                      "shards");
            }
            for (const auto &[label, v] : m.values) {
                if (m.kind == Kind::Gauge) {
                    uint64_t &dst = out.values[label];
                    if (v > dst)
                        dst = v;
                } else {
                    out.values[label] += v;
                }
            }
            for (const auto &[label, h] : m.hists)
                out.histograms[label].merge(h);
        }
    }
    return snap;
}

void
Registry::drainInto(Registry &dst)
{
    for (Shard &shard : shards) {
        std::map<std::string, Metric> taken;
        {
            std::lock_guard<std::mutex> lock(shard.mu);
            taken.swap(shard.metrics);
        }
        for (const auto &[name, m] : taken) {
            for (const auto &[label, v] : m.values) {
                if (m.kind == Kind::Gauge)
                    dst.gaugeMax(name, label, v, m.stability);
                else
                    dst.countAdd(name, label, v, m.stability);
            }
            for (const auto &[label, h] : m.hists) {
                Shard &dshard = dst.myShard();
                std::lock_guard<std::mutex> lock(dshard.mu);
                slot(dshard, name, Kind::Histogram, m.stability)
                    .hists[label]
                    .merge(h);
            }
        }
    }
}

void
Registry::clear()
{
    for (Shard &shard : shards) {
        std::lock_guard<std::mutex> lock(shard.mu);
        shard.metrics.clear();
    }
}

const MetricSnapshot *
Snapshot::find(std::string_view name) const
{
    auto it = metrics.find(std::string(name));
    return it == metrics.end() ? nullptr : &it->second;
}

uint64_t
Snapshot::value(std::string_view name, std::string_view label) const
{
    const MetricSnapshot *m = find(name);
    if (!m)
        return 0;
    auto it = m->values.find(std::string(label));
    return it == m->values.end() ? 0 : it->second;
}

std::string
jsonEscape(std::string_view s)
{
    std::string out;
    out.reserve(s.size());
    for (char c : s) {
        switch (c) {
        case '"':
            out += "\\\"";
            break;
        case '\\':
            out += "\\\\";
            break;
        case '\n':
            out += "\\n";
            break;
        case '\t':
            out += "\\t";
            break;
        case '\r':
            out += "\\r";
            break;
        default:
            if (static_cast<unsigned char>(c) < 0x20) {
                char buf[8];
                std::snprintf(buf, sizeof(buf), "\\u%04x",
                              unsigned(c));
                out += buf;
            } else {
                out += c;
            }
        }
    }
    return out;
}

namespace {

/** Tree node for nesting metric names on '.'. */
struct Node
{
    std::map<std::string, Node> kids;
    const MetricSnapshot *leaf = nullptr;
};

void
insertMetric(Node &root, const std::string &name,
             const MetricSnapshot &m)
{
    Node *node = &root;
    size_t at = 0;
    while (at <= name.size()) {
        size_t dot = name.find('.', at);
        std::string seg = dot == std::string::npos
                              ? name.substr(at)
                              : name.substr(at, dot - at);
        node = &node->kids[seg];
        if (dot == std::string::npos)
            break;
        at = dot + 1;
    }
    if (node->leaf || !node->kids.empty())
        fatal("metric name '", name,
              "' collides with another metric's name path");
    node->leaf = &m;
}

void
renderHistogram(std::ostringstream &os, const HistogramData &h,
                const std::string &pad)
{
    os << "{\n";
    os << pad << "  \"count\": " << h.count << ",\n";
    os << pad << "  \"sum\": " << h.sum << ",\n";
    os << pad << "  \"min\": " << (h.count ? h.min : 0) << ",\n";
    os << pad << "  \"max\": " << h.max << ",\n";
    os << pad << "  \"buckets\": {";
    bool first = true;
    for (size_t i = 0; i < HistogramData::kBuckets; ++i) {
        if (!h.buckets[i])
            continue;
        os << (first ? "" : ",") << "\n"
           << pad << "    \""
           << HistogramData::bucketLowerBound(i)
           << "\": " << h.buckets[i];
        first = false;
    }
    if (!first)
        os << "\n" << pad << "  ";
    os << "}\n" << pad << "}";
}

void
renderLeaf(std::ostringstream &os, const MetricSnapshot &m,
           const std::string &pad)
{
    bool singleUnlabeled =
        m.kind != Kind::Histogram
            ? (m.values.size() == 1 && m.values.begin()->first == "")
            : (m.histograms.size() == 1 &&
               m.histograms.begin()->first == "");
    if (m.kind != Kind::Histogram) {
        if (singleUnlabeled) {
            os << m.values.begin()->second;
            return;
        }
        os << "{";
        bool first = true;
        for (const auto &[label, v] : m.values) {
            os << (first ? "" : ",") << "\n"
               << pad << "  \"" << jsonEscape(label) << "\": " << v;
            first = false;
        }
        os << "\n" << pad << "}";
        return;
    }
    if (singleUnlabeled) {
        renderHistogram(os, m.histograms.begin()->second, pad);
        return;
    }
    os << "{";
    bool first = true;
    for (const auto &[label, h] : m.histograms) {
        os << (first ? "" : ",") << "\n"
           << pad << "  \"" << jsonEscape(label) << "\": ";
        renderHistogram(os, h, pad + "  ");
        first = false;
    }
    os << "\n" << pad << "}";
}

void
renderNode(std::ostringstream &os, const Node &node,
           const std::string &pad)
{
    if (node.leaf) {
        renderLeaf(os, *node.leaf, pad);
        return;
    }
    os << "{";
    bool first = true;
    for (const auto &[seg, kid] : node.kids) {
        os << (first ? "" : ",") << "\n"
           << pad << "  \"" << jsonEscape(seg) << "\": ";
        renderNode(os, kid, pad + "  ");
        first = false;
    }
    if (!first)
        os << "\n" << pad;
    os << "}";
}

} // namespace

std::string
Snapshot::renderJson() const
{
    // Two independent trees so the Stable section is a prefix of
    // the document — the determinism tests truncate at "volatile".
    Node stable, vol;
    for (const auto &[name, m] : metrics)
        insertMetric(m.stability == Stability::Stable ? stable : vol,
                     name, m);
    std::ostringstream os;
    os << "{\n  \"schema\": 1,\n  \"stable\": ";
    renderNode(os, stable, "  ");
    os << ",\n  \"volatile\": ";
    renderNode(os, vol, "  ");
    os << "\n}\n";
    return os.str();
}

} // namespace metrics
} // namespace support
} // namespace rodinia
