/**
 * @file
 * Process-wide trace-representation mode.
 *
 * The CPU and GPU trace recorders both keep two interchangeable
 * storage strategies: the compact delta-encoded streams (default) and
 * the original materialized struct vectors, retained as a
 * byte-equivalence oracle. The mode is selected once per process from
 * the RODINIA_TRACE_ORACLE environment variable so a child process
 * can replay the identical workload under either representation and
 * the figure bytes can be diffed.
 *
 * Lives in support/ (not trace/) because gpusim must not depend on
 * the CPU trace library.
 */

#ifndef RODINIA_SUPPORT_TRACEMODE_HH
#define RODINIA_SUPPORT_TRACEMODE_HH

namespace rodinia {
namespace support {

/**
 * True when RODINIA_TRACE_ORACLE is set to a non-empty value other
 * than "0": trace recorders materialize plain event vectors instead
 * of delta-encoded streams. Latched on first call.
 */
bool traceOracleMode();

/**
 * Test-only override of the latched mode; returns the previous
 * value. Not thread-safe — call only while no trace is recording.
 */
bool setTraceOracleModeForTest(bool materialized);

} // namespace support
} // namespace rodinia

#endif // RODINIA_SUPPORT_TRACEMODE_HH
