#include "workloads/rodinia/hotspot.hh"

#include "gpusim/devicemem.hh"
#include "support/rng.hh"

namespace rodinia {
namespace workloads {

namespace {

const core::WorkloadInfo kInfo = {
    "hotspot",
    "HotSpot",
    core::Suite::Rodinia,
    "Structured Grid",
    "Physics Simulation",
    "256x256 data points",
    "Transient chip thermal simulation with a 5-point stencil",
    "500x500 grid (Table I), 60 of 360 iterations",
};

constexpr int kBlock = 16;
constexpr float kCap = 0.5f;   // thermal capacitance coefficient
constexpr float kCx = 0.1f;    // lateral conduction coefficients
constexpr float kCy = 0.1f;
constexpr float kCz = 0.05f;   // vertical (to ambient)
constexpr float kAmb = 80.0f;  // ambient temperature

void
makeInput(const HotSpot::Params &p, std::vector<float> &temp,
          std::vector<float> &power)
{
    Rng rng(0x407507);
    temp.resize(size_t(p.rows) * p.cols);
    power.resize(size_t(p.rows) * p.cols);
    for (auto &t : temp)
        t = float(rng.uniform(320.0, 340.0));
    for (auto &w : power)
        w = float(rng.uniform(0.0, 5.0));
}

/** One stencil update for cell (r, c); clamped neighbors. */
inline float
cellUpdate(const std::vector<float> &in, const std::vector<float> &power,
           int rows, int cols, int r, int c)
{
    size_t i = size_t(r) * cols + c;
    float center = in[i];
    float north = r > 0 ? in[i - cols] : center;
    float south = r < rows - 1 ? in[i + cols] : center;
    float west = c > 0 ? in[i - 1] : center;
    float east = c < cols - 1 ? in[i + 1] : center;
    float delta = kCap * (power[i] + kCy * (north + south - 2 * center) +
                          kCx * (west + east - 2 * center) +
                          kCz * (kAmb - center));
    return center + delta;
}

} // namespace

HotSpot::Params
HotSpot::params(core::Scale scale)
{
    switch (scale) {
      case core::Scale::Tiny:
        return {64, 64, 2};
      case core::Scale::Small:
        return {128, 128, 2};
      case core::Scale::Paper:
        return {500, 500, 60};
      case core::Scale::Full:
      default:
        return {256, 256, 4};
    }
}

const core::WorkloadInfo &
HotSpot::info() const
{
    return kInfo;
}

std::vector<float>
HotSpot::reference(const Params &p)
{
    std::vector<float> temp, power;
    makeInput(p, temp, power);
    std::vector<float> out(temp.size());
    for (int it = 0; it < p.iters; ++it) {
        for (int r = 0; r < p.rows; ++r)
            for (int c = 0; c < p.cols; ++c)
                out[size_t(r) * p.cols + c] =
                    cellUpdate(temp, power, p.rows, p.cols, r, c);
        std::swap(temp, out);
    }
    return temp;
}

void
HotSpot::runCpu(trace::TraceSession &session, core::Scale scale)
{
    const Params p = params(scale);
    std::vector<float> temp, power;
    makeInput(p, temp, power);
    std::vector<float> next(temp.size());
    const int nt = session.numThreads();

    session.run([&](trace::ThreadCtx &ctx) {
        // Hot-code size of the application this
        // workload models (Fig. 11 substitution).
        ctx.codeRegion(8 * 1024);
        const int t = ctx.tid();
        const int rlo = p.rows * t / nt;
        const int rhi = p.rows * (t + 1) / nt;
        for (int it = 0; it < p.iters; ++it) {
            const std::vector<float> &in = (it % 2 == 0) ? temp : next;
            std::vector<float> &out = (it % 2 == 0) ? next : temp;
            for (int r = rlo; r < rhi; ++r) {
                // 4-wide vectorized row sweep.
                for (int c = 0; c < p.cols; c += 4) {
                    size_t i = size_t(r) * p.cols + c;
                    ctx.load(&in[i], 16);
                    if (r > 0)
                        ctx.load(&in[i - p.cols], 16);
                    if (r < p.rows - 1)
                        ctx.load(&in[i + p.cols], 16);
                    ctx.load(&in[i > 0 ? i - 1 : i], 16);
                    ctx.load(&power[i], 16);
                    ctx.fp(12);
                    ctx.branch();
                    for (int u = 0; u < 4 && c + u < p.cols; ++u)
                        out[i + u] = cellUpdate(in, power, p.rows,
                                                p.cols, r, c + u);
                    ctx.store(&out[i], 16);
                }
            }
            ctx.barrier();
        }
    });

    const std::vector<float> &fin = (p.iters % 2 == 0) ? temp : next;
    digest = core::hashRange(fin.begin(), fin.end());
}

gpusim::LaunchSequence
HotSpot::runGpu(core::Scale scale, int version)
{
    (void)version;
    const Params p = params(scale);
    std::vector<float> temp, power;
    makeInput(p, temp, power);
    std::vector<float> next(temp.size());

    const int tilesX = p.cols / kBlock;
    const int tilesY = p.rows / kBlock;
    gpusim::LaunchConfig launch;
    launch.gridDim = tilesX * tilesY;
    launch.blockDim = kBlock * kBlock;

    // Ghost-zone (pyramid) kernel [24]: each launch loads a tile
    // with a 2-cell halo into shared memory and advances TWO time
    // steps before writing back, amortizing global traffic over
    // twice the compute — the structure of Rodinia's hotspot kernel.
    const int d0 = kBlock + 4; // input tile incl. 2-cell halo
    const int d1 = kBlock + 2; // after the first internal step

    gpusim::DeviceSpace dev;
    dev.add(temp);
    dev.add(power);
    dev.add(next);

    gpusim::LaunchSequence seq;
    for (int it = 0; it + 1 < p.iters; it += 2) {
        std::vector<float> &in = (it % 4 == 0) ? temp : next;
        std::vector<float> &out = (it % 4 == 0) ? next : temp;

        auto kernel = [&](gpusim::KernelCtx &ctx) {
            const int tile = ctx.blockIdx();
            const int gr0 = (tile / tilesX) * kBlock - 2;
            const int gc0 = (tile % tilesX) * kBlock - 2;
            const int lty = ctx.tid() / kBlock;
            const int ltx = ctx.tid() % kBlock;
            const int nthreads = kBlock * kBlock;

            auto tin = ctx.shared<float>(size_t(d0) * d0);
            auto tpow = ctx.shared<float>(size_t(d0) * d0);
            auto tmid = ctx.shared<float>(size_t(d1) * d1);

            // Cooperative halo load (coordinates clamped into the
            // image; clamped halo cells are never consumed).
            for (int idx = ctx.tid(); idx < d0 * d0; idx += nthreads) {
                gpusim::LoopIter li(ctx, uint32_t(idx / nthreads));
                int gr = std::clamp(gr0 + idx / d0, 0, p.rows - 1);
                int gc = std::clamp(gc0 + idx % d0, 0, p.cols - 1);
                size_t gi = size_t(gr) * p.cols + gc;
                tin.put(ctx, idx, ctx.ldg(&in[gi]));
                tpow.put(ctx, idx, ctx.ldg(&power[gi]));
            }
            ctx.sync();

            auto stencil = [&](auto &&get_at, int r, int c, float pw) {
                float center = get_at(r, c);
                float north = r > 0 ? get_at(r - 1, c) : center;
                float south = r < p.rows - 1 ? get_at(r + 1, c)
                                             : center;
                float west = c > 0 ? get_at(r, c - 1) : center;
                float east = c < p.cols - 1 ? get_at(r, c + 1)
                                            : center;
                return center +
                       kCap * (pw +
                               kCy * (north + south - 2 * center) +
                               kCx * (west + east - 2 * center) +
                               kCz * (kAmb - center));
            };

            // Internal step 1: compute the (kBlock+2)^2 mid region.
            for (int idx = ctx.tid(); idx < d1 * d1; idx += nthreads) {
                gpusim::LoopIter li(ctx, uint32_t(idx / nthreads));
                int lr = idx / d1, lc = idx % d1; // local in mid grid
                int r = gr0 + 1 + lr, c = gc0 + 1 + lc;
                if (ctx.branch(r >= 0 && r < p.rows && c >= 0 &&
                               c < p.cols)) {
                    auto at = [&](int rr, int cc) {
                        return tin.get(ctx,
                                       size_t(rr - gr0) * d0 + cc -
                                           gc0);
                    };
                    float pw =
                        tpow.get(ctx, size_t(r - gr0) * d0 + c - gc0);
                    ctx.fp(12);
                    tmid.put(ctx, idx, stencil(at, r, c, pw));
                } else {
                    tmid.put(ctx, idx, 0.0f);
                }
            }
            ctx.sync();

            // Internal step 2: each thread finishes its own cell.
            const int r = gr0 + 2 + lty;
            const int c = gc0 + 2 + ltx;
            auto at = [&](int rr, int cc) {
                return tmid.get(ctx, size_t(rr - gr0 - 1) * d1 + cc -
                                         gc0 - 1);
            };
            float pw = tpow.get(ctx, size_t(r - gr0) * d0 + c - gc0);
            ctx.fp(12);
            float v = stencil(at, r, c, pw);
            ctx.stg(&out[size_t(r) * p.cols + c], v);
        };
        seq.add(gpusim::recordKernel(launch, kernel));
    }

    // An odd trailing iteration (not used by the default sizes)
    // would fall back to the host; keep iters even.
    const std::vector<float> &fin = (p.iters / 2 % 2 == 0) ? temp : next;
    digest = core::hashRange(fin.begin(), fin.end());
    dev.rewrite(seq);
    return seq;
}

void
registerHotspot()
{
    core::Registry::instance().add(
        kInfo, [] { return std::make_unique<HotSpot>(); });
}

} // namespace workloads
} // namespace rodinia
