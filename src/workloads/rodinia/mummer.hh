/**
 * @file
 * MUMmerGPU sequence alignment (Rodinia; Graph Traversal dwarf).
 *
 * High-throughput exact matching of short DNA queries against a
 * reference sequence. The reference's suffix tree is built on the
 * CPU with Ukkonen's algorithm (as in Schatz et al.) and traversed
 * per query on the GPU with the tree bound to texture memory. Query
 * paths and lengths diverge per thread, producing the severe warp
 * under-population the paper reports (more than 60% of MUMmer warps
 * have fewer than 5 active threads), and the tree's size makes
 * MUMmer the working-set and footprint outlier of the suite.
 */

#ifndef RODINIA_WORKLOADS_RODINIA_MUMMER_HH
#define RODINIA_WORKLOADS_RODINIA_MUMMER_HH

#include <cstdint>
#include <vector>

#include "core/workload.hh"

namespace rodinia {
namespace workloads {

/**
 * Suffix tree over a small-alphabet text, built with Ukkonen's
 * online algorithm in O(n). Alphabet symbols are 0..3 (A,C,G,T)
 * plus the terminal symbol 4, which must end the text.
 */
class SuffixTree
{
  public:
    static constexpr int kAlphabet = 5;
    static constexpr int kTerm = 4;

    struct Node
    {
        int start = -1; //!< edge label start index into the text
        int end = -1;   //!< exclusive end; leafEnd sentinel for leaves
        int slink = 0;  //!< suffix link
        int ch[kAlphabet] = {-1, -1, -1, -1, -1};
    };

    /**
     * Build the tree. The optional ThreadCtx instruments the
     * construction's memory accesses (the paper builds the tree on
     * the CPU before transferring it to the GPU).
     */
    explicit SuffixTree(std::vector<uint8_t> text,
                        trace::ThreadCtx *ctx = nullptr);

    /**
     * Length of the longest prefix of q[0..len) that occurs in the
     * text (uninstrumented reference walk).
     */
    int matchLength(const uint8_t *q, int len) const;

    const std::vector<Node> &allNodes() const { return nodes; }
    const std::vector<uint8_t> &textData() const { return text; }
    int root() const { return 0; }

    /** Exclusive end index of an edge, resolving the leaf sentinel. */
    int
    edgeEnd(const Node &n) const
    {
        return n.end == leafSentinel ? int(text.size()) : n.end;
    }

    static constexpr int leafSentinel = 1 << 29;

  private:
    void build(trace::ThreadCtx *ctx);
    int newNode(int start, int end);

    std::vector<uint8_t> text;
    std::vector<Node> nodes;
};

class Mummer : public core::Workload
{
  public:
    struct Params
    {
        int refLen;
        int numQueries;
        int queryLen;
    };

    static Params params(core::Scale scale);

    const core::WorkloadInfo &info() const override;
    void runCpu(trace::TraceSession &session, core::Scale scale) override;
    int gpuVersions() const override { return 1; }
    gpusim::LaunchSequence runGpu(core::Scale scale, int version) override;
    uint64_t checksum() const override { return digest; }

  private:
    uint64_t digest = 0;
};

void registerMummer();

} // namespace workloads
} // namespace rodinia

#endif // RODINIA_WORKLOADS_RODINIA_MUMMER_HH
