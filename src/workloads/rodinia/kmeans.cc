#include "workloads/rodinia/kmeans.hh"

#include <cmath>

#include "gpusim/devicemem.hh"
#include "support/rng.hh"

namespace rodinia {
namespace workloads {

namespace {

const core::WorkloadInfo kInfo = {
    "kmeans",
    "Kmeans",
    core::Suite::Rodinia,
    "Dense Linear Algebra",
    "Data Mining",
    "16384 points, 16 features, 5 clusters",
    "Distance-based iterative clustering of feature vectors",
    "204800 points, 34 features (Table I), 1 iteration",
};

/** Deterministic clustered dataset: k Gaussian blobs in d dims. */
void
makeDataset(const Kmeans::Params &p, std::vector<float> &points,
            std::vector<float> &centers)
{
    Rng rng(0xC0FFEE);
    std::vector<float> trueCenters(size_t(p.k) * p.d);
    for (auto &c : trueCenters)
        c = float(rng.uniform(-10.0, 10.0));

    points.resize(size_t(p.n) * p.d);
    for (int i = 0; i < p.n; ++i) {
        int blob = int(rng.below(uint64_t(p.k)));
        for (int f = 0; f < p.d; ++f)
            points[size_t(i) * p.d + f] =
                trueCenters[size_t(blob) * p.d + f] +
                float(rng.gaussian());
    }

    // Initial centers: first k points (standard Rodinia behavior).
    centers.assign(size_t(p.k) * p.d, 0.0f);
    for (int c = 0; c < p.k; ++c)
        for (int f = 0; f < p.d; ++f)
            centers[size_t(c) * p.d + f] = points[size_t(c) * p.d + f];
}

} // namespace

Kmeans::Params
Kmeans::params(core::Scale scale)
{
    switch (scale) {
      case core::Scale::Tiny:
        return {256, 8, 4, 2};
      case core::Scale::Small:
        return {1024, 16, 5, 2};
      case core::Scale::Paper:
        return {204800, 34, 5, 1};
      case core::Scale::Full:
      default:
        return {16384, 16, 5, 2};
    }
}

const core::WorkloadInfo &
Kmeans::info() const
{
    return kInfo;
}

void
Kmeans::runCpu(trace::TraceSession &session, core::Scale scale)
{
    const Params p = params(scale);
    std::vector<float> points, centers;
    makeDataset(p, points, centers);

    membership.assign(p.n, -1);
    const int nt = session.numThreads();
    // Per-thread partial sums for the center-update reduction.
    std::vector<std::vector<double>> partialSum(
        nt, std::vector<double>(size_t(p.k) * p.d, 0.0));
    // Flat nt x k counts: one allocation, so the traced reduction
    // addresses don't depend on where nt tiny vectors landed.
    std::vector<int> partialCount(size_t(nt) * p.k, 0);

    session.run([&](trace::ThreadCtx &ctx) {
        // Hot-code size of the application this
        // workload models (Fig. 11 substitution).
        ctx.codeRegion(15 * 1024);
        const int t = ctx.tid();
        const int lo = p.n * t / nt;
        const int hi = p.n * (t + 1) / nt;

        for (int iter = 0; iter < p.iters; ++iter) {
            auto &sums = partialSum[t];
            int *counts = &partialCount[size_t(t) * p.k];
            std::fill(sums.begin(), sums.end(), 0.0);
            std::fill(counts, counts + p.k, 0);

            // Assignment phase: nearest center per point.
            for (int i = lo; i < hi; ++i) {
                float best = 1e30f;
                int bestC = 0;
                for (int c = 0; c < p.k; ++c) {
                    float dist = 0.0f;
                    // 4-wide vectorized distance accumulation.
                    for (int f = 0; f < p.d; f += 4) {
                        ctx.load(&points[size_t(i) * p.d + f], 16);
                        ctx.load(&centers[size_t(c) * p.d + f], 16);
                        ctx.fp(3);
                        for (int u = 0; u < 4 && f + u < p.d; ++u) {
                            float diff = points[size_t(i) * p.d + f + u] -
                                         centers[size_t(c) * p.d + f + u];
                            dist += diff * diff;
                        }
                    }
                    ctx.branch();
                    if (dist < best) {
                        best = dist;
                        bestC = c;
                    }
                }
                ctx.st(&membership[i], bestC);
                ctx.alu(2);
                counts[bestC]++;
                for (int f = 0; f < p.d; f += 4) {
                    ctx.load(&points[size_t(i) * p.d + f], 16);
                    ctx.store(&sums[size_t(bestC) * p.d + f], 32);
                    ctx.fp(2);
                    for (int u = 0; u < 4 && f + u < p.d; ++u)
                        sums[size_t(bestC) * p.d + f + u] +=
                            points[size_t(i) * p.d + f + u];
                }
            }

            ctx.barrier();

            // Thread 0 reduces partials into the new centers.
            if (t == 0) {
                for (int c = 0; c < p.k; ++c) {
                    int total = 0;
                    for (int w = 0; w < nt; ++w) {
                        ctx.load(&partialCount[size_t(w) * p.k + c], 4);
                        total += partialCount[size_t(w) * p.k + c];
                        ctx.alu(1);
                    }
                    if (total == 0)
                        continue;
                    for (int f = 0; f < p.d; ++f) {
                        double s = 0.0;
                        for (int w = 0; w < nt; ++w) {
                            ctx.load(&partialSum[w][size_t(c) * p.d + f],
                                     8);
                            s += partialSum[w][size_t(c) * p.d + f];
                            ctx.fp(1);
                        }
                        float v = float(s / total);
                        ctx.store(&centers[size_t(c) * p.d + f], 4);
                        centers[size_t(c) * p.d + f] = v;
                    }
                }
            }

            ctx.barrier();
        }
    });

    digest = core::hashRange(membership.begin(), membership.end());
    digest = core::hashCombine(
        digest, core::hashRange(centers.begin(), centers.end()));
}

gpusim::LaunchSequence
Kmeans::runGpu(core::Scale scale, int version)
{
    (void)version;
    const Params p = params(scale);
    std::vector<float> points, centers;
    makeDataset(p, points, centers);
    membership.assign(p.n, -1);

    // Feature-major layout so lane f-accesses coalesce, as in the
    // Rodinia CUDA port.
    std::vector<float> pointsT(size_t(p.d) * p.n);
    for (int i = 0; i < p.n; ++i)
        for (int f = 0; f < p.d; ++f)
            pointsT[size_t(f) * p.n + i] = points[size_t(i) * p.d + f];

    gpusim::DeviceSpace dev;
    dev.add(pointsT);
    dev.add(centers);
    dev.add(membership);

    gpusim::LaunchSequence seq;
    const int blockDim = 128;
    gpusim::LaunchConfig launch;
    launch.blockDim = blockDim;
    launch.gridDim = (p.n + blockDim - 1) / blockDim;

    for (int iter = 0; iter < p.iters; ++iter) {
        // Assignment kernel: one thread per point, centers in
        // texture memory.
        auto rec = gpusim::recordKernel(launch, [&](gpusim::KernelCtx
                                                        &ctx) {
            int i = ctx.globalId();
            if (ctx.branch(i >= p.n))
                return;
            float best = 1e30f;
            int bestC = 0;
            for (int c = 0; c < p.k; ++c) {
                float dist = 0.0f;
                for (int f = 0; f < p.d; ++f) {
                    // Rodinia binds the feature array (and centers)
                    // to texture memory.
                    float pv = ctx.ldt(&pointsT[size_t(f) * p.n + i]);
                    float cv = ctx.ldt(&centers[size_t(c) * p.d + f]);
                    ctx.fp(3);
                    float diff = pv - cv;
                    dist += diff * diff;
                }
                if (ctx.branch(dist < best)) {
                    best = dist;
                    bestC = c;
                }
            }
            ctx.stg(&membership[i], bestC);
        });
        seq.add(std::move(rec));

        // Center update on the host (as Rodinia does): recompute
        // from memberships, no kernel recorded.
        std::vector<double> sums(size_t(p.k) * p.d, 0.0);
        std::vector<int> counts(p.k, 0);
        for (int i = 0; i < p.n; ++i) {
            int c = membership[i];
            counts[c]++;
            for (int f = 0; f < p.d; ++f)
                sums[size_t(c) * p.d + f] += points[size_t(i) * p.d + f];
        }
        for (int c = 0; c < p.k; ++c) {
            if (!counts[c])
                continue;
            for (int f = 0; f < p.d; ++f)
                centers[size_t(c) * p.d + f] =
                    float(sums[size_t(c) * p.d + f] / counts[c]);
        }
    }

    digest = core::hashRange(membership.begin(), membership.end());
    digest = core::hashCombine(
        digest, core::hashRange(centers.begin(), centers.end()));
    dev.rewrite(seq);
    return seq;
}

void
registerKmeans()
{
    core::Registry::instance().add(
        kInfo, [] { return std::make_unique<Kmeans>(); });
}

} // namespace workloads
} // namespace rodinia
