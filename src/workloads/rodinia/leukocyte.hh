/**
 * @file
 * Leukocyte Tracking (Rodinia; Structured Grid dwarf).
 *
 * Detects leukocytes in a video frame by computing a GICOV-style
 * score per interior pixel from samples along a circle (sine/cosine
 * sample tables and stencil weights in constant memory, the image in
 * texture memory), then applies a dilation pass. Table III's
 * incremental versions are reproduced: v1 launches one thread per
 * pixel and writes scores to global memory; v2 uses persistent
 * thread blocks that keep intermediate scores in shared memory,
 * eliminating nearly all global traffic (Boyer et al. [6]).
 */

#ifndef RODINIA_WORKLOADS_RODINIA_LEUKOCYTE_HH
#define RODINIA_WORKLOADS_RODINIA_LEUKOCYTE_HH

#include <vector>

#include "core/workload.hh"

namespace rodinia {
namespace workloads {

class Leukocyte : public core::Workload
{
  public:
    struct Params
    {
        int rows;
        int cols;
        int samples; //!< circle sample count per pixel
        int margin;  //!< interior margin (circle radius)
    };

    static Params params(core::Scale scale);

    const core::WorkloadInfo &info() const override;
    void runCpu(trace::TraceSession &session, core::Scale scale) override;
    int gpuVersions() const override { return 2; }
    gpusim::LaunchSequence runGpu(core::Scale scale, int version) override;
    uint64_t checksum() const override { return digest; }

  private:
    uint64_t digest = 0;
};

void registerLeukocyte();

} // namespace workloads
} // namespace rodinia

#endif // RODINIA_WORKLOADS_RODINIA_LEUKOCYTE_HH
