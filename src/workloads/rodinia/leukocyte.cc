#include "workloads/rodinia/leukocyte.hh"

#include <cmath>

#include "gpusim/devicemem.hh"
#include "support/rng.hh"

namespace rodinia {
namespace workloads {

namespace {

const core::WorkloadInfo kInfo = {
    "leukocyte",
    "Leukocyte Tracking",
    core::Suite::Rodinia,
    "Structured Grid",
    "Medical Imaging",
    "160x320 pixels/frame",
    "GICOV cell detection with circle sampling and dilation",
    "219x640 frame (Table I)",
};

struct LcData
{
    std::vector<float> image;
    std::vector<float> sinT, cosT, weightT; //!< constant tables
    std::vector<int> dy, dx;                //!< sample offsets
    std::vector<float> score;
    std::vector<float> dilated;
};

void
makeData(const Leukocyte::Params &p, LcData &d)
{
    Rng rng(0x1E0C);
    d.image.resize(size_t(p.rows) * p.cols);
    for (auto &v : d.image)
        v = float(rng.uniform(0.0, 255.0));

    // The sample tables are tiny (8 floats at full scale) and their
    // addresses are traced; reserve at least a cache line so the
    // allocation crosses the page-alignment threshold and the tables
    // never share a page with an unrelated allocation.
    const size_t tableCap = std::max<size_t>(p.samples, 16);
    d.sinT.reserve(tableCap);
    d.cosT.reserve(tableCap);
    d.weightT.reserve(tableCap);
    d.sinT.resize(p.samples);
    d.cosT.resize(p.samples);
    d.weightT.resize(p.samples);
    d.dy.resize(p.samples);
    d.dx.resize(p.samples);
    for (int s = 0; s < p.samples; ++s) {
        double a = 2.0 * 3.14159265358979 * s / p.samples;
        d.sinT[s] = float(std::sin(a));
        d.cosT[s] = float(std::cos(a));
        d.weightT[s] = float(rng.uniform(0.5, 1.5));
        d.dy[s] = int(std::lround((p.margin - 1) * std::sin(a)));
        d.dx[s] = int(std::lround((p.margin - 1) * std::cos(a)));
    }
    d.score.assign(d.image.size(), 0.0f);
    d.dilated.assign(d.image.size(), 0.0f);
}

/** GICOV-style score of one pixel (uninstrumented math). */
inline float
gicovAt(const LcData &d, int cols, int samples, int r, int c)
{
    float mean = 0.0f, var = 0.0f;
    for (int s = 0; s < samples; ++s) {
        float v = d.image[size_t(r + d.dy[s]) * cols + c + d.dx[s]] *
                  d.weightT[s] * (d.sinT[s] + d.cosT[s] + 2.0f);
        mean += v;
        var += v * v;
    }
    mean /= float(samples);
    var = var / float(samples) - mean * mean;
    return var > 1e-6f ? mean * mean / var : 0.0f;
}

} // namespace

Leukocyte::Params
Leukocyte::params(core::Scale scale)
{
    switch (scale) {
      case core::Scale::Tiny:
        return {40, 64, 8, 8};
      case core::Scale::Small:
        return {64, 128, 12, 8};
      case core::Scale::Paper:
        return {219, 640, 12, 8};
      case core::Scale::Full:
      default:
        return {160, 320, 12, 8};
    }
}

const core::WorkloadInfo &
Leukocyte::info() const
{
    return kInfo;
}

void
Leukocyte::runCpu(trace::TraceSession &session, core::Scale scale)
{
    const Params p = params(scale);
    LcData d;
    makeData(p, d);
    const int nt = session.numThreads();
    const int r0 = p.margin, r1 = p.rows - p.margin;

    session.run([&](trace::ThreadCtx &ctx) {
        // Hot-code size of the application this
        // workload models (Fig. 11 substitution).
        ctx.codeRegion(35 * 1024);
        const int t = ctx.tid();
        const int lo = r0 + (r1 - r0) * t / nt;
        const int hi = r0 + (r1 - r0) * (t + 1) / nt;

        // GICOV pass.
        for (int r = lo; r < hi; ++r) {
            for (int c = p.margin; c < p.cols - p.margin; ++c) {
                for (int s = 0; s < p.samples; ++s) {
                    ctx.load(&d.sinT[s], 4);
                    ctx.load(&d.weightT[s], 4);
                    ctx.load(&d.image[size_t(r + d.dy[s]) * p.cols + c +
                                      d.dx[s]],
                             4);
                    ctx.fp(5);
                }
                ctx.fp(6);
                d.score[size_t(r) * p.cols + c] =
                    gicovAt(d, p.cols, p.samples, r, c);
                ctx.store(&d.score[size_t(r) * p.cols + c], 4);
            }
        }
        ctx.barrier();

        // Dilation pass (3x3 max filter on the score map).
        for (int r = lo; r < hi; ++r) {
            for (int c = p.margin; c < p.cols - p.margin; ++c) {
                float mx = 0.0f;
                for (int wr = -1; wr <= 1; ++wr) {
                    ctx.load(&d.score[size_t(r + wr) * p.cols + c - 1],
                             12);
                    for (int wc = -1; wc <= 1; ++wc)
                        mx = std::max(
                            mx,
                            d.score[size_t(r + wr) * p.cols + c + wc]);
                }
                ctx.fp(9);
                ctx.branch();
                d.dilated[size_t(r) * p.cols + c] = mx;
                ctx.store(&d.dilated[size_t(r) * p.cols + c], 4);
            }
        }
    });

    digest = core::hashRange(d.dilated.begin(), d.dilated.end());
}

gpusim::LaunchSequence
Leukocyte::runGpu(core::Scale scale, int version)
{
    const Params p = params(scale);
    LcData d;
    makeData(p, d);
    const int r0 = p.margin, r1 = p.rows - p.margin;
    const int c0 = p.margin, c1 = p.cols - p.margin;
    const int width = c1 - c0;
    const int numPixels = (r1 - r0) * width;

    gpusim::DeviceSpace dev;
    dev.add(d.image);
    dev.add(d.sinT);
    dev.add(d.cosT);
    dev.add(d.weightT);
    dev.add(d.score);
    dev.add(d.dilated);

    gpusim::LaunchSequence seq;

    auto samplePixel = [&](gpusim::KernelCtx &ctx, int r, int c) {
        float mean = 0.0f, var = 0.0f;
        for (int s = 0; s < p.samples; ++s) {
            float sv = ctx.ldc(&d.sinT[s]);
            float cv = ctx.ldc(&d.cosT[s]);
            float wv = ctx.ldc(&d.weightT[s]);
            float iv = ctx.ldt(
                &d.image[size_t(r + d.dy[s]) * p.cols + c + d.dx[s]]);
            ctx.fp(5);
            float v = iv * wv * (sv + cv + 2.0f);
            mean += v;
            var += v * v;
        }
        ctx.fp(6);
        mean /= float(p.samples);
        var = var / float(p.samples) - mean * mean;
        return var > 1e-6f ? mean * mean / var : 0.0f;
    };

    if (version == 1) {
        // v1: one thread per pixel; scores to global memory.
        gpusim::LaunchConfig launch;
        launch.blockDim = 128;
        launch.gridDim = (numPixels + launch.blockDim - 1) /
                         launch.blockDim;
        auto gicov = [&](gpusim::KernelCtx &ctx) {
            int i = ctx.globalId();
            if (ctx.branch(i >= numPixels))
                return;
            int r = r0 + i / width;
            int c = c0 + i % width;
            float sc = samplePixel(ctx, r, c);
            d.score[size_t(r) * p.cols + c] = sc;
            ctx.stg(&d.score[size_t(r) * p.cols + c], sc);
        };
        seq.add(gpusim::recordKernel(launch, gicov));

        // Dilation kernel: score map re-read through texture.
        auto dilate = [&](gpusim::KernelCtx &ctx) {
            int i = ctx.globalId();
            if (ctx.branch(i >= numPixels))
                return;
            int r = r0 + i / width;
            int c = c0 + i % width;
            float mx = 0.0f;
            for (int wr = -1; wr <= 1; ++wr) {
                for (int wc = -1; wc <= 1; ++wc) {
                    float v = ctx.ldt(
                        &d.score[size_t(r + wr) * p.cols + c + wc]);
                    ctx.fp(1);
                    mx = std::max(mx, v);
                }
            }
            d.dilated[size_t(r) * p.cols + c] = mx;
            ctx.stg(&d.dilated[size_t(r) * p.cols + c], mx);
        };
        seq.add(gpusim::recordKernel(launch, dilate));
    } else {
        // v2: persistent thread blocks; per-chunk scores stay in
        // shared memory and only a per-block best survives. Enough
        // blocks are launched to fill every SM with resident CTAs.
        const int numBlocks = 224;
        const int blockDim = 128;
        gpusim::LaunchConfig launch;
        launch.gridDim = numBlocks;
        launch.blockDim = blockDim;
        std::vector<float> blockBest(numBlocks, 0.0f);
        dev.add(blockBest);

        auto persistent = [&](gpusim::KernelCtx &ctx) {
            auto scores = ctx.shared<float>(blockDim);
            auto best = ctx.shared<float>(blockDim);
            best.put(ctx, ctx.tid(), 0.0f);

            int chunks = (numPixels + numBlocks * blockDim - 1) /
                         (numBlocks * blockDim);
            for (int chunk = 0; chunk < chunks; ++chunk) {
                gpusim::LoopIter li(ctx, chunk);
                int i = (chunk * numBlocks + ctx.blockIdx()) * blockDim +
                        ctx.tid();
                if (ctx.branch(i < numPixels)) {
                    int r = r0 + i / width;
                    int c = c0 + i % width;
                    float sc = samplePixel(ctx, r, c);
                    d.score[size_t(r) * p.cols + c] = sc;
                    scores.put(ctx, ctx.tid(), sc);
                    float b = best.get(ctx, ctx.tid());
                    ctx.fp(1);
                    if (sc > b)
                        best.put(ctx, ctx.tid(), sc);
                }
                ctx.sync();
            }

            // Block-level max reduction in shared memory.
            for (int stride = blockDim / 2; stride > 0; stride /= 2) {
                gpusim::LoopIter li(ctx, uint32_t(stride));
                if (ctx.branch(ctx.tid() < stride)) {
                    float a = best.get(ctx, ctx.tid());
                    float b = best.get(ctx, ctx.tid() + stride);
                    ctx.fp(1);
                    if (b > a)
                        best.put(ctx, ctx.tid(), b);
                }
                ctx.sync();
            }
            if (ctx.branch(ctx.tid() == 0))
                ctx.stg(&blockBest[ctx.blockIdx()],
                        best.get(ctx, 0));
        };
        seq.add(gpusim::recordKernel(launch, persistent));

        // Dilation on the host-visible score map (kept in the same
        // launch sequence shape as v1 for comparability).
        for (int r = r0; r < r1; ++r)
            for (int c = c0; c < c1; ++c) {
                float mx = 0.0f;
                for (int wr = -1; wr <= 1; ++wr)
                    for (int wc = -1; wc <= 1; ++wc)
                        mx = std::max(
                            mx,
                            d.score[size_t(r + wr) * p.cols + c + wc]);
                d.dilated[size_t(r) * p.cols + c] = mx;
            }
    }

    digest = core::hashRange(d.dilated.begin(), d.dilated.end());
    dev.rewrite(seq);
    return seq;
}

void
registerLeukocyte()
{
    core::Registry::instance().add(
        kInfo, [] { return std::make_unique<Leukocyte>(); });
}

} // namespace workloads
} // namespace rodinia
