/**
 * @file
 * SRAD: Speckle Reducing Anisotropic Diffusion (Rodinia; Structured
 * Grid dwarf).
 *
 * Two-pass diffusion filter used on ultrasound imagery: pass one
 * computes directional derivatives and the diffusion coefficient per
 * pixel; pass two applies the divergence update. Table III's
 * incremental versions are reproduced: v1 keeps derivatives and
 * coefficients in global memory; v2 tiles the image through shared
 * memory, raising IPC substantially.
 */

#ifndef RODINIA_WORKLOADS_RODINIA_SRAD_HH
#define RODINIA_WORKLOADS_RODINIA_SRAD_HH

#include <vector>

#include "core/workload.hh"

namespace rodinia {
namespace workloads {

class Srad : public core::Workload
{
  public:
    struct Params
    {
        int rows;
        int cols;
        int iters;
        float lambda;
    };

    static Params params(core::Scale scale);

    const core::WorkloadInfo &info() const override;
    void runCpu(trace::TraceSession &session, core::Scale scale) override;
    int gpuVersions() const override { return 2; }
    gpusim::LaunchSequence runGpu(core::Scale scale, int version) override;
    uint64_t checksum() const override { return digest; }

    /** Reference (uninstrumented) filter, for validation. */
    static std::vector<float> reference(const Params &p);

  private:
    uint64_t digest = 0;
};

void registerSrad();

} // namespace workloads
} // namespace rodinia

#endif // RODINIA_WORKLOADS_RODINIA_SRAD_HH
