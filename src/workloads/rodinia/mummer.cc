#include "workloads/rodinia/mummer.hh"

#include <algorithm>

#include "gpusim/devicemem.hh"
#include "support/logging.hh"
#include "support/rng.hh"

namespace rodinia {
namespace workloads {

namespace {

const core::WorkloadInfo kInfo = {
    "mummer",
    "MUMmer",
    core::Suite::Rodinia,
    "Graph Traversal",
    "Bioinformatics",
    "16384 25-character queries vs 128k-base reference",
    "Suffix-tree query matching (MUMmerGPU, Schatz et al.)",
    "50000 25-char queries (Table I), 1M-base reference",
};

} // namespace

SuffixTree::SuffixTree(std::vector<uint8_t> text_in,
                       trace::ThreadCtx *ctx)
    : text(std::move(text_in))
{
    if (text.empty() || text.back() != kTerm)
        fatal("SuffixTree: text must end with the terminal symbol");
    build(ctx);
}

int
SuffixTree::newNode(int start, int end)
{
    Node n;
    n.start = start;
    n.end = end;
    n.slink = 0;
    nodes.push_back(n);
    return int(nodes.size()) - 1;
}

void
SuffixTree::build(trace::ThreadCtx *ctx)
{
    const int n = int(text.size());
    nodes.reserve(size_t(2) * n);
    newNode(-1, -1); // root

    int activeNode = 0;
    int activeEdge = 0;   // index into text
    int activeLength = 0;
    int remainder = 0;
    int needSlink = -1;

    auto addSlink = [&](int node) {
        if (needSlink > 0) {
            nodes[needSlink].slink = node;
            if (ctx)
                ctx->store(&nodes[needSlink].slink, 4);
        }
        needSlink = node;
    };

    for (int pos = 0; pos < n; ++pos) {
        needSlink = -1;
        ++remainder;
        if (ctx) {
            ctx->load(&text[pos], 1);
            ctx->alu(2);
        }
        while (remainder > 0) {
            if (activeLength == 0)
                activeEdge = pos;
            int c = text[activeEdge];
            if (ctx) {
                ctx->load(&text[activeEdge], 1);
                ctx->load(&nodes[activeNode].ch[c], 4);
                ctx->branch();
            }
            if (nodes[activeNode].ch[c] == -1) {
                int leaf = newNode(pos, leafSentinel);
                nodes[activeNode].ch[c] = leaf;
                if (ctx)
                    ctx->store(&nodes[activeNode].ch[c], 4);
                addSlink(activeNode);
            } else {
                int nxt = nodes[activeNode].ch[c];
                int el = std::min(edgeEnd(nodes[nxt]), pos + 1) -
                         nodes[nxt].start;
                if (ctx) {
                    ctx->load(&nodes[nxt].start, 8);
                    ctx->alu(3);
                    ctx->branch();
                }
                if (activeLength >= el) {
                    activeNode = nxt;
                    activeEdge += el;
                    activeLength -= el;
                    continue;
                }
                if (ctx) {
                    ctx->load(&text[nodes[nxt].start + activeLength], 1);
                    ctx->branch();
                }
                if (text[nodes[nxt].start + activeLength] == text[pos]) {
                    ++activeLength;
                    addSlink(activeNode);
                    break;
                }
                int split = newNode(nodes[nxt].start,
                                    nodes[nxt].start + activeLength);
                nodes[activeNode].ch[c] = split;
                int leaf = newNode(pos, leafSentinel);
                nodes[split].ch[text[pos]] = leaf;
                nodes[nxt].start += activeLength;
                nodes[split].ch[text[nodes[nxt].start]] = nxt;
                if (ctx) {
                    ctx->store(&nodes[activeNode].ch[c], 4);
                    ctx->store(&nodes[split].ch[0], 20);
                    ctx->store(&nodes[nxt].start, 4);
                    ctx->alu(4);
                }
                addSlink(split);
            }
            --remainder;
            if (activeNode == 0 && activeLength > 0) {
                --activeLength;
                activeEdge = pos - remainder + 1;
            } else if (activeNode != 0) {
                activeNode = nodes[activeNode].slink;
                if (ctx)
                    ctx->load(&nodes[activeNode].slink, 4);
            }
            if (ctx)
                ctx->branch(2);
        }
    }
}

int
SuffixTree::matchLength(const uint8_t *q, int len) const
{
    int node = 0;
    int matched = 0;
    while (matched < len) {
        int child = nodes[node].ch[q[matched]];
        if (child < 0)
            return matched;
        int e0 = nodes[child].start;
        int e1 = edgeEnd(nodes[child]);
        for (int i = e0; i < e1; ++i) {
            if (matched == len || text[i] != q[matched])
                return matched;
            ++matched;
        }
        node = child;
    }
    return matched;
}

Mummer::Params
Mummer::params(core::Scale scale)
{
    switch (scale) {
      case core::Scale::Tiny:
        return {1024, 512, 25};
      case core::Scale::Small:
        return {4096, 2048, 25};
      case core::Scale::Paper:
        return {1048576, 50000, 25};
      case core::Scale::Full:
      default:
        return {131072, 16384, 25};
    }
}

const core::WorkloadInfo &
Mummer::info() const
{
    return kInfo;
}

namespace {

/** Reference text plus mostly-derived queries with mutations. */
void
makeInput(const Mummer::Params &p, std::vector<uint8_t> &ref,
          std::vector<uint8_t> &queries)
{
    Rng rng(0x3B3);
    ref.resize(p.refLen + 1);
    for (int i = 0; i < p.refLen; ++i)
        ref[i] = uint8_t(rng.below(4));
    ref[p.refLen] = SuffixTree::kTerm;

    queries.resize(size_t(p.numQueries) * p.queryLen);
    for (int q = 0; q < p.numQueries; ++q) {
        uint8_t *dst = &queries[size_t(q) * p.queryLen];
        if (rng.chance(0.8)) {
            int start = int(rng.below(uint64_t(p.refLen - p.queryLen)));
            for (int j = 0; j < p.queryLen; ++j)
                dst[j] = ref[start + j];
            // A point mutation makes match lengths diverge.
            if (rng.chance(0.7))
                dst[rng.below(uint64_t(p.queryLen))] =
                    uint8_t(rng.below(4));
        } else {
            for (int j = 0; j < p.queryLen; ++j)
                dst[j] = uint8_t(rng.below(4));
        }
    }
}

} // namespace

void
Mummer::runCpu(trace::TraceSession &session, core::Scale scale)
{
    const Params p = params(scale);
    std::vector<uint8_t> ref, queries;
    makeInput(p, ref, queries);
    std::vector<int> results(p.numQueries, 0);
    const int nt = session.numThreads();
    SuffixTree *treePtr = nullptr;

    session.run([&](trace::ThreadCtx &ctx) {
        // Hot-code size of the application this
        // workload models (Fig. 11 substitution).
        ctx.codeRegion(110 * 1024);
        const int t = ctx.tid();
        // Thread 0 builds the suffix tree (Ukkonen), instrumented.
        if (t == 0)
            treePtr = new SuffixTree(ref, &ctx);
        ctx.barrier();
        const SuffixTree &tree = *treePtr;
        const auto &nodes = tree.allNodes();
        const auto &text = tree.textData();

        const int lo = p.numQueries * t / nt;
        const int hi = p.numQueries * (t + 1) / nt;
        for (int q = lo; q < hi; ++q) {
            const uint8_t *qs = &queries[size_t(q) * p.queryLen];
            int node = 0;
            int matched = 0;
            bool done = false;
            while (!done && matched < p.queryLen) {
                ctx.load(&qs[matched], 1);
                int child = ctx.ld(&nodes[node].ch[qs[matched]]);
                ctx.branch();
                if (child < 0)
                    break;
                int e0 = ctx.ld(&nodes[child].start);
                int e1 = tree.edgeEnd(nodes[child]);
                ctx.alu(2);
                for (int i = e0; i < e1; ++i) {
                    ctx.load(&text[i], 1);
                    ctx.branch();
                    if (matched == p.queryLen ||
                        text[i] != qs[matched]) {
                        done = true;
                        break;
                    }
                    ++matched;
                }
                node = child;
            }
            ctx.st(&results[q], matched);
        }
        ctx.barrier();
        if (t == 0) {
            delete treePtr;
            treePtr = nullptr;
        }
    });

    digest = core::hashRange(results.begin(), results.end());
}

gpusim::LaunchSequence
Mummer::runGpu(core::Scale scale, int version)
{
    (void)version;
    const Params p = params(scale);
    std::vector<uint8_t> ref, queries;
    makeInput(p, ref, queries);
    std::vector<int> results(p.numQueries, 0);

    // Host-side tree construction (Ukkonen), then "transfer": the
    // kernel reads the node arrays through the texture path, as
    // MUMmerGPU stores the tree in 2-D textures.
    SuffixTree tree(ref, nullptr);
    const auto &nodes = tree.allNodes();
    const auto &text = tree.textData();

    gpusim::DeviceSpace dev;
    dev.add(queries);
    dev.add(nodes);
    dev.add(text);
    dev.add(results);

    gpusim::LaunchConfig launch;
    launch.blockDim = 128;
    launch.gridDim = (p.numQueries + launch.blockDim - 1) /
                     launch.blockDim;

    auto kernel = [&](gpusim::KernelCtx &ctx) {
        int q = ctx.globalId();
        if (ctx.branch(q >= p.numQueries))
            return;
        const uint8_t *qs = &queries[size_t(q) * p.queryLen];
        int node = 0;
        int matched = 0;
        bool done = false;
        int step = 0;
        while (!done && matched < p.queryLen) {
            gpusim::LoopIter li(ctx, uint32_t(step++));
            uint8_t qc = ctx.ldg(&qs[matched]);
            int child = ctx.ldt(&nodes[node].ch[qc]);
            if (ctx.branch(child < 0))
                break;
            int e0 = ctx.ldt(&nodes[child].start);
            int e1 = tree.edgeEnd(nodes[child]);
            ctx.alu(2);
            for (int i = e0; i < e1; ++i) {
                gpusim::LoopIter li2(ctx, uint32_t(i - e0));
                uint8_t tc = ctx.ldt(&text[i]);
                if (ctx.branch(matched == p.queryLen ||
                               tc != qs[matched])) {
                    done = true;
                    break;
                }
                ++matched;
            }
            node = child;
        }
        ctx.stg(&results[q], matched);
    };
    gpusim::LaunchSequence seq;
    seq.add(gpusim::recordKernel(launch, kernel));

    digest = core::hashRange(results.begin(), results.end());
    dev.rewrite(seq);
    return seq;
}

void
registerMummer()
{
    core::Registry::instance().add(
        kInfo, [] { return std::make_unique<Mummer>(); });
}

} // namespace workloads
} // namespace rodinia
