#include "workloads/rodinia/heartwall.hh"

#include <cmath>

#include "gpusim/devicemem.hh"
#include "support/rng.hh"

namespace rodinia {
namespace workloads {

namespace {

const core::WorkloadInfo kInfo = {
    "heartwall",
    "Heart Wall Tracking",
    core::Suite::Rodinia,
    "Structured Grid",
    "Medical Imaging",
    "96x224 pixels/frame, 64 points",
    "Braided-parallel template tracking of heart-wall sample points",
    "609x590 frames (Table I), 16 of 104 frames",
};

struct HwData
{
    std::vector<std::vector<float>> frames;
    std::vector<float> templates; //!< points x tmpl x tmpl (constant)
    std::vector<int> posR, posC;  //!< tracked positions
};

void
makeData(const HeartWall::Params &p, HwData &d)
{
    Rng rng(0x4EA47);
    d.frames.resize(p.frames);
    // Frame 0 is random texture; later frames drift smoothly so the
    // tracker has something to follow.
    d.frames[0].resize(size_t(p.rows) * p.cols);
    for (auto &v : d.frames[0])
        v = float(rng.uniform(0.0, 255.0));
    for (int f = 1; f < p.frames; ++f) {
        d.frames[f] = d.frames[f - 1];
        int shift = (f % 2) ? 1 : 0;
        for (int r = 0; r < p.rows; ++r)
            for (int c = p.cols - 1; c > 0; --c)
                d.frames[f][size_t(r) * p.cols + c] =
                    d.frames[f][size_t(r) * p.cols + c - shift] +
                    float(rng.uniform(-2.0, 2.0));
    }

    // Sample points around an ellipse (inner + outer walls).
    d.posR.resize(p.points);
    d.posC.resize(p.points);
    int cy = p.rows / 2, cx = p.cols / 2;
    for (int i = 0; i < p.points; ++i) {
        double a = 2.0 * 3.14159265358979 * i / p.points;
        double radY = (i < p.points / 2) ? p.rows / 5.0 : p.rows / 3.2;
        double radX = (i < p.points / 2) ? p.cols / 5.0 : p.cols / 3.2;
        d.posR[i] = cy + int(radY * std::sin(a));
        d.posC[i] = cx + int(radX * std::cos(a));
    }

    // Templates: cut from frame 0 around each initial position.
    d.templates.resize(size_t(p.points) * p.tmplSize * p.tmplSize);
    for (int i = 0; i < p.points; ++i)
        for (int tr = 0; tr < p.tmplSize; ++tr)
            for (int tc = 0; tc < p.tmplSize; ++tc)
                d.templates[(size_t(i) * p.tmplSize + tr) * p.tmplSize +
                            tc] =
                    d.frames[0][size_t(d.posR[i] + tr - p.tmplSize / 2) *
                                    p.cols +
                                d.posC[i] + tc - p.tmplSize / 2];
}

} // namespace

HeartWall::Params
HeartWall::params(core::Scale scale)
{
    switch (scale) {
      case core::Scale::Tiny:
        return {64, 128, 2, 16, 8, 16};
      case core::Scale::Small:
        return {96, 224, 2, 32, 8, 16};
      case core::Scale::Paper:
        return {609, 590, 16, 64, 8, 16};
      case core::Scale::Full:
      default:
        return {96, 224, 3, 64, 8, 16};
    }
}

const core::WorkloadInfo &
HeartWall::info() const
{
    return kInfo;
}

void
HeartWall::runCpu(trace::TraceSession &session, core::Scale scale)
{
    const Params p = params(scale);
    HwData d;
    makeData(p, d);
    const int nt = session.numThreads();
    const int half = p.winSize / 2;

    session.run([&](trace::ThreadCtx &ctx) {
        // Hot-code size of the application this
        // workload models (Fig. 11 substitution).
        ctx.codeRegion(30 * 1024);
        const int t = ctx.tid();
        const int lo = p.points * t / nt;
        const int hi = p.points * (t + 1) / nt;

        for (int f = 1; f < p.frames; ++f) {
            const auto &img = d.frames[f];
            // Task-parallel outer loop (TLP), data-parallel inner
            // work (DLP): the braided structure.
            for (int i = lo; i < hi; ++i) {
                // Per-task sequential statistics section.
                float mean = 0.0f;
                for (int e = 0; e < p.winSize; ++e) {
                    ctx.load(&img[size_t(d.posR[i] - half + e) * p.cols +
                                  d.posC[i]],
                             4);
                    ctx.fp(1);
                    mean += img[size_t(d.posR[i] - half + e) * p.cols +
                                d.posC[i]];
                }
                mean /= float(p.winSize);
                (void)mean;

                float bestSsd = 1e30f;
                int bestR = d.posR[i], bestC = d.posC[i];
                for (int wr = 0; wr < p.winSize; ++wr) {
                    for (int wc = 0; wc < p.winSize; ++wc) {
                        int rr = d.posR[i] - half + wr;
                        int cc = d.posC[i] - half + wc;
                        if (rr < half || rr >= p.rows - half ||
                            cc < half || cc >= p.cols - half)
                            continue;
                        float ssd = 0.0f;
                        for (int tr = 0; tr < p.tmplSize; ++tr) {
                            ctx.load(&d.templates[(size_t(i) *
                                                       p.tmplSize +
                                                   tr) *
                                                  p.tmplSize],
                                     4 * p.tmplSize);
                            ctx.load(&img[size_t(rr + tr -
                                                 p.tmplSize / 2) *
                                              p.cols +
                                          cc - p.tmplSize / 2],
                                     4 * p.tmplSize);
                            ctx.fp(2 * p.tmplSize);
                            for (int tc = 0; tc < p.tmplSize; ++tc) {
                                float diff =
                                    img[size_t(rr + tr -
                                               p.tmplSize / 2) *
                                            p.cols +
                                        cc + tc - p.tmplSize / 2] -
                                    d.templates[(size_t(i) *
                                                     p.tmplSize +
                                                 tr) *
                                                    p.tmplSize +
                                                tc];
                                ssd += diff * diff;
                            }
                        }
                        ctx.branch();
                        if (ssd < bestSsd) {
                            bestSsd = ssd;
                            bestR = rr;
                            bestC = cc;
                        }
                    }
                }
                ctx.st(&d.posR[i], bestR);
                ctx.st(&d.posC[i], bestC);
            }
            ctx.barrier();
        }
    });

    digest = core::hashRange(d.posR.begin(), d.posR.end());
    digest = core::hashCombine(
        digest, core::hashRange(d.posC.begin(), d.posC.end()));
}

gpusim::LaunchSequence
HeartWall::runGpu(core::Scale scale, int version)
{
    (void)version;
    const Params p = params(scale);
    HwData d;
    makeData(p, d);
    const int half = p.winSize / 2;
    const int blockDim = 64;
    const int positions = p.winSize * p.winSize;
    const int perThread = (positions + blockDim - 1) / blockDim;

    gpusim::DeviceSpace dev;
    for (const auto &frame : d.frames)
        dev.add(frame);
    dev.add(d.templates);
    // Stable output buffers: the per-frame results are copied back
    // into d.pos* below, so one allocation serves every frame (and
    // keeps the recorded addresses registrable).
    std::vector<int> newR = d.posR, newC = d.posC;
    dev.add(newR);
    dev.add(newC);

    gpusim::LaunchSequence seq;
    for (int f = 1; f < p.frames; ++f) {
        const auto &img = d.frames[f];
        newR = d.posR;
        newC = d.posC;

        gpusim::LaunchConfig launch;
        launch.gridDim = p.points;
        launch.blockDim = blockDim;

        auto kernel = [&](gpusim::KernelCtx &ctx) {
            const int i = ctx.blockIdx();
            const int tid = ctx.tid();
            auto bestSsd = ctx.shared<float>(blockDim);
            auto bestPos = ctx.shared<int>(blockDim);

            // Non-parallel per-task section: thread 0 computes the
            // window statistics while the rest of the warp idles —
            // the slight under-utilization the paper describes.
            if (ctx.branch(tid == 0)) {
                float mean = 0.0f;
                for (int e = 0; e < p.winSize; ++e) {
                    mean += ctx.ldt(
                        &img[size_t(d.posR[i] - half + e) * p.cols +
                             d.posC[i]]);
                    ctx.fp(1);
                }
                (void)mean;
            }
            ctx.sync();

            float myBest = 1e30f;
            int myPos = -1;
            for (int k = 0; k < perThread; ++k) {
                gpusim::LoopIter li(ctx, k);
                int pos = k * blockDim + tid;
                if (!ctx.branch(pos < positions))
                    continue;
                int wr = pos / p.winSize, wc = pos % p.winSize;
                int rr = d.posR[i] - half + wr;
                int cc = d.posC[i] - half + wc;
                if (!ctx.branch(rr >= half && rr < p.rows - half &&
                                cc >= half && cc < p.cols - half))
                    continue;
                float ssd = 0.0f;
                for (int tr = 0; tr < p.tmplSize; ++tr) {
                    ctx.record(
                        gpusim::GOp::Load, gpusim::Space::Const,
                        uint64_t(uintptr_t(
                            &d.templates[(size_t(i) * p.tmplSize + tr) *
                                         p.tmplSize])),
                        4 * p.tmplSize,
                        std::source_location::current());
                    ctx.record(
                        gpusim::GOp::Load, gpusim::Space::Tex,
                        uint64_t(uintptr_t(
                            &img[size_t(rr + tr - p.tmplSize / 2) *
                                     p.cols +
                                 cc - p.tmplSize / 2])),
                        4 * p.tmplSize,
                        std::source_location::current());
                    ctx.fp(2 * p.tmplSize);
                    for (int tc = 0; tc < p.tmplSize; ++tc) {
                        float diff =
                            img[size_t(rr + tr - p.tmplSize / 2) *
                                    p.cols +
                                cc + tc - p.tmplSize / 2] -
                            d.templates[(size_t(i) * p.tmplSize + tr) *
                                            p.tmplSize +
                                        tc];
                        ssd += diff * diff;
                    }
                }
                ctx.fp(1);
                if (ssd < myBest) {
                    myBest = ssd;
                    myPos = pos;
                }
            }
            bestSsd.put(ctx, tid, myBest);
            bestPos.put(ctx, tid, myPos);
            ctx.sync();

            // Shared-memory min reduction.
            for (int stride = blockDim / 2; stride > 0; stride /= 2) {
                gpusim::LoopIter li(ctx, uint32_t(stride));
                if (ctx.branch(tid < stride)) {
                    float a = bestSsd.get(ctx, tid);
                    float b = bestSsd.get(ctx, tid + stride);
                    ctx.fp(1);
                    if (b < a) {
                        bestSsd.put(ctx, tid, b);
                        bestPos.put(ctx, tid,
                                    bestPos.get(ctx, tid + stride));
                    }
                }
                ctx.sync();
            }

            if (ctx.branch(tid == 0)) {
                int pos = bestPos.get(ctx, 0);
                if (pos >= 0) {
                    int rr = d.posR[i] - half + pos / p.winSize;
                    int cc = d.posC[i] - half + pos % p.winSize;
                    newR[i] = rr;
                    newC[i] = cc;
                    ctx.stg(&newR[i], rr);
                    ctx.stg(&newC[i], cc);
                }
            }
        };
        seq.add(gpusim::recordKernel(launch, kernel));

        d.posR = newR;
        d.posC = newC;
    }

    digest = core::hashRange(d.posR.begin(), d.posR.end());
    digest = core::hashCombine(
        digest, core::hashRange(d.posC.begin(), d.posC.end()));
    dev.rewrite(seq);
    return seq;
}

void
registerHeartwall()
{
    core::Registry::instance().add(
        kInfo, [] { return std::make_unique<HeartWall>(); });
}

} // namespace workloads
} // namespace rodinia
