#include "workloads/rodinia/bfs.hh"

#include <deque>

#include "gpusim/devicemem.hh"
#include "support/rng.hh"

namespace rodinia {
namespace workloads {

namespace {

const core::WorkloadInfo kInfo = {
    "bfs",
    "Breadth-First Search",
    core::Suite::Rodinia,
    "Graph Traversal",
    "Graph Algorithms",
    "32768 nodes, avg degree 6",
    "Level-synchronous breadth-first traversal of a sparse graph",
    "1048576 nodes, avg degree 6 (Table I)",
};

} // namespace

BfsGraph
BfsGraph::random(int nodes, int avg_degree, uint64_t seed)
{
    Rng rng(seed);
    BfsGraph g;
    g.numNodes = nodes;
    g.rowStart.assign(nodes + 1, 0);
    std::vector<std::vector<int>> adj(nodes);
    for (int i = 0; i < nodes; ++i) {
        int deg = 1 + int(rng.below(uint64_t(2 * avg_degree - 1)));
        for (int e = 0; e < deg; ++e) {
            int to;
            if (rng.chance(0.5)) {
                // Local edge: models meshes/spatial graphs.
                int offset = 1 + int(rng.below(64));
                to = (i + offset) % nodes;
            } else {
                to = int(rng.below(uint64_t(nodes)));
            }
            if (to != i)
                adj[i].push_back(to);
        }
    }
    for (int i = 0; i < nodes; ++i) {
        g.rowStart[i + 1] = g.rowStart[i] + int(adj[i].size());
        for (int to : adj[i])
            g.adj.push_back(to);
    }
    return g;
}

std::vector<int>
Bfs::reference(const BfsGraph &g, int source)
{
    std::vector<int> cost(g.numNodes, -1);
    std::deque<int> queue{source};
    cost[source] = 0;
    while (!queue.empty()) {
        int u = queue.front();
        queue.pop_front();
        for (int e = g.rowStart[u]; e < g.rowStart[u + 1]; ++e) {
            int v = g.adj[e];
            if (cost[v] < 0) {
                cost[v] = cost[u] + 1;
                queue.push_back(v);
            }
        }
    }
    return cost;
}

Bfs::Params
Bfs::params(core::Scale scale)
{
    switch (scale) {
      case core::Scale::Tiny:
        return {2048, 6};
      case core::Scale::Small:
        return {8192, 6};
      case core::Scale::Paper:
        return {1048576, 6};
      case core::Scale::Full:
      default:
        return {32768, 6};
    }
}

const core::WorkloadInfo &
Bfs::info() const
{
    return kInfo;
}

void
Bfs::runCpu(trace::TraceSession &session, core::Scale scale)
{
    const Params p = params(scale);
    BfsGraph g = BfsGraph::random(p.nodes, p.avgDegree, 0xBF5);
    std::vector<int> cost(g.numNodes, -1);
    std::vector<int> prevCost(g.numNodes, -1);
    std::vector<uint8_t> frontier(g.numNodes, 0);
    std::vector<uint8_t> next(g.numNodes, 0);
    cost[0] = 0;
    prevCost[0] = 0;
    frontier[0] = 1;
    bool more = true;
    const int nt = session.numThreads();

    session.run([&](trace::ThreadCtx &ctx) {
        // Hot-code size of the application this
        // workload models (Fig. 11 substitution).
        ctx.codeRegion(6 * 1024);
        const int t = ctx.tid();
        const int lo = g.numNodes * t / nt;
        const int hi = g.numNodes * (t + 1) / nt;
        while (more) {
            for (int u = lo; u < hi; ++u) {
                ctx.branch();
                if (!ctx.ld(&frontier[u]))
                    continue;
                int level = ctx.ld(&cost[u]);
                int e0 = ctx.ld(&g.rowStart[u]);
                int e1 = ctx.ld(&g.rowStart[u + 1]);
                for (int e = e0; e < e1; ++e) {
                    int v = ctx.ld(&g.adj[e]);
                    ctx.branch();
                    // Visited-check against the previous level's
                    // snapshot, not the live array: racing writers
                    // all store the identical level + 1 (like the
                    // Rodinia GPU kernel), and whether a peer's
                    // store has become visible no longer changes
                    // this thread's recorded trace — the trace is a
                    // pure function of the graph.
                    if (ctx.ld(&prevCost[v]) < 0) {
                        ctx.st(&cost[v], level + 1);
                        ctx.st(&next[v], uint8_t(1));
                    }
                }
            }
            ctx.barrier();
            if (t == 0) {
                more = false;
                for (int u = 0; u < g.numNodes; ++u) {
                    ctx.load(&next[u], 1);
                    if (next[u])
                        more = true;
                }
                std::copy(cost.begin(), cost.end(),
                          prevCost.begin());
                std::swap(frontier, next);
                std::fill(next.begin(), next.end(), uint8_t(0));
            }
            ctx.barrier();
        }
    });

    digest = core::hashRange(cost.begin(), cost.end());
}

gpusim::LaunchSequence
Bfs::runGpu(core::Scale scale, int version)
{
    (void)version;
    const Params p = params(scale);
    BfsGraph g = BfsGraph::random(p.nodes, p.avgDegree, 0xBF5);
    std::vector<int> cost(g.numNodes, -1);
    std::vector<uint8_t> frontier(g.numNodes, 0);
    std::vector<uint8_t> next(g.numNodes, 0);
    cost[0] = 0;
    frontier[0] = 1;

    gpusim::LaunchConfig launch;
    launch.blockDim = 256;
    launch.gridDim = (g.numNodes + launch.blockDim - 1) /
                     launch.blockDim;

    gpusim::DeviceSpace dev;
    dev.add(g.rowStart);
    dev.add(g.adj);
    dev.add(cost);
    dev.add(frontier);
    dev.add(next);

    gpusim::LaunchSequence seq;
    bool more = true;
    while (more) {
        auto kernel = [&](gpusim::KernelCtx &ctx) {
            int u = ctx.globalId();
            if (ctx.branch(u >= g.numNodes))
                return;
            if (!ctx.branch(ctx.ldg(&frontier[u]) != 0))
                return;
            int level = ctx.ldg(&cost[u]);
            int e0 = ctx.ldg(&g.rowStart[u]);
            int e1 = ctx.ldg(&g.rowStart[u + 1]);
            for (int e = e0; e < e1; ++e) {
                gpusim::LoopIter li(ctx, uint32_t(e - e0));
                int v = ctx.ldg(&g.adj[e]);
                ctx.alu(1);
                if (ctx.branch(ctx.ldg(&cost[v]) < 0)) {
                    cost[v] = level + 1;
                    next[v] = 1;
                    ctx.stg(&cost[v], level + 1);
                    ctx.stg(&next[v], uint8_t(1));
                }
            }
        };
        seq.add(gpusim::recordKernel(launch, kernel));

        more = false;
        for (int u = 0; u < g.numNodes; ++u)
            if (next[u])
                more = true;
        std::swap(frontier, next);
        std::fill(next.begin(), next.end(), uint8_t(0));
    }

    digest = core::hashRange(cost.begin(), cost.end());
    dev.rewrite(seq);
    return seq;
}

void
registerBfs()
{
    core::Registry::instance().add(kInfo,
                                   [] { return std::make_unique<Bfs>(); });
}

} // namespace workloads
} // namespace rodinia
